// Heat2D stencil — the paper's iterative-data-locality showcase (§6.2):
// the same tiles are swept every iteration, so ADWS's deterministic task
// mapping sends each tile back to the same worker (and the same caches),
// where random work stealing scatters them.
//
// Run with:
//
//	go run ./examples/heat2d [-n 2048 -iters 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/kernels"
)

func main() {
	n := flag.Int("n", 2048, "grid side length")
	iters := flag.Int("iters", 50, "stencil iterations (paper: 50)")
	flag.Parse()

	for _, s := range []adws.Scheduler{adws.WorkStealing, adws.ADWS, adws.MultiLevelADWS} {
		pool, err := adws.NewPool(adws.WithScheduler(s))
		if err != nil {
			log.Fatal(err)
		}
		src, dst := kernels.NewGrid(*n), kernels.NewGrid(*n)
		// A hot square in the middle.
		for i := *n / 4; i < 3**n/4; i++ {
			for j := *n / 4; j < 3**n/4; j++ {
				src.Set(i, j, 100)
			}
		}
		start := time.Now()
		out := kernels.Heat2D(pool, src, dst, *iters)
		elapsed := time.Since(start)
		fmt.Printf("%-16v %dx%d grid, %d iterations: %v (center=%.2f)\n",
			s, *n, *n, *iters, elapsed.Round(time.Millisecond), out.At(*n/2, *n/2))
		pool.Close()
	}
}
