// Decision tree construction — the ADWS paper's motivating workload
// (§2.1): train a CART classifier on a synthetic HIGGS-like dataset under
// each scheduler and report training time and test accuracy.
//
// Run with:
//
//	go run ./examples/decisiontree [-rows 200000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/dataset"
	"github.com/parlab/adws/internal/dtree"
)

func main() {
	rows := flag.Int("rows", 200_000, "dataset rows (the paper's HIGGS has 11M)")
	depth := flag.Int("depth", 14, "maximum tree depth (paper: 17)")
	flag.Parse()

	fmt.Printf("generating %d rows x %d attributes (%.1f MB)...\n",
		*rows, dataset.DefaultAttrs, float64(*rows*dataset.DefaultAttrs*8)/(1<<20))
	ds := dataset.Synthetic(*rows, dataset.DefaultAttrs, 42)
	train, test := ds.Split(*rows / 20)

	cfg := dtree.DefaultConfig()
	cfg.MaxDepth = *depth

	for _, s := range []adws.Scheduler{
		adws.WorkStealing, adws.ADWS, adws.MultiLevelWS, adws.MultiLevelADWS,
	} {
		pool, err := adws.NewPool(
			adws.WithScheduler(s),
			adws.WithHierarchy([]adws.CacheLevel{
				{Fanout: 2, CapacityBytes: 32 << 20},
				{Fanout: 4, CapacityBytes: 1 << 20},
			}, 0),
		)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		tree := dtree.Train(pool, ds, train, cfg)
		elapsed := time.Since(start)
		acc := tree.Accuracy(ds, test)
		st := pool.Stats()
		fmt.Printf("%-16v time=%-12v nodes=%-6d accuracy=%.1f%% (chance ~50%%)  migr=%d steals=%d\n",
			s, elapsed.Round(time.Millisecond), tree.Nodes, 100*acc, st.Migrations, st.Steals)
		pool.Close()
	}
}
