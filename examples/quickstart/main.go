// Quickstart: nested fork-join parallelism with ADWS scheduling.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/parlab/adws"
)

// sumSquares computes sum(i*i for i in [lo, hi)) by parallel divide and
// conquer. The work hints are exact (proportional to the range length) and
// the size hint tells multi-level scheduling how much data a subtree
// touches — here nothing is shared, so we pass the range footprint.
func sumSquares(c *adws.Ctx, lo, hi int64) int64 {
	if hi-lo <= 1<<12 {
		var s int64
		for i := lo; i < hi; i++ {
			s += i * i
		}
		return s
	}
	mid := (lo + hi) / 2
	var left, right int64
	g := c.Group(adws.GroupHint{
		Work: float64(hi - lo),
		Size: (hi - lo) * 8,
	})
	g.Spawn(float64(mid-lo), func(c *adws.Ctx) { left = sumSquares(c, lo, mid) })
	g.Spawn(float64(hi-mid), func(c *adws.Ctx) { right = sumSquares(c, mid, hi) })
	g.Wait()
	return left + right
}

func main() {
	// Describe the machine: 2 shared caches of 16 MB, each over 4 workers
	// with 1 MB private caches. On a real deployment, mirror your CPU's
	// topology (sockets/L3, cores/L2).
	pool, err := adws.NewPool(
		adws.WithScheduler(adws.MultiLevelADWS),
		adws.WithHierarchy([]adws.CacheLevel{
			{Fanout: 2, CapacityBytes: 16 << 20},
			{Fanout: 4, CapacityBytes: 1 << 20},
		}, 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	const n = 1_000_000
	var total int64
	pool.Run(func(c *adws.Ctx) {
		total = sumSquares(c, 0, n)
	})
	fmt.Printf("sum of squares below %d = %d\n", int64(n), total)
	if want := int64(n-1) * n * (2*n - 1) / 6; total != want {
		log.Fatalf("wrong result: want %d", want)
	}
	st := pool.Stats()
	fmt.Printf("workers=%d tasks=%d migrations=%d steals=%d/%d\n",
		pool.NumWorkers(), st.Tasks, st.Migrations, st.Steals, st.StealAttempts)
}
