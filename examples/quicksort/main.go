// Parallel quicksort with ADWS work hints — the classic divide-and-conquer
// motif of the paper (§6.2), with the partition parallelized through
// double buffering.
//
// Run with:
//
//	go run ./examples/quicksort [-n 5000000]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/kernels"
	"github.com/parlab/adws/internal/sched"
)

func main() {
	n := flag.Int("n", 5_000_000, "elements to sort")
	flag.Parse()

	rng := sched.NewRNG(7, 0)
	master := make([]float64, *n)
	for i := range master {
		master[i] = rng.Float64()*1e6 - 5e5
	}

	for _, s := range []adws.Scheduler{adws.WorkStealing, adws.ADWS, adws.MultiLevelADWS} {
		pool, err := adws.NewPool(adws.WithScheduler(s))
		if err != nil {
			log.Fatal(err)
		}
		data := append([]float64(nil), master...)
		start := time.Now()
		kernels.Quicksort(pool, data)
		elapsed := time.Since(start)
		if !sort.Float64sAreSorted(data) {
			log.Fatalf("%v: output not sorted", s)
		}
		fmt.Printf("%-16v sorted %d floats in %v\n", s, *n, elapsed.Round(time.Millisecond))
		pool.Close()
	}

	start := time.Now()
	data := append([]float64(nil), master...)
	sort.Float64s(data)
	fmt.Printf("%-16s sorted %d floats in %v\n", "stdlib-serial", *n, time.Since(start).Round(time.Millisecond))
}
