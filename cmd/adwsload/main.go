// adwsload drives concurrent jobs through a real adws pool and reports
// the latency distributions the runtime and server recorded — the
// serve-side half of a committed BENCH_*.json trajectory point
// (internal/benchfmt, scripts/bench.sh, docs/METRICS.md).
//
// Usage:
//
//	adwsload -workers 8 -sched adws -jobs 64 -workload quicksort -n 200000
//	adwsload ... -json BENCH_0006.json -sim sim.json   # emit a trajectory point
//	adwsload -smoke                                    # tiny run + exposition self-check
//	adwsload -validate 'BENCH_*.json'                  # schema-check committed points
//
// Unlike adwsd's HTTP benchmarks, adwsload submits in-process: it
// measures the admission queue, placement, scheduling, and metric
// recording — not HTTP framing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/benchfmt"
	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/workload"
)

func main() {
	var (
		workers  = flag.Int("workers", 8, "pool worker count")
		sched    = flag.String("sched", "adws", "scheduler: ws, adws, mlws, mladws")
		jobs     = flag.Int("jobs", 64, "total jobs to submit")
		inflight = flag.Int("inflight", 0, "max concurrently running jobs (0: one per worker)")
		wlName   = flag.String("workload", "quicksort", strings.Join(workload.JobNames(), ", "))
		n        = flag.Int("n", 0, "problem size per job (0: the workload's default)")
		seed     = flag.Uint64("seed", 1, "workload input and victim-selection seed")
		jsonOut  = flag.String("json", "", "write the benchfmt trajectory point here (- for stdout)")
		simIn    = flag.String("sim", "", "adwsbench -json result to embed as the point's sim half")
		id       = flag.String("id", "", "trajectory point id (default: derived from -json filename)")
		smoke    = flag.Bool("smoke", false, "tiny run + strict exposition self-check, for CI")
		validate = flag.String("validate", "", "glob of BENCH_*.json files to schema-check (no run)")
	)
	flag.Parse()

	if *validate != "" {
		validatePoints(*validate)
		return
	}
	if *smoke {
		*workers, *jobs, *n = 4, 8, 20_000
		if *wlName == "" {
			*wlName = "quicksort"
		}
	}

	var schedOpt adws.Scheduler
	switch *sched {
	case "ws":
		schedOpt = adws.WorkStealing
	case "adws":
		schedOpt = adws.ADWS
	case "mlws":
		schedOpt = adws.MultiLevelWS
	case "mladws":
		schedOpt = adws.MultiLevelADWS
	default:
		fatalf("unknown scheduler %q (want ws, adws, mlws, mladws)", *sched)
	}

	pool, err := adws.NewPool(
		adws.WithWorkers(*workers),
		adws.WithScheduler(schedOpt),
		adws.WithSeed(*seed),
		adws.WithAdmission(*inflight, *jobs+1),
	)
	if err != nil {
		fatalf("pool: %v", err)
	}
	defer pool.Close()

	start := time.Now()
	handles := make([]*adws.Job, 0, *jobs)
	for i := 0; i < *jobs; i++ {
		wj, err := workload.NewJob(*wlName, *n, *seed+uint64(i))
		if err != nil {
			fatalf("workload: %v", err)
		}
		j, err := pool.Submit(context.Background(), wj.Body, wj.Hint())
		if err != nil {
			fatalf("submit job %d: %v", i, err)
		}
		handles = append(handles, j)
	}
	for _, j := range handles {
		if err := j.Wait(context.Background()); err != nil {
			fatalf("job %d: %v", j.ID(), err)
		}
	}
	elapsed := time.Since(start)

	reg := pool.Metrics()
	if *smoke {
		selfCheck(reg)
	}
	serve := buildServe(pool, handles, *sched, *wlName, *n, *seed, elapsed)
	fmt.Printf("adwsload: %d×%s on %d workers (%s) in %.3fs — e2e p50 %.1fms p99 %.1fms, queue-wait p99 %.1fms\n",
		*jobs, *wlName, *workers, *sched, elapsed.Seconds(),
		serve.E2E.P50*1e3, serve.E2E.P99*1e3, serve.QueueWait.P99*1e3)

	if *jsonOut != "" {
		writePoint(*jsonOut, *id, *simIn, serve)
	}
}

// buildServe assembles the serve half of a trajectory point from the
// pool's registry and counters. Job outcomes are counted from the
// submitted handles, not pool.Jobs(), whose history is bounded.
func buildServe(pool *adws.Pool, handles []*adws.Job, sched, wl string, n int, seed uint64, elapsed time.Duration) *benchfmt.Serve {
	st := pool.Stats()
	q := func(name string) benchfmt.Quantiles {
		h := pool.Metrics().FindHistogram(name)
		if h == nil {
			fatalf("registry is missing histogram %s", name)
		}
		s := h.Snapshot()
		return s.SummarizeSeconds()
	}
	jobs := len(handles)
	var completed, failed, canceled int64
	for _, j := range handles {
		switch j.State() {
		case adws.JobDone:
			completed++
		case adws.JobFailed:
			failed++
		case adws.JobCanceled:
			canceled++
		}
	}
	nEff := n
	if nEff == 0 {
		if wj, err := workload.NewJob(wl, 0, seed); err == nil {
			nEff = wj.N
		}
	}
	return &benchfmt.Serve{
		Workers:       pool.NumWorkers(),
		Sched:         sched,
		Jobs:          jobs,
		Workload:      wl,
		N:             nEff,
		Seed:          seed,
		ElapsedS:      elapsed.Seconds(),
		JobsPerSecond: float64(jobs) / elapsed.Seconds(),
		Submitted:     int64(jobs),
		Completed:     completed,
		Failed:        failed,
		Canceled:      canceled,
		Tasks:         st.Tasks,
		Steals:        st.Steals,
		StealAttempts: st.StealAttempts,
		Migrations:    st.Migrations,
		Parks:         st.Parks,
		Wakes:         st.Wakes,
		QueueWait:     q("adws_job_queue_wait_seconds"),
		Service:       q("adws_job_service_seconds"),
		E2E:           q("adws_job_e2e_seconds"),
		Park:          q("adws_park_seconds"),
		StealAttempt:  q("adws_steal_attempt_seconds"),
		WakeToRun:     q("adws_wake_to_run_seconds"),
	}
}

// selfCheck renders the registry and re-parses it with the strict
// exposition parser: the smoke gate that keeps /metrics valid.
func selfCheck(reg *adws.MetricsRegistry) {
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		fatalf("render: %v", err)
	}
	fams, err := metrics.ParseText(b.String())
	if err != nil {
		fatalf("exposition self-check failed: %v", err)
	}
	need := map[string]bool{
		"adws_job_queue_wait_seconds": false,
		"adws_job_service_seconds":    false,
		"adws_park_seconds":           false,
		"adws_tasks_total":            false,
	}
	for _, f := range fams {
		if _, ok := need[f.Name]; ok {
			need[f.Name] = true
		}
	}
	for name, seen := range need {
		if !seen {
			fatalf("exposition self-check: missing family %s", name)
		}
	}
	fmt.Printf("adwsload: exposition self-check passed (%d families)\n", len(fams))
}

// writePoint assembles and writes the trajectory point, validating it
// first so a malformed point never lands in the repo.
func writePoint(path, id, simIn string, serve *benchfmt.Serve) {
	if id == "" {
		base := filepath.Base(path)
		id = strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
	}
	pt := benchfmt.Point{SchemaVersion: benchfmt.SchemaVersion, ID: id, Serve: serve}
	if simIn != "" {
		raw, err := os.ReadFile(simIn)
		if err != nil {
			fatalf("read sim %s: %v", simIn, err)
		}
		pt.Sim = json.RawMessage(raw)
	}
	if err := pt.Validate(); err != nil {
		fatalf("refusing to write invalid point: %v", err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pt); err != nil {
		fatalf("encode: %v", err)
	}
}

// validatePoints schema-checks every file matching the glob; CI runs
// this over the committed BENCH_*.json trajectory.
func validatePoints(glob string) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		fatalf("bad glob %q: %v", glob, err)
	}
	if len(paths) == 0 {
		fatalf("no files match %q", glob)
	}
	for _, p := range paths {
		if _, err := benchfmt.ReadFile(p); err != nil {
			fatalf("invalid trajectory point: %v", err)
		}
		fmt.Printf("ok %s\n", p)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adwsload: "+format+"\n", args...)
	os.Exit(1)
}
