// adwsload drives concurrent jobs through a real adws pool — or a
// multi-pool cluster, or a running adwsd daemon — and reports the
// latency distributions the runtime and server recorded: the serve- and
// cluster-side halves of a committed BENCH_*.json trajectory point
// (internal/benchfmt, scripts/bench.sh, docs/METRICS.md).
//
// Usage:
//
//	adwsload -workers 8 -sched adws -jobs 64 -workload quicksort -n 200000
//	adwsload ... -json BENCH_0006.json -sim sim.json   # emit a trajectory point
//	adwsload -pools 2 -policy affinity -keys 7         # route through a cluster
//	adwsload -pools 2 -compare affinity,round-robin    # policy comparison (cluster half)
//	adwsload -target http://localhost:7117 -jobs 32    # drive a running adwsd
//	adwsload -smoke                                    # tiny run + exposition self-check
//	adwsload -validate 'BENCH_*.json'                  # schema-check committed points
//
// In-process modes measure the admission queue, placement, routing,
// scheduling, and metric recording without HTTP framing; -target drives
// a live daemon over HTTP and fails fast (rather than miscounting every
// request as a reject) when the daemon is unreachable.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/benchfmt"
	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/workload"
)

func main() {
	var (
		workers  = flag.Int("workers", 8, "worker count per pool")
		sched    = flag.String("sched", "adws", "scheduler: ws, adws, mlws, mladws")
		jobs     = flag.Int("jobs", 64, "total jobs to submit")
		inflight = flag.Int("inflight", 0, "max concurrently running jobs per pool (0: one per worker)")
		wlName   = flag.String("workload", "quicksort", strings.Join(workload.JobNames(), ", "))
		n        = flag.Int("n", 0, "problem size per job (0: the workload's default)")
		seed     = flag.Uint64("seed", 1, "workload input and victim-selection seed")
		pools    = flag.Int("pools", 1, "pool count; >1 submits through a routed cluster")
		policy   = flag.String("policy", adws.RouteAffinity, "cluster routing policy: "+strings.Join(adws.RoutingPolicies(), ", "))
		keys     = flag.Int("keys", 7, "distinct workload keys in the cluster's repeated stream (keep coprime to -pools)")
		compare  = flag.String("compare", "", "comma-separated policies to run over an identical stream (emits the point's cluster half)")
		admCmp   = flag.String("admcompare", "", "comma-separated admission policies (fifo,slo) to run over identical class cohorts (emits the point's admission half)")
		cohorts  = flag.String("cohorts", "batch:40:200000,interactive:24:20000", "class:jobs:n cohorts for -admcompare, submitted in order (batch first builds the backlog)")
		tenants  = flag.Int("tenants", 2, "synthetic tenants the -admcompare cohorts round-robin across")
		admInfl  = flag.Int("adminflight", 1, "max concurrently running jobs in the -admcompare runs (1 serializes dispatch so admission order is visible in e2e, not just queue-wait)")
		target   = flag.String("target", "", "base URL of a running adwsd to drive over HTTP instead of in-process")
		jsonOut  = flag.String("json", "", "write the benchfmt trajectory point here (- for stdout)")
		simIn    = flag.String("sim", "", "adwsbench -json result to embed as the point's sim half")
		id       = flag.String("id", "", "trajectory point id (default: derived from -json filename)")
		smoke    = flag.Bool("smoke", false, "tiny run + strict exposition self-check, for CI")
		validate = flag.String("validate", "", "glob of BENCH_*.json files to schema-check (no run)")
	)
	flag.Parse()

	if *validate != "" {
		validatePoints(*validate)
		return
	}
	if *smoke {
		*workers, *jobs, *n = 4, 8, 20_000
		if *wlName == "" {
			*wlName = "quicksort"
		}
		if *admCmp == "" {
			*admCmp = adws.AdmitFIFO + "," + adws.AdmitSLO
			*cohorts = "batch:4:20000,interactive:3:5000"
		}
	}

	schedOpt, err := parseScheduler(*sched)
	if err != nil {
		fatalf("%v", err)
	}

	if *target != "" {
		runTarget(*target, *wlName, *n, *jobs, *keys, *seed, *jsonOut, *id, *simIn)
		return
	}

	// The cluster half: -compare runs every listed policy (over at least
	// 2 pools — a routing comparison needs somewhere to route); -pools N
	// without -compare routes the stream under the single -policy.
	var clHalf *benchfmt.Cluster
	if *compare != "" || *pools > 1 {
		policies := []string{*policy}
		if *compare != "" {
			policies = nil
			for _, p := range strings.Split(*compare, ",") {
				policies = append(policies, strings.TrimSpace(p))
			}
		}
		npools := *pools
		if *compare != "" && npools < 2 {
			npools = 2
		}
		clHalf = runCluster(*sched, schedOpt, npools, *workers, *inflight, policies,
			*keys, *jobs, *wlName, *n, *seed)
	}
	// The admission half: -admcompare runs every listed admission policy
	// over identical class cohorts through a fresh single pool.
	var admHalf *benchfmt.Admission
	if *admCmp != "" {
		var admPolicies []string
		for _, p := range strings.Split(*admCmp, ",") {
			admPolicies = append(admPolicies, strings.TrimSpace(p))
		}
		admHalf = runAdmission(*sched, schedOpt, *workers, *admInfl, admPolicies,
			parseCohorts(*cohorts), *tenants, *wlName, *seed)
	}
	// -pools >1 without -compare is purely a cluster run; otherwise the
	// classic single-pool serve measurement runs (alongside -compare and
	// -admcompare, so one invocation can emit several halves of a
	// trajectory point).
	if *pools > 1 && *compare == "" {
		if *jsonOut != "" {
			writePoint(*jsonOut, *id, *simIn, nil, clHalf, admHalf)
		}
		return
	}

	pool, err := adws.NewPool(
		adws.WithWorkers(*workers),
		adws.WithScheduler(schedOpt),
		adws.WithSeed(*seed),
		adws.WithAdmission(*inflight, *jobs+1),
	)
	if err != nil {
		fatalf("pool: %v", err)
	}
	defer pool.Close()

	wdBefore := watchdogTriggers(pool)
	start := time.Now()
	handles := make([]*adws.Job, 0, *jobs)
	for i := 0; i < *jobs; i++ {
		wj, err := workload.NewJob(*wlName, *n, *seed+uint64(i))
		if err != nil {
			fatalf("workload: %v", err)
		}
		j, err := pool.Submit(context.Background(), wj.Body, wj.Hint())
		if err != nil {
			fatalf("submit job %d: %v", i, err)
		}
		handles = append(handles, j)
	}
	for _, j := range handles {
		if err := j.Wait(context.Background()); err != nil {
			fatalf("job %d: %v", j.ID(), err)
		}
	}
	elapsed := time.Since(start)

	reg := pool.Metrics()
	if *smoke {
		selfCheck(reg)
	}
	serve := buildServe(pool, handles, *sched, *wlName, *n, *seed, elapsed)
	serve.WatchdogBefore, serve.WatchdogAfter = wdBefore, watchdogTriggers(pool)
	if before, after := total(wdBefore), total(serve.WatchdogAfter); after > before {
		fmt.Printf("adwsload: watchdog fired %d time(s) during the run: %v\n",
			after-before, serve.WatchdogAfter)
	}
	fmt.Printf("adwsload: %d×%s on %d workers (%s) in %.3fs — e2e p50 %.1fms p99 %.1fms, queue-wait p99 %.1fms\n",
		*jobs, *wlName, *workers, *sched, elapsed.Seconds(),
		serve.E2E.P50*1e3, serve.E2E.P99*1e3, serve.QueueWait.P99*1e3)

	if *jsonOut != "" {
		writePoint(*jsonOut, *id, *simIn, serve, clHalf, admHalf)
	}
}

func parseScheduler(name string) (adws.Scheduler, error) {
	switch name {
	case "ws":
		return adws.WorkStealing, nil
	case "adws":
		return adws.ADWS, nil
	case "mlws":
		return adws.MultiLevelWS, nil
	case "mladws":
		return adws.MultiLevelADWS, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want ws, adws, mlws, mladws)", name)
}

// runCluster drives the same repeated-key stream through a fresh
// multi-pool cluster once per policy and reports per-pool job counts and
// warm-hit rates side by side. Each round submits every key concurrently
// and waits for the round, so repeats of a key arrive after its first
// run finished — the iterative pattern the affinity policy rewards.
func runCluster(sched string, schedOpt adws.Scheduler, pools, workers, inflight int,
	policies []string, keys, jobs int, wlName string, n int, seed uint64) *benchfmt.Cluster {
	if pools < 1 || keys < 1 {
		fatalf("cluster mode needs -pools >= 1 and -keys >= 1 (got %d, %d)", pools, keys)
	}
	rounds := jobs / keys
	if rounds < 1 {
		rounds = 1
	}
	total := rounds * keys
	poolCounts := make([]int, pools)
	for i := range poolCounts {
		poolCounts[i] = workers
	}

	cl := &benchfmt.Cluster{
		Pools:    poolCounts,
		Sched:    sched,
		Workload: wlName,
		N:        effectiveN(wlName, n, seed),
		Seed:     seed,
		Keys:     keys,
		Rounds:   rounds,
	}
	fmt.Printf("adwsload: cluster %d×%d workers (%s), %d keys × %d rounds of %s\n",
		pools, workers, sched, keys, rounds, wlName)
	for _, pol := range policies {
		c, err := adws.NewCluster(poolCounts, pol,
			adws.WithScheduler(schedOpt),
			adws.WithSeed(seed),
			adws.WithAdmission(inflight, total+1),
		)
		if err != nil {
			fatalf("cluster: %v", err)
		}
		entry, err := drivePolicy(c, pol, keys, rounds, wlName, n, seed)
		c.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cl.Policies = append(cl.Policies, entry)
		fmt.Printf("  %-12s %d jobs in %.3fs — warm %5.1f%% (cold %d, spill %d, moved %d), e2e p50 %.1fms p99 %.1fms, per-pool %v\n",
			pol, entry.Jobs, entry.ElapsedS, entry.WarmRate*100,
			entry.Cold, entry.Spill, entry.Moved,
			entry.E2E.P50*1e3, entry.E2E.P99*1e3, entry.PerPoolJobs)
	}
	return cl
}

// drivePolicy runs the stream on one cluster and summarizes it.
func drivePolicy(c *adws.Cluster, policy string, keys, rounds int, wlName string, n int, seed uint64) (benchfmt.ClusterPolicy, error) {
	var (
		mu      sync.Mutex
		samples []float64
		firstE  error
	)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for k := 0; k < keys; k++ {
			wj, err := workload.NewJob(wlName, n, seed+uint64(k))
			if err != nil {
				return benchfmt.ClusterPolicy{}, fmt.Errorf("workload: %v", err)
			}
			key := fmt.Sprintf("k%d", k)
			submitted := time.Now()
			j, err := c.Submit(context.Background(), key, wj.Body, wj.Hint())
			if err != nil {
				return benchfmt.ClusterPolicy{}, fmt.Errorf("%s: submit round %d key %s: %v", policy, r, key, err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := j.Wait(context.Background())
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstE == nil {
					firstE = fmt.Errorf("%s: job %d: %v", policy, j.ClusterID(), err)
				}
				samples = append(samples, time.Since(submitted).Seconds())
			}()
		}
		wg.Wait()
		if firstE != nil {
			return benchfmt.ClusterPolicy{}, firstE
		}
	}
	elapsed := time.Since(start)

	counts := c.RouteCounts()
	tot := c.Totals()
	perPool := make([]int64, len(counts))
	for i, ct := range counts {
		perPool[i] = ct.Jobs
	}
	return benchfmt.ClusterPolicy{
		Policy:        policy,
		ElapsedS:      elapsed.Seconds(),
		JobsPerSecond: float64(tot.Jobs) / elapsed.Seconds(),
		Jobs:          tot.Jobs,
		Warm:          tot.Warm,
		Cold:          tot.Cold,
		Spill:         tot.Spill,
		Moved:         tot.Moved,
		Rejected:      tot.Rejected,
		WarmRate:      tot.WarmRate(),
		PerPoolJobs:   perPool,
		E2E:           summarizeSamples(samples),
	}, nil
}

// parseCohorts parses the -cohorts list: comma-separated class:jobs:n
// triples, kept in submission order.
func parseCohorts(spec string) []benchfmt.AdmissionCohort {
	var out []benchfmt.AdmissionCohort
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			fatalf("bad -cohorts entry %q (want class:jobs:n)", part)
		}
		var co benchfmt.AdmissionCohort
		co.Class = fields[0]
		if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &co.Jobs, &co.N); err != nil ||
			co.Class == "" || co.Jobs < 1 || co.N < 1 {
			fatalf("bad -cohorts entry %q (want class:jobs:n with positive counts)", part)
		}
		out = append(out, co)
	}
	if len(out) == 0 {
		fatalf("-admcompare needs at least one cohort")
	}
	return out
}

// runAdmission drives identical class cohorts through a fresh pool once
// per admission policy. Cohorts are submitted in listed order with no
// deadlines or tenant rate limits, so the default batch-first stream
// piles a large backlog into the queue before the interactive cohort
// arrives — under FIFO the interactive jobs wait out the backlog, under
// SLO the admitter dispatches them first. Dispatch is serialized by
// default (-adminflight 1), so each job gets the whole pool and the
// admission order translates directly into e2e latency rather than
// being washed out by inter-job worker contention. Every job must
// complete; per-class e2e is client-observed and queue-wait comes from
// per-job server stats, so the two policies are compared on identical
// instrumentation.
func runAdmission(sched string, schedOpt adws.Scheduler, workers, inflight int,
	policies []string, cohorts []benchfmt.AdmissionCohort, tenants int,
	wlName string, seed uint64) *benchfmt.Admission {
	if tenants < 1 {
		tenants = 1
	}
	total := 0
	for _, co := range cohorts {
		total += co.Jobs
	}
	adm := &benchfmt.Admission{
		Workers:  workers,
		Sched:    sched,
		Workload: wlName,
		Seed:     seed,
		Tenants:  tenants,
		Cohorts:  cohorts,
	}
	fmt.Printf("adwsload: admission comparison on %d workers (%s), cohorts %s, %d tenants\n",
		workers, sched, describeCohorts(cohorts), tenants)
	for _, pol := range policies {
		pool, err := adws.NewPool(
			adws.WithWorkers(workers),
			adws.WithScheduler(schedOpt),
			adws.WithSeed(seed),
			adws.WithAdmission(inflight, total+1),
			adws.WithAdmissionPolicy(pol),
		)
		if err != nil {
			fatalf("admission pool (%s): %v", pol, err)
		}
		entry, err := driveAdmission(pool, pol, cohorts, tenants, wlName, seed)
		pool.Close()
		if err != nil {
			fatalf("%v", err)
		}
		adm.Policies = append(adm.Policies, entry)
		for _, cl := range entry.Classes {
			fmt.Printf("  %-5s %-12s %3d jobs — e2e p50 %7.1fms p99 %7.1fms, queue-wait p99 %7.1fms, jain %.3f\n",
				pol, cl.Class, cl.Jobs, cl.E2E.P50*1e3, cl.E2E.P99*1e3, cl.QueueWait.P99*1e3, cl.Jain)
		}
	}
	return adm
}

// driveAdmission runs the cohorts on one pool and summarizes per class.
func driveAdmission(pool *adws.Pool, policy string, cohorts []benchfmt.AdmissionCohort,
	tenants int, wlName string, seed uint64) (benchfmt.AdmissionPolicy, error) {
	var (
		mu     sync.Mutex
		e2e    = make(map[string][]float64)
		wait   = make(map[string][]float64)
		firstE error
		wg     sync.WaitGroup
	)
	total := 0
	start := time.Now()
	for _, co := range cohorts {
		co := co
		for k := 0; k < co.Jobs; k++ {
			wj, err := workload.NewJob(wlName, co.N, seed+uint64(total))
			if err != nil {
				return benchfmt.AdmissionPolicy{}, fmt.Errorf("workload: %v", err)
			}
			h := wj.Hint()
			h.Class = co.Class
			h.Tenant = fmt.Sprintf("t%d", total%tenants)
			submitted := time.Now()
			j, err := pool.Submit(context.Background(), wj.Body, h)
			if err != nil {
				return benchfmt.AdmissionPolicy{}, fmt.Errorf("%s: submit %s job %d: %v", policy, co.Class, k, err)
			}
			total++
			wg.Add(1)
			// Sample e2e at the job's own completion, not when some
			// later sequential wait happens to reach it.
			go func() {
				defer wg.Done()
				err := j.Wait(context.Background())
				elapsed := time.Since(submitted).Seconds()
				st := j.Stats()
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstE == nil {
					firstE = fmt.Errorf("%s: %s job %d: %v", policy, co.Class, j.ID(), err)
				}
				e2e[co.Class] = append(e2e[co.Class], elapsed)
				wait[co.Class] = append(wait[co.Class], float64(st.Queued)/1e9)
			}()
		}
	}
	wg.Wait()
	if firstE != nil {
		return benchfmt.AdmissionPolicy{}, firstE
	}
	elapsed := time.Since(start)

	jain := pool.JainByClass()
	entry := benchfmt.AdmissionPolicy{
		Policy:        policy,
		ElapsedS:      elapsed.Seconds(),
		JobsPerSecond: float64(total) / elapsed.Seconds(),
		Jobs:          int64(total),
	}
	seen := make(map[string]bool)
	for _, co := range cohorts {
		if seen[co.Class] {
			continue
		}
		seen[co.Class] = true
		entry.Classes = append(entry.Classes, benchfmt.AdmissionClass{
			Class:     co.Class,
			Jobs:      int64(len(e2e[co.Class])),
			E2E:       summarizeSamples(e2e[co.Class]),
			QueueWait: summarizeSamples(wait[co.Class]),
			Jain:      jain[co.Class],
		})
	}
	return entry, nil
}

func describeCohorts(cohorts []benchfmt.AdmissionCohort) string {
	parts := make([]string, len(cohorts))
	for i, co := range cohorts {
		parts[i] = fmt.Sprintf("%s:%d:%d", co.Class, co.Jobs, co.N)
	}
	return strings.Join(parts, ",")
}

// runTarget drives a running adwsd daemon over HTTP with the same
// repeated-key stream. Transport failures are fatal with a clear error —
// an unreachable daemon must not be misread as a 100% reject rate — while
// 503 fast-rejects from a live daemon are counted as rejects.
func runTarget(target, wlName string, n, jobs, keys int, seed uint64, jsonOut, id, simIn string) {
	base := strings.TrimRight(target, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	// Preflight: the daemon must be answering before the stream starts.
	hr, err := client.Get(base + "/healthz")
	if err != nil {
		fatalf("target %s unreachable: %v — is adwsd running?", base, err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		fatalf("target %s /healthz returned %d, want 200", base, hr.StatusCode)
	}
	before, err := fetchPools(client, base)
	if err != nil {
		fatalf("%v", err)
	}

	if keys < 1 {
		keys = 1
	}
	rounds := jobs / keys
	if rounds < 1 {
		rounds = 1
	}
	type pending struct {
		id        int64
		submitted time.Time
	}
	var (
		accepted []pending
		rejected int64
	)
	start := time.Now()
	for i := 0; i < rounds*keys; i++ {
		body, _ := json.Marshal(map[string]any{
			"workload": wlName, "n": n, "seed": seed + uint64(i),
			"key": fmt.Sprintf("k%d", i%keys),
		})
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			fatalf("target %s became unreachable after %d submissions: %v", base, i, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var jr struct {
				ID int64 `json:"id"`
			}
			if err := json.Unmarshal(raw, &jr); err != nil {
				fatalf("bad POST /jobs response: %v", err)
			}
			accepted = append(accepted, pending{id: jr.ID, submitted: time.Now()})
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			// Overload and per-tenant rate-limit fast-rejects are expected
			// answers from a live daemon, not transport failures.
			rejected++
		default:
			fatalf("POST /jobs: status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		}
	}

	var samples []float64
	for _, p := range accepted {
		if err := waitRemote(client, base, p.id); err != nil {
			fatalf("%v", err)
		}
		samples = append(samples, time.Since(p.submitted).Seconds())
	}
	elapsed := time.Since(start)

	after, err := fetchPools(client, base)
	if err != nil {
		fatalf("%v", err)
	}
	entry := diffPools(before, after)
	entry.ElapsedS = elapsed.Seconds()
	entry.JobsPerSecond = float64(entry.Jobs) / elapsed.Seconds()
	entry.E2E = summarizeSamples(samples)

	perPool := entry.PerPoolJobs
	fmt.Printf("adwsload: %d jobs (%d rejected) against %s (%s, %d pools) in %.3fs — warm %5.1f%%, e2e p50 %.1fms p99 %.1fms, per-pool %v\n",
		entry.Jobs, rejected, base, after.Policy, len(after.Pools), elapsed.Seconds(),
		entry.WarmRate*100, entry.E2E.P50*1e3, entry.E2E.P99*1e3, perPool)

	if jsonOut != "" {
		poolCounts := make([]int, len(after.Pools))
		sched := "adws"
		for i, p := range after.Pools {
			poolCounts[i] = p.Workers
			sched = p.Scheduler
		}
		cl := &benchfmt.Cluster{
			Pools:    poolCounts,
			Sched:    sched,
			Workload: wlName,
			N:        effectiveN(wlName, n, seed),
			Seed:     seed,
			Keys:     keys,
			Rounds:   rounds,
			Policies: []benchfmt.ClusterPolicy{entry},
		}
		writePoint(jsonOut, id, simIn, nil, cl, nil)
	}
}

// poolsResponse mirrors adwsd's GET /pools body.
type poolsResponse struct {
	Policy string `json:"policy"`
	Pools  []struct {
		Pool      int    `json:"pool"`
		Workers   int    `json:"workers"`
		Scheduler string `json:"scheduler"`
		Routing   struct {
			Jobs     int64 `json:"jobs"`
			Warm     int64 `json:"warm"`
			Cold     int64 `json:"cold"`
			Spill    int64 `json:"spill"`
			Moved    int64 `json:"moved"`
			Rejected int64 `json:"rejected"`
		} `json:"routing"`
	} `json:"pools"`
}

func fetchPools(client *http.Client, base string) (poolsResponse, error) {
	var pr poolsResponse
	resp, err := client.Get(base + "/pools")
	if err != nil {
		return pr, fmt.Errorf("target %s unreachable: %v", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return pr, fmt.Errorf("GET /pools: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return pr, fmt.Errorf("GET /pools: %v", err)
	}
	return pr, nil
}

// diffPools attributes this run's routing by subtracting the pre-run
// counters, so a long-lived daemon's history does not pollute the point.
func diffPools(before, after poolsResponse) benchfmt.ClusterPolicy {
	entry := benchfmt.ClusterPolicy{Policy: after.Policy}
	for i, p := range after.Pools {
		d := p.Routing
		if i < len(before.Pools) {
			b := before.Pools[i].Routing
			d.Jobs -= b.Jobs
			d.Warm -= b.Warm
			d.Cold -= b.Cold
			d.Spill -= b.Spill
			d.Moved -= b.Moved
			d.Rejected -= b.Rejected
		}
		entry.Jobs += d.Jobs
		entry.Warm += d.Warm
		entry.Cold += d.Cold
		entry.Spill += d.Spill
		entry.Moved += d.Moved
		entry.Rejected += d.Rejected
		entry.PerPoolJobs = append(entry.PerPoolJobs, d.Jobs)
	}
	if entry.Jobs > 0 {
		entry.WarmRate = float64(entry.Warm) / float64(entry.Jobs)
	}
	return entry
}

func waitRemote(client *http.Client, base string, id int64) error {
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(fmt.Sprintf("%s/jobs/%d", base, id))
		if err != nil {
			return fmt.Errorf("target %s became unreachable waiting for job %d: %v", base, id, err)
		}
		var jr struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("job %d: bad response: %v", id, err)
		}
		switch jr.State {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %d: state %s: %s", id, jr.State, jr.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("job %d did not finish within 120s", id)
}

// summarizeSamples computes nearest-rank quantiles over client-observed
// latency samples, in seconds.
func summarizeSamples(samples []float64) benchfmt.Quantiles {
	if len(samples) == 0 {
		return benchfmt.Quantiles{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		idx := int(p*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return benchfmt.Quantiles{
		Count: int64(len(sorted)),
		P50:   rank(0.50),
		P90:   rank(0.90),
		P99:   rank(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// effectiveN resolves the workload's default problem size for reporting.
func effectiveN(wl string, n int, seed uint64) int {
	if n != 0 {
		return n
	}
	if wj, err := workload.NewJob(wl, 0, seed); err == nil {
		return wj.N
	}
	return n
}

// buildServe assembles the serve half of a trajectory point from the
// pool's registry and counters. Job outcomes are counted from the
// submitted handles, not pool.Jobs(), whose history is bounded.
func buildServe(pool *adws.Pool, handles []*adws.Job, sched, wl string, n int, seed uint64, elapsed time.Duration) *benchfmt.Serve {
	st := pool.Stats()
	q := func(name string) benchfmt.Quantiles {
		h := pool.Metrics().FindHistogram(name)
		if h == nil {
			fatalf("registry is missing histogram %s", name)
		}
		s := h.Snapshot()
		return s.SummarizeSeconds()
	}
	jobs := len(handles)
	var completed, failed, canceled int64
	for _, j := range handles {
		switch j.State() {
		case adws.JobDone:
			completed++
		case adws.JobFailed:
			failed++
		case adws.JobCanceled:
			canceled++
		}
	}
	return &benchfmt.Serve{
		Workers:       pool.NumWorkers(),
		Sched:         sched,
		Jobs:          jobs,
		Workload:      wl,
		N:             effectiveN(wl, n, seed),
		Seed:          seed,
		ElapsedS:      elapsed.Seconds(),
		JobsPerSecond: float64(jobs) / elapsed.Seconds(),
		Submitted:     int64(jobs),
		Completed:     completed,
		Failed:        failed,
		Canceled:      canceled,
		Tasks:         st.Tasks,
		Steals:        st.Steals,
		StealAttempts: st.StealAttempts,
		Migrations:    st.Migrations,
		Parks:         st.Parks,
		Wakes:         st.Wakes,
		QueueWait:     q("adws_job_queue_wait_seconds"),
		Service:       q("adws_job_service_seconds"),
		E2E:           q("adws_job_e2e_seconds"),
		Park:          q("adws_park_seconds"),
		StealAttempt:  q("adws_steal_attempt_seconds"),
		WakeToRun:     q("adws_wake_to_run_seconds"),
	}
}

// watchdogTriggers snapshots the pool watchdog's per-reason trigger
// counters, nil when the watchdog is disabled. adwsload records the
// snapshot before and after the run so the summary attributes any
// stall/burst/burn verdict to the load it drove.
func watchdogTriggers(pool *adws.Pool) map[string]int64 {
	wd := pool.Watchdog()
	if wd == nil {
		return nil
	}
	return wd.Triggers()
}

// total sums a per-reason trigger map.
func total(m map[string]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}

// selfCheck renders the registry and re-parses it with the strict
// exposition parser: the smoke gate that keeps /metrics valid.
func selfCheck(reg *adws.MetricsRegistry) {
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		fatalf("render: %v", err)
	}
	fams, err := metrics.ParseText(b.String())
	if err != nil {
		fatalf("exposition self-check failed: %v", err)
	}
	need := map[string]bool{
		"adws_job_queue_wait_seconds": false,
		"adws_job_service_seconds":    false,
		"adws_park_seconds":           false,
		"adws_tasks_total":            false,
	}
	for _, f := range fams {
		if _, ok := need[f.Name]; ok {
			need[f.Name] = true
		}
	}
	for name, seen := range need {
		if !seen {
			fatalf("exposition self-check: missing family %s", name)
		}
	}
	fmt.Printf("adwsload: exposition self-check passed (%d families)\n", len(fams))
}

// writePoint assembles and writes the trajectory point, validating it
// first so a malformed point never lands in the repo.
func writePoint(path, id, simIn string, serve *benchfmt.Serve, cl *benchfmt.Cluster, adm *benchfmt.Admission) {
	if id == "" {
		base := filepath.Base(path)
		id = strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
	}
	pt := benchfmt.Point{SchemaVersion: benchfmt.SchemaVersion, ID: id, Serve: serve, Cluster: cl, Admission: adm}
	if simIn != "" {
		raw, err := os.ReadFile(simIn)
		if err != nil {
			fatalf("read sim %s: %v", simIn, err)
		}
		pt.Sim = json.RawMessage(raw)
	}
	if err := pt.Validate(); err != nil {
		fatalf("refusing to write invalid point: %v", err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pt); err != nil {
		fatalf("encode: %v", err)
	}
}

// validatePoints schema-checks every file matching the glob; CI runs
// this over the committed BENCH_*.json trajectory.
func validatePoints(glob string) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		fatalf("bad glob %q: %v", glob, err)
	}
	if len(paths) == 0 {
		fatalf("no files match %q", glob)
	}
	for _, p := range paths {
		if _, err := benchfmt.ReadFile(p); err != nil {
			fatalf("invalid trajectory point: %v", err)
		}
		fmt.Printf("ok %s\n", p)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adwsload: "+format+"\n", args...)
	os.Exit(1)
}
