// adwsrun executes the real benchmark kernels on the real adws runtime
// under a chosen scheduler and reports wall-clock times and scheduling
// statistics.
//
// Usage:
//
//	adwsrun -bench quicksort -n 5000000 -sched adws
//	adwsrun -bench dtree -rows 500000 -accuracy
//	adwsrun -bench all -sched mladws
//	adwsrun -bench quicksort -trace out.json -tracesummary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/dataset"
	"github.com/parlab/adws/internal/dtree"
	"github.com/parlab/adws/internal/kernels"
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "all", "quicksort, kdtree, rrm, matmul, heat2d, sph, dtree, or all")
		schedStr = flag.String("sched", "adws", "ws, adws, mlws, or mladws")
		n        = flag.Int("n", 2_000_000, "problem size (elements / grid side per benchmark)")
		rows     = flag.Int("rows", 200_000, "decision tree dataset rows")
		iters    = flag.Int("iters", 10, "iterations for iterative benchmarks")
		accuracy = flag.Bool("accuracy", false, "report decision tree accuracy")
		workers  = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")

		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		traceSum  = flag.Bool("tracesummary", false, "print derived trace metrics (implies tracing)")
		traceCap  = flag.Int("tracecap", 0, "per-worker trace ring capacity in events (0 = default)")
		perWorker = flag.Bool("perworker", false, "print per-worker scheduling counters")
	)
	flag.Parse()

	var s adws.Scheduler
	switch *schedStr {
	case "ws":
		s = adws.WorkStealing
	case "adws":
		s = adws.ADWS
	case "mlws":
		s = adws.MultiLevelWS
	case "mladws":
		s = adws.MultiLevelADWS
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedStr)
		os.Exit(1)
	}
	opts := []adws.Option{adws.WithScheduler(s)}
	if *workers > 0 {
		opts = append(opts, adws.WithWorkers(*workers))
	}
	if *traceOut != "" || *traceSum {
		opts = append(opts, adws.WithTracing(*traceCap))
	}
	pool, err := adws.NewPool(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer pool.Close()
	fmt.Printf("scheduler=%v workers=%d\n", s, pool.NumWorkers())

	run := func(name string, fn func()) {
		if *bench != "all" && *bench != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("%-10s %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	rng := sched.NewRNG(1, 0)
	run("quicksort", func() {
		data := make([]float64, *n)
		for i := range data {
			data[i] = rng.Float64()
		}
		kernels.Quicksort(pool, data)
		if !sort.Float64sAreSorted(data) {
			fmt.Fprintln(os.Stderr, "quicksort: NOT SORTED")
			os.Exit(1)
		}
	})
	run("kdtree", func() {
		pts := make([]kernels.KDPoint, *n)
		for i := range pts {
			pts[i] = kernels.KDPoint{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
		kernels.KDTree(pool, pts)
	})
	run("rrm", func() {
		data := make([]float64, *n)
		for i := range data {
			data[i] = 1
		}
		kernels.RRM(pool, data, 1)
	})
	run("matmul", func() {
		side := 512
		A, B, C := kernels.NewMatrix(side), kernels.NewMatrix(side), kernels.NewMatrix(side)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				A.Set(i, j, float32(rng.Float64()))
				B.Set(i, j, float32(rng.Float64()))
			}
		}
		kernels.MatMul(pool, C, A, B)
	})
	run("heat2d", func() {
		side := 1024
		src, dst := kernels.NewGrid(side), kernels.NewGrid(side)
		src.Set(side/2, side/2, 1000)
		kernels.Heat2D(pool, src, dst, *iters)
	})
	run("sph", func() {
		sys := kernels.NewDamBreak(min(*n, 200_000), 3)
		for it := 0; it < min(*iters, 5); it++ {
			sys.ComputeForces(pool)
		}
	})
	run("dtree", func() {
		ds := dataset.Synthetic(*rows, dataset.DefaultAttrs, 42)
		train, test := ds.Split(*rows / 20)
		tree := dtree.Train(pool, ds, train, dtree.DefaultConfig())
		if *accuracy {
			fmt.Printf("  accuracy=%.1f%% over %d nodes (chance ~50%%)\n",
				100*tree.Accuracy(ds, test), tree.Nodes)
		}
	})

	st := pool.Stats()
	fmt.Printf("tasks=%d migrations=%d %s (%.1f%% success) busy=%v idle=%v\n",
		st.Tasks, st.Migrations, trace.StealRatio(st.Steals, st.StealAttempts),
		100*st.StealSuccessRate(),
		time.Duration(st.BusyNS).Round(time.Millisecond),
		time.Duration(st.IdleNS).Round(time.Millisecond))
	if *perWorker {
		for _, w := range st.PerWorker {
			fmt.Printf("  worker %2d: tasks=%d migrations=%d %s busy=%v idle=%v\n",
				w.Worker, w.Tasks, w.Migrations, trace.StealRatio(w.Steals, w.StealAttempts),
				time.Duration(w.BusyNS).Round(time.Millisecond),
				time.Duration(w.IdleNS).Round(time.Millisecond))
		}
	}

	if tr := pool.Tracer(); tr != nil {
		if *traceSum {
			fmt.Print(tr.Summarize().String())
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tr.WriteChromeTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d workers, %d dropped events)\n",
				*traceOut, tr.NumWorkers(), tr.Drops())
		}
	}
}
