package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/workload"
)

// TestDaemonEndToEnd drives the full job-serving stack over HTTP: a
// 4-worker ADWS pool with a small admission window (2 running, 4 queued)
// serving concurrent submissions with mixed hints. Two blocker jobs pin
// both in-flight slots so that 8 concurrent submissions split
// deterministically into 4 queued and 4 ErrOverloaded fast-rejects; after
// release, every accepted job must complete with a verified result and
// populated per-job stats, and the rejected workloads resubmit cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	pool, err := adws.NewPool(
		adws.WithScheduler(adws.ADWS),
		adws.WithWorkers(4),
		adws.WithAdmission(2, 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c, err := adws.ClusterOf(adws.RouteRoundRobin, pool)
	if err != nil {
		t.Fatal(err)
	}

	d := newDaemon(c, false)
	release := make(chan struct{})
	d.workloads["block"] = func(n int, seed uint64) (workload.Job, error) {
		return workload.Job{Name: "block", N: n, Work: 1,
			Body: func(c *adws.Ctx) error { <-release; return nil }}, nil
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	post := func(body string) (int, jobResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr jobResponse
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, jr
	}

	// Occupy both in-flight slots. The admission layer counts them as
	// running immediately, regardless of when a worker picks them up.
	for i := 0; i < 2; i++ {
		if code, _ := post(`{"workload": "block"}`); code != http.StatusAccepted {
			t.Fatalf("block job %d: status %d, want 202", i, code)
		}
	}
	if queued, running := pool.InFlight(); queued != 0 || running != 2 {
		t.Fatalf("after blockers: queued=%d running=%d, want 0, 2", queued, running)
	}

	// 8 concurrent submissions, mixed workloads and hints. Both slots are
	// pinned and the queue holds 4, so exactly 4 are accepted (queued) and
	// 4 fast-reject with ErrOverloaded (503).
	reqs := []string{
		`{"workload": "quicksort", "n": 20000, "work": 3}`,
		`{"workload": "fib", "n": 22, "work": 1}`,
		`{"workload": "matmul", "n": 48, "work": 2, "size": 27648}`,
		`{"workload": "rrm", "n": 20000, "work": 1}`,
		`{"workload": "heat2d", "n": 64, "work": 2}`,
		`{"workload": "kdtree", "n": 10000, "work": 3}`,
		`{"workload": "quicksort", "n": 10000, "seed": 7}`,
		`{"workload": "fib", "n": 20, "work": 0.5}`,
	}
	var mu sync.Mutex
	var accepted []int64
	var rejected []string
	var wg sync.WaitGroup
	for _, req := range reqs {
		req := req
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, jr := post(req)
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusAccepted:
				accepted = append(accepted, jr.ID)
			case http.StatusServiceUnavailable:
				rejected = append(rejected, req)
			default:
				t.Errorf("POST %s: status %d", req, code)
			}
		}()
	}
	wg.Wait()
	if len(accepted) != 4 || len(rejected) != 4 {
		t.Fatalf("accepted %d rejected %d, want 4 and 4", len(accepted), len(rejected))
	}

	// Release the blockers; the queue drains and every accepted job runs.
	close(release)
	waitDone := func(ids []int64) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for _, id := range ids {
			j, ok := pool.Job(id)
			if !ok {
				t.Fatalf("job %d not retained", id)
			}
			if err := j.Wait(ctx); err != nil {
				t.Fatalf("job %d: %v", id, err)
			}
		}
	}
	waitDone(accepted)

	// The rejected workloads resubmit cleanly once the overload clears.
	var resubmitted []int64
	for _, req := range rejected {
		code, jr := post(req)
		if code != http.StatusAccepted {
			t.Fatalf("resubmit %s: status %d, want 202", req, code)
		}
		resubmitted = append(resubmitted, jr.ID)
	}
	waitDone(resubmitted)

	// Every completed job carries a verified result (body self-checks
	// report through Err) and populated per-job stats.
	for _, id := range append(append([]int64{}, accepted...), resubmitted...) {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jr.State != "done" || jr.Error != "" {
			t.Errorf("job %d: state %q error %q, want done", id, jr.State, jr.Error)
		}
		if jr.Tasks <= 0 {
			t.Errorf("job %d: tasks = %d, want positive", id, jr.Tasks)
		}
		if !(jr.RangeLo < jr.RangeHi) || jr.RangeLo < 0 || jr.RangeHi > 1 {
			t.Errorf("job %d: range [%v, %v) invalid", id, jr.RangeLo, jr.RangeHi)
		}
		if jr.RunMS <= 0 {
			t.Errorf("job %d: run_ms = %v, want positive", id, jr.RunMS)
		}
		if jr.Workload == "" {
			t.Errorf("job %d: workload name missing", id)
		}
	}

	// GET /jobs lists every retained job (2 blockers + 8 completed).
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 10 {
		t.Errorf("GET /jobs returned %d jobs, want 10", len(all))
	}
}

func TestDaemonHealthAndMetrics(t *testing.T) {
	pool, err := adws.NewPool(adws.WithScheduler(adws.ADWS), adws.WithWorkers(2), adws.WithTracing(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c, err := adws.ClusterOf(adws.RouteAffinity, pool)
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(c, true)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	if code, _ := postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 20}`); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["workers"] != float64(2) {
		t.Errorf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"adws_tasks_total", "adws_steals_total", "adws_workers 2",
		"adws_parks_total", "adws_wakes_total",
		"adws_jobs_queued 0", "adws_jobs_running 0",
		// Pool idle + -tracemetrics: the trace-derived section appears.
		"adws_trace_steal_success_rate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDaemonBadRequests(t *testing.T) {
	pool, err := adws.NewPool(adws.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c, err := adws.ClusterOf(adws.RouteRoundRobin, pool)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newDaemon(c, false).handler())
	defer ts.Close()

	if code, _ := postJSON(t, ts.URL+"/jobs", `{"workload": "no-such"}`); code != http.StatusBadRequest {
		t.Errorf("unknown workload: status %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/jobs", `{not json`); code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 99}`); code != http.StatusBadRequest {
		t.Errorf("oversized fib: status %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /jobs/999: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/jobs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /jobs/zzz: status %d, want 400", resp.StatusCode)
	}
}

func postJSON(t *testing.T, url, body string) (int, jobResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, jr
}

// TestDaemonMetricsScrapeUnderLoad pins the tentpole scrape contract:
// /metrics renders format-valid Prometheus text exposition (validated by
// the strict internal parser, not substring checks) while jobs are
// queued and running, with the latency histogram families present; and
// after a drain the job histograms account for every completed job.
func TestDaemonMetricsScrapeUnderLoad(t *testing.T) {
	pool, err := adws.NewPool(
		adws.WithScheduler(adws.ADWS),
		adws.WithWorkers(4),
		adws.WithAdmission(2, 32),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c, err := adws.ClusterOf(adws.RouteRoundRobin, pool)
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(c, false)
	release := make(chan struct{})
	d.workloads["block"] = func(n int, seed uint64) (workload.Job, error) {
		return workload.Job{Name: "block", N: n, Work: 1,
			Body: func(c *adws.Ctx) error { <-release; return nil }}, nil
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	scrape := func() []metrics.Family {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fams, err := metrics.ParseText(string(raw))
		if err != nil {
			t.Fatalf("scrape is not valid exposition: %v\n%s", err, raw)
		}
		return fams
	}

	// Two blockers pin both running slots; the fib jobs queue behind them,
	// so scrapes below observe queued AND running jobs.
	const blockers, fibs = 2, 6
	for i := 0; i < blockers; i++ {
		if code, _ := postJSON(t, ts.URL+"/jobs", `{"workload": "block"}`); code != http.StatusAccepted {
			t.Fatalf("POST blocker: status %d", code)
		}
	}
	for i := 0; i < fibs; i++ {
		if code, _ := postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 22}`); code != http.StatusAccepted {
			t.Fatalf("POST fib: status %d", code)
		}
	}

	// Concurrent scrapes under load: every one must parse strictly and
	// carry the histogram families.
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				fams := scrape()
				byName := make(map[string]metrics.Family, len(fams))
				for _, f := range fams {
					byName[f.Name] = f
				}
				for _, want := range []string{
					"adws_job_queue_wait_seconds", "adws_job_service_seconds",
					"adws_job_e2e_seconds", "adws_park_seconds",
					"adws_steal_attempt_seconds", "adws_wake_to_run_seconds",
				} {
					if f, ok := byName[want]; !ok {
						t.Errorf("scrape missing family %s", want)
					} else if f.Type != "histogram" {
						t.Errorf("family %s has type %s, want histogram", want, f.Type)
					}
				}
			}
		}()
	}
	wg.Wait()

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := pool.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Drained: the e2e histogram accounts for every job, and the legacy
	// gauges read zero.
	fams := scrape()
	count := func(family string) float64 {
		t.Helper()
		for _, f := range fams {
			if f.Name != family {
				continue
			}
			for _, s := range f.Samples {
				if s.Name == family+"_count" {
					return s.Value
				}
			}
		}
		t.Fatalf("no %s_count sample", family)
		return 0
	}
	if got := count("adws_job_e2e_seconds"); got != blockers+fibs {
		t.Errorf("e2e count = %g, want %d", got, blockers+fibs)
	}
	if got := count("adws_job_service_seconds"); got != blockers+fibs {
		t.Errorf("service count = %g, want %d", got, blockers+fibs)
	}
	for _, f := range fams {
		if f.Name == "adws_jobs_running" || f.Name == "adws_jobs_queued" {
			if v, ok := f.Sample(); !ok || v != 0 {
				t.Errorf("drained daemon: %s = %g, want 0", f.Name, v)
			}
		}
	}
}

// TestDaemonMultiPoolRouting drives a 2-pool affinity daemon: repeated
// keys stay on their warm pool (visible in each job's pool/verdict
// fields), /pools exposes the per-pool routing ledger, jobs are
// addressable across pools by cluster id, and /metrics grows the
// cluster families plus per-pool scrapes via ?pool=i.
func TestDaemonMultiPoolRouting(t *testing.T) {
	c, err := adws.NewCluster([]int{2, 2}, adws.RouteAffinity,
		adws.WithScheduler(adws.ADWS), adws.WithAdmission(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d := newDaemon(c, false)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// 3 keys x 3 rounds, sequentially: round one is cold, later rounds
	// must come back warm on the same pool.
	poolOf := make(map[string]int)
	var ids []int64
	for round := 0; round < 3; round++ {
		for _, key := range []string{"ka", "kb", "kc"} {
			code, jr := postJSON(t, ts.URL+"/jobs",
				fmt.Sprintf(`{"workload": "fib", "n": 18, "key": %q}`, key))
			if code != http.StatusAccepted {
				t.Fatalf("POST key %s: status %d", key, code)
			}
			if round == 0 {
				if jr.Verdict != "cold" {
					t.Errorf("round 0 key %s: verdict %q, want cold", key, jr.Verdict)
				}
				poolOf[key] = jr.Pool
			} else {
				if jr.Verdict != "warm" || jr.Pool != poolOf[key] {
					t.Errorf("round %d key %s: pool %d verdict %q, want warm on pool %d",
						round, key, jr.Pool, jr.Verdict, poolOf[key])
				}
			}
			ids = append(ids, jr.ID)
			waitDaemonJob(t, ts.URL, jr.ID)
		}
	}

	// Cluster ids resolve regardless of which pool ran the job.
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jr.State != "done" || jr.Key != "" && jr.Workload == "" {
			t.Errorf("job %d: %+v", id, jr)
		}
	}

	// /pools: policy + per-pool ledger; warm/cold totals match the stream.
	resp, err := http.Get(ts.URL + "/pools")
	if err != nil {
		t.Fatal(err)
	}
	var pl struct {
		Policy string         `json:"policy"`
		Pools  []poolResponse `json:"pools"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pl.Policy != adws.RouteAffinity || len(pl.Pools) != 2 {
		t.Fatalf("/pools = policy %q, %d pools", pl.Policy, len(pl.Pools))
	}
	var jobs, warm, cold int64
	for i, p := range pl.Pools {
		if p.Pool != i || p.Workers != 2 {
			t.Errorf("pool %d entry = %+v", i, p)
		}
		jobs += p.Routing.Jobs
		warm += p.Routing.Warm
		cold += p.Routing.Cold
		if p.Admission.Submitted != p.Routing.Jobs {
			t.Errorf("pool %d: admission submitted %d != routed %d",
				i, p.Admission.Submitted, p.Routing.Jobs)
		}
	}
	if jobs != 9 || warm != 6 || cold != 3 {
		t.Errorf("routing totals jobs/warm/cold = %d/%d/%d, want 9/6/3", jobs, warm, cold)
	}

	// Multi-pool /metrics: cluster families only; ?pool=i adds that
	// pool's registry; out-of-range pool is a 400.
	body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "adws_cluster_routed_total") || strings.Contains(body, "adws_tasks_total") {
		t.Errorf("multi-pool /metrics wrong families:\n%s", body)
	}
	if _, err := metrics.ParseText(body); err != nil {
		t.Errorf("cluster scrape is not valid exposition: %v", err)
	}
	body = getBody(t, ts.URL+"/metrics?pool=1")
	if !strings.Contains(body, "adws_tasks_total") || !strings.Contains(body, "adws_workers 2") {
		t.Errorf("/metrics?pool=1 missing pool families:\n%s", body)
	}
	resp, err = http.Get(ts.URL + "/metrics?pool=7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/metrics?pool=7: status %d, want 400", resp.StatusCode)
	}

	// /healthz reports the cluster shape.
	var health map[string]any
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["pools"] != float64(2) || health["workers"] != float64(4) || health["policy"] != adws.RouteAffinity {
		t.Errorf("healthz = %v", health)
	}
}

// waitDaemonJob polls GET /jobs/{id} until the job is terminal.
func waitDaemonJob(t *testing.T, base string, id int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
		if err != nil {
			t.Fatal(err)
		}
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch jr.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %d: state %q error %q", id, jr.State, jr.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d did not finish", id)
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestDaemonSLOAdmission drives the SLO admission surface over HTTP: a
// pool started with the slo policy and a tight per-tenant rate limit
// must echo the normalized class and tenant on POST /jobs, reject
// unknown classes with 400, rate-limit a tenant's second burst-exceeding
// submission with 429 while leaving other tenants unaffected, and expose
// the per-class breakdown on /pools and the policy on /healthz.
func TestDaemonSLOAdmission(t *testing.T) {
	pool, err := adws.NewPool(
		adws.WithWorkers(2),
		adws.WithAdmissionPolicy(adws.AdmitSLO),
		adws.WithTenantRateLimit(0.001, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	c, err := adws.ClusterOf(adws.RouteRoundRobin, pool)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newDaemon(c, false).handler())
	defer ts.Close()

	code, jr := postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 20, "class": "interactive", "tenant": "a"}`)
	if code != http.StatusAccepted {
		t.Fatalf("interactive submit: status %d, want 202", code)
	}
	if jr.Class != adws.ClassInteractive || jr.Tenant != "a" {
		t.Fatalf("response class=%q tenant=%q, want interactive/a", jr.Class, jr.Tenant)
	}
	// Empty class normalizes to the pool's default.
	code, jr = postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 20, "tenant": "b"}`)
	if code != http.StatusAccepted {
		t.Fatalf("default-class submit: status %d, want 202", code)
	}
	if jr.Class != adws.ClassStandard {
		t.Fatalf("default class = %q, want %q", jr.Class, adws.ClassStandard)
	}
	if code, _ := postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 20, "class": "no-such"}`); code != http.StatusBadRequest {
		t.Errorf("unknown class: status %d, want 400", code)
	}
	// Tenant "a" spent its single burst token; tenant "c" still has one.
	if code, _ = postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 20, "tenant": "a"}`); code != http.StatusTooManyRequests {
		t.Errorf("rate-limited tenant: status %d, want 429", code)
	}
	if code, _ = postJSON(t, ts.URL+"/jobs", `{"workload": "fib", "n": 20, "class": "batch", "tenant": "c"}`); code != http.StatusAccepted {
		t.Errorf("fresh tenant: status %d, want 202", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	var health map[string]any
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health["admission"] != adws.AdmitSLO {
		t.Errorf("healthz admission = %v, want %q", health["admission"], adws.AdmitSLO)
	}

	var poolsResp struct {
		Pools []poolResponse `json:"pools"`
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/pools")), &poolsResp); err != nil {
		t.Fatal(err)
	}
	if len(poolsResp.Pools) != 1 {
		t.Fatalf("pools = %d, want 1", len(poolsResp.Pools))
	}
	p := poolsResp.Pools[0]
	if got := p.Classes[adws.ClassInteractive].Submitted; got != 1 {
		t.Errorf("interactive submitted = %d, want 1", got)
	}
	if got := p.Classes[adws.ClassStandard].Submitted; got != 1 {
		t.Errorf("standard submitted = %d, want 1", got)
	}
	if got := p.Classes[adws.ClassBatch].Submitted; got != 1 {
		t.Errorf("batch submitted = %d, want 1", got)
	}
	if got := p.Classes[adws.ClassStandard].Rejected; got != 1 {
		t.Errorf("standard rejected = %d, want 1 (rate-limited tenant a)", got)
	}
	if len(p.QueuedByClass) != 3 {
		t.Errorf("queued_by_class has %d classes, want 3", len(p.QueuedByClass))
	}
	if got := p.Routing.Classes[adws.ClassInteractive]; got != 1 {
		t.Errorf("routing ledger interactive = %d, want 1", got)
	}
}
