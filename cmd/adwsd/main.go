// Command adwsd serves named adws workloads as jobs over HTTP on one
// persistent worker pool, exercising the job-serving layer (Pool.Submit,
// admission control, per-job stats) end to end.
//
// Endpoints:
//
//	POST /jobs       {"workload": "quicksort", "n": 500000, "work": 2, ...}
//	GET  /jobs       all retained jobs
//	GET  /jobs/{id}  one job
//	GET  /healthz    liveness + admission state
//	GET  /metrics    Prometheus-style text exposition
//
// Shutdown: SIGINT/SIGTERM drains in-flight jobs (bounded by -draintimeout)
// before closing the pool.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/parlab/adws"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:7117", "listen address")
		schedName    = flag.String("sched", "adws", "scheduler: ws, adws, mlws, mladws")
		workers      = flag.Int("workers", 0, "worker count (0: GOMAXPROCS)")
		maxInFlight  = flag.Int("maxinflight", 0, "max concurrently running jobs (0: one per worker)")
		maxQueue     = flag.Int("maxqueue", 0, "admission queue depth (0: 4x maxinflight)")
		seed         = flag.Uint64("seed", 1, "victim-selection seed")
		traceCap     = flag.Int("trace", 0, "enable tracing with this per-worker ring capacity (0: off)")
		traceMetrics = flag.Bool("tracemetrics", false, "expose trace-derived metrics on /metrics when idle (requires -trace)")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	)
	flag.Parse()

	sched, err := parseScheduler(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	opts := []adws.Option{
		adws.WithScheduler(sched),
		adws.WithSeed(*seed),
		adws.WithAdmission(*maxInFlight, *maxQueue),
	}
	if *workers > 0 {
		opts = append(opts, adws.WithWorkers(*workers))
	}
	if *traceCap > 0 {
		opts = append(opts, adws.WithTracing(*traceCap))
	}
	pool, err := adws.NewPool(opts...)
	if err != nil {
		log.Fatal(err)
	}

	d := newDaemon(pool, *traceMetrics && *traceCap > 0)
	srv := &http.Server{Addr: *addr, Handler: d.handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("adwsd: serving on http://%s (%s, %d workers)",
		*addr, pool.Scheduler(), pool.NumWorkers())

	select {
	case sig := <-stop:
		log.Printf("adwsd: %v, draining (timeout %v)", sig, *drainTimeout)
	case err := <-serveErr:
		log.Fatalf("adwsd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := pool.Drain(ctx); err != nil {
		log.Printf("adwsd: drain: %v (closing anyway)", err)
	}
	pool.Close()
	log.Printf("adwsd: bye")
}

func parseScheduler(name string) (adws.Scheduler, error) {
	switch strings.ToLower(name) {
	case "ws":
		return adws.WorkStealing, nil
	case "adws":
		return adws.ADWS, nil
	case "mlws":
		return adws.MultiLevelWS, nil
	case "mladws":
		return adws.MultiLevelADWS, nil
	}
	return 0, fmt.Errorf("adwsd: unknown scheduler %q (want ws, adws, mlws, mladws)", name)
}
