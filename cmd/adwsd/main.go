// Command adwsd serves named adws workloads as jobs over HTTP on a
// cluster of persistent worker pools, exercising the job-serving layer
// (routing, admission control, per-job stats) end to end. With the
// default -pools 1 it behaves as a single-pool daemon; with -pools N
// each submitted job is routed to one pool by the -policy router and
// /pools exposes the per-pool routing ledger.
//
// Endpoints:
//
//	POST /jobs            {"workload": "quicksort", "n": 500000, "key": "sort-a", ...}
//	GET  /jobs            all retained jobs
//	GET  /jobs/{id}       one job
//	GET  /pools           per-pool load, admission counters, routing ledger
//	GET  /healthz         liveness + admission state + watchdog verdicts
//	                      (503 while a stall verdict is active)
//	GET  /metrics         cluster registry (+ pool registry when -pools 1)
//	GET  /metrics?pool=i  pool i's registry
//	GET  /debug/sched     live per-worker scheduler state (?pool=i)
//	GET  /debug/fr        flight-recorder dump (?pool=i, ?format=chrome)
//	GET  /debug/pprof/    stdlib pprof index and profiles
//
// Shutdown: SIGINT/SIGTERM drains in-flight jobs (bounded by -draintimeout)
// before closing the pools.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/parlab/adws"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:7117", "listen address")
		schedName    = flag.String("sched", "adws", "scheduler: ws, adws, mlws, mladws")
		pools        = flag.Int("pools", 1, "pool count (shards)")
		policy       = flag.String("policy", adws.RouteAffinity, "routing policy: "+strings.Join(adws.RoutingPolicies(), ", "))
		workers      = flag.Int("workers", 0, "workers per pool (0: GOMAXPROCS)")
		poolWorkers  = flag.String("poolworkers", "", "comma-separated per-pool worker counts, overrides -pools/-workers (e.g. 4,4,8)")
		maxInFlight  = flag.Int("maxinflight", 0, "max concurrently running jobs per pool (0: one per worker)")
		maxQueue     = flag.Int("maxqueue", 0, "admission queue depth per pool (0: 4x maxinflight)")
		admission    = flag.String("admission", adws.AdmitFIFO, "admission policy per pool: fifo, slo")
		tenantRate   = flag.Float64("tenantrate", 0, "per-tenant submit rate in jobs/s under -admission=slo (0: unlimited)")
		tenantBurst  = flag.Float64("tenantburst", 0, "per-tenant token-bucket burst (0: max(1, rate))")
		seed         = flag.Uint64("seed", 1, "victim-selection seed")
		traceCap     = flag.Int("trace", 0, "enable per-pool tracing with this per-worker ring capacity (0: off)")
		traceMetrics = flag.Bool("tracemetrics", false, "expose trace-derived metrics on pool scrapes when idle (requires -trace)")
		frCap        = flag.Int("frcap", 0, "flight-recorder ring capacity per worker (0: default 4096; negative: disable)")
		frDir        = flag.String("frdir", "", "directory for watchdog flight-recorder dump files (default $ADWS_FR_DIR)")
		stallAfter   = flag.Duration("stallafter", 0, "watchdog worker-stall threshold (0: default 250ms)")
		noWatchdog   = flag.Bool("nowatchdog", false, "disable the stall/SLO watchdog")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	)
	flag.Parse()

	sched, err := parseScheduler(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := parsePoolWorkers(*poolWorkers, *pools, *workers)
	if err != nil {
		log.Fatal(err)
	}
	opts := []adws.Option{
		adws.WithScheduler(sched),
		adws.WithSeed(*seed),
		adws.WithAdmission(*maxInFlight, *maxQueue),
		adws.WithAdmissionPolicy(*admission),
		adws.WithTenantRateLimit(*tenantRate, *tenantBurst),
	}
	if *traceCap > 0 {
		opts = append(opts, adws.WithTracing(*traceCap))
	}
	if *frCap != 0 {
		opts = append(opts, adws.WithFlightRecorder(*frCap))
	}
	if *noWatchdog {
		opts = append(opts, adws.WithoutWatchdog())
	} else if *frDir != "" || *stallAfter > 0 {
		opts = append(opts, adws.WithWatchdog(adws.WatchdogConfig{
			DumpDir:    *frDir,
			StallAfter: *stallAfter,
		}))
	}
	cluster, err := adws.NewCluster(counts, *policy, opts...)
	if err != nil {
		log.Fatal(err)
	}

	d := newDaemon(cluster, *traceMetrics && *traceCap > 0)
	srv := &http.Server{Addr: *addr, Handler: d.handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("adwsd: serving on http://%s (%s, %d pools, %d workers, policy %s, admission %s)",
		*addr, cluster.Pool(0).Scheduler(), cluster.NumPools(), cluster.Workers(),
		cluster.Policy(), cluster.Pool(0).AdmissionPolicy())

	select {
	case sig := <-stop:
		log.Printf("adwsd: %v, draining (timeout %v)", sig, *drainTimeout)
	case err := <-serveErr:
		log.Fatalf("adwsd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := cluster.Drain(ctx); err != nil {
		log.Printf("adwsd: drain: %v (closing anyway)", err)
	}
	cluster.Close()
	log.Printf("adwsd: bye")
}

// parsePoolWorkers resolves the per-pool worker counts: an explicit
// -poolworkers list wins; otherwise -pools copies of -workers.
func parsePoolWorkers(list string, pools, workers int) ([]int, error) {
	if list == "" {
		if pools < 1 {
			return nil, fmt.Errorf("adwsd: -pools must be at least 1, got %d", pools)
		}
		counts := make([]int, pools)
		for i := range counts {
			counts[i] = workers
		}
		return counts, nil
	}
	var counts []int
	for _, s := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("adwsd: bad -poolworkers entry %q (want non-negative ints)", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func parseScheduler(name string) (adws.Scheduler, error) {
	switch strings.ToLower(name) {
	case "ws":
		return adws.WorkStealing, nil
	case "adws":
		return adws.ADWS, nil
	case "mlws":
		return adws.MultiLevelWS, nil
	case "mladws":
		return adws.MultiLevelADWS, nil
	}
	return 0, fmt.Errorf("adwsd: unknown scheduler %q (want ws, adws, mlws, mladws)", name)
}
