package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/trace"
	"github.com/parlab/adws/internal/workload"
)

// jobRequest is the POST /jobs body.
type jobRequest struct {
	// Workload names a built-in workload (see workload.JobNames).
	Workload string `json:"workload"`
	// N is the problem size (0: the workload's default).
	N int `json:"n,omitempty"`
	// Seed drives the pseudo-random input (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Work and Size override the workload's default admission hints.
	Work float64 `json:"work,omitempty"`
	Size int64   `json:"size,omitempty"`
	// DeadlineMS, when positive, cancels the job if it is still queued
	// this many milliseconds after submission.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// jobResponse describes one job in GET /jobs[/{id}] and POST /jobs.
type jobResponse struct {
	ID       int64   `json:"id"`
	Workload string  `json:"workload"`
	State    string  `json:"state"`
	Error    string  `json:"error,omitempty"`
	QueuedMS float64 `json:"queued_ms"`
	RunMS    float64 `json:"run_ms"`
	RangeLo  float64 `json:"range_lo"`
	RangeHi  float64 `json:"range_hi"`
	Tasks    int64   `json:"tasks"`
	Steals   int64   `json:"steals"`
	Migrs    int64   `json:"migrations"`
}

// builder constructs a named workload; the daemon's registry maps
// workload names to builders (tests may inject extra entries).
type builder func(n int, seed uint64) (workload.Job, error)

// daemon is the HTTP job-serving frontend over one adws pool.
type daemon struct {
	pool      *adws.Pool
	workloads map[string]builder
	// traceMetrics enables the trace-derived section of /metrics. The
	// tracer's rings may only be read while the pool is quiescent
	// (docs/TRACING.md); enable it only for scrapes of idle or drained
	// daemons.
	traceMetrics bool

	mu    sync.Mutex
	names map[int64]string // job id -> workload name
	start time.Time
}

func newDaemon(pool *adws.Pool, traceMetrics bool) *daemon {
	d := &daemon{
		pool:         pool,
		workloads:    make(map[string]builder),
		traceMetrics: traceMetrics,
		names:        make(map[int64]string),
		start:        time.Now(),
	}
	for _, name := range workload.JobNames() {
		name := name
		d.workloads[name] = func(n int, seed uint64) (workload.Job, error) {
			return workload.NewJob(name, n, seed)
		}
	}
	return d
}

// handler builds the daemon's route table.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.postJob)
	mux.HandleFunc("GET /jobs", d.listJobs)
	mux.HandleFunc("GET /jobs/{id}", d.getJob)
	mux.HandleFunc("GET /healthz", d.healthz)
	mux.HandleFunc("GET /metrics", d.metrics)
	return mux
}

func (d *daemon) postJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	build, ok := d.workloads[req.Workload]
	if !ok {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown workload %q (have %v)", req.Workload, workload.JobNames()))
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	wj, err := build(req.N, seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	hint := wj.Hint()
	if req.Work > 0 {
		hint.Work = req.Work
	}
	if req.Size > 0 {
		hint.Size = req.Size
	}
	if req.DeadlineMS > 0 {
		hint.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	body := wj.Body
	j, err := d.pool.Submit(context.Background(), func(c *adws.Ctx) error { return body(c) }, hint)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, adws.ErrOverloaded) || errors.Is(err, adws.ErrDraining) ||
			errors.Is(err, adws.ErrPoolClosed) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	d.mu.Lock()
	d.names[j.ID()] = wj.Name
	d.mu.Unlock()
	writeJSON(w, http.StatusAccepted, d.describe(j))
}

func (d *daemon) getJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	j, ok := d.pool.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, d.describe(j))
}

func (d *daemon) listJobs(w http.ResponseWriter, r *http.Request) {
	jobs := d.pool.Jobs()
	out := make([]jobResponse, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, d.describe(j))
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *daemon) describe(j *adws.Job) jobResponse {
	st := j.Stats()
	d.mu.Lock()
	name := d.names[j.ID()]
	d.mu.Unlock()
	resp := jobResponse{
		ID:       j.ID(),
		Workload: name,
		State:    j.State().String(),
		QueuedMS: float64(st.Queued) / 1e6,
		RunMS:    float64(st.Run) / 1e6,
		RangeLo:  st.RangeLo,
		RangeHi:  st.RangeHi,
		Tasks:    st.Tasks,
		Steals:   st.Steals,
		Migrs:    st.Migrations,
	}
	if err := j.Err(); err != nil {
		resp.Error = err.Error()
	}
	return resp
}

func (d *daemon) healthz(w http.ResponseWriter, r *http.Request) {
	queued, running := d.pool.InFlight()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_s":  time.Since(d.start).Seconds(),
		"workers":   d.pool.NumWorkers(),
		"scheduler": d.pool.Scheduler().String(),
		"queued":    queued,
		"running":   running,
	})
}

// metrics renders the pool's metrics registry as Prometheus text
// exposition: the scheduling counters and admission state of the old
// hand-rolled handler (every name unchanged, now with proper TYPE
// headers on the per-worker vectors) plus the latency histograms —
// adws_park_seconds, adws_steal_attempt_seconds, adws_wake_to_run_seconds,
// adws_job_queue_wait_seconds, adws_job_service_seconds,
// adws_job_e2e_seconds. Histogram recording is lock-free, so scrapes are
// valid under concurrent job load. Trace-derived metrics (dominant-group
// hit rate, steal distances) are appended only when the daemon was
// started with -tracemetrics AND no job is in flight, since reading the
// trace rings requires quiescence.
func (d *daemon) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = d.pool.Metrics().WriteText(w)

	if d.traceMetrics {
		if queued, running := d.pool.InFlight(); queued == 0 && running == 0 {
			if tr := d.pool.Tracer(); tr != nil {
				d.traceSection(w, tr)
			}
		}
	}
}

func (d *daemon) traceSection(w http.ResponseWriter, tr *trace.Tracer) {
	s := tr.Summarize()
	fmt.Fprintf(w, "# TYPE adws_trace_dominant_hit_rate gauge\nadws_trace_dominant_hit_rate %g\n",
		s.DominantGroupHitRate())
	fmt.Fprintf(w, "# TYPE adws_trace_steal_success_rate gauge\nadws_trace_steal_success_rate %g\n",
		s.StealSuccessRate())
	fmt.Fprintf(w, "# TYPE adws_trace_drops_total counter\nadws_trace_drops_total %d\n", s.Drops)
	fmt.Fprintf(w, "# TYPE adws_trace_steal_distance_total counter\n")
	for dist, n := range s.StealDistance {
		if n > 0 {
			fmt.Fprintf(w, "adws_trace_steal_distance_total{distance=\"%d\"} %d\n", dist, n)
		}
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
