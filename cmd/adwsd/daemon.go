package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/trace"
	"github.com/parlab/adws/internal/workload"
)

// jobRequest is the POST /jobs body.
type jobRequest struct {
	// Workload names a built-in workload (see workload.JobNames).
	Workload string `json:"workload"`
	// Key is the routing key the cluster's affinity policy keeps on warm
	// pools. Empty defaults to "<workload>/<n>", so repeats of the same
	// computation are warm by construction.
	Key string `json:"key,omitempty"`
	// N is the problem size (0: the workload's default).
	N int `json:"n,omitempty"`
	// Seed drives the pseudo-random input (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Work and Size override the workload's default admission hints.
	Work float64 `json:"work,omitempty"`
	Size int64   `json:"size,omitempty"`
	// DeadlineMS, when positive, cancels the job if it is still queued
	// this many milliseconds after submission. A deadline already past at
	// submit is rejected synchronously with 400.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Class names the job's priority class under -admission=slo (empty:
	// the pool's default class). Unknown classes are rejected with 400.
	Class string `json:"class,omitempty"`
	// Tenant identifies the submitter for per-tenant rate limiting and
	// fairness accounting; empty means the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
}

// jobResponse describes one job in GET /jobs[/{id}] and POST /jobs. ID
// is the cluster-wide id; Pool and Verdict record where routing placed
// the job and whether that pool was warm for its key.
type jobResponse struct {
	ID       int64   `json:"id"`
	Workload string  `json:"workload"`
	Key      string  `json:"key,omitempty"`
	Class    string  `json:"class,omitempty"`
	Tenant   string  `json:"tenant,omitempty"`
	Pool     int     `json:"pool"`
	Verdict  string  `json:"verdict"`
	State    string  `json:"state"`
	Error    string  `json:"error,omitempty"`
	QueuedMS float64 `json:"queued_ms"`
	RunMS    float64 `json:"run_ms"`
	RangeLo  float64 `json:"range_lo"`
	RangeHi  float64 `json:"range_hi"`
	Tasks    int64   `json:"tasks"`
	Steals   int64   `json:"steals"`
	Migrs    int64   `json:"migrations"`
}

// poolResponse is one pool's entry in GET /pools. The per-class maps are
// keyed by priority class name; Fairness holds the Jain index over
// per-tenant mean e2e latency and omits classes with no completed jobs.
type poolResponse struct {
	Pool          int                     `json:"pool"`
	Workers       int                     `json:"workers"`
	Scheduler     string                  `json:"scheduler"`
	Queued        int                     `json:"queued"`
	Running       int                     `json:"running"`
	Admission     countersJSON            `json:"admission"`
	QueuedByClass map[string]int          `json:"queued_by_class"`
	Classes       map[string]countersJSON `json:"classes"`
	Fairness      map[string]float64      `json:"fairness_jain,omitempty"`
	Routing       routingJSON             `json:"routing"`
}

type countersJSON struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
}

type routingJSON struct {
	Jobs     int64            `json:"jobs"`
	Warm     int64            `json:"warm"`
	Cold     int64            `json:"cold"`
	Spill    int64            `json:"spill"`
	Moved    int64            `json:"moved"`
	Rejected int64            `json:"rejected"`
	WarmRate float64          `json:"warm_rate"`
	Classes  map[string]int64 `json:"classes,omitempty"`
}

// builder constructs a named workload; the daemon's registry maps
// workload names to builders (tests may inject extra entries).
type builder func(n int, seed uint64) (workload.Job, error)

// daemon is the HTTP job-serving frontend over a cluster of pools. A
// single-pool cluster behaves exactly like the old one-pool daemon
// (cluster ids coincide with pool ids); with -pools N the router fans
// jobs out and /pools exposes the per-pool routing ledger.
type daemon struct {
	cluster   *adws.Cluster
	workloads map[string]builder
	// traceMetrics enables the trace-derived section of /metrics. The
	// tracer's rings may only be read while the pool is quiescent
	// (docs/TRACING.md); enable it only for scrapes of idle or drained
	// daemons.
	traceMetrics bool

	mu    sync.Mutex       //adws:lockrank(10) top of the whole order: handlers fan out into everything
	names map[int64]string // cluster job id -> workload name
	start time.Time
}

func newDaemon(cluster *adws.Cluster, traceMetrics bool) *daemon {
	d := &daemon{
		cluster:      cluster,
		workloads:    make(map[string]builder),
		traceMetrics: traceMetrics,
		names:        make(map[int64]string),
		start:        time.Now(),
	}
	for _, name := range workload.JobNames() {
		name := name
		d.workloads[name] = func(n int, seed uint64) (workload.Job, error) {
			return workload.NewJob(name, n, seed)
		}
	}
	return d
}

// handler builds the daemon's route table.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.postJob)
	mux.HandleFunc("GET /jobs", d.listJobs)
	mux.HandleFunc("GET /jobs/{id}", d.getJob)
	mux.HandleFunc("GET /pools", d.listPools)
	mux.HandleFunc("GET /healthz", d.healthz)
	mux.HandleFunc("GET /metrics", d.metrics)
	d.registerDebug(mux)
	return mux
}

func (d *daemon) postJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	build, ok := d.workloads[req.Workload]
	if !ok {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown workload %q (have %v)", req.Workload, workload.JobNames()))
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	wj, err := build(req.N, seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	hint := wj.Hint()
	if req.Work > 0 {
		hint.Work = req.Work
	}
	if req.Size > 0 {
		hint.Size = req.Size
	}
	if req.DeadlineMS > 0 {
		hint.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	hint.Class = req.Class
	hint.Tenant = req.Tenant
	key := req.Key
	if key == "" {
		key = fmt.Sprintf("%s/%d", wj.Name, wj.N)
	}
	body := wj.Body
	j, err := d.cluster.Submit(context.Background(), key, func(c *adws.Ctx) error { return body(c) }, hint)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, adws.ErrOverloaded) || errors.Is(err, adws.ErrDraining) ||
			errors.Is(err, adws.ErrPoolClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, adws.ErrRateLimited):
			status = http.StatusTooManyRequests
		case errors.Is(err, adws.ErrUnknownClass) || errors.Is(err, context.DeadlineExceeded):
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	d.mu.Lock()
	d.names[j.ClusterID()] = wj.Name
	d.mu.Unlock()
	writeJSON(w, http.StatusAccepted, d.describe(j))
}

func (d *daemon) getJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return
	}
	j, ok := d.cluster.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, d.describe(j))
}

func (d *daemon) listJobs(w http.ResponseWriter, r *http.Request) {
	jobs := d.cluster.Jobs()
	out := make([]jobResponse, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, d.describe(j))
	}
	writeJSON(w, http.StatusOK, out)
}

// listPools renders the per-pool routing ledger: load, admission
// counters, and the warm/cold/spill/moved partition of routed jobs.
func (d *daemon) listPools(w http.ResponseWriter, r *http.Request) {
	counts := d.cluster.RouteCounts()
	pools := make([]poolResponse, d.cluster.NumPools())
	for i := range pools {
		p := d.cluster.Pool(i)
		queued, running := p.InFlight()
		ctr := p.Counters()
		rc := counts[i]
		classes := make(map[string]countersJSON)
		for cl, cc := range p.ClassCounters() {
			classes[cl] = countersJSON{
				Submitted: cc.Submitted,
				Rejected:  cc.Rejected,
				Completed: cc.Completed,
				Failed:    cc.Failed,
				Canceled:  cc.Canceled,
			}
		}
		pools[i] = poolResponse{
			Pool:      i,
			Workers:   p.NumWorkers(),
			Scheduler: p.Scheduler().String(),
			Queued:    queued,
			Running:   running,
			Admission: countersJSON{
				Submitted: ctr.Submitted,
				Rejected:  ctr.Rejected,
				Completed: ctr.Completed,
				Failed:    ctr.Failed,
				Canceled:  ctr.Canceled,
			},
			QueuedByClass: p.QueuedByClass(),
			Classes:       classes,
			Fairness:      p.JainByClass(),
			Routing: routingJSON{
				Jobs: rc.Jobs, Warm: rc.Warm, Cold: rc.Cold,
				Spill: rc.Spill, Moved: rc.Moved, Rejected: rc.Rejected,
				WarmRate: rc.WarmRate(), Classes: rc.Classes,
			},
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"policy": d.cluster.Policy(),
		"pools":  pools,
	})
}

func (d *daemon) describe(j *adws.ClusterJob) jobResponse {
	st := j.Stats()
	d.mu.Lock()
	name := d.names[j.ClusterID()]
	d.mu.Unlock()
	h := j.Hint()
	resp := jobResponse{
		ID:       j.ClusterID(),
		Workload: name,
		Class:    h.Class,
		Tenant:   h.Tenant,
		Pool:     j.Pool(),
		Verdict:  string(j.Verdict()),
		State:    j.State().String(),
		QueuedMS: float64(st.Queued) / 1e6,
		RunMS:    float64(st.Run) / 1e6,
		RangeLo:  st.RangeLo,
		RangeHi:  st.RangeHi,
		Tasks:    st.Tasks,
		Steals:   st.Steals,
		Migrs:    st.Migrations,
	}
	if err := j.Err(); err != nil {
		resp.Error = err.Error()
	}
	return resp
}

// watchdogHealth is one pool's watchdog entry in /healthz.
type watchdogHealth struct {
	Pool int `json:"pool"`
	adws.WatchdogStatus
}

// healthz reports liveness plus the per-pool watchdog verdicts. While
// any pool has an active stall verdict the status degrades to "stalled"
// and the endpoint answers 503, so load balancers and probes take the
// daemon out of rotation until the stall clears.
func (d *daemon) healthz(w http.ResponseWriter, r *http.Request) {
	queued, running := d.cluster.InFlight()
	status, code := "ok", http.StatusOK
	var wds []watchdogHealth
	for i := 0; i < d.cluster.NumPools(); i++ {
		wd := d.cluster.Pool(i).Watchdog()
		if wd == nil {
			continue
		}
		st := wd.Status()
		if !st.OK {
			status, code = "stalled", http.StatusServiceUnavailable
		}
		wds = append(wds, watchdogHealth{Pool: i, WatchdogStatus: st})
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"uptime_s":  time.Since(d.start).Seconds(),
		"pools":     d.cluster.NumPools(),
		"policy":    d.cluster.Policy(),
		"admission": d.cluster.Pool(0).AdmissionPolicy(),
		"workers":   d.cluster.Workers(),
		"scheduler": d.cluster.Pool(0).Scheduler().String(),
		"queued":    queued,
		"running":   running,
		"watchdog":  wds,
	})
}

// metrics renders Prometheus text exposition. The default scrape is the
// cluster registry (adws_cluster_* routing counters and per-pool load
// gauges); a single-pool daemon appends its pool's full registry so the
// one-pool scrape keeps every family the pre-cluster daemon exposed.
// ?pool=i scrapes pool i's own registry instead (scheduler counters,
// admission gauges, latency histograms). Trace-derived metrics
// (dominant-group hit rate, steal distances) are appended to a pool
// scrape only when the daemon was started with -tracemetrics AND the
// pool has no job in flight, since reading the trace rings requires
// quiescence.
func (d *daemon) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s := r.URL.Query().Get("pool"); s != "" {
		i, err := strconv.Atoi(s)
		if err != nil || i < 0 || i >= d.cluster.NumPools() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad pool %q (have %d pools)", s, d.cluster.NumPools()))
			return
		}
		d.poolMetrics(w, i)
		return
	}
	_ = d.cluster.Metrics().WriteText(w)
	if d.cluster.NumPools() == 1 {
		d.poolMetrics(w, 0)
	}
}

func (d *daemon) poolMetrics(w http.ResponseWriter, i int) {
	p := d.cluster.Pool(i)
	_ = p.Metrics().WriteText(w)
	if d.traceMetrics {
		if queued, running := p.InFlight(); queued == 0 && running == 0 {
			if tr := p.Tracer(); tr != nil {
				d.traceSection(w, tr)
			}
		}
	}
}

func (d *daemon) traceSection(w http.ResponseWriter, tr *trace.Tracer) {
	s := tr.Summarize()
	fmt.Fprintf(w, "# TYPE adws_trace_dominant_hit_rate gauge\nadws_trace_dominant_hit_rate %g\n",
		s.DominantGroupHitRate())
	fmt.Fprintf(w, "# TYPE adws_trace_steal_success_rate gauge\nadws_trace_steal_success_rate %g\n",
		s.StealSuccessRate())
	fmt.Fprintf(w, "# TYPE adws_trace_drops_total counter\nadws_trace_drops_total %d\n", s.Drops)
	fmt.Fprintf(w, "# TYPE adws_trace_steal_distance_total counter\n")
	for dist, n := range s.StealDistance {
		if n > 0 {
			fmt.Fprintf(w, "adws_trace_steal_distance_total{distance=\"%d\"} %d\n", dist, n)
		}
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
