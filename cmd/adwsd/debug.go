package main

// Live scheduler introspection: /debug/sched (per-worker scheduler
// state), /debug/fr (flight-recorder dump), and the stdlib /debug/pprof
// handlers, all wired explicitly because the daemon uses its own mux.
// Every endpoint takes ?pool=i; /debug/sched without it reports every
// pool, /debug/fr defaults to pool 0 (dumps are destructive, so an
// unqualified GET should not drain every pool's recorder at once).

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"github.com/parlab/adws"
)

// schedResponse is one pool's /debug/sched entry: the pool id plus the
// embedded snapshot (taken_ns, workers).
type schedResponse struct {
	Pool int `json:"pool"`
	adws.SchedSnapshot
}

// poolParam parses ?pool=i. Absent returns (0, false, nil); the caller
// picks its own default.
func (d *daemon) poolParam(r *http.Request) (int, bool, error) {
	s := r.URL.Query().Get("pool")
	if s == "" {
		return 0, false, nil
	}
	i, err := strconv.Atoi(s)
	if err != nil || i < 0 || i >= d.cluster.NumPools() {
		return 0, false, fmt.Errorf("bad pool %q (have %d pools)", s, d.cluster.NumPools())
	}
	return i, true, nil
}

// debugSched serves the live scheduler snapshot: every pool by default,
// one with ?pool=i. Reading is lock-free against the running pool.
func (d *daemon) debugSched(w http.ResponseWriter, r *http.Request) {
	i, selected, err := d.poolParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	lo, hi := 0, d.cluster.NumPools()
	if selected {
		lo, hi = i, i+1
	}
	out := make([]schedResponse, 0, hi-lo)
	for p := lo; p < hi; p++ {
		out = append(out, schedResponse{
			Pool:          p,
			SchedSnapshot: d.cluster.Pool(p).SchedSnapshot(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"pools": out})
}

// debugFlight dumps pool ?pool=i's (default 0) flight recorder without
// stopping it. The dump is destructive: the returned window is consumed
// from the rings. ?format=chrome serves Chrome trace-event JSON for
// Perfetto / chrome://tracing instead of the compact dump form.
func (d *daemon) debugFlight(w http.ResponseWriter, r *http.Request) {
	i, _, err := d.poolParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dump := d.cluster.Pool(i).DumpFlight("http")
	if dump == nil {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("pool %d has no flight recorder (disabled by WithFlightRecorder)", i))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = dump.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, dump)
}

// registerDebug wires the debug endpoints onto mux.
func (d *daemon) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/sched", d.debugSched)
	mux.HandleFunc("GET /debug/fr", d.debugFlight)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
