package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/trace"
	"github.com/parlab/adws/internal/workload"
)

// get fetches url and returns status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDebugSchedGolden pins the /debug/sched JSON shape against
// testdata/debug_sched.golden. Live values (timestamps, counters, parked
// bits) are normalized to fixed placeholders so the golden file pins the
// structure — pool nesting and every per-worker key — not the racing
// scheduler state.
func TestDebugSchedGolden(t *testing.T) {
	p0, err := adws.NewPool(adws.WithScheduler(adws.ADWS), adws.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := adws.NewPool(adws.WithScheduler(adws.WorkStealing), adws.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	c, err := adws.ClusterOf(adws.RouteRoundRobin, p0, p1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newDaemon(c, false).handler())
	defer ts.Close()

	p0.Run(func(c *adws.Ctx) {}) // touch the scheduler so counters are live

	code, body := get(t, ts.URL+"/debug/sched")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/sched: status %d: %s", code, body)
	}
	var doc struct {
		Pools []map[string]any `json:"pools"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("response does not parse: %v\n%s", err, body)
	}
	if len(doc.Pools) != 2 {
		t.Fatalf("got %d pools, want 2", len(doc.Pools))
	}
	for _, pool := range doc.Pools {
		pool["taken_ns"] = float64(0)
		for _, wv := range pool["workers"].([]any) {
			w := wv.(map[string]any)
			for k := range w {
				switch k {
				case "worker":
				case "parked":
					w[k] = false
				case "last_event_age_ns":
					w[k] = float64(-1)
				default:
					w[k] = float64(0)
				}
			}
		}
	}
	norm, err := json.MarshalIndent(map[string]any{"pools": doc.Pools}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	norm = append(norm, '\n')

	golden := filepath.Join("testdata", "debug_sched.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, norm, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if string(norm) != string(want) {
		t.Errorf("normalized /debug/sched drifted from %s:\ngot:\n%s\nwant:\n%s\n(rerun with UPDATE_GOLDEN=1 if intended)",
			golden, norm, want)
	}

	// ?pool=1 narrows to one pool; an out-of-range pool is a 400.
	code, body = get(t, ts.URL+"/debug/sched?pool=1")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/sched?pool=1: status %d", code)
	}
	if err := json.Unmarshal(body, &doc); err != nil || len(doc.Pools) != 1 {
		t.Fatalf("?pool=1 returned %d pools (err %v)", len(doc.Pools), err)
	}
	if got := doc.Pools[0]["pool"].(float64); got != 1 {
		t.Errorf("?pool=1 returned pool %v", got)
	}
	if len(doc.Pools[0]["workers"].([]any)) != 1 {
		t.Errorf("pool 1 reports %d workers, want 1", len(doc.Pools[0]["workers"].([]any)))
	}
	if code, _ := get(t, ts.URL+"/debug/sched?pool=9"); code != http.StatusBadRequest {
		t.Errorf("GET /debug/sched?pool=9: status %d, want 400", code)
	}
}

// TestDebugFlight pins /debug/fr: the compact dump form, the Chrome
// trace form, destructive cuts, and the 404 on a recorder-disabled pool.
func TestDebugFlight(t *testing.T) {
	p, err := adws.NewPool(adws.WithScheduler(adws.ADWS), adws.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	off, err := adws.NewPool(adws.WithWorkers(1), adws.WithFlightRecorder(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	c, err := adws.ClusterOf(adws.RouteRoundRobin, p, off)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newDaemon(c, false).handler())
	defer ts.Close()

	p.Run(func(c *adws.Ctx) {}) // leave a root task span in the rings

	code, body := get(t, ts.URL+"/debug/fr")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/fr: status %d: %s", code, body)
	}
	var dump struct {
		Seq    int64            `json:"seq"`
		Reason string           `json:"reason"`
		Sched  *json.RawMessage `json:"sched"`
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, body)
	}
	if dump.Reason != "http" || dump.Seq < 1 {
		t.Errorf("dump header = %+v", dump)
	}
	if dump.Sched == nil {
		t.Error("dump has no scheduler snapshot")
	}
	if len(dump.Events) == 0 {
		t.Error("dump window is empty after a job ran")
	}

	code, body = get(t, ts.URL+"/debug/fr?format=chrome")
	if code != http.StatusOK || !strings.Contains(string(body), "traceEvents") {
		t.Errorf("chrome form: status %d body %.80s", code, body)
	}

	if code, _ := get(t, ts.URL+"/debug/fr?pool=1"); code != http.StatusNotFound {
		t.Errorf("GET /debug/fr on disabled pool: status %d, want 404", code)
	}
}

// TestHealthzWatchdogStall is the injected-stall integration test: a
// 1-worker pool with an aggressive watchdog runs a job that wedges its
// only worker while a second job queues behind it. The watchdog must
// fire worker_stall naming worker 0, /healthz must degrade to 503 with
// the verdict in its JSON, the auto-dump must contain the stall window
// (the wedged job's task-begin and the scheduler state showing the
// worker pinned on it), and everything must recover once the job
// unblocks.
func TestHealthzWatchdogStall(t *testing.T) {
	p, err := adws.NewPool(
		adws.WithScheduler(adws.ADWS),
		adws.WithWorkers(1),
		adws.WithAdmission(1, 4),
		adws.WithWatchdog(adws.WatchdogConfig{
			Interval:   2 * time.Millisecond,
			StallAfter: 10 * time.Millisecond,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := adws.ClusterOf(adws.RouteRoundRobin, p)
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(c, false)
	release := make(chan struct{})
	d.workloads["block"] = func(n int, seed uint64) (workload.Job, error) {
		return workload.Job{Name: "block", N: n, Work: 1,
			Body: func(c *adws.Ctx) error { <-release; return nil }}, nil
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	// healthy first: watchdog status present, 200.
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy /healthz: status %d: %s", code, body)
	}
	var health struct {
		Status   string `json:"status"`
		Watchdog []struct {
			Pool       int    `json:"pool"`
			OK         bool   `json:"ok"`
			LastReason string `json:"last_reason"`
			LastWorker int    `json:"last_worker"`
		} `json:"watchdog"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz does not parse: %v\n%s", err, body)
	}
	if len(health.Watchdog) != 1 || !health.Watchdog[0].OK {
		t.Fatalf("healthy watchdog block = %+v", health.Watchdog)
	}

	// Wedge the only worker and queue a second job behind it.
	for i, want := range []int{http.StatusAccepted, http.StatusAccepted} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"workload": "block"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("block job %d: status %d, want %d", i, resp.StatusCode, want)
		}
	}

	// The watchdog must fire within a few StallAfter periods.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = get(t, ts.URL+"/healthz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never fired; last /healthz %d: %s", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "stalled" {
		t.Errorf("degraded status = %q, want stalled", health.Status)
	}
	wd := health.Watchdog[0]
	if wd.OK || wd.LastReason != adws.WatchdogWorkerStall || wd.LastWorker != 0 {
		t.Errorf("degraded watchdog block = %+v, want worker_stall on worker 0", wd)
	}

	// The auto-dump holds the stall window: the wedged job's task-begin
	// and a scheduler snapshot showing worker 0 unparked on a job.
	dump := p.FlightRecorder().LastDump()
	if dump == nil {
		t.Fatal("watchdog trigger left no dump")
	}
	if dump.Reason != adws.WatchdogWorkerStall || dump.Worker != 0 {
		t.Errorf("dump = reason %q worker %d, want worker_stall/0", dump.Reason, dump.Worker)
	}
	var sawBegin bool
	for _, ev := range dump.Events {
		if ev.Type == trace.EvTaskBegin && ev.Worker == 0 {
			sawBegin = true
		}
	}
	if !sawBegin {
		t.Errorf("dump window has no task-begin for worker 0: %v", dump.Events)
	}
	if dump.Sched == nil {
		t.Fatal("dump has no scheduler snapshot")
	}
	ws := dump.Sched.Workers[0]
	if ws.Parked || ws.Job == 0 {
		t.Errorf("dump snapshot worker 0 = %+v, want unparked on a job", ws)
	}

	// Unblock; the queue drains, the verdict clears, /healthz recovers.
	close(release)
	for {
		code, body = get(t, ts.URL+"/healthz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never recovered; last %d: %s", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if trig := p.Watchdog().Status().Triggers[adws.WatchdogWorkerStall]; trig < 1 {
		t.Errorf("stall trigger counter = %d, want >= 1", trig)
	}
}
