// Command adwsvet runs the project's static-analysis suite (internal/lint)
// over the given package patterns and fails the build on any violation of
// the scheduler's concurrency invariants.
//
// Usage:
//
//	adwsvet [-list] [-only name[,name]] [-format text|json|sarif]
//	        [-baseline file] [-writebaseline file] [packages ...]
//
// With no packages it analyzes ./..., mirroring go vet. The default text
// format prints one diagnostic per line as file:line:col: [analyzer]
// message; -format json emits a machine-readable array and -format sarif
// a SARIF 2.1.0 log for CI upload (both with module-relative paths).
//
// A -baseline file (written with -writebaseline) grandfathers existing
// findings: baselined diagnostics are still printed in text mode as
// "baselined" but do not affect the exit status, and are dropped from
// json/sarif output entirely. The exit status is 1 when any
// non-baselined diagnostics were found. See docs/LINT.md for the
// analyzer catalogue, the //adws: directive grammar, and the baseline
// workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/parlab/adws/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	baselinePath := flag.String("baseline", "", "baseline file: suppress the findings recorded in it")
	writeBaseline := flag.String("writebaseline", "", "write current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adwsvet [-list] [-only name[,name]] [-format text|json|sarif] [-baseline file] [-writebaseline file] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "adwsvet: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	analyzers := all
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "adwsvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewModuleLoader("")
	if err != nil {
		fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
		os.Exit(2)
	}
	u, err := loader.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
		os.Exit(2)
	}
	diags := u.Run(analyzers)
	baseDir := loader.ModuleDir()

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
			os.Exit(2)
		}
		werr := lint.NewBaseline(diags, baseDir).Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "adwsvet: writing baseline: %v\n", werr)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "adwsvet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	fresh := diags
	baselined := 0
	if *baselinePath != "" {
		b, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
			os.Exit(2)
		}
		fresh = b.Filter(diags, baseDir)
		baselined = len(diags) - len(fresh)
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(os.Stdout, fresh, baseDir); err != nil {
			fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
			os.Exit(2)
		}
	case "sarif":
		if err := lint.WriteSARIF(os.Stdout, fresh, baseDir); err != nil {
			fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range fresh {
			fmt.Println(d)
		}
		if baselined > 0 {
			fmt.Fprintf(os.Stderr, "adwsvet: %d baselined finding(s) suppressed\n", baselined)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "adwsvet: %d violation(s)\n", len(fresh))
		os.Exit(1)
	}
}
