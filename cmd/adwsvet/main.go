// Command adwsvet runs the project's static-analysis suite (internal/lint)
// over the given package patterns and fails the build on any violation of
// the scheduler's concurrency invariants.
//
// Usage:
//
//	adwsvet [-list] [-only name[,name]] [packages ...]
//
// With no packages it analyzes ./..., mirroring go vet. Diagnostics are
// printed one per line as file:line:col: [analyzer] message, and the exit
// status is 1 when any were found. See docs/LINT.md for the analyzer
// catalogue and the //adws: directive grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/parlab/adws/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adwsvet [-list] [-only name[,name]] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "adwsvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewModuleLoader("")
	if err != nil {
		fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
		os.Exit(2)
	}
	u, err := loader.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adwsvet: %v\n", err)
		os.Exit(2)
	}
	diags := u.Run(analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "adwsvet: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
