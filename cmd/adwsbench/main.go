// adwsbench regenerates the tables and figures of the ADWS paper's
// evaluation (§6) from the deterministic machine simulator.
//
// Usage:
//
//	adwsbench -figure all                 # everything (slow at full scale)
//	adwsbench -figure 16 -bench dtree     # one figure, one benchmark
//	adwsbench -figure 18 -sizes 0.25,4    # custom working-set sweep
//	adwsbench -machine twolevel16         # scaled-down machine (fast)
//	adwsbench -csv out/                   # also write CSV files
//	adwsbench -trace out.json -bench quicksort -mode sl-adws
//	                                      # one traced simulation instead
//
// Figures: table1, 16 (speedup vs working set), 17 (time breakdown),
// 18 (cache misses), 19 (work-hint sensitivity), 20 (no-hint ADWS),
// 21 (NUMA placement), auto (extension: automatic SL/ML switching, §8).
//
// With -trace or -tracesummary, adwsbench instead runs one simulation of
// the selected benchmark (first of -bench, default quicksort) under -mode
// with the scheduler event tracer attached, writes the Chrome trace-event
// JSON, and/or prints the derived metrics. The simulator emits the same
// event schema as the real runtime (internal/trace), so the two are
// diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/parlab/adws/internal/benchfmt"
	"github.com/parlab/adws/internal/figures"
	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
	"github.com/parlab/adws/internal/workload"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "table1, 16, 17, 18, 19, 20, 21, auto, all, or run (one traced simulation)")
		bench   = flag.String("bench", "", "comma-separated benchmark filter (rrm,quicksort,kdtree,dtree,matmul,heat2d,sph)")
		machine = flag.String("machine", "oakbridge", "oakbridge, twolevel16, or threelevel64")
		sizes   = flag.String("sizes", "", "comma-separated working-set factors of the aggregate shared capacity (default 0.125..16)")
		reps    = flag.Int("reps", 2, "repetitions per point (last, warm one measured)")
		seed    = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		csvDir  = flag.String("csv", "", "directory to also write CSV files into")
		jsonOut = flag.String("json", "", "also write machine-readable JSON to this file (- for stdout)")

		traceOut = flag.String("trace", "", "run one traced simulation and write Chrome trace-event JSON (open in Perfetto)")
		traceSum = flag.Bool("tracesummary", false, "run one traced simulation and print derived trace metrics")
		mode     = flag.String("mode", "sl-adws", "scheduler for the traced simulation: sl-ws, sl-adws, ml-ws, ml-adws")
	)
	flag.Parse()

	opts := figures.Options{Reps: *reps, Seed: *seed}
	switch *machine {
	case "oakbridge":
		opts.Machine = topology.OakbridgeCX()
	case "twolevel16":
		opts.Machine = topology.TwoLevel16()
	case "threelevel64":
		opts.Machine = topology.ThreeLevel64()
	default:
		fatalf("unknown machine %q", *machine)
	}
	if *bench != "" {
		opts.Benches = strings.Split(*bench, ",")
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatalf("bad size factor %q: %v", s, err)
			}
			opts.SizeFactors = append(opts.SizeFactors, f)
		}
	}

	if *traceOut != "" || *traceSum || *figure == "run" {
		runTraced(opts, *mode, *traceOut, *traceSum, *jsonOut)
		return
	}

	want := func(id string) bool { return *figure == "all" || *figure == id }

	if want("table1") {
		figures.Table1(opts.Machine, os.Stdout)
	}
	var figs []figures.Figure
	if want("16") {
		figs = append(figs, figures.Fig16(opts)...)
	}
	if want("17") {
		figs = append(figs, figures.Fig17(opts)...)
	}
	if want("18") {
		figs = append(figs, figures.Fig18(opts)...)
	}
	if want("19") {
		figs = append(figs, figures.Fig19(opts)...)
	}
	if want("20") {
		figs = append(figs, figures.Fig20(opts)...)
	}
	if want("21") {
		figs = append(figs, figures.Fig21(opts)...)
	}
	if want("auto") {
		figs = append(figs, figures.FigAuto(opts)...)
	}
	if len(figs) == 0 && !want("table1") {
		fatalf("unknown figure %q", *figure)
	}

	if *jsonOut != "" {
		writeJSON(*jsonOut, map[string]any{
			"machine": *machine,
			"workers": opts.Machine.NumWorkers(),
			"figures": figs,
		})
	}
	for _, f := range figs {
		f.Render(os.Stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ReplaceAll(f.ID, "/", "_")+".csv")
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("mkdir: %v", err)
			}
			w, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			f.CSV(w)
			if err := w.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// jsonResult is the machine-readable form of one traced simulation:
// timing, steal and locality counters, flat for jq-style consumption.
// Existing fields are frozen (committed BENCH_*.json trajectory points
// embed this object); additions bump benchfmt.SchemaVersion only when a
// field changes meaning.
type jsonResult struct {
	SchemaVersion int     `json:"schema_version"`
	Bench         string  `json:"bench"`
	Mode          string  `json:"mode"`
	Machine       string  `json:"machine,omitempty"`
	Workers       int     `json:"workers"`
	Seed          uint64  `json:"seed"`
	Time          float64 `json:"time"`

	BusyTime     float64 `json:"busy_time"`
	IdleTime     float64 `json:"idle_time"`
	OverheadTime float64 `json:"overhead_time"`

	Tasks         int64 `json:"tasks"`
	Steals        int64 `json:"steals"`
	StealAttempts int64 `json:"steal_attempts"`
	Migrations    int64 `json:"migrations"`
	Ties          int64 `json:"ties"`
	Flattens      int64 `json:"flattens"`

	PrivateMisses  int64   `json:"private_misses"`
	SharedMisses   int64   `json:"shared_misses"`
	Accesses       int64   `json:"accesses"`
	RemoteAccesses int64   `json:"remote_accesses"`
	RemoteFraction float64 `json:"remote_fraction"`

	DominantHitRate float64 `json:"dominant_hit_rate"`
	DroppedEvents   int64   `json:"dropped_events"`

	// TaskSpan summarizes the distribution of task execution spans
	// (EvTaskBegin to EvTaskEnd), in virtual time units. StealDistance
	// summarizes how far successful steals travelled, in logical entity
	// slots — the paper's locality claim is about this distribution's
	// tail, not its mean.
	TaskSpan      benchfmt.Quantiles `json:"task_span"`
	StealDistance benchfmt.Quantiles `json:"steal_distance"`
}

// taskSpanQuantiles pairs each worker's EvTaskBegin/EvTaskEnd events into
// execution spans (a stack per worker — helping waits nest spans) and
// summarizes them through the same log-linear histogram the real runtime
// records latencies with. Timestamps are virtual time ×1000; quantiles
// are reported in virtual units.
func taskSpanQuantiles(tr *trace.Tracer) benchfmt.Quantiles {
	h := metrics.NewStandaloneHistogram(1)
	stacks := make(map[int32][]int64)
	for _, ev := range tr.Events() {
		switch ev.Type {
		case trace.EvTaskBegin:
			stacks[ev.Worker] = append(stacks[ev.Worker], ev.Time)
		case trace.EvTaskEnd:
			st := stacks[ev.Worker]
			if len(st) == 0 {
				continue // begin lost to ring wraparound
			}
			h.Record(0, ev.Time-st[len(st)-1])
			stacks[ev.Worker] = st[:len(st)-1]
		default:
			// Only task begin/end pairs contribute to spans.
		}
	}
	s := h.Snapshot()
	return benchfmt.Quantiles{
		Count: s.Count,
		P50:   s.Quantile(0.50) / 1000,
		P90:   s.Quantile(0.90) / 1000,
		P99:   s.Quantile(0.99) / 1000,
		Max:   float64(s.Max) / 1000,
	}
}

// stealDistanceQuantiles summarizes the steal-distance histogram exactly
// (distances are small integers; no bucketing needed).
func stealDistanceQuantiles(dist []int64) benchfmt.Quantiles {
	var q benchfmt.Quantiles
	for _, n := range dist {
		q.Count += n
	}
	if q.Count == 0 {
		return q
	}
	at := func(p float64) float64 {
		rank := int64(math.Ceil(p * float64(q.Count)))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for d, n := range dist {
			cum += n
			if cum >= rank {
				return float64(d)
			}
		}
		return float64(len(dist) - 1)
	}
	q.P50, q.P90, q.P99 = at(0.50), at(0.90), at(0.99)
	for d := len(dist) - 1; d >= 0; d-- {
		if dist[d] > 0 {
			q.Max = float64(d)
			break
		}
	}
	return q
}

// runTraced executes one simulation of the selected benchmark with the
// scheduler event tracer attached, then writes the Chrome trace and/or
// JSON result and/or prints the derived metrics next to the RunResult
// line (text forms share the "steals=<successes>/<attempts>" notation).
func runTraced(opts figures.Options, modeStr, out string, printSummary bool, jsonOut string) {
	var m sim.Mode
	switch modeStr {
	case "sl-ws":
		m = sim.SLWS
	case "sl-adws":
		m = sim.SLADWS
	case "ml-ws":
		m = sim.MLWS
	case "ml-adws":
		m = sim.MLADWS
	default:
		fatalf("unknown mode %q (want sl-ws, sl-adws, ml-ws, ml-adws)", modeStr)
	}
	machine := opts.Machine
	bench := "quicksort"
	if len(opts.Benches) > 0 {
		bench = opts.Benches[0]
	}
	build, ok := workload.ByName(bench)
	if !ok {
		fatalf("unknown benchmark %q", bench)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 20190301
	}
	// Half the aggregate shared capacity: in-cache enough to exercise
	// multi-level decisions, big enough to produce a real task tree.
	inst := build(machine.AggregateCapacity(1)/2, seed)

	tr := trace.New(machine.NumWorkers(), 0)
	eng := sim.NewEngine(sim.Config{Machine: machine, Mode: m, Seed: seed, Tracer: tr})
	root, _ := inst.Prepare(eng.Memory())
	res := eng.Run(root)
	fmt.Printf("%s: %s\n", inst, res)

	if printSummary {
		fmt.Print(tr.Summarize().String())
	}
	if jsonOut != "" {
		var remoteFrac float64
		if res.Accesses > 0 {
			remoteFrac = float64(res.RemoteAccesses) / float64(res.Accesses)
		}
		summary := tr.Summarize()
		writeJSON(jsonOut, jsonResult{
			SchemaVersion:   benchfmt.SchemaVersion,
			Bench:           bench,
			Mode:            modeStr,
			Workers:         res.Workers,
			Seed:            seed,
			Time:            res.Time,
			BusyTime:        res.BusyTime,
			IdleTime:        res.IdleTime,
			OverheadTime:    res.OverheadTime,
			Tasks:           res.Tasks,
			Steals:          res.Steals,
			StealAttempts:   res.StealAttempts,
			Migrations:      res.Migrations,
			Ties:            res.Ties,
			Flattens:        res.Flattens,
			PrivateMisses:   res.PrivateMisses,
			SharedMisses:    res.SharedMisses,
			Accesses:        res.Accesses,
			RemoteAccesses:  res.RemoteAccesses,
			RemoteFraction:  remoteFrac,
			DominantHitRate: summary.DominantGroupHitRate(),
			DroppedEvents:   tr.Drops(),
			TaskSpan:        taskSpanQuantiles(tr),
			StealDistance:   stealDistanceQuantiles(summary.StealDistance),
		})
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatalf("create %s: %v", out, err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fatalf("write %s: %v", out, err)
		}
		if err := f.Close(); err != nil {
			fatalf("close %s: %v", out, err)
		}
		fmt.Printf("wrote %s (%d workers, %d dropped events)\n", out, tr.NumWorkers(), tr.Drops())
	}
}

// writeJSON writes v as indented JSON to path, or stdout for "-".
func writeJSON(path string, v any) {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", path, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("encode json: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adwsbench: "+format+"\n", args...)
	os.Exit(1)
}
