// adwsbench regenerates the tables and figures of the ADWS paper's
// evaluation (§6) from the deterministic machine simulator.
//
// Usage:
//
//	adwsbench -figure all                 # everything (slow at full scale)
//	adwsbench -figure 16 -bench dtree     # one figure, one benchmark
//	adwsbench -figure 18 -sizes 0.25,4    # custom working-set sweep
//	adwsbench -machine twolevel16         # scaled-down machine (fast)
//	adwsbench -csv out/                   # also write CSV files
//	adwsbench -trace out.json -bench quicksort -mode sl-adws
//	                                      # one traced simulation instead
//
// Figures: table1, 16 (speedup vs working set), 17 (time breakdown),
// 18 (cache misses), 19 (work-hint sensitivity), 20 (no-hint ADWS),
// 21 (NUMA placement), auto (extension: automatic SL/ML switching, §8).
//
// With -trace or -tracesummary, adwsbench instead runs one simulation of
// the selected benchmark (first of -bench, default quicksort) under -mode
// with the scheduler event tracer attached, writes the Chrome trace-event
// JSON, and/or prints the derived metrics. The simulator emits the same
// event schema as the real runtime (internal/trace), so the two are
// diffable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/parlab/adws/internal/figures"
	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
	"github.com/parlab/adws/internal/workload"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "table1, 16, 17, 18, 19, 20, 21, auto, or all")
		bench   = flag.String("bench", "", "comma-separated benchmark filter (rrm,quicksort,kdtree,dtree,matmul,heat2d,sph)")
		machine = flag.String("machine", "oakbridge", "oakbridge, twolevel16, or threelevel64")
		sizes   = flag.String("sizes", "", "comma-separated working-set factors of the aggregate shared capacity (default 0.125..16)")
		reps    = flag.Int("reps", 2, "repetitions per point (last, warm one measured)")
		seed    = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		csvDir  = flag.String("csv", "", "directory to also write CSV files into")

		traceOut = flag.String("trace", "", "run one traced simulation and write Chrome trace-event JSON (open in Perfetto)")
		traceSum = flag.Bool("tracesummary", false, "run one traced simulation and print derived trace metrics")
		mode     = flag.String("mode", "sl-adws", "scheduler for the traced simulation: sl-ws, sl-adws, ml-ws, ml-adws")
	)
	flag.Parse()

	opts := figures.Options{Reps: *reps, Seed: *seed}
	switch *machine {
	case "oakbridge":
		opts.Machine = topology.OakbridgeCX()
	case "twolevel16":
		opts.Machine = topology.TwoLevel16()
	case "threelevel64":
		opts.Machine = topology.ThreeLevel64()
	default:
		fatalf("unknown machine %q", *machine)
	}
	if *bench != "" {
		opts.Benches = strings.Split(*bench, ",")
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatalf("bad size factor %q: %v", s, err)
			}
			opts.SizeFactors = append(opts.SizeFactors, f)
		}
	}

	if *traceOut != "" || *traceSum {
		runTraced(opts, *mode, *traceOut, *traceSum)
		return
	}

	want := func(id string) bool { return *figure == "all" || *figure == id }

	if want("table1") {
		figures.Table1(opts.Machine, os.Stdout)
	}
	var figs []figures.Figure
	if want("16") {
		figs = append(figs, figures.Fig16(opts)...)
	}
	if want("17") {
		figs = append(figs, figures.Fig17(opts)...)
	}
	if want("18") {
		figs = append(figs, figures.Fig18(opts)...)
	}
	if want("19") {
		figs = append(figs, figures.Fig19(opts)...)
	}
	if want("20") {
		figs = append(figs, figures.Fig20(opts)...)
	}
	if want("21") {
		figs = append(figs, figures.Fig21(opts)...)
	}
	if want("auto") {
		figs = append(figs, figures.FigAuto(opts)...)
	}
	if len(figs) == 0 && !want("table1") {
		fatalf("unknown figure %q", *figure)
	}

	for _, f := range figs {
		f.Render(os.Stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ReplaceAll(f.ID, "/", "_")+".csv")
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("mkdir: %v", err)
			}
			w, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			f.CSV(w)
			if err := w.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// runTraced executes one simulation of the selected benchmark with the
// scheduler event tracer attached, then writes the Chrome trace and/or
// prints the derived metrics next to the RunResult line (both use the
// shared "steals=<successes>/<attempts>" form).
func runTraced(opts figures.Options, modeStr, out string, printSummary bool) {
	var m sim.Mode
	switch modeStr {
	case "sl-ws":
		m = sim.SLWS
	case "sl-adws":
		m = sim.SLADWS
	case "ml-ws":
		m = sim.MLWS
	case "ml-adws":
		m = sim.MLADWS
	default:
		fatalf("unknown mode %q (want sl-ws, sl-adws, ml-ws, ml-adws)", modeStr)
	}
	machine := opts.Machine
	bench := "quicksort"
	if len(opts.Benches) > 0 {
		bench = opts.Benches[0]
	}
	build, ok := workload.ByName(bench)
	if !ok {
		fatalf("unknown benchmark %q", bench)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 20190301
	}
	// Half the aggregate shared capacity: in-cache enough to exercise
	// multi-level decisions, big enough to produce a real task tree.
	inst := build(machine.AggregateCapacity(1)/2, seed)

	tr := trace.New(machine.NumWorkers(), 0)
	eng := sim.NewEngine(sim.Config{Machine: machine, Mode: m, Seed: seed, Tracer: tr})
	root, _ := inst.Prepare(eng.Memory())
	res := eng.Run(root)
	fmt.Printf("%s: %s\n", inst, res)

	if printSummary {
		fmt.Print(tr.Summarize().String())
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatalf("create %s: %v", out, err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fatalf("write %s: %v", out, err)
		}
		if err := f.Close(); err != nil {
			fatalf("close %s: %v", out, err)
		}
		fmt.Printf("wrote %s (%d workers, %d dropped events)\n", out, tr.NumWorkers(), tr.Drops())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adwsbench: "+format+"\n", args...)
	os.Exit(1)
}
