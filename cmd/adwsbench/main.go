// adwsbench regenerates the tables and figures of the ADWS paper's
// evaluation (§6) from the deterministic machine simulator.
//
// Usage:
//
//	adwsbench -figure all                 # everything (slow at full scale)
//	adwsbench -figure 16 -bench dtree     # one figure, one benchmark
//	adwsbench -figure 18 -sizes 0.25,4    # custom working-set sweep
//	adwsbench -machine twolevel16         # scaled-down machine (fast)
//	adwsbench -csv out/                   # also write CSV files
//
// Figures: table1, 16 (speedup vs working set), 17 (time breakdown),
// 18 (cache misses), 19 (work-hint sensitivity), 20 (no-hint ADWS),
// 21 (NUMA placement), auto (extension: automatic SL/ML switching, §8).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/parlab/adws/internal/figures"
	"github.com/parlab/adws/internal/topology"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "table1, 16, 17, 18, 19, 20, 21, auto, or all")
		bench   = flag.String("bench", "", "comma-separated benchmark filter (rrm,quicksort,kdtree,dtree,matmul,heat2d,sph)")
		machine = flag.String("machine", "oakbridge", "oakbridge, twolevel16, or threelevel64")
		sizes   = flag.String("sizes", "", "comma-separated working-set factors of the aggregate shared capacity (default 0.125..16)")
		reps    = flag.Int("reps", 2, "repetitions per point (last, warm one measured)")
		seed    = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		csvDir  = flag.String("csv", "", "directory to also write CSV files into")
	)
	flag.Parse()

	opts := figures.Options{Reps: *reps, Seed: *seed}
	switch *machine {
	case "oakbridge":
		opts.Machine = topology.OakbridgeCX()
	case "twolevel16":
		opts.Machine = topology.TwoLevel16()
	case "threelevel64":
		opts.Machine = topology.ThreeLevel64()
	default:
		fatalf("unknown machine %q", *machine)
	}
	if *bench != "" {
		opts.Benches = strings.Split(*bench, ",")
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatalf("bad size factor %q: %v", s, err)
			}
			opts.SizeFactors = append(opts.SizeFactors, f)
		}
	}

	want := func(id string) bool { return *figure == "all" || *figure == id }

	if want("table1") {
		figures.Table1(opts.Machine, os.Stdout)
	}
	var figs []figures.Figure
	if want("16") {
		figs = append(figs, figures.Fig16(opts)...)
	}
	if want("17") {
		figs = append(figs, figures.Fig17(opts)...)
	}
	if want("18") {
		figs = append(figs, figures.Fig18(opts)...)
	}
	if want("19") {
		figs = append(figs, figures.Fig19(opts)...)
	}
	if want("20") {
		figs = append(figs, figures.Fig20(opts)...)
	}
	if want("21") {
		figs = append(figs, figures.Fig21(opts)...)
	}
	if want("auto") {
		figs = append(figs, figures.FigAuto(opts)...)
	}
	if len(figs) == 0 && !want("table1") {
		fatalf("unknown figure %q", *figure)
	}

	for _, f := range figs {
		f.Render(os.Stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ReplaceAll(f.ID, "/", "_")+".csv")
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("mkdir: %v", err)
			}
			w, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			f.CSV(w)
			if err := w.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adwsbench: "+format+"\n", args...)
	os.Exit(1)
}
