package adws_test

import (
	"sort"
	"testing"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/dataset"
	"github.com/parlab/adws/internal/dtree"
	"github.com/parlab/adws/internal/kernels"
	"github.com/parlab/adws/internal/sched"
)

// Real-runtime benchmarks: the paper's kernels on the actual adws worker
// pool, one sub-benchmark per scheduler. Simulator-based benchmarks that
// regenerate the paper's figures live in figures_bench_test.go.

func benchPool(b *testing.B, s adws.Scheduler) *adws.Pool {
	b.Helper()
	p, err := adws.NewPool(
		adws.WithScheduler(s),
		adws.WithHierarchy([]adws.CacheLevel{
			{Fanout: 2, CapacityBytes: 16 << 20},
			{Fanout: 4, CapacityBytes: 1 << 20},
		}, 0),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	return p
}

func forEachScheduler(b *testing.B, fn func(b *testing.B, p *adws.Pool)) {
	for _, s := range []adws.Scheduler{
		adws.WorkStealing, adws.ADWS, adws.MultiLevelWS, adws.MultiLevelADWS,
	} {
		b.Run(s.String(), func(b *testing.B) {
			fn(b, benchPool(b, s))
		})
	}
}

func BenchmarkQuicksort(b *testing.B) {
	master := randomFloats(1 << 20)
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		data := make([]float64, len(master))
		b.SetBytes(int64(len(master)) * 8)
		for i := 0; i < b.N; i++ {
			copy(data, master)
			kernels.Quicksort(p, data)
		}
		if !sort.Float64sAreSorted(data) {
			b.Fatal("not sorted")
		}
	})
}

func BenchmarkKDTree(b *testing.B) {
	rng := sched.NewRNG(3, 0)
	master := make([]kernels.KDPoint, 1<<18)
	for i := range master {
		master[i] = kernels.KDPoint{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		pts := make([]kernels.KDPoint, len(master))
		b.SetBytes(int64(len(master)) * 24)
		for i := 0; i < b.N; i++ {
			copy(pts, master)
			kernels.KDTree(p, pts)
		}
	})
}

func BenchmarkRRM(b *testing.B) {
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		data := make([]float64, 1<<20)
		for i := range data {
			data[i] = 1
		}
		b.SetBytes(int64(len(data)) * 8)
		for i := 0; i < b.N; i++ {
			kernels.RRM(p, data, 1)
		}
	})
}

func BenchmarkMatMul(b *testing.B) {
	const n = 384
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		A, B, C := kernels.NewMatrix(n), kernels.NewMatrix(n), kernels.NewMatrix(n)
		rng := sched.NewRNG(5, 0)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				A.Set(i, j, float32(rng.Float64()))
				B.Set(i, j, float32(rng.Float64()))
			}
		}
		flops := 2 * int64(n) * int64(n) * int64(n)
		b.SetBytes(flops) // report "bytes"/s as flops/s
		for i := 0; i < b.N; i++ {
			kernels.MatMul(p, C, A, B)
		}
	})
}

func BenchmarkHeat2D(b *testing.B) {
	const n, iters = 1024, 5
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		src, dst := kernels.NewGrid(n), kernels.NewGrid(n)
		src.Set(n/2, n/2, 1000)
		b.SetBytes(int64(n) * int64(n) * 8 * iters)
		for i := 0; i < b.N; i++ {
			kernels.Heat2D(p, src, dst, iters)
		}
	})
}

func BenchmarkSPH(b *testing.B) {
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		sys := kernels.NewDamBreak(50_000, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.ComputeForces(p)
		}
	})
}

func BenchmarkDecisionTree(b *testing.B) {
	ds := dataset.Synthetic(100_000, dataset.DefaultAttrs, 42)
	train, _ := ds.Split(5_000)
	cfg := dtree.DefaultConfig()
	cfg.MaxDepth = 12
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		b.SetBytes(ds.Bytes())
		for i := 0; i < b.N; i++ {
			dtree.Train(p, ds, train, cfg)
		}
	})
}

// BenchmarkSpawnOverhead measures the pure tasking overhead: an empty
// binary tree of task groups.
func BenchmarkSpawnOverhead(b *testing.B) {
	forEachScheduler(b, func(b *testing.B, p *adws.Pool) {
		var rec func(c *adws.Ctx, d int)
		rec = func(c *adws.Ctx, d int) {
			if d == 0 {
				return
			}
			g := c.Group(adws.GroupHint{Work: 2})
			g.Spawn(1, func(c *adws.Ctx) { rec(c, d-1) })
			g.Spawn(1, func(c *adws.Ctx) { rec(c, d-1) })
			g.Wait()
		}
		for i := 0; i < b.N; i++ {
			p.Run(func(c *adws.Ctx) { rec(c, 10) })
		}
	})
}

func randomFloats(n int) []float64 {
	rng := sched.NewRNG(1, 0)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*2e6 - 1e6
	}
	return out
}
