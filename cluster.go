package adws

import (
	"context"
	"fmt"

	"github.com/parlab/adws/internal/cluster"
	"github.com/parlab/adws/internal/metrics"
)

// Routing policy names accepted by NewCluster (see docs/CLUSTER.md).
const (
	// RouteRoundRobin stripes jobs across pools in submission order.
	RouteRoundRobin = cluster.PolicyRoundRobin
	// RouteLeastLoaded routes to the pool with the lowest per-worker
	// pending load.
	RouteLeastLoaded = cluster.PolicyLeastLoaded
	// RouteAffinity routes repeats of a workload key back to the pool
	// that last ran it, spilling to a less loaded pool when the warm
	// pool falls behind.
	RouteAffinity = cluster.PolicyAffinity
)

// RoutingPolicies lists the built-in cluster routing policies.
func RoutingPolicies() []string { return cluster.Policies() }

// ClusterJob is one routed job: the per-pool Job plus its cluster-wide
// id (ClusterID), target pool (Pool), and routing Verdict.
type ClusterJob = cluster.Job

// ClusterSnapshot is one pool's live load at routing time.
type ClusterSnapshot = cluster.Snapshot

// RouteCounts are one pool's monotonic routing counters (warm / cold /
// spill / moved partition, per-pool jobs and rejects).
type RouteCounts = cluster.RouteCounts

// Cluster shards the job-serving layer across several independently
// configured pools behind a pluggable routing policy — one pool per
// NUMA node, socket, or machine shard. Each member pool keeps its own
// workers, admission window, tracer, and metrics registry; the cluster
// routes each submitted job to one pool and accounts for the locality
// of that choice. See docs/CLUSTER.md.
type Cluster struct {
	cl    *cluster.Cluster
	pools []*Pool
	reg   *MetricsRegistry
}

// NewCluster starts one pool per entry of workers (each entry is that
// pool's worker count; 0 uses GOMAXPROCS) under the named routing
// policy (RouteRoundRobin, RouteLeastLoaded, RouteAffinity). opts are
// applied to every pool; a WithWorkers among them is overridden by the
// per-pool count. On error, no pools are left running.
func NewCluster(workers []int, policy string, opts ...Option) (*Cluster, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("adws: cluster needs at least one pool")
	}
	router, err := cluster.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	pools := make([]*Pool, 0, len(workers))
	fail := func(err error) (*Cluster, error) {
		for _, p := range pools {
			p.Close()
		}
		return nil, err
	}
	for i, w := range workers {
		if w < 0 {
			return fail(fmt.Errorf("adws: cluster pool %d: negative worker count %d", i, w))
		}
		poolOpts := opts
		if w > 0 {
			poolOpts = append(append([]Option{}, opts...), WithWorkers(w))
		}
		p, err := NewPool(poolOpts...)
		if err != nil {
			return fail(fmt.Errorf("adws: cluster pool %d: %w", i, err))
		}
		pools = append(pools, p)
	}
	members := make([]cluster.Pool, len(pools))
	for i, p := range pools {
		members[i] = p.srv
	}
	cl, err := cluster.New(members, cluster.Config{Router: router})
	if err != nil {
		return fail(err)
	}
	reg := metrics.NewRegistry()
	cl.RegisterMetrics(reg)
	return &Cluster{cl: cl, pools: pools, reg: reg}, nil
}

// ClusterOf builds a cluster over pools the caller already configured —
// the heterogeneous-shard constructor: each pool keeps whatever worker
// count, scheduler, tracer, and admission window it was created with.
// The cluster takes ownership: Close closes every member pool.
func ClusterOf(policy string, pools ...*Pool) (*Cluster, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("adws: cluster needs at least one pool")
	}
	router, err := cluster.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	members := make([]cluster.Pool, len(pools))
	for i, p := range pools {
		members[i] = p.srv
	}
	cl, err := cluster.New(members, cluster.Config{Router: router})
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	cl.RegisterMetrics(reg)
	return &Cluster{cl: cl, pools: append([]*Pool(nil), pools...), reg: reg}, nil
}

// Submit routes fn to a pool chosen by the cluster's routing policy and
// admits it there. key is the job's workload key: submissions that
// repeat a key are what the affinity policy keeps on warm caches; an
// empty key disables affinity for the job. Admission errors from the
// chosen pool (ErrOverloaded, ErrDraining, ErrPoolClosed) propagate
// wrapped with the pool id.
func (c *Cluster) Submit(ctx context.Context, key string, fn func(*Ctx) error, h JobHint) (*ClusterJob, error) {
	return c.cl.Submit(ctx, cluster.Request{Key: key, Work: h.Work, Class: h.Class}, fn, h)
}

// NumPools returns the pool count.
func (c *Cluster) NumPools() int { return len(c.pools) }

// Pool returns member pool i, exposing its per-pool surface (Tracer,
// Metrics, Stats, NumWorkers).
func (c *Cluster) Pool(i int) *Pool { return c.pools[i] }

// Policy returns the routing policy name.
func (c *Cluster) Policy() string { return c.cl.Policy() }

// Snapshots returns one live load snapshot per pool.
func (c *Cluster) Snapshots() []ClusterSnapshot { return c.cl.Snapshots() }

// RouteCounts returns the per-pool routing counters.
func (c *Cluster) RouteCounts() []RouteCounts { return c.cl.RouteCounts() }

// Totals sums the per-pool routing counters.
func (c *Cluster) Totals() RouteCounts { return c.cl.Totals() }

// Job returns a routed job by cluster-wide id, if retained.
func (c *Cluster) Job(id int64) (*ClusterJob, bool) { return c.cl.Job(id) }

// Jobs returns the retained routed jobs in submission order.
func (c *Cluster) Jobs() []*ClusterJob { return c.cl.Jobs() }

// InFlight sums the pools' queue depths and running-job counts.
func (c *Cluster) InFlight() (queued, running int) { return c.cl.InFlight() }

// Workers sums the pools' worker counts.
func (c *Cluster) Workers() int { return c.cl.Workers() }

// Metrics returns the cluster-level registry: routing counters and
// per-pool load gauges (adws_cluster_*). Per-pool scheduler and job
// latency families stay on each member's own Pool.Metrics() registry.
func (c *Cluster) Metrics() *MetricsRegistry { return c.reg }

// Drain drains every pool concurrently.
func (c *Cluster) Drain(ctx context.Context) error { return c.cl.Drain(ctx) }

// Close stops admission and the workers of every pool. Drain first for
// a graceful shutdown.
func (c *Cluster) Close() {
	for _, p := range c.pools {
		p.Close()
	}
}
