package cluster

import (
	"testing"
)

func snaps3(loads ...int) []Snapshot {
	out := make([]Snapshot, len(loads))
	for i, l := range loads {
		out[i] = Snapshot{Pool: i, Workers: 4, Running: l, MaxQueue: 16}
	}
	return out
}

// TestRoundRobinDeterministicSequence pins the baseline policy: pools
// are visited 0, 1, 2, 0, 1, 2, ... regardless of load.
func TestRoundRobinDeterministicSequence(t *testing.T) {
	r := NewRoundRobin()
	want := []int{0, 1, 2, 0, 1, 2, 0, 1}
	for i, w := range want {
		// Skewed loads must not affect the stride.
		d := r.Route(Request{Key: "k"}, snaps3(9, 0, 3))
		if d.Pool != w || d.Spill {
			t.Errorf("route %d = %+v, want pool %d", i, d, w)
		}
	}
}

// TestLeastLoadedPicksMinimum pins load comparison per worker and the
// lowest-id tie-break.
func TestLeastLoadedPicksMinimum(t *testing.T) {
	r := NewLeastLoaded()
	if d := r.Route(Request{}, snaps3(5, 2, 7)); d.Pool != 1 {
		t.Errorf("min load: pool %d, want 1", d.Pool)
	}
	if d := r.Route(Request{}, snaps3(3, 3, 3)); d.Pool != 0 {
		t.Errorf("tie-break: pool %d, want 0", d.Pool)
	}
	// Per-worker, not absolute: pool 0 has more jobs but far more workers.
	snaps := []Snapshot{
		{Pool: 0, Workers: 16, Running: 4, MaxQueue: 16},
		{Pool: 1, Workers: 2, Running: 1, MaxQueue: 16},
	}
	if d := r.Route(Request{}, snaps); d.Pool != 0 {
		t.Errorf("per-worker load: pool %d, want 0 (4/16 < 1/2)", d.Pool)
	}
}

// TestLeastLoadedAvoidsFullPools pins that a pool whose admission queue
// is full is only chosen when every pool is full.
func TestLeastLoadedAvoidsFullPools(t *testing.T) {
	r := NewLeastLoaded()
	snaps := []Snapshot{
		{Pool: 0, Workers: 4, Queued: 4, Running: 0, MaxQueue: 4}, // full, lightly loaded
		{Pool: 1, Workers: 4, Queued: 2, Running: 6, MaxQueue: 4}, // heavy but open
	}
	if d := r.Route(Request{}, snaps); d.Pool != 1 {
		t.Errorf("full pool chosen: pool %d, want 1", d.Pool)
	}
	snaps[1].Queued = 4
	snaps[1].Running = 9
	if d := r.Route(Request{}, snaps); d.Pool != 0 {
		t.Errorf("all full: pool %d, want 0 (least loaded)", d.Pool)
	}
}

// TestAffinityWarmAndSpill pins the locality policy end to end: cold
// keys fall back to least-loaded, repeats stay warm, an overloaded warm
// pool spills, and a spilled key is re-homed to the spill target.
func TestAffinityWarmAndSpill(t *testing.T) {
	r := NewAffinity()

	// Cold key: least-loaded fallback, no spill flag.
	d := r.Route(Request{Key: "a"}, snaps3(2, 0, 1))
	if d.Pool != 1 || d.Spill {
		t.Fatalf("cold route = %+v, want pool 1 cold", d)
	}
	// Repeat stays on the warm pool even though it is now the most loaded.
	d = r.Route(Request{Key: "a"}, snaps3(0, 2, 0))
	if d.Pool != 1 || d.Spill {
		t.Fatalf("warm route = %+v, want pool 1", d)
	}
	// Keyless requests never consult the map.
	if d := r.Route(Request{}, snaps3(1, 1, 0)); d.Pool != 2 {
		t.Fatalf("keyless route = %+v, want pool 2", d)
	}

	// Load the warm pool past SpillOver (2 jobs/worker over the min):
	// 4 workers, 9 running jobs is 2.25/worker above the idle pools.
	d = r.Route(Request{Key: "a"}, snaps3(0, 9, 0))
	if !d.Spill || d.Pool == 1 {
		t.Fatalf("overloaded warm pool: route = %+v, want spill off pool 1", d)
	}
	rehomed := d.Pool
	// The key now belongs to the spill target.
	d = r.Route(Request{Key: "a"}, snaps3(1, 0, 1))
	if d.Pool != rehomed || d.Spill {
		t.Fatalf("re-homed route = %+v, want pool %d warm", d, rehomed)
	}

	// A warm pool whose queue is full always spills, load aside.
	r2 := NewAffinity()
	full := []Snapshot{
		{Pool: 0, Workers: 4, MaxQueue: 2},
		{Pool: 1, Workers: 4, MaxQueue: 2},
	}
	if d := r2.Route(Request{Key: "b"}, full); d.Pool != 0 {
		t.Fatalf("cold route = %+v, want pool 0", d)
	}
	full[0].Queued = 2
	if d := r2.Route(Request{Key: "b"}, full); d.Pool != 1 || !d.Spill {
		t.Fatalf("full warm pool: route = %+v, want spill to pool 1", d)
	}
	if keys := r2.Keys(); len(keys) != 1 || keys[0] != "b" {
		t.Errorf("Keys() = %v, want [b]", keys)
	}
}

// TestParsePolicy pins the policy registry.
func TestParsePolicy(t *testing.T) {
	for _, name := range Policies() {
		r, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%s): %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("ParsePolicy(%s).Name() = %s", name, r.Name())
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("ParsePolicy(random) did not fail")
	}
}
