package cluster

import (
	"sort"
	"strconv"

	"github.com/parlab/adws/internal/metrics"
)

// RegisterMetrics registers the cluster's routing and load families on
// reg, labeled per pool and by the active routing policy:
//
//	adws_cluster_pools                                   gauge
//	adws_cluster_workers                                 gauge
//	adws_cluster_routed_total{pool,policy,verdict}       counter
//	adws_cluster_routed_by_class_total{pool,class}       counter
//	adws_cluster_rejected_total{pool,policy}             counter
//	adws_cluster_pool_queued{pool}                       gauge
//	adws_cluster_pool_running{pool}                      gauge
//	adws_cluster_pool_workers{pool}                      gauge
//
// The verdict label partitions routed jobs into warm (landed on the pool
// that last ran the job's key), cold (key never seen), spill (diverted
// off the warm pool for load), and moved (landed elsewhere without a
// deliberate spill). Registration must finish before the registry's
// first WriteText; values are read live at render time.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry) {
	policy := c.Policy()
	reg.GaugeFunc("adws_cluster_pools", "Pools in the cluster.",
		func() float64 { return float64(c.NumPools()) })
	reg.GaugeFunc("adws_cluster_workers", "Workers summed over the cluster's pools.",
		func() float64 { return float64(c.Workers()) })
	reg.CounterMultiFunc("adws_cluster_routed_total",
		"Jobs routed and admitted, by pool, policy, and warm/cold verdict.",
		func() []metrics.MultiLabeled {
			counts := c.RouteCounts()
			out := make([]metrics.MultiLabeled, 0, 4*len(counts))
			for pool, ct := range counts {
				for _, v := range []struct {
					verdict Verdict
					n       int64
				}{{Warm, ct.Warm}, {Cold, ct.Cold}, {Spill, ct.Spill}, {Moved, ct.Moved}} {
					out = append(out, metrics.MultiLabeled{
						Labels: []metrics.Label{
							{Name: "pool", Value: strconv.Itoa(pool)},
							{Name: "policy", Value: policy},
							{Name: "verdict", Value: string(v.verdict)},
						},
						Value: float64(v.n),
					})
				}
			}
			return out
		})
	reg.CounterMultiFunc("adws_cluster_routed_by_class_total",
		"Jobs routed and admitted, by pool and effective priority class.",
		func() []metrics.MultiLabeled {
			counts := c.RouteCounts()
			var out []metrics.MultiLabeled
			for pool, ct := range counts {
				classes := make([]string, 0, len(ct.Classes))
				for cl := range ct.Classes {
					classes = append(classes, cl)
				}
				sort.Strings(classes)
				for _, cl := range classes {
					out = append(out, metrics.MultiLabeled{
						Labels: []metrics.Label{
							{Name: "pool", Value: strconv.Itoa(pool)},
							{Name: "class", Value: cl},
						},
						Value: float64(ct.Classes[cl]),
					})
				}
			}
			return out
		})
	reg.CounterMultiFunc("adws_cluster_rejected_total",
		"Jobs routed to a pool whose admission then rejected them.",
		func() []metrics.MultiLabeled {
			counts := c.RouteCounts()
			out := make([]metrics.MultiLabeled, len(counts))
			for pool, ct := range counts {
				out[pool] = metrics.MultiLabeled{
					Labels: []metrics.Label{
						{Name: "pool", Value: strconv.Itoa(pool)},
						{Name: "policy", Value: policy},
					},
					Value: float64(ct.Rejected),
				}
			}
			return out
		})
	poolGauge := func(field func(Snapshot) int) func() []metrics.MultiLabeled {
		return func() []metrics.MultiLabeled {
			snaps := c.Snapshots()
			out := make([]metrics.MultiLabeled, len(snaps))
			for i, s := range snaps {
				out[i] = metrics.MultiLabeled{
					Labels: []metrics.Label{{Name: "pool", Value: strconv.Itoa(i)}},
					Value:  float64(field(s)),
				}
			}
			return out
		}
	}
	reg.GaugeMultiFunc("adws_cluster_pool_queued", "Jobs waiting in each pool's admission queue.",
		poolGauge(func(s Snapshot) int { return s.Queued }))
	reg.GaugeMultiFunc("adws_cluster_pool_running", "Jobs running on each pool.",
		poolGauge(func(s Snapshot) int { return s.Running }))
	reg.GaugeMultiFunc("adws_cluster_pool_workers", "Each pool's worker count.",
		poolGauge(func(s Snapshot) int { return s.Workers }))
}
