package cluster

import (
	"fmt"
	"sort"
)

// Request describes one job being routed.
type Request struct {
	// Key is the job's workload key: jobs that touch the same data (an
	// iterative workload resubmitting the same computation) share a key,
	// and the affinity policy routes repeats of a key back to the pool
	// whose caches it warmed. Empty means no affinity.
	Key string
	// Work is the job's relative work hint (<= 0 is treated as 1).
	Work float64
	// Class is the job's priority class name (may be empty: the landing
	// pool applies its default). Routers may use it to keep
	// latency-critical classes off backlogged pools.
	Class string
}

// Snapshot is one pool's live load at routing time. The slice index
// passed to Route is the pool id.
type Snapshot struct {
	// Pool is the pool's id (its index in the cluster).
	Pool int
	// Workers is the pool's worker count.
	Workers int
	// Queued and Running are the pool's admission state (Server.InFlight).
	// Queued counts only still-admissible entries: the serving layer
	// reaps deadline-expired and cancelled queue entries before
	// reporting, so absorbing a burst of expired work does not skew the
	// load figure routers compare.
	Queued, Running int
	// QueuedByClass breaks Queued down by priority class, so routers see
	// whether a pool's backlog is latency-critical or batch.
	QueuedByClass map[string]int
	// MaxQueue is the pool's admission-queue capacity: a pool with
	// Queued >= MaxQueue would fast-reject the submission.
	MaxQueue int
	// OldestQueueAgeNS is how long the pool's oldest still-admissible
	// queued job has waited, in nanoseconds (0 with an empty queue). A
	// pool whose backlog is merely deep differs from one whose backlog is
	// old: the latter is starving, and health surfaces report it.
	OldestQueueAgeNS int64
}

// load is the per-worker pending load the least-loaded and affinity
// policies compare: (queued + running) jobs per worker.
func (s Snapshot) load() float64 {
	w := s.Workers
	if w <= 0 {
		w = 1
	}
	return float64(s.Queued+s.Running) / float64(w)
}

// full reports whether routing to the pool would fast-reject.
func (s Snapshot) full() bool { return s.MaxQueue > 0 && s.Queued >= s.MaxQueue }

// Decision is a router's choice for one request.
type Decision struct {
	// Pool is the chosen pool id (an index into the snapshots).
	Pool int
	// Spill marks a deliberate load-based diversion away from the
	// request's warm pool (affinity policy only).
	Spill bool
}

// Router picks a pool for each submitted job. The cluster serializes
// Route calls under its own mutex, so implementations may keep
// unsynchronized state (round-robin's counter, affinity's key map); a
// Router must not be shared between clusters.
type Router interface {
	// Name returns the policy name (see ParsePolicy).
	Name() string
	// Route picks a pool for req given one live snapshot per pool.
	// snaps is never empty; the returned Pool must index it.
	Route(req Request, snaps []Snapshot) Decision
}

// Policy names accepted by ParsePolicy.
const (
	PolicyRoundRobin  = "round-robin"
	PolicyLeastLoaded = "least-loaded"
	PolicyAffinity    = "affinity"
)

// Policies lists the built-in routing policies.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyAffinity}
}

// ParsePolicy returns a fresh Router for a built-in policy name.
func ParsePolicy(name string) (Router, error) {
	switch name {
	case PolicyRoundRobin:
		return NewRoundRobin(), nil
	case PolicyLeastLoaded:
		return NewLeastLoaded(), nil
	case PolicyAffinity:
		return NewAffinity(), nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (want %v)", name, Policies())
}

// RoundRobin routes job i to pool i mod N, ignoring load and keys —
// the baseline policy: deterministic in submission order, maximally
// cache-oblivious.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin router starting at pool 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (r *RoundRobin) Name() string { return PolicyRoundRobin }

// Route implements Router.
func (r *RoundRobin) Route(req Request, snaps []Snapshot) Decision {
	p := r.next % len(snaps)
	r.next++
	return Decision{Pool: p}
}

// LeastLoaded routes to the pool with the lowest per-worker pending load
// ((queued + running) / workers), breaking ties toward the lowest pool
// id. Pools whose admission queue is full are avoided unless every pool
// is full.
type LeastLoaded struct{}

// NewLeastLoaded returns a least-loaded router.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Router.
func (r *LeastLoaded) Name() string { return PolicyLeastLoaded }

// Route implements Router.
func (r *LeastLoaded) Route(req Request, snaps []Snapshot) Decision {
	return Decision{Pool: leastLoaded(snaps, -1)}
}

// leastLoaded returns the id of the pool with minimum per-worker load,
// preferring non-full pools and skipping pool `not` (pass -1 to consider
// all). Ties break toward the lowest id; with a single candidate the
// answer is that candidate even if full.
func leastLoaded(snaps []Snapshot, not int) int {
	best, bestFull := -1, false
	var bestLoad float64
	for i := range snaps {
		if i == not && len(snaps) > 1 {
			continue
		}
		l, f := snaps[i].load(), snaps[i].full()
		better := best < 0 ||
			(bestFull && !f) ||
			(bestFull == f && l < bestLoad)
		if better {
			best, bestLoad, bestFull = i, l, f
		}
	}
	return best
}

// Affinity is the locality policy — the serving-layer analogue of the
// paper's iterative-locality result: repeats of a workload key are
// routed to the pool that last ran it, so an iterative workload keeps
// meeting warm caches, with load-based spill-over when the warm pool
// falls too far behind. Unseen and keyless requests fall back to
// least-loaded placement.
type Affinity struct {
	// SpillOver is the per-worker pending-load excess over the cluster
	// minimum beyond which a warm pool is abandoned (default 2 jobs per
	// worker). A warm pool whose admission queue is full always spills.
	SpillOver float64

	last map[string]int // key -> pool that last ran it
}

// DefaultSpillOver is the Affinity.SpillOver default: a warm pool may
// run this many more pending jobs per worker than the least-loaded pool
// before repeats of its keys spill.
const DefaultSpillOver = 2.0

// NewAffinity returns an affinity router with the default spill-over.
func NewAffinity() *Affinity {
	return &Affinity{SpillOver: DefaultSpillOver, last: make(map[string]int)}
}

// Name implements Router.
func (r *Affinity) Name() string { return PolicyAffinity }

// Route implements Router. A spilled key is re-homed: subsequent
// repeats warm the spill target, not the abandoned pool.
func (r *Affinity) Route(req Request, snaps []Snapshot) Decision {
	if r.last == nil {
		r.last = make(map[string]int)
	}
	warm, ok := -1, false
	if req.Key != "" {
		warm, ok = r.lastPool(req.Key, len(snaps))
	}
	if !ok {
		p := leastLoaded(snaps, -1)
		if req.Key != "" {
			r.last[req.Key] = p
		}
		return Decision{Pool: p}
	}
	min := snaps[leastLoaded(snaps, -1)].load()
	if snaps[warm].full() || snaps[warm].load()-min > r.SpillOver {
		p := leastLoaded(snaps, warm)
		r.last[req.Key] = p
		return Decision{Pool: p, Spill: true}
	}
	return Decision{Pool: warm}
}

func (r *Affinity) lastPool(key string, n int) (int, bool) {
	p, ok := r.last[key]
	if !ok || p < 0 || p >= n {
		return -1, false
	}
	return p, true
}

// Keys returns the keys the router currently remembers, sorted — for
// introspection and tests.
func (r *Affinity) Keys() []string {
	out := make([]string, 0, len(r.last))
	for k := range r.last {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
