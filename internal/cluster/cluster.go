// Package cluster shards the job-serving layer across N independently
// configured pools behind a pluggable routing policy — the serving-layer
// scale-out of the paper's locality story. One adws pool keeps iterative
// workloads on warm caches *within* a machine shard (deterministic
// task-to-worker mapping, dominant-group steal ranges); the cluster
// extends that across shards: a Router decides which pool each submitted
// job lands on, and the locality-affinity policy keeps repeats of a
// workload key on the pool whose caches last ran it, spilling to a less
// loaded pool only when the warm pool falls behind (cf. "On the
// Efficiency of Localized Work Stealing", PAPERS.md).
//
// The cluster composes the server's interfaces (server.Runtime,
// server.Admitter, server.Placer) rather than reimplementing admission:
// each member pool is a *server.Server with its own runtime pool,
// admission window, and placement cursor. Routing, by contrast, is
// cluster-level: every Submit takes one live load snapshot per pool,
// asks the Router for a pool, classifies the decision against the
// cluster's own key history (warm / cold / moved / spill), and submits
// to the chosen member. Classification is policy-independent, so a
// round-robin and an affinity cluster driven with the same stream are
// directly comparable on warm-hit rate.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/parlab/adws/internal/runtime"
	"github.com/parlab/adws/internal/server"
)

// Pool is the per-shard serving surface the cluster composes — the
// admission, introspection, and lifecycle subset of *server.Server
// (which implements it).
type Pool interface {
	Submit(ctx context.Context, fn func(*runtime.Ctx) error, h server.Hint) (*server.Job, error)
	InFlight() (queued, running int)
	OldestQueueAge() time.Duration
	QueuedByClass() map[string]int
	Workers() int
	Config() server.Config
	Counters() server.Counters
	Job(id int64) (*server.Job, bool)
	Drain(ctx context.Context) error
	Close()
}

var _ Pool = (*server.Server)(nil)

// Verdict classifies one routing decision against the cluster's key
// history. The classification is made by the cluster, not the router,
// so it means the same thing under every policy.
type Verdict string

const (
	// Cold: the request's key was never routed before (or is empty).
	Cold Verdict = "cold"
	// Warm: the job landed on the pool that last ran its key.
	Warm Verdict = "warm"
	// Spill: the router deliberately diverted the job away from its warm
	// pool for load reasons (Decision.Spill).
	Spill Verdict = "spill"
	// Moved: the job landed on a different pool than its key's last run
	// without a deliberate spill (e.g. round-robin striding past it).
	Moved Verdict = "moved"
)

// RouteCounts are one pool's monotonic routing counters.
type RouteCounts struct {
	// Jobs counts submissions routed to the pool that were admitted.
	Jobs int64
	// Warm/Cold/Spill/Moved partition Jobs by Verdict.
	Warm, Cold, Spill, Moved int64
	// Rejected counts submissions routed to the pool that its admission
	// then rejected (not part of Jobs).
	Rejected int64
	// Classes partitions Jobs by the landing pool's effective priority
	// class (the server-normalized Hint.Class, so jobs submitted with an
	// empty class count under the pool's default). Nil until the first
	// admitted job.
	Classes map[string]int64
}

// clone deep-copies the counters (the Classes map is shared otherwise).
func (c RouteCounts) clone() RouteCounts {
	if c.Classes != nil {
		m := make(map[string]int64, len(c.Classes))
		for k, v := range c.Classes {
			m[k] = v
		}
		c.Classes = m
	}
	return c
}

// WarmRate returns Warm / Jobs, or 0 with no jobs.
func (c RouteCounts) WarmRate() float64 {
	if c.Jobs == 0 {
		return 0
	}
	return float64(c.Warm) / float64(c.Jobs)
}

// Config parameterizes a Cluster.
type Config struct {
	// Router is the routing policy (nil: NewRoundRobin()).
	Router Router
	// RetainJobs caps how many terminal jobs the cluster-wide id lookup
	// keeps, oldest evicted first (<= 0: 4096). In-flight jobs are
	// always retained.
	RetainJobs int
}

// Job is one routed job: the underlying server job plus its cluster-wide
// id and the pool it landed on. The embedded *server.Job provides the
// full lifecycle surface (Wait, Err, State, Stats, Cancel, TraceID).
type Job struct {
	*server.Job
	id      int64
	pool    int
	verdict Verdict
}

// ClusterID returns the job's cluster-wide ordinal (1-based, assigned at
// submission). It is distinct from Job.ID, the per-pool ordinal.
func (j *Job) ClusterID() int64 { return j.id }

// Pool returns the id of the pool the job was routed to.
func (j *Job) Pool() int { return j.pool }

// Verdict returns the routing classification the job was admitted under.
func (j *Job) Verdict() Verdict { return j.verdict }

// Cluster owns N pools and routes submitted jobs across them.
type Cluster struct {
	pools  []Pool
	router Router
	retain int

	mu     sync.Mutex     //adws:lockrank(20) outermost of the submit path: nests over server.mu
	last   map[string]int // key -> pool that last ran it (for Verdict)
	counts []RouteCounts  // per pool
	idSeq  int64
	jobs   map[int64]*Job
	order  []int64 // cluster ids in submission order, bounded retention
}

// New creates a cluster over the given pools (at least one). The cluster
// does not own the pools' runtimes: Close closes each Pool (stopping
// admission) but closing the underlying runtime pools stays with the
// caller that created them.
func New(pools []Pool, cfg Config) (*Cluster, error) {
	if len(pools) == 0 {
		return nil, errors.New("cluster: need at least one pool")
	}
	if cfg.Router == nil {
		cfg.Router = NewRoundRobin()
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 4096
	}
	return &Cluster{
		pools:  pools,
		router: cfg.Router,
		retain: cfg.RetainJobs,
		last:   make(map[string]int),
		counts: make([]RouteCounts, len(pools)),
		jobs:   make(map[int64]*Job),
	}, nil
}

// NumPools returns the pool count.
func (c *Cluster) NumPools() int { return len(c.pools) }

// PoolAt returns pool i.
func (c *Cluster) PoolAt(i int) Pool { return c.pools[i] }

// Policy returns the routing policy name.
func (c *Cluster) Policy() string { return c.router.Name() }

// Snapshots returns one live load snapshot per pool — the same view the
// router decides from.
func (c *Cluster) Snapshots() []Snapshot {
	snaps := make([]Snapshot, len(c.pools))
	for i, p := range c.pools {
		q, r := p.InFlight()
		snaps[i] = Snapshot{
			Pool:             i,
			Workers:          p.Workers(),
			Queued:           q,
			Running:          r,
			QueuedByClass:    p.QueuedByClass(),
			MaxQueue:         p.Config().MaxQueue,
			OldestQueueAgeNS: int64(p.OldestQueueAge()),
		}
	}
	return snaps
}

// Submit routes fn to a pool and admits it there. Routing and admission
// are atomic with respect to other Submits (one cluster-level mutex), so
// affinity decisions see a coherent key history; the per-pool admission
// errors (server.ErrOverloaded etc.) propagate wrapped with the pool id.
func (c *Cluster) Submit(ctx context.Context, req Request, fn func(*runtime.Ctx) error, h server.Hint) (*Job, error) {
	snaps := c.Snapshots()
	c.mu.Lock()
	defer c.mu.Unlock()
	dec := c.router.Route(req, snaps)
	if dec.Pool < 0 || dec.Pool >= len(c.pools) {
		return nil, fmt.Errorf("cluster: router %s chose pool %d of %d", c.router.Name(), dec.Pool, len(c.pools))
	}
	verdict := c.classifyLocked(req.Key, dec)
	sj, err := c.pools[dec.Pool].Submit(ctx, fn, h)
	if err != nil {
		c.counts[dec.Pool].Rejected++
		return nil, fmt.Errorf("cluster: pool %d: %w", dec.Pool, err)
	}
	c.noteRoutedLocked(dec.Pool, verdict, sj.Hint().Class)
	if req.Key != "" {
		c.last[req.Key] = dec.Pool
	}
	c.idSeq++
	j := &Job{Job: sj, id: c.idSeq, pool: dec.Pool, verdict: verdict}
	c.retainLocked(j)
	return j, nil
}

// classifyLocked grades a routing decision against the cluster's key
// history. Caller holds c.mu.
func (c *Cluster) classifyLocked(key string, dec Decision) Verdict {
	if key == "" {
		return Cold
	}
	lastPool, seen := c.last[key]
	switch {
	case !seen:
		return Cold
	case dec.Pool == lastPool:
		return Warm
	case dec.Spill:
		return Spill
	default:
		return Moved
	}
}

func (c *Cluster) noteRoutedLocked(pool int, v Verdict, class string) {
	ct := &c.counts[pool]
	ct.Jobs++
	switch v {
	case Warm:
		ct.Warm++
	case Cold:
		ct.Cold++
	case Spill:
		ct.Spill++
	case Moved:
		ct.Moved++
	}
	if class != "" {
		if ct.Classes == nil {
			ct.Classes = make(map[string]int64)
		}
		ct.Classes[class]++
	}
}

// RouteCounts returns a deep copy of the per-pool routing counters.
func (c *Cluster) RouteCounts() []RouteCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RouteCounts, len(c.counts))
	for i, ct := range c.counts {
		out[i] = ct.clone()
	}
	return out
}

// Totals sums the per-pool routing counters.
func (c *Cluster) Totals() RouteCounts {
	var t RouteCounts
	for _, ct := range c.RouteCounts() {
		t.Jobs += ct.Jobs
		t.Warm += ct.Warm
		t.Cold += ct.Cold
		t.Spill += ct.Spill
		t.Moved += ct.Moved
		t.Rejected += ct.Rejected
		for cl, n := range ct.Classes {
			if t.Classes == nil {
				t.Classes = make(map[string]int64)
			}
			t.Classes[cl] += n
		}
	}
	return t
}

// Job returns the routed job with the given cluster-wide id, if
// retained.
func (c *Cluster) Job(id int64) (*Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// Jobs returns the retained routed jobs in submission order.
func (c *Cluster) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		if j, ok := c.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// retainLocked mirrors the server's bounded retention: terminal jobs
// beyond the cap are evicted oldest-first; in-flight jobs always stay.
// Caller holds c.mu.
func (c *Cluster) retainLocked(j *Job) {
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	if len(c.order) <= c.retain {
		return
	}
	kept := c.order[:0]
	excess := len(c.order) - c.retain
	for _, id := range c.order {
		if excess > 0 {
			if old, ok := c.jobs[id]; ok && old.State().Terminal() {
				delete(c.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	c.order = kept
}

// InFlight sums the pools' queue depths and running-job counts.
func (c *Cluster) InFlight() (queued, running int) {
	for _, p := range c.pools {
		q, r := p.InFlight()
		queued += q
		running += r
	}
	return queued, running
}

// Workers sums the pools' worker counts.
func (c *Cluster) Workers() int {
	var n int
	for _, p := range c.pools {
		n += p.Workers()
	}
	return n
}

// Drain drains every pool concurrently and returns the first error.
func (c *Cluster) Drain(ctx context.Context) error {
	errs := make([]error, len(c.pools))
	var wg sync.WaitGroup
	for i, p := range c.pools {
		wg.Add(1)
		go func(i int, p Pool) {
			defer wg.Done()
			errs[i] = p.Drain(ctx)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: drain pool %d: %w", i, err)
		}
	}
	return nil
}

// Close stops admission on every pool. It does not wait (Drain first)
// and does not close the underlying runtime pools.
func (c *Cluster) Close() {
	for _, p := range c.pools {
		p.Close()
	}
}
