package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/runtime"
	"github.com/parlab/adws/internal/server"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// testCluster is N traced 2-worker ADWS pools behind the given router.
type testCluster struct {
	*Cluster
	tracers []*trace.Tracer
}

func newTestCluster(t *testing.T, npools int, router Router) *testCluster {
	t.Helper()
	pools := make([]Pool, npools)
	tracers := make([]*trace.Tracer, npools)
	for i := range pools {
		tr := trace.New(2, 1<<15)
		p := runtime.NewPool(runtime.Config{
			Machine: topology.Flat(2, 32<<20, 1<<20),
			Policy:  runtime.ADWS,
			Seed:    uint64(42 + i),
			Tracer:  tr,
		})
		t.Cleanup(p.Close)
		s := server.New(p, server.Config{MaxInFlight: 2, MaxQueue: 8})
		t.Cleanup(s.Close)
		pools[i] = s
		tracers[i] = tr
	}
	c, err := New(pools, Config{Router: router})
	if err != nil {
		t.Fatal(err)
	}
	return &testCluster{Cluster: c, tracers: tracers}
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %d (pool %d): %v", j.ClusterID(), j.Pool(), err)
	}
}

// spinBody spawns enough tasks to leave a recognizable trace slice.
func spinBody(c *runtime.Ctx) error {
	g := c.Group(runtime.GroupHint{})
	for i := 0; i < 8; i++ {
		g.Spawn(1, func(c *runtime.Ctx) {
			g2 := c.Group(runtime.GroupHint{})
			for k := 0; k < 4; k++ {
				g2.Spawn(1, func(*runtime.Ctx) {})
			}
			g2.Wait()
		})
	}
	g.Wait()
	return nil
}

// repeatedStream submits rounds×len(keys) jobs, cycling through keys in
// order and waiting for each before submitting the next (an iterative
// workload re-running its computations). Returns the jobs in order.
func repeatedStream(t *testing.T, c *Cluster, keys []string, rounds int) []*Job {
	t.Helper()
	var jobs []*Job
	for r := 0; r < rounds; r++ {
		for _, k := range keys {
			j, err := c.Submit(context.Background(), Request{Key: k, Work: 1}, spinBody, server.Hint{Work: 1})
			if err != nil {
				t.Fatal(err)
			}
			waitJob(t, j)
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// TestAffinityWarmHitRateBeatsRoundRobin drives the same repeated-
// workload stream through an affinity cluster and a round-robin cluster
// and pins the locality gap both in the routing counters and in the
// per-pool, per-job trace slices: under affinity every repeat of a key
// runs on the one pool that key warmed (all its trace slices sit on one
// tracer); under round-robin with a key count coprime to the pool count
// the same key's runs smear across pools.
func TestAffinityWarmHitRateBeatsRoundRobin(t *testing.T) {
	// 7 keys over 2 pools: coprime, so round-robin alternates each key's
	// pool every round and gets zero warm hits.
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6"}
	const rounds = 3

	aff := newTestCluster(t, 2, NewAffinity())
	affJobs := repeatedStream(t, aff.Cluster, keys, rounds)
	rr := newTestCluster(t, 2, NewRoundRobin())
	rrJobs := repeatedStream(t, rr.Cluster, keys, rounds)

	affTotals, rrTotals := aff.Totals(), rr.Totals()
	wantJobs := int64(len(keys) * rounds)
	if affTotals.Jobs != wantJobs || rrTotals.Jobs != wantJobs {
		t.Fatalf("routed jobs = %d / %d, want %d", affTotals.Jobs, rrTotals.Jobs, wantJobs)
	}
	// Affinity: first round cold, every later round warm (sequential
	// stream never overloads a pool, so no spills).
	if want := int64(len(keys) * (rounds - 1)); affTotals.Warm != want || affTotals.Cold != int64(len(keys)) {
		t.Errorf("affinity warm/cold = %d/%d, want %d/%d",
			affTotals.Warm, affTotals.Cold, want, len(keys))
	}
	if affTotals.Spill != 0 || affTotals.Moved != 0 {
		t.Errorf("affinity spill/moved = %d/%d, want 0/0", affTotals.Spill, affTotals.Moved)
	}
	// Round-robin with 7 keys on 2 pools: every repeat lands on the other
	// pool — zero warm hits, all repeats Moved.
	if rrTotals.Warm != 0 || rrTotals.Moved != int64(len(keys)*(rounds-1)) {
		t.Errorf("round-robin warm/moved = %d/%d, want 0/%d",
			rrTotals.Warm, rrTotals.Moved, len(keys)*(rounds-1))
	}
	if affTotals.WarmRate() <= rrTotals.WarmRate() {
		t.Errorf("affinity warm rate %.2f not above round-robin %.2f",
			affTotals.WarmRate(), rrTotals.WarmRate())
	}

	// Trace attribution: drain, then slice each pool's trace by job and
	// count the pools each key's jobs actually ran tasks on.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := aff.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	poolsPerKey := func(tc *testCluster, jobs []*Job, keys []string) map[string]map[int]bool {
		events := make([][]trace.Event, len(tc.tracers))
		for i, tr := range tc.tracers {
			events[i] = tr.Events()
		}
		out := make(map[string]map[int]bool)
		for i, j := range jobs {
			key := keys[i%len(keys)]
			js := trace.SummarizeJob(events[j.Pool()], 2, j.TraceID())
			if js.Tasks == 0 {
				t.Errorf("job %d (key %s): no task events on pool %d's trace", j.ClusterID(), key, j.Pool())
			}
			if out[key] == nil {
				out[key] = make(map[int]bool)
			}
			out[key][j.Pool()] = true
		}
		return out
	}
	for key, pools := range poolsPerKey(aff, affJobs, keys) {
		if len(pools) != 1 {
			t.Errorf("affinity: key %s ran on %d pools, want 1", key, len(pools))
		}
	}
	var smeared int
	for _, pools := range poolsPerKey(rr, rrJobs, keys) {
		if len(pools) > 1 {
			smeared++
		}
	}
	if smeared != len(keys) {
		t.Errorf("round-robin: %d of %d keys smeared across pools, want all", smeared, len(keys))
	}
}

// TestLeastLoadedAvoidsBusyPool pins routing under skewed job durations:
// with pool 0's running slots pinned by long jobs, a burst of short jobs
// must all land on pool 1.
func TestLeastLoadedAvoidsBusyPool(t *testing.T) {
	c := newTestCluster(t, 2, NewLeastLoaded())
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	defer unblock()
	long := func(*runtime.Ctx) error { <-release; return nil }

	// Pin both of pool 0's running slots with long jobs, submitted
	// directly to the member pool so the router is not consulted.
	var blockers []*server.Job
	for i := 0; i < 2; i++ {
		j, err := c.PoolAt(0).Submit(context.Background(), long, server.Hint{Work: 1})
		if err != nil {
			t.Fatalf("blocker %d: %v", i, err)
		}
		blockers = append(blockers, j)
	}
	// Short jobs, each waited before the next: every routing sees pool 0
	// at 2 pending and pool 1 idle, so all land on pool 1.
	for i := 0; i < 4; i++ {
		j, err := c.Submit(context.Background(), Request{}, spinBody, server.Hint{Work: 1})
		if err != nil {
			t.Fatal(err)
		}
		if j.Pool() != 1 {
			t.Errorf("short job %d routed to pool %d, want 1 (pool 0 pinned)", i, j.Pool())
		}
		waitJob(t, j)
	}
	unblock()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, b := range blockers {
		if err := b.Wait(ctx); err != nil {
			t.Fatalf("blocker %d: %v", i, err)
		}
	}
	counts := c.RouteCounts()
	if counts[0].Jobs != 0 || counts[1].Jobs != 4 {
		t.Errorf("per-pool routed jobs = %d/%d, want 0/4 (blockers bypassed the router)",
			counts[0].Jobs, counts[1].Jobs)
	}
}

// TestClusterJobLookupAndLifecycle pins the cluster-wide id space,
// retention, rejection wrapping, and drain/close.
func TestClusterJobLookupAndLifecycle(t *testing.T) {
	c := newTestCluster(t, 2, NewRoundRobin())
	j1, err := c.Submit(context.Background(), Request{Key: "a"}, spinBody, server.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit(context.Background(), Request{Key: "b"}, spinBody, server.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)
	waitJob(t, j2)
	if j1.ClusterID() != 1 || j2.ClusterID() != 2 {
		t.Errorf("cluster ids = %d, %d, want 1, 2", j1.ClusterID(), j2.ClusterID())
	}
	if j1.Pool() != 0 || j2.Pool() != 1 {
		t.Errorf("pools = %d, %d, want 0, 1 (round-robin)", j1.Pool(), j2.Pool())
	}
	if got, ok := c.Job(2); !ok || got != j2 {
		t.Errorf("Job(2) = %v, %v", got, ok)
	}
	if jobs := c.Jobs(); len(jobs) != 2 || jobs[0] != j1 {
		t.Errorf("Jobs() = %v", jobs)
	}

	// Overload pool 0 (round-robin ignores load): its admission error
	// propagates wrapped, and the reject is counted per pool.
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	defer unblock()
	block := func(*runtime.Ctx) error { <-release; return nil }
	for i := 0; i < 20; i++ { // alternating fills: 2 running + 8 queued per pool
		if _, err := c.Submit(context.Background(), Request{}, block, server.Hint{}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	_, err = c.Submit(context.Background(), Request{}, block, server.Hint{})
	if !errors.Is(err, server.ErrOverloaded) {
		t.Fatalf("overloaded submit: err = %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "pool 0") {
		t.Errorf("overload error %q does not name the pool", err)
	}
	if counts := c.RouteCounts(); counts[0].Rejected != 1 {
		t.Errorf("pool 0 rejected = %d, want 1", counts[0].Rejected)
	}
}

// TestClusterMetricsExposition renders the routing registry and
// re-parses it with the strict exposition parser.
func TestClusterMetricsExposition(t *testing.T) {
	c := newTestCluster(t, 2, NewAffinity())
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	repeatedStream(t, c.Cluster, []string{"a", "b", "c"}, 2)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(b.String())
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, b.String())
	}
	byName := make(map[string]metrics.Family)
	for _, f := range fams {
		byName[f.Name] = f
	}
	routed, ok := byName["adws_cluster_routed_total"]
	if !ok {
		t.Fatal("missing adws_cluster_routed_total")
	}
	var warm, total float64
	for _, s := range routed.Samples {
		if s.Labels["policy"] != PolicyAffinity {
			t.Errorf("sample policy = %q, want %q", s.Labels["policy"], PolicyAffinity)
		}
		total += s.Value
		if s.Labels["verdict"] == string(Warm) {
			warm += s.Value
		}
	}
	if total != 6 || warm != 3 {
		t.Errorf("routed total %v warm %v, want 6 and 3", total, warm)
	}
	for _, name := range []string{"adws_cluster_pools", "adws_cluster_pool_queued",
		"adws_cluster_pool_running", "adws_cluster_rejected_total"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing family %s", name)
		}
	}
	if v, ok := byName["adws_cluster_pools"].Sample(); !ok || v != 2 {
		t.Errorf("adws_cluster_pools = %v, %v, want 2", v, ok)
	}
}

// TestRouterBoundsChecked pins that a misbehaving router cannot crash
// the cluster.
func TestRouterBoundsChecked(t *testing.T) {
	c := newTestCluster(t, 2, badRouter{})
	if _, err := c.Submit(context.Background(), Request{}, spinBody, server.Hint{}); err == nil {
		t.Fatal("out-of-range route did not error")
	}
}

type badRouter struct{}

func (badRouter) Name() string                       { return "bad" }
func (badRouter) Route(Request, []Snapshot) Decision { return Decision{Pool: 99} }

// TestDrainPropagatesPoolState pins that a drained cluster rejects new
// submissions with the pool's ErrDraining.
func TestDrainPropagatesPoolState(t *testing.T) {
	c := newTestCluster(t, 2, NewLeastLoaded())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(context.Background(), Request{}, spinBody, server.Hint{})
	if !errors.Is(err, server.ErrDraining) {
		t.Fatalf("submit after drain: err = %v, want ErrDraining", err)
	}
}

// TestWorkersAndInFlight pins the aggregate views.
func TestWorkersAndInFlight(t *testing.T) {
	c := newTestCluster(t, 3, NewRoundRobin())
	if w := c.Workers(); w != 6 {
		t.Errorf("Workers() = %d, want 6", w)
	}
	if q, r := c.InFlight(); q != 0 || r != 0 {
		t.Errorf("idle InFlight() = %d, %d", q, r)
	}
	snaps := c.Snapshots()
	if len(snaps) != 3 || snaps[2].Pool != 2 || snaps[0].Workers != 2 || snaps[0].MaxQueue != 8 {
		t.Errorf("Snapshots() = %+v", snaps)
	}
}

// TestClassLedger pins the per-class routing ledger: admitted jobs count
// under their server-normalized class per pool, Totals merges the maps,
// snapshots break queued depth down by class, and the
// adws_cluster_routed_by_class_total family renders validly.
func TestClassLedger(t *testing.T) {
	c := newTestCluster(t, 2, NewRoundRobin())
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	jobs := []*Job{}
	for i, class := range []string{server.ClassBatch, server.ClassInteractive, "", server.ClassBatch} {
		j, err := c.Submit(context.Background(), Request{Key: "k", Class: class},
			spinBody, server.Hint{Class: class, Work: float64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitJob(t, j)
	}

	tot := c.Totals()
	if tot.Classes[server.ClassBatch] != 2 || tot.Classes[server.ClassInteractive] != 1 ||
		tot.Classes[server.ClassStandard] != 1 {
		t.Errorf("Totals().Classes = %v, want batch 2 / interactive 1 / standard 1 (empty class normalized)", tot.Classes)
	}
	var perPool int64
	for _, ct := range c.RouteCounts() {
		for _, n := range ct.Classes {
			perPool += n
		}
	}
	if perPool != 4 {
		t.Errorf("per-pool class counts sum to %d, want 4", perPool)
	}
	// Mutating a returned copy must not leak into the ledger.
	c.RouteCounts()[0].Classes[server.ClassBatch] = 99
	if got := c.Totals().Classes[server.ClassBatch]; got != 2 {
		t.Errorf("ledger mutated through RouteCounts copy: batch = %d", got)
	}

	snaps := c.Snapshots()
	for _, s := range snaps {
		if s.QueuedByClass == nil {
			t.Fatalf("snapshot %d missing QueuedByClass", s.Pool)
		}
		sum := 0
		for _, n := range s.QueuedByClass {
			sum += n
		}
		if sum != s.Queued {
			t.Errorf("pool %d: class breakdown sums to %d, Queued = %d", s.Pool, sum, s.Queued)
		}
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(b.String())
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, b.String())
	}
	var byClass float64
	for _, f := range fams {
		if f.Name != "adws_cluster_routed_by_class_total" {
			continue
		}
		for _, s := range f.Samples {
			if s.Labels["class"] == "" || s.Labels["pool"] == "" {
				t.Errorf("sample missing labels: %+v", s)
			}
			byClass += s.Value
		}
	}
	if byClass != 4 {
		t.Errorf("routed_by_class_total sums to %v, want 4", byClass)
	}
}
