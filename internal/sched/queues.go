package sched

// Deque is a slice-backed double-ended queue. The "top" end serves local
// LIFO push/pop; the "bottom" end serves FIFO pops and steals. It is not
// synchronized: the real runtime guards each entity's QueueSet with a lock,
// and the simulator is single-threaded.
type Deque[T any] struct {
	items []T
}

// Len returns the number of queued items.
func (d *Deque[T]) Len() int { return len(d.items) }

// PushTop appends an item at the top (local LIFO end).
func (d *Deque[T]) PushTop(v T) { d.items = append(d.items, v) }

// PushBottom prepends an item at the bottom.
func (d *Deque[T]) PushBottom(v T) {
	d.items = append(d.items, v) // grow
	copy(d.items[1:], d.items)
	d.items[0] = v
}

// PopTop removes and returns the top item (most recently PushTop'd).
func (d *Deque[T]) PopTop() (T, bool) {
	var zero T
	n := len(d.items)
	if n == 0 {
		return zero, false
	}
	v := d.items[n-1]
	d.items[n-1] = zero
	d.items = d.items[:n-1]
	return v, true
}

// PopBottom removes and returns the bottom item (oldest).
func (d *Deque[T]) PopBottom() (T, bool) {
	var zero T
	if len(d.items) == 0 {
		return zero, false
	}
	v := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = zero
	d.items = d.items[:len(d.items)-1]
	return v, true
}

// PeekBottom returns the bottom item without removing it.
func (d *Deque[T]) PeekBottom() (T, bool) {
	var zero T
	if len(d.items) == 0 {
		return zero, false
	}
	return d.items[0], true
}

// QueueSet holds one entity's task queues for ADWS: primary queues for
// tasks the entity creates itself and migration queues for tasks passed
// from other entities, both separated by task depth (paper Fig. 8).
//
// Orientation of each queue:
//
//	primary:   local push/pop at the top (LIFO); steals at the bottom, so a
//	           thief takes the oldest, largest-granularity task.
//	migration: migrating entities push at the back; the owner pops at the
//	           front (FIFO, oldest migrated first); thieves take from the
//	           back (the opposite side of local pops, per Fig. 8 footnote).
type QueueSet[T any] struct {
	primary   []Deque[T]
	migration []Deque[T]
	nPrimary  int
	nMig      int
}

func (q *QueueSet[T]) growTo(depth int) {
	for len(q.primary) <= depth {
		q.primary = append(q.primary, Deque[T]{})
		q.migration = append(q.migration, Deque[T]{})
	}
}

// Len returns the total number of queued tasks.
func (q *QueueSet[T]) Len() int { return q.nPrimary + q.nMig }

// PrimaryLen returns the number of tasks in the primary queues.
func (q *QueueSet[T]) PrimaryLen() int { return q.nPrimary }

// MigrationLen returns the number of tasks in the migration queues.
func (q *QueueSet[T]) MigrationLen() int { return q.nMig }

// PushPrimary pushes a locally created task at depth d.
func (q *QueueSet[T]) PushPrimary(d int, v T) {
	q.growTo(d)
	q.primary[d].PushTop(v)
	q.nPrimary++
}

// PushMigration records a task at depth d migrated here by another entity.
func (q *QueueSet[T]) PushMigration(d int, v T) {
	q.growTo(d)
	q.migration[d].PushTop(v) // "back" of the FIFO
	q.nMig++
}

// PopLocal implements the local side of GetRunnableTask (paper Fig. 11
// lines 33–38): primary queues are checked from the bottom up (deepest
// depth first, LIFO within a depth), then migration queues from the top
// down (shallowest depth first, FIFO within a depth). This yields the
// left-to-right execution order of Fig. 8.
func (q *QueueSet[T]) PopLocal() (T, bool) {
	var zero T
	if q.nPrimary > 0 {
		for d := len(q.primary) - 1; d >= 0; d-- {
			if v, ok := q.primary[d].PopTop(); ok {
				q.nPrimary--
				return v, true
			}
		}
	}
	if q.nMig > 0 {
		for d := 0; d < len(q.migration); d++ {
			if v, ok := q.migration[d].PopBottom(); ok {
				q.nMig--
				return v, true
			}
		}
	}
	return zero, false
}

// StealMigration implements a thief's first preference (Fig. 11 lines
// 44–46): migration queues checked from the bottom up (deepest first),
// taking the most recently migrated task (the end opposite local pops),
// restricted to depths >= minDepth.
func (q *QueueSet[T]) StealMigration(minDepth int) (T, bool) {
	var zero T
	if q.nMig == 0 {
		return zero, false
	}
	for d := len(q.migration) - 1; d >= minDepth; d-- {
		if v, ok := q.migration[d].PopTop(); ok {
			q.nMig--
			return v, true
		}
	}
	return zero, false
}

// StealPrimary implements a thief's second preference (Fig. 11 lines
// 48–50): primary queues checked from the top down (shallowest first),
// taking the oldest task (the bottom, opposite the local LIFO end),
// restricted to depths >= minDepth.
func (q *QueueSet[T]) StealPrimary(minDepth int) (T, bool) {
	var zero T
	if q.nPrimary == 0 {
		return zero, false
	}
	for d := minDepth; d < len(q.primary); d++ {
		if v, ok := q.primary[d].PopBottom(); ok {
			q.nPrimary--
			return v, true
		}
	}
	return zero, false
}

// PeekBottomPrimary returns the task a StealPrimary(0) call would take,
// without removing it. Thieves use it to check eligibility before
// committing to a steal.
func (q *QueueSet[T]) PeekBottomPrimary() (T, bool) {
	var zero T
	if q.nPrimary == 0 {
		return zero, false
	}
	for d := 0; d < len(q.primary); d++ {
		if v, ok := q.primary[d].PeekBottom(); ok {
			return v, true
		}
	}
	return zero, false
}

// StealPrimaryWhere steals the oldest primary task satisfying pred,
// scanning shallowest depth first. Used by schedulers whose tasks have
// placement constraints (the space-bounded scheduler's anchor check).
func (q *QueueSet[T]) StealPrimaryWhere(minDepth int, pred func(T) bool) (T, bool) {
	var zero T
	if q.nPrimary == 0 {
		return zero, false
	}
	for d := minDepth; d < len(q.primary); d++ {
		items := q.primary[d].items
		for i := 0; i < len(items); i++ {
			if pred(items[i]) {
				v := items[i]
				copy(items[i:], items[i+1:])
				q.primary[d].items = items[:len(items)-1]
				q.nPrimary--
				return v, true
			}
		}
	}
	return zero, false
}

// StealAny takes any task regardless of depth restrictions, preferring the
// oldest primary task at the shallowest depth (largest granularity). Used
// by conventional random work stealing, where QueueSet degenerates to a
// single deque at depth 0.
func (q *QueueSet[T]) StealAny() (T, bool) {
	if v, ok := q.StealPrimary(0); ok {
		return v, true
	}
	return q.StealMigration(0)
}
