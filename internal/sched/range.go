// Package sched implements the pure scheduling mathematics of almost
// deterministic work stealing (ADWS): distribution ranges, deterministic
// task mapping, the cross-worker task-group tree with dominant-group steal
// ranges, depth-indexed primary/migration queues, and the multi-level
// scheduling state machine (leader election, tie-to-cache, cache-hierarchy
// flattening).
//
// The package is substrate-agnostic and lock-free by design: the real
// runtime (internal/runtime) wraps these types with synchronization, and
// the discrete-event simulator (internal/sim) uses them directly in virtual
// time. Entity indices are abstract: in a single-level scheduler they are
// worker IDs; in a multi-level scheduler each ADWS instance runs over the
// child caches of one cache, and the indices are (logically unwrapped)
// child positions.
package sched

import (
	"fmt"
	"math"
)

// Range is a distribution range [X, Y) over scheduling entities, with real
// endpoints (paper §3.1). A boundary may fall in the middle of an entity.
type Range struct {
	X, Y float64
}

// FullRange returns the range covering p entities starting at entity
// `start` on the logically unwrapped axis, i.e. [start, start+p).
func FullRange(start, p int) Range {
	return Range{X: float64(start), Y: float64(start) + float64(p)}
}

// Owner returns the entity that owns (executes) a task with this range:
// floor(X).
func (r Range) Owner() int { return int(math.Floor(r.X)) }

// Last returns floor(Y), the entity just past the highest one a
// cross-worker range spans work onto. (Entity floor(Y) is *not* dominated
// by a group with this range.)
func (r Range) Last() int { return int(math.Floor(r.Y)) }

// Width returns Y - X, the amount of entity capacity the range spans.
func (r Range) Width() float64 { return r.Y - r.X }

// IsCrossWorker reports whether a task with this range is a cross-worker
// task: floor(X) != floor(Y).
func (r Range) IsCrossWorker() bool { return r.Owner() != r.Last() }

// Dominates reports whether entity w is dominated by a dominant group with
// this range: floor(X) <= w < floor(Y). Entity floor(Y) is not dominated.
func (r Range) Dominates(w int) bool { return r.Owner() <= w && w < r.Last() }

// Contains reports whether entity w's cell [w, w+1) intersects the range's
// assignment, i.e. w is one of the entities this range distributes work to:
// floor(X) <= w <= floor(Y) and w < Y.
func (r Range) Contains(w int) bool {
	return r.Owner() <= w && float64(w) < r.Y
}

func (r Range) String() string { return fmt.Sprintf("[%.3f,%.3f)", r.X, r.Y) }

// TaskKind classifies a child task of a cross-worker task group relative to
// the entity i that created the group (paper Fig. 6).
type TaskKind int

const (
	// KindMigrate is a task with floor(x) != i: passed to entity floor(x).
	// It may itself be cross-worker or not. (In the paper's presentation
	// floor(x) > i always holds because a task executes on the entity that
	// owns its range; a stolen task whose range was rebased onto the thief
	// can also produce floor(x) < i, which is handled the same way.)
	KindMigrate TaskKind = iota
	// KindExecute is the cross-worker task with floor(x) == i and
	// floor(y) > i: executed immediately by entity i. At most one per
	// cross-worker task group.
	KindExecute
	// KindLocal is a non-cross-worker task with floor(x) == floor(y) == i:
	// pushed to entity i's primary queue and executed later.
	KindLocal
)

func (k TaskKind) String() string {
	switch k {
	case KindMigrate:
		return "migrate"
	case KindExecute:
		return "execute"
	case KindLocal:
		return "local"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Classify returns the kind of a child task with range r relative to the
// entity i executing the enclosing task group (paper Fig. 6).
func Classify(r Range, i int) TaskKind {
	switch {
	case r.Owner() != i:
		return KindMigrate
	case r.IsCrossWorker():
		return KindExecute
	default:
		return KindLocal
	}
}

// Splitter divides a task group's distribution range among its child tasks
// in proportion to their work hints (paper Fig. 7 lines 21–22).
//
// Children are declared left to right in the paper's figures, which assigns
// ranges from the top of the range downward: the first child receives the
// topmost slice, so tasks destined for distant entities are created (and
// migrated) first, and the final child's slice ends exactly at X and falls
// to the creating entity. This ordering is what distributes descendants "as
// soon as possible" (§3.1).
type Splitter struct {
	r         Range
	totalWork float64 // total work hint for the group (w_all)
	assigned  float64 // work hint already consumed by NextChild calls
	cursor    float64 // current top of the unassigned sub-range
}

// NewSplitter prepares to divide range r among children whose work hints
// sum to totalWork. A non-positive totalWork is treated as unknown: every
// child hint is then also ignored and NextChild must be told the remaining
// child count instead (see NextChildEqual).
func NewSplitter(r Range, totalWork float64) *Splitter {
	if totalWork < 0 || math.IsNaN(totalWork) || math.IsInf(totalWork, 0) {
		totalWork = 0
	}
	return &Splitter{r: r, totalWork: totalWork, cursor: r.Y}
}

// NextChild returns the range for the next child task, given its work hint.
// The final child's range is clamped to end exactly at the group range's X
// when the hints consume the whole total; callers that cannot guarantee
// hints sum to totalWork should call Close and use the remainder check in
// tests. Non-positive hints receive an empty slice at the current cursor
// (the paper's hints are relative amounts of work; zero work means no
// entities need to be reserved).
func (s *Splitter) NextChild(hint float64) Range {
	if hint < 0 || math.IsNaN(hint) || math.IsInf(hint, 0) {
		hint = 0
	}
	if s.totalWork <= 0 {
		// Unknown total: behave like an even split over one child (callers
		// use SplitEqual / NextChildEqual instead; this is a safe fallback).
		r := Range{X: s.r.X, Y: s.cursor}
		s.cursor = s.r.X
		return r
	}
	s.assigned += hint
	frac := s.assigned / s.totalWork
	var bottom float64
	if frac >= 1 {
		bottom = s.r.X
	} else {
		bottom = s.r.Y - frac*s.r.Width()
		if bottom < s.r.X {
			bottom = s.r.X
		}
	}
	r := Range{X: bottom, Y: s.cursor}
	if r.Y < r.X {
		r.Y = r.X
	}
	s.cursor = bottom
	return r
}

// Remaining returns the unassigned bottom part of the range, [X, cursor).
func (s *Splitter) Remaining() Range { return Range{X: s.r.X, Y: s.cursor} }

// SplitByHints divides r among len(hints) children in one call, assigning
// from the top downward. If totalWork <= 0 or the hints sum to zero, the
// split is even (the paper's "guess that child tasks have the same amount
// of work", §6.4). The last child always ends exactly at r.X.
func SplitByHints(r Range, totalWork float64, hints []float64) []Range {
	n := len(hints)
	if n == 0 {
		return nil
	}
	sum := 0.0
	for _, h := range hints {
		if h > 0 && !math.IsNaN(h) && !math.IsInf(h, 0) {
			sum += h
		}
	}
	if totalWork <= 0 || sum <= 0 {
		return SplitEqual(r, n)
	}
	// Normalize against the declared total; if the hints exceed it, scale
	// down so everything still fits in the range.
	total := totalWork
	if sum > total {
		total = sum
	}
	out := make([]Range, n)
	cursor := r.Y
	acc := 0.0
	for i, h := range hints {
		if h < 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			h = 0
		}
		acc += h
		bottom := r.Y - (acc/total)*r.Width()
		if i == n-1 && acc >= total {
			bottom = r.X
		}
		if bottom < r.X {
			bottom = r.X
		}
		if bottom > cursor {
			bottom = cursor
		}
		out[i] = Range{X: bottom, Y: cursor}
		cursor = bottom
	}
	return out
}

// SplitEqual divides r evenly among n children, assigning from the top
// downward (first child gets the topmost slice).
func SplitEqual(r Range, n int) []Range {
	if n <= 0 {
		return nil
	}
	out := make([]Range, n)
	cursor := r.Y
	w := r.Width()
	for i := 0; i < n; i++ {
		var bottom float64
		if i == n-1 {
			bottom = r.X
		} else {
			bottom = r.Y - (float64(i+1)/float64(n))*w
		}
		if bottom > cursor {
			bottom = cursor
		}
		out[i] = Range{X: bottom, Y: cursor}
		cursor = bottom
	}
	return out
}
