package sched

import (
	"fmt"
	"sync/atomic"
)

// GroupNode is one node in the tree of cross-worker task groups used for
// dynamic load balancing (paper Fig. 10). Non-cross-worker task groups are
// not recorded in the tree. Nodes are written by the entity executing the
// group and read concurrently by thieves; the mutable fields are atomics so
// the structure needs no locks.
type GroupNode struct {
	parent *GroupNode
	rng    Range
	// depth is the task depth of this group's child tasks: the number of
	// enclosing cross-worker task groups (the root group has depth 0 in the
	// paper; we number the root group's tasks depth 0 as well by creating
	// the root node with depth 0).
	depth int

	// completedCross counts the group's child cross-worker tasks that have
	// completed. The group is dominant once this is at least 1.
	completedCross atomic.Int32
	// finished marks the whole group as completed; finished nodes are
	// skipped as dominant-group candidates.
	finished atomic.Bool
}

// NewRootGroup creates the root of a cross-worker group tree covering the
// given range, with task depth 0.
func NewRootGroup(r Range) *GroupNode {
	return &GroupNode{rng: r, depth: 0}
}

// NewChildGroup records a new cross-worker task group with range r created
// by a task belonging to group g. The child group's tasks live one depth
// level deeper than g's tasks.
func (g *GroupNode) NewChildGroup(r Range) *GroupNode {
	return &GroupNode{parent: g, rng: r, depth: g.depth + 1}
}

// Parent returns the enclosing cross-worker task group, or nil at the root.
func (g *GroupNode) Parent() *GroupNode { return g.parent }

// Range returns the group's distribution range.
func (g *GroupNode) Range() Range { return g.rng }

// Depth returns the task depth of this group's child tasks.
func (g *GroupNode) Depth() int { return g.depth }

// CrossTaskCompleted records the completion of one of g's child
// cross-worker tasks, which may make g dominant.
func (g *GroupNode) CrossTaskCompleted() { g.completedCross.Add(1) }

// Finish marks the group as completed; it will no longer be considered a
// dominant-group candidate.
func (g *GroupNode) Finish() { g.finished.Store(true) }

// Finished reports whether the group has completed.
func (g *GroupNode) Finished() bool { return g.finished.Load() }

// IsDominant reports whether g is a dominant task group: a cross-worker
// task group at least one of whose child cross-worker tasks has completed,
// and which has not itself finished.
func (g *GroupNode) IsDominant() bool {
	return !g.finished.Load() && g.completedCross.Load() > 0
}

func (g *GroupNode) String() string {
	return fmt.Sprintf("group{%v d=%d dom=%v}", g.rng, g.depth, g.IsDominant())
}

// TopmostDominant walks from g up to the root and returns the topmost
// (closest to the root) dominant group that dominates entity w, or nil if
// no such group exists — in which case entity w must not steal (paper
// Fig. 11 line 40). The walk costs at most the tree depth and happens only
// on steal attempts, honouring the work-first principle.
func TopmostDominant(g *GroupNode, w int) *GroupNode {
	var top *GroupNode
	for n := g; n != nil; n = n.parent {
		if n.IsDominant() && n.rng.Dominates(w) {
			top = n
		}
	}
	return top
}

// StealRange describes where an idle entity is currently allowed to steal
// from: the victims, the minimum task depth, and the two boundary entities
// with restricted queues (paper §3.2).
type StealRange struct {
	// Low and High are floor(x) and floor(y) of the topmost dominant
	// group's range; victims are chosen from [Low, High] inclusive.
	Low, High int
	// MinDepth is the depth of the topmost dominant group: only queues at
	// depth >= MinDepth may be stolen from, so tasks from enclosing groups
	// are never taken.
	MinDepth int
	// group is the dominant group this range was derived from.
	group *GroupNode
}

// CurrentStealRange computes entity w's steal range from its current group
// g. ok is false when w is not dominated by any group and must not steal.
func CurrentStealRange(g *GroupNode, w int) (StealRange, bool) {
	top := TopmostDominant(g, w)
	if top == nil {
		return StealRange{}, false
	}
	r := top.rng
	return StealRange{
		Low:      r.Owner(),
		High:     r.Last(),
		MinDepth: top.depth,
		group:    top,
	}, true
}

// Group returns the dominant group the steal range was derived from.
func (s StealRange) Group() *GroupNode { return s.group }

// NumVictims returns the number of candidate victims other than w itself.
func (s StealRange) NumVictims(w int) int {
	n := s.High - s.Low + 1
	if w >= s.Low && w <= s.High {
		n--
	}
	return n
}

// Victim returns the k-th candidate victim for entity w, skipping w itself.
// k must be in [0, NumVictims(w)).
func (s StealRange) Victim(w, k int) int {
	v := s.Low + k
	if w >= s.Low && v >= w {
		v++
	}
	return v
}

// MigrationStealable reports whether victim v's migration queues may be
// stolen from: tasks must not be stolen from the migration queues of entity
// Low, because those hold tasks migrated from outside the steal range.
func (s StealRange) MigrationStealable(v int) bool { return v != s.Low }

// PrimaryStealable reports whether victim v's primary queues may be stolen
// from: tasks must not be stolen from the primary queues of entity High,
// because those tasks are outside the range [x, y).
func (s StealRange) PrimaryStealable(v int) bool { return v != s.High }
