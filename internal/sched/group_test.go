package sched

import (
	"strings"
	"testing"
)

func TestGroupTreeDominance(t *testing.T) {
	root := NewRootGroup(Range{X: 0, Y: 4})
	if root.IsDominant() {
		t.Error("fresh group should not be dominant")
	}
	root.CrossTaskCompleted()
	if !root.IsDominant() {
		t.Error("group with a completed cross task should be dominant")
	}
	root.Finish()
	if root.IsDominant() {
		t.Error("finished group should not be dominant")
	}
	if !root.Finished() {
		t.Error("Finished() should report true")
	}
}

func TestGroupDepths(t *testing.T) {
	root := NewRootGroup(Range{X: 0, Y: 8})
	if root.Depth() != 0 {
		t.Fatalf("root depth = %d, want 0", root.Depth())
	}
	c1 := root.NewChildGroup(Range{X: 0, Y: 4})
	c2 := c1.NewChildGroup(Range{X: 0, Y: 2})
	if c1.Depth() != 1 || c2.Depth() != 2 {
		t.Errorf("depths = %d,%d, want 1,2", c1.Depth(), c2.Depth())
	}
	if c2.Parent() != c1 || c1.Parent() != root || root.Parent() != nil {
		t.Error("parent links wrong")
	}
	if c1.Range() != (Range{X: 0, Y: 4}) {
		t.Errorf("Range = %v", c1.Range())
	}
}

func TestTopmostDominant(t *testing.T) {
	// Tree mirroring Fig. 10: root [0,4), child [0, 2.x), grandchild per
	// worker.
	root := NewRootGroup(Range{X: 0, Y: 4})
	left := root.NewChildGroup(Range{X: 0, Y: 2.5})
	leaf1 := left.NewChildGroup(Range{X: 1, Y: 2.5})

	// Early stage: only leaf1 dominant (worker 1's own group, Fig. 10a).
	leaf1.CrossTaskCompleted()
	if got := TopmostDominant(leaf1, 1); got != leaf1 {
		t.Errorf("TopmostDominant = %v, want leaf1", got)
	}
	// Worker 2 is not dominated by leaf1 ([1,2.5) dominates 1 only:
	// floor(2.5)=2 is excluded).
	if got := TopmostDominant(leaf1, 2); got != nil {
		t.Errorf("worker 2 should not be dominated, got %v", got)
	}

	// Ancestor becomes dominant (Fig. 10b): worker 1's steal range widens
	// to the ancestor's.
	left.CrossTaskCompleted()
	if got := TopmostDominant(leaf1, 1); got != left {
		t.Errorf("TopmostDominant = %v, want left ancestor", got)
	}

	// Root dominant (Fig. 10c): equivalent to conventional work stealing
	// over all workers.
	root.CrossTaskCompleted()
	if got := TopmostDominant(leaf1, 1); got != root {
		t.Errorf("TopmostDominant = %v, want root", got)
	}

	// Finished groups are skipped.
	root.Finish()
	if got := TopmostDominant(leaf1, 1); got != left {
		t.Errorf("after root finish, TopmostDominant = %v, want left", got)
	}
}

func TestCurrentStealRange(t *testing.T) {
	root := NewRootGroup(Range{X: 0, Y: 4})
	g := root.NewChildGroup(Range{X: 1.25, Y: 3.75})

	// No dominant group anywhere: no stealing.
	if _, ok := CurrentStealRange(g, 2); ok {
		t.Error("expected no steal range before any cross task completes")
	}

	g.CrossTaskCompleted()
	sr, ok := CurrentStealRange(g, 2)
	if !ok {
		t.Fatal("expected a steal range")
	}
	if sr.Low != 1 || sr.High != 3 {
		t.Errorf("steal range = [%d,%d], want [1,3]", sr.Low, sr.High)
	}
	if sr.MinDepth != 1 {
		t.Errorf("MinDepth = %d, want 1", sr.MinDepth)
	}
	if sr.Group() != g {
		t.Error("Group() should return the dominant group")
	}

	// Boundary-entity queue restrictions (§3.2): no stealing from the
	// migration queues of Low or the primary queues of High.
	if sr.MigrationStealable(1) {
		t.Error("migration queues of floor(x) must not be stolen from")
	}
	if !sr.MigrationStealable(2) || !sr.MigrationStealable(3) {
		t.Error("migration queues of interior workers should be stealable")
	}
	if sr.PrimaryStealable(3) {
		t.Error("primary queues of floor(y) must not be stolen from")
	}
	if !sr.PrimaryStealable(1) || !sr.PrimaryStealable(2) {
		t.Error("primary queues of interior workers should be stealable")
	}
}

func TestStealRangeVictims(t *testing.T) {
	sr := StealRange{Low: 1, High: 4}
	// Worker 2 chooses among {1, 3, 4}.
	if n := sr.NumVictims(2); n != 3 {
		t.Fatalf("NumVictims = %d, want 3", n)
	}
	got := map[int]bool{}
	for k := 0; k < 3; k++ {
		got[sr.Victim(2, k)] = true
	}
	for _, v := range []int{1, 3, 4} {
		if !got[v] {
			t.Errorf("victim %d never produced; got %v", v, got)
		}
	}
	if got[2] {
		t.Error("worker chose itself as victim")
	}
	// A worker outside the range chooses among all of it.
	if n := sr.NumVictims(7); n != 4 {
		t.Errorf("outside worker NumVictims = %d, want 4", n)
	}
	if v := sr.Victim(7, 0); v != 1 {
		t.Errorf("outside worker first victim = %d, want 1", v)
	}
}

func TestGroupString(t *testing.T) {
	g := NewRootGroup(Range{X: 0, Y: 2})
	if !strings.Contains(g.String(), "d=0") {
		t.Errorf("String = %q", g.String())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 3)
	b := NewRNG(42, 3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(42, 4)
	same := 0
	a = NewRNG(42, 3)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different-entity RNGs coincided %d/100 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7, 0)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) only produced %d distinct values", len(seen))
	}
	f := r.Float64()
	if f < 0 || f >= 1 {
		t.Errorf("Float64 = %v out of [0,1)", f)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}
