package sched

import (
	"testing"

	"github.com/parlab/adws/internal/topology"
)

func TestFlattenLevelOakbridge(t *testing.T) {
	m := topology.OakbridgeCX()
	l3 := int64(38_500 * 1024)

	// Fits in the aggregate L3 (2 sockets): flatten straight to the leaf
	// level and run single-level ADWS over all 56 workers (§5).
	lnext, caches := FlattenLevel(m, 64<<20, 1, 0, 2)
	if lnext != 2 {
		t.Fatalf("lnext = %d, want 2", lnext)
	}
	if len(caches) != 56 {
		t.Fatalf("flattened caches = %d, want 56", len(caches))
	}

	// Larger than aggregate L3: no flattening, keep scheduling at level 1.
	lnext, caches = FlattenLevel(m, 100<<20, 1, 0, 2)
	if lnext != 1 || caches != nil {
		t.Fatalf("lnext = %d caches=%v, want 1,nil", lnext, caches)
	}

	// Fits in one socket's L3 (range covering only cache 1): flatten over
	// that socket's 28 private caches.
	lnext, caches = FlattenLevel(m, l3/2, 1, 1, 2)
	if lnext != 2 {
		t.Fatalf("single-socket lnext = %d, want 2", lnext)
	}
	if len(caches) != 28 {
		t.Fatalf("single-socket flattened caches = %d, want 28", len(caches))
	}
	if caches[0].FirstWorker() != 28 {
		t.Errorf("flattened caches start at worker %d, want 28", caches[0].FirstWorker())
	}
}

func TestFlattenLevelThreeLevels(t *testing.T) {
	m := topology.ThreeLevel64()
	// Socket LLC 64 MB ×2, cluster 8 MB ×8, private 1 MB ×64.

	// 100 MB fits in 2×64 MB sockets but not in 8×8 MB clusters: flatten
	// to the cluster level (level 2) — below the level that holds the set.
	lnext, caches := FlattenLevel(m, 100<<20, 1, 0, 2)
	if lnext != 2 {
		t.Fatalf("lnext = %d, want 2", lnext)
	}
	if len(caches) != 8 {
		t.Fatalf("flattened caches = %d, want 8 clusters", len(caches))
	}

	// 40 MB fits in sockets and clusters but not in 64×1 MB privates:
	// flatten to the private level anyway (level 3 is the deepest).
	lnext, caches = FlattenLevel(m, 40<<20, 1, 0, 2)
	if lnext != 3 {
		t.Fatalf("lnext = %d, want 3", lnext)
	}
	if len(caches) != 64 {
		t.Fatalf("flattened caches = %d, want 64", len(caches))
	}

	// The paper's sub-hierarchy case (§5): a task group held by cluster
	// caches 2..3 (range [2.x, 4.0) at level 2) whose size fits their
	// combined capacity flattens over their 16 private caches.
	lnext, caches = FlattenLevel(m, 12<<20, 2, 2, 4)
	if lnext != 3 {
		t.Fatalf("sub-hierarchy lnext = %d, want 3", lnext)
	}
	if len(caches) != 16 {
		t.Fatalf("sub-hierarchy caches = %d, want 16", len(caches))
	}
	if caches[0].FirstWorker() != 16 {
		t.Errorf("sub-hierarchy caches start at worker %d, want 16", caches[0].FirstWorker())
	}
}

func TestFlattenLevelEdgeCases(t *testing.T) {
	m := topology.TwoLevel16()
	// Already at the leaf level: nothing to flatten.
	if lnext, caches := FlattenLevel(m, 1, 2, 0, 1); lnext != 2 || caches != nil {
		t.Errorf("leaf-level flatten = %d,%v", lnext, caches)
	}
	// Out-of-range indices are rejected.
	if lnext, caches := FlattenLevel(m, 1, 1, -1, 0); lnext != 1 || caches != nil {
		t.Errorf("negative index flatten = %d,%v", lnext, caches)
	}
	if lnext, caches := FlattenLevel(m, 1, 1, 3, 9); lnext != 1 || caches != nil {
		t.Errorf("overflow index flatten = %d,%v", lnext, caches)
	}
	// j <= i (a range within one cache): candidate set is just cache i
	// (footnote 5 excludes cache j).
	lnext, caches := FlattenLevel(m, 4<<20, 1, 2, 2)
	if lnext != 2 || len(caches) != 4 {
		t.Errorf("single-cache flatten = %d, %d caches; want 2, 4", lnext, len(caches))
	}
}
