package sched

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{X: 2.2, Y: 4.1}
	if r.Owner() != 2 {
		t.Errorf("Owner = %d, want 2", r.Owner())
	}
	if r.Last() != 4 {
		t.Errorf("Last = %d, want 4", r.Last())
	}
	if !r.IsCrossWorker() {
		t.Error("IsCrossWorker = false, want true")
	}
	if w := r.Width(); math.Abs(w-1.9) > 1e-12 {
		t.Errorf("Width = %v, want 1.9", w)
	}

	nc := Range{X: 2.2, Y: 2.9}
	if nc.IsCrossWorker() {
		t.Error("non-cross range reported cross-worker")
	}
	if nc.Owner() != 2 || nc.Last() != 2 {
		t.Errorf("Owner/Last = %d/%d, want 2/2", nc.Owner(), nc.Last())
	}
}

func TestRangeDominates(t *testing.T) {
	r := Range{X: 1.5, Y: 3.5}
	// floor(x)=1 <= w < floor(y)=3; worker floor(y) is not dominated.
	for w, want := range map[int]bool{0: false, 1: true, 2: true, 3: false, 4: false} {
		if got := r.Dominates(w); got != want {
			t.Errorf("Dominates(%d) = %v, want %v", w, got, want)
		}
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{X: 1.5, Y: 3.0}
	for w, want := range map[int]bool{0: false, 1: true, 2: true, 3: false} {
		if got := r.Contains(w); got != want {
			t.Errorf("Contains(%d) = %v, want %v", w, got, want)
		}
	}
	r2 := Range{X: 1.5, Y: 3.5}
	if !r2.Contains(3) {
		t.Error("Contains(3) = false for [1.5,3.5), want true")
	}
}

func TestFullRange(t *testing.T) {
	r := FullRange(0, 4)
	if r.X != 0 || r.Y != 4 {
		t.Errorf("FullRange(0,4) = %v", r)
	}
	r = FullRange(3, 4)
	if r.X != 3 || r.Y != 7 {
		t.Errorf("FullRange(3,4) = %v", r)
	}
}

func TestClassify(t *testing.T) {
	// Creating entity is 2 (owner of the group range [2.2, 4.1)).
	cases := []struct {
		r    Range
		want TaskKind
	}{
		{Range{X: 3.1, Y: 4.1}, KindMigrate}, // floor(x)=3 > 2
		{Range{X: 2.9, Y: 3.1}, KindExecute}, // floor(x)=2, cross
		{Range{X: 2.2, Y: 2.9}, KindLocal},   // floor(x)=floor(y)=2
	}
	for _, c := range cases {
		if got := Classify(c.r, 2); got != c.want {
			t.Errorf("Classify(%v, 2) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestTaskKindString(t *testing.T) {
	if KindMigrate.String() != "migrate" || KindExecute.String() != "execute" || KindLocal.String() != "local" {
		t.Error("TaskKind strings wrong")
	}
	if TaskKind(42).String() != "TaskKind(42)" {
		t.Error("unknown TaskKind string wrong")
	}
}

func TestSplitByHintsTopDown(t *testing.T) {
	r := Range{X: 0, Y: 4}
	// First-declared child takes the topmost slice (paper Fig. 6: migrated
	// tasks are created first).
	rs := SplitByHints(r, 4, []float64{1, 1, 2})
	if len(rs) != 3 {
		t.Fatalf("got %d ranges", len(rs))
	}
	want := []Range{{3, 4}, {2, 3}, {0, 2}}
	for i := range rs {
		if math.Abs(rs[i].X-want[i].X) > 1e-12 || math.Abs(rs[i].Y-want[i].Y) > 1e-12 {
			t.Errorf("child %d = %v, want %v", i, rs[i], want[i])
		}
	}
	// Last child ends exactly at X.
	if rs[2].X != r.X {
		t.Errorf("last child X = %v, want exactly %v", rs[2].X, r.X)
	}
}

func TestSplitByHintsEqualFallback(t *testing.T) {
	r := Range{X: 0, Y: 3}
	for _, hints := range [][]float64{{0, 0, 0}, {-1, -2, -3}} {
		rs := SplitByHints(r, 0, hints)
		for i, sub := range rs {
			if math.Abs(sub.Width()-1) > 1e-12 {
				t.Errorf("hints %v child %d width = %v, want 1", hints, i, sub.Width())
			}
		}
	}
	// NaN/Inf hints are ignored rather than poisoning the split.
	rs := SplitByHints(r, 3, []float64{math.NaN(), math.Inf(1), 3})
	if rs[2].X != 0 {
		t.Errorf("NaN/Inf hints: last child = %v, want ending at 0", rs[2])
	}
}

func TestSplitByHintsOverflowingHints(t *testing.T) {
	// Hints summing to more than totalWork must still fit in the range.
	r := Range{X: 0, Y: 2}
	rs := SplitByHints(r, 1, []float64{3, 3})
	if rs[0].Y != 2 || rs[1].X != 0 {
		t.Errorf("overflow split = %v", rs)
	}
	for _, sub := range rs {
		if sub.X < r.X-1e-12 || sub.Y > r.Y+1e-12 {
			t.Errorf("child %v escapes range %v", sub, r)
		}
	}
}

func TestSplitEqual(t *testing.T) {
	rs := SplitEqual(Range{X: 1.5, Y: 3.5}, 4)
	if len(rs) != 4 {
		t.Fatalf("got %d ranges", len(rs))
	}
	if rs[3].X != 1.5 {
		t.Errorf("last child X = %v, want 1.5", rs[3].X)
	}
	if rs[0].Y != 3.5 {
		t.Errorf("first child Y = %v, want 3.5", rs[0].Y)
	}
	for i := 0; i < 3; i++ {
		if rs[i].X != rs[i+1].Y {
			t.Errorf("gap between child %d and %d: %v vs %v", i, i+1, rs[i].X, rs[i+1].Y)
		}
	}
	if SplitEqual(Range{}, 0) != nil {
		t.Error("SplitEqual with n=0 should return nil")
	}
	if SplitByHints(Range{}, 1, nil) != nil {
		t.Error("SplitByHints with no hints should return nil")
	}
}

func TestSplitterIncremental(t *testing.T) {
	s := NewSplitter(Range{X: 0.5, Y: 4.5}, 8)
	r1 := s.NextChild(2) // top quarter... 2/8 of width 4 = 1
	if r1.Y != 4.5 || math.Abs(r1.X-3.5) > 1e-12 {
		t.Errorf("r1 = %v, want [3.5,4.5)", r1)
	}
	r2 := s.NextChild(4)
	if math.Abs(r2.X-1.5) > 1e-12 || math.Abs(r2.Y-3.5) > 1e-12 {
		t.Errorf("r2 = %v, want [1.5,3.5)", r2)
	}
	r3 := s.NextChild(2)
	if r3.X != 0.5 {
		t.Errorf("r3 = %v, want ending exactly at 0.5", r3)
	}
	if rem := s.Remaining(); rem.Width() != 0 {
		t.Errorf("Remaining = %v, want empty", rem)
	}
}

func TestSplitterDegenerate(t *testing.T) {
	// Unknown total work: the single NextChild consumes everything.
	s := NewSplitter(Range{X: 0, Y: 2}, 0)
	r := s.NextChild(5)
	if r.X != 0 || r.Y != 2 {
		t.Errorf("unknown-total NextChild = %v, want [0,2)", r)
	}
	// Negative/NaN hints are sanitized.
	s = NewSplitter(Range{X: 0, Y: 2}, math.NaN())
	r = s.NextChild(math.NaN())
	if r.Width() != 2 {
		t.Errorf("NaN everywhere: got %v", r)
	}
}

// Property: SplitByHints always partitions the range exactly: children are
// contiguous top-down, the first starts at Y, the last ends at X, and no
// child escapes the range.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(x uint16, width uint16, h1, h2, h3, h4 uint8) bool {
		r := Range{X: float64(x) / 8, Y: float64(x)/8 + float64(width%256)/8 + 0.125}
		hints := []float64{float64(h1), float64(h2), float64(h3), float64(h4)}
		total := hints[0] + hints[1] + hints[2] + hints[3]
		rs := SplitByHints(r, total, hints)
		if len(rs) != 4 {
			return false
		}
		if rs[0].Y != r.Y || rs[3].X != r.X {
			return false
		}
		for i := 0; i < 3; i++ {
			if rs[i].X != rs[i+1].Y {
				return false
			}
		}
		for _, sub := range rs {
			if sub.Y < sub.X || sub.X < r.X || sub.Y > r.Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: at most one child of any split is of kind Execute for the
// owning entity (paper §3.1: "it is guaranteed to be the only one for each
// cross-worker task group").
func TestAtMostOneExecuteProperty(t *testing.T) {
	f := func(x uint16, width uint16, h1, h2, h3, h4, h5 uint8) bool {
		r := Range{X: float64(x) / 16, Y: float64(x)/16 + float64(width%512)/16 + 0.0625}
		owner := r.Owner()
		hints := []float64{float64(h1), float64(h2), float64(h3), float64(h4), float64(h5)}
		total := 0.0
		for _, h := range hints {
			total += h
		}
		rs := SplitByHints(r, total, hints)
		executes := 0
		for _, sub := range rs {
			if sub.Width() == 0 {
				continue
			}
			switch Classify(sub, owner) {
			case KindExecute:
				executes++
			case KindMigrate:
				if sub.Owner() <= owner {
					return false
				}
			case KindLocal:
				if sub.Owner() != owner {
					return false
				}
			}
		}
		return executes <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRangeString(t *testing.T) {
	if s := (Range{X: 1, Y: 2.5}).String(); s != "[1.000,2.500)" {
		t.Errorf("String = %q", s)
	}
}
