package sched

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64)
// used for victim selection. Every scheduling entity owns one, seeded from
// (runSeed, entityID), so simulator runs are bit-reproducible and the real
// runtime needs no locked global randomness.
type RNG struct {
	state uint64
}

// NewRNG seeds an RNG from a run seed and an entity ID.
func NewRNG(seed uint64, entity int) *RNG {
	r := &RNG{state: seed ^ (uint64(entity)+1)*0x9E3779B97F4A7C15}
	// Warm up so nearby seeds decorrelate.
	r.Next()
	r.Next()
	return r
}

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sched: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
