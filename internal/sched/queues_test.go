package sched

import (
	"testing"
	"testing/quick"
)

func TestDequeEnds(t *testing.T) {
	var d Deque[int]
	if _, ok := d.PopTop(); ok {
		t.Error("PopTop on empty deque succeeded")
	}
	if _, ok := d.PopBottom(); ok {
		t.Error("PopBottom on empty deque succeeded")
	}
	if _, ok := d.PeekBottom(); ok {
		t.Error("PeekBottom on empty deque succeeded")
	}
	d.PushTop(1)
	d.PushTop(2)
	d.PushTop(3)
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if v, _ := d.PeekBottom(); v != 1 {
		t.Errorf("PeekBottom = %d, want 1", v)
	}
	if v, _ := d.PopTop(); v != 3 {
		t.Errorf("PopTop = %d, want 3 (LIFO)", v)
	}
	if v, _ := d.PopBottom(); v != 1 {
		t.Errorf("PopBottom = %d, want 1 (oldest)", v)
	}
	d.PushBottom(0)
	if v, _ := d.PopBottom(); v != 0 {
		t.Errorf("PopBottom after PushBottom = %d, want 0", v)
	}
	if v, _ := d.PopTop(); v != 2 {
		t.Errorf("final PopTop = %d, want 2", v)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d, want 0", d.Len())
	}
}

func TestQueueSetLocalOrder(t *testing.T) {
	// Local pops drain primary queues deepest-depth-first, LIFO within a
	// depth, then migration queues shallowest-first, FIFO within a depth
	// (Fig. 11 lines 33–38, yielding Fig. 8's left-to-right order).
	var q QueueSet[string]
	q.PushPrimary(0, "p0a")
	q.PushPrimary(0, "p0b")
	q.PushPrimary(2, "p2a")
	q.PushMigration(0, "m0a")
	q.PushMigration(0, "m0b")
	q.PushMigration(1, "m1a")

	want := []string{"p2a", "p0b", "p0a", "m0a", "m0b", "m1a"}
	for i, w := range want {
		v, ok := q.PopLocal()
		if !ok {
			t.Fatalf("PopLocal #%d failed", i)
		}
		if v != w {
			t.Errorf("PopLocal #%d = %q, want %q", i, v, w)
		}
	}
	if _, ok := q.PopLocal(); ok {
		t.Error("PopLocal on empty set succeeded")
	}
}

func TestQueueSetStealOrder(t *testing.T) {
	// Thieves prefer migration queues deepest-first, taking the most
	// recently migrated task, then primary queues shallowest-first, taking
	// the oldest task (Fig. 11 lines 44–50).
	var q QueueSet[string]
	q.PushPrimary(0, "p0a")
	q.PushPrimary(0, "p0b")
	q.PushPrimary(2, "p2a")
	q.PushMigration(0, "m0a")
	q.PushMigration(1, "m1a")
	q.PushMigration(1, "m1b")

	steals := []string{"m1b", "m1a", "m0a", "p0a", "p0b", "p2a"}
	for i, w := range steals {
		var v string
		var ok bool
		if v, ok = q.StealMigration(0); !ok {
			v, ok = q.StealPrimary(0)
		}
		if !ok {
			t.Fatalf("steal #%d failed", i)
		}
		if v != w {
			t.Errorf("steal #%d = %q, want %q", i, v, w)
		}
	}
}

func TestQueueSetDepthRestriction(t *testing.T) {
	var q QueueSet[int]
	q.PushPrimary(0, 100)
	q.PushMigration(0, 200)
	q.PushPrimary(2, 102)
	q.PushMigration(2, 202)

	// minDepth 1: only depth-2 tasks are stealable.
	if v, ok := q.StealMigration(1); !ok || v != 202 {
		t.Errorf("StealMigration(1) = %d,%v, want 202", v, ok)
	}
	if v, ok := q.StealPrimary(1); !ok || v != 102 {
		t.Errorf("StealPrimary(1) = %d,%v, want 102", v, ok)
	}
	if _, ok := q.StealMigration(1); ok {
		t.Error("depth-0 migration task stolen despite minDepth 1")
	}
	if _, ok := q.StealPrimary(1); ok {
		t.Error("depth-0 primary task stolen despite minDepth 1")
	}
	// Depth-0 tasks remain available locally.
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	if v, _ := q.PopLocal(); v != 100 {
		t.Errorf("PopLocal = %d, want 100", v)
	}
	if v, _ := q.PopLocal(); v != 200 {
		t.Errorf("PopLocal = %d, want 200", v)
	}
}

func TestQueueSetStealAny(t *testing.T) {
	var q QueueSet[int]
	if _, ok := q.StealAny(); ok {
		t.Error("StealAny on empty set succeeded")
	}
	q.PushMigration(1, 7)
	q.PushPrimary(0, 5)
	q.PushPrimary(0, 6)
	// StealAny prefers the oldest primary task.
	if v, _ := q.StealAny(); v != 5 {
		t.Errorf("StealAny = %d, want 5", v)
	}
	if v, _ := q.StealAny(); v != 6 {
		t.Errorf("StealAny = %d, want 6", v)
	}
	if v, _ := q.StealAny(); v != 7 {
		t.Errorf("StealAny = %d, want 7 (migration fallback)", v)
	}
}

func TestQueueSetCounters(t *testing.T) {
	var q QueueSet[int]
	q.PushPrimary(3, 1)
	q.PushMigration(5, 2)
	if q.PrimaryLen() != 1 || q.MigrationLen() != 1 || q.Len() != 2 {
		t.Errorf("counters = %d/%d/%d", q.PrimaryLen(), q.MigrationLen(), q.Len())
	}
	q.PopLocal()
	q.PopLocal()
	if q.Len() != 0 {
		t.Errorf("Len after draining = %d", q.Len())
	}
}

// Property: every pushed task is popped exactly once, regardless of the
// interleaving of local pops and steals.
func TestQueueSetConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q QueueSet[int]
		pushed := 0
		popped := map[int]bool{}
		next := 0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				q.PushPrimary(int(op%3), next)
				next++
				pushed++
			case 1:
				q.PushMigration(int(op%4), next)
				next++
				pushed++
			case 2:
				if v, ok := q.PopLocal(); ok {
					if popped[v] {
						return false
					}
					popped[v] = true
				}
			case 3:
				if v, ok := q.StealMigration(int(op % 2)); ok {
					if popped[v] {
						return false
					}
					popped[v] = true
				}
			case 4:
				if v, ok := q.StealPrimary(int(op % 2)); ok {
					if popped[v] {
						return false
					}
					popped[v] = true
				}
			}
		}
		// Drain the rest.
		for {
			v, ok := q.PopLocal()
			if !ok {
				break
			}
			if popped[v] {
				return false
			}
			popped[v] = true
		}
		return len(popped) == pushed && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
