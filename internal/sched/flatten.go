package sched

import "github.com/parlab/adws/internal/topology"

// FlattenLevel implements cache-hierarchy flattening (paper §5, Fig. 15).
//
// A task group TG with working-set size `size` is being scheduled at cache
// level `level`, with a distribution range whose integer endpoints are
// i = floor(x) and j = floor(y) over the level-`level` caches of machine m.
// The function decides whether TG should instead be scheduled by a
// single-level scheduler over a deeper, flattened set of caches.
//
// The candidate caches at the current level are C[level][i .. max(i, j-1)]
// (cache j is excluded because it may receive its own level-`level` leaf,
// which takes priority over flattening by cache i — paper footnote 5). If
// TG's size fits into their total capacity, deeper levels are examined: as
// long as the size also fits into the total capacity of all their
// descendants at the next level, the flatten level advances. The result is
// the deepest level whose aggregate still holds the working set, plus one
// (capped at the leaf level): everything below the level that holds the
// working set is flattened, because single-level ADWS already exploits the
// hierarchy well when the footprint fits in aggregate cache (§5).
//
// It returns the level to flatten to and the flattened caches, or
// (level, nil) when no flattening applies and TG should continue to be
// scheduled at the current level.
func FlattenLevel(m *topology.Machine, size int64, level, i, j int) (int, []*topology.Cache) {
	if level >= m.MaxLevel() {
		return level, nil
	}
	hi := j - 1
	if hi < i {
		hi = i
	}
	row := m.LevelCaches(level)
	if i < 0 || hi >= len(row) {
		return level, nil
	}
	caches := row[i : hi+1]
	if size > topology.TotalCapacity(caches) {
		return level, nil
	}
	return FlattenOverCaches(m, size, level, caches)
}

// FlattenOverCaches is the core of FlattenLevel for an explicit candidate
// cache set (used by schedulers whose instances wrap cyclically and cannot
// express the span as a contiguous index range). The candidates must all
// be at the given level and must already hold `size` in total; otherwise
// no flattening applies.
func FlattenOverCaches(m *topology.Machine, size int64, level int, caches []*topology.Cache) (int, []*topology.Cache) {
	if len(caches) == 0 || size > topology.TotalCapacity(caches) {
		return level, nil
	}
	lnext := level
	for lnext < m.MaxLevel() && size <= topology.TotalCapacity(caches) {
		lnext++
		var next []*topology.Cache
		for _, c := range caches {
			next = append(next, topology.Descendants(c, lnext)...)
		}
		caches = next
	}
	if lnext == level {
		return level, nil
	}
	return lnext, caches
}
