package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseText is a strict parser for the Prometheus text exposition format
// (0.0.4) subset this repo emits. It exists so tests can validate /metrics
// at the format level instead of by substring: every sample must belong to
// a family whose # TYPE header appeared first, families may not be
// reopened, histogram bucket series must be cumulative with a +Inf bucket
// matching _count, and no series (name + label set) may repeat.
//
// It is a test/tooling aid, not a scrape client — it rejects anything it
// does not understand rather than skipping it.
func ParseText(text string) ([]Family, error) {
	p := &parser{families: map[string]*Family{}}
	for ln, line := range strings.Split(text, "\n") {
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w (%q)", ln+1, err, line)
		}
	}
	out := make([]Family, len(p.order))
	for i, f := range p.order {
		if err := f.validate(); err != nil {
			return nil, fmt.Errorf("family %s: %w", f.Name, err)
		}
		out[i] = *f
	}
	return out, nil
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Sample is one parsed sample line. Name includes any _bucket/_sum/_count
// suffix; Labels is nil when the line had no label set.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Sample returns the family's single unsuffixed, unlabeled sample value,
// for counter/gauge assertions in tests.
func (f Family) Sample() (float64, bool) {
	for _, s := range f.Samples {
		if s.Name == f.Name && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

type parser struct {
	families map[string]*Family
	order    []*Family
	// cur is the family opened by the most recent # TYPE line; samples
	// must follow their TYPE header contiguously.
	cur string
	// pendingHelp holds a # HELP seen before its # TYPE.
	pendingHelp map[string]string
	seen        map[string]bool
}

func (p *parser) line(line string) error {
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "# HELP ") {
		rest := strings.TrimPrefix(line, "# HELP ")
		name, help, _ := strings.Cut(rest, " ")
		if !validName(name) {
			return fmt.Errorf("invalid metric name in HELP")
		}
		if p.pendingHelp == nil {
			p.pendingHelp = map[string]string{}
		}
		p.pendingHelp[name] = help
		return nil
	}
	if strings.HasPrefix(line, "# TYPE ") {
		fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
		if len(fields) != 2 {
			return fmt.Errorf("malformed TYPE line")
		}
		name, typ := fields[0], fields[1]
		if !validName(name) {
			return fmt.Errorf("invalid metric name in TYPE")
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q", typ)
		}
		if p.families[name] != nil {
			return fmt.Errorf("family %s reopened", name)
		}
		f := &Family{Name: name, Type: typ, Help: p.pendingHelp[name]}
		p.families[name] = f
		p.order = append(p.order, f)
		p.cur = name
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return nil // other comments are legal and ignored
	}
	return p.sample(line)
}

func (p *parser) sample(line string) error {
	s, err := parseSample(line)
	if err != nil {
		return err
	}
	fam := familyOf(s.Name, p.families)
	if fam == nil {
		return fmt.Errorf("sample %s has no preceding TYPE header", s.Name)
	}
	if fam.Name != p.cur {
		return fmt.Errorf("sample %s is separated from its TYPE header", s.Name)
	}
	if fam.Type == "histogram" {
		switch s.Name {
		case fam.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("histogram bucket without le label")
			}
		case fam.Name + "_sum", fam.Name + "_count":
		default:
			return fmt.Errorf("unexpected histogram sample %s", s.Name)
		}
	} else if s.Name != fam.Name {
		return fmt.Errorf("suffixed sample %s on %s family", s.Name, fam.Type)
	}
	key := seriesKey(s)
	if p.seen == nil {
		p.seen = map[string]bool{}
	}
	if p.seen[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	p.seen[key] = true
	fam.Samples = append(fam.Samples, s)
	return nil
}

// familyOf resolves a sample name to its family, accounting for
// histogram suffixes. Longest match wins so a literal metric named
// x_bucket is preferred over histogram x.
func familyOf(name string, fams map[string]*Family) *Family {
	if f := fams[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[base]; f != nil && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample line")
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if j := strings.IndexByte(valStr, ' '); j >= 0 {
		// A trailing field would be a timestamp; this repo never emits
		// them, so treat one as an error.
		return s, fmt.Errorf("unexpected trailing field %q", valStr[j+1:])
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := s[:eq]
		if !validName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %s", name)
		}
		val, rest, err := parseQuoted(s)
		if err != nil {
			return nil, err
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val
		s = strings.TrimPrefix(rest, ",")
	}
	return out, nil
}

// parseQuoted consumes a leading double-quoted string with \", \\ and \n
// escapes, returning the unescaped value and the remainder.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("truncated escape")
			}
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// histGroup collects one label-set's slice of a histogram family: a
// labeled family (HistogramVec) renders one complete
// _bucket/_sum/_count group per partition-label value, each of which
// must independently satisfy the histogram invariants.
type histGroup struct {
	key     string
	buckets []Sample
	sum     *Sample
	count   *Sample
}

// validate enforces per-family invariants after parsing.
func (f *Family) validate() error {
	if f.Type != "histogram" {
		return nil
	}
	groups := map[string]*histGroup{}
	var order []*histGroup
	group := func(s *Sample) *histGroup {
		key := groupKey(*s)
		g := groups[key]
		if g == nil {
			g = &histGroup{key: key}
			groups[key] = g
			order = append(order, g)
		}
		return g
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			g := group(s)
			g.buckets = append(g.buckets, *s)
		case f.Name + "_sum":
			group(s).sum = s
		case f.Name + "_count":
			group(s).count = s
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("no samples")
	}
	for _, g := range order {
		if err := g.validate(); err != nil {
			if g.key != "" {
				return fmt.Errorf("{%s}: %w", g.key, err)
			}
			return err
		}
	}
	return nil
}

func (g *histGroup) validate() error {
	if g.sum == nil || g.count == nil {
		return fmt.Errorf("missing _sum or _count")
	}
	if len(g.buckets) == 0 {
		return fmt.Errorf("no _bucket samples")
	}
	les := make([]float64, len(g.buckets))
	for i, b := range g.buckets {
		le, err := parseValue(b.Labels["le"])
		if err != nil {
			return fmt.Errorf("bad le %q: %w", b.Labels["le"], err)
		}
		les[i] = le
	}
	if !sort.Float64sAreSorted(les) {
		return fmt.Errorf("le boundaries not sorted")
	}
	for i := 1; i < len(g.buckets); i++ {
		if g.buckets[i].Value < g.buckets[i-1].Value {
			return fmt.Errorf("bucket counts not cumulative at le=%s", g.buckets[i].Labels["le"])
		}
	}
	last := g.buckets[len(g.buckets)-1]
	if !math.IsInf(les[len(les)-1], 1) {
		return fmt.Errorf("missing le=\"+Inf\" bucket")
	}
	if last.Value != g.count.Value {
		return fmt.Errorf("+Inf bucket %g != _count %g", last.Value, g.count.Value)
	}
	return nil
}

// groupKey renders a sample's label set with le excluded, sorted —
// the identity of the labeled histogram group the sample belongs to.
// Unlabeled samples group under "".
func groupKey(s Sample) string {
	if len(s.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, s.Labels[k])
	}
	return strings.Join(parts, ",")
}

func seriesKey(s Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
