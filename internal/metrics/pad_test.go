package metrics

import (
	"testing"
	"unsafe"
)

// The padded cell and histogram shard must each span a whole number of
// cache lines so adjacent counters and adjacent per-worker shards never
// false-share. adwsvet's atomicpad analyzer enforces the //adws:padded
// annotations; these assertions pin the concrete layout so a field
// reorder that changes the sizes fails loudly.

func TestPaddedCellLayout(t *testing.T) {
	if s := unsafe.Sizeof(padded{}); s != 64 {
		t.Fatalf("padded cell is %d bytes, want exactly one 64-byte line", s)
	}
	if o := unsafe.Offsetof(Counter{}.cell); o != 0 {
		t.Fatalf("Counter.cell at offset %d, want 0 (must start a cache line)", o)
	}
	if o := unsafe.Offsetof(Gauge{}.cell); o != 0 {
		t.Fatalf("Gauge.cell at offset %d, want 0 (must start a cache line)", o)
	}
}

func TestHistShardLayout(t *testing.T) {
	s := unsafe.Sizeof(histShard{})
	if s%64 != 0 {
		t.Fatalf("histShard is %d bytes, not a multiple of 64", s)
	}
	// 257 8-byte buckets + sum + max + 40 pad = 2112 bytes = 33 lines.
	if want := uintptr(NumBuckets*8+16+40) / 64 * 64; s != want {
		t.Fatalf("histShard is %d bytes, want %d", s, want)
	}
	var h histShard
	if o := unsafe.Offsetof(h.sum); o != uintptr(NumBuckets)*8 {
		t.Fatalf("histShard.sum at offset %d, want %d", o, NumBuckets*8)
	}
}
