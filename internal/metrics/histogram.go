package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear bucket layout.
//
// A recorded value (an int64, by convention nanoseconds) lands in one of
// NumBuckets buckets: a linear region below 2^minShift, then sub linear
// sub-buckets per power-of-two octave up to 2^maxShift, then one overflow
// bucket. Within an octave every bucket has width 2^(octave-subShift), so
// the relative quantile error from bucketing is bounded by 1/sub (12.5%);
// the linear region bounds the absolute error by its bucket width instead
// (64ns). The layout is fixed at compile time so shards are plain arrays
// and recording is branch-light index arithmetic.
const (
	subShift = 3
	// sub is the number of linear sub-buckets per octave.
	sub = 1 << subShift
	// minShift bounds the linear region: values below 2^minShift (512ns)
	// use sub buckets of width 2^(minShift-subShift) (64ns).
	minShift = 9
	// maxShift bounds the log-linear region: values at or above 2^maxShift
	// (~18 minutes in nanoseconds) share the overflow bucket, whose upper
	// edge is reported from the exact tracked maximum.
	maxShift = 40
	// NumBuckets is the total bucket count of every histogram.
	NumBuckets = sub + (maxShift-minShift)*sub + 1
)

// bucketOf maps a recorded value to its bucket index.
//
//adws:hotpath
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<minShift {
		return int(v >> (minShift - subShift))
	}
	o := 63 - bits.LeadingZeros64(uint64(v))
	if o >= maxShift {
		return NumBuckets - 1
	}
	s := int(uint64(v)>>(uint(o)-subShift)) & (sub - 1)
	return sub + (o-minShift)*sub + s
}

// BucketUpper returns the exclusive upper edge of bucket i in recorded
// units (+Inf for the overflow bucket). Edges are monotonically
// increasing and bucket i covers [BucketUpper(i-1), BucketUpper(i)).
func BucketUpper(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	if i < sub {
		return float64(int64(i+1) << (minShift - subShift))
	}
	i -= sub
	o := minShift + i/sub
	s := i % sub
	return float64(int64(1)<<o + int64(s+1)<<(o-subShift))
}

// histShard is one recorder's slice of a histogram. Each shard owns whole
// cache lines (layout pinned by pad_test.go) so concurrent recorders on
// different shards never false-share; within a shard only atomic adds and
// a CAS max race, which is safe from any number of goroutines.
//
//adws:padded
type histShard struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	_      [40]byte
}

// record is the lock-free, allocation-free recording fast path.
//
//adws:hotpath
func (s *histShard) record(v int64) {
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Histogram is a sharded log-linear latency histogram. Recording takes no
// locks and allocates nothing: one atomic bucket increment, one atomic sum
// add, and a CAS-max. Callers that own a natural shard index (a worker ID)
// use Record for fully uncontended recording; callers without one use
// RecordAny, which rotates shards with one extra atomic add.
type Histogram struct {
	name, help string
	rr         atomic.Uint64
	shards     []histShard
}

// NewStandaloneHistogram returns an unregistered, unnamed histogram, for
// tooling that wants the bucket layout and quantile machinery without a
// registry (e.g. adwsbench summarizing simulated task spans).
func NewStandaloneHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	return &Histogram{shards: make([]histShard, shards)}
}

// Name returns the histogram's registered metric name.
func (h *Histogram) Name() string { return h.name }

// Shards returns the number of recorder shards (valid Record indices are
// [0, Shards())).
func (h *Histogram) Shards() int { return len(h.shards) }

// Record adds v (by convention nanoseconds) to the given shard.
// Concurrent calls are safe on any shards, including the same one.
//
//adws:hotpath
func (h *Histogram) Record(shard int, v int64) {
	h.shards[shard].record(v)
}

// RecordAny adds v to a rotating shard, for recorders with no natural
// shard index of their own.
//
//adws:hotpath
func (h *Histogram) RecordAny(v int64) {
	h.shards[h.rr.Add(1)%uint64(len(h.shards))].record(v)
}

// Snapshot is a merged point-in-time view of a histogram. Bucket counts
// are monotonic: a snapshot taken under concurrent recording may be
// mid-update (Count can trail Sum's adds by a few records), but no bucket
// or cumulative count ever decreases between successive snapshots.
type Snapshot struct {
	Counts [NumBuckets]int64
	Count  int64
	Sum    int64
	Max    int64
}

// Snapshot merges all shards. Safe to call while recorders run.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			if n := sh.counts[b].Load(); n != 0 {
				s.Counts[b] += n
				s.Count += n
			}
		}
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Quantile returns an upper estimate of the q-quantile (0 ≤ q ≤ 1) in
// recorded units: the upper edge of the bucket holding the rank-⌈q·n⌉
// value, clamped to the exact tracked maximum. The estimate never
// undershoots the true quantile and overshoots by at most 1/8 relative
// (octave region) or 64 units absolute (linear region). Returns 0 on an
// empty snapshot.
func (s *Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, n := range s.Counts {
		cum += n
		if cum >= rank {
			u := BucketUpper(i)
			if fm := float64(s.Max); u > fm {
				u = fm
			}
			return u
		}
	}
	return float64(s.Max)
}
