// Package metrics is the repo's stdlib-only metrics subsystem: padded
// atomic counters and gauges, log-linear latency histograms with
// per-worker shards, and a Registry that renders Prometheus text
// exposition (format 0.0.4) with full _bucket/_sum/_count series.
//
// The recording paths — Counter.Inc/Add, Gauge.Set, Histogram.Record —
// take no locks and allocate nothing, and are sanctioned on
// //adws:hotpath functions (adwsvet's hotpath analyzer verifies they stay
// atomic-only). The wiring contract matches the tracer's: a nil *Metrics
// struct in runtime/server config costs one pointer check per site.
// Rendering (WriteText) is the slow path and may take locks.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// padded is an atomic counter cell owning a whole cache line, so adjacent
// registered counters never false-share (layout enforced by adwsvet's
// atomicpad analyzer and pinned by pad_test.go).
//
//adws:padded
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing padded atomic counter.
type Counter struct {
	cell       padded //adws:padded
	name, help string
}

// Inc adds one.
//
//adws:hotpath
func (c *Counter) Inc() { c.cell.v.Add(1) }

// Add adds n (which must be non-negative to keep the counter monotonic).
//
//adws:hotpath
func (c *Counter) Add(n int64) { c.cell.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.cell.v.Load() }

// Gauge is a settable padded atomic gauge holding a float64.
type Gauge struct {
	cell       padded //adws:padded
	name, help string
}

// Set stores v.
//
//adws:hotpath
func (g *Gauge) Set(v float64) { g.cell.v.Store(int64(math.Float64bits(v))) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(uint64(g.cell.v.Load())) }

// Labeled is one sample of a single-label counter family rendered by
// CounterVecFunc.
type Labeled struct {
	Label string
	Value float64
}

// Label is one name/value pair of a MultiLabeled sample.
type Label struct {
	Name, Value string
}

// MultiLabeled is one sample of a multi-label Func family rendered by
// CounterMultiFunc or GaugeMultiFunc. Labels are rendered in order.
type MultiLabeled struct {
	Labels []Label
	Value  float64
}

// vecHist is one member of a labeled histogram family: the histogram
// recording samples for one value of the family's partition label.
type vecHist struct {
	value string
	hist  *Histogram
}

// entry is one registered family, rendered in registration order.
type entry struct {
	name, help string
	// typ is the Prometheus TYPE: "counter", "gauge", or "histogram".
	typ string
	// Exactly one of the following is set.
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	histVec     []vecHist
	counterFn   func() float64
	gaugeFn     func() float64
	vecLabel    string
	counterVecF func() []Labeled
	multiF      func() []MultiLabeled
}

// Registry holds registered metric families and renders them as
// Prometheus text exposition. Registration is not thread-safe and must
// finish before the first WriteText; recording and rendering after that
// are safe concurrently.
type Registry struct {
	entries  []entry
	byName   map[string]*Histogram
	onRender []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Histogram)}
}

func (r *Registry) register(e entry) {
	if !validName(e.name) {
		panic("metrics: invalid metric name " + strconv.Quote(e.name))
	}
	for i := range r.entries {
		if r.entries[i].name == e.name {
			panic("metrics: duplicate metric name " + e.name)
		}
	}
	r.entries = append(r.entries, e)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(entry{name: name, help: help, typ: "counter", counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(entry{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// Histogram registers and returns a histogram with the given shard count
// (clamped to at least 1). Callers with per-worker recorders pass the
// worker count and use Record(worker, v); others pass a small count and
// use RecordAny.
func (r *Registry) Histogram(name, help string, shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	h := &Histogram{name: name, help: help, shards: make([]histShard, shards)}
	r.register(entry{name: name, help: help, typ: "histogram", hist: h})
	r.byName[name] = h
	return h
}

// HistogramVec registers a histogram family partitioned by one label: one
// independent sharded histogram per label value, rendered as a single
// family whose _bucket/_sum/_count series all carry the label. The
// returned map is keyed by label value; callers record into the member
// for the value they observed (e.g. a job's priority class). Values must
// be non-empty and unique; the label set is fixed at registration, like
// every other family.
func (r *Registry) HistogramVec(name, help, label string, values []string, shards int) map[string]*Histogram {
	if len(values) == 0 {
		panic("metrics: HistogramVec " + name + " needs at least one label value")
	}
	if shards < 1 {
		shards = 1
	}
	vec := make([]vecHist, 0, len(values))
	out := make(map[string]*Histogram, len(values))
	for _, v := range values {
		if v == "" {
			panic("metrics: HistogramVec " + name + " has an empty label value")
		}
		if _, dup := out[v]; dup {
			panic("metrics: HistogramVec " + name + " repeats label value " + strconv.Quote(v))
		}
		h := &Histogram{name: name, help: help, shards: make([]histShard, shards)}
		vec = append(vec, vecHist{value: v, hist: h})
		out[v] = h
	}
	r.register(entry{name: name, help: help, typ: "histogram", vecLabel: label, histVec: vec})
	return out
}

// CounterFunc registers a counter family whose value is read from fn at
// render time. Use for values maintained elsewhere (runtime Stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(entry{name: name, help: help, typ: "counter", counterFn: fn})
}

// GaugeFunc registers a gauge family read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(entry{name: name, help: help, typ: "gauge", gaugeFn: fn})
}

// CounterVecFunc registers a single-label counter family whose samples
// are read from fn at render time (e.g. per-worker totals).
func (r *Registry) CounterVecFunc(name, help, label string, fn func() []Labeled) {
	r.register(entry{name: name, help: help, typ: "counter", vecLabel: label, counterVecF: fn})
}

// CounterMultiFunc registers a multi-label counter family whose samples
// are read from fn at render time (e.g. per-pool, per-verdict routing
// totals). Every sample must carry the same label names; label values
// must make each sample's series unique.
func (r *Registry) CounterMultiFunc(name, help string, fn func() []MultiLabeled) {
	r.register(entry{name: name, help: help, typ: "counter", multiF: fn})
}

// GaugeMultiFunc is CounterMultiFunc's gauge twin.
func (r *Registry) GaugeMultiFunc(name, help string, fn func() []MultiLabeled) {
	r.register(entry{name: name, help: help, typ: "gauge", multiF: fn})
}

// OnRender registers fn to run at the start of every WriteText, before
// any Func metric is read. Use it to take one coherent snapshot that
// several Func metrics then share (e.g. a single InFlight() read feeding
// both the queued and running gauges).
func (r *Registry) OnRender(fn func()) {
	r.onRender = append(r.onRender, fn)
}

// FindHistogram returns the registered histogram with the given name, or
// nil.
func (r *Registry) FindHistogram(name string) *Histogram { return r.byName[name] }

// WriteText renders every registered family as Prometheus text
// exposition format 0.0.4. Histogram sample values are converted from
// recorded nanoseconds to seconds. Safe to call while recorders run.
func (r *Registry) WriteText(w io.Writer) error {
	for _, fn := range r.onRender {
		fn()
	}
	var b strings.Builder
	for i := range r.entries {
		e := &r.entries[i]
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.typ)
		switch {
		case e.counter != nil:
			fmt.Fprintf(&b, "%s %s\n", e.name, formatValue(float64(e.counter.Value())))
		case e.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", e.name, formatValue(e.gauge.Value()))
		case e.counterFn != nil:
			fmt.Fprintf(&b, "%s %s\n", e.name, formatValue(e.counterFn()))
		case e.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", e.name, formatValue(e.gaugeFn()))
		case e.counterVecF != nil:
			for _, s := range e.counterVecF() {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", e.name, e.vecLabel, s.Label, formatValue(s.Value))
			}
		case e.multiF != nil:
			for _, s := range e.multiF() {
				b.WriteString(e.name)
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
				}
				fmt.Fprintf(&b, "} %s\n", formatValue(s.Value))
			}
		case e.hist != nil:
			s := e.hist.Snapshot()
			writeHistogram(&b, e.name, "", s)
			writeHistogramMax(&b, e.name, nil, []Snapshot{s})
		case e.histVec != nil:
			labels := make([]string, len(e.histVec))
			snaps := make([]Snapshot, len(e.histVec))
			for i, vh := range e.histVec {
				labels[i] = fmt.Sprintf("%s=%q", e.vecLabel, vh.value)
				snaps[i] = vh.hist.Snapshot()
				writeHistogram(&b, e.name, labels[i], snaps[i])
			}
			writeHistogramMax(&b, e.name, labels, snaps)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram's cumulative _bucket series (only
// boundaries whose bucket is occupied, which is a valid subset per the
// exposition format, plus the mandatory +Inf), then _sum and _count.
// labels, when non-empty, is a rendered label list (e.g. `class="batch"`)
// prefixed to every series' label set — the labeled member of a
// HistogramVec family.
func writeHistogram(b *strings.Builder, name, labels string, s Snapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := 0; i < NumBuckets-1; i++ {
		if s.Counts[i] == 0 {
			continue
		}
		cum += s.Counts[i]
		le := formatValue(BucketUpper(i) / 1e9)
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(float64(s.Sum)/1e9))
		fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, formatValue(float64(s.Sum)/1e9))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

// writeHistogramMax renders the companion <name>_max gauge family: the
// largest value each histogram (or each labeled member) has observed, in
// seconds. Internal quantile readers already clamp the open top bucket
// to the observed maximum (Snapshot.Quantile); this family hands
// external scrapers the same bound, so a p99 estimated from the bucket
// boundaries can be clamped instead of inflated by one outlier landing
// in a wide bucket. labels is nil for a plain histogram (one unlabeled
// sample) and parallel to snaps for a vec family.
func writeHistogramMax(b *strings.Builder, name string, labels []string, snaps []Snapshot) {
	fmt.Fprintf(b, "# TYPE %s_max gauge\n", name)
	for i, s := range snaps {
		if labels == nil {
			fmt.Fprintf(b, "%s_max %s\n", name, formatValue(float64(s.Max)/1e9))
		} else {
			fmt.Fprintf(b, "%s_max{%s} %s\n", name, labels[i], formatValue(float64(s.Max)/1e9))
		}
	}
}

// formatValue renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Quantiles is a compact percentile summary of a histogram snapshot in
// seconds, as embedded in BENCH_*.json trajectory points.
type Quantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SummarizeSeconds extracts Count/p50/p90/p99/max from a snapshot,
// converting recorded nanoseconds to seconds.
func (s *Snapshot) SummarizeSeconds() Quantiles {
	return Quantiles{
		Count: s.Count,
		P50:   s.Quantile(0.50) / 1e9,
		P90:   s.Quantile(0.90) / 1e9,
		P99:   s.Quantile(0.99) / 1e9,
		Max:   float64(s.Max) / 1e9,
	}
}
