package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryWriteTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	g := r.Gauge("test_depth", "Current depth.")
	h := r.Histogram("test_latency_seconds", "Latency.", 4)
	r.CounterFunc("test_fn_total", "From a func.", func() float64 { return 7 })
	r.GaugeFunc("test_fn_gauge", "Gauge func.", func() float64 { return 2.5 })
	r.CounterVecFunc("test_worker_ops_total", "Per worker.", "worker", func() []Labeled {
		return []Labeled{{Label: "0", Value: 3}, {Label: "1", Value: 4}}
	})
	renders := 0
	r.OnRender(func() { renders++ })

	c.Add(41)
	c.Inc()
	g.Set(-1.5)
	h.Record(0, 100)        // linear region
	h.Record(1, 1_000_000)  // 1ms
	h.RecordAny(50_000_000) // 50ms

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if renders != 1 {
		t.Fatalf("OnRender ran %d times, want 1", renders)
	}
	fams, err := ParseText(b.String())
	if err != nil {
		t.Fatalf("strict parse of own output failed: %v\n%s", err, b.String())
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	if f := byName["test_ops_total"]; f.Type != "counter" {
		t.Fatalf("test_ops_total type %q", f.Type)
	} else if v, ok := f.Sample(); !ok || v != 42 {
		t.Fatalf("test_ops_total = %g, want 42", v)
	}
	if v, _ := byName["test_depth"].Sample(); v != -1.5 {
		t.Fatalf("test_depth = %g, want -1.5", v)
	}
	if v, _ := byName["test_fn_total"].Sample(); v != 7 {
		t.Fatalf("test_fn_total = %g, want 7", v)
	}
	if v, _ := byName["test_fn_gauge"].Sample(); v != 2.5 {
		t.Fatalf("test_fn_gauge = %g, want 2.5", v)
	}

	vec := byName["test_worker_ops_total"]
	if len(vec.Samples) != 2 {
		t.Fatalf("worker vec has %d samples, want 2", len(vec.Samples))
	}
	if vec.Samples[1].Labels["worker"] != "1" || vec.Samples[1].Value != 4 {
		t.Fatalf("worker vec sample = %+v", vec.Samples[1])
	}

	hist := byName["test_latency_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family type %q", hist.Type)
	}
	var count, sum float64
	infSeen := false
	for _, s := range hist.Samples {
		switch s.Name {
		case "test_latency_seconds_count":
			count = s.Value
		case "test_latency_seconds_sum":
			sum = s.Value
		case "test_latency_seconds_bucket":
			if s.Labels["le"] == "+Inf" {
				infSeen = true
			}
		}
	}
	if count != 3 || !infSeen {
		t.Fatalf("histogram count=%g infSeen=%v, want 3/true", count, infSeen)
	}
	wantSum := (100 + 1_000_000 + 50_000_000) / 1e9
	if math.Abs(sum-wantSum) > 1e-12 {
		t.Fatalf("histogram sum=%g, want %g", sum, wantSum)
	}
}

// TestHistogramVecRoundTrip pins the labeled-histogram family: each class
// renders its own complete _bucket/_sum/_count group under one TYPE
// header, and the strict parser validates each group independently.
func TestHistogramVecRoundTrip(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("test_class_seconds", "Per-class latency.", "class",
		[]string{"interactive", "batch"}, 2)
	vec["interactive"].RecordAny(1_000_000) // 1ms
	vec["interactive"].RecordAny(2_000_000) // 2ms
	vec["batch"].RecordAny(500_000_000)     // 500ms

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(b.String())
	if err != nil {
		t.Fatalf("strict parse of labeled histogram failed: %v\n%s", err, b.String())
	}
	if len(fams) != 2 || fams[0].Name != "test_class_seconds" || fams[0].Type != "histogram" {
		t.Fatalf("families = %+v", fams)
	}
	if fams[1].Name != "test_class_seconds_max" || fams[1].Type != "gauge" {
		t.Fatalf("max family = %+v", fams[1])
	}
	maxes := map[string]float64{}
	for _, s := range fams[1].Samples {
		maxes[s.Labels["class"]] = s.Value
	}
	if math.Abs(maxes["interactive"]-0.002) > 1e-12 || math.Abs(maxes["batch"]-0.5) > 1e-12 {
		t.Fatalf("per-class maxes = %v, want interactive 0.002 / batch 0.5", maxes)
	}
	counts := map[string]float64{}
	sums := map[string]float64{}
	for _, s := range fams[0].Samples {
		switch s.Name {
		case "test_class_seconds_count":
			counts[s.Labels["class"]] = s.Value
		case "test_class_seconds_sum":
			sums[s.Labels["class"]] = s.Value
		case "test_class_seconds_bucket":
			if s.Labels["class"] == "" {
				t.Fatalf("bucket sample without class label: %+v", s)
			}
		}
	}
	if counts["interactive"] != 2 || counts["batch"] != 1 {
		t.Fatalf("per-class counts = %v, want interactive 2 / batch 1", counts)
	}
	if math.Abs(sums["interactive"]-0.003) > 1e-12 || math.Abs(sums["batch"]-0.5) > 1e-12 {
		t.Fatalf("per-class sums = %v", sums)
	}
}

func TestHistogramVecPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("no values", func() {
		NewRegistry().HistogramVec("test_v_seconds", "", "class", nil, 1)
	})
	mustPanic("empty value", func() {
		NewRegistry().HistogramVec("test_v_seconds", "", "class", []string{""}, 1)
	})
	mustPanic("duplicate value", func() {
		NewRegistry().HistogramVec("test_v_seconds", "", "class", []string{"a", "a"}, 1)
	})
}

// TestParseTextLabeledHistogramRejects pins that per-group validation
// still catches broken groups inside a labeled family.
func TestParseTextLabeledHistogramRejects(t *testing.T) {
	cases := map[string]string{
		"group missing sum": "# TYPE h histogram\n" +
			`h_bucket{class="a",le="+Inf"} 1` + "\n" + `h_count{class="a"} 1` + "\n",
		"group count mismatch": "# TYPE h histogram\n" +
			`h_bucket{class="a",le="+Inf"} 1` + "\n" +
			`h_sum{class="a"} 1` + "\n" + `h_count{class="a"} 2` + "\n",
		"group non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{class="a",le="1"} 5` + "\n" + `h_bucket{class="a",le="+Inf"} 3` + "\n" +
			`h_sum{class="a"} 1` + "\n" + `h_count{class="a"} 3` + "\n",
	}
	for name, text := range cases {
		if _, err := ParseText(text); err == nil {
			t.Errorf("%s: parser accepted invalid exposition:\n%s", name, text)
		}
	}
	good := "# TYPE h histogram\n" +
		`h_bucket{class="a",le="+Inf"} 1` + "\n" +
		`h_sum{class="a"} 1` + "\n" + `h_count{class="a"} 1` + "\n" +
		`h_bucket{class="b",le="+Inf"} 9` + "\n" +
		`h_sum{class="b"} 2` + "\n" + `h_count{class="b"} 9` + "\n"
	if _, err := ParseText(good); err != nil {
		t.Errorf("parser rejected valid labeled histogram: %v", err)
	}
}

func TestRegistryEmptyHistogramParses(t *testing.T) {
	r := NewRegistry()
	r.Histogram("test_empty_seconds", "Never recorded.", 2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(b.String()); err != nil {
		t.Fatalf("empty histogram exposition rejected: %v\n%s", err, b.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_dup_total", "")
	mustPanic("duplicate", func() { r.Counter("test_dup_total", "") })
	mustPanic("invalid name", func() { r.Counter("9bad", "") })
	mustPanic("empty name", func() { r.Counter("", "") })
	mustPanic("bad rune", func() { r.Counter("has space", "") })
}

func TestFindHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h_seconds", "", 1)
	if r.FindHistogram("test_h_seconds") != h {
		t.Fatal("FindHistogram missed a registered histogram")
	}
	if r.FindHistogram("nope") != nil {
		t.Fatal("FindHistogram invented a histogram")
	}
}

// TestParseTextRejects pins the failure modes the strict parser exists to
// catch — the exposition bugs this package's registry replaced.
func TestParseTextRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "adws_x_total 3\n",
		"separated from TYPE": "# TYPE a counter\n# TYPE b counter\na 1\n",
		"family reopened":     "# TYPE a counter\na 1\n# TYPE a counter\n",
		"duplicate series":    "# TYPE a counter\na 1\na 2\n",
		"duplicate labeled series": "# TYPE a counter\n" +
			`a{w="0"} 1` + "\n" + `a{w="0"} 2` + "\n",
		"histogram without +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"histogram non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 4\n",
		"histogram missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_count 3\n",
		"unsorted le": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
		"suffixed counter sample": "# TYPE a counter\na_bucket 1\n",
		"bad value":               "# TYPE a counter\na x\n",
		"unterminated labels":     "# TYPE a counter\na{w=\"0\" 1\n",
		"bad label name":          "# TYPE a counter\na{9w=\"0\"} 1\n",
	}
	for name, text := range cases {
		if _, err := ParseText(text); err == nil {
			t.Errorf("%s: parser accepted invalid exposition:\n%s", name, text)
		}
	}
}

func TestParseTextAccepts(t *testing.T) {
	text := "# HELP a Things.\n# TYPE a counter\na 1\n" +
		"# TYPE w counter\n" + `w{worker="0"} 1` + "\n" + `w{worker="1"} 2` + "\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.001"} 2` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
		"h_sum 0.5\nh_count 3\n"
	fams, err := ParseText(text)
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if fams[0].Help != "Things." {
		t.Fatalf("help = %q", fams[0].Help)
	}
}

func TestSummarizeSeconds(t *testing.T) {
	h := &Histogram{name: "x", shards: make([]histShard, 1)}
	for i := 0; i < 100; i++ {
		h.Record(0, 1_000_000) // 1ms
	}
	q := func() Quantiles { s := h.Snapshot(); return s.SummarizeSeconds() }()
	if q.Count != 100 {
		t.Fatalf("count %d", q.Count)
	}
	if q.P50 < 0.001 || q.P50 > 0.001*1.2 {
		t.Fatalf("p50 %g out of bounds", q.P50)
	}
	if q.Max != 0.001 {
		t.Fatalf("max %g, want exactly 0.001", q.Max)
	}
}
