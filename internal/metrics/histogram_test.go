package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketLayout checks the defining property of the bucket map: every
// value lands in the bucket whose half-open interval contains it, and the
// upper edges are strictly increasing.
func TestBucketLayout(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if !(BucketUpper(i) > BucketUpper(i-1)) {
			t.Fatalf("BucketUpper not increasing at %d: %g <= %g", i, BucketUpper(i), BucketUpper(i-1))
		}
	}
	check := func(v int64) {
		b := bucketOf(v)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if float64(v) >= BucketUpper(b) {
			t.Fatalf("bucketOf(%d) = %d but value >= upper edge %g", v, b, BucketUpper(b))
		}
		if b > 0 && float64(v) < BucketUpper(b-1) {
			t.Fatalf("bucketOf(%d) = %d but value < lower edge %g", v, b, BucketUpper(b-1))
		}
	}
	// Exhaustive near every edge, plus extremes.
	for i := 0; i < NumBuckets-1; i++ {
		u := int64(BucketUpper(i))
		for _, v := range []int64{u - 1, u, u + 1} {
			if v >= 0 {
				check(v)
			}
		}
	}
	for _, v := range []int64{0, 1, 63, 64, 511, 512, 513, math.MaxInt64} {
		check(v)
	}
	if b := bucketOf(-5); b != 0 {
		t.Fatalf("negative value must clamp to bucket 0, got %d", b)
	}
	if b := bucketOf(math.MaxInt64); b != NumBuckets-1 {
		t.Fatalf("MaxInt64 must land in overflow bucket, got %d", b)
	}
}

// exactQuantile is the reference implementation: the rank-⌈q·n⌉ order
// statistic of the raw samples.
func exactQuantile(sorted []int64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return float64(sorted[rank-1])
}

// checkQuantiles records a sample set and asserts the histogram estimate
// never undershoots the exact quantile and overshoots by at most 1/8
// relative plus the 64ns linear-region bucket width.
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	h := &Histogram{name: name, shards: make([]histShard, 4)}
	for _, v := range samples {
		h.RecordAny(v)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := h.Snapshot()
	if s.Count != int64(len(samples)) {
		t.Fatalf("%s: snapshot count %d != %d recorded", name, s.Count, len(samples))
	}
	if s.Max != sorted[len(sorted)-1] {
		t.Fatalf("%s: snapshot max %d != exact %d", name, s.Max, sorted[len(sorted)-1])
	}
	for _, q := range []float64{0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0} {
		exact := exactQuantile(sorted, q)
		est := s.Quantile(q)
		if est < exact {
			t.Errorf("%s: q=%g estimate %g undershoots exact %g", name, q, est, exact)
		}
		if bound := exact*1.125 + 64; est > bound {
			t.Errorf("%s: q=%g estimate %g exceeds error bound %g (exact %g)", name, q, est, bound, exact)
		}
	}
}

func TestQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	// Bimodal: a fast mode near 800ns and a slow mode near 40ms — the
	// shape where a mean hides everything and p50 vs p99 straddle the gap.
	bimodal := make([]int64, 0, 20000)
	for i := 0; i < 18000; i++ {
		bimodal = append(bimodal, 700+rng.Int63n(200))
	}
	for i := 0; i < 2000; i++ {
		bimodal = append(bimodal, 38_000_000+rng.Int63n(4_000_000))
	}
	checkQuantiles(t, "bimodal", bimodal)

	// Heavy tail: Pareto-like, x = scale / U^(1/alpha) with alpha ~1.2,
	// spanning six orders of magnitude.
	heavy := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		heavy = append(heavy, int64(1000/math.Pow(u, 1/1.2)))
	}
	checkQuantiles(t, "heavy-tail", heavy)

	// Degenerate shapes that stress rank arithmetic.
	checkQuantiles(t, "constant", []int64{5000, 5000, 5000, 5000})
	checkQuantiles(t, "single", []int64{123456})
	checkQuantiles(t, "zeros", []int64{0, 0, 0})
}

func TestQuantileEmpty(t *testing.T) {
	var s Snapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot quantile = %g, want 0", got)
	}
}

// TestOverflowBucketUsesMax checks that a value past the log-linear range
// is reported from the exact CAS-tracked maximum, not +Inf.
func TestOverflowBucketUsesMax(t *testing.T) {
	h := &Histogram{name: "x", shards: make([]histShard, 1)}
	huge := int64(1) << 45
	h.Record(0, huge)
	s := h.Snapshot()
	if got := s.Quantile(1.0); got != float64(huge) {
		t.Fatalf("overflow quantile = %g, want %g", got, float64(huge))
	}
}

// TestShardMergeConcurrent hammers all shards from concurrent recorders
// while a reader snapshots, checking (under -race) that recording is safe
// and that successive snapshots are monotonic: no per-bucket cumulative
// count ever decreases, and Count/Sum only grow.
func TestShardMergeConcurrent(t *testing.T) {
	const (
		workers       = 8
		perWorker     = 50_000
		totalExpected = workers * perWorker
	)
	h := &Histogram{name: "x", shards: make([]histShard, workers)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				v := rng.Int63n(1 << 30)
				if w%2 == 0 {
					h.Record(w, v)
				} else {
					h.RecordAny(v)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	prev := Snapshot{}
	checkMono := func(cur Snapshot) {
		t.Helper()
		if cur.Count < prev.Count {
			t.Fatalf("snapshot count decreased: %d -> %d", prev.Count, cur.Count)
		}
		var pc, cc int64
		for i := 0; i < NumBuckets; i++ {
			pc += prev.Counts[i]
			cc += cur.Counts[i]
			if cc < pc {
				t.Fatalf("cumulative bucket %d decreased: %d -> %d", i, pc, cc)
			}
		}
		if cur.Max < prev.Max {
			t.Fatalf("max decreased: %d -> %d", prev.Max, cur.Max)
		}
		prev = cur
	}
	for {
		select {
		case <-done:
			final := h.Snapshot()
			checkMono(final)
			if final.Count != totalExpected {
				t.Fatalf("final count %d, want %d", final.Count, totalExpected)
			}
			var sum int64
			for _, n := range final.Counts {
				sum += n
			}
			if sum != totalExpected {
				t.Fatalf("bucket sum %d, want %d", sum, totalExpected)
			}
			return
		default:
			checkMono(h.Snapshot())
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{name: "x", shards: make([]histShard, 1)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(0, int64(i)%1_000_000)
	}
}

func BenchmarkHistogramRecordAny(b *testing.B) {
	h := &Histogram{name: "x", shards: make([]histShard, 8)}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			h.RecordAny(i % 1_000_000)
		}
	})
}
