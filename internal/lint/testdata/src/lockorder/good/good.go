// Package good holds lockorder-clean locking: rank-increasing nesting,
// read locks, sequential (non-nested) unranked acquisition, requires-
// seeded nesting in the right order, and a waived instance-ordered
// double acquire.
package good

import "sync"

type state struct {
	mu    sync.RWMutex //adws:lockrank(10)
	regMu sync.Mutex   //adws:lockrank(20)
}

func (s *state) update() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regMu.Lock() // ranks increase 10 -> 20
	s.regMu.Unlock()
}

func (s *state) read() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.regMu.Lock()
	s.regMu.Unlock()
}

// flushLocked runs with s.mu held; taking regMu under it still follows
// the rank order.
//
//adws:requires(mu)
func (s *state) flushLocked() {
	s.regMu.Lock()
	s.regMu.Unlock()
}

// journal's mutexes are unranked but never nested: sequential acquisition
// builds no edge.
type journal struct {
	a sync.Mutex
	b sync.Mutex
}

func (j *journal) sequential() {
	j.a.Lock()
	j.a.Unlock()
	j.b.Lock()
	j.b.Unlock()
}

// shard.mu is locked on two instances in a caller-enforced address order;
// the self-edge is waived with a justification.
type shard struct {
	mu sync.Mutex
}

func drainPair(lo, hi *shard) {
	lo.mu.Lock()
	hi.mu.Lock() //adws:allow instances ordered by caller (lo before hi)
	hi.mu.Unlock()
	lo.mu.Unlock()
}
