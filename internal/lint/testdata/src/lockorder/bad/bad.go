// Package bad exercises the lockorder analyzer: rank inversions, unranked
// nesting, graph cycles, same-identity double acquisition, edges seeded by
// //adws:requires, promoted embedded-mutex locking, and malformed ranks.
package bad

import "sync"

// ranked holds a correctly annotated pair acquired in the wrong order.
type ranked struct {
	outer sync.Mutex //adws:lockrank(10)
	inner sync.Mutex //adws:lockrank(20)
}

func inverted(r *ranked) {
	r.inner.Lock()
	defer r.inner.Unlock()
	r.outer.Lock() // want `lock order inversion: bad.ranked.outer \(rank 10\) acquired while holding bad.ranked.inner \(rank 20\)`
	r.outer.Unlock()
}

// plain nests two mutexes nobody ranked.
type plain struct {
	a sync.Mutex
	b sync.Mutex
}

func nested(p *plain) {
	p.a.Lock()
	p.b.Lock() // want `unranked lock nesting: bad.plain.b acquired while holding bad.plain.a`
	p.b.Unlock()
	p.a.Unlock()
}

// muA/muB are acquired in both orders: a cycle even though each edge is
// witnessed in a different function.
var (
	muA sync.Mutex //adws:lockrank(30)
	muB sync.Mutex //adws:lockrank(40)
)

func abOrder() {
	muA.Lock()
	muB.Lock() // want `lock-order cycle among \{bad.muA, bad.muB\}`
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock() // want `lock order inversion: bad.muA \(rank 30\) acquired while holding bad.muB \(rank 40\)`
	muA.Unlock()
	muB.Unlock()
}

// node.mu is one declared identity locked twice: a self-deadlock unless
// the instances are ordered.
type node struct {
	mu sync.Mutex
}

func link(a, b *node) {
	a.mu.Lock()
	b.mu.Lock() // want `bad.node.mu acquired while already held`
	b.mu.Unlock()
	a.mu.Unlock()
}

// reg demonstrates an inversion reached through a helper call while a
// //adws:requires fact seeds the held-set.
type reg struct {
	low  sync.Mutex //adws:lockrank(50)
	high sync.Mutex //adws:lockrank(60)
}

func (r *reg) lockLow() {
	r.low.Lock()
}

// flushLocked runs with r.high already held by the caller.
//
//adws:requires(high)
func (r *reg) flushLocked() {
	r.lockLow() // want `lock order inversion: bad.reg.low \(rank 50\) acquired while holding bad.reg.high \(rank 60\)`
	r.low.Unlock()
}

// inbox ranks its embedded mutex; router locks it through the promoted
// method after taking its own higher-ranked lock.
type inbox struct {
	sync.Mutex //adws:lockrank(70)
	items      []int
}

type router struct {
	mu sync.Mutex //adws:lockrank(80)
	in inbox
}

func (r *router) route() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.in.Lock() // want `lock order inversion: bad.router.in \(rank 70\) acquired while holding bad.router.mu \(rank 80\)`
	r.in.Unlock()
}

// badrank carries a rank that does not parse.
type badrank struct {
	mu sync.Mutex //adws:lockrank(banana) // want `malformed //adws:lockrank\(banana\)`
}

func useBadrank(b *badrank) {
	b.mu.Lock()
	b.mu.Unlock()
}
