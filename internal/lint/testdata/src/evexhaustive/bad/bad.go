// Package bad holds an EventType switch that silently ignores an event.
package bad

import "trace"

func count(events []trace.Event) (begins, ends int) {
	for _, ev := range events {
		switch ev.Type { // want `missing cases EvSteal`
		case trace.EvTaskBegin:
			begins++
		case trace.EvTaskEnd:
			ends++
		}
	}
	return
}
