// Package good holds EventType switches that satisfy the analyzer: full
// coverage, or an explicit default making partial handling deliberate.
package good

import "trace"

func full(ev trace.Event) string {
	switch ev.Type {
	case trace.EvTaskBegin:
		return "begin"
	case trace.EvTaskEnd:
		return "end"
	case trace.EvSteal:
		return "steal"
	}
	return "unknown"
}

func deliberate(ev trace.Event) bool {
	switch ev.Type {
	case trace.EvSteal:
		return true
	default:
		return false
	}
}

// notEventType must not trigger: same shape, different tag type.
func notEventType(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
