// Package good contains hot-path functions that satisfy the analyzer:
// atomics, plain arithmetic, non-fmt stdlib calls, and the one-slot
// wake-channel escape hatch.
package good

import (
	"math"
	"sync"
	"sync/atomic"
)

type w struct {
	mu     sync.Mutex
	parkCh chan struct{}
	n      atomic.Int64
}

//adws:hotpath
func (s *w) Push(v int64) {
	s.n.Add(v)
	_ = math.Ceil(float64(v))
}

//adws:hotpath
func (s *w) Wake() {
	s.parkCh <- struct{}{} //adws:allow one-slot wake semaphore
}

// park is the slow path: it may lock, but it is not annotated and no hot
// function calls it, so the analyzer never visits it.
func (s *w) park() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.parkCh
}

// shard mirrors the metrics histogram recorder: the sanctioned hot-path
// shape is atomic adds plus a CAS-max retry loop, nothing else.
type shard struct {
	counts [8]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

//adws:hotpath
func (s *shard) record(v int64) {
	s.counts[v&7].Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// recordThrough proves transitive analysis covers nested recorder calls.
//
//adws:hotpath
func (s *shard) recordThrough(v int64) {
	s.record(v)
}
