// Package bad exercises every construct the hotpath analyzer bans.
package bad

import (
	"fmt"
	"sync"
	"time"
)

type q struct {
	mu sync.Mutex
	ch chan int
	n  int
}

//adws:hotpath
func (s *q) Push(v int) {
	s.mu.Lock() // want `locks sync.Mutex`
	s.n = v
	s.mu.Unlock()
}

//adws:hotpath
func (s *q) Pop() int {
	defer func() {}() // want `defer is not allowed` `allocates a closure`
	return s.n
}

//adws:hotpath
func (s *q) Notify() {
	s.ch <- 1 // want `channel send`
}

//adws:hotpath
func (s *q) Drain() {
	<-s.ch // want `channel receive`
}

//adws:hotpath
func (s *q) Log() {
	fmt.Println(s.n) // want `calls fmt.Println` `boxes a concrete value`
}

//adws:hotpath
func (s *q) Nap() {
	time.Sleep(time.Millisecond) // want `calls time.Sleep`
}

// helper is not annotated itself; the violation is reached transitively.
func (s *q) helper() {
	s.mu.Lock() // want `locks sync.Mutex`
	s.mu.Unlock()
}

//adws:hotpath
func (s *q) Transitive() {
	s.helper()
}
