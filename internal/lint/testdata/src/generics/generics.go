// Package generics pins the loader's handling of type-parameterized
// code: cross-function instantiation must type-check under the custom
// source importer, the analyzers must resolve Origin() of instantiated
// callees, and none of them may report anything here.
package generics

import "sync/atomic"

type box[T any] struct {
	v  T
	ok atomic.Bool
}

func newBox[T any](v T) *box[T] {
	b := &box[T]{v: v}
	b.ok.Store(true)
	return b
}

func (b *box[T]) get() T { return b.v }

func mapSlice[S ~[]E, E, R any](s S, f func(E) R) []R {
	out := make([]R, 0, len(s))
	for _, e := range s {
		out = append(out, f(e))
	}
	return out
}

// Use instantiates everything above so Instances info is populated.
func Use() []int {
	b := newBox(41)
	return mapSlice([]int{b.get()}, func(v int) int { return v + 1 })
}
