// Package bad exercises every allocation the hotalloc analyzer bans on
// hot paths.
package bad

type item struct {
	next *item
	v    int
}

type q struct {
	buf   []int
	items []*item
	sink  any
}

//adws:hotpath
func (s *q) Grow(v int) {
	s.buf = append(s.buf, v) // want `append grows a field/global slice`
}

//adws:hotpath
func (s *q) Closer() func() {
	return func() {} // want `allocates a closure \(function literal\)`
}

//adws:hotpath
func (s *q) Insert(v int) {
	s.items = append(s.items, &item{v: v}) // want `append grows a field/global slice` `address of composite literal`
}

//adws:hotpath
func (s *q) Resize(n int) {
	s.buf = make([]int, n) // want `allocates with make`
}

//adws:hotpath
func (s *q) Seed() {
	s.buf = []int{1, 2, 3} // want `allocates: \[\]int literal`
}

//adws:hotpath
func (s *q) Box(v int) {
	s.sink = any(v) // want `conversion to interface`
}

func logf(args ...any) int { return len(args) }

//adws:hotpath
func (s *q) Report(n int64) int {
	return logf("worker", n) // want `argument n boxes a concrete value into any`
}

// helper is not annotated; its allocation is reached transitively.
func (s *q) helper() {
	s.buf = append(s.buf, 0) // want `append grows a field/global slice`
}

//adws:hotpath
func (s *q) Transitive() {
	s.helper()
}
