// Package good holds allocation-free hot-path idioms the hotalloc
// analyzer must accept.
package good

type ring struct {
	buf  [8]int
	head int
}

type w struct {
	r     ring
	spare []int
	out   *int
}

//adws:hotpath
func (s *w) Put(v int) {
	s.r.buf[s.r.head&7] = v // indexed write into a fixed ring: no alloc
	s.r.head++
}

//adws:hotpath
func (s *w) Header() ring {
	return ring{head: s.r.head} // value struct literal: stack-allocated
}

//adws:hotpath
func (s *w) Gather(vs []int) int {
	acc := vs
	acc = append(acc, 0) // local append: backing array does not escape
	return len(acc)
}

//adws:hotpath
func (s *w) Reserve(v int) {
	//adws:allow amortized growth: spare doubles rarely (docs/LINT.md)
	s.spare = append(s.spare, v)
}

func sink(v any) bool { return v != nil }

//adws:hotpath
func (s *w) Probe() bool {
	return sink(s.out) // *int is pointer-shaped: no boxing allocation
}

//adws:hotpath
func (s *w) Flag() bool {
	return sink("static") // constant: static interface data, no alloc
}

// Rebuild is cold-path setup; allocation here is fine.
func (s *w) Rebuild(n int) {
	s.spare = make([]int, n)
}
