// Package bad exercises the atomicpad layout violations.
package bad

import "sync/atomic"

// paddedWord is recognized by name; 8 bytes of content + 48 of padding is
// 56 bytes, not a cache line.
type paddedWord struct { // want `padded type paddedWord has size 56`
	atomic.Uint64
	_ [48]byte
}

// misaligned places the padded word after an 8-byte field.
type misaligned struct {
	seq int64
	hot paddedWord // want `padded field hot is at offset 8` `spans only 56 bytes`
}

// crowded annotates a counter that shares its line with the next field.
type crowded struct {
	count atomic.Int64 //adws:padded want `padded field count spans only 8 bytes`
	next  int64
}

// skewed has a 64-bit counter that lands on a 4-byte boundary under
// 32-bit layout rules.
type skewed struct {
	flag int32
	n    int64
}

func bump(s *skewed) {
	atomic.AddInt64(&s.n, 1) // want `64-bit atomic.AddInt64 operand is at offset 4`
}
