// Package good contains layouts that satisfy the atomicpad analyzer.
package good

import "sync/atomic"

// paddedWord fills exactly one cache line.
type paddedWord struct {
	atomic.Uint64
	_ [56]byte
}

// mask keeps each padded word on its own line; the blank padding field
// does not end the annotated field's span.
type mask struct {
	words [4]paddedWord
	hot   atomic.Int64 //adws:padded
	_     [56]byte
	cold  int64
}

// aligned keeps its 64-bit counter at offset 0, aligned on every target.
type aligned struct {
	n    int64
	flag int32
}

func bump(s *aligned) {
	atomic.AddInt64(&s.n, 1)
}
