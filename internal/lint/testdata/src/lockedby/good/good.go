// Package good accesses guarded fields with the lock held or under a
// //adws:requires contract.
package good

import "sync"

type pool struct {
	mu sync.Mutex
	// queue holds pending work.
	queue []int //adws:locked(mu)

	// state demonstrates a lock promoted through an embedded mutex.
	state struct {
		sync.Mutex
		leaders []int //adws:locked(state)
	}
}

func (p *pool) push(v int) {
	p.mu.Lock()
	p.queue = append(p.queue, v)
	p.mu.Unlock()
}

// drainLocked is called with p.mu held.
//
//adws:requires(mu)
func (p *pool) drainLocked() []int {
	q := p.queue
	p.queue = nil
	return q
}

func (p *pool) lead(id int) {
	p.state.Lock()
	p.state.leaders = append(p.state.leaders, id)
	p.state.Unlock()
}
