// Package bad accesses a guarded field without its lock.
package bad

import "sync"

type pool struct {
	mu sync.Mutex
	// queue holds pending work.
	queue []int //adws:locked(mu)
}

func (p *pool) drain() []int {
	q := p.queue  // want `guarded by "mu"`
	p.queue = nil // want `guarded by "mu"`
	return q
}
