// Package bad exercises both atomiconly rules: plain access to legacy
// atomic words and copies of typed-atomic values.
package bad

import "sync/atomic"

type counter struct {
	hits int64 // published with atomic.AddInt64; every access must be atomic
	mode int32 // plain by design: never touched by sync/atomic
}

func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

func readPlain(c *counter) int64 {
	return c.hits // want `hits is accessed with sync/atomic elsewhere`
}

func writePlain(c *counter) {
	c.hits = 0 // want `hits is accessed with sync/atomic elsewhere`
	c.mode = 1 // mode is not an atomic word: fine
}

// gen is a package-level legacy atomic word.
var gen uint64

func next() uint64 { return atomic.AddUint64(&gen, 1) }

func peek() uint64 {
	return gen // want `gen is accessed with sync/atomic elsewhere`
}

// stats is a typed-atomic container: copying it duplicates the word.
type stats struct {
	ops atomic.Int64
}

func snapshot(s *stats) int64 {
	tmp := *s // want `value of atomic-containing type`
	return tmp.ops.Load()
}

func consume(v atomic.Int64) int64 { return v.Load() }

func pass(s *stats) int64 {
	return consume(s.ops) // want `value of atomic-containing type`
}

type table struct {
	slots [4]atomic.Uint32
}

func sum(t *table) uint32 {
	var s uint32
	for _, slot := range t.slots { // want `value of atomic-containing type`
		s += slot.Load()
	}
	return s
}
