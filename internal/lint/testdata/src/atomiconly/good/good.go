// Package good holds atomiconly-clean idioms: typed atomics used through
// access paths, slice headers of atomic-containing element types, and the
// sanctioned plain accesses — constructors, //adws:plainread functions,
// and //adws:plainread lines.
package good

import "sync/atomic"

type counter struct {
	hits atomic.Int64
	mask uint64 // plain by design: never touched by sync/atomic
}

// newCounter is a constructor of counter: the value is still private, so
// plain initialization needs no escape hatch.
func newCounter(mask uint64) *counter {
	c := &counter{}
	c.mask = mask
	c.hits.Store(0)
	return c
}

func bump(c *counter) { c.hits.Add(1) }

type hist struct {
	shards []counter
}

func newHist(n int) *hist {
	return &hist{shards: make([]counter, n)}
}

func (h *hist) add(i int) {
	h.shards[i%len(h.shards)].hits.Add(1) // index path: no copy
}

func (h *hist) total() int64 {
	var sum int64
	for i := range h.shards { // index-only range: no copy
		sum += h.shards[i].hits.Load()
	}
	return sum
}

// gen is a legacy atomic word with constructor-adjacent plain access.
var gen uint64

func next() uint64 { return atomic.AddUint64(&gen, 1) }

// resetGen is a single-owner reinitializer: it runs before any goroutine
// that could observe gen starts, so plain stores cannot race.
//
//adws:plainread single-owner reset; runs before workers start
func resetGen() {
	gen = 0
}

func genEstimate() uint64 {
	return gen //adws:plainread monotonic progress gauge; torn reads acceptable
}
