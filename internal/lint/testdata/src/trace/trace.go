// Package trace is a miniature stand-in for the real internal/trace: the
// evexhaustive analyzer matches switches by the EventType type name and
// the trace package name, so the harness exercises it without importing
// the real runtime.
package trace

// EventType identifies one kind of scheduler event.
type EventType uint8

const (
	EvTaskBegin EventType = iota
	EvTaskEnd
	EvSteal

	numEventTypes = iota // untyped: must not count toward exhaustiveness
)

// Event is one event record.
type Event struct {
	Type EventType
}
