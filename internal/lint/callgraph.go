package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The transitive analyzers (hotpath, hotalloc) share one call-graph
// walker: starting from every function carrying a root directive
// (//adws:hotpath), they inspect the function body and every module-local
// function it can statically reach, attributing violations found in
// callees back to the annotated root through a call chain.
//
// Limits (shared by both analyzers): calls through interfaces, function
// values, and closures are not followed; only statically resolved calls
// to module functions are. Function-literal bodies are not descended
// into — a closure is a value, not necessarily executed on the hot path
// (hotalloc instead flags the literal itself, because building it is
// what allocates).

// violation is one banned construct found in, or reachable from, a
// checked function.
type violation struct {
	pos   token.Pos
	what  string
	chain []string // callee names from the root down to the violation
}

// localCheck inspects one AST node in the context of its package and
// returns the node's own violations plus whether the walk should descend
// into the node's children.
type localCheck func(p *Package, n ast.Node) (vs []violation, descend bool)

// bodyWalker memoizes, per function, the violations found in the
// function body or in any statically reachable module-local callee.
type bodyWalker struct {
	u        *Universe
	local    localCheck
	checked  map[*types.Func][]violation
	visiting map[*types.Func]bool
}

func newBodyWalker(u *Universe, local localCheck) *bodyWalker {
	u.buildFuncIndex()
	return &bodyWalker{
		u:        u,
		local:    local,
		checked:  make(map[*types.Func][]violation),
		visiting: make(map[*types.Func]bool),
	}
}

// check returns the violations in or reachable from fn, memoized per
// function (resolving generic instantiations to their origin).
func (w *bodyWalker) check(fn *types.Func) []violation {
	fn = fn.Origin()
	if vs, ok := w.checked[fn]; ok {
		return vs
	}
	if w.visiting[fn] { // recursion cycle: already accounted for
		return nil
	}
	fd := w.u.lookupFunc(fn)
	if fd == nil || fd.decl.Body == nil {
		return nil // outside the module or a bodyless (assembly) stub
	}
	w.visiting[fn] = true
	var out []violation
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		vs, descend := w.local(fd.pkg, n)
		out = append(out, vs...)
		if call, ok := n.(*ast.CallExpr); ok && descend {
			if callee := calleeOf(fd.pkg.Info, call); callee != nil && w.u.lookupFunc(callee) != nil {
				for _, v := range w.check(callee) {
					out = append(out, violation{pos: v.pos, what: v.what,
						chain: append([]string{funcDisplayName(callee)}, v.chain...)})
				}
			}
		}
		return descend
	})
	delete(w.visiting, fn)
	w.checked[fn] = out
	return out
}

// runTransitive drives a bodyWalker from every target function annotated
// //adws:<rootDirective> and renders its violations as diagnostics for
// the named analyzer, deduplicating sites reachable from several roots.
func runTransitive(u *Universe, analyzer, rootDirective string, w *bodyWalker) []Diagnostic {
	reported := make(map[token.Pos]bool)
	var diags []Diagnostic
	for _, p := range u.Targets {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective(rootDirective, fd.Doc) {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				for _, v := range w.check(fn) {
					if reported[v.pos] {
						continue
					}
					reported[v.pos] = true
					msg := v.what
					if len(v.chain) > 0 {
						msg = fmt.Sprintf("%s (reached via %s)", v.what,
							strings.Join(append([]string{funcDisplayName(fn)}, v.chain...), " -> "))
					}
					diags = append(diags, Diagnostic{
						Pos:      u.position(v.pos),
						Analyzer: analyzer,
						Message:  fmt.Sprintf("hot path %s: %s", funcDisplayName(fn), msg),
					})
				}
			}
		}
	}
	return diags
}
