package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// lockedbyAnalyzer enforces lock-discipline annotations: a struct field
// annotated //adws:locked(mu) may only be read or written inside a
// function that either contains a call of the form <...>.mu.Lock() /
// mu.Lock() (RLock counts), or is annotated //adws:requires(mu) — the
// contract that its caller already holds the lock (the repo convention
// for such helpers is a *Locked name suffix).
//
// The lock name is matched textually against the final selector of the
// Lock call's receiver, so it can name a sibling field (rootMu for
// rootQ), a promoted embedded mutex (ml for the ml struct's embedded
// sync.Mutex), or a lock owned by an enclosing struct. This is a
// heuristic, not an alias analysis: it verifies the discipline is written
// down, not that the right instance is locked.
var lockedbyAnalyzer = &Analyzer{
	Name: "lockedby",
	Doc:  "//adws:locked(mu) fields are only accessed under mu or in //adws:requires(mu) functions",
	Run:  runLockedby,
}

func runLockedby(u *Universe) []Diagnostic {
	// Pass 1: collect annotated field objects, module-wide (a field
	// declared in one target package may be accessed from another).
	guarded := make(map[*types.Var]string)
	for _, p := range u.Module {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					args := directiveArgs("locked", field.Doc, field.Comment)
					if len(args) == 0 || args[0] == "" {
						continue
					}
					for _, name := range field.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok {
							guarded[v] = args[0]
						}
					}
				}
				return true
			})
		}
	}
	if len(guarded) == 0 {
		return nil
	}

	// Pass 2: check every access site in the target packages.
	var diags []Diagnostic
	for _, p := range u.Targets {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, checkFuncLocking(u, p, fd, guarded)...)
			}
		}
	}
	return diags
}

// checkFuncLocking reports guarded-field accesses in fd that are covered
// neither by a Lock call on the named lock nor by //adws:requires.
func checkFuncLocking(u *Universe, p *Package, fd *ast.FuncDecl, guarded map[*types.Var]string) []Diagnostic {
	satisfied := make(map[string]bool)
	for _, arg := range directiveArgs("requires", fd.Doc) {
		if arg != "" {
			satisfied[arg] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if name := finalSelectorName(sel.X); name != "" {
			satisfied[name] = true
		}
		return true
	})

	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		lock, ok := guarded[v]
		if !ok || satisfied[lock] {
			return true
		}
		fname := fd.Name.Name
		if fd.Recv != nil {
			fname = recvDisplayName(fd) + "." + fname
		}
		diags = append(diags, Diagnostic{
			Pos:      u.position(sel.Sel.Pos()),
			Analyzer: "lockedby",
			Message: fmt.Sprintf("field %s is guarded by %q, but %s neither locks %s nor is annotated //adws:requires(%s)",
				v.Name(), lock, fname, lock, lock),
		})
		return true
	})
	return diags
}

// finalSelectorName returns the last identifier of a selector chain
// (rootMu for p.rootMu, mu for e.mu, x for plain x), or "".
func finalSelectorName(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// recvDisplayName names fd's receiver type for messages.
func recvDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
