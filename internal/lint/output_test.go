package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join("/mod", "internal", "runtime", "park.go"), Line: 42, Column: 7},
			Analyzer: "hotpath",
			Message:  "hot path runtime.park: channel send",
		},
		{
			Pos:      token.Position{Filename: filepath.Join("/mod", "internal", "deque", "deque.go"), Line: 19, Column: 9},
			Analyzer: "hotalloc",
			Message:  "hot path deque.PushBottom: allocates with make",
		},
		{
			Pos:      token.Position{Filename: filepath.Join("/elsewhere", "x.go"), Line: 3, Column: 1},
			Analyzer: "lockorder",
			Message:  "unranked lock nesting: a acquired while holding b",
		},
	}
}

// TestWriteJSON pins the JSON contract: module-relative slash paths,
// absolute fallback outside the tree, all fields populated.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var got []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3", len(got))
	}
	if got[0].File != "internal/runtime/park.go" || got[0].Line != 42 || got[0].Column != 7 {
		t.Errorf("entry 0 = %+v, want relative path internal/runtime/park.go:42:7", got[0])
	}
	if got[2].File != "/elsewhere/x.go" {
		t.Errorf("out-of-tree file = %q, want absolute /elsewhere/x.go", got[2].File)
	}
	if got[1].Analyzer != "hotalloc" || !strings.Contains(got[1].Message, "allocates with make") {
		t.Errorf("entry 1 = %+v", got[1])
	}
}

// TestWriteSARIF validates the emitted log against the SARIF 2.1.0 shape:
// schema/version header, a rule table covering the full suite, results
// referencing rules by id and index, and SRCROOT-anchored locations.
func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			OriginalURIBaseIDs map[string]struct {
				URI string `json:"uri"`
			} `json:"originalUriBaseIds"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("header = version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "adwsvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(Analyzers()); got != want {
		t.Errorf("rule table has %d rules, want %d (full suite)", got, want)
	}
	ruleAt := make(map[int]string)
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %d incomplete: %+v", i, r)
		}
		ruleAt[i] = r.ID
	}
	if base, ok := run.OriginalURIBaseIDs["SRCROOT"]; !ok {
		t.Error("missing SRCROOT in originalUriBaseIds")
	} else if !strings.HasPrefix(base.URI, "file://") || !strings.HasSuffix(base.URI, "/") {
		t.Errorf("SRCROOT uri = %q, want file:// URI with trailing slash", base.URI)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	for i, r := range run.Results {
		if r.Level != "error" || r.Message.Text == "" {
			t.Errorf("result %d: level %q message %q", i, r.Level, r.Message.Text)
		}
		if ruleAt[r.RuleIndex] != r.RuleID {
			t.Errorf("result %d: ruleIndex %d resolves to %q, ruleId says %q",
				i, r.RuleIndex, ruleAt[r.RuleIndex], r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d: %d locations", i, len(r.Locations))
		}
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/runtime/park.go" || loc.ArtifactLocation.URIBaseID != "SRCROOT" {
		t.Errorf("location = %+v, want SRCROOT-relative internal/runtime/park.go", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v, want 42:7", loc.Region)
	}
}

// TestBaselineRoundTrip pins the baseline workflow: write findings, read
// them back, filter — line numbers must not matter, new findings must
// survive, and the serialized form must be deterministic.
func TestBaselineRoundTrip(t *testing.T) {
	diags := sampleDiags()
	b := NewBaseline(diags, "/mod")

	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := b.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("baseline serialization is not deterministic")
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// The same findings on different lines are still baselined.
	moved := make([]Diagnostic, len(diags))
	copy(moved, diags)
	for i := range moved {
		moved[i].Pos.Line += 100
	}
	if left := rb.Filter(moved, "/mod"); len(left) != 0 {
		t.Errorf("moved findings not filtered: %v", left)
	}

	// A genuinely new finding survives the filter.
	novel := Diagnostic{
		Pos:      token.Position{Filename: filepath.Join("/mod", "internal", "server", "server.go"), Line: 8, Column: 2},
		Analyzer: "atomiconly",
		Message:  "n is accessed with sync/atomic elsewhere",
	}
	left := rb.Filter(append(moved, novel), "/mod")
	if len(left) != 1 || left[0].Analyzer != "atomiconly" {
		t.Errorf("filter kept %v, want only the novel atomiconly finding", left)
	}
}
