package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathAnalyzer enforces the low-synchronization property on the
// scheduler's hot paths: a function annotated //adws:hotpath (deque
// push/pop/steal, trace recording, the park/wake fast paths, the idle-bit
// claim path) must not — transitively, through every module-local function
// it can statically reach — lock a sync.Mutex or sync.RWMutex, perform a
// channel operation, call time.Sleep or any fmt function, or defer.
//
// Escape hatch: a channel operation on a line annotated //adws:allow (same
// line or the line directly above) is permitted; the policy reserves it
// for the one-slot wake-channel semaphore (docs/LINT.md).
//
// Limits: calls through interfaces, function values, and closures are not
// followed; only statically resolved calls to module functions are.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//adws:hotpath functions must stay lock-, channel-, fmt-, sleep- and defer-free",
	Run:  runHotpath,
}

func runHotpath(u *Universe) []Diagnostic {
	u.buildFuncIndex()
	c := &hotpathChecker{
		u:        u,
		checked:  make(map[*types.Func][]hotpathViolation),
		visiting: make(map[*types.Func]bool),
		reported: make(map[token.Pos]bool),
	}
	for _, p := range u.Targets {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective("hotpath", fd.Doc) {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				for _, v := range c.check(fn) {
					if c.reported[v.pos] {
						continue
					}
					c.reported[v.pos] = true
					msg := v.what
					if len(v.chain) > 0 {
						msg = fmt.Sprintf("%s (reached via %s)", v.what,
							strings.Join(append([]string{funcDisplayName(fn)}, v.chain...), " -> "))
					}
					c.diags = append(c.diags, Diagnostic{
						Pos:      u.position(v.pos),
						Analyzer: "hotpath",
						Message:  fmt.Sprintf("hot path %s: %s", funcDisplayName(fn), msg),
					})
				}
			}
		}
	}
	return c.diags
}

// hotpathViolation is one banned construct reachable from a hot function.
type hotpathViolation struct {
	pos   token.Pos
	what  string
	chain []string // callee names from the hot root down to the violation
}

type hotpathChecker struct {
	u        *Universe
	checked  map[*types.Func][]hotpathViolation
	visiting map[*types.Func]bool
	reported map[token.Pos]bool
	diags    []Diagnostic
}

// check returns the violations reachable from fn, memoized per function.
func (c *hotpathChecker) check(fn *types.Func) []hotpathViolation {
	fn = fn.Origin()
	if vs, ok := c.checked[fn]; ok {
		return vs
	}
	if c.visiting[fn] { // recursion cycle: already accounted for
		return nil
	}
	fd := c.u.lookupFunc(fn)
	if fd == nil || fd.decl.Body == nil {
		return nil // outside the module or a bodyless (assembly) stub
	}
	c.visiting[fn] = true
	var out []hotpathViolation
	info := fd.pkg.Info
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are values, not necessarily executed on the hot
			// path; they are not followed (see analyzer doc).
			return false
		case *ast.DeferStmt:
			out = append(out, hotpathViolation{pos: n.Pos(), what: "defer is not allowed"})
		case *ast.SendStmt:
			if !c.u.allowed(n.Pos()) {
				out = append(out, hotpathViolation{pos: n.Pos(),
					what: "channel send (use //adws:allow only for the one-slot wake channel)"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !c.u.allowed(n.Pos()) {
				out = append(out, hotpathViolation{pos: n.Pos(),
					what: "channel receive (use //adws:allow only for the one-slot wake channel)"})
			}
		case *ast.SelectStmt:
			if !c.u.allowed(n.Pos()) {
				out = append(out, hotpathViolation{pos: n.Pos(), what: "select statement"})
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && !c.u.allowed(n.Pos()) {
					out = append(out, hotpathViolation{pos: n.Pos(), what: "range over channel"})
				}
			}
		case *ast.CallExpr:
			out = append(out, c.checkCall(info, n)...)
		}
		return true
	})
	delete(c.visiting, fn)
	c.checked[fn] = out
	return out
}

// checkCall classifies one call site: banned stdlib calls report here,
// module-local callees are checked recursively.
func (c *hotpathChecker) checkCall(info *types.Info, call *ast.CallExpr) []hotpathViolation {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" && !c.u.allowed(call.Pos()) {
				return []hotpathViolation{{pos: call.Pos(), what: "close on channel"}}
			}
			return nil
		}
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	switch path := fn.Pkg().Path(); {
	case path == "time" && fn.Name() == "Sleep":
		return []hotpathViolation{{pos: call.Pos(), what: "calls time.Sleep"}}
	case path == "fmt":
		return []hotpathViolation{{pos: call.Pos(), what: "calls fmt." + fn.Name()}}
	case path == "sync":
		if recv := recvTypeName(fn); (recv == "Mutex" || recv == "RWMutex") &&
			(fn.Name() == "Lock" || fn.Name() == "RLock" || fn.Name() == "TryLock" || fn.Name() == "TryRLock") {
			return []hotpathViolation{{pos: call.Pos(),
				what: fmt.Sprintf("locks sync.%s (%s)", recv, fn.Name())}}
		}
		return nil
	}
	if c.u.lookupFunc(fn) == nil {
		return nil // other stdlib calls are fine
	}
	// Module-local callee: everything it can reach is on the hot path too.
	var out []hotpathViolation
	for _, v := range c.check(fn) {
		chain := append([]string{funcDisplayName(fn)}, v.chain...)
		out = append(out, hotpathViolation{pos: v.pos, what: v.what, chain: chain})
	}
	return out
}

// recvTypeName returns the name of fn's receiver type, "" for plain
// functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
