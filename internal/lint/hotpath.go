package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAnalyzer enforces the low-synchronization property on the
// scheduler's hot paths: a function annotated //adws:hotpath (deque
// push/pop/steal, trace recording, the park/wake fast paths, the idle-bit
// claim path) must not — transitively, through every module-local function
// it can statically reach — lock a sync.Mutex or sync.RWMutex, perform a
// channel operation, call time.Sleep or any fmt function, or defer.
//
// Escape hatch: a channel operation on a line annotated //adws:allow (same
// line or the line directly above) is permitted; the policy reserves it
// for the one-slot wake-channel semaphore (docs/LINT.md).
//
// Limits: calls through interfaces, function values, and closures are not
// followed; only statically resolved calls to module functions are.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//adws:hotpath functions must stay lock-, channel-, fmt-, sleep- and defer-free",
	Run:  runHotpath,
}

func runHotpath(u *Universe) []Diagnostic {
	w := newBodyWalker(u, func(p *Package, n ast.Node) ([]violation, bool) {
		info := p.Info
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are values, not necessarily executed on the hot
			// path; they are not followed (see analyzer doc).
			return nil, false
		case *ast.DeferStmt:
			return []violation{{pos: n.Pos(), what: "defer is not allowed"}}, true
		case *ast.SendStmt:
			if !u.allowed(n.Pos()) {
				return []violation{{pos: n.Pos(),
					what: "channel send (use //adws:allow only for the one-slot wake channel)"}}, true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !u.allowed(n.Pos()) {
				return []violation{{pos: n.Pos(),
					what: "channel receive (use //adws:allow only for the one-slot wake channel)"}}, true
			}
		case *ast.SelectStmt:
			if !u.allowed(n.Pos()) {
				return []violation{{pos: n.Pos(), what: "select statement"}}, true
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && !u.allowed(n.Pos()) {
					return []violation{{pos: n.Pos(), what: "range over channel"}}, true
				}
			}
		case *ast.CallExpr:
			return checkHotpathCall(u, info, n), true
		}
		return nil, true
	})
	return runTransitive(u, "hotpath", "hotpath", w)
}

// checkHotpathCall classifies one call site against the banned stdlib
// constructs (module-local callees are followed by the shared walker).
func checkHotpathCall(u *Universe, info *types.Info, call *ast.CallExpr) []violation {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" && !u.allowed(call.Pos()) {
				return []violation{{pos: call.Pos(), what: "close on channel"}}
			}
			return nil
		}
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	switch path := fn.Pkg().Path(); {
	case path == "time" && fn.Name() == "Sleep":
		return []violation{{pos: call.Pos(), what: "calls time.Sleep"}}
	case path == "fmt":
		return []violation{{pos: call.Pos(), what: "calls fmt." + fn.Name()}}
	case path == "sync":
		if recv := recvTypeName(fn); (recv == "Mutex" || recv == "RWMutex") &&
			(fn.Name() == "Lock" || fn.Name() == "RLock" || fn.Name() == "TryLock" || fn.Name() == "TryRLock") {
			return []violation{{pos: call.Pos(),
				what: fmt.Sprintf("locks sync.%s (%s)", recv, fn.Name())}}
		}
	}
	return nil
}

// recvTypeName returns the name of fn's receiver type, "" for plain
// functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
