package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: each case type-checks one or more testdata packages
// and runs one analyzer over them. Expectations live in the sources as
//
//	// want `regexp` `another regexp`
//
// comments: every diagnostic must be matched by a pattern on its line,
// and every pattern must match a diagnostic on its line. Packages under
// .../good/ carry no wants and must stay clean.
func TestAnalyzersGolden(t *testing.T) {
	// The hotpath and hotalloc analyzers share fixtures (both trigger on
	// //adws:hotpath roots), so their cases run both analyzers and the
	// want comments carry patterns for each.
	cases := []struct {
		name      string
		analyzers []string
		dirs      []string
	}{
		{"hotpath", []string{"hotpath", "hotalloc"}, []string{"hotpath/bad", "hotpath/good"}},
		{"atomicpad", []string{"atomicpad"}, []string{"atomicpad/bad", "atomicpad/good"}},
		{"evexhaustive", []string{"evexhaustive"}, []string{"evexhaustive/bad", "evexhaustive/good"}},
		{"lockedby", []string{"lockedby"}, []string{"lockedby/bad", "lockedby/good"}},
		{"atomiconly", []string{"atomiconly"}, []string{"atomiconly/bad", "atomiconly/good"}},
		{"lockorder", []string{"lockorder"}, []string{"lockorder/bad", "lockorder/good"}},
		{"hotalloc", []string{"hotalloc", "hotpath"}, []string{"hotalloc/bad", "hotalloc/good"}},
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var as []*Analyzer
			for _, name := range tc.analyzers {
				a := byName[name]
				if a == nil {
					t.Fatalf("unknown analyzer %q", name)
				}
				as = append(as, a)
			}
			loader := NewTestLoader(root)
			dirs := make([]string, len(tc.dirs))
			for i, d := range tc.dirs {
				dirs[i] = filepath.Join(root, filepath.FromSlash(d))
			}
			u, err := loader.LoadDirs(dirs...)
			if err != nil {
				t.Fatal(err)
			}
			diags := u.Run(as)
			checkExpectations(t, dirs, diags)
		})
	}
}

// wantRE matches a want clause; patternRE extracts its backquoted regexps.
var (
	wantRE    = regexp.MustCompile(`//.*\bwant\b((?:\s*` + "`[^`]*`" + `)+)`)
	patternRE = regexp.MustCompile("`([^`]*)`")
)

// checkExpectations cross-checks diagnostics against the // want comments
// of every Go file under dirs.
func checkExpectations(t *testing.T, dirs []string, diags []Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				k := key{file: path, line: i + 1}
				for _, p := range patternRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(p[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, p[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// TestAllAnalyzersAcrossTestdata runs the full suite over every testdata
// package at once, proving analyzers neither crash on each other's cases
// nor double-report: the union of findings must still match the wants.
func TestAllAnalyzersAcrossTestdata(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, d := range []string{
		"hotpath/bad", "hotpath/good",
		"atomicpad/bad", "atomicpad/good",
		"evexhaustive/bad", "evexhaustive/good",
		"lockedby/bad", "lockedby/good",
		"atomiconly/bad", "atomiconly/good",
		"lockorder/bad", "lockorder/good",
		"hotalloc/bad", "hotalloc/good",
		"generics",
	} {
		dirs = append(dirs, filepath.Join(root, filepath.FromSlash(d)))
	}
	loader := NewTestLoader(root)
	u, err := loader.LoadDirs(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	checkExpectations(t, dirs, u.Run(nil))
}

// TestGenericsImporter pins the custom source importer against
// type-parameterized code: instantiations must type-check, Instances info
// must be populated, and the full suite must stay silent.
func TestGenericsImporter(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "generics")
	u, err := NewTestLoader(root).LoadDirs(dir)
	if err != nil {
		t.Fatalf("loading generics fixture: %v", err)
	}
	pkg := u.Targets[0]
	if len(pkg.Info.Instances) == 0 {
		t.Error("no generic instantiations recorded; importer lost Instances info")
	}
	if diags := u.Run(nil); len(diags) != 0 {
		t.Errorf("suite not clean on generics fixture: %v", diags)
	}
}

// TestDirectiveParsing pins the //adws: grammar corner cases.
func TestDirectiveParsing(t *testing.T) {
	loader := NewTestLoader(t.TempDir())
	dir := filepath.Join(loader.testRoot, "d")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `// Package d is a directive fixture.
package d

//adws:hotpath
func hot() {}

type s struct {
	a int //adws:locked(mu) guards a
	b int //adws:padded
	c int // adws:ignored-with-space is not a directive
}
`
	if err := os.WriteFile(filepath.Join(dir, "d.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := loader.LoadDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg := u.Targets[0]
	var got []string
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, d := range parseDirectives(g) {
				got = append(got, fmt.Sprintf("%s(%s)", d.name, d.args))
			}
		}
	}
	want := []string{"hotpath()", "locked(mu)", "padded()"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("directives = %v, want %v", got, want)
	}
}
