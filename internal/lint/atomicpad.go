package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomicpadAnalyzer enforces the cache-line and atomic-alignment layout
// rules:
//
//  1. A struct field whose type is named paddedWord, or annotated
//     //adws:padded, must start at a 64-byte-aligned offset and span at
//     least 64 bytes to the next non-padding field (blank "_" padding
//     fields in between do not count), so the hot word owns its cache
//     line and cannot false-share.
//  2. A named type called paddedWord, or annotated //adws:padded on its
//     type declaration, must have a size that is a nonzero multiple of 64
//     so arrays and slices of it keep every element line-aligned.
//  3. A plain int64/uint64 struct field passed to a 64-bit sync/atomic
//     function must sit at an 8-byte-aligned offset under 32-bit
//     (GOARCH=386) layout rules, mirroring the sync/atomic bugs documentation.
//
// Offsets use the gc layout for the respective GOARCH; structs involving
// unresolved type parameters are skipped (they have no concrete layout).
var atomicpadAnalyzer = &Analyzer{
	Name: "atomicpad",
	Doc:  "padded fields must be 64-byte aligned/padded; atomic 64-bit operands aligned on 32-bit targets",
	Run:  runAtomicpad,
}

const cacheLine = 64

func runAtomicpad(u *Universe) []Diagnostic {
	var diags []Diagnostic
	sizes64 := types.SizesFor("gc", "amd64")
	sizes32 := types.SizesFor("gc", "386")
	for _, p := range u.Targets {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeSpec:
					diags = append(diags, checkPaddedType(u, p, n, sizes64)...)
				case *ast.StructType:
					diags = append(diags, checkStructPadding(u, p, n, sizes64)...)
				case *ast.CallExpr:
					diags = append(diags, checkAtomic64Alignment(u, p, n, sizes32)...)
				}
				return true
			})
		}
	}
	return diags
}

// checkPaddedType enforces rule 2 on type declarations.
func checkPaddedType(u *Universe, p *Package, ts *ast.TypeSpec, sizes types.Sizes) []Diagnostic {
	padded := ts.Name.Name == "paddedWord" || hasDirective("padded", ts.Doc, ts.Comment)
	if !padded {
		return nil
	}
	obj := p.Info.Defs[ts.Name]
	if obj == nil {
		return nil
	}
	size, ok := sizeofSafe(sizes, obj.Type())
	if !ok {
		return nil
	}
	if size == 0 || size%cacheLine != 0 {
		return []Diagnostic{{
			Pos:      u.position(ts.Name.Pos()),
			Analyzer: "atomicpad",
			Message: fmt.Sprintf("padded type %s has size %d, want a nonzero multiple of %d so array elements stay cache-line aligned",
				ts.Name.Name, size, cacheLine),
		}}
	}
	return nil
}

// checkStructPadding enforces rule 1 on every struct literal type
// (named or anonymous).
func checkStructPadding(u *Universe, p *Package, st *ast.StructType, sizes types.Sizes) []Diagnostic {
	// Find which declared fields are annotated, keyed by flattened index.
	type want struct {
		idx  int
		name string
	}
	var wants []want
	idx := 0
	for _, field := range st.Fields.List {
		padded := hasDirective("padded", field.Doc, field.Comment) || isPaddedWordType(p, field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for i := 0; i < n; i++ {
			if padded {
				name := "(embedded)"
				if len(field.Names) > 0 {
					name = field.Names[i].Name
				}
				wants = append(wants, want{idx: idx, name: name})
			}
			idx++
		}
	}
	if len(wants) == 0 {
		return nil
	}
	tv, ok := p.Info.Types[st]
	if !ok {
		return nil
	}
	styp, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	offsets, size, ok := offsetsofSafe(sizes, styp)
	if !ok {
		return nil // involves type parameters; no concrete layout
	}
	var diags []Diagnostic
	for _, w := range wants {
		off := offsets[w.idx]
		// The span runs to the next non-padding field: explicit blank "_"
		// fields are the padding idiom and do not end the span.
		next := size
		for j := w.idx + 1; j < styp.NumFields(); j++ {
			if styp.Field(j).Name() != "_" {
				next = offsets[j]
				break
			}
		}
		pos := u.position(st.Fields.List[0].Pos())
		if id := fieldIdentAt(st, w.idx); id != nil {
			pos = u.position(id.Pos())
		}
		if off%cacheLine != 0 {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "atomicpad",
				Message: fmt.Sprintf("padded field %s is at offset %d, want a multiple of %d (move it or insert _ [N]byte padding before it)",
					w.name, off, cacheLine),
			})
		}
		if span := next - off; span < cacheLine {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "atomicpad",
				Message: fmt.Sprintf("padded field %s spans only %d bytes before the next field, want >= %d (add _ [N]byte padding after it)",
					w.name, span, cacheLine),
			})
		}
	}
	return diags
}

// fieldIdentAt returns the name identifier of the flattened field index
// in the struct's AST, or nil for embedded fields.
func fieldIdentAt(st *ast.StructType, target int) *ast.Ident {
	idx := 0
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			if idx == target {
				return nil
			}
			idx++
			continue
		}
		for _, name := range field.Names {
			if idx == target {
				return name
			}
			idx++
		}
	}
	return nil
}

// isPaddedWordType reports whether the field type expression resolves to
// a named type called paddedWord.
func isPaddedWordType(p *Package, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "paddedWord"
}

// atomic64Funcs are the sync/atomic package-level functions with a 64-bit
// address operand.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// checkAtomic64Alignment enforces rule 3 at sync/atomic call sites.
func checkAtomic64Alignment(u *Universe, p *Package, call *ast.CallExpr, sizes32 types.Sizes) []Diagnostic {
	fn := calleeOf(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomic64Funcs[fn.Name()] {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Accumulate the operand's offset from its enclosing allocation:
	// field offsets are summed outward through value (non-pointer)
	// receivers; a pointer receiver is an allocation boundary, and Go
	// guarantees the first word of an allocation is 64-bit aligned.
	off := int64(0)
	for {
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return nil
		}
		o, ok := selectionOffset(sizes32, s)
		if !ok {
			return nil
		}
		off += o
		if _, isPtr := s.Recv().Underlying().(*types.Pointer); isPtr {
			break
		}
		next, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			break
		}
		sel = next
	}
	if off%8 != 0 {
		return []Diagnostic{{
			Pos:      u.position(call.Args[0].Pos()),
			Analyzer: "atomicpad",
			Message: fmt.Sprintf("64-bit %s operand is at offset %d under 32-bit layout; sync/atomic requires 8-byte alignment (reorder the field to the front of the struct or use atomic.Int64/Uint64)",
				"atomic."+fn.Name(), off),
		}}
	}
	return nil
}

// selectionOffset computes the byte offset of a field selection within
// its receiver struct, following the embedded-field index path.
func selectionOffset(sizes types.Sizes, s *types.Selection) (int64, bool) {
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	var off int64
	for _, idx := range s.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		offsets, _, ok := offsetsofSafe(sizes, st)
		if !ok {
			return 0, false
		}
		off += offsets[idx]
		t = st.Field(idx).Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			// An embedded pointer restarts the offset at its target.
			t, off = p.Elem(), 0
		}
	}
	return off, true
}

// sizeofSafe is Sizes.Sizeof with a recover guard: types containing
// unresolved type parameters have no layout and panic inside gc sizes.
func sizeofSafe(sizes types.Sizes, t types.Type) (size int64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return sizes.Sizeof(t), true
}

// offsetsofSafe computes field offsets and total size with the same guard.
func offsetsofSafe(sizes types.Sizes, st *types.Struct) (offsets []int64, size int64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	return sizes.Offsetsof(fields), sizes.Sizeof(st), true
}
