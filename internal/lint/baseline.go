package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// A baseline grandfathers known findings so the suite can gate on new
// violations while legacy ones are burned down. Entries are keyed by
// (analyzer, module-relative file, message) and deliberately NOT by line
// number: unrelated edits move lines constantly, and a baseline that
// churns on every edit gets blindly regenerated instead of reviewed.
// The flip side — a second, distinct instance of an already-baselined
// (analyzer, file, message) triple is also suppressed — is acceptable
// for a burn-down list.

// BaselineEntry identifies one grandfathered finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is a set of grandfathered findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// NewBaseline builds a baseline from current findings, paths relative to
// baseDir.
func NewBaseline(diags []Diagnostic, baseDir string) *Baseline {
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(diags))}
	seen := make(map[BaselineEntry]bool)
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relPath(baseDir, d.Pos.Filename),
			Message:  d.Message,
		}
		if !seen[e] {
			seen[e] = true
			b.Entries = append(b.Entries, e)
		}
	}
	b.sort()
	return b
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// Write emits the baseline deterministically (sorted, indented, trailing
// newline) so regeneration diffs stay reviewable.
func (b *Baseline) Write(w io.Writer) error {
	b.sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Filter returns the diagnostics not covered by the baseline.
func (b *Baseline) Filter(diags []Diagnostic, baseDir string) []Diagnostic {
	member := make(map[BaselineEntry]bool, len(b.Entries))
	for _, e := range b.Entries {
		member[e] = true
	}
	var out []Diagnostic
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relPath(baseDir, d.Pos.Filename),
			Message:  d.Message,
		}
		if !member[e] {
			out = append(out, d)
		}
	}
	return out
}

func (b *Baseline) sort() {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
}
