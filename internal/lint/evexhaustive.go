package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// evexhaustiveAnalyzer enforces event-switch exhaustiveness: every switch
// whose tag has type trace.EventType must either handle every Ev*
// constant declared in the trace package or carry an explicit default
// clause. Adding a new event type (as PR 3 did with EvPark/EvWake) then
// fails the build gate at every consumer that was not updated, instead of
// silently miscounting.
var evexhaustiveAnalyzer = &Analyzer{
	Name: "evexhaustive",
	Doc:  "switches over trace.EventType must cover every Ev* constant or have a default",
	Run:  runEvexhaustive,
}

func runEvexhaustive(u *Universe) []Diagnostic {
	var diags []Diagnostic
	for _, p := range u.Targets {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				diags = append(diags, checkEventSwitch(u, p, sw)...)
				return true
			})
		}
	}
	return diags
}

// checkEventSwitch validates one switch statement if its tag is an
// EventType.
func checkEventSwitch(u *Universe, p *Package, sw *ast.SwitchStmt) []Diagnostic {
	tv, ok := p.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	// Matched by name rather than hard-coded import path so the analyzer
	// also applies to the testdata harness's miniature trace package.
	if obj.Name() != "EventType" || obj.Pkg() == nil || obj.Pkg().Name() != "trace" {
		return nil
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return nil // explicit default: exhaustiveness is opt-out here
		}
		for _, expr := range cc.List {
			var id *ast.Ident
			switch e := ast.Unparen(expr).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			}
			if id == nil {
				continue
			}
			if c, ok := p.Info.Uses[id].(*types.Const); ok && c.Pkg() == obj.Pkg() {
				covered[c.Name()] = true
			}
		}
	}

	var missing []string
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Ev") {
			continue
		}
		if !types.Identical(c.Type(), named) {
			continue
		}
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return []Diagnostic{{
		Pos:      u.position(sw.Pos()),
		Analyzer: "evexhaustive",
		Message: fmt.Sprintf("switch on %s.EventType is missing cases %s (handle them or add an explicit default)",
			obj.Pkg().Name(), strings.Join(missing, ", ")),
	}}
}
