package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocAnalyzer enforces the allocation-free property on the
// scheduler's hot paths: a function annotated //adws:hotpath must not —
// transitively, through every module-local function it can statically
// reach — heap-allocate. The per-task overhead floor ("Scheduling
// computations with provably low synchronization overheads", PAPERS.md)
// assumes the steal/park/record fast paths cost a bounded handful of
// atomic operations; a single escaping closure or boxed interface
// argument quietly adds a malloc plus GC pressure per task.
//
// Flagged constructs:
//
//   - new(T) and make(...)
//   - &T{...} (address of a composite literal) and slice/map literals;
//     plain value struct literals are NOT flagged — they are
//     stack-allocated unless they escape, and escape through a call is
//     caught at the call site by the boxing rule
//   - function literals (building the closure is the allocation)
//   - append whose destination or source slice is a field, global, or
//     dereference — the grown backing array outlives the call
//   - implicit or explicit conversion of a concrete non-pointer-shaped
//     value to an interface type (boxing); pointers, maps, chans and
//     funcs are pointer-shaped and convert without allocating
//
// Escape hatch: //adws:allow on the line (or the line directly above)
// with a justification — the policy reserves it for amortized growth
// (deque ring doubling) and similarly bounded, off-steady-state
// allocations (docs/LINT.md).
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "//adws:hotpath functions must not heap-allocate (new/make, literals, closures, escaping append, interface boxing)",
	Run:  runHotalloc,
}

func runHotalloc(u *Universe) []Diagnostic {
	w := newBodyWalker(u, func(p *Package, n ast.Node) ([]violation, bool) {
		info := p.Info
		switch n := n.(type) {
		case *ast.FuncLit:
			if !u.allowed(n.Pos()) {
				return []violation{{pos: n.Pos(), what: "allocates a closure (function literal)"}}, false
			}
			return nil, false
		case *ast.UnaryExpr:
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND && !u.allowed(n.Pos()) {
				// Slice/map literals are flagged at the literal itself.
				if t := info.Types[cl].Type; t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
					default:
						return []violation{{pos: n.Pos(),
							what: fmt.Sprintf("allocates: address of composite literal %s", typeLabel(info, cl))}}, true
					}
				}
			}
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil && !u.allowed(n.Pos()) {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					return []violation{{pos: n.Pos(),
						what: fmt.Sprintf("allocates: %s literal", typeLabel(info, n))}}, true
				}
			}
		case *ast.AssignStmt:
			return checkHotallocAssign(u, info, n), true
		case *ast.CallExpr:
			return checkHotallocCall(u, info, n), true
		}
		return nil, true
	})
	return runTransitive(u, "hotalloc", "hotpath", w)
}

// checkHotallocAssign flags appends whose result is stored into a
// non-local destination (the grown backing array escapes) when the append
// operand itself was local and therefore not already flagged at the call.
func checkHotallocAssign(u *Universe, info *types.Info, n *ast.AssignStmt) []violation {
	var out []violation
	for i, rhs := range n.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
			continue
		}
		if i >= len(n.Lhs) || u.allowed(call.Pos()) {
			continue
		}
		if !isLocalExpr(info, call.Args[0]) {
			continue // already flagged at the call site
		}
		if !isLocalExpr(info, n.Lhs[i]) {
			out = append(out, violation{pos: call.Pos(),
				what: "append stores into a field/global: the grown backing array escapes"})
		}
	}
	return out
}

// checkHotallocCall flags allocating builtins, explicit interface
// conversions, and implicit interface boxing of call arguments.
func checkHotallocCall(u *Universe, info *types.Info, call *ast.CallExpr) []violation {
	// Explicit conversion T(x): flag when T is an interface and x is a
	// concrete non-pointer-shaped value.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(info, call.Args[0], tv.Type) && !u.allowed(call.Pos()) {
			return []violation{{pos: call.Pos(),
				what: fmt.Sprintf("allocates: conversion to interface %s boxes its operand", tv.Type.String())}}
		}
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new", "make":
				if !u.allowed(call.Pos()) {
					return []violation{{pos: call.Pos(), what: "allocates with " + b.Name()}}
				}
			case "append":
				if len(call.Args) > 0 && !isLocalExpr(info, call.Args[0]) && !u.allowed(call.Pos()) {
					return []violation{{pos: call.Pos(),
						what: "append grows a field/global slice: the backing array escapes"}}
				}
			}
			return nil
		}
	}
	// Implicit boxing: a concrete argument passed for an interface
	// parameter (including variadic ...interface{} — the fmt-style boxing).
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	var out []violation
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if boxes(info, arg, pt) && !u.allowed(arg.Pos()) {
			out = append(out, violation{pos: arg.Pos(),
				what: fmt.Sprintf("allocates: argument %s boxes a concrete value into %s", exprLabel(arg), pt.String())})
		}
	}
	return out
}

// paramType returns the type the i-th argument is assigned to, resolving
// variadic parameters to their element type (nil when the call uses an
// explicit ... spread, which passes the slice through without boxing).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	np := sig.Params().Len()
	if sig.Variadic() && i >= np-1 {
		if ellipsis {
			return nil
		}
		if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= np {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxes reports whether assigning arg to an interface-typed slot
// heap-allocates: the destination is an interface, the argument is a
// concrete value, and its representation is not pointer-shaped.
func boxes(info *types.Info, arg ast.Expr, dst types.Type) bool {
	if !types.IsInterface(dst) {
		return false
	}
	if tv, ok := info.Types[ast.Unparen(arg)]; ok && tv.Value != nil {
		return false // constants convert to static interface data, no alloc
	}
	at := typeOf(info, arg)
	if at == nil || types.IsInterface(at) {
		return false
	}
	switch u := at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: the interface data word holds it directly
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.Invalid
	}
	return true
}

// isLocalExpr reports whether expr is a plain reference to a function-
// local variable (including parameters); selectors, indexing, derefs and
// package-level vars are non-local, so their backing arrays escape.
func isLocalExpr(info *types.Info, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() != v.Pkg().Scope() // declared inside a function
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// typeOf returns the static type of expr, nil when unknown.
func typeOf(info *types.Info, expr ast.Expr) types.Type {
	if tv, ok := info.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// typeLabel renders the type of a composite literal for messages.
func typeLabel(info *types.Info, cl *ast.CompositeLit) string {
	if t := typeOf(info, cl); t != nil {
		return t.String()
	}
	return "value"
}

// exprLabel renders a short source-ish label for an expression.
func exprLabel(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return finalSelectorName(e.X) + "." + e.Sel.Name
	case *ast.BasicLit:
		return e.Value
	}
	return "value"
}
