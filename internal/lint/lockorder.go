package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// lockorderAnalyzer enforces one global mutex acquisition order over the
// whole program. It builds the acquisition graph: an edge A -> B is
// recorded whenever a function acquires B (directly, or transitively
// through a statically reachable module callee) while holding A — where
// "holding" is tracked through Lock/RLock/TryLock calls, Unlock/RUnlock
// releases (deferred unlocks hold to function end), and //adws:requires(mu)
// entry facts. Mutex identity is the declared field or variable (the
// runtime's Pool.ml anonymous struct, the per-worker fdMu, the server and
// cluster mu webs), not the dynamic instance.
//
// Ranks: //adws:lockrank(n) on a mutex field (or on the embedded
// sync.Mutex/RWMutex inside the field's struct type) assigns rank n.
// Every acquisition edge must strictly increase the rank; edges between
// unranked mutexes are reported so the global order stays written down,
// and any cycle in the inferred graph is reported as a deadlock shape.
//
// Limits: the held-set is a linear, source-order approximation (an
// early-return unlock inside a branch under-approximates); closures and
// calls through interfaces or function values are not followed; locking
// two instances of the same declared mutex reports a self-cycle, which
// //adws:allow can waive where instances are provably ordered.
var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition must follow //adws:lockrank order program-wide; nesting edges need ranks; no cycles",
	Run:  runLockorder,
}

const unranked = -1

// mutexInfo describes one mutex identity: a struct field or variable of
// a sync.Mutex/RWMutex type or of a struct type embedding one.
type mutexInfo struct {
	v    *types.Var
	name string // display name: pkg.Type.field or pkg.var
	rank int
}

type lockEdge struct{ from, to *types.Var }

type lockorderPass struct {
	u        *Universe
	mutexes  map[*types.Var]*mutexInfo
	acquires map[*types.Func]map[*types.Var]bool
	visiting map[*types.Func]bool
	edges    map[lockEdge]token.Pos // first witness of from-held -> to-acquired
	diags    []Diagnostic
}

func runLockorder(u *Universe) []Diagnostic {
	u.buildFuncIndex()
	pass := &lockorderPass{
		u:        u,
		mutexes:  make(map[*types.Var]*mutexInfo),
		acquires: make(map[*types.Func]map[*types.Var]bool),
		visiting: make(map[*types.Func]bool),
		edges:    make(map[lockEdge]token.Pos),
	}
	// Pass 1, module-wide: collect mutex fields/vars and their ranks.
	for _, p := range u.Module {
		for _, f := range p.Files {
			pass.collectDecls(p, f)
		}
	}
	// Pass 2, targets: scan every function body for nesting edges.
	for _, p := range u.Targets {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					pass.scanFunc(p, fd)
				}
			}
		}
	}
	pass.reportEdges()
	pass.reportCycles()
	return pass.diags
}

// collectDecls registers mutex-typed struct fields and package-level vars
// declared in f, with any //adws:lockrank(n) annotation.
func (lo *lockorderPass) collectDecls(p *Package, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch spec := spec.(type) {
			case *ast.TypeSpec:
				owner := spec.Name.Name
				ast.Inspect(spec.Type, func(n ast.Node) bool {
					if st, ok := n.(*ast.StructType); ok {
						lo.collectStructFields(p, owner, st)
					}
					return true
				})
			case *ast.ValueSpec:
				for _, name := range spec.Names {
					v, ok := p.Info.Defs[name].(*types.Var)
					if !ok || !mutexish(v.Type()) {
						continue
					}
					lo.register(v, p.Pkg.Name()+"."+v.Name(),
						lo.rankDirective(p, spec.Doc, spec.Comment, gd.Doc))
				}
			}
		}
	}
}

// collectStructFields registers the mutexish fields of one struct type.
func (lo *lockorderPass) collectStructFields(p *Package, owner string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		rank := lo.rankDirective(p, field.Doc, field.Comment)
		if len(field.Names) == 0 {
			// Embedded mutex: the implicit field var is defined by the
			// terminal identifier of the type expression.
			if id := embeddedFieldIdent(field.Type); id != nil {
				if v, ok := p.Info.Defs[id].(*types.Var); ok && mutexish(v.Type()) {
					lo.register(v, p.Pkg.Name()+"."+owner+"."+v.Name(), rank)
				}
			}
			continue
		}
		for _, name := range field.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok && mutexish(v.Type()) {
				lo.register(v, p.Pkg.Name()+"."+owner+"."+v.Name(), rank)
			}
		}
	}
}

func (lo *lockorderPass) register(v *types.Var, name string, rank int) {
	if mi, ok := lo.mutexes[v]; ok {
		if mi.rank == unranked {
			mi.rank = rank
		}
		return
	}
	lo.mutexes[v] = &mutexInfo{v: v, name: name, rank: rank}
}

// rankDirective parses //adws:lockrank(n) from the comment groups,
// reporting malformed ranks.
func (lo *lockorderPass) rankDirective(p *Package, groups ...*ast.CommentGroup) int {
	for _, g := range groups {
		for _, arg := range directiveArgs("lockrank", g) {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				lo.diags = append(lo.diags, Diagnostic{
					Pos:      lo.u.position(g.Pos()),
					Analyzer: "lockorder",
					Message:  fmt.Sprintf("malformed //adws:lockrank(%s): want a non-negative integer", arg),
				})
				return unranked
			}
			return n
		}
	}
	return unranked
}

// embeddedFieldIdent returns the identifier that names an embedded field
// (Mutex for sync.Mutex, T for *T).
func embeddedFieldIdent(expr ast.Expr) *ast.Ident {
	switch e := expr.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedFieldIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// mutexish reports whether a variable of type t is a lockable identity:
// a sync.Mutex/RWMutex (possibly behind a pointer), or a struct type
// embedding one (the Pool.ml pattern).
func mutexish(t types.Type) bool {
	t = deref(t)
	if isSyncMutexType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isSyncMutexType(deref(f.Type())) {
			return true
		}
	}
	return false
}

func isSyncMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// rankOf resolves the rank of identity v: its own annotation, or the
// annotation on the embedded mutex inside its struct type (so
// //adws:lockrank on an embedded sync.Mutex ranks every field of the
// enclosing type).
func (lo *lockorderPass) rankOf(v *types.Var) int {
	if mi, ok := lo.mutexes[v]; ok && mi.rank != unranked {
		return mi.rank
	}
	if st, ok := deref(v.Type()).Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Embedded() || !isSyncMutexType(deref(f.Type())) {
				continue
			}
			if mi, ok := lo.mutexes[f]; ok && mi.rank != unranked {
				return mi.rank
			}
		}
	}
	return unranked
}

// lockName renders identity v for messages.
func (lo *lockorderPass) lockName(v *types.Var) string {
	if mi, ok := lo.mutexes[v]; ok {
		return mi.name
	}
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// scanFunc walks fd's body in source order, tracking the held-set and
// recording acquisition edges, including edges through module callees'
// transitive acquire-sets. The scan is a linear pre-order approximation:
// a lock released only on an early-return branch is treated as released
// for the statements that follow in source order.
func (lo *lockorderPass) scanFunc(p *Package, fd *ast.FuncDecl) {
	held := lo.entryHeld(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run elsewhere; not part of this held-set
		case *ast.GoStmt:
			// A spawned goroutine starts with an empty held-set; it merely
			// blocks (not deadlocks) on anything the spawner holds. Its own
			// nesting edges are recorded when its function is scanned.
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end; other
			// deferred calls are scanned as if they ran with the current
			// held-set (an approximation in both directions).
			if v, method := lo.lockTarget(p, n.Call); v != nil && isUnlockMethod(method) {
				return false
			}
			return true
		case *ast.CallExpr:
			if v, method := lo.lockTarget(p, n); v != nil {
				switch {
				case isLockMethod(method):
					if !lo.u.allowed(n.Pos()) {
						for _, h := range held {
							lo.addEdge(h, v, n.Pos())
						}
					}
					held = append(held, v)
				case isUnlockMethod(method):
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == v {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			// A module callee may acquire locks of its own: every mutex in
			// its transitive acquire-set nests under everything held here.
			if len(held) == 0 || lo.u.allowed(n.Pos()) {
				return true
			}
			if callee := calleeOf(p.Info, n); callee != nil && lo.u.lookupFunc(callee) != nil {
				for v := range lo.acquiresOf(callee) {
					for _, h := range held {
						lo.addEdge(h, v, n.Pos())
					}
				}
			}
		}
		return true
	})
}

// entryHeld resolves //adws:requires(mu) names against the receiver's
// fields, then package-level mutexes, then a module-unique field name.
func (lo *lockorderPass) entryHeld(p *Package, fd *ast.FuncDecl) []*types.Var {
	var held []*types.Var
	for _, arg := range directiveArgs("requires", fd.Doc) {
		if v := lo.resolveMutexName(p, fd, arg); v != nil {
			held = append(held, v)
		}
	}
	return held
}

// resolveMutexName maps a //adws:requires(name) to a mutex identity.
func (lo *lockorderPass) resolveMutexName(p *Package, fd *ast.FuncDecl, name string) *types.Var {
	if name == "" {
		return nil
	}
	// Receiver struct field of that name.
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tv, ok := p.Info.Types[fd.Recv.List[0].Type]; ok {
			if st, ok := deref(tv.Type).Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if f := st.Field(i); f.Name() == name && mutexish(f.Type()) {
						return f
					}
				}
			}
		}
	}
	// Package-level mutex var.
	if obj := p.Pkg.Scope().Lookup(name); obj != nil {
		if v, ok := obj.(*types.Var); ok && mutexish(v.Type()) {
			return v
		}
	}
	// Unique known mutex of that name anywhere in the module.
	var found *types.Var
	for v := range lo.mutexes {
		if v.Name() == name {
			if found != nil {
				return nil // ambiguous
			}
			found = v
		}
	}
	return found
}

// lockTarget resolves call to (mutex identity, method name) when it is a
// sync.Mutex/RWMutex method call, else (nil, "").
func (lo *lockorderPass) lockTarget(p *Package, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	x := ast.Unparen(sel.X)
	if un, ok := x.(*ast.UnaryExpr); ok && un.Op == token.AND {
		x = ast.Unparen(un.X)
	}
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok {
			lo.lazyRegister(p, v)
			return v, fn.Name()
		}
	case *ast.Ident:
		obj, ok := p.Info.Uses[x].(*types.Var)
		if !ok {
			return nil, ""
		}
		// A variable that IS a mutex (local or package-level sync.Mutex).
		if isSyncMutexType(deref(obj.Type())) {
			lo.lazyRegister(p, obj)
			return obj, fn.Name()
		}
		// A promoted method on the receiver/local struct (s.Lock() with an
		// embedded sync.Mutex): resolve the embedded mutex field through
		// the selection's field path so every function that locks the same
		// declared field shares one identity.
		if selinfo, ok := p.Info.Selections[sel]; ok {
			if st, ok := deref(obj.Type()).Underlying().(*types.Struct); ok {
				idx := selinfo.Index()
				if len(idx) > 1 && idx[0] < st.NumFields() {
					f := st.Field(idx[0])
					lo.lazyRegister(p, f)
					return f, fn.Name()
				}
			}
		}
	}
	return nil, ""
}

// lazyRegister names identities first seen at a lock site (local vars,
// fields of anonymous types declared outside pass 1's walk).
func (lo *lockorderPass) lazyRegister(p *Package, v *types.Var) {
	if _, ok := lo.mutexes[v]; ok {
		return
	}
	name := v.Name()
	if v.Pkg() != nil {
		name = v.Pkg().Name() + "." + name
	}
	lo.mutexes[v] = &mutexInfo{v: v, name: name, rank: unranked}
}

func isUnlockMethod(m string) bool { return m == "Unlock" || m == "RUnlock" }
func isLockMethod(m string) bool {
	return m == "Lock" || m == "RLock" || m == "TryLock" || m == "TryRLock"
}

// acquiresOf returns the set of mutex identities fn may acquire,
// directly or through statically reachable module callees, memoized.
func (lo *lockorderPass) acquiresOf(fn *types.Func) map[*types.Var]bool {
	fn = fn.Origin()
	if s, ok := lo.acquires[fn]; ok {
		return s
	}
	if lo.visiting[fn] {
		return nil
	}
	fd := lo.u.lookupFunc(fn)
	if fd == nil || fd.decl.Body == nil {
		lo.acquires[fn] = nil
		return nil
	}
	lo.visiting[fn] = true
	set := make(map[*types.Var]bool)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // runs on another goroutine / not on this path
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, method := lo.lockTarget(fd.pkg, call); v != nil {
			if isLockMethod(method) {
				set[v] = true
			}
			return true
		}
		if callee := calleeOf(fd.pkg.Info, call); callee != nil && lo.u.lookupFunc(callee) != nil {
			for v := range lo.acquiresOf(callee) {
				set[v] = true
			}
		}
		return true
	})
	delete(lo.visiting, fn)
	lo.acquires[fn] = set
	return set
}

// addEdge records the first witness of acquiring `to` while holding
// `from`.
func (lo *lockorderPass) addEdge(from, to *types.Var, pos token.Pos) {
	e := lockEdge{from, to}
	if _, ok := lo.edges[e]; !ok {
		lo.edges[e] = pos
	}
}

// reportEdges turns the collected edges into diagnostics: rank
// inversions, and unranked nesting.
func (lo *lockorderPass) reportEdges() {
	type flat struct {
		e   lockEdge
		pos token.Pos
	}
	var all []flat
	for e, pos := range lo.edges {
		all = append(all, flat{e, pos})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	for _, f := range all {
		from, to := f.e.from, f.e.to
		rf, rt := lo.rankOf(from), lo.rankOf(to)
		switch {
		case from == to:
			lo.diags = append(lo.diags, Diagnostic{
				Pos:      lo.u.position(f.pos),
				Analyzer: "lockorder",
				Message: fmt.Sprintf("%s acquired while already held (self-deadlock unless instances are ordered; //adws:allow to waive)",
					lo.lockName(from)),
			})
		case rf != unranked && rt != unranked && rt <= rf:
			lo.diags = append(lo.diags, Diagnostic{
				Pos:      lo.u.position(f.pos),
				Analyzer: "lockorder",
				Message: fmt.Sprintf("lock order inversion: %s (rank %d) acquired while holding %s (rank %d); ranks must strictly increase",
					lo.lockName(to), rt, lo.lockName(from), rf),
			})
		case rf == unranked || rt == unranked:
			lo.diags = append(lo.diags, Diagnostic{
				Pos:      lo.u.position(f.pos),
				Analyzer: "lockorder",
				Message: fmt.Sprintf("unranked lock nesting: %s acquired while holding %s (annotate both with //adws:lockrank)",
					lo.lockName(to), lo.lockName(from)),
			})
		}
	}
}

// reportCycles finds strongly connected components of size > 1 in the
// edge graph (self-edges are reported by reportEdges) and reports each
// once at its earliest witness.
func (lo *lockorderPass) reportCycles() {
	adj := make(map[*types.Var][]*types.Var)
	for e := range lo.edges {
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	// Tarjan's SCC.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	var counter int
	var sccs [][]*types.Var
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	var nodes []*types.Var
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return lo.lockName(nodes[i]) < lo.lockName(nodes[j]) })
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	for _, scc := range sccs {
		names := make([]string, 0, len(scc))
		pos := token.Pos(0)
		member := make(map[*types.Var]bool, len(scc))
		for _, v := range scc {
			member[v] = true
		}
		sort.Slice(scc, func(i, j int) bool { return lo.lockName(scc[i]) < lo.lockName(scc[j]) })
		for _, v := range scc {
			names = append(names, lo.lockName(v))
		}
		for e, p := range lo.edges {
			if member[e.from] && member[e.to] && (pos == 0 || p < pos) {
				pos = p
			}
		}
		lo.diags = append(lo.diags, Diagnostic{
			Pos:      lo.u.position(pos),
			Analyzer: "lockorder",
			Message: fmt.Sprintf("lock-order cycle among {%s}: these mutexes acquire each other in both orders",
				strings.Join(names, ", ")),
		})
	}
}
