package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	gort "runtime"
	"strings"
)

// Loader discovers packages with `go list -json` and type-checks them from
// source. Imports are resolved recursively: module-local packages are
// loaded with full ASTs and type information (so analyzers share one
// consistent object identity across the whole module), and everything else
// — the standard library, including its vendored golang.org/x deps — is
// type-checked from GOROOT source. Only the standard library is used; no
// export data, no external tooling.
type Loader struct {
	Fset *token.FileSet

	// modulePath/moduleDir anchor module-local import resolution. When
	// testRoot is set instead (the testdata harness), every non-stdlib
	// import resolves GOPATH-style under that directory.
	modulePath string
	moduleDir  string
	testRoot   string

	ctxt     build.Context
	pkgs     map[string]*Package       // module/test packages, fully loaded
	imported map[string]*types.Package // everything else (stdlib)
	loading  map[string]bool           // import-cycle guard
}

// ModuleDir returns the module root directory ("" for test loaders); the
// reporters anchor relative paths and the SARIF SRCROOT base to it.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// newLoader builds the shared loader state. Cgo is disabled so the
// standard library resolves to its pure-Go fallbacks, which are what
// source-based type checking can process.
func newLoader() *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:     token.NewFileSet(),
		ctxt:     ctxt,
		pkgs:     make(map[string]*Package),
		imported: make(map[string]*types.Package),
		loading:  make(map[string]bool),
	}
}

// NewModuleLoader creates a loader rooted at the enclosing Go module of
// dir ("" = current directory).
func NewModuleLoader(dir string) (*Loader, error) {
	l := newLoader()
	out, err := goJSON(dir, "list", "-m", "-json")
	if err != nil {
		return nil, fmt.Errorf("lint: cannot resolve module (run inside the module): %w", err)
	}
	var mod struct{ Path, Dir string }
	if err := json.Unmarshal(out[0], &mod); err != nil {
		return nil, err
	}
	if mod.Path == "" || mod.Dir == "" {
		return nil, fmt.Errorf("lint: go list -m returned no module path/dir")
	}
	l.modulePath, l.moduleDir = mod.Path, mod.Dir
	return l, nil
}

// NewTestLoader creates a loader for the testdata harness: non-stdlib
// imports resolve as subdirectories of root.
func NewTestLoader(root string) *Loader {
	l := newLoader()
	l.testRoot = root
	return l
}

// Load expands the package patterns (as the go tool would, from dir) and
// returns a Universe over the matched packages.
func (l *Loader) Load(dir string, patterns ...string) (*Universe, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	objs, err := goJSON(dir, append([]string{"list", "-json=ImportPath,Dir,Name"}, patterns...)...)
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w", strings.Join(patterns, " "), err)
	}
	u := &Universe{Fset: l.Fset, Module: l.pkgs}
	for _, raw := range objs {
		var p struct{ ImportPath, Dir, Name string }
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		pkg, err := l.loadDir(p.Dir, p.ImportPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			u.Targets = append(u.Targets, pkg)
		}
	}
	return u, nil
}

// LoadDirs loads the given directories as one Universe (testdata harness).
func (l *Loader) LoadDirs(dirs ...string) (*Universe, error) {
	u := &Universe{Fset: l.Fset, Module: l.pkgs}
	for _, dir := range dirs {
		importPath, err := filepath.Rel(l.testRoot, dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadDir(dir, filepath.ToSlash(importPath))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			u.Targets = append(u.Targets, pkg)
		}
	}
	return u, nil
}

// loadDir parses and type-checks one package directory with full syntax
// and type information, caching by import path. It returns (nil, nil) for
// directories with no non-test Go files.
func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importPath(path, dir)
		}),
		Sizes: types.SizesFor("gc", l.ctxt.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, firstErr)
	}
	p := &Package{Path: importPath, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// importPath resolves one import for the type checker.
func (l *Loader) importPath(path, fromDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Module-local (or testdata-local) packages get the full treatment so
	// analyzers can follow calls into them.
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		p, err := l.loadDir(filepath.Join(l.moduleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		return p.Pkg, nil
	}
	if l.testRoot != "" && !l.isStd(path) {
		p, err := l.loadDir(filepath.Join(l.testRoot, filepath.FromSlash(path)), path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		return p.Pkg, nil
	}
	// Standard library (including GOROOT-vendored golang.org/x deps):
	// type-check from source, without syntax retention.
	if tp, ok := l.imported[path]; ok {
		return tp, nil
	}
	dir, err := l.stdDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			return l.importPath(p, dir)
		}),
		Sizes: types.SizesFor("gc", l.ctxt.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tp, _ := conf.Check(path, l.Fset, files, nil)
	if firstErr != nil {
		return nil, fmt.Errorf("import %q: %w", path, firstErr)
	}
	l.imported[path] = tp
	return tp, nil
}

// stdDir locates a standard-library import path under GOROOT, trying the
// GOROOT vendor tree for the std's external deps.
func (l *Loader) stdDir(path string) (string, error) {
	goroot := l.ctxt.GOROOT
	if goroot == "" {
		goroot = gort.GOROOT()
	}
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q (not in module or GOROOT)", path)
}

// isStd reports whether path resolves inside GOROOT.
func (l *Loader) isStd(path string) bool {
	_, err := l.stdDir(path)
	return err == nil
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// goJSON runs `go <args>` in dir and decodes its stream of JSON objects.
func goJSON(dir string, args ...string) ([]json.RawMessage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg != "" {
			return nil, fmt.Errorf("go %s: %s", strings.Join(args, " "), msg)
		}
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var objs []json.RawMessage
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		objs = append(objs, raw)
	}
	return objs, nil
}
