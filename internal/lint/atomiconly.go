package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomiconlyAnalyzer enforces all-or-nothing atomicity on shared words:
// once a word is accessed atomically anywhere, every access must be
// atomic — the classic latent race of the Chase–Lev literature is one
// forgotten plain read of an atomically published counter, which the
// compiler may then tear, cache, or reorder. Two rules:
//
//  1. Legacy form: a variable or field whose address is passed to a
//     sync/atomic function (atomic.AddInt64(&s.n, 1), ...) must never be
//     read or written plainly, nor have its address escape to anything
//     but a sync/atomic call.
//  2. Typed form: a value whose type is (or recursively contains, through
//     structs and arrays) one of the sync/atomic types (atomic.Int64,
//     atomic.Pointer[T], ...) may only be used through an access path —
//     field selection, indexing, method call, address-of, or index-only
//     range. Copying such a value (assignment, argument, return,
//     composite-literal element, two-variable range) duplicates the word
//     and splits subsequent atomic updates across the copies. Slices,
//     maps and pointers of atomic-containing element types are fine to
//     copy: the header/pointer copy does not duplicate the words.
//
// Exemptions: plain access is allowed inside the owner type's
// constructors (any function in the declaring package whose results
// include the owner type or a pointer to it — the value is still
// private), in functions annotated //adws:plainread (constructor-adjacent
// helpers such as single-owner reinitializers), and on lines annotated
// //adws:plainread with a justification (see docs/LINT.md for the
// policy).
var atomiconlyAnalyzer = &Analyzer{
	Name: "atomiconly",
	Doc:  "words accessed via sync/atomic must be accessed atomically everywhere (escape: //adws:plainread)",
	Run:  runAtomiconly,
}

func runAtomiconly(u *Universe) []Diagnostic {
	pass := &atomiconlyPass{
		u:       u,
		words:   make(map[*types.Var]bool),
		owners:  make(map[*types.Var]*types.TypeName),
		atomics: make(map[types.Type]bool),
	}
	// Pass 1, module-wide: find every variable whose address reaches a
	// sync/atomic call, and remember the owning named type of fields so
	// constructors can be exempted.
	for _, p := range u.Module {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.collectAtomicArgs(p, call)
				}
				return true
			})
		}
	}
	// Pass 2, targets only: classify every use.
	for _, p := range u.Targets {
		for _, f := range p.Files {
			pass.checkFile(p, f)
		}
	}
	return pass.diags
}

type atomiconlyPass struct {
	u *Universe
	// words are the legacy atomic words: vars whose address is passed to a
	// sync/atomic function somewhere in the module.
	words map[*types.Var]bool
	// owners maps a field var to the named type declaring it (via the
	// selector base observed at the atomic call), for constructor checks.
	owners map[*types.Var]*types.TypeName
	// atomics memoizes atomicContaining by type.
	atomics map[types.Type]bool
	// atomicUses are the operand idents/selectors of sync/atomic calls,
	// which must not be re-reported as plain uses.
	atomicUses map[ast.Node]bool
	diags      []Diagnostic
}

// isSyncAtomicFunc reports whether call invokes a package-level function
// of sync/atomic (LoadInt64, AddUint64, CompareAndSwapPointer, ...).
func isSyncAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// collectAtomicArgs records &x arguments of sync/atomic calls as atomic
// words.
func (a *atomiconlyPass) collectAtomicArgs(p *Package, call *ast.CallExpr) {
	if !isSyncAtomicFunc(p.Info, call) {
		return
	}
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		v, base := referencedVar(p.Info, un.X)
		if v == nil {
			continue
		}
		a.words[v] = true
		if base != nil {
			a.owners[v] = base
		}
	}
}

// referencedVar resolves expr to the variable it names (x, s.n,
// s.inner.n, arr[i] -> arr) plus, for fields, the named type of the
// selector base.
func referencedVar(info *types.Info, expr ast.Expr) (*types.Var, *types.TypeName) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v, nil
	case *ast.SelectorExpr:
		v, ok := info.Uses[e.Sel].(*types.Var)
		if !ok {
			return nil, nil
		}
		var owner *types.TypeName
		if t := typeOf(info, e.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				owner = named.Obj()
			}
		}
		return v, owner
	case *ast.IndexExpr:
		return referencedVar(info, e.X)
	}
	return nil, nil
}

// atomicContaining reports whether copying a value of type t duplicates
// an atomic word: t is a sync/atomic type, or a struct or array holding
// one (transitively). Pointer-, slice-, map-, chan- and func-typed values
// only copy a reference.
func (a *atomiconlyPass) atomicContaining(t types.Type) bool {
	if t == nil {
		return false
	}
	if memo, ok := a.atomics[t]; ok {
		return memo
	}
	a.atomics[t] = false // break reference cycles
	res := false
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			res = true // every sync/atomic type is an atomic word
		}
	}
	if !res {
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if a.atomicContaining(u.Field(i).Type()) {
					res = true
					break
				}
			}
		case *types.Array:
			res = a.atomicContaining(u.Elem())
		}
	}
	a.atomics[t] = res
	return res
}

// checkFile classifies every use in one file, keeping a parent stack so
// each flagged expression can be judged by its syntactic context.
func (a *atomiconlyPass) checkFile(p *Package, f *ast.File) {
	// First mark the sanctioned atomic-call operands of this file.
	a.atomicUses = make(map[ast.Node]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSyncAtomicFunc(p.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
				a.atomicUses[ast.Unparen(un.X)] = true
			}
		}
		return true
	})

	var stack []ast.Node
	var curFunc *ast.FuncDecl
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			if fd, ok := stack[len(stack)-1].(*ast.FuncDecl); ok && fd == curFunc {
				curFunc = nil
			}
			stack = stack[:len(stack)-1]
			return false
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			curFunc = fd
		}
		a.checkExpr(p, n, stack, curFunc)
		stack = append(stack, n)
		return true
	})
}

// checkExpr judges one node against both rules.
func (a *atomiconlyPass) checkExpr(p *Package, n ast.Node, stack []ast.Node, curFunc *ast.FuncDecl) {
	expr, ok := n.(ast.Expr)
	if !ok {
		return
	}
	// Rule 1: plain use of a legacy atomic word.
	if v, _ := a.useOf(p.Info, expr); v != nil && a.words[v] {
		if !a.atomicUses[expr] && !a.isAtomicOperand(expr, stack) {
			if !a.exempt(p, curFunc, expr.Pos(), a.owners[v]) {
				a.report(expr.Pos(), fmt.Sprintf(
					"%s is accessed with sync/atomic elsewhere; plain access here can tear or race (use atomic ops, or //adws:plainread with justification)",
					v.Name()))
			}
			return
		}
	}
	// Rule 2: copying a typed-atomic-containing value.
	tv, ok := p.Info.Types[expr]
	if !ok || !tv.IsValue() || !a.atomicContaining(tv.Type) {
		return
	}
	parent := parentOf(stack, expr)
	if allowedAtomicContext(parent, expr) {
		return
	}
	// unsafe.Sizeof/Offsetof/Alignof operands are layout probes, not copies.
	if call, ok := parent.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isBuiltin := p.Info.Uses[sel.Sel].(*types.Builtin); isBuiltin {
				return
			}
		}
	}
	var ownerObj *types.TypeName
	if named, ok := tv.Type.(*types.Named); ok {
		ownerObj = named.Obj()
	}
	if a.exempt(p, curFunc, expr.Pos(), ownerObj) {
		return
	}
	a.report(expr.Pos(), fmt.Sprintf(
		"value of atomic-containing type %s is copied or used plainly here; copies split atomic state (access it through a field/method path, or //adws:plainread)",
		tv.Type.String()))
}

// useOf resolves expr to a directly referenced variable: a bare ident or
// a field selector (not through indexing — those are element accesses).
func (a *atomiconlyPass) useOf(info *types.Info, expr ast.Expr) (*types.Var, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v != nil && v.IsField() {
			return nil, false // the enclosing SelectorExpr reports it
		}
		return v, true
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v, true
	}
	return nil, false
}

// isAtomicOperand reports whether expr is (through parens and one &) the
// operand of a sync/atomic call.
func (a *atomiconlyPass) isAtomicOperand(expr ast.Expr, stack []ast.Node) bool {
	if a.atomicUses[expr] {
		return true
	}
	parent := parentOf(stack, expr)
	if un, ok := parent.(*ast.UnaryExpr); ok && un.Op == token.AND {
		// &x itself sanctioned only when it feeds a sync/atomic call.
		return a.atomicUses[expr]
	}
	return false
}

// parentOf returns the nearest non-paren ancestor of expr on the stack.
func parentOf(stack []ast.Node, expr ast.Expr) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// allowedAtomicContext reports whether parent uses the atomic-containing
// expr as an access path rather than a copy: selecting into it, indexing
// it, taking its address, or ranging over it by index only.
func allowedAtomicContext(parent ast.Node, expr ast.Expr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return ast.Unparen(p.X) == expr
	case *ast.IndexExpr:
		return ast.Unparen(p.X) == expr
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.StarExpr:
		return ast.Unparen(p.X) == expr
	case *ast.RangeStmt:
		return ast.Unparen(p.X) == expr && p.Value == nil
	}
	return false
}

// exempt reports whether a plain access at pos inside fd is sanctioned:
// a //adws:plainread line or function, or a constructor of owner.
func (a *atomiconlyPass) exempt(p *Package, fd *ast.FuncDecl, pos token.Pos, owner *types.TypeName) bool {
	if a.u.lineDirective("plainread", pos) {
		return true
	}
	if fd == nil {
		return true // package-level initializer expressions run single-threaded
	}
	if hasDirective("plainread", fd.Doc) {
		return true
	}
	if owner == nil {
		return false
	}
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		rt := sig.Results().At(i).Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj() == owner {
			return true // constructor: the value is not yet shared
		}
	}
	return false
}

func (a *atomiconlyPass) report(pos token.Pos, msg string) {
	a.diags = append(a.diags, Diagnostic{
		Pos:      a.u.position(pos),
		Analyzer: "atomiconly",
		Message:  msg,
	})
}
