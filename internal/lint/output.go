package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable reporters. JSON is the stable line-oriented contract
// for scripts; SARIF 2.1.0 is what CI uploads so findings annotate pull
// requests (github/codeql-action/upload-sarif). File paths are emitted
// relative to the module root (slash-separated) so reports are
// reproducible across checkouts; SARIF binds them to the SRCROOT
// uriBaseId per §3.14.14 of the spec.

// relPath renders filename relative to baseDir with forward slashes,
// falling back to the absolute path for files outside the tree.
func relPath(baseDir, filename string) string {
	if baseDir != "" {
		if r, err := filepath.Rel(baseDir, filename); err == nil &&
			r != ".." && !strings.HasPrefix(r, ".."+string(filepath.Separator)) {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(filename)
}

// jsonDiagnostic is one finding in -format json output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON emits diags as a JSON array with module-relative paths.
func WriteJSON(w io.Writer, diags []Diagnostic, baseDir string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(baseDir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 object model — only the slice of the schema adwsvet emits.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                    `json:"tool"`
	OriginalURIBaseIDs map[string]sarifArtifactBase `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult                `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifArtifactBase struct {
	URI string `json:"uri"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits diags as a SARIF 2.1.0 log with one run, the full
// analyzer catalogue as the rule table, and baseDir bound as SRCROOT.
func WriteSARIF(w io.Writer, diags []Diagnostic, baseDir string) error {
	driver := sarifDriver{
		Name:           "adwsvet",
		InformationURI: "https://github.com/parlab/adws/blob/main/docs/LINT.md",
	}
	ruleIndex := make(map[string]int)
	for i, a := range Analyzers() {
		ruleIndex[a.Name] = i
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	run := sarifRun{
		Tool:    sarifTool{Driver: driver},
		Results: make([]sarifResult, 0, len(diags)),
	}
	uriBase := ""
	if baseDir != "" {
		uriBase = "SRCROOT"
		run.OriginalURIBaseIDs = map[string]sarifArtifactBase{
			"SRCROOT": {URI: "file://" + filepath.ToSlash(baseDir) + "/"},
		}
	}
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relPath(baseDir, d.Pos.Filename),
						URIBaseID: uriBase,
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
