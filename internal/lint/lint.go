// Package lint implements adwsvet, the project-specific static-analysis
// suite that enforces the scheduler's concurrency invariants. It is built
// only on the standard library (go/ast, go/parser, go/types, go/build) so
// go.mod stays dependency-free; package discovery is driven by
// `go list -json` (see load.go).
//
// Seven analyzers ship today, each enforcing one invariant that previously
// lived in review-only convention (see docs/LINT.md for the full policy):
//
//   - hotpath: functions annotated //adws:hotpath must not, transitively
//     within the module, lock a sync.Mutex, perform channel operations
//     (except lines annotated //adws:allow — the one-slot wake-channel
//     pattern), call time.Sleep or anything in fmt, or defer.
//   - atomicpad: fields of type paddedWord or annotated //adws:padded must
//     sit at a 64-byte-aligned offset with at least 64 bytes to the next
//     non-padding field; 64-bit operands of sync/atomic calls must be
//     8-byte aligned under 32-bit layout rules.
//   - evexhaustive: every switch over trace.EventType must handle all Ev*
//     constants or carry an explicit default clause.
//   - lockedby: fields annotated //adws:locked(mu) may only be accessed in
//     functions that lock mu or are annotated //adws:requires(mu).
//   - atomiconly: a variable accessed through sync/atomic anywhere in the
//     module, or a value of an atomic-containing type, must never be read
//     or written plainly outside its constructor (//adws:plainread is the
//     documented escape hatch).
//   - lockorder: the program-wide mutex acquisition graph — built from
//     Lock/Unlock call sites plus //adws:requires facts — must follow the
//     ranks declared by //adws:lockrank(n) and contain no cycles.
//   - hotalloc: //adws:hotpath functions must not, transitively, heap-
//     allocate: new/make, composite literals, closures, escaping appends
//     and interface boxing are flagged.
//
// Directive grammar: a directive is a //-comment whose text (after "//",
// no space) starts with "adws:", attached to the declaration it governs
// (function doc, field doc or trailing comment, type doc) — or, for the
// line-scoped directives //adws:allow and //adws:plainread, placed on the
// offending line or the line directly above.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker run over a Universe.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(u *Universe) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		hotpathAnalyzer,
		atomicpadAnalyzer,
		evexhaustiveAnalyzer,
		lockedbyAnalyzer,
		atomiconlyAnalyzer,
		lockorderAnalyzer,
		hotallocAnalyzer,
	}
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Universe is the analysis unit: the target packages plus every other
// module package they pull in (the hotpath analyzer follows calls
// transitively across package boundaries, so it needs module-wide ASTs).
type Universe struct {
	Fset *token.FileSet
	// Targets are the packages named on the command line, the ones
	// analyzers walk for annotations and violations.
	Targets []*Package
	// Module holds every loaded module-local package (superset of Targets)
	// keyed by import path; transitive analyses index into it.
	Module map[string]*Package

	funcDecls map[*types.Func]*funcDecl
	// lineDirs indexes line-scoped directives (allow, plainread):
	// directive name -> filename -> line carrying it.
	lineDirs map[string]map[string]map[int]bool
}

// funcDecl pairs a function declaration with the package it lives in.
type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Run executes the given analyzers (all of them if nil) and returns the
// merged findings sorted by position.
func (u *Universe) Run(analyzers []*Analyzer) []Diagnostic {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.Run(u)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags
}

// directive is one parsed //adws:name(args) comment.
type directive struct {
	name string // e.g. "hotpath", "padded", "locked", "requires", "allow"
	args string // inside the parentheses, "" if none
	pos  token.Pos
}

// parseDirectives extracts adws directives from a comment group.
func parseDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "adws:") {
				continue
			}
			text = strings.TrimPrefix(text, "adws:")
			// The directive token ends at the first space; everything after
			// is free-form commentary.
			if i := strings.IndexByte(text, ' '); i >= 0 {
				text = text[:i]
			}
			d := directive{name: text, pos: c.Pos()}
			if i := strings.IndexByte(text, '('); i >= 0 && strings.HasSuffix(text, ")") {
				d.name = text[:i]
				d.args = text[i+1 : len(text)-1]
			}
			out = append(out, d)
		}
	}
	return out
}

// hasDirective reports whether the comment groups carry //adws:<name>.
func hasDirective(name string, groups ...*ast.CommentGroup) bool {
	for _, d := range parseDirectives(groups...) {
		if d.name == name {
			return true
		}
	}
	return false
}

// directiveArgs returns the args of every //adws:<name>(...) directive in
// the comment groups.
func directiveArgs(name string, groups ...*ast.CommentGroup) []string {
	var out []string
	for _, d := range parseDirectives(groups...) {
		if d.name == name {
			out = append(out, d.args)
		}
	}
	return out
}

// position resolves a token.Pos against the universe's file set.
func (u *Universe) position(pos token.Pos) token.Position {
	return u.Fset.Position(pos)
}

// buildLineIndex records, per directive name and file, the lines carrying
// a line-scoped //adws:<name> comment. A node is governed by such a
// directive when its line or the line directly above carries it.
func (u *Universe) buildLineIndex() {
	if u.lineDirs != nil {
		return
	}
	u.lineDirs = make(map[string]map[string]map[int]bool)
	for _, p := range u.Module {
		for _, f := range p.Files {
			for _, g := range f.Comments {
				for _, d := range parseDirectives(g) {
					pos := u.position(d.pos)
					files := u.lineDirs[d.name]
					if files == nil {
						files = make(map[string]map[int]bool)
						u.lineDirs[d.name] = files
					}
					m := files[pos.Filename]
					if m == nil {
						m = make(map[int]bool)
						files[pos.Filename] = m
					}
					m[pos.Line] = true
				}
			}
		}
	}
}

// lineDirective reports whether pos sits on (or directly under) a line
// carrying //adws:<name>.
func (u *Universe) lineDirective(name string, pos token.Pos) bool {
	u.buildLineIndex()
	p := u.position(pos)
	m := u.lineDirs[name][p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// allowed reports whether pos sits on (or directly under) an //adws:allow
// line.
func (u *Universe) allowed(pos token.Pos) bool {
	return u.lineDirective("allow", pos)
}

// buildFuncIndex maps every module function object to its declaration so
// transitive analyses can walk call chains across packages.
func (u *Universe) buildFuncIndex() {
	if u.funcDecls != nil {
		return
	}
	u.funcDecls = make(map[*types.Func]*funcDecl)
	for _, p := range u.Module {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					u.funcDecls[fn] = &funcDecl{pkg: p, decl: fd}
				}
			}
		}
	}
}

// lookupFunc finds the module declaration of fn (resolving generic
// instantiations to their origin), or nil for functions outside the module.
func (u *Universe) lookupFunc(fn *types.Func) *funcDecl {
	u.buildFuncIndex()
	return u.funcDecls[fn.Origin()]
}

// calleeOf resolves a call expression to the called function object, or
// nil for builtins, function-valued expressions, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcDisplayName renders fn as pkg.Name or pkg.(Recv).Name for messages.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
