package topology

// Canonical machines used throughout the benchmarks and tests.

// OakbridgeCX models the evaluation machine of the paper (Table 1): a
// two-socket Intel Xeon Platinum 8280 (Cascade Lake) node of the
// Oakbridge-CX supercomputer. 56 cores (28/socket), 1 MB private L2 per
// core, 38.5 MB shared L3 per socket, one NUMA node per socket.
//
// In the paper's tree-of-caches numbering: level 0 is main memory, level 1
// the two L3s, level 2 the 56 private caches. (The 32 KB L1 is folded into
// the private level; the paper's analysis and PMU counters use L2 as the
// private cache.)
func OakbridgeCX() *Machine {
	return MustNew("oakbridge-cx", []Level{
		{Fanout: 2, Capacity: 38_500 * 1024}, // L3 per socket, 38.5 MB
		{Fanout: 28, Capacity: 1 << 20},      // L2 per core, 1 MB
	}, 1)
}

// TwoLevel16 models the 16-core example machine of the paper's Fig. 12:
// four level-1 caches of four cores each, single NUMA node. Capacities are
// chosen so that interesting multi-level behaviour appears at small sizes:
// 8 MB shared caches over 512 KB private caches.
func TwoLevel16() *Machine {
	return MustNew("twolevel16", []Level{
		{Fanout: 4, Capacity: 8 << 20},
		{Fanout: 4, Capacity: 512 << 10},
	}, 0)
}

// Flat builds a machine with p workers under a single shared cache of the
// given capacity: the degenerate hierarchy where single-level and
// multi-level scheduling coincide.
func Flat(p int, shared, private int64) *Machine {
	return MustNew("flat", []Level{
		{Fanout: 1, Capacity: shared},
		{Fanout: p, Capacity: private},
	}, 0)
}

// ThreeLevel64 models a deeper hierarchy: 2 sockets × 4 clusters × 8 cores,
// with a NUMA node per socket. Used to exercise multi-level scheduling
// across three cache levels and cache-hierarchy flattening over sub-trees.
func ThreeLevel64() *Machine {
	return MustNew("threelevel64", []Level{
		{Fanout: 2, Capacity: 64 << 20}, // per-socket LLC
		{Fanout: 4, Capacity: 8 << 20},  // per-cluster cache
		{Fanout: 8, Capacity: 1 << 20},  // private
	}, 1)
}
