// Package topology models a machine's memory hierarchy as a tree of caches,
// following the model of Alpern et al. used by the ADWS paper (§4.1).
//
// A cache is identified by its level l and an index i among the level-l
// caches, written C[l][i]. Level 0 is the root (main memory, infinite
// capacity); deeper levels are smaller and faster. Leaf caches are private
// (one worker pinned to each). Note this numbering is the reverse of the
// usual L1/L2/L3 convention: the paper's "level-1 caches" of a two-socket
// machine are the L3s, and its "level-2 caches" are the per-core private
// caches.
package topology

import (
	"fmt"
	"strings"
)

// Cache is one node in the tree of caches.
type Cache struct {
	// Level is the depth in the tree: 0 for the root (main memory).
	Level int
	// Index identifies this cache among the caches of its level, numbered
	// left to right.
	Index int
	// Capacity is the cache capacity in bytes. The root has capacity
	// MemCapacity (effectively infinite).
	Capacity int64
	// NUMANode is the NUMA node this cache belongs to (-1 for the root on
	// multi-node machines; the memory of node n is attached under the
	// level-1 cache of socket n on the canonical machines).
	NUMANode int

	parent   *Cache
	children []*Cache

	// firstWorker and lastWorker delimit the half-open worker range
	// [firstWorker, lastWorker) pinned under this cache.
	firstWorker int
	lastWorker  int
}

// Parent returns the parent cache, or nil for the root.
func (c *Cache) Parent() *Cache { return c.parent }

// Children returns the child caches, left to right. Leaves return nil.
func (c *Cache) Children() []*Cache { return c.children }

// IsLeaf reports whether this cache is a leaf (private) cache.
func (c *Cache) IsLeaf() bool { return len(c.children) == 0 }

// FirstWorker returns the smallest worker ID pinned under this cache.
func (c *Cache) FirstWorker() int { return c.firstWorker }

// WorkerCount returns the number of workers pinned under this cache.
func (c *Cache) WorkerCount() int { return c.lastWorker - c.firstWorker }

// ContainsWorker reports whether worker w is pinned under this cache.
func (c *Cache) ContainsWorker(w int) bool {
	return c.firstWorker <= w && w < c.lastWorker
}

// String returns the paper-style name of this cache, e.g. "C[1][3]".
func (c *Cache) String() string { return fmt.Sprintf("C[%d][%d]", c.Level, c.Index) }

// Machine is a tree of caches plus worker pinning.
type Machine struct {
	// Name is a human-readable machine name.
	Name string

	root *Cache
	// levels[l] lists the level-l caches left to right.
	levels [][]*Cache
	// leafOf[w] is the leaf (private) cache worker w is pinned to.
	leafOf []*Cache
	// numNUMA is the number of NUMA nodes (at least 1).
	numNUMA int
}

// MemCapacity is the nominal capacity of the root "cache" (main memory).
// It is large enough that no realistic working set exceeds it.
const MemCapacity = int64(1) << 46

// Level describes one level of a uniform machine: every cache at the level
// has the same capacity and the same number of children.
type Level struct {
	// Fanout is the number of children each cache at the previous level has
	// at this level.
	Fanout int
	// Capacity is the per-cache capacity in bytes at this level.
	Capacity int64
}

// New builds a uniform machine from a level specification. levels[0]
// describes the children of the root; the last level's caches are the
// private leaf caches, one worker pinned to each. numaSplit gives the level
// whose caches each own a NUMA node (commonly 1, the sockets); pass 0 for a
// single-node machine.
func New(name string, levels []Level, numaSplit int) (*Machine, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("topology: machine %q needs at least one level", name)
	}
	for i, l := range levels {
		if l.Fanout <= 0 {
			return nil, fmt.Errorf("topology: level %d fanout %d must be positive", i+1, l.Fanout)
		}
		if l.Capacity <= 0 {
			return nil, fmt.Errorf("topology: level %d capacity %d must be positive", i+1, l.Capacity)
		}
		if i > 0 && l.Capacity > levels[i-1].Capacity {
			return nil, fmt.Errorf("topology: level %d capacity %d exceeds parent level capacity %d",
				i+1, l.Capacity, levels[i-1].Capacity)
		}
	}
	if numaSplit < 0 || numaSplit > len(levels) {
		return nil, fmt.Errorf("topology: numaSplit %d out of range [0,%d]", numaSplit, len(levels))
	}

	m := &Machine{Name: name}
	m.root = &Cache{Level: 0, Index: 0, Capacity: MemCapacity, NUMANode: -1}
	m.levels = make([][]*Cache, len(levels)+1)
	m.levels[0] = []*Cache{m.root}
	for li, spec := range levels {
		level := li + 1
		var row []*Cache
		for _, parent := range m.levels[li] {
			for k := 0; k < spec.Fanout; k++ {
				c := &Cache{
					Level:    level,
					Index:    len(row),
					Capacity: spec.Capacity,
					parent:   parent,
				}
				parent.children = append(parent.children, c)
				row = append(row, c)
			}
		}
		m.levels[level] = row
	}

	// Pin workers to leaves and record worker ranges bottom-up.
	leaves := m.levels[len(m.levels)-1]
	m.leafOf = make([]*Cache, len(leaves))
	for w, leaf := range leaves {
		leaf.firstWorker = w
		leaf.lastWorker = w + 1
		m.leafOf[w] = leaf
	}
	for level := len(m.levels) - 2; level >= 0; level-- {
		for _, c := range m.levels[level] {
			c.firstWorker = c.children[0].firstWorker
			c.lastWorker = c.children[len(c.children)-1].lastWorker
		}
	}

	// Assign NUMA nodes: each cache at numaSplit owns one node; everything
	// beneath inherits it. numaSplit==0 means one node for the whole machine.
	if numaSplit == 0 {
		m.numNUMA = 1
		var mark func(c *Cache)
		mark = func(c *Cache) {
			c.NUMANode = 0
			for _, ch := range c.children {
				mark(ch)
			}
		}
		mark(m.root)
		m.root.NUMANode = 0
	} else {
		m.numNUMA = len(m.levels[numaSplit])
		for node, c := range m.levels[numaSplit] {
			var mark func(c *Cache)
			mark = func(c *Cache) {
				c.NUMANode = node
				for _, ch := range c.children {
					mark(ch)
				}
			}
			mark(c)
		}
		m.root.NUMANode = -1
		for level := 1; level < numaSplit; level++ {
			for _, c := range m.levels[level] {
				c.NUMANode = -1
			}
		}
	}
	return m, nil
}

// MustNew is New, panicking on error. For package-level canonical machines.
func MustNew(name string, levels []Level, numaSplit int) *Machine {
	m, err := New(name, levels, numaSplit)
	if err != nil {
		panic(err)
	}
	return m
}

// Root returns the root of the cache tree (main memory).
func (m *Machine) Root() *Cache { return m.root }

// NumWorkers returns the number of workers (= leaf caches).
func (m *Machine) NumWorkers() int { return len(m.leafOf) }

// NumLevels returns the number of cache levels including the root, i.e. the
// maximum level index is NumLevels()-1.
func (m *Machine) NumLevels() int { return len(m.levels) }

// MaxLevel returns the leaf level index (the paper's l_max).
func (m *Machine) MaxLevel() int { return len(m.levels) - 1 }

// LevelCaches returns the caches at the given level, left to right.
func (m *Machine) LevelCaches(level int) []*Cache {
	if level < 0 || level >= len(m.levels) {
		return nil
	}
	return m.levels[level]
}

// CacheAt returns the cache C[level][index], or nil if out of range.
func (m *Machine) CacheAt(level, index int) *Cache {
	row := m.LevelCaches(level)
	if index < 0 || index >= len(row) {
		return nil
	}
	return row[index]
}

// LeafOf returns the private cache worker w is pinned to.
func (m *Machine) LeafOf(w int) *Cache { return m.leafOf[w] }

// NumNUMANodes returns the number of NUMA nodes (≥ 1).
func (m *Machine) NumNUMANodes() int { return m.numNUMA }

// NUMANodeOfWorker returns the NUMA node worker w's core belongs to.
func (m *Machine) NUMANodeOfWorker(w int) int { return m.leafOf[w].NUMANode }

// CacheOfWorkerAtLevel returns the level-l ancestor cache of worker w's leaf.
// Level 0 returns the root; level MaxLevel returns the leaf itself.
func (m *Machine) CacheOfWorkerAtLevel(w, level int) *Cache {
	c := m.leafOf[w]
	for c.Level > level {
		c = c.parent
	}
	return c
}

// Descendants returns the level-l caches that are descendants of c (the
// paper's D(C, l), Fig. 15). If l == c.Level it returns {c}.
func Descendants(c *Cache, level int) []*Cache {
	if level < c.Level {
		return nil
	}
	if level == c.Level {
		return []*Cache{c}
	}
	var out []*Cache
	for _, ch := range c.children {
		out = append(out, Descendants(ch, level)...)
	}
	return out
}

// TotalCapacity returns the sum of capacities of the given caches.
func TotalCapacity(caches []*Cache) int64 {
	var sum int64
	for _, c := range caches {
		sum += c.Capacity
	}
	return sum
}

// AggregateCapacity returns the total capacity of all level-l caches on the
// machine, e.g. the paper's "total L3" (77 MB on Oakbridge-CX) for level 1.
func (m *Machine) AggregateCapacity(level int) int64 {
	return TotalCapacity(m.LevelCaches(level))
}

// String renders the machine as an indented tree, for diagnostics.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d workers, %d NUMA nodes\n", m.Name, m.NumWorkers(), m.numNUMA)
	var walk func(c *Cache, indent int)
	walk = func(c *Cache, indent int) {
		fmt.Fprintf(&b, "%s%s cap=%s workers=[%d,%d) numa=%d\n",
			strings.Repeat("  ", indent), c, FormatBytes(c.Capacity),
			c.firstWorker, c.lastWorker, c.NUMANode)
		for _, ch := range c.children {
			walk(ch, indent+1)
		}
	}
	walk(m.root, 0)
	return b.String()
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= MemCapacity:
		return "inf"
	case n >= 1<<30:
		return fmt.Sprintf("%.4gGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.4gMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.4gKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
