package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOakbridgeCXGeometry(t *testing.T) {
	m := OakbridgeCX()
	if got := m.NumWorkers(); got != 56 {
		t.Fatalf("NumWorkers = %d, want 56", got)
	}
	if got := m.MaxLevel(); got != 2 {
		t.Fatalf("MaxLevel = %d, want 2", got)
	}
	if got := len(m.LevelCaches(1)); got != 2 {
		t.Fatalf("level-1 caches = %d, want 2", got)
	}
	if got := len(m.LevelCaches(2)); got != 56 {
		t.Fatalf("level-2 caches = %d, want 56", got)
	}
	// Total L3 = 77 MB, the vertical dashed line in Fig. 16.
	if got, want := m.AggregateCapacity(1), int64(2*38_500*1024); got != want {
		t.Fatalf("aggregate L3 = %d, want %d", got, want)
	}
	if got := m.NumNUMANodes(); got != 2 {
		t.Fatalf("NumNUMANodes = %d, want 2", got)
	}
	// Workers 0..27 on socket 0, 28..55 on socket 1.
	if n := m.NUMANodeOfWorker(0); n != 0 {
		t.Errorf("worker 0 NUMA node = %d, want 0", n)
	}
	if n := m.NUMANodeOfWorker(27); n != 0 {
		t.Errorf("worker 27 NUMA node = %d, want 0", n)
	}
	if n := m.NUMANodeOfWorker(28); n != 1 {
		t.Errorf("worker 28 NUMA node = %d, want 1", n)
	}
	if n := m.NUMANodeOfWorker(55); n != 1 {
		t.Errorf("worker 55 NUMA node = %d, want 1", n)
	}
}

func TestWorkerRanges(t *testing.T) {
	m := TwoLevel16()
	if m.NumWorkers() != 16 {
		t.Fatalf("NumWorkers = %d, want 16", m.NumWorkers())
	}
	// Each level-1 cache covers 4 consecutive workers.
	for i, c := range m.LevelCaches(1) {
		if c.FirstWorker() != 4*i || c.WorkerCount() != 4 {
			t.Errorf("C[1][%d] workers [%d,+%d), want [%d,+4)",
				i, c.FirstWorker(), c.WorkerCount(), 4*i)
		}
	}
	// Root covers all workers.
	if m.Root().FirstWorker() != 0 || m.Root().WorkerCount() != 16 {
		t.Errorf("root worker range [%d,+%d), want [0,+16)",
			m.Root().FirstWorker(), m.Root().WorkerCount())
	}
	// ContainsWorker agrees with the range.
	c := m.CacheAt(1, 2)
	for w := 0; w < 16; w++ {
		want := w >= 8 && w < 12
		if got := c.ContainsWorker(w); got != want {
			t.Errorf("C[1][2].ContainsWorker(%d) = %v, want %v", w, got, want)
		}
	}
}

func TestParentChildLinks(t *testing.T) {
	m := ThreeLevel64()
	if m.NumWorkers() != 64 {
		t.Fatalf("NumWorkers = %d, want 64", m.NumWorkers())
	}
	for level := 1; level <= m.MaxLevel(); level++ {
		for _, c := range m.LevelCaches(level) {
			if c.Parent() == nil {
				t.Fatalf("%v has nil parent", c)
			}
			found := false
			for _, ch := range c.Parent().Children() {
				if ch == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v not among its parent's children", c)
			}
		}
	}
	if m.Root().Parent() != nil {
		t.Error("root has a parent")
	}
}

func TestCacheOfWorkerAtLevel(t *testing.T) {
	m := ThreeLevel64()
	for w := 0; w < m.NumWorkers(); w++ {
		for level := 0; level <= m.MaxLevel(); level++ {
			c := m.CacheOfWorkerAtLevel(w, level)
			if c.Level != level {
				t.Fatalf("worker %d level %d: got cache at level %d", w, level, c.Level)
			}
			if !c.ContainsWorker(w) {
				t.Fatalf("worker %d level %d: cache %v does not contain worker", w, level, c)
			}
		}
		if m.CacheOfWorkerAtLevel(w, m.MaxLevel()) != m.LeafOf(w) {
			t.Fatalf("worker %d: leaf-level ancestor is not LeafOf", w)
		}
	}
}

func TestDescendants(t *testing.T) {
	m := ThreeLevel64()
	root := m.Root()
	if got := len(Descendants(root, 3)); got != 64 {
		t.Errorf("Descendants(root, 3) = %d caches, want 64", got)
	}
	if got := len(Descendants(root, 1)); got != 2 {
		t.Errorf("Descendants(root, 1) = %d caches, want 2", got)
	}
	c := m.CacheAt(1, 1)
	ds := Descendants(c, 3)
	if len(ds) != 32 {
		t.Fatalf("Descendants(C[1][1], 3) = %d caches, want 32", len(ds))
	}
	for _, d := range ds {
		if d.FirstWorker() < 32 {
			t.Errorf("descendant %v covers worker %d outside socket 1", d, d.FirstWorker())
		}
	}
	if ds := Descendants(c, 0); ds != nil {
		t.Errorf("Descendants above own level = %v, want nil", ds)
	}
	if ds := Descendants(c, 1); len(ds) != 1 || ds[0] != c {
		t.Errorf("Descendants at own level should be the cache itself")
	}
}

func TestTotalCapacity(t *testing.T) {
	m := OakbridgeCX()
	if got, want := TotalCapacity(m.LevelCaches(2)), int64(56<<20); got != want {
		t.Errorf("total private capacity = %d, want %d", got, want)
	}
	if got := TotalCapacity(nil); got != 0 {
		t.Errorf("TotalCapacity(nil) = %d, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		levels []Level
		numa   int
	}{
		{"empty", nil, 0},
		{"zero fanout", []Level{{Fanout: 0, Capacity: 1}}, 0},
		{"zero capacity", []Level{{Fanout: 1, Capacity: 0}}, 0},
		{"growing capacity", []Level{{Fanout: 2, Capacity: 100}, {Fanout: 2, Capacity: 200}}, 0},
		{"numa out of range", []Level{{Fanout: 2, Capacity: 100}}, 2},
		{"negative numa", []Level{{Fanout: 2, Capacity: 100}}, -1},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.levels, c.numa); err == nil {
			t.Errorf("New(%s) succeeded, want error", c.name)
		}
	}
}

func TestSingleNUMA(t *testing.T) {
	m := TwoLevel16()
	if m.NumNUMANodes() != 1 {
		t.Fatalf("NumNUMANodes = %d, want 1", m.NumNUMANodes())
	}
	for w := 0; w < m.NumWorkers(); w++ {
		if m.NUMANodeOfWorker(w) != 0 {
			t.Errorf("worker %d NUMA node = %d, want 0", w, m.NUMANodeOfWorker(w))
		}
	}
	if m.Root().NUMANode != 0 {
		t.Errorf("root NUMA node = %d, want 0 on single-node machine", m.Root().NUMANode)
	}
}

func TestString(t *testing.T) {
	s := TwoLevel16().String()
	for _, want := range []string{"twolevel16", "C[0][0]", "C[1][3]", "C[2][15]", "8MB", "512KB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1 << 10, "1KB"},
		{64 << 10, "64KB"},
		{1 << 20, "1MB"},
		{int64(38_500 * 1024), "37.6MB"},
		{1 << 30, "1GB"},
		{2 << 30, "2GB"},
		{MemCapacity, "inf"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// Property: for any uniform machine shape, worker ranges at every level
// partition [0, P) into contiguous, equal-width blocks.
func TestWorkerPartitionProperty(t *testing.T) {
	f := func(f1, f2 uint8) bool {
		fan1 := int(f1%4) + 1
		fan2 := int(f2%4) + 1
		m, err := New("prop", []Level{
			{Fanout: fan1, Capacity: 1 << 20},
			{Fanout: fan2, Capacity: 1 << 10},
		}, 0)
		if err != nil {
			return false
		}
		p := m.NumWorkers()
		if p != fan1*fan2 {
			return false
		}
		for level := 0; level <= m.MaxLevel(); level++ {
			next := 0
			for _, c := range m.LevelCaches(level) {
				if c.FirstWorker() != next {
					return false
				}
				next = c.FirstWorker() + c.WorkerCount()
			}
			if next != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
