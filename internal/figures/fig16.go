package figures

import (
	"fmt"

	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/workload"
)

// Fig16 regenerates the paper's Fig. 16: speedup over serial execution on
// all workers, for every benchmark, across working-set sizes spanning the
// aggregate shared-cache capacity. For MatMul the paper plots FLOPS; we
// plot simulated GFLOPS-equivalents (FLOPs per virtual time unit), which
// preserves the ordering and ratios.
func Fig16(o Options) []Figure {
	o = o.withDefaults()
	var figs []Figure
	agg := o.Machine.AggregateCapacity(1)
	for _, reg := range workload.Registry {
		if !o.benchSelected(reg.Name) {
			continue
		}
		fig := Figure{
			ID:     "fig16/" + reg.Name,
			Title:  fmt.Sprintf("Speedup on %d workers vs working set size (%s)", o.Machine.NumWorkers(), reg.Name),
			XLabel: "working-set",
			YLabel: "speedup over serial",
			Notes: []string{
				fmt.Sprintf("aggregate shared cache (dashed line in the paper) = %s",
					topology.FormatBytes(agg)),
			},
		}
		if reg.Name == "matmul" {
			fig.YLabel = "FLOPs per time unit"
		}
		series := make([]Series, len(sim.Modes))
		for i, m := range sim.Modes {
			series[i].Label = m.String()
		}
		for _, bytes := range o.sizes() {
			inst := o.buildInstance(reg.Name, bytes)
			results, serial := o.measureAllModes(inst)
			fig.XTicks = append(fig.XTicks, topology.FormatBytes(bytes))
			for i, m := range sim.Modes {
				r := results[m]
				y := r.Speedup(serial.Time)
				if reg.Name == "matmul" && r.Time > 0 {
					y = inst.FLOPs / r.Time
				}
				series[i].X = append(series[i].X, float64(bytes))
				series[i].Y = append(series[i].Y, y)
			}
		}
		fig.Series = series
		figs = append(figs, fig)
	}
	return figs
}

// Fig17 regenerates the execution time breakdown (busy/idle/overhead per
// worker, averaged) at the largest Fig. 16 size for each benchmark.
func Fig17(o Options) []Figure {
	o = o.withDefaults()
	sizes := o.sizes()
	largest := sizes[len(sizes)-1]
	var figs []Figure
	for _, reg := range workload.Registry {
		if !o.benchSelected(reg.Name) {
			continue
		}
		inst := o.buildInstance(reg.Name, largest)
		fig := Figure{
			ID:     "fig17/" + reg.Name,
			Title:  fmt.Sprintf("Execution time breakdown, %s at %s", reg.Name, topology.FormatBytes(largest)),
			XLabel: "scheduler",
			YLabel: "time per worker",
		}
		busy := Series{Label: "busy"}
		idle := Series{Label: "idle"}
		oh := Series{Label: "overhead"}
		total := Series{Label: "total(makespan)"}
		results, _ := o.measureAllModes(inst)
		p := float64(o.Machine.NumWorkers())
		for i, m := range sim.Modes {
			r := results[m]
			fig.XTicks = append(fig.XTicks, m.String())
			x := float64(i)
			busy.X, busy.Y = append(busy.X, x), append(busy.Y, r.BusyTime/p)
			idle.X, idle.Y = append(idle.X, x), append(idle.Y, r.IdleTime/p)
			oh.X, oh.Y = append(oh.X, x), append(oh.Y, r.OverheadTime/p)
			total.X, total.Y = append(total.X, x), append(total.Y, r.Time)
		}
		fig.Series = []Series{busy, idle, oh, total}
		figs = append(figs, fig)
	}
	return figs
}

// Fig18 regenerates the cache miss counts (private-level "L2" and
// shared-level "L3" misses) at the largest Fig. 16 size, including the
// serial reference the paper plots alongside.
func Fig18(o Options) []Figure {
	o = o.withDefaults()
	sizes := o.sizes()
	largest := sizes[len(sizes)-1]
	var figs []Figure
	for _, reg := range workload.Registry {
		if !o.benchSelected(reg.Name) {
			continue
		}
		inst := o.buildInstance(reg.Name, largest)
		fig := Figure{
			ID:     "fig18/" + reg.Name,
			Title:  fmt.Sprintf("Cache misses, %s at %s", reg.Name, topology.FormatBytes(largest)),
			XLabel: "scheduler",
			YLabel: "misses",
		}
		l2 := Series{Label: "L2-misses"}
		l3 := Series{Label: "L3-misses"}
		results, serial := o.measureAllModes(inst)
		for i, m := range sim.Modes {
			r := results[m]
			fig.XTicks = append(fig.XTicks, m.String())
			l2.X, l2.Y = append(l2.X, float64(i)), append(l2.Y, float64(r.PrivateMisses))
			l3.X, l3.Y = append(l3.X, float64(i)), append(l3.Y, float64(r.SharedMisses))
		}
		fig.XTicks = append(fig.XTicks, "serial")
		l2.X, l2.Y = append(l2.X, float64(len(sim.Modes))), append(l2.Y, float64(serial.PrivateMisses))
		l3.X, l3.Y = append(l3.X, float64(len(sim.Modes))), append(l3.Y, float64(serial.SharedMisses))
		fig.Series = []Series{l2, l3}
		figs = append(figs, fig)
	}
	return figs
}
