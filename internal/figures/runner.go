package figures

import (
	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/workload"
)

// Options configures figure generation.
type Options struct {
	// Machine defaults to topology.OakbridgeCX().
	Machine *topology.Machine
	// SizeFactors scale the aggregate shared-cache capacity to produce the
	// working-set sweep of Fig. 16. Defaults to
	// {1/8, 1/4, 1/2, 1, 2, 4, 8, 16}.
	SizeFactors []float64
	// Reps is the number of repetitions per measurement; the last
	// repetition (warm caches) is measured, as the paper discards its
	// warm-up run. Default 2.
	Reps int
	// Seed drives all pseudo-randomness.
	Seed uint64
	// Benches restricts the benchmark set (nil = all).
	Benches []string
	// Costs overrides the simulator cost model.
	Costs sim.CostModel
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = topology.OakbridgeCX()
	}
	if len(o.SizeFactors) == 0 {
		o.SizeFactors = []float64{0.125, 0.25, 0.5, 1, 2, 4, 8, 16}
	}
	if o.Reps < 2 {
		o.Reps = 2
	}
	if o.Seed == 0 {
		o.Seed = 20190301 // arbitrary fixed default
	}
	return o
}

func (o Options) benchSelected(name string) bool {
	if len(o.Benches) == 0 {
		return true
	}
	for _, b := range o.Benches {
		if b == name {
			return true
		}
	}
	return false
}

func (o Options) sizes() []int64 {
	agg := float64(o.Machine.AggregateCapacity(1))
	out := make([]int64, len(o.SizeFactors))
	for i, f := range o.SizeFactors {
		out[i] = roundPow2(int64(f * agg))
	}
	return out
}

// roundPow2 rounds to the nearest power of two. The paper's working-set
// axes are powers of two (64 MB, 1024 MB, ...); power-of-two sizes also
// keep the benchmarks' recursive halving exact, so that "exact hints" do
// not place distribution boundaries at fractional worker positions that
// the paper's configurations never exercise.
func roundPow2(v int64) int64 {
	if v < 2 {
		return 1
	}
	lo := int64(1)
	for lo*2 <= v {
		lo *= 2
	}
	hi := lo * 2
	if float64(v)/float64(lo) < float64(hi)/float64(v) {
		return lo
	}
	return hi
}

// measurement bundles the parallel result with its serial reference.
type measurement struct {
	res    sim.RunResult
	serial sim.SerialResult
}

// runConfig is one simulator execution request.
type runConfig struct {
	mode    sim.Mode
	numa    sim.NUMAPolicy
	noHints bool
	// withInit runs the instance's parallel init body once before the
	// measured repetitions (first-touch page placement, §6.5).
	withInit bool
}

// run executes an instance for `reps` repetitions under cfg and returns
// the final (warm) repetition's result.
func (o Options) run(inst workload.Instance, cfg runConfig) sim.RunResult {
	eng := sim.NewEngine(sim.Config{
		Machine:         o.Machine,
		Mode:            cfg.mode,
		Costs:           o.Costs,
		Seed:            o.Seed,
		NUMA:            cfg.numa,
		IgnoreWorkHints: cfg.noHints,
	})
	root, init := inst.Prepare(eng.Memory())
	if cfg.withInit && init != nil {
		eng.Run(init)
	}
	var res sim.RunResult
	for r := 0; r < o.Reps; r++ {
		res = eng.Run(root)
	}
	return res
}

// serial executes the serial reference (fixed worker, local allocation,
// measured warm like the paper's serial baselines).
func (o Options) serial(inst workload.Instance) sim.SerialResult {
	return sim.RunSerial(o.Machine, o.Costs, sim.Node0, o.Reps,
		func(mem *sim.Memory) sim.Body {
			root, _ := inst.Prepare(mem)
			return root
		})
}

// measureAllModes runs an instance under every scheduler plus serial.
func (o Options) measureAllModes(inst workload.Instance) (map[sim.Mode]sim.RunResult, sim.SerialResult) {
	out := make(map[sim.Mode]sim.RunResult, len(sim.Modes))
	for _, mode := range sim.Modes {
		out[mode] = o.run(inst, runConfig{mode: mode, numa: sim.Interleave})
	}
	return out, o.serial(inst)
}

// buildInstance constructs a benchmark instance at a working-set size.
func (o Options) buildInstance(name string, bytes int64) workload.Instance {
	b, ok := workload.ByName(name)
	if !ok {
		panic("figures: unknown benchmark " + name)
	}
	return b(bytes, o.Seed)
}
