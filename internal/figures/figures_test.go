package figures

import (
	"bytes"
	"strings"
	"testing"

	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/workload"
)

// testOptions runs the figures on a small 16-worker machine so tests stay
// fast; shape assertions are scale-independent.
func testOptions(benches ...string) Options {
	return Options{
		Machine:     topology.TwoLevel16(), // aggregate shared = 32 MB
		SizeFactors: []float64{0.25, 4},
		Reps:        2,
		Seed:        99,
		Benches:     benches,
	}
}

func TestFig16SmallAndLargeShapes(t *testing.T) {
	figs := Fig16(testOptions("dtree"))
	if len(figs) != 1 {
		t.Fatalf("got %d figures", len(figs))
	}
	f := figs[0]
	idx := map[string]int{}
	for i, s := range f.Series {
		idx[s.Label] = i
	}
	small, large := 0, 1

	y := func(label string, i int) float64 { return f.Series[idx[label]].Y[i] }

	// Small working set (fits aggregate shared cache):
	// 1. ADWS beats conventional WS (iterative + hierarchical locality).
	if y("SL-ADWS", small) <= y("SL-WS", small) {
		t.Errorf("small set: SL-ADWS (%.2f) should beat SL-WS (%.2f)",
			y("SL-ADWS", small), y("SL-WS", small))
	}
	// 2. Flattening makes ML-ADWS perform like SL-ADWS (within 15%).
	r := y("ML-ADWS", small) / y("SL-ADWS", small)
	if r < 0.85 || r > 1.15 {
		t.Errorf("small set: ML-ADWS/SL-ADWS = %.2f, want ~1 (flattening)", r)
	}

	// Large working set (4x aggregate):
	// 3. ML-ADWS beats SL-ADWS (shared cache reuse on decision tree).
	if y("ML-ADWS", large) <= y("SL-ADWS", large) {
		t.Errorf("large set: ML-ADWS (%.2f) should beat SL-ADWS (%.2f)",
			y("ML-ADWS", large), y("SL-ADWS", large))
	}
	// 4. ML-ADWS at least matches ML-WS (deterministic mapping on top of
	// ML). On the small test machine with only 4 workers per cache the two
	// can land within a few percent of each other; the clear ordering
	// appears at full scale (see EXPERIMENTS.md, RRM/KDTree at 512 MB).
	if y("ML-ADWS", large) < 0.93*y("ML-WS", large) {
		t.Errorf("large set: ML-ADWS (%.2f) far below ML-WS (%.2f)",
			y("ML-ADWS", large), y("ML-WS", large))
	}
}

func TestFig18MissOrdering(t *testing.T) {
	figs := Fig18(testOptions("dtree"))
	f := figs[0]
	var l3 Series
	for _, s := range f.Series {
		if s.Label == "L3-misses" {
			l3 = s
		}
	}
	at := func(tick string) float64 {
		for i, x := range f.XTicks {
			if x == tick {
				return l3.Y[i]
			}
		}
		t.Fatalf("tick %s missing (have %v)", tick, f.XTicks)
		return 0
	}
	// The paper's Fig. 18 ordering at large sizes: ML ~ serial < SB < SL.
	if at("ML-ADWS") >= at("SL-ADWS") {
		t.Errorf("L3 misses: ML-ADWS (%.3g) should be below SL-ADWS (%.3g)",
			at("ML-ADWS"), at("SL-ADWS"))
	}
	if at("ML-ADWS") > 2.5*at("serial") {
		t.Errorf("L3 misses: ML-ADWS (%.3g) should be near serial (%.3g)",
			at("ML-ADWS"), at("serial"))
	}
}

func TestFig17BreakdownSane(t *testing.T) {
	figs := Fig17(testOptions("quicksort"))
	f := figs[0]
	// Makespan >= busy per worker; idle >= 0; series aligned with ticks.
	var busy, idle, total Series
	for _, s := range f.Series {
		switch s.Label {
		case "busy":
			busy = s
		case "idle":
			idle = s
		case "total(makespan)":
			total = s
		}
	}
	for i := range f.XTicks {
		if busy.Y[i] <= 0 {
			t.Errorf("%s: busy %v", f.XTicks[i], busy.Y[i])
		}
		if idle.Y[i] < 0 {
			t.Errorf("%s: negative idle %v", f.XTicks[i], idle.Y[i])
		}
		if total.Y[i] < busy.Y[i]*0.99 {
			t.Errorf("%s: makespan %v below per-worker busy %v", f.XTicks[i], total.Y[i], busy.Y[i])
		}
	}
}

func TestFig19HintSensitivity(t *testing.T) {
	o := testOptions()
	figs := Fig19(o)
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	small := figs[0]
	idx := map[string]int{}
	for i, s := range small.Series {
		idx[s.Label] = i
	}
	hinted := small.Series[idx["SL-ADWS"]]
	noHint := small.Series[idx["SL-ADWS(w/o hint)"]]
	// At alpha=1 the 1:1 guess is exact: hinted ~ no-hint.
	if d := hinted.Y[0] - noHint.Y[0]; d < -0.1 || d > 0.1 {
		t.Errorf("alpha=1: hinted %.2f vs no-hint %.2f should coincide", hinted.Y[0], noHint.Y[0])
	}
	last := len(Fig19Alphas) - 1
	// At large alpha the hinted version must beat the no-hint version.
	if hinted.Y[last] <= noHint.Y[last] {
		t.Errorf("alpha=%g: hinted %.2f should beat no-hint %.2f",
			Fig19Alphas[last], hinted.Y[last], noHint.Y[last])
	}
	// ...and the no-hint version must not be far below SL-WS (improvement
	// >= -0.15), the paper's tolerance claim.
	if noHint.Y[last] < -0.15 {
		t.Errorf("alpha=%g: no-hint improvement over SL-WS = %.2f, want >= -0.15",
			Fig19Alphas[last], noHint.Y[last])
	}
}

func TestFig19AlphaSubset(t *testing.T) {
	// Keep the full-sweep test above structural; this runs a 2-alpha sweep
	// to keep CI fast if the full one is trimmed later.
	old := Fig19Alphas
	Fig19Alphas = []float64{1, 8}
	defer func() { Fig19Alphas = old }()
	figs := Fig19(testOptions())
	for _, f := range figs {
		for _, s := range f.Series {
			if len(s.Y) != 2 {
				t.Errorf("%s/%s: %d points, want 2", f.ID, s.Label, len(s.Y))
			}
		}
	}
}

func TestFig20NoHintPenalty(t *testing.T) {
	o := testOptions("quicksort", "dtree")
	o.Benches = nil // Fig20 uses its own bench list; restrict via var below
	old := Fig20Benches
	Fig20Benches = []string{"quicksort", "dtree"}
	defer func() { Fig20Benches = old }()
	figs := Fig20(o)
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, f := range figs {
		for _, s := range f.Series {
			for i, yv := range s.Y {
				// No-hint penalties are bounded: not catastrophically bad.
				if yv < -1.5 {
					t.Errorf("%s/%s[%d] = %.2f: no-hint run catastrophically slow", f.ID, s.Label, i, yv)
				}
			}
		}
	}
}

func TestFig21NUMAImprovement(t *testing.T) {
	m := topology.OakbridgeCX() // needs 2 NUMA nodes
	o := Options{
		Machine:     m,
		SizeFactors: []float64{2},
		Reps:        2,
		Seed:        3,
		Benches:     []string{"heat2d"},
	}
	figs := Fig21(o)
	f := figs[0]
	// Heat2D is regular and memory-bound: local allocation must help
	// SL-ADWS clearly (the paper reports ~20%+).
	var sl Series
	for _, s := range f.Series {
		if s.Label == "SL-ADWS" {
			sl = s
		}
	}
	if len(sl.Y) != 1 {
		t.Fatalf("series length %d", len(sl.Y))
	}
	if sl.Y[0] < 0.03 {
		t.Errorf("heat2d local-alloc improvement for SL-ADWS = %.3f, want > 0.03", sl.Y[0])
	}
}

func TestRenderAndCSV(t *testing.T) {
	f := Figure{
		ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		XTicks: []string{"a", "b"},
		Series: []Series{{Label: "s1", X: []float64{0, 1}, Y: []float64{1.5, 2.5}}},
		Notes:  []string{"note"},
	}
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "s1", "a", "2.5", "# note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	f.CSV(&buf)
	if !strings.Contains(buf.String(), "x,s1") || !strings.Contains(buf.String(), "b,2.5") {
		t.Errorf("CSV output wrong:\n%s", buf.String())
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1(topology.OakbridgeCX(), &buf)
	out := buf.String()
	for _, want := range []string{"56", "37.6MB", "75.2MB", "NUMA nodes        2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Machine == nil || o.Reps != 2 || len(o.SizeFactors) != 8 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if !o.benchSelected("anything") {
		t.Error("empty bench filter should select all")
	}
	o.Benches = []string{"rrm"}
	if o.benchSelected("dtree") || !o.benchSelected("rrm") {
		t.Error("bench filter wrong")
	}
}

// Guard against accidental workload registry drift breaking the figures.
func TestRegistryCoversFig20(t *testing.T) {
	for _, b := range Fig20Benches {
		if _, ok := workload.ByName(b); !ok {
			t.Errorf("Fig20 bench %q not in registry", b)
		}
	}
	_ = sim.Modes
}

func TestFigAutoTracksBest(t *testing.T) {
	o := testOptions("dtree")
	figs := FigAuto(o)
	if len(figs) != 1 {
		t.Fatalf("got %d figures", len(figs))
	}
	f := figs[0]
	idx := map[string]int{}
	for i, s := range f.Series {
		idx[s.Label] = i
	}
	sl := f.Series[idx["SL-ADWS"]]
	ml := f.Series[idx["ML-ADWS"]]
	auto := f.Series[idx["Auto-ADWS"]]
	for i := range auto.Y {
		best := sl.Y[i]
		if ml.Y[i] > best {
			best = ml.Y[i]
		}
		// Auto pays ~10% profiling cost; it must stay within 15% of the
		// better variant and never fall to the worse one when they differ
		// by more than the profiling cost.
		if auto.Y[i] < best/1.15 {
			t.Errorf("point %d: auto %.2f far below best %.2f", i, auto.Y[i], best)
		}
	}
}
