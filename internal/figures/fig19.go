package figures

import (
	"fmt"

	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/workload"
)

// Fig19Alphas is the paper's work-ratio sweep for the RRM imbalance study.
var Fig19Alphas = []float64{1, 1.5, 2, 3, 4, 6, 8, 10, 12}

// Fig19 regenerates the work-hint sensitivity study: RRM with the array
// divided 1:alpha at each recursion, comparing ADWS with exact hints
// against ADWS guessing 1:1 ("w/o hint"), as improvement over SL-WS
// (1 - T/T_SLWS). Two working-set sizes are studied: one fitting the
// aggregate shared caches (the paper's 64 MB) and one far larger (the
// paper's 1024 MB) — here scaled by the same ratios to the simulated
// machine's aggregate capacity.
func Fig19(o Options) []Figure {
	o = o.withDefaults()
	agg := float64(o.Machine.AggregateCapacity(1))
	// Paper: 64 MB and 1024 MB on a 77 MB machine -> 0.83x and 13.3x,
	// rounded to powers of two like the paper's sizes.
	sizes := []int64{roundPow2(int64(0.7 * agg)), roundPow2(int64(13.3 * agg))}
	labels := []string{"fitting-L3", "large"}

	var figs []Figure
	for si, bytes := range sizes {
		fig := Figure{
			ID:     fmt.Sprintf("fig19/%s", labels[si]),
			Title:  fmt.Sprintf("Hint sensitivity on RRM, working set %s", topology.FormatBytes(bytes)),
			XLabel: "alpha",
			YLabel: "improvement over SL-WS (1 - T/T_SLWS)",
		}
		kinds := []struct {
			label   string
			mode    sim.Mode
			noHints bool
		}{
			{"SL-ADWS", sim.SLADWS, false},
			{"ML-ADWS", sim.MLADWS, false},
			{"SL-ADWS(w/o hint)", sim.SLADWS, true},
			{"ML-ADWS(w/o hint)", sim.MLADWS, true},
			{"ML-WS", sim.MLWS, false},
			{"SB", sim.SB, false},
		}
		series := make([]Series, len(kinds))
		for i, k := range kinds {
			series[i].Label = k.label
		}
		for _, alpha := range Fig19Alphas {
			inst := workload.RRM(bytes, alpha, o.Seed)
			base := o.run(inst, runConfig{mode: sim.SLWS, numa: sim.Interleave})
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%g", alpha))
			for i, k := range kinds {
				r := o.run(inst, runConfig{mode: k.mode, numa: sim.Interleave, noHints: k.noHints})
				impr := 1 - r.Time/base.Time
				series[i].X = append(series[i].X, alpha)
				series[i].Y = append(series[i].Y, impr)
			}
		}
		fig.Series = series
		figs = append(figs, fig)
	}
	return figs
}

// Fig20Benches are the irregular benchmarks of the no-hint study (§6.4);
// MatMul and Heat2D are excluded because a 1:1 guess is exact for them.
var Fig20Benches = []string{"quicksort", "kdtree", "dtree", "sph"}

// Fig20 regenerates the no-work-hints evaluation: ADWS guessing equal
// work, reported as the improvement of the no-hint configuration over the
// hinted one (expected negative), at a working set near the aggregate
// shared capacity and at a much larger one.
func Fig20(o Options) []Figure {
	o = o.withDefaults()
	agg := float64(o.Machine.AggregateCapacity(1))
	// Paper: Fig. 20a uses sizes near the total L3 (e.g. 89 MB on 77 MB),
	// Fig. 20b roughly 10x larger; rounded to powers of two.
	sizes := []int64{roundPow2(int64(1.3 * agg)), roundPow2(int64(11.5 * agg))}
	labels := []string{"near-L3", "large"}

	var figs []Figure
	for si, bytes := range sizes {
		fig := Figure{
			ID:     fmt.Sprintf("fig20/%s", labels[si]),
			Title:  fmt.Sprintf("ADWS without work hints, working set %s", topology.FormatBytes(bytes)),
			XLabel: "benchmark",
			YLabel: "improvement of no-hint over hinted (negative = slower)",
		}
		slImpr := Series{Label: "SL-ADWS(w/o hint) vs SL-ADWS"}
		mlImpr := Series{Label: "ML-ADWS(w/o hint) vs ML-ADWS"}
		slVsWS := Series{Label: "SL-ADWS(w/o hint) vs SL-WS"}
		for bi, name := range Fig20Benches {
			if !o.benchSelected(name) {
				continue
			}
			inst := o.buildInstance(name, bytes)
			fig.XTicks = append(fig.XTicks, name)
			x := float64(bi)
			slHint := o.run(inst, runConfig{mode: sim.SLADWS, numa: sim.Interleave})
			slNo := o.run(inst, runConfig{mode: sim.SLADWS, numa: sim.Interleave, noHints: true})
			mlHint := o.run(inst, runConfig{mode: sim.MLADWS, numa: sim.Interleave})
			mlNo := o.run(inst, runConfig{mode: sim.MLADWS, numa: sim.Interleave, noHints: true})
			ws := o.run(inst, runConfig{mode: sim.SLWS, numa: sim.Interleave})
			slImpr.X, slImpr.Y = append(slImpr.X, x), append(slImpr.Y, 1-slNo.Time/slHint.Time)
			mlImpr.X, mlImpr.Y = append(mlImpr.X, x), append(mlImpr.Y, 1-mlNo.Time/mlHint.Time)
			slVsWS.X, slVsWS.Y = append(slVsWS.X, x), append(slVsWS.Y, 1-slNo.Time/ws.Time)
		}
		fig.Series = []Series{slImpr, mlImpr, slVsWS}
		figs = append(figs, fig)
	}
	return figs
}

// Fig21 regenerates the NUMA memory policy study: SL- and ML-ADWS with the
// interleave policy versus the local allocation (parallel first-touch)
// policy, at the largest Fig. 16 working set, reported as improvement of
// local allocation over interleave.
func Fig21(o Options) []Figure {
	o = o.withDefaults()
	sizes := o.sizes()
	largest := sizes[len(sizes)-1]
	fig := Figure{
		ID:     "fig21",
		Title:  fmt.Sprintf("NUMA local allocation vs interleave at %s", topology.FormatBytes(largest)),
		XLabel: "benchmark",
		YLabel: "improvement of local alloc over interleave",
	}
	slImpr := Series{Label: "SL-ADWS"}
	mlImpr := Series{Label: "ML-ADWS"}
	for bi, reg := range workload.Registry {
		if !o.benchSelected(reg.Name) {
			continue
		}
		inst := o.buildInstance(reg.Name, largest)
		fig.XTicks = append(fig.XTicks, reg.Name)
		x := float64(bi)
		slI := o.run(inst, runConfig{mode: sim.SLADWS, numa: sim.Interleave})
		slL := o.run(inst, runConfig{mode: sim.SLADWS, numa: sim.FirstTouch, withInit: true})
		mlI := o.run(inst, runConfig{mode: sim.MLADWS, numa: sim.Interleave})
		mlL := o.run(inst, runConfig{mode: sim.MLADWS, numa: sim.FirstTouch, withInit: true})
		slImpr.X, slImpr.Y = append(slImpr.X, x), append(slImpr.Y, 1-slL.Time/slI.Time)
		mlImpr.X, mlImpr.Y = append(mlImpr.X, x), append(mlImpr.Y, 1-mlL.Time/mlI.Time)
	}
	fig.Series = []Series{slImpr, mlImpr}
	return []Figure{fig}
}
