package figures

import (
	"fmt"

	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/workload"
)

// FigAuto is an extension experiment beyond the paper: its conclusion
// (§8) proposes "automatic switching between SL- and ML-ADWS through
// online workload characterization", observing that one of the two wins on
// every benchmark. This harness implements the natural first version for
// iterative workloads: profile one repetition under each variant, then
// commit to the faster one (an adaptive runtime would do exactly this
// across the early iterations of an iterative computation). The figure
// reports the speedup of SL-ADWS, ML-ADWS, and Auto-ADWS, plus which
// variant Auto chose — Auto should track max(SL, ML) everywhere, closing
// the tradeoff the paper describes on Quicksort vs Decision Tree.
func FigAuto(o Options) []Figure {
	o = o.withDefaults()
	var figs []Figure
	for _, reg := range workload.Registry {
		if !o.benchSelected(reg.Name) {
			continue
		}
		fig := Figure{
			ID:     "figauto/" + reg.Name,
			Title:  fmt.Sprintf("Automatic SL/ML-ADWS switching (%s)", reg.Name),
			XLabel: "working-set",
			YLabel: "speedup over serial",
			Notes: []string{
				"extension beyond the paper: §8's proposed automatic switching,",
				"implemented as profile-one-repetition-per-variant-then-commit",
			},
		}
		sl := Series{Label: "SL-ADWS"}
		ml := Series{Label: "ML-ADWS"}
		auto := Series{Label: "Auto-ADWS"}
		choice := Series{Label: "auto-chose-ML(1=yes)"}
		for _, bytes := range o.sizes() {
			inst := o.buildInstance(reg.Name, bytes)
			serial := o.serial(inst)
			slR := o.run(inst, runConfig{mode: sim.SLADWS, numa: sim.Interleave})
			mlR := o.run(inst, runConfig{mode: sim.MLADWS, numa: sim.Interleave})
			// Auto pays one extra profiling repetition for the variant it
			// rejects; with the paper's 10 measured repetitions that cost
			// amortizes to ~10%, which we charge explicitly.
			autoTime := slR.Time
			choseML := 0.0
			if mlR.Time < slR.Time {
				autoTime = mlR.Time
				choseML = 1
			}
			const profilingShare = 0.1
			autoTime *= 1 + profilingShare

			fig.XTicks = append(fig.XTicks, topology.FormatBytes(bytes))
			x := float64(bytes)
			sl.X, sl.Y = append(sl.X, x), append(sl.Y, slR.Speedup(serial.Time))
			ml.X, ml.Y = append(ml.X, x), append(ml.Y, mlR.Speedup(serial.Time))
			auto.X, auto.Y = append(auto.X, x), append(auto.Y, serial.Time/autoTime)
			choice.X, choice.Y = append(choice.X, x), append(choice.Y, choseML)
		}
		fig.Series = []Series{sl, ml, auto, choice}
		figs = append(figs, fig)
	}
	return figs
}
