// Package figures regenerates the tables and figures of the ADWS paper's
// evaluation (§6) from the simulator: Fig. 16 (speedup vs working-set
// size), Fig. 17 (execution time breakdown), Fig. 18 (cache miss counts),
// Fig. 19 (work-hint sensitivity on RRM), Fig. 20 (no-hint ADWS), Fig. 21
// (NUMA memory policies), plus Table 1 (machine configuration).
//
// Absolute numbers are simulator units; the claims under reproduction are
// the shapes: orderings, ratios, and crossover positions (see
// EXPERIMENTS.md).
package figures

import (
	"fmt"
	"io"
	"strings"

	"github.com/parlab/adws/internal/topology"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a rendered-agnostic figure: labelled series over a common
// x-axis, or grouped rows when X carries category indices.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// XTicks optionally names categorical x positions.
	XTicks []string
	Series []Series
	Notes  []string
}

// Render writes the figure as an aligned text table: one row per x value,
// one column per series.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	// Header.
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	n := 0
	for _, s := range f.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		if len(f.XTicks) > i {
			row[0] = f.XTicks[i]
		} else if len(f.Series) > 0 && len(f.Series[0].X) > i {
			row[0] = formatX(f.Series[0].X[i])
		}
		for j, s := range f.Series {
			if len(s.Y) > i {
				row[j+1] = fmt.Sprintf("%.3g", s.Y[i])
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for j, c := range row {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	for _, row := range rows {
		for j, c := range row {
			fmt.Fprintf(w, "%-*s  ", widths[j], c)
		}
		fmt.Fprintln(w)
	}
	for _, note := range f.Notes {
		fmt.Fprintf(w, "# %s\n", note)
	}
	fmt.Fprintln(w)
}

// CSV writes the figure as comma-separated values.
func (f Figure) CSV(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	n := 0
	for _, s := range f.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		if len(f.XTicks) > i {
			row[0] = f.XTicks[i]
		} else if len(f.Series) > 0 && len(f.Series[0].X) > i {
			row[0] = fmt.Sprintf("%g", f.Series[0].X[i])
		}
		for j, s := range f.Series {
			if len(s.Y) > i {
				row[j+1] = fmt.Sprintf("%g", s.Y[i])
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func formatX(x float64) string {
	if x >= 1<<20 && x == float64(int64(x)) {
		return topology.FormatBytes(int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Table1 renders the simulated machine configuration, mirroring the
// paper's Table 1.
func Table1(m *topology.Machine, w io.Writer) {
	fmt.Fprintf(w, "== Table 1: Simulated machine configuration ==\n")
	fmt.Fprintf(w, "Machine           %s\n", m.Name)
	fmt.Fprintf(w, "# of workers      %d\n", m.NumWorkers())
	for level := 1; level <= m.MaxLevel(); level++ {
		caches := m.LevelCaches(level)
		kind := "shared"
		if level == m.MaxLevel() {
			kind = "private"
		}
		fmt.Fprintf(w, "Level-%d caches    %d x %s (%s)\n", level, len(caches),
			topology.FormatBytes(caches[0].Capacity), kind)
	}
	fmt.Fprintf(w, "Aggregate shared  %s (the Fig. 16 dashed line)\n",
		topology.FormatBytes(m.AggregateCapacity(1)))
	fmt.Fprintf(w, "NUMA nodes        %d\n\n", m.NumNUMANodes())
}
