// Package benchfmt defines the schema of the repo's committed perf
// trajectory points (BENCH_NNNN.json): one file per PR that changed
// performance-relevant code, produced by scripts/bench.sh and validated
// by its -smoke mode in CI. The schema is versioned so future points
// stay diffable against old ones; fields are only ever added, never
// renamed or removed, within a schema version.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/parlab/adws/internal/metrics"
)

// SchemaVersion is the current trajectory-point schema. Bump only when
// an existing field changes meaning; adding fields keeps the version.
const SchemaVersion = 1

// Quantiles is a histogram percentile summary (count, p50/p90/p99, max).
// Serve-side values are in seconds; the simulator's task-span values are
// in virtual time units.
type Quantiles = metrics.Quantiles

// Point is one committed trajectory point.
type Point struct {
	SchemaVersion int `json:"schema_version"`
	// ID names the point, conventionally the BENCH file's own number
	// (e.g. "0006") so diffs across points are self-describing.
	ID string `json:"id"`
	// Sim carries the raw `adwsbench -json` result of the reference
	// traced simulation (its own fields are schema-versioned by
	// adwsbench itself and embedded verbatim).
	Sim json.RawMessage `json:"sim,omitempty"`
	// Serve carries the real-runtime serving measurement.
	Serve *Serve `json:"serve,omitempty"`
	// Cluster carries the multi-pool routing comparison: the same
	// repeated-key job stream driven through a cluster once per routing
	// policy.
	Cluster *Cluster `json:"cluster,omitempty"`
	// Admission carries the FIFO-vs-SLO admission comparison: the same
	// class cohorts driven through a fresh pool once per admission
	// policy.
	Admission *Admission `json:"admission,omitempty"`
}

// Serve is the serve-side half of a trajectory point: adwsload drives
// concurrent jobs through a real pool and summarizes the latency
// histograms the runtime and server recorded.
type Serve struct {
	Workers  int    `json:"workers"`
	Sched    string `json:"sched"`
	Jobs     int    `json:"jobs"`
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Seed     uint64 `json:"seed"`

	ElapsedS      float64 `json:"elapsed_s"`
	JobsPerSecond float64 `json:"jobs_per_second"`

	// Admission outcomes.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`

	// Pool scheduling counters over the run.
	Tasks         int64 `json:"tasks"`
	Steals        int64 `json:"steals"`
	StealAttempts int64 `json:"steal_attempts"`
	Migrations    int64 `json:"migrations"`
	Parks         int64 `json:"parks"`
	Wakes         int64 `json:"wakes"`

	// Latency distributions, in seconds.
	QueueWait    Quantiles `json:"queue_wait"`
	Service      Quantiles `json:"service"`
	E2E          Quantiles `json:"e2e"`
	Park         Quantiles `json:"park"`
	StealAttempt Quantiles `json:"steal_attempt"`
	WakeToRun    Quantiles `json:"wake_to_run"`

	// Watchdog trigger counters by reason, captured before submissions
	// started and after every job finished (nil when the watchdog is
	// disabled). Diffing the two attributes stall/burst/burn verdicts to
	// this load run.
	WatchdogBefore map[string]int64 `json:"watchdog_before,omitempty"`
	WatchdogAfter  map[string]int64 `json:"watchdog_after,omitempty"`
}

// Cluster is the routing-comparison half of a trajectory point: adwsload
// -compare drives an identical repeated-key stream through a fresh
// multi-pool cluster under each listed policy, so the policies' warm-hit
// rates and end-to-end latencies are directly diffable.
type Cluster struct {
	// Pools are the per-pool worker counts.
	Pools    []int  `json:"pools"`
	Sched    string `json:"sched"`
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Seed     uint64 `json:"seed"`
	// Keys is the distinct workload-key count and Rounds how many times
	// the stream repeats each key (kept coprime to len(Pools) so
	// round-robin cannot stripe into accidental warmness).
	Keys   int `json:"keys"`
	Rounds int `json:"rounds"`

	Policies []ClusterPolicy `json:"policies"`
}

// ClusterPolicy is one policy's run over the shared stream.
type ClusterPolicy struct {
	Policy        string  `json:"policy"`
	ElapsedS      float64 `json:"elapsed_s"`
	JobsPerSecond float64 `json:"jobs_per_second"`

	// Jobs counts admitted jobs; Warm/Cold/Spill/Moved partition them by
	// routing verdict, and PerPoolJobs (one entry per pool) by placement.
	Jobs        int64   `json:"jobs"`
	Warm        int64   `json:"warm"`
	Cold        int64   `json:"cold"`
	Spill       int64   `json:"spill"`
	Moved       int64   `json:"moved"`
	Rejected    int64   `json:"rejected"`
	WarmRate    float64 `json:"warm_rate"`
	PerPoolJobs []int64 `json:"per_pool_jobs"`

	// E2E is the client-observed submit-to-done latency distribution, in
	// seconds, computed from per-job samples (not pool histograms, which
	// would mix pools).
	E2E Quantiles `json:"e2e"`
}

// Admission is the admission-policy comparison half of a trajectory
// point: adwsload -admcompare drives identical per-class cohorts (a
// large batch backlog submitted ahead of a small interactive cohort)
// through a fresh single pool once per admission policy, so FIFO and
// SLO ordering are directly diffable on per-class latency under the
// same contention.
type Admission struct {
	Workers  int    `json:"workers"`
	Sched    string `json:"sched"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	// Tenants is how many synthetic tenants the cohorts' jobs round-robin
	// across (for the per-class Jain fairness index).
	Tenants int `json:"tenants"`
	// Cohorts describes the shared stream, in submission order: Jobs
	// submissions of the workload at size N under class Class.
	Cohorts []AdmissionCohort `json:"cohorts"`

	Policies []AdmissionPolicy `json:"policies"`
}

// AdmissionCohort is one class's slice of the shared stream.
type AdmissionCohort struct {
	Class string `json:"class"`
	Jobs  int    `json:"jobs"`
	N     int    `json:"n"`
}

// AdmissionPolicy is one admission policy's run over the shared stream.
type AdmissionPolicy struct {
	Policy        string  `json:"policy"`
	ElapsedS      float64 `json:"elapsed_s"`
	JobsPerSecond float64 `json:"jobs_per_second"`
	// Jobs counts completed jobs (the comparison submits no deadlines and
	// no rate limits, so every cohort job must complete).
	Jobs int64 `json:"jobs"`

	Classes []AdmissionClass `json:"classes"`
}

// AdmissionClass is one class's latency summary under one policy.
type AdmissionClass struct {
	Class string `json:"class"`
	Jobs  int64  `json:"jobs"`
	// E2E is the client-observed submit-to-done distribution and
	// QueueWait the server-recorded admission-queue wait, in seconds.
	E2E       Quantiles `json:"e2e"`
	QueueWait Quantiles `json:"queue_wait"`
	// Jain is the Jain fairness index over per-tenant mean e2e latency
	// within the class (1 = perfectly fair), 0 if not computed.
	Jain float64 `json:"jain,omitempty"`
}

// Validate checks the invariants every committed trajectory point must
// hold; scripts/bench.sh -smoke runs it over all BENCH_*.json in CI.
func (p *Point) Validate() error {
	if p.SchemaVersion != SchemaVersion {
		return fmt.Errorf("schema_version %d, want %d", p.SchemaVersion, SchemaVersion)
	}
	if p.ID == "" {
		return fmt.Errorf("missing id")
	}
	if len(p.Sim) == 0 && p.Serve == nil && p.Cluster == nil && p.Admission == nil {
		return fmt.Errorf("point has no sim, serve, cluster, or admission data")
	}
	if len(p.Sim) > 0 {
		var sim struct {
			SchemaVersion int     `json:"schema_version"`
			Bench         string  `json:"bench"`
			Mode          string  `json:"mode"`
			Time          float64 `json:"time"`
		}
		if err := json.Unmarshal(p.Sim, &sim); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if sim.SchemaVersion != SchemaVersion {
			return fmt.Errorf("sim: schema_version %d, want %d", sim.SchemaVersion, SchemaVersion)
		}
		if sim.Bench == "" || sim.Mode == "" {
			return fmt.Errorf("sim: missing bench or mode")
		}
		if sim.Time <= 0 {
			return fmt.Errorf("sim: nonpositive time %g", sim.Time)
		}
	}
	if s := p.Serve; s != nil {
		if s.Workers <= 0 || s.Jobs <= 0 {
			return fmt.Errorf("serve: nonpositive workers (%d) or jobs (%d)", s.Workers, s.Jobs)
		}
		if s.Workload == "" || s.Sched == "" {
			return fmt.Errorf("serve: missing workload or sched")
		}
		if s.Completed != s.Jobs64() {
			return fmt.Errorf("serve: completed %d of %d jobs", s.Completed, s.Jobs)
		}
		for _, q := range []struct {
			name string
			q    Quantiles
		}{
			{"queue_wait", s.QueueWait}, {"service", s.Service}, {"e2e", s.E2E},
			{"park", s.Park}, {"steal_attempt", s.StealAttempt}, {"wake_to_run", s.WakeToRun},
		} {
			if err := validQuantiles(q.q); err != nil {
				return fmt.Errorf("serve: %s: %w", q.name, err)
			}
		}
		if s.E2E.Count != s.Jobs64() || s.Service.Count != s.Jobs64() {
			return fmt.Errorf("serve: e2e count %d / service count %d, want %d jobs",
				s.E2E.Count, s.Service.Count, s.Jobs)
		}
	}
	if c := p.Cluster; c != nil {
		if err := c.validate(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	if a := p.Admission; a != nil {
		if err := a.validate(); err != nil {
			return fmt.Errorf("admission: %w", err)
		}
	}
	return nil
}

func (a *Admission) validate() error {
	if a.Workers <= 0 {
		return fmt.Errorf("nonpositive workers %d", a.Workers)
	}
	if a.Workload == "" || a.Sched == "" {
		return fmt.Errorf("missing workload or sched")
	}
	if a.Tenants <= 0 {
		return fmt.Errorf("nonpositive tenants %d", a.Tenants)
	}
	if len(a.Cohorts) == 0 {
		return fmt.Errorf("no cohorts")
	}
	var total int64
	cohortJobs := make(map[string]int64)
	for _, co := range a.Cohorts {
		if co.Class == "" {
			return fmt.Errorf("cohort with no class")
		}
		if co.Jobs <= 0 || co.N <= 0 {
			return fmt.Errorf("cohort %s: nonpositive jobs (%d) or n (%d)", co.Class, co.Jobs, co.N)
		}
		total += int64(co.Jobs)
		cohortJobs[co.Class] += int64(co.Jobs)
	}
	if len(a.Policies) == 0 {
		return fmt.Errorf("no policies")
	}
	for _, pol := range a.Policies {
		if pol.Policy == "" {
			return fmt.Errorf("policy with no name")
		}
		if pol.ElapsedS <= 0 {
			return fmt.Errorf("%s: nonpositive elapsed %g", pol.Policy, pol.ElapsedS)
		}
		if pol.Jobs != total {
			return fmt.Errorf("%s: %d jobs, want the cohorts' %d", pol.Policy, pol.Jobs, total)
		}
		var sum int64
		for _, cl := range pol.Classes {
			if cl.Class == "" {
				return fmt.Errorf("%s: class summary with no name", pol.Policy)
			}
			if want, ok := cohortJobs[cl.Class]; ok && cl.Jobs != want {
				return fmt.Errorf("%s: class %s has %d jobs, want the cohorts' %d",
					pol.Policy, cl.Class, cl.Jobs, want)
			}
			sum += cl.Jobs
			if err := validQuantiles(cl.E2E); err != nil {
				return fmt.Errorf("%s: class %s: e2e: %w", pol.Policy, cl.Class, err)
			}
			if err := validQuantiles(cl.QueueWait); err != nil {
				return fmt.Errorf("%s: class %s: queue_wait: %w", pol.Policy, cl.Class, err)
			}
			if cl.E2E.Count != cl.Jobs {
				return fmt.Errorf("%s: class %s: e2e count %d, want %d jobs",
					pol.Policy, cl.Class, cl.E2E.Count, cl.Jobs)
			}
			if cl.Jain < 0 || cl.Jain > 1 {
				return fmt.Errorf("%s: class %s: jain %g outside [0, 1]", pol.Policy, cl.Class, cl.Jain)
			}
		}
		if sum != total {
			return fmt.Errorf("%s: class jobs sum to %d, want %d", pol.Policy, sum, total)
		}
	}
	return nil
}

func (c *Cluster) validate() error {
	if len(c.Pools) == 0 {
		return fmt.Errorf("no pools")
	}
	for i, w := range c.Pools {
		if w <= 0 {
			return fmt.Errorf("pool %d has nonpositive workers %d", i, w)
		}
	}
	if c.Workload == "" || c.Sched == "" {
		return fmt.Errorf("missing workload or sched")
	}
	if c.Keys <= 0 || c.Rounds <= 0 {
		return fmt.Errorf("nonpositive keys (%d) or rounds (%d)", c.Keys, c.Rounds)
	}
	if len(c.Policies) == 0 {
		return fmt.Errorf("no policies")
	}
	for _, pol := range c.Policies {
		if pol.Policy == "" {
			return fmt.Errorf("policy with no name")
		}
		if pol.ElapsedS <= 0 || pol.Jobs <= 0 {
			return fmt.Errorf("%s: nonpositive elapsed (%g) or jobs (%d)", pol.Policy, pol.ElapsedS, pol.Jobs)
		}
		if got := pol.Warm + pol.Cold + pol.Spill + pol.Moved; got != pol.Jobs {
			return fmt.Errorf("%s: verdicts sum to %d, want %d jobs", pol.Policy, got, pol.Jobs)
		}
		if len(pol.PerPoolJobs) != len(c.Pools) {
			return fmt.Errorf("%s: %d per-pool counts for %d pools", pol.Policy, len(pol.PerPoolJobs), len(c.Pools))
		}
		var sum int64
		for _, n := range pol.PerPoolJobs {
			sum += n
		}
		if sum != pol.Jobs {
			return fmt.Errorf("%s: per-pool counts sum to %d, want %d jobs", pol.Policy, sum, pol.Jobs)
		}
		if pol.WarmRate < 0 || pol.WarmRate > 1 {
			return fmt.Errorf("%s: warm_rate %g outside [0, 1]", pol.Policy, pol.WarmRate)
		}
		if err := validQuantiles(pol.E2E); err != nil {
			return fmt.Errorf("%s: e2e: %w", pol.Policy, err)
		}
		if pol.E2E.Count != pol.Jobs {
			return fmt.Errorf("%s: e2e count %d, want %d jobs", pol.Policy, pol.E2E.Count, pol.Jobs)
		}
	}
	return nil
}

// Jobs64 returns the job count widened for comparison against counters.
func (s *Serve) Jobs64() int64 { return int64(s.Jobs) }

func validQuantiles(q Quantiles) error {
	if q.Count < 0 {
		return fmt.Errorf("negative count %d", q.Count)
	}
	if q.Count == 0 {
		return nil // never recorded: all zeros is the only valid shape
	}
	if q.P50 < 0 || q.P50 > q.P90 || q.P90 > q.P99 || q.P99 > q.Max {
		return fmt.Errorf("quantiles not monotone: p50=%g p90=%g p99=%g max=%g",
			q.P50, q.P90, q.P99, q.Max)
	}
	return nil
}

// ReadFile loads and validates one trajectory point.
func ReadFile(path string) (Point, error) {
	var p Point
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
