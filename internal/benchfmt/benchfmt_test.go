package benchfmt

import (
	"strings"
	"testing"
)

func validCluster() *Cluster {
	return &Cluster{
		Pools: []int{4, 4}, Sched: "adws", Workload: "fib", N: 20, Seed: 1,
		Keys: 7, Rounds: 3,
		Policies: []ClusterPolicy{{
			Policy: "affinity", ElapsedS: 0.5, JobsPerSecond: 42,
			Jobs: 21, Warm: 14, Cold: 7, WarmRate: 14.0 / 21,
			PerPoolJobs: []int64{12, 9},
			E2E:         Quantiles{Count: 21, P50: 0.001, P90: 0.002, P99: 0.003, Max: 0.004},
		}},
	}
}

func TestClusterPointValidates(t *testing.T) {
	pt := Point{SchemaVersion: SchemaVersion, ID: "0007", Cluster: validCluster()}
	if err := pt.Validate(); err != nil {
		t.Fatalf("valid cluster point rejected: %v", err)
	}
}

func TestClusterValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Cluster)
		want string
	}{
		{"no pools", func(c *Cluster) { c.Pools = nil }, "no pools"},
		{"verdict sum", func(c *Cluster) { c.Policies[0].Warm = 13 }, "verdicts sum"},
		{"per-pool length", func(c *Cluster) { c.Policies[0].PerPoolJobs = []int64{21} }, "per-pool"},
		{"per-pool sum", func(c *Cluster) { c.Policies[0].PerPoolJobs = []int64{12, 10} }, "per-pool counts sum"},
		{"warm rate", func(c *Cluster) { c.Policies[0].WarmRate = 1.5 }, "warm_rate"},
		{"e2e count", func(c *Cluster) { c.Policies[0].E2E.Count = 20 }, "e2e count"},
		{"no policies", func(c *Cluster) { c.Policies = nil }, "no policies"},
	}
	for _, tc := range cases {
		c := validCluster()
		tc.mut(c)
		pt := Point{SchemaVersion: SchemaVersion, ID: "x", Cluster: c}
		err := pt.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestEmptyPointRejected(t *testing.T) {
	pt := Point{SchemaVersion: SchemaVersion, ID: "x"}
	if err := pt.Validate(); err == nil {
		t.Error("point with no halves validated")
	}
}
