package benchfmt

import (
	"strings"
	"testing"
)

func validCluster() *Cluster {
	return &Cluster{
		Pools: []int{4, 4}, Sched: "adws", Workload: "fib", N: 20, Seed: 1,
		Keys: 7, Rounds: 3,
		Policies: []ClusterPolicy{{
			Policy: "affinity", ElapsedS: 0.5, JobsPerSecond: 42,
			Jobs: 21, Warm: 14, Cold: 7, WarmRate: 14.0 / 21,
			PerPoolJobs: []int64{12, 9},
			E2E:         Quantiles{Count: 21, P50: 0.001, P90: 0.002, P99: 0.003, Max: 0.004},
		}},
	}
}

func TestClusterPointValidates(t *testing.T) {
	pt := Point{SchemaVersion: SchemaVersion, ID: "0007", Cluster: validCluster()}
	if err := pt.Validate(); err != nil {
		t.Fatalf("valid cluster point rejected: %v", err)
	}
}

func TestClusterValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Cluster)
		want string
	}{
		{"no pools", func(c *Cluster) { c.Pools = nil }, "no pools"},
		{"verdict sum", func(c *Cluster) { c.Policies[0].Warm = 13 }, "verdicts sum"},
		{"per-pool length", func(c *Cluster) { c.Policies[0].PerPoolJobs = []int64{21} }, "per-pool"},
		{"per-pool sum", func(c *Cluster) { c.Policies[0].PerPoolJobs = []int64{12, 10} }, "per-pool counts sum"},
		{"warm rate", func(c *Cluster) { c.Policies[0].WarmRate = 1.5 }, "warm_rate"},
		{"e2e count", func(c *Cluster) { c.Policies[0].E2E.Count = 20 }, "e2e count"},
		{"no policies", func(c *Cluster) { c.Policies = nil }, "no policies"},
	}
	for _, tc := range cases {
		c := validCluster()
		tc.mut(c)
		pt := Point{SchemaVersion: SchemaVersion, ID: "x", Cluster: c}
		err := pt.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestEmptyPointRejected(t *testing.T) {
	pt := Point{SchemaVersion: SchemaVersion, ID: "x"}
	if err := pt.Validate(); err == nil {
		t.Error("point with no halves validated")
	}
}

func validAdmission() *Admission {
	return &Admission{
		Workers: 8, Sched: "adws", Workload: "quicksort", Seed: 1, Tenants: 2,
		Cohorts: []AdmissionCohort{
			{Class: "batch", Jobs: 4, N: 200000},
			{Class: "interactive", Jobs: 3, N: 20000},
		},
		Policies: []AdmissionPolicy{{
			Policy: "slo", ElapsedS: 0.8, JobsPerSecond: 8.75, Jobs: 7,
			Classes: []AdmissionClass{
				{Class: "batch", Jobs: 4, Jain: 0.99,
					E2E:       Quantiles{Count: 4, P50: 0.1, P90: 0.2, P99: 0.3, Max: 0.4},
					QueueWait: Quantiles{Count: 4, P50: 0.05, P90: 0.1, P99: 0.2, Max: 0.3}},
				{Class: "interactive", Jobs: 3, Jain: 1,
					E2E:       Quantiles{Count: 3, P50: 0.01, P90: 0.02, P99: 0.03, Max: 0.04},
					QueueWait: Quantiles{Count: 3, P50: 0.001, P90: 0.002, P99: 0.003, Max: 0.004}},
			},
		}},
	}
}

func TestAdmissionPointValidates(t *testing.T) {
	pt := Point{SchemaVersion: SchemaVersion, ID: "0008", Admission: validAdmission()}
	if err := pt.Validate(); err != nil {
		t.Fatalf("valid admission point rejected: %v", err)
	}
}

func TestAdmissionValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Admission)
		want string
	}{
		{"no cohorts", func(a *Admission) { a.Cohorts = nil }, "no cohorts"},
		{"no policies", func(a *Admission) { a.Policies = nil }, "no policies"},
		{"nonpositive tenants", func(a *Admission) { a.Tenants = 0 }, "tenants"},
		{"policy jobs mismatch", func(a *Admission) { a.Policies[0].Jobs = 6 }, "want the cohorts'"},
		{"class jobs mismatch", func(a *Admission) {
			a.Policies[0].Classes[0].Jobs = 3
		}, "want the cohorts'"},
		{"class sum", func(a *Admission) {
			// Keep per-class counts plausible but move a job to a class
			// the cohorts never declared, so only the sum check trips.
			a.Policies[0].Classes[1].Class = "mystery"
			a.Policies[0].Classes[1].Jobs = 2
			a.Policies[0].Classes[1].E2E.Count = 2
		}, "sum to"},
		{"e2e count", func(a *Admission) { a.Policies[0].Classes[0].E2E.Count = 5 }, "e2e count"},
		{"jain range", func(a *Admission) { a.Policies[0].Classes[0].Jain = 1.2 }, "jain"},
		{"nonmonotone queue wait", func(a *Admission) {
			a.Policies[0].Classes[0].QueueWait.P99 = 0.01
		}, "queue_wait"},
	}
	for _, tc := range cases {
		a := validAdmission()
		tc.mut(a)
		pt := Point{SchemaVersion: SchemaVersion, ID: "x", Admission: a}
		err := pt.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
