package trace

import (
	"testing"
	"unsafe"
)

// The tracer keeps one ring per worker in a single slice, so the layout —
// not a sync primitive — is what stops worker i's cursor stores from
// invalidating worker i+1's cursor or buffer header. adwsvet's atomicpad
// analyzer enforces the //adws:padded annotations; this test pins the
// compiled layout.
func TestRingLayout(t *testing.T) {
	const cacheLine = 64
	var r ring
	if got := unsafe.Offsetof(r.cursor); got != 0 {
		t.Errorf("Offsetof(ring.cursor) = %d, want 0", got)
	}
	if got := unsafe.Offsetof(r.buf); got%cacheLine != 0 || got < cacheLine {
		t.Errorf("Offsetof(ring.buf) = %d, want a cache-line boundary past the cursor's line", got)
	}
	if got := unsafe.Sizeof(r); got%cacheLine != 0 {
		t.Errorf("Sizeof(ring) = %d, want a multiple of %d", got, cacheLine)
	}
	// Adjacent rings in the tracer's slice must not share a line.
	rings := make([]ring, 2)
	stride := uintptr(unsafe.Pointer(&rings[1])) - uintptr(unsafe.Pointer(&rings[0]))
	if stride%cacheLine != 0 {
		t.Errorf("ring slice stride = %d, want a multiple of %d", stride, cacheLine)
	}
}
