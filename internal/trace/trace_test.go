package trace

import (
	"sync"
	"testing"
)

func TestRecordAndEvents(t *testing.T) {
	tr := New(2, 8)
	tr.Record(0, Event{Type: EvTaskBegin, Time: 10, Task: 1})
	tr.Record(1, Event{Type: EvTaskBegin, Time: 5, Task: 2})
	tr.Record(0, Event{Type: EvTaskEnd, Time: 20, Task: 1})
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Sorted by time; Worker filled in by Record.
	if evs[0].Time != 5 || evs[0].Worker != 1 {
		t.Errorf("first event = %+v, want time 5 on worker 1", evs[0])
	}
	if evs[2].Type != EvTaskEnd || evs[2].Worker != 0 {
		t.Errorf("last event = %+v, want task-end on worker 0", evs[2])
	}
}

// TestWraparound verifies the ring drops the oldest events and the drop
// counter grows monotonically.
func TestWraparound(t *testing.T) {
	const capacity = 8
	tr := New(1, capacity)
	for i := 0; i < 20; i++ {
		tr.Record(0, Event{Type: EvStealAttempt, Time: int64(i)})
	}
	if got, want := tr.Drops(), int64(20-capacity); got != want {
		t.Errorf("Drops() = %d, want %d", got, want)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("got %d surviving events, want %d", len(evs), capacity)
	}
	// The survivors are the newest `capacity` events, oldest first.
	for i, ev := range evs {
		if want := int64(20 - capacity + i); ev.Time != want {
			t.Errorf("event %d has time %d, want %d", i, ev.Time, want)
		}
	}
	prev := tr.Drops()
	for i := 0; i < 5; i++ {
		tr.Record(0, Event{Type: EvStealAttempt, Time: int64(20 + i)})
		if d := tr.Drops(); d < prev {
			t.Fatalf("drop counter decreased: %d -> %d", prev, d)
		} else {
			prev = d
		}
	}
	if prev != 17 {
		t.Errorf("final drops = %d, want 17", prev)
	}
}

// TestConcurrentWriters fills every ring from its own goroutine (the
// single-writer-per-ring contract) and checks nothing is lost or torn.
// Run under -race (scripts/check.sh) to verify the lock-free hot path.
func TestConcurrentWriters(t *testing.T) {
	const workers, perWorker = 8, 10000
	const capacity = 1 << 14 // > perWorker: nothing dropped
	tr := New(workers, capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Record(w, Event{Type: EvTaskBegin, Time: int64(i), Task: int64(w)})
			}
		}(w)
	}
	wg.Wait()
	if d := tr.Drops(); d != 0 {
		t.Fatalf("Drops() = %d, want 0", d)
	}
	evs := tr.Events()
	if len(evs) != workers*perWorker {
		t.Fatalf("got %d events, want %d", len(evs), workers*perWorker)
	}
	counts := make([]int, workers)
	for _, ev := range evs {
		if int64(ev.Worker) != ev.Task {
			t.Fatalf("torn event: worker %d carries task %d", ev.Worker, ev.Task)
		}
		counts[ev.Worker]++
	}
	for w, n := range counts {
		if n != perWorker {
			t.Errorf("worker %d recorded %d events, want %d", w, n, perWorker)
		}
	}
}

func TestReset(t *testing.T) {
	tr := New(1, 4)
	for i := 0; i < 10; i++ {
		tr.Record(0, Event{Type: EvTaskBegin, Time: int64(i)})
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Drops() != 0 {
		t.Errorf("after Reset: %d events, %d drops, want 0/0", len(tr.Events()), tr.Drops())
	}
}

func TestSummarize(t *testing.T) {
	tr := New(2, 64)
	// Worker 0: a task with a wait; worker 1 steals from it.
	tr.Record(0, Event{Type: EvTaskBegin, Time: 0, Task: 1, RangeLo: 0, RangeHi: 2})
	tr.Record(0, Event{Type: EvWaitEnter, Time: 10, Task: 1})
	tr.Record(1, Event{Type: EvStealAttempt, Time: 11, Self: 1, Victim: 0, RangeLo: 0, RangeHi: 2})
	tr.Record(1, Event{Type: EvStealSuccess, Time: 12, Self: 1, Victim: 0, Task: 2, RangeLo: 0, RangeHi: 2})
	tr.Record(1, Event{Type: EvTaskBegin, Time: 13, Task: 2})
	tr.Record(1, Event{Type: EvTaskEnd, Time: 20, Task: 2})
	tr.Record(0, Event{Type: EvWaitExit, Time: 21, Task: 1})
	tr.Record(0, Event{Type: EvTaskEnd, Time: 22, Task: 1})
	tr.Record(0, Event{Type: EvMigration, Time: 23, Self: 0, Victim: 1, Task: 3})
	tr.Record(1, Event{Type: EvStealAttempt, Time: 24, Self: 1, Victim: 0})
	tr.Record(1, Event{Type: EvStealFail, Time: 25, Self: 1})
	tr.Record(0, Event{Type: EvBoundary, Time: 26, Victim: BoundaryTie, Depth: 1, Task: 7})
	tr.Record(0, Event{Type: EvBoundary, Time: 27, Victim: BoundaryUntie, Depth: 1, Task: 7})
	// Worker 1 runs dry, parks, and is woken 15 units later; a dangling
	// park (no wake recorded yet) must not contribute park time.
	tr.Record(1, Event{Type: EvPark, Time: 30})
	tr.Record(1, Event{Type: EvWake, Time: 45})
	tr.Record(0, Event{Type: EvPark, Time: 50})

	s := tr.Summarize()
	if s.Tasks != 2 || s.Steals != 1 || s.StealAttempts != 2 || s.StealFails != 1 || s.Migrations != 1 {
		t.Errorf("counts = tasks %d steals %d attempts %d fails %d migrations %d",
			s.Tasks, s.Steals, s.StealAttempts, s.StealFails, s.Migrations)
	}
	if s.WaitCount != 1 || s.WaitTime != 11 {
		t.Errorf("waits = %d/%d, want 1/11", s.WaitCount, s.WaitTime)
	}
	if len(s.StealDistance) != 2 || s.StealDistance[1] != 1 {
		t.Errorf("steal distance histogram = %v, want one steal at distance 1", s.StealDistance)
	}
	if s.DominantHits != 1 || s.DominantMisses != 0 {
		t.Errorf("dominant hits/misses = %d/%d, want 1/0", s.DominantHits, s.DominantMisses)
	}
	if got := s.DominantGroupHitRate(); got != 1 {
		t.Errorf("DominantGroupHitRate = %v, want 1", got)
	}
	if got := s.StealSuccessRate(); got != 0.5 {
		t.Errorf("StealSuccessRate = %v, want 0.5", got)
	}
	if s.Ties != 1 || s.Unties != 1 || s.Flattens != 0 {
		t.Errorf("boundaries = ties %d unties %d flattens %d", s.Ties, s.Unties, s.Flattens)
	}
	if s.Parks != 2 || s.Wakes != 1 || s.ParkTime != 15 {
		t.Errorf("parking = parks %d wakes %d time %d, want 2/1/15", s.Parks, s.Wakes, s.ParkTime)
	}
	if s.PerWorker[1].Parks != 1 || s.PerWorker[1].Wakes != 1 || s.PerWorker[1].ParkTime != 15 {
		t.Errorf("per-worker parking wrong: %+v", s.PerWorker[1])
	}
	if s.PerWorker[0].Tasks != 1 || s.PerWorker[1].Tasks != 1 || s.PerWorker[1].Steals != 1 {
		t.Errorf("per-worker breakdown wrong: %+v", s.PerWorker)
	}
	if s.String() == "" {
		t.Error("String() is empty")
	}
}

func TestStealRatio(t *testing.T) {
	if got := StealRatio(3, 10); got != "steals=3/10" {
		t.Errorf("StealRatio = %q", got)
	}
}
