package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a small deterministic trace exercising every event kind,
// including a wraparound-orphaned end (worker 1's stray EvTaskEnd) and an
// unclosed begin (worker 0's wait).
func goldenEvents() []Event {
	tr := New(2, 64)
	tr.Record(0, Event{Type: EvTaskBegin, Time: 1000, Task: 1, Depth: 0, RangeLo: 0, RangeHi: 2})
	tr.Record(0, Event{Type: EvWaitEnter, Time: 2000, Task: 1, Depth: 1})
	tr.Record(1, Event{Type: EvTaskEnd, Time: 2500, Task: 99}) // orphaned end
	tr.Record(1, Event{Type: EvStealAttempt, Time: 3000, Self: 1, Victim: 0, RangeLo: 0, RangeHi: 2})
	tr.Record(1, Event{Type: EvStealSuccess, Time: 3500, Self: 1, Victim: 0, Task: 2, RangeLo: 0, RangeHi: 2})
	tr.Record(1, Event{Type: EvTaskBegin, Time: 4000, Task: 2, Depth: 1, RangeLo: 1, RangeHi: 1.5})
	tr.Record(0, Event{Type: EvMigration, Time: 4200, Self: 0, Victim: 1, Task: 3})
	tr.Record(0, Event{Type: EvBoundary, Time: 4300, Victim: BoundaryFlatten, Depth: 2, Task: 5})
	tr.Record(1, Event{Type: EvStealFail, Time: 4400, Self: 1, RangeLo: 0, RangeHi: 2})
	tr.Record(1, Event{Type: EvTaskEnd, Time: 5000, Task: 2, Depth: 1})
	return tr.Events()
}

// TestChromeTraceValidJSON decodes the exporter's output and checks the
// structural invariants Perfetto needs: valid JSON, one named track per
// worker, balanced B/E per track.
func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents(), 2); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.Unit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", f.Unit)
	}
	threads := map[float64]bool{}
	open := map[float64]int{}
	for _, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		tid, _ := ev["tid"].(float64)
		switch ph {
		case "M":
			if ev["name"] == "thread_name" {
				threads[tid] = true
			}
		case "B":
			open[tid]++
		case "E":
			open[tid]--
			if open[tid] < 0 {
				t.Fatalf("unbalanced E on tid %v", tid)
			}
		}
	}
	if !threads[0] || !threads[1] {
		t.Errorf("missing thread_name metadata: %v", threads)
	}
	for tid, n := range open {
		if n != 0 {
			t.Errorf("tid %v has %d unclosed spans", tid, n)
		}
	}
}

// TestChromeTraceGolden pins the exact exporter output. Regenerate with
// `go test ./internal/trace -run Golden -update` after intentional format
// changes.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents(), 2); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s\ngot:  %s\nwant: %s", golden, buf.Bytes(), want)
	}
}

// TestChromeTraceEmpty ensures an event-free tracer still produces a
// loadable file.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(3, 4).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}
