package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Perfetto and chrome://tracing both consume it.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the tracer's events as Chrome trace-event JSON
// with one track (tid) per worker. The tracer must be quiescent.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Events(), t.NumWorkers())
}

// WriteChromeTrace renders events (as returned by Tracer.Events: merged and
// time-sorted) for `workers` workers. Ring wraparound can orphan begin/end
// pairs; unmatched ends are dropped and unmatched begins are closed at the
// last timestamp, so the output always loads.
func WriteChromeTrace(w io.Writer, events []Event, workers int) error {
	out := chromeFile{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{
		{Ph: "M", Name: "process_name", Pid: 0,
			Args: map[string]any{"name": "adws scheduler"}},
	}}
	for i := 0; i < workers; i++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Ph: "M", Name: "thread_name", Pid: 0, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", i)},
		})
	}

	var t0, tLast int64
	if len(events) > 0 {
		t0, tLast = events[0].Time, events[len(events)-1].Time
	}
	us := func(t int64) float64 { return float64(t-t0) / 1000 }

	// open counts currently open B events per worker so wraparound-orphaned
	// E events can be skipped and dangling B events closed at the end.
	open := make([]int, workers)
	for _, ev := range events {
		tid := int(ev.Worker)
		ce := chromeEvent{Ts: us(ev.Time), Pid: 0, Tid: tid}
		switch ev.Type {
		case EvTaskBegin:
			ce.Ph, ce.Cat = "B", "task"
			ce.Name = fmt.Sprintf("task %d", ev.Task)
			ce.Args = map[string]any{"depth": ev.Depth}
			if ev.RangeHi > ev.RangeLo {
				ce.Args["range"] = rangeString(ev.RangeLo, ev.RangeHi)
			}
			if ev.Job != 0 {
				ce.Args["job"] = ev.Job
			}
			open[tid]++
		case EvWaitEnter:
			ce.Ph, ce.Cat, ce.Name = "B", "wait", "wait"
			ce.Args = map[string]any{"task": ev.Task, "depth": ev.Depth}
			open[tid]++
		case EvPark:
			ce.Ph, ce.Cat, ce.Name = "B", "park", "parked"
			open[tid]++
		case EvTaskEnd, EvWaitExit, EvWake:
			if open[tid] == 0 {
				continue // begin lost to wraparound
			}
			open[tid]--
			ce.Ph = "E"
		case EvStealAttempt, EvStealSuccess, EvStealFail:
			ce.Ph, ce.Cat, ce.S = "i", "steal", "t"
			ce.Name = ev.Type.String()
			ce.Args = map[string]any{"self": ev.Self}
			if ev.Type != EvStealFail {
				ce.Args["victim"] = ev.Victim
			}
			if ev.Type == EvStealSuccess {
				ce.Args["task"] = ev.Task
			}
			if ev.RangeHi > ev.RangeLo {
				ce.Args["stealRange"] = rangeString(ev.RangeLo, ev.RangeHi)
			}
		case EvMigration:
			ce.Ph, ce.Cat, ce.S = "i", "migration", "t"
			ce.Name = "migrate"
			ce.Args = map[string]any{"self": ev.Self, "to": ev.Victim, "task": ev.Task}
		case EvBoundary:
			ce.Ph, ce.Cat, ce.S = "i", "ml", "t"
			ce.Name = BoundaryKindString(ev.Victim)
			ce.Args = map[string]any{"level": ev.Depth, "domain": ev.Task}
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	// Close spans whose end was not recorded (wraparound or a still-open
	// root at snapshot time).
	for tid := 0; tid < workers; tid++ {
		for ; open[tid] > 0; open[tid]-- {
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Ph: "E", Ts: us(tLast), Pid: 0, Tid: tid})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func rangeString(lo, hi float64) string { return fmt.Sprintf("[%.3f,%.3f)", lo, hi) }
