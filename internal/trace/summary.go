package trace

import (
	"fmt"
	"sort"
	"strings"
)

// WorkerSummary is one worker's share of the derived metrics.
type WorkerSummary struct {
	Worker        int
	Tasks         int64
	Steals        int64
	StealAttempts int64
	Migrations    int64
	// WaitCount and WaitTime aggregate group waits entered by tasks on
	// this worker (time in Event.Time units).
	WaitCount int64
	WaitTime  int64
	// Parks and Wakes count the worker's park/wake cycles; ParkTime is the
	// total time spent blocked (paired EvPark→EvWake spans).
	Parks    int64
	Wakes    int64
	ParkTime int64
}

// Summary is the derived-metrics view of a trace: per-worker task counts,
// steal statistics with distance histogram, dominant-group hit rate, and
// wait-time breakdowns.
type Summary struct {
	PerWorker []WorkerSummary

	// Aggregates over all workers. Steals/StealAttempts/Migrations use the
	// same names and meaning as runtime.Stats and sim.RunResult.
	Tasks         int64
	Steals        int64
	StealAttempts int64
	StealFails    int64 // failed steal rounds (not failed probes)
	Migrations    int64
	WaitCount     int64
	WaitTime      int64
	// Parks/Wakes/ParkTime are the wakeup-path counters: how often workers
	// blocked on their parkers and for how long. An idle pool accumulates
	// park time but no new parks; a broadcast storm would show as a high
	// wake count with near-zero park times.
	Parks    int64
	Wakes    int64
	ParkTime int64

	// StealDistance[d] counts successful steals whose victim was d logical
	// entities away from the thief.
	StealDistance []int64
	// DominantHits counts successful steals whose victim lay inside the
	// recorded dominant-group steal range; DominantMisses the rest (all
	// WS-domain steals, which carry no range). Their ratio is the
	// dominant-group hit rate.
	DominantHits, DominantMisses int64

	// Ties, Flattens, Unties, Unflattens count multi-level boundary
	// crossings.
	Ties, Flattens, Unties, Unflattens int64

	// Drops is the number of events lost to ring wraparound; when nonzero
	// the other counts undercount the run.
	Drops int64
}

// Summarize derives metrics from the tracer's surviving events.
func (t *Tracer) Summarize() Summary {
	s := Summarize(t.Events(), t.NumWorkers())
	s.Drops = t.Drops()
	return s
}

// Summarize derives metrics from events (merged and time-sorted, as
// returned by Tracer.Events) over `workers` workers.
func Summarize(events []Event, workers int) Summary {
	s := Summary{PerWorker: make([]WorkerSummary, workers)}
	for i := range s.PerWorker {
		s.PerWorker[i].Worker = i
	}
	// waitStart tracks the open wait per waiting task ordinal (a task's
	// groups are sequential, so one slot per task suffices); parkStart the
	// open park per worker.
	waitStart := make(map[int64]int64)
	parkStart := make([]int64, workers)
	for i := range parkStart {
		parkStart[i] = -1
	}
	for _, ev := range events {
		if int(ev.Worker) >= workers || ev.Worker < 0 {
			continue
		}
		w := &s.PerWorker[ev.Worker]
		switch ev.Type {
		case EvTaskBegin:
			w.Tasks++
			s.Tasks++
		case EvTaskEnd:
			// Task spans are counted at EvTaskBegin; the matching end
			// carries no additional metric.
		case EvStealAttempt:
			w.StealAttempts++
			s.StealAttempts++
		case EvStealSuccess:
			w.Steals++
			s.Steals++
			d := int(ev.Victim - ev.Self)
			if d < 0 {
				d = -d
			}
			for len(s.StealDistance) <= d {
				s.StealDistance = append(s.StealDistance, 0)
			}
			s.StealDistance[d]++
			if ev.RangeHi > ev.RangeLo &&
				float64(ev.Victim) >= ev.RangeLo && float64(ev.Victim) < ev.RangeHi {
				s.DominantHits++
			} else {
				s.DominantMisses++
			}
		case EvStealFail:
			s.StealFails++
		case EvMigration:
			w.Migrations++
			s.Migrations++
		case EvWaitEnter:
			waitStart[ev.Task] = ev.Time
		case EvWaitExit:
			if t0, ok := waitStart[ev.Task]; ok {
				delete(waitStart, ev.Task)
				w.WaitCount++
				w.WaitTime += ev.Time - t0
				s.WaitCount++
				s.WaitTime += ev.Time - t0
			}
		case EvPark:
			w.Parks++
			s.Parks++
			parkStart[ev.Worker] = ev.Time
		case EvWake:
			w.Wakes++
			s.Wakes++
			if t0 := parkStart[ev.Worker]; t0 >= 0 {
				parkStart[ev.Worker] = -1
				w.ParkTime += ev.Time - t0
				s.ParkTime += ev.Time - t0
			}
		case EvBoundary:
			switch ev.Victim {
			case BoundaryTie:
				s.Ties++
			case BoundaryFlatten:
				s.Flattens++
			case BoundaryUntie:
				s.Unties++
			case BoundaryUnflatten:
				s.Unflattens++
			}
		}
	}
	return s
}

// Jobs returns the distinct nonzero job ordinals present in events, in
// ascending order.
func Jobs(events []Event) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, ev := range events {
		if ev.Job != 0 && !seen[ev.Job] {
			seen[ev.Job] = true
			out = append(out, ev.Job)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FilterJob returns the events attributable to one job: its task spans,
// waits, migrations, and the steal successes that moved its tasks. Steal
// attempts and failed steal rounds carry no job (a probe cannot know whose
// task it would have found) and are never included; slice them from the
// whole trace instead.
func FilterJob(events []Event, job int64) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Job == job && ev.Job != 0 {
			out = append(out, ev)
		}
	}
	return out
}

// SummarizeJob derives metrics for one job's slice of the trace (see
// FilterJob for the attribution rules). Because steal attempts are
// unattributable, the per-job StealAttempts and StealFails are always
// zero; per-job Tasks, Steals, Migrations, and wait metrics sum to the
// whole-trace totals over all jobs when every task carried a job.
func SummarizeJob(events []Event, workers int, job int64) Summary {
	return Summarize(FilterJob(events, job), workers)
}

// StealSuccessRate returns Steals/StealAttempts, or 0 with no attempts.
func (s Summary) StealSuccessRate() float64 {
	if s.StealAttempts == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.StealAttempts)
}

// DominantGroupHitRate returns the fraction of successful steals that
// stayed inside a dominant-group steal range (1.0 under pure ADWS
// stealing, 0.0 under conventional random stealing), or 0 with no steals.
func (s Summary) DominantGroupHitRate() float64 {
	if s.DominantHits+s.DominantMisses == 0 {
		return 0
	}
	return float64(s.DominantHits) / float64(s.DominantHits+s.DominantMisses)
}

// StealRatio formats successful/attempted steals the way every reporting
// surface of this repo prints them (Summary.String, sim.RunResult.String,
// cmd/adwsrun): "steals=<successes>/<attempts>".
func StealRatio(steals, attempts int64) string {
	return fmt.Sprintf("steals=%d/%d", steals, attempts)
}

// String renders a multi-line human-readable report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: tasks=%d %s (%.1f%% success) migrations=%d drops=%d\n",
		s.Tasks, StealRatio(s.Steals, s.StealAttempts), 100*s.StealSuccessRate(), s.Migrations, s.Drops)
	fmt.Fprintf(&b, "  dominant-group hit rate: %.2f (%d/%d)\n",
		s.DominantGroupHitRate(), s.DominantHits, s.DominantHits+s.DominantMisses)
	fmt.Fprintf(&b, "  waits: count=%d time=%d\n", s.WaitCount, s.WaitTime)
	if s.Parks+s.Wakes > 0 {
		fmt.Fprintf(&b, "  parking: parks=%d wakes=%d parked-time=%d\n",
			s.Parks, s.Wakes, s.ParkTime)
	}
	if len(s.StealDistance) > 0 {
		fmt.Fprintf(&b, "  steal distance:")
		for d, n := range s.StealDistance {
			if n > 0 {
				fmt.Fprintf(&b, " %d:%d", d, n)
			}
		}
		fmt.Fprintln(&b)
	}
	if s.Ties+s.Flattens+s.Unties+s.Unflattens > 0 {
		fmt.Fprintf(&b, "  boundaries: ties=%d flattens=%d unties=%d unflattens=%d\n",
			s.Ties, s.Flattens, s.Unties, s.Unflattens)
	}
	fmt.Fprintf(&b, "  per-worker tasks:")
	for _, w := range s.PerWorker {
		fmt.Fprintf(&b, " %d", w.Tasks)
	}
	fmt.Fprintln(&b)
	return b.String()
}
