package trace

import (
	"reflect"
	"testing"
)

// jobEvents is a hand-built stream covering two jobs plus unattributable
// idle-probe events (Job 0).
func jobEvents() []Event {
	return []Event{
		{Type: EvTaskBegin, Worker: 0, Task: 1, Job: 2, Time: 1},
		{Type: EvTaskEnd, Worker: 0, Task: 1, Job: 2, Time: 2},
		{Type: EvStealAttempt, Worker: 1, Self: 1, Victim: 0, Time: 3},
		{Type: EvStealFail, Worker: 1, Self: 1, Time: 4},
		{Type: EvTaskBegin, Worker: 1, Task: 2, Job: 1, Time: 5},
		{Type: EvStealAttempt, Worker: 2, Self: 2, Victim: 1, Time: 6},
		{Type: EvStealSuccess, Worker: 2, Self: 2, Victim: 1, Task: 3, Job: 1, Time: 7},
		{Type: EvTaskBegin, Worker: 2, Task: 3, Job: 1, Time: 8},
		{Type: EvTaskEnd, Worker: 2, Task: 3, Job: 1, Time: 9},
		{Type: EvMigration, Worker: 1, Self: 1, Victim: 3, Task: 4, Job: 1, Time: 10},
		{Type: EvTaskEnd, Worker: 1, Task: 2, Job: 1, Time: 11},
		{Type: EvWaitEnter, Worker: 0, Task: 5, Job: 2, Time: 12},
		{Type: EvWaitExit, Worker: 0, Task: 5, Job: 2, Time: 14},
	}
}

func TestJobs(t *testing.T) {
	if got := Jobs(jobEvents()); !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Errorf("Jobs = %v, want [1 2]", got)
	}
	if got := Jobs(nil); len(got) != 0 {
		t.Errorf("Jobs(nil) = %v, want empty", got)
	}
	// Job-less streams (e.g. traces recorded before any root ran) yield
	// no ids.
	if got := Jobs([]Event{{Type: EvStealFail}}); len(got) != 0 {
		t.Errorf("Jobs(unattributable) = %v, want empty", got)
	}
}

func TestFilterJob(t *testing.T) {
	evs := jobEvents()
	got := FilterJob(evs, 1)
	if len(got) != 6 {
		t.Fatalf("FilterJob(1) returned %d events, want 6", len(got))
	}
	for _, ev := range got {
		if ev.Job != 1 {
			t.Errorf("FilterJob(1) leaked event %+v", ev)
		}
	}
	// Job 0 is the unattributable bucket, never a real job: filtering on
	// it returns nothing rather than the idle probes.
	if got := FilterJob(evs, 0); len(got) != 0 {
		t.Errorf("FilterJob(0) = %v, want empty", got)
	}
}

func TestSummarizeJob(t *testing.T) {
	evs := jobEvents()
	s1 := SummarizeJob(evs, 3, 1)
	if s1.Tasks != 2 || s1.Steals != 1 || s1.Migrations != 1 {
		t.Errorf("job 1: tasks=%d steals=%d migr=%d, want 2, 1, 1", s1.Tasks, s1.Steals, s1.Migrations)
	}
	s2 := SummarizeJob(evs, 3, 2)
	if s2.Tasks != 1 || s2.Steals != 0 || s2.WaitCount != 1 {
		t.Errorf("job 2: tasks=%d steals=%d waits=%d, want 1, 0, 1", s2.Tasks, s2.Steals, s2.WaitCount)
	}
	// Steal attempts and failed rounds are unattributable by design, so a
	// job slice must never claim them.
	if s1.StealAttempts != 0 || s1.StealFails != 0 || s2.StealAttempts != 0 {
		t.Errorf("job slices claim attempts: job1=%+v job2=%+v", s1, s2)
	}
	// The attributable counters of the slices sum to the totals.
	total := Summarize(evs, 3)
	if s1.Tasks+s2.Tasks != total.Tasks || s1.Steals+s2.Steals != total.Steals ||
		s1.Migrations+s2.Migrations != total.Migrations ||
		s1.WaitCount+s2.WaitCount != total.WaitCount {
		t.Errorf("slices do not sum to totals: %+v + %+v != %+v", s1, s2, total)
	}
}
