// Package trace is a low-overhead scheduler event tracer shared by the
// real runtime (internal/runtime) and the discrete-event simulator
// (internal/sim). Both emit the same event schema, so a simulated run and
// a real run of the same program are directly diffable.
//
// Each worker owns a fixed-capacity ring buffer. Recording takes no locks:
// the worker writes the next slot and advances one atomic cursor. When the
// ring wraps, the oldest events are overwritten; the number of overwritten
// events is exposed as a monotonically increasing drop counter. Readers
// (Events, WriteChromeTrace, Summarize) must only run while the traced
// pool or engine is quiescent — after Run returned and, for the real
// runtime, typically after Close.
//
// Cut and CutWorker are the exception: they detach a ring's storage by
// atomically swapping in a fresh frame and read only the retired one, so
// a flight-recorder dump can take a consistent snapshot while the pool
// keeps running, at the cost of losing at most one in-flight event per
// worker per cut (see ring.cut for the protocol).
//
// Timestamps are monotonic nanoseconds in the real runtime. The simulator
// records virtual time scaled by 1000 (millivirtual units) so sub-unit
// cost-model resolution survives the integer conversion.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// EventType identifies one kind of scheduler event.
type EventType uint8

const (
	// EvTaskBegin marks a task starting execution on a worker. Task is the
	// task's creation ordinal, Depth the group depth, RangeLo/RangeHi the
	// task's distribution range (ADWS; zero for WS tasks).
	EvTaskBegin EventType = iota
	// EvTaskEnd marks the matching completion of EvTaskBegin.
	EvTaskEnd
	// EvStealAttempt marks one victim probe. Self and Victim are logical
	// entity indices; RangeLo/RangeHi the dominant-group steal range in
	// effect ([lo,hi), zero-width for WS domains); Depth the minimum
	// stealable depth.
	EvStealAttempt
	// EvStealSuccess marks a probe that yielded a task (Task is the stolen
	// task's ordinal). It always follows an EvStealAttempt for the same
	// victim.
	EvStealSuccess
	// EvStealFail marks a whole steal round (up to maxStealTries probes on
	// one entity) that found nothing.
	EvStealFail
	// EvMigration marks an ADWS deterministic task migration at spawn
	// time: Self is the spawning entity, Victim the destination entity,
	// Task the migrated task's ordinal, RangeLo/RangeHi its range.
	EvMigration
	// EvWaitEnter marks a task entering a task-group wait (Task is the
	// waiting task's ordinal, Depth the children's group depth).
	EvWaitEnter
	// EvWaitExit marks the matching wait completion.
	EvWaitExit
	// EvBoundary marks a multi-level scheduling boundary crossing: a group
	// tied to a cache, a cache-hierarchy flattening, or their teardown.
	// Victim holds the BoundaryKind, Depth the cache level, Task the
	// domain id involved.
	EvBoundary
	// EvPark marks a worker blocking on its parker after finding no work
	// (spin → yield → park; see internal/runtime/park.go).
	EvPark
	// EvWake marks the matching unblock: a producer's targeted wakeup
	// (push, root submission, group completion, or shutdown).
	EvWake

	numEventTypes = iota
)

func (t EventType) String() string {
	switch t {
	case EvTaskBegin:
		return "task-begin"
	case EvTaskEnd:
		return "task-end"
	case EvStealAttempt:
		return "steal-attempt"
	case EvStealSuccess:
		return "steal-success"
	case EvStealFail:
		return "steal-fail"
	case EvMigration:
		return "migration"
	case EvWaitEnter:
		return "wait-enter"
	case EvWaitExit:
		return "wait-exit"
	case EvBoundary:
		return "boundary"
	case EvPark:
		return "park"
	case EvWake:
		return "wake"
	default:
		return "unknown"
	}
}

// Boundary kinds, recorded in Event.Victim of EvBoundary events.
const (
	BoundaryTie int32 = iota
	BoundaryFlatten
	BoundaryUntie
	BoundaryUnflatten
)

// BoundaryKindString names a boundary kind.
func BoundaryKindString(k int32) string {
	switch k {
	case BoundaryTie:
		return "tie"
	case BoundaryFlatten:
		return "flatten"
	case BoundaryUntie:
		return "untie"
	case BoundaryUnflatten:
		return "unflatten"
	default:
		return "unknown"
	}
}

// Event is one scheduler event. Field meaning depends on Type (see the
// EventType constants); unused fields are zero.
type Event struct {
	Type EventType
	// Worker is the recording worker; Record fills it in.
	Worker int32
	// Self and Victim are logical entity indices (steal and migration
	// events); Victim doubles as the BoundaryKind of EvBoundary events.
	Self, Victim int32
	// Depth is the task/group depth, the minimum stealable depth of steal
	// events, or the cache level of EvBoundary events.
	Depth int32
	// Time is the event timestamp: monotonic nanoseconds (real runtime) or
	// virtual time ×1000 (simulator).
	Time int64
	// Task is the task ordinal, or the domain id for EvBoundary events.
	Task int64
	// Job is the root-job ordinal the event is attributable to: task spans,
	// waits, and migrations carry the job of the task involved, and steal
	// successes carry the stolen task's job. Zero means unattributable
	// (steal attempts and failed rounds probe queues that may hold any
	// job's tasks, and boundary events belong to the pool).
	Job int64
	// RangeLo and RangeHi carry the distribution or steal range [lo, hi).
	RangeLo, RangeHi float64
}

// frame is one generation of a ring's storage. base is the ordinal of
// the first event the frame may hold: earlier ordinals lived in frames
// that a previous cut retired. The recording worker never reads base;
// cut/snapshot/drops read and write it only under the tracer's mutex.
type frame struct {
	base int64
	ev   []Event
}

// ring is one worker's event buffer. Only the owning worker writes;
// cursor counts every event ever recorded, so the occupied window of the
// live frame is [max(base, cursor-cap), cursor). Storage is reached
// through an atomic frame pointer so a reader can cut the ring — swap in
// a fresh frame and walk the retired one — while the worker keeps
// recording. The cursor owns a full cache line and the struct is padded
// to a whole number of lines, so in the tracer's rings slice no worker's
// cursor store can invalidate a neighbour's cursor or frame pointer
// (layout enforced by adwsvet's atomicpad analyzer).
//
//adws:padded
type ring struct {
	cursor atomic.Int64 //adws:padded
	_      [56]byte
	buf    atomic.Pointer[frame]
	_      [56]byte
	// lost counts events wrapped away in frames that cuts retired;
	// guarded by the tracer's mutex (cuts never touch the hot path).
	lost int64
	_    [56]byte
}

// record appends one event. The frame double-check makes recording safe
// against a concurrent cut: if the frame was swapped between the load
// and the slot write, the event is redone into the live frame so it is
// not stranded in the retired one. Release/acquire through cursor is
// what publishes the slot write to the cutter.
//
//adws:hotpath
func (r *ring) record(ev Event) {
	c := r.cursor.Load()
	f := r.buf.Load()
	f.ev[c%int64(len(f.ev))] = ev
	if f2 := r.buf.Load(); f2 != f {
		f2.ev[c%int64(len(f2.ev))] = ev
	}
	r.cursor.Store(c + 1)
}

// cut retires the ring's current frame and returns its surviving events,
// oldest first, while the owning worker may keep recording. Correctness
// of the swap: the cursor is read AFTER installing the fresh frame, so
// every ordinal below it was fully published (its cursor store
// happened-before our load) and lives in the retired frame. Only the one
// ordinal equal to the cursor can be mid-record; it may land in either
// frame, may have clobbered the retired frame's slot it maps to, and is
// therefore excluded from the retired window AND from the fresh frame's
// base — a cut loses at most that one event per ring. Callers must hold
// the tracer's mutex (cuts are serialized; the writer is not).
func (r *ring) cut() []Event {
	old := r.buf.Load()
	fresh := &frame{ev: make([]Event, len(old.ev))}
	r.buf.Store(fresh)
	c := r.cursor.Load()
	fresh.base = c + 1
	n := int64(len(old.ev))
	start := old.base
	// Skip the slot ordinal c maps to: its previous resident (ordinal
	// c-n) may be mid-overwrite by the in-flight record.
	if s := c + 1 - n; s > start {
		start = s
	}
	// base may sit one past the cursor (the previous cut excluded an
	// in-flight ordinal that was never completed): an empty window, not a
	// negative one.
	if start > c {
		start = c
	}
	out := make([]Event, 0, c-start)
	for i := start; i < c; i++ {
		out = append(out, old.ev[i%n])
	}
	if lost := start - old.base; lost > 0 {
		r.lost += lost
	}
	return out
}

func (r *ring) drops() int64 {
	f := r.buf.Load()
	d := r.lost
	if o := r.cursor.Load() - f.base - int64(len(f.ev)); o > 0 {
		d += o
	}
	return d
}

// snapshot returns the ring's surviving events, oldest first. Quiescent
// readers only.
func (r *ring) snapshot() []Event {
	f := r.buf.Load()
	c := r.cursor.Load()
	n := int64(len(f.ev))
	start := f.base
	if s := c - n; s > start {
		start = s
	}
	out := make([]Event, 0, c-start)
	for i := start; i < c; i++ {
		out = append(out, f.ev[i%n])
	}
	return out
}

// DefaultCapacity is the per-worker ring capacity used when none is given.
const DefaultCapacity = 1 << 18

// Tracer records scheduler events into per-worker ring buffers.
type Tracer struct {
	rings []ring
	// mu serializes cuts and the reader-side frame bookkeeping (base,
	// lost). Recording never takes it.
	mu sync.Mutex //adws:lockrank(90) leaf: Cut is called with obs.dumpMu (rank 85) held
}

// New creates a tracer for `workers` workers with `capacity` events per
// worker (DefaultCapacity if capacity <= 0).
func New(workers, capacity int) *Tracer {
	if workers <= 0 {
		panic("trace: worker count must be positive")
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{rings: make([]ring, workers)}
	for i := range t.rings {
		t.rings[i].buf.Store(&frame{ev: make([]Event, capacity)})
	}
	return t
}

// NumWorkers returns the number of per-worker rings.
func (t *Tracer) NumWorkers() int { return len(t.rings) }

// Capacity returns the per-worker ring capacity.
func (t *Tracer) Capacity() int { return len(t.rings[0].buf.Load().ev) }

// Record appends an event to worker w's ring, overwriting the oldest event
// when full. It is the hot path: no locks, one atomic cursor update. Only
// worker w's own goroutine may call Record(w, ...).
//
//adws:hotpath
func (t *Tracer) Record(w int, ev Event) {
	ev.Worker = int32(w)
	t.rings[w].record(ev)
}

// Drops returns the total number of events overwritten by ring wraparound
// across all workers. It only grows. Cuts may additionally skip up to one
// in-flight event per worker per cut; those are not counted.
func (t *Tracer) Drops() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d int64
	for i := range t.rings {
		d += t.rings[i].drops()
	}
	return d
}

// WorkerDrops returns worker w's overwritten-event count.
func (t *Tracer) WorkerDrops(w int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rings[w].drops()
}

// Reset discards all recorded events and drop counts. The tracer must be
// quiescent.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.rings {
		t.rings[i].cursor.Store(0)
		t.rings[i].buf.Store(&frame{ev: make([]Event, len(t.rings[i].buf.Load().ev))})
		t.rings[i].lost = 0
	}
}

// Events returns every surviving event merged across workers, sorted by
// timestamp (stable: each worker's own order is preserved). The tracer
// must be quiescent.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for i := range t.rings {
		out = append(out, t.rings[i].snapshot()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// CutWorker atomically detaches worker w's buffered events and returns
// them oldest first, leaving the ring empty. Unlike Events it is safe
// while the traced pool runs: the worker's in-flight record (at most one
// event) is the only event a cut can lose. Cutting is destructive — the
// returned events are no longer in the ring.
func (t *Tracer) CutWorker(w int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rings[w].cut()
}

// Cut cuts every worker's ring and returns the merged, time-sorted
// events — the flight-recorder dump primitive. Like CutWorker it is safe
// and destructive while the pool runs, losing at most one in-flight
// event per worker.
func (t *Tracer) Cut() []Event {
	t.mu.Lock()
	var out []Event
	for i := range t.rings {
		out = append(out, t.rings[i].cut()...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
