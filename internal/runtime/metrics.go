package runtime

import "github.com/parlab/adws/internal/metrics"

// Metrics is the runtime's latency-recording surface. A nil *Metrics in
// Config costs one pointer check per instrumented site — the same
// contract as the tracer — so direct runtime users and micro-benchmarks
// pay nothing. When non-nil, every histogram must be non-nil with at
// least one shard per worker: workers record into their own shard by
// worker ID, so recording is always uncontended and lock-free
// (//adws:hotpath holds through the metrics package).
type Metrics struct {
	// Park records how long each blocking park lasted (park → wake), in
	// nanoseconds. Spin/yield rounds that never block are not parks.
	Park *metrics.Histogram
	// StealAttempt records the latency of each individual victim probe,
	// successful or not.
	StealAttempt *metrics.Histogram
	// WakeToRun records wake → first task obtained. A spurious wake — the
	// worker parks again without obtaining a task — is dropped rather
	// than recorded (see worker.park).
	WakeToRun *metrics.Histogram
}

// checkShards panics unless every histogram can absorb Record(w) for all
// n workers, mirroring the tracer's ring-count check in NewPool.
func (m *Metrics) checkShards(n int) {
	for _, h := range []*metrics.Histogram{m.Park, m.StealAttempt, m.WakeToRun} {
		if h == nil {
			panic("runtime: Metrics histograms must all be non-nil")
		}
		if h.Shards() < n {
			panic("runtime: Metrics histogram " + h.Name() + " has fewer shards than workers")
		}
	}
}

// noteRunAfterWake records the wake-to-run latency when the worker holds
// a pending wake timestamp, i.e. the task now obtained is the first one
// since a park wakeup. wakeAt is owner-only state: it is set when a park
// wake arrives and cleared here or by the next blocking park (the
// spurious-wake rule).
//
//adws:hotpath
func (w *worker) noteRunAfterWake() {
	if m := w.pool.metrics; m != nil && w.wakeAt != 0 {
		m.WakeToRun.Record(w.id, now()-w.wakeAt)
		w.wakeAt = 0
	}
}

// noteStealProbe records one victim probe's latency. start is 0 when
// metrics are disabled (the caller reads the timestamp only when
// enabled), so the disabled path stays a single comparison.
//
//adws:hotpath
func (w *worker) noteStealProbe(start int64) {
	if start != 0 {
		w.pool.metrics.StealAttempt.Record(w.id, now()-start)
	}
}
