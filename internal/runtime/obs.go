package runtime

import (
	"github.com/parlab/adws/internal/obs"
	"github.com/parlab/adws/internal/sched"
)

// SchedSnapshot captures every worker's live scheduler state for the
// /debug/sched endpoint and watchdog dumps. It runs concurrently with
// the pool: each row is assembled from lock-free reads (stats atomics,
// the idle bitmask, the curJob/curStart pair) plus one short per-entity
// lock for the queue depth, so rows are individually accurate but the
// snapshot is not a globally atomic cut.
func (p *Pool) SchedSnapshot() obs.SchedSnapshot {
	t := now()
	snap := obs.SchedSnapshot{
		TakenNS: t,
		Workers: make([]obs.WorkerState, len(p.workers)),
	}
	for i, w := range p.workers {
		word, bit := p.idleWord(i)
		ws := obs.WorkerState{
			Worker:         i,
			Parked:         word.Load()&bit != 0,
			Tasks:          w.stats.tasks.Load(),
			Steals:         w.stats.steals.Load(),
			Parks:          w.stats.parks.Load(),
			Wakes:          w.stats.wakes.Load(),
			Job:            w.curJob.Load(),
			LastEventAgeNS: -1,
		}
		if ws.Job != 0 && !ws.Parked {
			ws.RunningNS = t - w.curStart.Load()
		}
		if ent := p.snapshotEntity(w); ent != nil {
			ws.QueueLen = ent.queueLen()
			if ent.dom.adws {
				if anchor := ent.lastGroup.Load(); anchor != nil {
					self := ent.dom.logicalOf(ent.idx)
					if sr, ok := sched.CurrentStealRange(anchor, self); ok {
						// The inclusive [Low, High] becomes half-open
						// [Low, High+1), matching steal events.
						ws.StealLo = float64(sr.Low)
						ws.StealHi = float64(sr.High) + 1
					}
				}
			}
		}
		if p.flight != nil {
			if last := p.flight.LastNS(i); last != 0 {
				ws.LastEventAgeNS = t - last
			}
		}
		snap.Workers[i] = ws
	}
	return snap
}

// snapshotEntity picks the entity whose queue depth and steal range
// describe worker w right now: the worker's own root-domain slot for
// flat policies, its highest-priority candidate (newest flattened
// domain, else the cache it leads) under multi-level scheduling, or nil
// when an ML worker currently acts for no entity. candidates takes the
// same locks the worker itself takes, so calling it from the snapshot
// goroutine is safe.
func (p *Pool) snapshotEntity(w *worker) *entity {
	if !p.policy.isML() {
		return p.rootDom.entities[w.id]
	}
	if cands := w.candidates(); len(cands) > 0 {
		return cands[0]
	}
	return nil
}
