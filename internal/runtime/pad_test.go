package runtime

import (
	"testing"
	"unsafe"
)

// The false-sharing guarantees the scheduler relies on are structural: the
// idle-mask words and the per-worker counter block must each own whole
// cache lines. adwsvet's atomicpad analyzer enforces the annotations
// statically; these tests pin the actual layout the compiler produced, so
// a field reorder that silently changes offsets fails here even if the
// directives were edited too.

const cacheLine = 64

func TestPaddedWordLayout(t *testing.T) {
	var w paddedWord
	if got := unsafe.Sizeof(w); got != cacheLine {
		t.Errorf("Sizeof(paddedWord) = %d, want %d", got, cacheLine)
	}
	if got := unsafe.Alignof(w); cacheLine%got != 0 {
		t.Errorf("Alignof(paddedWord) = %d does not divide the cache line", got)
	}
	// In the pool's idleWords slice, consecutive words must land on
	// distinct lines: the element stride is the struct size.
	words := make([]paddedWord, 2)
	stride := uintptr(unsafe.Pointer(&words[1])) - uintptr(unsafe.Pointer(&words[0]))
	if stride != cacheLine {
		t.Errorf("idle-mask element stride = %d, want %d", stride, cacheLine)
	}
}

func TestWorkerStatsLayout(t *testing.T) {
	var w worker
	if got := unsafe.Offsetof(w.stats); got%cacheLine != 0 {
		t.Errorf("Offsetof(worker.stats) = %d, want a multiple of %d", got, cacheLine)
	}
	var s workerStats
	size := unsafe.Sizeof(s)
	if size%cacheLine != 0 {
		t.Errorf("Sizeof(workerStats) = %d, want a multiple of %d", size, cacheLine)
	}
	if size < cacheLine {
		t.Errorf("Sizeof(workerStats) = %d, want at least one cache line", size)
	}
	// The stats block must fully cover its lines so the scheduling fields
	// behind it (id, pool, rng, ...) start on a fresh line.
	if unsafe.Offsetof(w.stats)+size > unsafe.Offsetof(w.id) {
		t.Errorf("worker.id at offset %d overlaps the stats block [%d, %d)",
			unsafe.Offsetof(w.id), unsafe.Offsetof(w.stats), unsafe.Offsetof(w.stats)+size)
	}
	if unsafe.Offsetof(w.id)%cacheLine != 0 {
		t.Errorf("Offsetof(worker.id) = %d, want a multiple of %d (first field after the padded stats block)",
			unsafe.Offsetof(w.id), cacheLine)
	}
}
