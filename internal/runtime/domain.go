package runtime

import (
	"sync"
	"sync/atomic"

	"github.com/parlab/adws/internal/deque"
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
)

// entity is one scheduling slot of a domain, with its own lock-protected
// queue set. In worker-level domains an entity is permanently bound to one
// worker; in cache-level domains the acting worker is the cache's current
// leader.
type entity struct {
	dom *domain
	idx int

	mu sync.Mutex            //adws:lockrank(80) innermost runtime lock: queue ops nest under everything
	qs sched.QueueSet[*task] //adws:locked(mu)
	// ws is the lock-free fast path used instead of qs in conventional
	// work-stealing domains (single owner, no depth separation, no
	// migration queues).
	ws *deque.Deque[task]

	cache    *mlCache
	workerID int // fixed acting worker, or -1 for cache-level entities

	// lastGroup anchors the dominant-group walk for steals from this
	// entity (the "current position in the tree" of §3.2).
	lastGroup atomic.Pointer[sched.GroupNode]
}

func (e *entity) push(t *task, migration bool) {
	if e.ws != nil {
		// WS domains never migrate, and pushes come only from the entity's
		// acting worker.
		e.ws.PushBottom(t)
		return
	}
	e.mu.Lock()
	if migration {
		e.qs.PushMigration(t.depth, t)
	} else {
		e.qs.PushPrimary(t.depth, t)
	}
	e.mu.Unlock()
}

func (e *entity) popLocal() *task {
	if e.ws != nil {
		t, ok := e.ws.PopBottom()
		if !ok {
			return nil
		}
		return t
	}
	e.mu.Lock()
	t, ok := e.qs.PopLocal()
	e.mu.Unlock()
	if !ok {
		return nil
	}
	return t
}

// queueLen reports the entity's current queue depth, for introspection
// snapshots (SchedSnapshot): lock-free on the WS deque fast path, one
// short lock on the ADWS queue set.
func (e *entity) queueLen() int {
	if e.ws != nil {
		return e.ws.Len()
	}
	e.mu.Lock()
	n := e.qs.Len()
	e.mu.Unlock()
	return n
}

func (e *entity) stealMigration(minDepth int) *task {
	e.mu.Lock()
	t, ok := e.qs.StealMigration(minDepth)
	e.mu.Unlock()
	if !ok {
		return nil
	}
	return t
}

func (e *entity) stealPrimary(minDepth int) *task {
	e.mu.Lock()
	t, ok := e.qs.StealPrimary(minDepth)
	e.mu.Unlock()
	if !ok {
		return nil
	}
	return t
}

func (e *entity) stealAny() *task {
	if e.ws != nil {
		t, ok := e.ws.Steal()
		if !ok {
			return nil
		}
		return t
	}
	e.mu.Lock()
	t, ok := e.qs.StealAny()
	e.mu.Unlock()
	if !ok {
		return nil
	}
	return t
}

// domain is one single-level scheduling arena (see the simulator's twin in
// internal/sim for the full commentary).
type domain struct {
	id        int64
	adws      bool
	entities  []*entity
	offset    int
	level     int
	flattened bool
	closed    atomic.Bool
}

func (d *domain) physical(logical int) int {
	n := len(d.entities)
	p := logical % n
	if p < 0 {
		p += n
	}
	return p
}

func (d *domain) logicalOf(physical int) int {
	n := len(d.entities)
	l := physical
	for l < d.offset {
		l += n
	}
	for l >= d.offset+n {
		l -= n
	}
	return l
}

func (d *domain) fullRange() sched.Range {
	return sched.FullRange(d.offset, len(d.entities))
}

// mlCache is the per-cache multi-level scheduling state, guarded by
// Pool.ml.Mutex except where noted.
type mlCache struct {
	cache *topology.Cache
	// leader is the worker currently leading this cache (-1 absent).
	leader int
	// tied is the group currently tied here (nil if none).
	tied *taskGroup
	// entity is this cache's slot in the active domain over its parent's
	// children (nil while no such domain exists).
	entity *entity
	// childDomain is the live domain over this cache's children.
	childDomain *domain
}

// newEntity builds an entity for domain d, choosing the lock-free deque
// fast path for conventional work-stealing domains.
func newEntity(d *domain, idx int, mc *mlCache, workerID int) *entity {
	e := &entity{dom: d, idx: idx, cache: mc, workerID: workerID}
	if !d.adws {
		e.ws = deque.New[task]()
	}
	return e
}
