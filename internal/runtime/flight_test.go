package runtime

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parlab/adws/internal/obs"
	"github.com/parlab/adws/internal/topology"
)

// newBenchPoolFlight is newBenchPool with the always-on flight recorder
// attached (the adws façade's default configuration). Comparing against
// the plain benchmarks quantifies the recorder's hot-path cost — the
// Wants filter plus ring writes for the depth<=1 span events — which the
// ≤3% acceptance budget in results/flight_recorder.txt is measured from.
func newBenchPoolFlight(b *testing.B, pol Policy, workers int) *Pool {
	b.Helper()
	p := NewPool(Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  pol,
		Seed:    42,
		Flight:  obs.NewRecorder(obs.Config{Workers: workers}),
	})
	b.Cleanup(p.Close)
	return p
}

// BenchmarkSpawnTreeFlight is BenchmarkSpawnTree with the flight
// recorder on: the depth filter rejects every span below depth 1, so
// the per-task cost is the filter check itself.
func BenchmarkSpawnTreeFlight(b *testing.B) {
	const depth = 9
	for _, pol := range []Policy{WS, ADWS} {
		for _, workers := range benchWorkerCounts {
			b.Run(fmt.Sprintf("%v/w%d", pol, workers), func(b *testing.B) {
				p := newBenchPoolFlight(b, pol, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Run(func(c *Ctx) { spawnTree(c, depth) })
				}
				b.ReportMetric(float64(int(1)<<(depth+1)-2), "tasks/op")
			})
		}
	}
}

// BenchmarkParkedSubmitFlight is BenchmarkParkedSubmit with the flight
// recorder on: every measured op records park/wake transitions and the
// root task's span into the rings.
func BenchmarkParkedSubmitFlight(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			p := newBenchPoolFlight(b, ADWS, workers)
			time.Sleep(5 * time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j, err := p.SubmitRoot(func(c *Ctx) {}, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				<-j.Done()
			}
		})
	}
}

// TestFlightConcurrentDump hammers the live-cut path: spawn-heavy jobs
// keep every worker recording while two observer goroutines concurrently
// dump the recorder and take scheduler snapshots. Run under -race this
// pins the frame-swap ring's writer/cutter protocol and the lock-free
// snapshot reads.
func TestFlightConcurrentDump(t *testing.T) {
	const workers = 4
	fr := obs.NewRecorder(obs.Config{Workers: workers, Capacity: 256})
	p := NewPool(Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  ADWS,
		Seed:    7,
		Flight:  fr,
	})
	defer p.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := p.SchedSnapshot()
			d := fr.Dump("test", -1, &snap)
			if d.Workers != workers {
				t.Errorf("dump workers = %d, want %d", d.Workers, workers)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := p.SchedSnapshot()
			if len(snap.Workers) != workers {
				t.Errorf("snapshot has %d workers, want %d", len(snap.Workers), workers)
				return
			}
		}
	}()

	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for i := 0; i < rounds; i++ {
		p.Run(func(c *Ctx) { spawnTree(c, 7) })
	}
	stop.Store(true)
	wg.Wait()

	// The final dump must still produce a consistent, sorted window.
	d := fr.Dump("final", -1, nil)
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Time < d.Events[i-1].Time {
			t.Fatalf("final dump not time-sorted at %d: %v then %v",
				i, d.Events[i-1], d.Events[i])
		}
	}
}

// TestSchedSnapshotLiveJob pins the introspection atomics: while a root
// job is wedged on a worker, the snapshot names its job id with a
// plausible running time; once the pool drains and parks, no worker
// claims a job.
func TestSchedSnapshotLiveJob(t *testing.T) {
	fr := obs.NewRecorder(obs.Config{Workers: 2})
	p := NewPool(Config{
		Machine: topology.Flat(2, 32<<20, 1<<20),
		Policy:  ADWS,
		Seed:    1,
		Flight:  fr,
	})
	defer p.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	j, err := p.SubmitRoot(func(c *Ctx) {
		close(started)
		<-release
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	snap := p.SchedSnapshot()
	var running *obs.WorkerState
	for i := range snap.Workers {
		if snap.Workers[i].Job == j.ID() {
			running = &snap.Workers[i]
		}
	}
	if running == nil {
		t.Fatalf("no worker reports job %d: %+v", j.ID(), snap.Workers)
	}
	if running.Parked || running.RunningNS < 0 {
		t.Fatalf("running worker state = %+v", running)
	}

	close(release)
	<-j.Done()

	// After the job drains, no snapshot row may still claim it. (Workers
	// may not have parked yet, but curJob is cleared on park and only
	// set while executing.)
	deadline := time.Now().Add(2 * time.Second)
	for {
		stale := false
		for _, ws := range p.SchedSnapshot().Workers {
			if ws.Parked && ws.Job != 0 {
				stale = true
			}
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked worker still claims a job")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlightOverheadSmoke is the CI overhead gate: with ADWS_BENCH_SMOKE=1
// (set by scripts/check.sh) it measures the spawn-heavy tree with and
// without the recorder and fails if the recorder-on run exceeds a
// generous 1.5x budget — far above the ≤3% acceptance target measured
// offline (results/flight_recorder.txt) but tight enough to catch an
// accidental timestamp or allocation on the filtered path.
func TestFlightOverheadSmoke(t *testing.T) {
	if os.Getenv("ADWS_BENCH_SMOKE") != "1" {
		t.Skip("set ADWS_BENCH_SMOKE=1 to run the overhead smoke gate")
	}
	const depth = 9
	run := func(flight bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			cfg := Config{
				Machine: topology.Flat(1, 32<<20, 1<<20),
				Policy:  ADWS,
				Seed:    42,
			}
			if flight {
				cfg.Flight = obs.NewRecorder(obs.Config{Workers: 1})
			}
			p := NewPool(cfg)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Run(func(c *Ctx) { spawnTree(c, depth) })
			}
		})
		return float64(r.NsPerOp())
	}
	// Interleave and keep the best of three per config to shave scheduler
	// noise on loaded CI machines.
	best := func(f func(bool) float64, flight bool) float64 {
		m := f(flight)
		for i := 0; i < 2; i++ {
			if v := f(flight); v < m {
				m = v
			}
		}
		return m
	}
	base := best(run, false)
	rec := best(run, true)
	ratio := rec / base
	t.Logf("spawn tree w1: base %.0f ns/op, recorder %.0f ns/op, ratio %.3f", base, rec, ratio)
	if ratio > 1.5 {
		t.Fatalf("flight recorder overhead ratio %.3f exceeds smoke budget 1.5x", ratio)
	}
}
