package runtime

import (
	"fmt"
	"testing"
	"time"

	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/topology"
)

// Idle/wakeup-path microbenchmarks. These pin the cost of the Spawn/Wait
// and task-completion fast paths (which must not take any global lock when
// no worker is parked) and the submit latency into a fully parked pool.
// Before/after numbers for the per-worker parker live in
// results/park_wakeup.txt and EXPERIMENTS.md.

var benchWorkerCounts = []int{1, 4, 8}

func newBenchPool(b *testing.B, pol Policy, workers int) *Pool {
	b.Helper()
	p := NewPool(Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  pol,
		Seed:    42,
	})
	b.Cleanup(p.Close)
	return p
}

// spawnTree forks an empty binary tree of the given depth: pure tasking
// overhead, no leaf work. With depth 9 one op spawns 2^10-2 = 1022 tasks.
func spawnTree(c *Ctx, depth int) {
	if depth == 0 {
		return
	}
	g := c.Group(GroupHint{Work: 2})
	g.Spawn(1, func(c *Ctx) { spawnTree(c, depth-1) })
	g.Spawn(1, func(c *Ctx) { spawnTree(c, depth-1) })
	g.Wait()
}

// BenchmarkSpawnTree is the fine-grained spawn microbenchmark of the
// idle-path acceptance criterion: an empty fork-join tree where scheduler
// synchronization is the whole cost.
func BenchmarkSpawnTree(b *testing.B) {
	const depth = 9
	for _, pol := range []Policy{WS, ADWS} {
		for _, workers := range benchWorkerCounts {
			b.Run(fmt.Sprintf("%v/w%d", pol, workers), func(b *testing.B) {
				p := newBenchPool(b, pol, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Run(func(c *Ctx) { spawnTree(c, depth) })
				}
				b.ReportMetric(float64(int(1)<<(depth+1)-2), "tasks/op")
			})
		}
	}
}

// benchFib is a naive fork-join Fibonacci with no sequential cutoff below
// fibCutoff: spawn-heavy with slightly irregular subtree sizes.
func benchFib(c *Ctx, n int, out *int64) {
	if n < 2 {
		*out = int64(n)
		return
	}
	var a, b int64
	g := c.Group(GroupHint{Work: float64(int(1) << n)})
	g.Spawn(float64(int(1)<<(n-1)), func(c *Ctx) { benchFib(c, n-1, &a) })
	g.Spawn(float64(int(1)<<(n-2)), func(c *Ctx) { benchFib(c, n-2, &b) })
	g.Wait()
	*out = a + b
}

func BenchmarkSpawnFib(b *testing.B) {
	const n = 15 // fib(15) = 610; ~1973 tasks per op
	for _, pol := range []Policy{WS, ADWS} {
		for _, workers := range benchWorkerCounts {
			b.Run(fmt.Sprintf("%v/w%d", pol, workers), func(b *testing.B) {
				p := newBenchPool(b, pol, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var out int64
					p.Run(func(c *Ctx) { benchFib(c, n, &out) })
					if out != 610 {
						b.Fatalf("fib(%d) = %d", n, out)
					}
				}
			})
		}
	}
}

// benchQsort is a spawn-heavy quicksort with a fine sequential cutoff, the
// paper's canonical divide-and-conquer kernel reduced to its scheduling
// skeleton (kernels.Quicksort lives above this package and cannot be
// imported here).
func benchQsort(c *Ctx, a []int32) {
	if len(a) <= 32 {
		insertionSort(a)
		return
	}
	p := partition(a)
	g := c.Group(GroupHint{Work: float64(len(a))})
	lo, hi := a[:p], a[p+1:]
	g.Spawn(float64(len(lo)), func(c *Ctx) { benchQsort(c, lo) })
	g.Spawn(float64(len(hi)), func(c *Ctx) { benchQsort(c, hi) })
	g.Wait()
}

func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func partition(a []int32) int {
	mid := len(a) / 2
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[len(a)-1] < a[mid] {
		a[len(a)-1], a[mid] = a[mid], a[len(a)-1]
		if a[mid] < a[0] {
			a[mid], a[0] = a[0], a[mid]
		}
	}
	a[mid], a[len(a)-1] = a[len(a)-1], a[mid]
	pivot := a[len(a)-1]
	i := 0
	for j := 0; j < len(a)-1; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[len(a)-1] = a[len(a)-1], a[i]
	return i
}

func BenchmarkSpawnQuicksort(b *testing.B) {
	const size = 1 << 14
	master := make([]int32, size)
	rng := uint64(1)
	for i := range master {
		rng = rng*6364136223846793005 + 1442695040888963407
		master[i] = int32(rng >> 33)
	}
	for _, pol := range []Policy{WS, ADWS} {
		for _, workers := range benchWorkerCounts {
			b.Run(fmt.Sprintf("%v/w%d", pol, workers), func(b *testing.B) {
				p := newBenchPool(b, pol, workers)
				data := make([]int32, size)
				b.SetBytes(size * 4)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(data, master)
					p.Run(func(c *Ctx) { benchQsort(c, data) })
				}
			})
		}
	}
}

// BenchmarkParkedSubmit measures the submit-to-completion latency of a
// trivial root job on a pool whose workers are (mostly) parked: the cost
// of waking exactly the claiming worker.
func BenchmarkParkedSubmit(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			p := newBenchPool(b, ADWS, workers)
			// Let every worker run dry and park before measuring.
			time.Sleep(5 * time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j, err := p.SubmitRoot(func(c *Ctx) {}, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				<-j.Done()
			}
		})
	}
}

// newBenchPoolMetrics is newBenchPool with latency metrics enabled — the
// adws façade's always-on configuration. The plain benchmarks above keep
// metrics nil, so comparing the two quantifies the recording overhead
// (results/metrics_overhead.txt); the nil-metrics numbers themselves are
// the regression gate against pre-metrics baselines.
func newBenchPoolMetrics(b *testing.B, pol Policy, workers int) *Pool {
	b.Helper()
	p := NewPool(Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  pol,
		Seed:    42,
		Metrics: &Metrics{
			Park:         metrics.NewStandaloneHistogram(workers),
			StealAttempt: metrics.NewStandaloneHistogram(workers),
			WakeToRun:    metrics.NewStandaloneHistogram(workers),
		},
	})
	b.Cleanup(p.Close)
	return p
}

// BenchmarkSpawnTreeMetrics is BenchmarkSpawnTree with recording enabled:
// the steal-probe and wake instrumentation is the only difference.
func BenchmarkSpawnTreeMetrics(b *testing.B) {
	const depth = 9
	for _, pol := range []Policy{WS, ADWS} {
		for _, workers := range benchWorkerCounts {
			b.Run(fmt.Sprintf("%v/w%d", pol, workers), func(b *testing.B) {
				p := newBenchPoolMetrics(b, pol, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Run(func(c *Ctx) { spawnTree(c, depth) })
				}
				b.ReportMetric(float64(int(1)<<(depth+1)-2), "tasks/op")
			})
		}
	}
}

// BenchmarkParkedSubmitMetrics is BenchmarkParkedSubmit with recording
// enabled: every measured op records one park duration and one
// wake-to-run latency.
func BenchmarkParkedSubmitMetrics(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			p := newBenchPoolMetrics(b, ADWS, workers)
			time.Sleep(5 * time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j, err := p.SubmitRoot(func(c *Ctx) {}, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				<-j.Done()
			}
		})
	}
}
