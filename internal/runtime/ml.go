package runtime

import (
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// traceBoundary records a multi-level boundary crossing (tie/flatten and
// their teardowns) for worker w over domain d at cache level `level`.
func (p *Pool) traceBoundary(w *worker, kind int32, d *domain, level int) {
	if !w.wantEv(trace.EvBoundary, int32(level)) {
		return
	}
	var id int64
	if d != nil {
		id = d.id
	}
	w.emit(trace.Event{Type: trace.EvBoundary, Time: now(),
		Victim: kind, Depth: int32(level), Task: id}, int32(level))
}

// initTopology builds the root domain and, for multi-level policies, the
// per-cache state with the initial bottom-up leader election (§4.2). It
// runs before the workers start, so the ml structures are still private.
//
//adws:requires(ml)
func (p *Pool) initTopology() {
	adws := p.policy.isADWS()
	m := p.machine

	p.ml.caches = make([][]*mlCache, m.NumLevels())
	for level := 1; level < m.NumLevels(); level++ {
		row := m.LevelCaches(level)
		p.ml.caches[level] = make([]*mlCache, len(row))
		for i, c := range row {
			p.ml.caches[level][i] = &mlCache{cache: c, leader: -1}
		}
	}

	if !p.policy.isML() {
		d := p.newDomain(adws, 0)
		d.level = m.MaxLevel()
		for w := 0; w < m.NumWorkers(); w++ {
			d.entities = append(d.entities, newEntity(d, w, nil, w))
		}
		p.rootDom = d
		return
	}

	maxLevel := m.MaxLevel()
	for wid := 0; wid < m.NumWorkers(); wid++ {
		leaf := p.ml.caches[maxLevel][wid]
		leaf.leader = wid
		p.workers[wid].leads = leaf
	}
	for level := maxLevel - 1; level >= 1; level-- {
		for i, c := range m.LevelCaches(level) {
			first := c.Children()[0]
			child := p.ml.caches[first.Level][first.Index]
			wid := child.leader
			child.leader = -1
			p.ml.caches[level][i].leader = wid
			p.workers[wid].leads = p.ml.caches[level][i]
		}
	}
	d := p.newDomain(adws, 0)
	d.level = 1
	for i, mc := range p.ml.caches[1] {
		ent := newEntity(d, i, mc, -1)
		d.entities = append(d.entities, ent)
		mc.entity = ent
	}
	p.rootDom = d
}

func (p *Pool) newDomain(adws bool, offset int) *domain {
	return &domain{id: p.domSeq.Add(1), adws: adws, offset: offset}
}

// mlDecide applies the tie/flatten decisions of Fig. 13 + Fig. 15 when a
// task group with a size hint is created (flatten-first composition; see
// the simulator twin and DESIGN.md). It returns the new domain, the parent
// range in it, and the parent's entity in it, or nils to stay.
func (p *Pool) mlDecide(w *worker, cur *task, size int64, g *taskGroup) (*domain, sched.Range, *entity) {
	if size <= 0 {
		return nil, sched.Range{}, nil
	}
	p.ml.Lock()
	defer p.ml.Unlock()

	dom := cur.dom
	// Cache-hierarchy flattening applies to multi-level ADWS only (§5).
	if dom.adws && dom.level < p.machine.MaxLevel() && len(dom.entities) > 0 && dom.entities[0].cache != nil {
		lo := cur.rng.Owner()
		hi := cur.rng.Last() - 1
		if hi < lo {
			hi = lo
		}
		var cand []*topology.Cache
		for l := lo; l <= hi && l-lo < len(dom.entities); l++ {
			cand = append(cand, dom.entities[dom.physical(l)].cache.cache)
		}
		lnext, caches := sched.FlattenOverCaches(p.machine, size, dom.level, cand)
		if caches != nil && lnext == p.machine.MaxLevel() {
			return p.flattenLocked(w, caches, g)
		}
	}
	c := w.leads
	if c != nil && c.cache.Level < p.machine.MaxLevel() && c.tied == nil &&
		size <= c.cache.Capacity && c.leader == w.id {
		return p.tieLocked(w, c, g)
	}
	return nil, sched.Range{}, nil
}

// tieLocked ties g to cache c; the caller holds p.ml.
//
//adws:requires(ml)
func (p *Pool) tieLocked(w *worker, c *mlCache, g *taskGroup) (*domain, sched.Range, *entity) {
	c.tied = g
	g.tiedTo = c
	children := c.cache.Children()
	cw := p.machine.CacheOfWorkerAtLevel(w.id, c.cache.Level+1)
	pos := cw.Index - children[0].Index

	d := p.newDomain(p.policy.isADWS(), pos)
	d.level = c.cache.Level + 1
	for i, ch := range children {
		mc := p.ml.caches[ch.Level][ch.Index]
		ent := newEntity(d, i, mc, -1)
		d.entities = append(d.entities, ent)
		mc.entity = ent
	}
	c.childDomain = d

	mcw := p.ml.caches[cw.Level][cw.Index]
	c.leader = -1
	mcw.leader = w.id
	w.leads = mcw

	p.traceBoundary(w, trace.BoundaryTie, d, c.cache.Level)
	return d, d.fullRange(), d.entities[pos]
}

// flattenLocked creates a flattened worker-level domain over leaf caches;
// the caller holds p.ml.
func (p *Pool) flattenLocked(w *worker, caches []*topology.Cache, g *taskGroup) (*domain, sched.Range, *entity) {
	d := p.newDomain(p.policy.isADWS(), 0)
	d.level = p.machine.MaxLevel()
	d.flattened = true
	pos := 0
	for i, ch := range caches {
		wid := ch.FirstWorker()
		d.entities = append(d.entities, newEntity(d, i, nil, wid))
		if wid == w.id {
			pos = i
		}
	}
	d.offset = pos
	g.flattened = d
	// Publish only after the domain is fully constructed: workers read
	// d.entities/d.offset without holding p.ml once an entity appears in
	// their fdEnts (the per-worker fdMu gives the happens-before edge).
	for _, ent := range d.entities {
		ww := p.workers[ent.workerID]
		ww.fdMu.Lock()
		ww.fdEnts = append(ww.fdEnts, ent)
		ww.fdMu.Unlock()
	}
	// Wake the parked participants so they pick up their flattened
	// entities; non-members need not stir.
	if p.nparked.Load() != 0 {
		for _, ent := range d.entities {
			if ent.workerID != w.id {
				p.tryWake(p.workers[ent.workerID])
			}
		}
	}
	p.traceBoundary(w, trace.BoundaryFlatten, d, d.level)
	return d, d.fullRange(), d.entities[pos]
}

// groupTeardown undoes a tie or flattening when the group's Wait completes
// on worker w (the worker executing the continuation becomes the leader of
// the untied cache, Fig. 13 line 58).
func (p *Pool) groupTeardown(g *taskGroup, w *worker) {
	p.ml.Lock()
	defer p.ml.Unlock()
	if c := g.tiedTo; c != nil {
		g.tiedTo = nil
		c.tied = nil
		if c.childDomain != nil {
			p.traceBoundary(w, trace.BoundaryUntie, c.childDomain, c.cache.Level)
			c.childDomain.closed.Store(true)
			c.childDomain = nil
		}
		if w.leads != nil && w.leads != c {
			w.leads.leader = -1
		}
		c.leader = w.id
		w.leads = c
	}
	if d := g.flattened; d != nil {
		g.flattened = nil
		p.traceBoundary(w, trace.BoundaryUnflatten, d, d.level)
		d.closed.Store(true)
		// Participants drop their entities lazily in candidates().
	}
}
