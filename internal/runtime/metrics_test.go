package runtime

import (
	"sync/atomic"
	"testing"

	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/topology"
)

// newMetricsPool builds a flat pool with latency metrics enabled — the
// configuration the adws façade always uses.
func newMetricsPool(t *testing.T, policy Policy, workers int) (*Pool, *Metrics) {
	t.Helper()
	m := &Metrics{
		Park:         metrics.NewStandaloneHistogram(workers),
		StealAttempt: metrics.NewStandaloneHistogram(workers),
		WakeToRun:    metrics.NewStandaloneHistogram(workers),
	}
	p := NewPool(Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  policy,
		Seed:    42,
		Metrics: m,
	})
	t.Cleanup(p.Close)
	return p, m
}

// TestWakeToRunSpuriousWake pins the spurious-wake rule: a park wakeup
// that never leads to a task (the woken worker re-parks) must not record
// a wake-to-run sample, while a wakeup that does obtain a task must.
// Without the rule, every idle-pool wake would pollute the distribution
// with park-to-park durations.
func TestWakeToRunSpuriousWake(t *testing.T) {
	p, m := newMetricsPool(t, ADWS, 4)
	var s int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 200, &s, 0) })
	awaitFullyParked(t, p)

	base := m.WakeToRun.Snapshot().Count
	parksBefore := p.Stats().Parks
	// Wake one parked worker with no work published: the wake is spurious
	// by construction and the worker re-parks.
	if !p.tryWake(p.workers[0]) {
		t.Fatal("could not wake a parked worker")
	}
	awaitFullyParked(t, p)

	if got := m.WakeToRun.Snapshot().Count; got != base {
		t.Errorf("spurious wake recorded wake-to-run samples: count %d -> %d", base, got)
	}
	if got := p.Stats().Parks; got <= parksBefore {
		t.Errorf("spuriously woken worker did not re-park: parks %d -> %d", parksBefore, got)
	}

	// A wakeup that obtains a task must record: submit real work into the
	// fully parked pool.
	var ran atomic.Bool
	j, err := p.SubmitRoot(func(c *Ctx) { ran.Store(true) }, 0, 1)
	if err != nil {
		t.Fatalf("SubmitRoot: %v", err)
	}
	waitRoot(t, j)
	if !ran.Load() {
		t.Fatal("root did not run")
	}
	if got := m.WakeToRun.Snapshot().Count; got <= base {
		t.Errorf("real wake recorded no wake-to-run sample: count still %d", got)
	}
}

// TestMetricsParityWithStats pins the 1:1 pairing between histogram
// records and the scheduler counters they instrument: every completed
// park (== a wake) records exactly one park duration, and every victim
// probe records exactly one steal-attempt latency.
func TestMetricsParityWithStats(t *testing.T) {
	for _, pol := range []Policy{WS, ADWS} {
		p, m := newMetricsPool(t, pol, 4)
		for i := 0; i < 3; i++ {
			var s int64
			p.Run(func(c *Ctx) { treeSum(c, 0, 2000, &s, 0) })
		}
		awaitFullyParked(t, p)

		st := p.Stats()
		if got := m.Park.Snapshot().Count; got != st.Wakes {
			t.Errorf("%v: park histogram count %d, want %d (== wakes)", pol, got, st.Wakes)
		}
		if got := m.StealAttempt.Snapshot().Count; got != st.StealAttempts {
			t.Errorf("%v: steal-attempt histogram count %d, want %d (== steal attempts)",
				pol, got, st.StealAttempts)
		}
		if st.StealAttempts == 0 {
			t.Errorf("%v: run made no steal attempts; parity check is vacuous", pol)
		}
	}
}

// TestMetricsCheckShards pins the NewPool-time validation: histograms
// with fewer shards than workers must be rejected before any worker can
// record out of range.
func TestMetricsCheckShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool accepted a Metrics histogram with too few shards")
		}
	}()
	NewPool(Config{
		Machine: topology.Flat(4, 32<<20, 1<<20),
		Policy:  ADWS,
		Seed:    1,
		Metrics: &Metrics{
			Park:         metrics.NewStandaloneHistogram(1),
			StealAttempt: metrics.NewStandaloneHistogram(4),
			WakeToRun:    metrics.NewStandaloneHistogram(4),
		},
	})
}
