package runtime

import (
	"sync/atomic"
	"testing"

	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
)

// TestRandomTreesStress runs randomized irregular task trees (varying
// fan-out, skewed hints, mixed sized/unsized groups, sequential groups)
// under every policy and checks exactly-once execution of every leaf.
func TestRandomTreesStress(t *testing.T) {
	for _, pol := range testPolicies {
		for seed := uint64(1); seed <= 3; seed++ {
			p := newTestPool(t, pol)
			var leaves int64
			expected := int64(0)

			// Pre-compute the tree shape deterministically so we know the
			// expected leaf count.
			type nodeSpec struct {
				fanout  int
				seqReps int
				sizes   bool
				depth   int
			}
			var plan func(depth int) int64
			var build func(c *Ctx, depth int, path uint64)
			shape := func(depth int, path uint64) nodeSpec {
				r := sched.NewRNG(seed*1000+path, depth)
				return nodeSpec{
					fanout:  1 + r.Intn(5),
					seqReps: 1 + r.Intn(2),
					sizes:   r.Intn(2) == 0,
					depth:   depth,
				}
			}
			plan = func(depth int) int64 {
				if depth == 0 {
					return 1
				}
				// Mirror build's traversal exactly: every child recurses.
				var count func(depth int, path uint64) int64
				count = func(depth int, path uint64) int64 {
					if depth == 0 {
						return 1
					}
					ns := shape(depth, path)
					var total int64
					for rep := 0; rep < ns.seqReps; rep++ {
						for k := 0; k < ns.fanout; k++ {
							total += count(depth-1, path*31+uint64(rep*7+k+1))
						}
					}
					return total
				}
				return count(depth, 1)
			}
			build = func(c *Ctx, depth int, path uint64) {
				if depth == 0 {
					atomic.AddInt64(&leaves, 1)
					return
				}
				ns := shape(depth, path)
				for rep := 0; rep < ns.seqReps; rep++ {
					h := GroupHint{Work: float64(ns.fanout)}
					if ns.sizes {
						h.Size = int64(depth) * (4 << 20)
					}
					g := c.Group(h)
					for k := 0; k < ns.fanout; k++ {
						k := k
						rep := rep
						// Imprecise hints, derived per-path so task bodies
						// stay race-free.
						w := 0.5 + 2*sched.NewRNG(seed^path, k).Float64()
						g.Spawn(w, func(c *Ctx) {
							build(c, depth-1, path*31+uint64(rep*7+k+1))
						})
					}
					g.Wait()
				}
			}

			expected = plan(4)
			p.Run(func(c *Ctx) { build(c, 4, 1) })
			if leaves != expected {
				t.Errorf("%v seed %d: %d leaves, want %d", pol, seed, leaves, expected)
			}
		}
	}
}

// TestMLLeadershipInvariants checks that after a multi-level run, the
// leadership state is consistent: every worker leads exactly one cache on
// its path, and no domain or tie is left open.
func TestMLLeadershipInvariants(t *testing.T) {
	for _, pol := range []Policy{MLWS, MLADWS} {
		p := newTestPool(t, pol)
		var sum int64
		for rep := 0; rep < 3; rep++ {
			p.Run(func(c *Ctx) { treeSum(c, 0, 30000, &sum, 64<<20) })
		}
		p.ml.Lock()
		seen := map[int]int{}
		for level := 1; level < len(p.ml.caches); level++ {
			for _, mc := range p.ml.caches[level] {
				if mc.tied != nil {
					t.Errorf("%v: %v still has a tied group", pol, mc.cache)
				}
				if mc.childDomain != nil {
					t.Errorf("%v: %v still has a child domain", pol, mc.cache)
				}
				if mc.leader >= 0 {
					seen[mc.leader]++
					if p.workers[mc.leader].leads != mc {
						t.Errorf("%v: leader of %v does not point back", pol, mc.cache)
					}
					if !mc.cache.ContainsWorker(mc.leader) {
						t.Errorf("%v: %v led by worker %d outside it", pol, mc.cache, mc.leader)
					}
				}
			}
		}
		p.ml.Unlock()
		for wid, n := range seen {
			if n != 1 {
				t.Errorf("%v: worker %d leads %d caches", pol, wid, n)
			}
		}
		for _, w := range p.workers {
			w.fdMu.Lock()
			for _, ent := range w.fdEnts {
				if !ent.dom.closed.Load() {
					t.Errorf("%v: worker %d still member of open flattened domain", pol, w.id)
				}
			}
			w.fdMu.Unlock()
		}
	}
}

// TestQueuesDrained verifies no tasks are stranded in any entity queue
// after runs complete.
func TestQueuesDrained(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		var sum int64
		p.Run(func(c *Ctx) { treeSum(c, 0, 50000, &sum, 16<<20) })
		check := func(d *domain) {
			for _, ent := range d.entities {
				ent.mu.Lock()
				n := ent.qs.Len()
				ent.mu.Unlock()
				if n != 0 {
					t.Errorf("%v: entity %d of domain %d has %d stranded tasks", pol, ent.idx, d.id, n)
				}
			}
		}
		check(p.rootDom)
	}
}

// TestHintsVsNoHintsBothComplete exercises severely wrong hints: ADWS
// must converge via localized stealing.
func TestWrongHintsComplete(t *testing.T) {
	p := newTestPool(t, ADWS)
	var count int64
	p.Run(func(c *Ctx) {
		g := c.Group(GroupHint{Work: 1000})
		// Hints claim all work is in child 0; actually it is uniform.
		for i := 0; i < 32; i++ {
			w := 0.00001
			if i == 0 {
				w = 999.99
			}
			g.Spawn(w, func(c *Ctx) {
				var inner int64
				treeSum(c, 0, 2000, &inner, 0)
				atomic.AddInt64(&count, 1)
			})
		}
		g.Wait()
	})
	if count != 32 {
		t.Errorf("count = %d, want 32", count)
	}
}

func TestThreeLevelMachineRuntime(t *testing.T) {
	p := NewPool(Config{Machine: topology.ThreeLevel64(), Policy: MLADWS, Seed: 13})
	defer p.Close()
	var sum int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 40000, &sum, 100<<20) })
	if want := int64(40000) * 39999 / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestPinnedThreads(t *testing.T) {
	p := NewPool(Config{Machine: topology.Flat(4, 32<<20, 1<<20), Policy: ADWS, PinThreads: true})
	defer p.Close()
	var sum int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 10000, &sum, 0) })
	if want := int64(10000) * 9999 / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}
