package runtime

import (
	"math"
	"math/bits"

	"github.com/parlab/adws/internal/trace"
)

// Per-worker parking with targeted wakeups.
//
// Every worker owns a one-slot wake channel (a binary semaphore) and the
// pool keeps an atomic bitmask of parked workers plus a mirror count. The
// protocol is futex-style:
//
//   - A worker that finds no work spins, yields, then advertises itself in
//     the idle bitmask and RE-CHECKS for work before blocking. Work is
//     always published before the producer reads the bitmask, so with
//     sequentially consistent atomics one of the two sides must see the
//     other (Dekker store/load pairing): either the producer observes the
//     idle bit and wakes the worker, or the worker's recheck observes the
//     work. A parked worker therefore blocks indefinitely — no timeout, no
//     helper goroutine — and a fully idle pool costs zero CPU.
//
//   - A producer (Spawn push, root submission, final task completion of a
//     waited group, shutdown) first checks the parked-worker count: when
//     nothing is parked the wakeup is one atomic load and the global
//     idle lock of the previous design is gone from the hot path. When
//     workers are parked it wakes exactly ONE, claiming the victim's idle
//     bit by CAS so concurrent producers never double-spend a wakeup.
//
// Targeting: wakeups prefer the worker that scheduling wants to run the
// task — the destination entity's acting worker, then a worker inside the
// task's locality domain (the flattened-domain members or the root job's
// submitted range, i.e. the workers whose ADWS steal ranges can reach the
// task) — and fall back to any parked worker. Cache-level entities have no
// fixed acting worker (leadership moves under Pool.ml), so pushes to them
// wake all parked workers, as the old broadcast did; those domains are
// coarse-grained boundary crossings, not the hot path.

// parkSpins is the number of find-nothing rounds a worker yields through
// before it parks (spin → yield → park).
const parkSpins = 8

// idleWord returns the mask word and bit for worker id.
func (p *Pool) idleWord(id int) (*paddedWord, uint64) {
	return &p.idleWords[id>>6], 1 << (id & 63)
}

// parkPrepare advertises worker w as parked: idle bit, then count. The
// caller must re-check for work (and shutdown) before actually blocking.
//
//adws:hotpath
func (p *Pool) parkPrepare(w *worker) {
	word, bit := p.idleWord(w.id)
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old|bit) {
			break
		}
	}
	p.nparked.Add(1)
}

// claimIdle clears worker id's idle bit and reports whether this call did
// the clearing (claimed the wakeup).
//
//adws:hotpath
func (p *Pool) claimIdle(id int) bool {
	word, bit := p.idleWord(id)
	for {
		old := word.Load()
		if old&bit == 0 {
			return false
		}
		if word.CompareAndSwap(old, old&^bit) {
			return true
		}
	}
}

// parkCancel withdraws worker w's advertised park after its recheck found
// work. If a producer claimed w concurrently, its wake token is already in
// flight; absorb it so no stale token survives into the next park cycle.
func (p *Pool) parkCancel(w *worker) {
	if p.claimIdle(w.id) {
		p.nparked.Add(-1)
		return
	}
	<-w.parkCh
}

// tryWake wakes worker w if it is advertised as parked. Exactly one token
// is sent per successful claim; the one-slot channel never blocks because
// a worker consumes its token before it can advertise again.
//
//adws:hotpath
func (p *Pool) tryWake(w *worker) bool {
	if !p.claimIdle(w.id) {
		return false
	}
	p.nparked.Add(-1)
	// The one-slot semaphore send cannot block (see above): this is the
	// single sanctioned channel op on the wakeup fast path.
	w.parkCh <- struct{}{} //adws:allow
	return true
}

// wakeRange wakes one parked worker with id in [lo, hi), if any.
//
//adws:hotpath
func (p *Pool) wakeRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > len(p.workers) {
		hi = len(p.workers)
	}
	for i := lo; i < hi; i++ {
		if p.tryWake(p.workers[i]) {
			return true
		}
	}
	return false
}

// wakeAnyParked wakes one parked worker, scanning the idle bitmask.
//
//adws:hotpath
func (p *Pool) wakeAnyParked() bool {
	for wi := range p.idleWords {
		for {
			mask := p.idleWords[wi].Load()
			if mask == 0 {
				break
			}
			id := wi<<6 + bits.TrailingZeros64(mask)
			if p.tryWake(p.workers[id]) {
				return true
			}
			// Lost the claim race; rescan the word for other bits.
		}
	}
	return false
}

// wakeAllParked wakes every currently parked worker (shutdown, and pushes
// to cache-level entities whose acting worker is a moving leadership).
//
//adws:hotpath
func (p *Pool) wakeAllParked() {
	for _, w := range p.workers {
		p.tryWake(w)
	}
}

// wakeFor wakes one parked worker able to reach a task just pushed to
// entity e on behalf of job j (nil outside job-carrying spawns).
// Producers call it AFTER publishing the task; when no worker is parked
// it costs a single atomic load. The destination entity is passed
// explicitly — a claiming worker may already be rewriting the published
// task's fields (noteStart), so the producer must not re-read them.
//
//adws:hotpath
func (p *Pool) wakeFor(e *entity, j *RootJob) {
	if p.nparked.Load() == 0 {
		return
	}
	if e == nil || e.workerID < 0 {
		p.wakeAllParked()
		return
	}
	// The entity's acting worker executes the task with full locality.
	if p.tryWake(p.workers[e.workerID]) {
		return
	}
	// It is busy: wake a thief whose steal range can reach the task —
	// a member of the flattened domain, or (at the root level) a worker
	// inside the job's submitted range.
	if e.dom.flattened {
		for _, sib := range e.dom.entities {
			if sib.workerID != e.workerID && p.tryWake(p.workers[sib.workerID]) {
				return
			}
		}
	} else if j != nil && !p.policy.isML() {
		if p.wakeRange(int(j.rng.X), int(math.Ceil(j.rng.Y))) {
			return
		}
	}
	p.wakeAnyParked()
}

// wakeForRoot wakes the one worker that can claim a root freshly
// submitted to owner entity e: roots are claimed only by their owner
// entity's acting worker, so waking anyone else is wasted. Cache-level
// owners (multi-level policies) have no fixed acting worker; wake
// everyone parked instead. Like wakeFor, e is passed explicitly because
// the published root task is no longer the producer's to read.
//
//adws:hotpath
func (p *Pool) wakeForRoot(e *entity) {
	if p.nparked.Load() == 0 {
		return
	}
	if e != nil && e.workerID >= 0 {
		p.tryWake(p.workers[e.workerID])
		return
	}
	p.wakeAllParked()
}

// park blocks worker w until a producer wakes it, after advertising and
// re-checking. g is non-nil for a parking task-group wait; the group's
// last completion then also wakes the worker (Pool.taskDone). park returns
// a task when the recheck found one (the caller executes it) and nil after
// a wakeup, a cancellation, or shutdown.
func (w *worker) park(g *taskGroup, minDepth int) *task {
	p := w.pool
	// The worker is going idle: clear the live-introspection current job so
	// /debug/sched and the watchdog stop attributing runtime to it.
	w.curJob.Store(0)
	if g != nil {
		g.waiter.Store(int32(w.id))
	}
	p.parkPrepare(w)
	// Recheck after advertising: anything published before the producer
	// read our idle bit is visible now.
	if p.shutdown.Load() || (g != nil && g.remaining.Load() == 0) {
		p.parkCancel(w)
		return nil
	}
	if t := w.findTask(minDepth); t != nil {
		p.parkCancel(w)
		return t
	}
	if w.wantEv(trace.EvPark, 0) {
		w.emit(trace.Event{Type: trace.EvPark, Time: now()}, 0)
	}
	m := p.metrics
	var parkStart int64
	if m != nil {
		// Blocking again makes any pending wake spurious: that wakeup never
		// led to a task, so drop its wake-to-run measurement instead of
		// recording a duration that ends in another park.
		w.wakeAt = 0
		parkStart = now()
	}
	w.stats.parks.Add(1)
	<-w.parkCh
	w.stats.wakes.Add(1)
	if m != nil {
		wokeAt := now()
		m.Park.Record(w.id, wokeAt-parkStart)
		w.wakeAt = wokeAt
	}
	if w.wantEv(trace.EvWake, 0) {
		w.emit(trace.Event{Type: trace.EvWake, Time: now()}, 0)
	}
	return nil
}
