package runtime

import (
	gort "runtime"

	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/trace"
)

// GroupHint carries the programmer hints of the paper's Fig. 2b: the total
// relative work of the group (w_all) and its working-set size in bytes.
type GroupHint struct {
	// Work is the total work hint; zero means unknown (ADWS then assumes
	// equal work per child).
	Work float64
	// Size is the working-set size hint in bytes for multi-level
	// scheduling; zero means unknown (the group is never tied/flattened).
	Size int64
}

// Group opens a task group. Spawn children with per-child work hints, then
// Wait for all of them; a task may open several groups sequentially but
// they must not overlap.
func (c *Ctx) Group(h GroupHint) *TaskGroup {
	p := c.pool
	g := &taskGroup{
		pool:    p,
		parent:  c,
		workAll: h.Work,
		size:    h.Size,
	}
	g.waiter.Store(-1)

	dom := c.cur.dom
	rng := c.cur.rng
	g.ent = c.entityFor(dom, rng)
	g.fresh = false

	if p.policy.isML() && !dom.flattened {
		if nd, nrng, nent := p.mlDecide(c.w, c.cur, h.Size, g); nd != nil {
			dom, rng, g.ent = nd, nrng, nent
			g.fresh = true
		}
	}
	g.dom = dom
	g.adws = dom.adws
	g.iExec = dom.logicalOf(g.ent.idx)

	if g.adws {
		g.splitter = sched.NewSplitter(rng, h.Work)
		if rng.IsCrossWorker() {
			parentNode := c.cur.group
			if g.fresh || parentNode == nil {
				g.node = sched.NewRootGroup(rng)
			} else {
				g.node = parentNode.NewChildGroup(rng)
			}
			g.childGroup = g.node
			g.childDepth = g.node.Depth()
		} else {
			g.childGroup = c.cur.group
			g.childDepth = c.cur.depth
			if g.fresh {
				g.childGroup, g.childDepth = nil, 0
			}
		}
	}
	return &TaskGroup{g: g}
}

// entityFor resolves the entity a task executes on behalf of.
func (c *Ctx) entityFor(dom *domain, rng sched.Range) *entity {
	if dom.adws {
		return dom.entities[dom.physical(rng.Owner())]
	}
	// WS domains have no ranges; use the task's recorded entity, falling
	// back to the worker's own slot in worker-level domains.
	if c.cur.ent != nil && c.cur.ent.dom == dom {
		return c.cur.ent
	}
	return dom.entities[c.w.id%len(dom.entities)]
}

// TaskGroup is the public handle of a live task group.
type TaskGroup struct {
	g *taskGroup
}

// Spawn adds a child task with the given work hint (w1..wN in Fig. 2b).
// Spawn panics if the group was already waited: a TaskGroup is finished by
// its Wait and cannot be reused (open a new group instead).
func (tg *TaskGroup) Spawn(work float64, fn func(*Ctx)) {
	g := tg.g
	if g.waited {
		panic("runtime: Spawn on a task group that was already waited; open a new group with Ctx.Group")
	}
	g.spawned++
	g.remaining.Add(1)
	t := &task{fn: fn, pg: g, dom: g.dom, job: g.parent.cur.job,
		sdepth: g.parent.cur.sdepth + 1}
	if g.pool.tracer != nil || g.pool.flight.Wants(trace.EvTaskBegin, t.sdepth) {
		t.seq = g.pool.taskSeq.Add(1)
	}

	if !g.adws {
		// Conventional help-first WS: push to the spawning entity's deque;
		// the owner pops LIFO, thieves steal the oldest.
		t.ent = g.ent
		g.ent.push(t, false)
		g.pool.wakeFor(g.ent, t.job)
		return
	}

	t.rng = g.splitter.NextChild(work)
	t.group = g.childGroup
	t.depth = g.childDepth
	t.crossWorker = g.node != nil && t.rng.IsCrossWorker()
	switch sched.Classify(t.rng, g.iExec) {
	case sched.KindMigrate:
		ent := g.dom.entities[g.dom.physical(t.rng.Owner())]
		t.ent = ent
		t.inMigration = true
		if w := g.parent.w; w.wantEv(trace.EvMigration, t.sdepth) {
			w.emit(trace.Event{Type: trace.EvMigration, Time: now(),
				Self: int32(g.iExec), Victim: int32(t.rng.Owner()), Task: t.seq,
				Job: t.jobID(), Depth: int32(t.depth), RangeLo: t.rng.X, RangeHi: t.rng.Y}, t.sdepth)
		}
		ent.push(t, true)
		g.parent.w.stats.migrations.Add(1)
		if t.job != nil {
			t.job.migrations.Add(1)
		}
		g.pool.wakeFor(ent, t.job)
	case sched.KindExecute:
		// The unique cross-worker child owned by the spawning entity: the
		// paper executes it immediately in the work-first manner; with
		// blocking waits we defer it to the head of Wait (DESIGN.md).
		t.ent = g.ent
		g.execChild = t
	case sched.KindLocal:
		t.ent = g.ent
		t.inMigration = g.parent.cur.inMigration && !g.fresh
		g.ent.push(t, t.inMigration)
		g.pool.wakeFor(g.ent, t.job)
	}
}

// Wait blocks until every spawned child (and its descendants) completed.
// The calling worker executes pending tasks while it waits. Wait finishes
// the group: calling Wait twice, or Spawn after Wait, panics.
func (tg *TaskGroup) Wait() {
	g := tg.g
	if g.waited {
		panic("runtime: Wait called twice on the same task group")
	}
	g.waited = true
	c := g.parent
	w := c.w
	p := g.pool

	if w.wantEv(trace.EvWaitEnter, c.cur.sdepth) {
		w.emit(trace.Event{Type: trace.EvWaitEnter, Time: now(),
			Task: c.cur.seq, Job: c.cur.jobID(), Depth: int32(g.childDepth)}, c.cur.sdepth)
	}

	if ec := g.execChild; ec != nil {
		g.execChild = nil
		if ec.group != nil {
			g.ent.lastGroup.Store(ec.group)
		}
		w.execute(ec)
	}

	spins := 0
	var searchStart int64
	for g.remaining.Load() > 0 {
		if t := w.findTask(g.childDepth); t != nil {
			if searchStart != 0 {
				w.stats.waitIdleNS.Add(now() - searchStart)
				searchStart = 0
			}
			spins = 0
			w.execute(t)
			continue
		}
		if searchStart == 0 {
			searchStart = now()
		}
		spins++
		if spins < parkSpins {
			gort.Gosched()
			continue
		}
		// Park until the group's last child completes or a push targets
		// this worker; the recheck inside park closes the race where the
		// completion landed between findTask and advertising.
		spins = 0
		if t := w.park(g, g.childDepth); t != nil {
			if searchStart != 0 {
				w.stats.waitIdleNS.Add(now() - searchStart)
				searchStart = 0
			}
			w.execute(t)
		}
	}
	if searchStart != 0 {
		w.stats.waitIdleNS.Add(now() - searchStart)
	}
	// A wakeup by the group's last completion resumes this continuation:
	// that is the work the wake delivered, so it closes the wake-to-run
	// span (a wake consumed by findTask was already closed in noteStart).
	w.noteRunAfterWake()
	if w.wantEv(trace.EvWaitExit, c.cur.sdepth) {
		w.emit(trace.Event{Type: trace.EvWaitExit, Time: now(),
			Task: c.cur.seq, Job: c.cur.jobID(), Depth: int32(g.childDepth)}, c.cur.sdepth)
	}

	if g.node != nil {
		g.node.Finish()
	}
	if g.tiedTo != nil || g.flattened != nil {
		p.groupTeardown(g, w)
	}
}
