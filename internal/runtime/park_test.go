package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parlab/adws/internal/topology"
)

// awaitFullyParked polls until every worker has advertised itself parked.
func awaitFullyParked(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.nparked.Load() != int32(p.NumWorkers()) {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not fully park: nparked=%d of %d",
				p.nparked.Load(), p.NumWorkers())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIdlePoolParks pins the tentpole behavior of the parking rework: an
// idle pool blocks instead of polling. After a run drains, every worker
// must park, and over a ~200ms idle window the pool must make zero steal
// attempts and zero park/wake cycles (the old timed-wait design woke every
// worker every 50-200ms to re-scan).
func TestIdlePoolParks(t *testing.T) {
	p := newFlatPool(t, ADWS, 4)
	var s int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 200, &s, 0) })
	awaitFullyParked(t, p)

	before := p.Stats()
	if before.Parks == 0 {
		t.Error("no parks recorded on an idle pool")
	}
	time.Sleep(200 * time.Millisecond)
	after := p.Stats()

	if after.StealAttempts != before.StealAttempts {
		t.Errorf("idle pool attempted steals: %d -> %d",
			before.StealAttempts, after.StealAttempts)
	}
	if after.Parks != before.Parks || after.Wakes != before.Wakes {
		t.Errorf("idle pool cycled its parkers: parks %d -> %d, wakes %d -> %d",
			before.Parks, after.Parks, before.Wakes, after.Wakes)
	}
	if got := p.nparked.Load(); got != int32(p.NumWorkers()) {
		t.Errorf("idle pool has %d parked workers, want %d", got, p.NumWorkers())
	}
}

// TestSubmitIntoParkedPool checks the other half of the parking contract:
// a root submitted to a fully parked pool is picked up promptly by a
// targeted wakeup, not stranded until some timeout fires.
func TestSubmitIntoParkedPool(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		p.Run(func(c *Ctx) {
			var s int64
			treeSum(c, 0, 100, &s, 0)
		})
		awaitFullyParked(t, p)

		start := time.Now()
		var ran atomic.Bool
		j, err := p.SubmitRoot(func(c *Ctx) { ran.Store(true) }, 0, 1)
		if err != nil {
			t.Fatalf("%v: SubmitRoot: %v", pol, err)
		}
		waitRoot(t, j)
		if !ran.Load() {
			t.Errorf("%v: root did not run", pol)
		}
		// Generous bound: the old design's floor was a 50ms wait timeout;
		// a targeted wake completes in microseconds even on a loaded CI
		// machine.
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("%v: submit into parked pool took %v", pol, el)
		}
	}
}

// TestCloseFailsUnclaimedRoots pins the Close drain: a root still sitting
// in the queue when Close runs must fail with ErrClosed (Done closed, Err
// set) instead of stranding its waiters forever.
func TestCloseFailsUnclaimedRoots(t *testing.T) {
	p := NewPool(Config{Machine: topology.Flat(1, 32<<20, 1<<20), Policy: ADWS, Seed: 7})
	started := make(chan struct{})
	gate := make(chan struct{})
	j1, err := p.SubmitRoot(func(c *Ctx) {
		close(started)
		<-gate
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// The only worker is pinned inside j1's body (execDepth > 0 claims
	// none), so j2 stays queued and unclaimed.
	j2, err := p.SubmitRoot(func(c *Ctx) { t.Error("orphaned root ran") }, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()

	select {
	case <-j2.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not fail the unclaimed root")
	}
	if !errors.Is(j2.Err(), ErrClosed) {
		t.Errorf("orphaned root Err = %v, want ErrClosed", j2.Err())
	}

	close(gate)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the running root finished")
	}
	waitRoot(t, j1)
	if j1.Err() != nil {
		t.Errorf("completed root Err = %v, want nil", j1.Err())
	}
}

// TestStatsConcurrentPoll is the -race regression for polling Stats during
// a run: the BusyNS derivation reads counters a worker is concurrently
// updating, and the transient negative difference must be clamped, never
// reported.
func TestStatsConcurrentPoll(t *testing.T) {
	p := newFlatPool(t, ADWS, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Stats()
			if st.BusyNS < 0 {
				t.Errorf("aggregate BusyNS = %d, want >= 0", st.BusyNS)
				return
			}
			for _, ws := range st.PerWorker {
				if ws.BusyNS < 0 {
					t.Errorf("worker %d BusyNS = %d, want >= 0", ws.Worker, ws.BusyNS)
					return
				}
			}
		}
	}()
	for i := 0; i < 5; i++ {
		var s int64
		p.Run(func(c *Ctx) { treeSum(c, 0, 2000, &s, 0) })
	}
	close(stop)
	wg.Wait()
}
