// Package runtime is a user-level tasking runtime implementing the ADWS
// paper's schedulers on real OS threads: conventional work stealing
// (SL-WS), single-level almost deterministic work stealing (SL-ADWS), and
// their multi-level variants (ML-WS, ML-ADWS) with cache-hierarchy
// flattening.
//
// The Go runtime's goroutine scheduler cannot be directed, so this package
// bypasses it: a fixed pool of workers (one goroutine per simulated core,
// optionally pinned to OS threads) runs its own scheduler loop over
// per-entity task queues, exactly as MassiveThreads underlies the paper's
// implementation. Continuation handling differs by necessity: Go cannot
// capture stack continuations, so task-group waits are blocking and the
// waiting worker executes pending tasks (help-inside-wait); the paper's
// observable ADWS invariants — left-to-right per-worker order, owner
// executes cross-worker continuations, dominant-group steal ranges — are
// preserved (see DESIGN.md).
package runtime

import (
	"errors"
	"fmt"
	"math"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parlab/adws/internal/obs"
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// Policy selects the scheduling algorithm.
type Policy int

const (
	// WS is conventional random work stealing.
	WS Policy = iota
	// ADWS is single-level almost deterministic work stealing.
	ADWS
	// MLWS is multi-level scheduling with work stealing per level.
	MLWS
	// MLADWS is multi-level ADWS with cache-hierarchy flattening.
	MLADWS
)

func (p Policy) String() string {
	switch p {
	case WS:
		return "ws"
	case ADWS:
		return "adws"
	case MLWS:
		return "mlws"
	case MLADWS:
		return "mladws"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// isADWS reports whether deterministic task mapping is used at each level.
func (p Policy) isADWS() bool { return p == ADWS || p == MLADWS }

// isML reports whether multi-level scheduling is used.
func (p Policy) isML() bool { return p == MLWS || p == MLADWS }

// Config parameterizes a Pool.
type Config struct {
	// Machine describes the cache hierarchy used for worker placement and
	// multi-level scheduling. Defaults to a flat machine with one worker
	// per available CPU.
	Machine *topology.Machine
	// Policy selects the scheduler (default WS).
	Policy Policy
	// Seed drives victim selection.
	Seed uint64
	// PinThreads locks each worker goroutine to an OS thread.
	PinThreads bool
	// Tracer, if non-nil, receives per-worker scheduler events (task
	// spans, steals, migrations, waits, multi-level boundary crossings).
	// It must have at least as many rings as the pool has workers. A nil
	// Tracer costs one pointer check per event site.
	Tracer *trace.Tracer
	// Metrics, if non-nil, receives park, steal-probe, and wake-to-run
	// latencies. Its histograms must have at least one shard per worker.
	// A nil Metrics costs one pointer check per site, like the Tracer.
	Metrics *Metrics
	// Flight, if non-nil, is the always-on flight recorder: it receives
	// the same events as the Tracer but filtered by its type mask and
	// depth limit (obs.Recorder.Wants), checked BEFORE the event — and
	// its timestamp — is built. It must have at least as many rings as
	// the pool has workers. Nil costs one pointer check per site.
	Flight *obs.Recorder
}

// Pool is a running worker pool.
type Pool struct {
	cfg     Config
	machine *topology.Machine
	policy  Policy
	// tracer is nil unless tracing was requested; every event site guards
	// on that single pointer.
	tracer *trace.Tracer
	// metrics is nil unless latency recording was requested; same
	// one-pointer-check contract as the tracer.
	metrics *Metrics
	// flight is nil unless a flight recorder was attached; obs.Recorder
	// methods are nil-receiver-safe, so sites gate on flight.Wants alone.
	flight *obs.Recorder
	// taskSeq issues task creation ordinals, only when tracing or when
	// the flight recorder keeps the task's span events.
	taskSeq atomic.Int64

	workers []*worker
	rootDom *domain
	domSeq  atomic.Int64

	// ml guards the multi-level leadership and domain structures.
	//adws:lockrank(60)
	ml struct {
		sync.Mutex
		caches [][]*mlCache //adws:locked(ml)
	}

	// idleWords is the parked-worker bitmask (bit w&63 of word w>>6) and
	// nparked its mirror count, the producers' one-atomic-load fast path.
	// See park.go for the parking/wakeup protocol.
	idleWords []paddedWord
	nparked   atomic.Int32

	shutdown atomic.Bool
	wg       sync.WaitGroup

	// runMu serializes Run calls: concurrent Runs are safe but execute one
	// after another (use SubmitRoot for concurrent root computations).
	runMu sync.Mutex //adws:lockrank(40) Run injects roots under it (rootMu rank 50)
	// rootMu guards rootQ, the FIFO of injected root tasks awaiting their
	// owner entity's acting worker (pushing from a submitting goroutine
	// would violate the lock-free deque's single-owner requirement).
	// rootN mirrors len(rootQ) as the workers' lock-free fast path.
	rootMu sync.Mutex //adws:lockrank(50)
	rootQ  []*task    //adws:locked(rootMu)
	rootN  atomic.Int32
	// jobSeq issues root-job ordinals (1-based; 0 means "no job").
	jobSeq atomic.Int64
}

// paddedWord is an atomic.Uint64 padded to its own cache line so idle-mask
// words do not false-share.
type paddedWord struct {
	atomic.Uint64
	_ [56]byte
}

// ErrClosed is returned by SubmitRoot on a closed pool, and by RootJob.Err
// on jobs whose root was still unclaimed when the pool closed.
var ErrClosed = errors.New("runtime: pool is closed")

// ErrBadRange is returned by SubmitRoot when the requested placement
// fraction is empty, reversed, or NaN.
var ErrBadRange = errors.New("runtime: invalid root range (need lo < hi)")

// RootJob tracks one injected root computation: a completion signal plus
// per-job scheduling counters maintained by the workers (every task
// transitively spawned by the root carries a pointer to its RootJob).
type RootJob struct {
	id   int64
	rng  sched.Range
	done chan struct{}
	// err is set (before done closes) when the job failed without running,
	// e.g. the pool closed while the root was still unclaimed.
	err atomic.Pointer[error]

	tasks, steals, migrations atomic.Int64
}

// ID returns the job's ordinal (1-based, unique per pool). Trace events of
// the job's tasks carry it in Event.Job.
func (j *RootJob) ID() int64 { return j.id }

// Done is closed when the root task and everything it transitively spawned
// and awaited completed — or when the job failed without running (see Err).
func (j *RootJob) Done() <-chan struct{} { return j.done }

// Err reports why the job failed without running: ErrClosed when the pool
// was closed while the root was still queued, nil for jobs that ran (task
// bodies have no error channel of their own). Err is safe to call at any
// time; it is final once Done is closed.
func (j *RootJob) Err() error {
	if e := j.err.Load(); e != nil {
		return *e
	}
	return nil
}

// fail completes the job without running it.
func (j *RootJob) fail(err error) {
	j.err.Store(&err)
	close(j.done)
}

// Range returns the distribution range the root task was placed with, in
// root-domain entity units.
func (j *RootJob) Range() sched.Range { return j.rng }

// Tasks returns the number of the job's tasks executed so far. Safe to
// read while the job runs.
func (j *RootJob) Tasks() int64 { return j.tasks.Load() }

// Steals returns the number of successful steals that moved one of the
// job's tasks. Safe to read while the job runs.
func (j *RootJob) Steals() int64 { return j.steals.Load() }

// Migrations returns the number of deterministic migrations of the job's
// tasks. Safe to read while the job runs.
func (j *RootJob) Migrations() int64 { return j.migrations.Load() }

// task is one schedulable unit.
type task struct {
	fn func(*Ctx)
	// pg is the group this task belongs to (nil for the root task).
	pg *taskGroup

	dom         *domain
	ent         *entity
	rng         sched.Range
	group       *sched.GroupNode
	depth       int
	inMigration bool
	crossWorker bool
	// sdepth is the spawn-tree depth (root = 0, each Spawn adds one).
	// The scheduler's group depth above saturates for worker-local work,
	// so the flight recorder's task-span depth filter keys on this
	// instead; it costs one add per spawn and is policy-independent.
	sdepth int32
	// seq is the task's creation ordinal, assigned only when tracing.
	seq int64
	// job is the root job this task descends from (nil only for internal
	// tasks created before job tracking existed; all Run/SubmitRoot roots
	// carry one).
	job *RootJob
}

// jobID returns the task's job ordinal, or 0 without a job.
func (t *task) jobID() int64 {
	if t.job == nil {
		return 0
	}
	return t.job.id
}

// taskGroup is a live task group created by Ctx.Group.
type taskGroup struct {
	pool   *Pool
	parent *Ctx
	// hints
	workAll float64
	size    int64
	// node is the cross-worker group tree node (nil for non-cross groups
	// or WS domains).
	node *sched.GroupNode
	// splitter divides the parent range incrementally across Spawn calls.
	splitter *sched.Splitter
	// dom is the domain children are spawned into.
	dom *domain
	// ent is the parent's entity in dom.
	ent *entity
	// iExec is the parent's logical entity index in dom.
	iExec int
	// childDepth and childGroup apply to spawned children.
	childDepth int
	childGroup *sched.GroupNode
	// execChild is the deferred type-(2) child, run first in Wait.
	execChild *task
	// remaining counts unfinished children.
	remaining atomic.Int32
	// waiter is the worker id parked in this group's Wait (-1 none): the
	// last child's completion wakes exactly that worker (park.go).
	waiter atomic.Int32
	// spawned counts Spawn calls (diagnostics).
	spawned int
	// tiedTo / flattened mirror the multi-level state.
	tiedTo    *mlCache
	flattened *domain
	// fresh marks groups that opened a new domain.
	fresh bool
	adws  bool
	// waited is set once Wait runs; further Spawn/Wait calls panic.
	waited bool
}

// Ctx is the execution context a task body receives.
type Ctx struct {
	pool *Pool
	w    *worker
	cur  *task
}

// Worker returns the executing worker's ID.
func (c *Ctx) Worker() int { return c.w.id }

// Pool returns the owning pool.
func (c *Ctx) Pool() *Pool { return c.pool }

// NewPool starts the workers.
func NewPool(cfg Config) *Pool {
	if cfg.Machine == nil {
		cfg.Machine = topology.Flat(gort.GOMAXPROCS(0), 32<<20, 1<<20)
	}
	p := &Pool{cfg: cfg, machine: cfg.Machine, policy: cfg.Policy,
		tracer: cfg.Tracer, metrics: cfg.Metrics, flight: cfg.Flight}
	n := cfg.Machine.NumWorkers()
	if p.tracer != nil && p.tracer.NumWorkers() < n {
		panic(fmt.Sprintf("runtime: tracer has %d worker rings, pool needs %d",
			p.tracer.NumWorkers(), n))
	}
	if p.flight != nil && p.flight.NumWorkers() < n {
		panic(fmt.Sprintf("runtime: flight recorder has %d worker rings, pool needs %d",
			p.flight.NumWorkers(), n))
	}
	if p.metrics != nil {
		p.metrics.checkShards(n)
	}
	p.idleWords = make([]paddedWord, (n+63)/64)
	p.workers = make([]*worker, n)
	for i := 0; i < n; i++ {
		p.workers[i] = &worker{id: i, pool: p, rng: sched.NewRNG(cfg.Seed, i),
			parkCh: make(chan struct{}, 1)}
	}
	p.initTopology()
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.loop(cfg.PinThreads)
	}
	return p
}

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// Policy returns the pool's scheduling policy.
func (p *Pool) Policy() Policy { return p.policy }

// Close stops all workers. Outstanding Runs must have completed. Roots
// submitted but not yet claimed by a worker are failed: their Done channel
// closes and their Err reports ErrClosed, so no Submit caller is left
// blocked on an abandoned job.
func (p *Pool) Close() {
	p.shutdown.Store(true)
	// Drain the root queue before waking the workers: a root no worker
	// ever claimed would otherwise strand its job's Done forever.
	p.rootMu.Lock()
	orphans := p.rootQ
	p.rootQ = nil
	p.rootN.Store(0)
	p.rootMu.Unlock()
	for _, t := range orphans {
		if t.job != nil {
			t.job.fail(ErrClosed)
		}
	}
	p.wakeAllParked()
	p.wg.Wait()
}

// Run executes fn as the root task and blocks until it (and every task it
// transitively spawned and waited for) completes. Concurrent Run calls are
// safe: they serialize and execute one after another, each over the full
// worker range (submit concurrent roots with SubmitRoot instead). Run
// panics if the pool is closed.
func (p *Pool) Run(fn func(*Ctx)) {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	j, err := p.SubmitRoot(fn, 0, 1)
	if err != nil {
		panic("runtime: Run on closed Pool")
	}
	<-j.Done()
}

// SubmitRoot injects fn as a new root task placed on the fraction
// [lo, hi) of the root scheduling domain (0 ≤ lo < hi ≤ 1; Run uses
// [0, 1)) and returns without waiting. Multiple roots may be in flight
// concurrently: each is claimed by the worker acting for the owner entity
// of its range, and under ADWS its hint-guided division and dominant-group
// steal ranges confine its descendants to the submitted fraction (up to
// dynamic load balancing). A single in-flight SubmitRoot over [0, 1)
// behaves exactly like Run.
//
// SubmitRoot returns ErrClosed on a closed pool and ErrBadRange when the
// fraction is NaN or empty (hi <= lo after clamping to [0, 1]): a silently
// remapped range would defeat the caller's placement hints. Roots
// submitted before Close that no worker claimed yet are failed by Close:
// their Done closes and Err reports ErrClosed.
func (p *Pool) SubmitRoot(fn func(*Ctx), lo, hi float64) (*RootJob, error) {
	if p.shutdown.Load() {
		return nil, ErrClosed
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("%w: [%v, %v)", ErrBadRange, lo, hi)
	}
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if hi <= lo {
		return nil, fmt.Errorf("%w: [%v, %v)", ErrBadRange, lo, hi)
	}
	d := p.rootDom
	n := float64(len(d.entities))
	off := float64(d.offset)
	rng := sched.Range{X: off + lo*n, Y: off + hi*n}
	// Keep the owner inside the domain even when lo rounds up to 1.
	if rng.X > off+n-1 {
		rng.X = off + n - 1
	}
	j := &RootJob{id: p.jobSeq.Add(1), rng: rng, done: make(chan struct{})}
	owner := d.entities[d.physical(rng.Owner())]
	root := &task{
		fn: func(c *Ctx) {
			fn(c)
			close(j.done)
		},
		dom: d,
		ent: owner,
		rng: rng,
		job: j,
	}
	if p.tracer != nil || p.flight.Wants(trace.EvTaskBegin, 0) {
		root.seq = p.taskSeq.Add(1)
	}
	p.rootMu.Lock()
	if p.shutdown.Load() {
		p.rootMu.Unlock()
		return nil, ErrClosed
	}
	p.rootQ = append(p.rootQ, root)
	p.rootN.Store(int32(len(p.rootQ)))
	p.rootMu.Unlock()
	p.wakeForRoot(owner)
	return j, nil
}

// claimRoot hands the oldest pending root task owned by one of the
// worker's candidate entities to the worker, or nil. Only top-level
// callers claim roots (never helping waits), so a root's completion can
// never be trapped under another job's wait.
func (p *Pool) claimRoot(cands []*entity) *task {
	p.rootMu.Lock()
	defer p.rootMu.Unlock()
	for i, t := range p.rootQ {
		for _, ent := range cands {
			if t.ent == ent {
				copy(p.rootQ[i:], p.rootQ[i+1:])
				// Nil the vacated tail slot: a stale *task pointer in the
				// backing array would keep the finished job's closure (and
				// whatever it captures) alive until the slot is reused.
				p.rootQ[len(p.rootQ)-1] = nil
				p.rootQ = p.rootQ[:len(p.rootQ)-1]
				p.rootN.Store(int32(len(p.rootQ)))
				return t
			}
		}
	}
	return nil
}

// WorkerStats is one worker's scheduling counters.
type WorkerStats struct {
	Worker                                   int
	Tasks, Steals, StealAttempts, Migrations int64
	// Parks counts times the worker blocked on its parker; Wakes counts
	// wake tokens it consumed (parkCancel absorptions are neither).
	Parks, Wakes int64
	// BusyNS and IdleNS follow the same accounting as Stats.
	BusyNS, IdleNS int64
}

// Stats aggregates per-worker counters.
type Stats struct {
	Tasks, Steals, StealAttempts, Migrations int64
	// Parks and Wakes count worker park/wake cycles: on an idle pool both
	// stay flat (workers block indefinitely instead of polling), and under
	// load Wakes approximates the number of productive wakeups.
	Parks, Wakes int64
	// BusyNS and IdleNS are wall-clock nanoseconds summed over workers:
	// time executing tasks and time searching for work (the paper's §6.1
	// busy/idle profile; the nested execution of helping waits counts as
	// busy for the innermost task only once).
	BusyNS, IdleNS int64
	// PerWorker breaks the aggregates down by worker, indexed by worker
	// ID.
	PerWorker []WorkerStats
}

// StealSuccessRate returns Steals/StealAttempts, or 0 with no attempts.
func (s Stats) StealSuccessRate() float64 {
	if s.StealAttempts == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.StealAttempts)
}

// Stats returns scheduling counters accumulated since pool creation.
func (p *Pool) Stats() Stats {
	s := Stats{PerWorker: make([]WorkerStats, len(p.workers))}
	for i, w := range p.workers {
		wi := w.stats.waitIdleNS.Load()
		busy := w.stats.busyNS.Load() - wi
		if busy < 0 {
			// waitIdleNS accumulates inside a still-open busy span: until
			// the outer busyNS add lands the difference can transiently go
			// negative. Clamp rather than report nonsense mid-run.
			busy = 0
		}
		ws := WorkerStats{
			Worker:        i,
			Tasks:         w.stats.tasks.Load(),
			Steals:        w.stats.steals.Load(),
			StealAttempts: w.stats.stealAttempts.Load(),
			Migrations:    w.stats.migrations.Load(),
			Parks:         w.stats.parks.Load(),
			Wakes:         w.stats.wakes.Load(),
			BusyNS:        busy,
			IdleNS:        w.stats.idleNS.Load() + wi,
		}
		s.PerWorker[i] = ws
		s.Tasks += ws.Tasks
		s.Steals += ws.Steals
		s.StealAttempts += ws.StealAttempts
		s.Migrations += ws.Migrations
		s.Parks += ws.Parks
		s.Wakes += ws.Wakes
		s.BusyNS += ws.BusyNS
		s.IdleNS += ws.IdleNS
	}
	return s
}

// workerStats is a worker's hot counter block, padded to whole cache
// lines: the counters are bumped by the owning worker on every task,
// steal probe, and park cycle, and must not share a line with the fields
// producers read on the wakeup fast path (parkCh, id). Padding is
// enforced by adwsvet's atomicpad analyzer and runtime/pad_test.go.
type workerStats struct {
	tasks, steals, stealAttempts, migrations atomic.Int64
	// parks counts blocking park cycles; wakes counts wake tokens
	// consumed (parkCancel absorptions are neither).
	parks, wakes atomic.Int64
	// busyNS and idleNS accumulate wall-clock task-execution and
	// work-search time (the paper's busy/idle profile, §6.1).
	// busyNS measures outermost task spans; waitIdleNS measures time spent
	// searching/parking inside helping waits, which is subtracted from
	// busy and added to idle when reporting.
	busyNS, idleNS, waitIdleNS atomic.Int64
	_                          [56]byte
}

// worker is one scheduler loop.
type worker struct {
	// stats leads the struct so the owner-written counters start at
	// offset 0 on their own cache lines.
	stats workerStats //adws:padded

	id   int
	pool *Pool
	rng  *sched.RNG

	// leads is the multi-level cache this worker currently leads.
	leads *mlCache
	// fdMu guards fdEnts (flattened-domain entities, newest last).
	fdMu   sync.Mutex //adws:lockrank(70) mlDecide flattens under Pool.ml (rank 60)
	fdEnts []*entity  //adws:locked(fdMu)

	// parkCh is the worker's one-slot wake semaphore (see park.go).
	parkCh chan struct{}

	// execDepth tracks nested execution via helping waits (owner-only).
	execDepth int
	// curJob and curStart are the live-introspection pair read lock-free
	// by Pool.SchedSnapshot: the root-job ordinal of the task the worker
	// is running and when it began running that job continuously
	// (monotonic ns). The owner stores them only on job CHANGES (and
	// clears curJob before parking), so per-task cost is one predicted
	// load+compare.
	curJob, curStart atomic.Int64
	// idleSince marks the start of the current idle stretch (monotonic
	// ns), or 0 when not idle. Only the owning worker writes it.
	idleSince int64
	// wakeAt is the timestamp of the last park wakeup whose wake-to-run
	// latency has not been recorded yet, or 0. Owner-only; cleared by
	// noteRunAfterWake or by the next blocking park (a spurious wake must
	// not pollute the histogram). Unused when pool.metrics is nil.
	wakeAt int64
}

// now returns a monotonic timestamp in nanoseconds.
func now() int64 { return time.Now().UnixNano() }

// markIdleStart begins an idle stretch if none is open.
func (w *worker) markIdleStart() {
	if w.idleSince == 0 {
		w.idleSince = now()
	}
}

// markIdleEnd closes an open idle stretch.
func (w *worker) markIdleEnd() {
	if w.idleSince != 0 {
		w.stats.idleNS.Add(now() - w.idleSince)
		w.idleSince = 0
	}
}

func (w *worker) loop(pin bool) {
	defer w.pool.wg.Done()
	if pin {
		gort.LockOSThread()
		defer gort.UnlockOSThread()
	}
	p := w.pool
	idleSpins := 0
	for !p.shutdown.Load() {
		if t := w.findTask(0); t != nil {
			idleSpins = 0
			w.markIdleEnd()
			w.execute(t)
			continue
		}
		w.markIdleStart()
		idleSpins++
		if idleSpins < parkSpins {
			gort.Gosched()
			continue
		}
		// Park until a targeted wakeup (push, root submission, shutdown).
		// No timeout: a fully idle pool blocks and burns zero CPU.
		idleSpins = 0
		if t := w.park(nil, 0); t != nil {
			w.markIdleEnd()
			w.execute(t)
		}
	}
}

// wantEv reports whether an event of type t at filter depth fd should
// be built at all: the tracer takes everything, the flight recorder
// takes what its filter passes. Sites call it BEFORE constructing the
// event so a filtered event never reads the clock. For task spans and
// waits fd is the SPAWN depth (task.sdepth), not the event's group
// depth — group depth saturates for worker-local work and would let
// every microtask through the recorder; fd is irrelevant for the
// always-kept types.
//
//adws:hotpath
func (w *worker) wantEv(t trace.EventType, fd int32) bool {
	return w.pool.tracer != nil || w.pool.flight.Wants(t, fd)
}

// emit records one event to the tracer and, when the flight filter
// passes its type at filter depth fd, to the flight recorder. Callers
// must have checked wantEv with the same type and fd.
//
//adws:hotpath
func (w *worker) emit(ev trace.Event, fd int32) {
	if tr := w.pool.tracer; tr != nil {
		tr.Record(w.id, ev)
	}
	if fl := w.pool.flight; fl.Wants(ev.Type, fd) {
		fl.Record(w.id, ev)
	}
}

// execute runs one task to completion.
func (w *worker) execute(t *task) {
	w.stats.tasks.Add(1)
	if t.job != nil {
		t.job.tasks.Add(1)
	}
	w.execDepth++
	var start int64
	if w.execDepth == 1 {
		start = now()
		if j := t.jobID(); j != w.curJob.Load() {
			w.curJob.Store(j)
			w.curStart.Store(start)
		}
	}
	if w.wantEv(trace.EvTaskBegin, t.sdepth) {
		w.emit(trace.Event{Type: trace.EvTaskBegin, Time: now(),
			Task: t.seq, Job: t.jobID(), Depth: int32(t.depth),
			RangeLo: t.rng.X, RangeHi: t.rng.Y}, t.sdepth)
	}
	c := &Ctx{pool: w.pool, w: w, cur: t}
	t.fn(c)
	if w.wantEv(trace.EvTaskEnd, t.sdepth) {
		w.emit(trace.Event{Type: trace.EvTaskEnd, Time: now(),
			Task: t.seq, Job: t.jobID(), Depth: int32(t.depth)}, t.sdepth)
	}
	if w.execDepth == 1 {
		w.stats.busyNS.Add(now() - start)
	}
	w.execDepth--
	w.pool.taskDone(t)
}

// taskDone propagates a task's completion to its group. Completions create
// no new work, so the only worker a completion can unblock is the group's
// waiting parent — and only the LAST completion unblocks it. The fast path
// is one atomic decrement; the old global broadcast is gone.
//
//adws:hotpath
func (p *Pool) taskDone(t *task) {
	g := t.pg
	if g == nil {
		return
	}
	if t.crossWorker && g.node != nil {
		g.node.CrossTaskCompleted()
	}
	if g.remaining.Add(-1) == 0 && p.nparked.Load() != 0 {
		if id := g.waiter.Load(); id >= 0 {
			p.tryWake(p.workers[id])
		}
	}
}
