package runtime

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parlab/adws/internal/topology"
)

func newFlatPool(t *testing.T, policy Policy, workers int) *Pool {
	t.Helper()
	p := NewPool(Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  policy,
		Seed:    42,
	})
	t.Cleanup(p.Close)
	return p
}

// waitRoot fails the test if the root job does not complete in time.
func waitRoot(t *testing.T, j *RootJob) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("root job did not complete")
	}
}

// TestSubmitRootConcurrent injects many roots from many goroutines on
// every policy and checks each runs its whole subtree exactly once.
func TestSubmitRootConcurrent(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		const jobs = 12
		var total atomic.Int64
		var wg sync.WaitGroup
		roots := make([]*RootJob, jobs)
		for i := 0; i < jobs; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				lo := float64(i%4) * 0.25
				j, err := p.SubmitRoot(func(c *Ctx) {
					var s int64
					treeSum(c, 0, 200, &s, 0)
					total.Add(s)
				}, lo, lo+0.25)
				if err != nil {
					t.Errorf("%v: SubmitRoot: %v", pol, err)
					return
				}
				roots[i] = j
			}()
		}
		wg.Wait()
		for _, j := range roots {
			if j != nil {
				waitRoot(t, j)
			}
		}
		want := int64(jobs) * 199 * 200 / 2
		if got := total.Load(); got != want {
			t.Errorf("%v: total = %d, want %d", pol, got, want)
		}
	}
}

// TestConcurrentRunSerializes is the -race regression for concurrent Run
// calls: they must serialize, so unsynchronized access from consecutive
// root bodies is race-free.
func TestConcurrentRunSerializes(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		shared := 0 // deliberately unsynchronized: Run must serialize
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Run(func(c *Ctx) {
					shared++
					var s int64
					treeSum(c, 0, 100, &s, 0)
				})
			}()
		}
		wg.Wait()
		if shared != 8 {
			t.Errorf("%v: shared = %d, want 8 (Runs overlapped?)", pol, shared)
		}
	}
}

// TestSubmitRootPlacement pins the fraction-to-worker mapping: a root
// submitted at [lo, hi) starts on the worker owning lo's entity.
func TestSubmitRootPlacement(t *testing.T) {
	p := newFlatPool(t, ADWS, 4)
	for i := 0; i < 4; i++ {
		lo := float64(i) * 0.25
		var worker atomic.Int64
		j, err := p.SubmitRoot(func(c *Ctx) { worker.Store(int64(c.Worker())) }, lo, lo+0.25)
		if err != nil {
			t.Fatal(err)
		}
		waitRoot(t, j)
		if got := worker.Load(); got != int64(i) {
			t.Errorf("root at [%v, %v): ran on worker %d, want %d", lo, lo+0.25, got, i)
		}
		if rng := j.Range(); rng.Owner() != i {
			t.Errorf("root at lo=%v: range %v owner %d, want %d", lo, rng, rng.Owner(), i)
		}
	}
}

// TestSubmitRootClampsRange pins the defensive clamping of out-of-bounds
// but well-ordered fractions.
func TestSubmitRootClampsRange(t *testing.T) {
	p := newFlatPool(t, ADWS, 4)
	for _, tc := range [][2]float64{{-1, 2}, {-0.5, 0.5}, {0.25, 1.75}} {
		j, err := p.SubmitRoot(func(c *Ctx) {}, tc[0], tc[1])
		if err != nil {
			t.Fatalf("SubmitRoot(%v, %v): %v", tc[0], tc[1], err)
		}
		waitRoot(t, j)
		rng := j.Range()
		if rng.X < 0 || rng.Y > 4 || rng.X >= rng.Y {
			t.Errorf("SubmitRoot(%v, %v): range %v out of bounds", tc[0], tc[1], rng)
		}
	}
}

// TestSubmitRootBadRange pins the explicit rejection of invalid ranges: a
// silently remapped range would land a buggy caller's job on the whole
// pool and defeat placement hints, so empty, reversed, and NaN fractions
// must fail loudly with ErrBadRange.
func TestSubmitRootBadRange(t *testing.T) {
	p := newFlatPool(t, ADWS, 4)
	for _, tc := range [][2]float64{
		{0.5, 0.5},               // empty: lo == hi
		{0, 0},                   // empty at the origin
		{0.5, 0.25},              // reversed
		{math.NaN(), 1},          // NaN lo
		{0, math.NaN()},          // NaN hi
		{math.NaN(), math.NaN()}, // both NaN
		{2, 3},                   // empty after clamping (both above 1)
	} {
		j, err := p.SubmitRoot(func(c *Ctx) { t.Error("bad-range root ran") }, tc[0], tc[1])
		if !errors.Is(err, ErrBadRange) {
			t.Errorf("SubmitRoot(%v, %v): err = %v, want ErrBadRange", tc[0], tc[1], err)
		}
		if j != nil {
			t.Errorf("SubmitRoot(%v, %v): returned a job alongside the error", tc[0], tc[1])
		}
	}
}

// TestRootJobCounters checks the live per-job counters: on a fresh pool
// with a single job they must equal the pool-level aggregates.
func TestRootJobCounters(t *testing.T) {
	p := newFlatPool(t, ADWS, 4)
	var s int64
	j, err := p.SubmitRoot(func(c *Ctx) { treeSum(c, 0, 2000, &s, 0) }, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitRoot(t, j)
	st := p.Stats()
	if j.Tasks() != st.Tasks {
		t.Errorf("job tasks = %d, pool tasks = %d", j.Tasks(), st.Tasks)
	}
	if j.Steals() != st.Steals {
		t.Errorf("job steals = %d, pool steals = %d", j.Steals(), st.Steals)
	}
	if j.Migrations() != st.Migrations {
		t.Errorf("job migrations = %d, pool migrations = %d", j.Migrations(), st.Migrations)
	}
	if j.Tasks() == 0 {
		t.Error("job recorded no tasks")
	}
}

// TestSubmitRootAfterClose pins the documented ErrClosed error.
func TestSubmitRootAfterClose(t *testing.T) {
	p := NewPool(Config{Machine: topology.Flat(2, 32<<20, 1<<20), Policy: ADWS, Seed: 1})
	p.Close()
	if _, err := p.SubmitRoot(func(c *Ctx) {}, 0, 1); err != ErrClosed {
		t.Errorf("SubmitRoot after Close: err = %v, want ErrClosed", err)
	}
}

// TestRunAfterClosePanics pins the documented panic.
func TestRunAfterClosePanics(t *testing.T) {
	p := NewPool(Config{Machine: topology.Flat(2, 32<<20, 1<<20), Policy: WS, Seed: 1})
	p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run after Close did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "closed") {
			t.Errorf("panic = %v, want message mentioning closed pool", r)
		}
	}()
	p.Run(func(c *Ctx) {})
}

// TestSpawnAfterWaitPanics pins the documented misuse panic: a task group
// is single-shot, Spawn after Wait must fail loudly instead of losing the
// child.
func TestSpawnAfterWaitPanics(t *testing.T) {
	p := newFlatPool(t, ADWS, 2)
	var got any
	p.Run(func(c *Ctx) {
		defer func() { got = recover() }()
		g := c.Group(GroupHint{})
		g.Spawn(1, func(*Ctx) {})
		g.Wait()
		g.Spawn(1, func(*Ctx) {})
	})
	s, ok := got.(string)
	if !ok || !strings.Contains(s, "already waited") {
		t.Errorf("Spawn after Wait: recovered %v, want already-waited panic", got)
	}
}

// TestWaitTwicePanics pins the documented misuse panic for double Wait.
func TestWaitTwicePanics(t *testing.T) {
	p := newFlatPool(t, ADWS, 2)
	var got any
	p.Run(func(c *Ctx) {
		defer func() { got = recover() }()
		g := c.Group(GroupHint{})
		g.Spawn(1, func(*Ctx) {})
		g.Wait()
		g.Wait()
	})
	s, ok := got.(string)
	if !ok || !strings.Contains(s, "twice") {
		t.Errorf("double Wait: recovered %v, want wait-twice panic", got)
	}
}

// TestRunIsSubmitRootFullRange checks Run and a full-range SubmitRoot
// produce identical results and that Run's jobs are visible in the
// job-ordinal sequence (both paths share the root queue).
func TestRunIsSubmitRootFullRange(t *testing.T) {
	p := newFlatPool(t, ADWS, 4)
	var viaRun, viaSubmit int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 500, &viaRun, 0) })
	j, err := p.SubmitRoot(func(c *Ctx) { treeSum(c, 0, 500, &viaSubmit, 0) }, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitRoot(t, j)
	if viaRun != viaSubmit {
		t.Errorf("Run sum %d != Submit sum %d", viaRun, viaSubmit)
	}
	if j.ID() < 2 {
		t.Errorf("second root has ordinal %d, want >= 2 (Run consumes ordinals too)", j.ID())
	}
}

// TestSubmitRootCancellationIndependence checks that one job's outcome
// does not disturb concurrently running jobs: a long chain of jobs on
// disjoint ranges all complete while the pool also serves Run traffic.
func TestSubmitRootWithConcurrentRun(t *testing.T) {
	p := newTestPool(t, ADWS)
	stopRun := make(chan struct{})
	var runDone sync.WaitGroup
	runDone.Add(1)
	go func() {
		defer runDone.Done()
		for {
			select {
			case <-stopRun:
				return
			default:
			}
			var s int64
			p.Run(func(c *Ctx) { treeSum(c, 0, 300, &s, 0) })
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		var s int64
		j, err := p.SubmitRoot(func(c *Ctx) { treeSum(c, 0, 300, &s, 0) }, 0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-j.Done():
		case <-ctx.Done():
			t.Fatal("job starved by concurrent Run traffic")
		}
		if s != 299*300/2 {
			t.Errorf("job %d: sum = %d", i, s)
		}
	}
	close(stopRun)
	runDone.Wait()
}
