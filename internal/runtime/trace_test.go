package runtime

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// traceTree is a fork-join spawn tree driving all event kinds.
func traceTree(c *Ctx, depth int, sz int64) {
	if depth == 0 {
		return
	}
	g := c.Group(GroupHint{Work: float64(int(1) << depth), Size: sz})
	g.Spawn(1, func(c *Ctx) { traceTree(c, depth-1, sz/2) })
	g.Spawn(1, func(c *Ctx) { traceTree(c, depth-1, sz/2) })
	g.Wait()
}

// TestTraceMatchesStats verifies the acceptance criterion that the derived
// trace summary and Pool.Stats report identical scheduling counters: both
// are incremented at the same code sites, and the ring capacity here is
// large enough that nothing is dropped.
func TestTraceMatchesStats(t *testing.T) {
	for _, pol := range testPolicies {
		tr := trace.New(16, 1<<16)
		p := NewPool(Config{
			Machine: topology.TwoLevel16(),
			Policy:  pol,
			Seed:    42,
			Tracer:  tr,
		})
		p.Run(func(c *Ctx) { traceTree(c, 8, 8<<20) })
		p.Close() // quiesce workers before reading counters and rings

		st := p.Stats()
		sum := tr.Summarize()
		if sum.Drops != 0 {
			t.Fatalf("%v: %d events dropped; enlarge the test ring", pol, sum.Drops)
		}
		if sum.Tasks != st.Tasks {
			t.Errorf("%v: trace tasks=%d stats tasks=%d", pol, sum.Tasks, st.Tasks)
		}
		if sum.Steals != st.Steals {
			t.Errorf("%v: trace steals=%d stats steals=%d", pol, sum.Steals, st.Steals)
		}
		if sum.StealAttempts != st.StealAttempts {
			t.Errorf("%v: trace attempts=%d stats attempts=%d", pol, sum.StealAttempts, st.StealAttempts)
		}
		if sum.Migrations != st.Migrations {
			t.Errorf("%v: trace migrations=%d stats migrations=%d", pol, sum.Migrations, st.Migrations)
		}
		// Per-worker task counts must agree worker by worker.
		for i, ws := range st.PerWorker {
			if sum.PerWorker[i].Tasks != ws.Tasks {
				t.Errorf("%v: worker %d trace tasks=%d stats tasks=%d",
					pol, i, sum.PerWorker[i].Tasks, ws.Tasks)
			}
		}
		// ADWS steals stay inside dominant-group ranges by construction.
		if pol.isADWS() && sum.Steals > 0 && sum.DominantGroupHitRate() != 1 {
			t.Errorf("%v: dominant-group hit rate = %v, want 1",
				pol, sum.DominantGroupHitRate())
		}
	}
}

// TestPerWorkerStatsSumToAggregate pins the Stats.PerWorker satellite: the
// breakdown must sum to the aggregates.
func TestPerWorkerStatsSumToAggregate(t *testing.T) {
	p := newTestPool(t, ADWS)
	var sum int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 20000, &sum, 32<<20) })
	st := p.Stats()
	if len(st.PerWorker) != p.NumWorkers() {
		t.Fatalf("PerWorker has %d entries, want %d", len(st.PerWorker), p.NumWorkers())
	}
	var tasks, steals, attempts, migrations int64
	for _, w := range st.PerWorker {
		tasks += w.Tasks
		steals += w.Steals
		attempts += w.StealAttempts
		migrations += w.Migrations
	}
	if tasks != st.Tasks || steals != st.Steals || attempts != st.StealAttempts || migrations != st.Migrations {
		t.Errorf("per-worker sums (%d,%d,%d,%d) != aggregates (%d,%d,%d,%d)",
			tasks, steals, attempts, migrations,
			st.Tasks, st.Steals, st.StealAttempts, st.Migrations)
	}
	if r := st.StealSuccessRate(); r < 0 || r > 1 {
		t.Errorf("StealSuccessRate = %v out of [0,1]", r)
	}
}

// beginOrder runs a traced single-worker SL-ADWS pool and returns the
// task ordinals in begin order.
func beginOrder(t *testing.T) []int64 {
	t.Helper()
	tr := trace.New(1, 1<<15)
	p := NewPool(Config{
		Machine: topology.Flat(1, 32<<20, 1<<20),
		Policy:  ADWS,
		Seed:    7,
		Tracer:  tr,
	})
	p.Run(func(c *Ctx) { traceTree(c, 7, 16<<20) })
	p.Close()
	var order []int64
	for _, ev := range tr.Events() {
		if ev.Type == trace.EvTaskBegin {
			order = append(order, ev.Task)
		}
	}
	return order
}

// TestSingleWorkerBeginOrderDeterministic makes the paper's "almost
// deterministic" property executable: under SL-ADWS with one worker there
// is no steal randomness, so the traced task-begin order must be identical
// across runs.
func TestSingleWorkerBeginOrderDeterministic(t *testing.T) {
	a := beginOrder(t)
	b := beginOrder(t)
	if len(a) == 0 {
		t.Fatal("no task-begin events traced")
	}
	if len(a) != len(b) {
		t.Fatalf("runs traced %d vs %d begins", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("begin order diverges at %d: task %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRuntimeChromeTrace ensures a real-runtime trace renders as valid
// Chrome trace JSON.
func TestRuntimeChromeTrace(t *testing.T) {
	tr := trace.New(16, 1<<14)
	p := NewPool(Config{Machine: topology.TwoLevel16(), Policy: MLADWS, Seed: 3, Tracer: tr})
	p.Run(func(c *Ctx) { traceTree(c, 6, 4<<20) })
	p.Close()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
}

// TestNilTracerZeroEvents double-checks the nil guard: no tracer, no seq
// assignment, no panic.
func TestNilTracerZeroEvents(t *testing.T) {
	p := newTestPool(t, ADWS)
	p.Run(func(c *Ctx) { traceTree(c, 5, 1<<20) })
	if p.tracer != nil {
		t.Fatal("pool unexpectedly has a tracer")
	}
	if p.taskSeq.Load() != 0 {
		t.Errorf("taskSeq advanced to %d without tracing", p.taskSeq.Load())
	}
}
