package runtime

import (
	"sync/atomic"
	"testing"

	"github.com/parlab/adws/internal/topology"
)

var testPolicies = []Policy{WS, ADWS, MLWS, MLADWS}

func newTestPool(t *testing.T, policy Policy) *Pool {
	t.Helper()
	p := NewPool(Config{
		Machine: topology.TwoLevel16(),
		Policy:  policy,
		Seed:    42,
	})
	t.Cleanup(p.Close)
	return p
}

func TestRunSimple(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		ran := false
		p.Run(func(c *Ctx) { ran = true })
		if !ran {
			t.Errorf("%v: root did not run", pol)
		}
	}
}

// treeSum recursively sums 1..n with fork-join, verifying every task runs
// exactly once and joins correctly.
func treeSum(c *Ctx, lo, hi int, out *int64, sz int64) {
	if hi-lo <= 4 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		atomic.AddInt64(out, s)
		return
	}
	mid := (lo + hi) / 2
	g := c.Group(GroupHint{Work: float64(hi - lo), Size: sz})
	g.Spawn(float64(mid-lo), func(c *Ctx) { treeSum(c, lo, mid, out, sz/2) })
	g.Spawn(float64(hi-mid), func(c *Ctx) { treeSum(c, mid, hi, out, sz/2) })
	g.Wait()
}

func TestTreeSumAllPolicies(t *testing.T) {
	const n = 20000
	want := int64(n) * (n - 1) / 2
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		var sum int64
		p.Run(func(c *Ctx) { treeSum(c, 0, n, &sum, 64<<20) })
		if sum != want {
			t.Errorf("%v: sum = %d, want %d", pol, sum, want)
		}
		st := p.Stats()
		if st.Tasks == 0 {
			t.Errorf("%v: no tasks recorded", pol)
		}
	}
}

func TestSequentialGroupsOrdering(t *testing.T) {
	// A second group must observe all side effects of the first.
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		var phase1 int64
		var ok atomic.Bool
		ok.Store(true)
		p.Run(func(c *Ctx) {
			g1 := c.Group(GroupHint{Work: 8})
			for i := 0; i < 8; i++ {
				g1.Spawn(1, func(c *Ctx) { atomic.AddInt64(&phase1, 1) })
			}
			g1.Wait()
			if atomic.LoadInt64(&phase1) != 8 {
				ok.Store(false)
			}
			g2 := c.Group(GroupHint{Work: 8})
			for i := 0; i < 8; i++ {
				g2.Spawn(1, func(c *Ctx) {
					if atomic.LoadInt64(&phase1) != 8 {
						ok.Store(false)
					}
				})
			}
			g2.Wait()
		})
		if !ok.Load() {
			t.Errorf("%v: group ordering violated", pol)
		}
	}
}

func TestNestedGroupsDeep(t *testing.T) {
	// Deep nesting with tiny groups exercises the help-inside-wait path.
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		var count int64
		var rec func(c *Ctx, d int)
		rec = func(c *Ctx, d int) {
			atomic.AddInt64(&count, 1)
			if d == 0 {
				return
			}
			g := c.Group(GroupHint{Work: 2})
			g.Spawn(1, func(c *Ctx) { rec(c, d-1) })
			g.Spawn(1, func(c *Ctx) { rec(c, d-1) })
			g.Wait()
		}
		p.Run(func(c *Ctx) { rec(c, 10) })
		if want := int64(1<<11 - 1); count != want {
			t.Errorf("%v: count = %d, want %d", pol, count, want)
		}
	}
}

func TestUnbalancedWithHints(t *testing.T) {
	// Skewed work with correct hints under ADWS: all work completes.
	p := newTestPool(t, ADWS)
	var sum int64
	p.Run(func(c *Ctx) {
		g := c.Group(GroupHint{Work: 110})
		g.Spawn(100, func(c *Ctx) {
			for i := 0; i < 100; i++ {
				atomic.AddInt64(&sum, 1)
			}
		})
		g.Spawn(10, func(c *Ctx) {
			for i := 0; i < 10; i++ {
				atomic.AddInt64(&sum, 1)
			}
		})
		g.Wait()
	})
	if sum != 110 {
		t.Errorf("sum = %d, want 110", sum)
	}
}

func TestADWSMigratesDeterministically(t *testing.T) {
	p := newTestPool(t, ADWS)
	var sum int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 100000, &sum, 0) })
	st := p.Stats()
	if st.Migrations == 0 {
		t.Error("ADWS performed no migrations")
	}
}

func TestWSDoesNotMigrate(t *testing.T) {
	p := newTestPool(t, WS)
	var sum int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 100000, &sum, 0) })
	st := p.Stats()
	if st.Migrations != 0 {
		t.Errorf("WS migrated %d tasks", st.Migrations)
	}
	if st.Steals == 0 {
		t.Error("WS performed no steals on a large tree")
	}
}

func TestMultipleRuns(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		for rep := 0; rep < 3; rep++ {
			var sum int64
			p.Run(func(c *Ctx) { treeSum(c, 0, 5000, &sum, 8<<20) })
			if want := int64(5000) * 4999 / 2; sum != want {
				t.Errorf("%v rep %d: sum = %d, want %d", pol, rep, sum, want)
			}
		}
	}
}

func TestEmptyGroup(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		p.Run(func(c *Ctx) {
			g := c.Group(GroupHint{})
			g.Wait() // no children: must return immediately
		})
	}
}

func TestManyChildrenFlatGroup(t *testing.T) {
	for _, pol := range testPolicies {
		p := newTestPool(t, pol)
		var count int64
		p.Run(func(c *Ctx) {
			g := c.Group(GroupHint{Work: 64, Size: 16 << 20})
			for i := 0; i < 64; i++ {
				g.Spawn(1, func(c *Ctx) { atomic.AddInt64(&count, 1) })
			}
			g.Wait()
		})
		if count != 64 {
			t.Errorf("%v: count = %d, want 64", pol, count)
		}
	}
}

func TestZeroWorkHints(t *testing.T) {
	// All-zero hints fall back to equal splitting and must not hang.
	p := newTestPool(t, ADWS)
	var count int64
	p.Run(func(c *Ctx) {
		g := c.Group(GroupHint{})
		for i := 0; i < 16; i++ {
			g.Spawn(0, func(c *Ctx) { atomic.AddInt64(&count, 1) })
		}
		g.Wait()
	})
	if count != 16 {
		t.Errorf("count = %d, want 16", count)
	}
}

func TestCtxWorkerInRange(t *testing.T) {
	p := newTestPool(t, ADWS)
	var bad atomic.Bool
	p.Run(func(c *Ctx) {
		g := c.Group(GroupHint{Work: 32})
		for i := 0; i < 32; i++ {
			g.Spawn(1, func(c *Ctx) {
				if c.Worker() < 0 || c.Worker() >= c.Pool().NumWorkers() {
					bad.Store(true)
				}
			})
		}
		g.Wait()
	})
	if bad.Load() {
		t.Error("Ctx.Worker out of range")
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{WS: "ws", ADWS: "adws", MLWS: "mlws", MLADWS: "mladws"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy string")
	}
}

func TestDefaultMachine(t *testing.T) {
	p := NewPool(Config{Policy: WS})
	defer p.Close()
	if p.NumWorkers() < 1 {
		t.Error("no workers")
	}
	if p.Policy() != WS {
		t.Error("policy not recorded")
	}
	var ran atomic.Bool
	p.Run(func(c *Ctx) { ran.Store(true) })
	if !ran.Load() {
		t.Error("root did not run on default machine")
	}
}

func TestBusyIdleProfile(t *testing.T) {
	p := newTestPool(t, ADWS)
	var sum int64
	p.Run(func(c *Ctx) { treeSum(c, 0, 200000, &sum, 0) })
	st := p.Stats()
	if st.BusyNS <= 0 {
		t.Errorf("BusyNS = %d, want positive", st.BusyNS)
	}
	if st.IdleNS < 0 {
		t.Errorf("IdleNS = %d, want non-negative", st.IdleNS)
	}
}
