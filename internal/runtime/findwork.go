package runtime

import (
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/trace"
)

// maxStealTries bounds victims tried per findTask call.
const maxStealTries = 4

// findTask implements GETRUNNABLETASK (paper Fig. 11) for this worker:
// local pops from the entities the worker acts for, then steals within the
// current dominant-group steal range (ADWS) or uniformly (WS). minDepth is
// advisory for helping-wait callers and applies to steals only; local pops
// always succeed to preserve liveness (DESIGN.md).
func (w *worker) findTask(minDepth int) *task {
	cands := w.candidates()
	// Claim a freshly submitted root task if we act for its owner entity.
	// Only the top-level scheduler loop claims roots (execDepth == 0):
	// starting a new root inside a helping wait would trap the waiting
	// group behind the whole new computation.
	if w.execDepth == 0 && w.pool.rootN.Load() > 0 {
		if t := w.pool.claimRoot(cands); t != nil {
			w.noteStart(t.ent, t)
			return t
		}
	}
	for _, ent := range cands {
		if t := ent.popLocal(); t != nil {
			w.noteStart(ent, t)
			return t
		}
	}
	for _, ent := range cands {
		if t := w.trySteal(ent, minDepth); t != nil {
			w.noteStart(ent, t)
			return t
		}
	}
	return nil
}

// noteSteal records a successful steal on the worker and the stolen
// task's job.
//
//adws:hotpath
func (w *worker) noteSteal(t *task) {
	w.stats.steals.Add(1)
	if t.job != nil {
		t.job.steals.Add(1)
	}
}

// noteStart records scheduling bookkeeping when a task begins on entity e.
//
//adws:hotpath
func (w *worker) noteStart(e *entity, t *task) {
	if t.group != nil {
		e.lastGroup.Store(t.group)
	}
	t.ent = e
	// Obtaining a task closes any pending park-wakeup span.
	w.noteRunAfterWake()
}

// candidates returns the entities this worker may act for, in priority
// order: live flattened domains (newest first, exclusively while any are
// live), then the entity of the cache the worker leads.
func (w *worker) candidates() []*entity {
	p := w.pool
	if !p.policy.isML() {
		return []*entity{p.rootDom.entities[w.id]}
	}
	var out []*entity
	w.fdMu.Lock()
	live := w.fdEnts[:0]
	for _, ent := range w.fdEnts {
		if !ent.dom.closed.Load() {
			live = append(live, ent)
		}
	}
	w.fdEnts = live
	for i := len(live) - 1; i >= 0; i-- {
		out = append(out, live[i])
	}
	n := len(live)
	w.fdMu.Unlock()
	if n > 0 {
		// One flattened group at a time per cache: a leader inside a live
		// flattened domain must not start other tasks at its cache level.
		return out
	}
	p.ml.Lock()
	if w.leads != nil && w.leads.entity != nil && w.leads.leader == w.id {
		ent := w.leads.entity
		if !ent.dom.closed.Load() {
			out = append(out, ent)
		}
	}
	p.ml.Unlock()
	return out
}

// trySteal attempts a bounded number of random steals for entity ent.
func (w *worker) trySteal(ent *entity, minDepth int) *task {
	d := ent.dom
	n := len(d.entities)
	if n <= 1 {
		return nil
	}
	m := w.pool.metrics
	if d.adws {
		anchor := ent.lastGroup.Load()
		if anchor == nil {
			return nil // not dominated: no stealing (Fig. 11 line 40)
		}
		self := d.logicalOf(ent.idx)
		sr, ok := sched.CurrentStealRange(anchor, self)
		if !ok {
			return nil
		}
		nv := sr.NumVictims(self)
		if nv <= 0 {
			return nil
		}
		md := sr.MinDepth
		if minDepth > md {
			md = minDepth
		}
		// The steal range [Low, High] is inclusive; events carry it
		// half-open as [Low, High+1).
		srLo, srHi := float64(sr.Low), float64(sr.High)+1
		tries := maxStealTries
		if tries > nv {
			tries = nv
		}
		for a := 0; a < tries; a++ {
			w.stats.stealAttempts.Add(1)
			var probeStart int64
			if m != nil {
				probeStart = now()
			}
			v := sr.Victim(self, w.rng.Intn(nv))
			if w.wantEv(trace.EvStealAttempt, int32(md)) {
				w.emit(trace.Event{Type: trace.EvStealAttempt, Time: now(),
					Self: int32(self), Victim: int32(v), Depth: int32(md),
					RangeLo: srLo, RangeHi: srHi}, int32(md))
			}
			vp := d.physical(v)
			if vp == ent.idx {
				w.noteStealProbe(probeStart)
				continue
			}
			ve := d.entities[vp]
			if sr.MigrationStealable(v) {
				if t := ve.stealMigration(md); t != nil {
					w.noteSteal(t)
					w.noteStealProbe(probeStart)
					if w.wantEv(trace.EvStealSuccess, int32(md)) {
						w.emit(trace.Event{Type: trace.EvStealSuccess, Time: now(),
							Self: int32(self), Victim: int32(v), Depth: int32(md),
							Task: t.seq, Job: t.jobID(), RangeLo: srLo, RangeHi: srHi}, int32(md))
					}
					rebase(t, self, d)
					return t
				}
			}
			if sr.PrimaryStealable(v) {
				if t := ve.stealPrimary(md); t != nil {
					w.noteSteal(t)
					w.noteStealProbe(probeStart)
					if w.wantEv(trace.EvStealSuccess, int32(md)) {
						w.emit(trace.Event{Type: trace.EvStealSuccess, Time: now(),
							Self: int32(self), Victim: int32(v), Depth: int32(md),
							Task: t.seq, Job: t.jobID(), RangeLo: srLo, RangeHi: srHi}, int32(md))
					}
					rebase(t, self, d)
					return t
				}
			}
			w.noteStealProbe(probeStart)
		}
		if w.wantEv(trace.EvStealFail, int32(md)) {
			w.emit(trace.Event{Type: trace.EvStealFail, Time: now(),
				Self: int32(self), Depth: int32(md), RangeLo: srLo, RangeHi: srHi}, int32(md))
		}
		return nil
	}
	tries := maxStealTries
	if tries > n-1 {
		tries = n - 1
	}
	for a := 0; a < tries; a++ {
		w.stats.stealAttempts.Add(1)
		var probeStart int64
		if m != nil {
			probeStart = now()
		}
		v := w.rng.Intn(n - 1)
		if v >= ent.idx {
			v++
		}
		if w.wantEv(trace.EvStealAttempt, 0) {
			w.emit(trace.Event{Type: trace.EvStealAttempt, Time: now(),
				Self: int32(ent.idx), Victim: int32(v)}, 0)
		}
		if t := d.entities[v].stealAny(); t != nil {
			w.noteSteal(t)
			w.noteStealProbe(probeStart)
			if w.wantEv(trace.EvStealSuccess, 0) {
				w.emit(trace.Event{Type: trace.EvStealSuccess, Time: now(),
					Self: int32(ent.idx), Victim: int32(v), Task: t.seq, Job: t.jobID()}, 0)
			}
			return t
		}
		w.noteStealProbe(probeStart)
	}
	if tries > 0 && w.wantEv(trace.EvStealFail, 0) {
		w.emit(trace.Event{Type: trace.EvStealFail, Time: now(),
			Self: int32(ent.idx)}, 0)
	}
	return nil
}

// rebase re-owns a stolen task's range onto the thief (see DESIGN.md on
// steal semantics).
func rebase(t *task, thiefLogical int, d *domain) {
	t.inMigration = false
	width := t.rng.Width()
	frac := t.rng.X - float64(t.rng.Owner())
	newX := float64(thiefLogical) + frac
	maxX := float64(d.offset+len(d.entities)) - width
	if newX > maxX {
		newX = maxX
	}
	if newX < float64(d.offset) {
		newX = float64(d.offset)
	}
	t.rng = sched.Range{X: newX, Y: newX + width}
}
