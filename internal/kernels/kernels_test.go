package kernels

import (
	"math"
	"sort"
	"testing"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/sched"
)

func testPool(t *testing.T, s adws.Scheduler) *adws.Pool {
	t.Helper()
	p, err := adws.NewPool(
		adws.WithScheduler(s),
		adws.WithHierarchy([]adws.CacheLevel{
			{Fanout: 2, CapacityBytes: 8 << 20},
			{Fanout: 4, CapacityBytes: 1 << 20},
		}, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func allSchedulers() []adws.Scheduler {
	return []adws.Scheduler{adws.WorkStealing, adws.ADWS, adws.MultiLevelWS, adws.MultiLevelADWS}
}

func randomData(n int, seed uint64) []float64 {
	rng := sched.NewRNG(seed, 0)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*2000 - 1000
	}
	return out
}

func TestQuicksortAllSchedulers(t *testing.T) {
	for _, s := range allSchedulers() {
		p := testPool(t, s)
		data := randomData(100_000, 1)
		Quicksort(p, data)
		if !sort.Float64sAreSorted(data) {
			t.Errorf("%v: output not sorted", s)
		}
	}
}

func TestQuicksortPreservesMultiset(t *testing.T) {
	p := testPool(t, adws.ADWS)
	data := randomData(50_000, 2)
	want := append([]float64(nil), data...)
	sort.Float64s(want)
	Quicksort(p, data)
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, data[i], want[i])
		}
	}
}

func TestQuicksortDuplicateKeys(t *testing.T) {
	p := testPool(t, adws.ADWS)
	data := make([]float64, 40_000)
	for i := range data {
		data[i] = float64(i % 3)
	}
	Quicksort(p, data)
	if !sort.Float64sAreSorted(data) {
		t.Error("duplicate-key input not sorted")
	}
}

func TestQuicksortSmall(t *testing.T) {
	p := testPool(t, adws.WorkStealing)
	data := []float64{3, 1, 2}
	Quicksort(p, data)
	if data[0] != 1 || data[1] != 2 || data[2] != 3 {
		t.Errorf("small sort wrong: %v", data)
	}
}

func TestMatMulCorrectness(t *testing.T) {
	const n = 150 // odd size exercises the rectangular path
	for _, s := range allSchedulers() {
		p := testPool(t, s)
		A, B, C := NewMatrix(n), NewMatrix(n), NewMatrix(n)
		rng := sched.NewRNG(9, 0)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				A.Set(i, j, float32(rng.Float64()-0.5))
				B.Set(i, j, float32(rng.Float64()-0.5))
			}
		}
		MatMul(p, C, A, B)
		// Spot-check against the naive product.
		for _, ij := range [][2]int{{0, 0}, {n - 1, n - 1}, {n / 2, n / 3}, {3, n - 2}} {
			var want float32
			for k := 0; k < n; k++ {
				want += A.At(ij[0], k) * B.At(k, ij[1])
			}
			got := C.At(ij[0], ij[1])
			if math.Abs(float64(got-want)) > 1e-3 {
				t.Errorf("%v: C[%d][%d] = %v, want %v", s, ij[0], ij[1], got, want)
			}
		}
	}
}

func TestHeat2DConservesAndSmooths(t *testing.T) {
	const n = 200
	for _, s := range allSchedulers() {
		p := testPool(t, s)
		src, dst := NewGrid(n), NewGrid(n)
		src.Set(n/2, n/2, 1000)
		out := Heat2D(p, src, dst, 4)
		// A reflecting five-point average keeps values in [0, max].
		var sum, max float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := out.At(i, j)
				if v < 0 {
					t.Fatalf("%v: negative cell %v", s, v)
				}
				sum += v
				if v > max {
					max = v
				}
			}
		}
		if max >= 1000 {
			t.Errorf("%v: heat did not diffuse (max %v)", s, max)
		}
		if sum <= 0 {
			t.Errorf("%v: heat vanished", s)
		}
		// The spike's neighbours received heat.
		if out.At(n/2+1, n/2) == 0 {
			t.Errorf("%v: no diffusion to neighbours", s)
		}
	}
}

func TestHeat2DMatchesSerialReference(t *testing.T) {
	const n = 96
	p := testPool(t, adws.MultiLevelADWS)
	src, dst := NewGrid(n), NewGrid(n)
	ref0, ref1 := NewGrid(n), NewGrid(n)
	rng := sched.NewRNG(4, 0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.Float64()
			src.Set(i, j, v)
			ref0.Set(i, j, v)
		}
	}
	out := Heat2D(p, src, dst, 3)
	// Serial reference.
	s, d := ref0, ref1
	for it := 0; it < 3; it++ {
		heatKernel(s, d, 0, 0, n, n)
		s, d = d, s
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(out.At(i, j)-s.At(i, j)) > 1e-12 {
				t.Fatalf("cell (%d,%d): %v vs serial %v", i, j, out.At(i, j), s.At(i, j))
			}
		}
	}
}

func TestRRMAppliesMaps(t *testing.T) {
	for _, s := range allSchedulers() {
		p := testPool(t, s)
		n := 100_000
		data := make([]float64, n)
		for i := range data {
			data[i] = 1
		}
		RRM(p, data, 1)
		// Every element was mapped at least 3 times (more at deeper
		// recursion levels): x -> x*(2.0000001) each application.
		minFactor := math.Pow(2.0000001, 3)
		for i, v := range data {
			if v < minFactor {
				t.Fatalf("%v: element %d = %v, want >= %v", s, i, v, minFactor)
			}
		}
		// Deeper levels apply more maps: the first element (deepest chain)
		// saw more applications than 3.
		if data[0] < math.Pow(2.0000001, 6) {
			t.Errorf("%v: recursion did not reapply maps (data[0]=%v)", s, data[0])
		}
	}
}

func TestRRMWorkHintConsistency(t *testing.T) {
	// rrmWork must equal maps-per-level summed over the recursion tree.
	n := 50_000
	var walk func(n int, alpha float64) float64
	walk = func(n int, alpha float64) float64 {
		w := float64(rrmRepeats * n)
		if n > rrmRecCutoff {
			nl := int(float64(n) / (1 + alpha))
			if nl < 1 {
				nl = 1
			}
			w += walk(nl, alpha) + walk(n-nl, alpha)
		}
		return w
	}
	if got, want := rrmWork(n, 2), walk(n, 2); got != want {
		t.Errorf("rrmWork = %v, want %v", got, want)
	}
}

func TestKDTreeStructure(t *testing.T) {
	for _, s := range allSchedulers() {
		p := testPool(t, s)
		rng := sched.NewRNG(5, 0)
		pts := make([]KDPoint, 50_000)
		for i := range pts {
			pts[i] = KDPoint{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
		root := KDTree(p, pts)
		// Every split plane must actually separate its children.
		var check func(n *KDNode) int
		check = func(n *KDNode) int {
			if n == nil {
				return 0
			}
			if n.Axis < 0 {
				if n.Hi-n.Lo > kdCutoff {
					// Degenerate planes may leave big leaves, but only for
					// duplicate coordinates; random data should not.
					t.Errorf("%v: oversized leaf [%d,%d)", s, n.Lo, n.Hi)
				}
				return n.Hi - n.Lo
			}
			for i := n.Left.Lo; i < n.Left.Hi; i++ {
				if kdAxis(pts[i], n.Axis) >= n.Split {
					t.Fatalf("%v: left child point %d violates plane", s, i)
				}
			}
			for i := n.Right.Lo; i < n.Right.Hi; i++ {
				if kdAxis(pts[i], n.Axis) < n.Split {
					t.Fatalf("%v: right child point %d violates plane", s, i)
				}
			}
			return check(n.Left) + check(n.Right)
		}
		if total := check(root); total != len(pts) {
			t.Errorf("%v: leaves cover %d points, want %d", s, total, len(pts))
		}
	}
}

func TestSPHForces(t *testing.T) {
	for _, s := range allSchedulers() {
		p := testPool(t, s)
		sys := NewDamBreak(20_000, 3)
		sys.ComputeForces(p)
		// Densities accumulated somewhere (particles are densely packed).
		var withDensity int
		for i := range sys.Particles {
			if sys.Particles[i].Density > 0 {
				withDensity++
			}
		}
		if withDensity < len(sys.Particles)/2 {
			t.Errorf("%v: only %d/%d particles have density", s, withDensity, len(sys.Particles))
		}
	}
}

func TestSPHTreeInvariants(t *testing.T) {
	sys := NewDamBreak(10_000, 7)
	// Leaves partition the particle range.
	covered := 0
	for _, l := range sys.leaves {
		if l.count() > SPHLeafCap {
			// Octree leaves may exceed the cap only at max depth.
			t.Logf("deep leaf with %d particles", l.count())
		}
		covered += l.count()
	}
	if covered != len(sys.Particles) {
		t.Errorf("leaves cover %d particles, want %d", covered, len(sys.Particles))
	}
	// Particles respect their leaf boxes.
	for _, l := range sys.leaves {
		for i := l.lo; i < l.hi; i++ {
			pt := sys.Particles[i]
			if pt.X < l.minX-1e-9 || pt.X > l.maxX+1e-9 ||
				pt.Y < l.minY-1e-9 || pt.Y > l.maxY+1e-9 ||
				pt.Z < l.minZ-1e-9 || pt.Z > l.maxZ+1e-9 {
				t.Fatalf("particle %d outside its leaf box", i)
			}
		}
	}
}

func TestSPHDeterministicAcrossSchedulers(t *testing.T) {
	// Forces are pure sums over fixed neighbours: schedulers must agree
	// exactly.
	var ref []Particle
	for _, s := range allSchedulers() {
		p := testPool(t, s)
		sys := NewDamBreak(5_000, 11)
		sys.ComputeForces(p)
		if ref == nil {
			ref = append([]Particle(nil), sys.Particles...)
			continue
		}
		for i := range sys.Particles {
			if sys.Particles[i].Density != ref[i].Density || sys.Particles[i].FX != ref[i].FX {
				t.Fatalf("%v: particle %d diverged", s, i)
			}
		}
	}
}
