package kernels

import (
	"math"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/sched"
)

// SPH implements a compact smoothed-particle-hydrodynamics force
// calculation in the style of the paper's dam-breaking benchmark (§6.2,
// ported there from FDPS): particles are organized in an octree with at
// most SPHLeafCap particles per leaf, and each force step computes
// short-range pair interactions between every leaf and its neighbouring
// leaves within the smoothing radius. The octree traversal is the
// parallel task structure; per-node particle counts are the (rough) work
// hints, as in the paper.

// SPHLeafCap is the octree leaf capacity (the paper uses 32).
const SPHLeafCap = 32

// Particle is one SPH particle.
type Particle struct {
	X, Y, Z    float64
	VX, VY, VZ float64
	Mass       float64
	Density    float64
	FX, FY, FZ float64
}

// SPHSystem is a particle system with its octree.
type SPHSystem struct {
	Particles []Particle
	// Radius is the smoothing (interaction) radius.
	Radius float64
	root   *sphNode
	// leaves in tree order, for neighbour search.
	leaves []*sphNode
}

type sphNode struct {
	lo, hi                             int // particle range [lo, hi)
	minX, minY, minZ, maxX, maxY, maxZ float64
	children                           []*sphNode
}

func (n *sphNode) count() int { return n.hi - n.lo }

// NewDamBreak creates a deterministic dam-break-like particle
// configuration: a dense block of fluid in one corner of a unit box.
func NewDamBreak(n int, seed uint64) *SPHSystem {
	rng := sched.NewRNG(seed, 0)
	ps := make([]Particle, n)
	for i := range ps {
		// Dense block occupying 40% x 100% x 60% of the box.
		ps[i] = Particle{
			X:    0.4 * rng.Float64(),
			Y:    rng.Float64(),
			Z:    0.6 * rng.Float64(),
			Mass: 1.0 / float64(n),
		}
	}
	s := &SPHSystem{Particles: ps, Radius: 0.6 / math.Cbrt(float64(n))}
	s.BuildTree()
	return s
}

// BuildTree (re)builds the octree over the current particle positions.
// Tree building is serial, as in the paper's measurement, which times only
// the force calculation.
func (s *SPHSystem) BuildTree() {
	s.leaves = s.leaves[:0]
	s.root = s.build(0, len(s.Particles), 0, 0, 0, 1, 1, 1, 0)
}

func (s *SPHSystem) build(lo, hi int, minX, minY, minZ, maxX, maxY, maxZ float64, depth int) *sphNode {
	n := &sphNode{lo: lo, hi: hi, minX: minX, minY: minY, minZ: minZ, maxX: maxX, maxY: maxY, maxZ: maxZ}
	if hi-lo <= SPHLeafCap || depth > 24 {
		s.leaves = append(s.leaves, n)
		return n
	}
	midX, midY, midZ := (minX+maxX)/2, (minY+maxY)/2, (minZ+maxZ)/2
	// Partition the range into eight octants in place (three binary
	// partitions: x, then y within each half, then z).
	xSplit := sphPartition(s.Particles, lo, hi, func(p *Particle) bool { return p.X < midX })
	for _, xr := range [][2]int{{lo, xSplit}, {xSplit, hi}} {
		ySplit := sphPartition(s.Particles, xr[0], xr[1], func(p *Particle) bool { return p.Y < midY })
		for _, yr := range [][2]int{{xr[0], ySplit}, {ySplit, xr[1]}} {
			sphPartition(s.Particles, yr[0], yr[1], func(p *Particle) bool { return p.Z < midZ })
		}
	}
	// Recollect the octant boundaries by scanning.
	bounds := [8][2]int{}
	idx := lo
	for o := 0; o < 8; o++ {
		start := idx
		for idx < hi && s.octant(idx, midX, midY, midZ) == o {
			idx++
		}
		bounds[o] = [2]int{start, idx}
	}
	for o, b := range bounds {
		if b[1] <= b[0] {
			continue
		}
		cMinX, cMaxX := minX, midX
		if o&4 != 0 {
			cMinX, cMaxX = midX, maxX
		}
		cMinY, cMaxY := minY, midY
		if o&2 != 0 {
			cMinY, cMaxY = midY, maxY
		}
		cMinZ, cMaxZ := minZ, midZ
		if o&1 != 0 {
			cMinZ, cMaxZ = midZ, maxZ
		}
		n.children = append(n.children,
			s.build(b[0], b[1], cMinX, cMinY, cMinZ, cMaxX, cMaxY, cMaxZ, depth+1))
	}
	if len(n.children) == 0 {
		s.leaves = append(s.leaves, n)
	}
	return n
}

func (s *SPHSystem) octant(i int, midX, midY, midZ float64) int {
	p := &s.Particles[i]
	o := 0
	if p.X >= midX {
		o |= 4
	}
	if p.Y >= midY {
		o |= 2
	}
	if p.Z >= midZ {
		o |= 1
	}
	return o
}

// sphPartition stably-ish partitions [lo,hi) so that pred-true particles
// come first; returns the boundary.
func sphPartition(ps []Particle, lo, hi int, pred func(*Particle) bool) int {
	i := lo
	for j := lo; j < hi; j++ {
		if pred(&ps[j]) {
			ps[i], ps[j] = ps[j], ps[i]
			i++
		}
	}
	return i
}

// ComputeForces runs one force-calculation step over the octree on the
// pool. Work hints are the per-subtree particle counts (rough estimates,
// as the true cost depends on neighbour density).
func (s *SPHSystem) ComputeForces(pool *adws.Pool) {
	pool.Run(func(c *adws.Ctx) {
		s.forceRec(c, s.root)
	})
}

func (s *SPHSystem) forceRec(c *adws.Ctx, n *sphNode) {
	if len(n.children) == 0 {
		s.leafForces(n)
		return
	}
	var total float64
	for _, ch := range n.children {
		total += float64(ch.count())
	}
	g := c.Group(adws.GroupHint{
		Work: total,
		Size: int64(n.count()) * int64(particleBytes),
	})
	for _, ch := range n.children {
		ch := ch
		g.Spawn(float64(ch.count()), func(c *adws.Ctx) { s.forceRec(c, ch) })
	}
	g.Wait()
}

const particleBytes = 10 * 8

// leafForces computes pair interactions for one leaf against itself and
// every leaf whose box is within the smoothing radius.
func (s *SPHSystem) leafForces(n *sphNode) {
	r := s.Radius
	r2 := r * r
	for _, other := range s.leaves {
		if !boxesNear(n, other, r) {
			continue
		}
		for i := n.lo; i < n.hi; i++ {
			pi := &s.Particles[i]
			var fx, fy, fz, dens float64
			for j := other.lo; j < other.hi; j++ {
				if i == j {
					continue
				}
				pj := &s.Particles[j]
				dx, dy, dz := pi.X-pj.X, pi.Y-pj.Y, pi.Z-pj.Z
				d2 := dx*dx + dy*dy + dz*dz
				if d2 >= r2 || d2 == 0 {
					continue
				}
				// Poly6-style density and a simple repulsive pressure
				// force (Becker & Teschner flavour, reduced).
				w := (r2 - d2) * (r2 - d2)
				dens += pj.Mass * w
				inv := pj.Mass * (r2 - d2) / (d2 + 1e-12)
				fx += dx * inv
				fy += dy * inv
				fz += dz * inv
			}
			pi.Density += dens
			pi.FX += fx
			pi.FY += fy
			pi.FZ += fz
		}
	}
}

func boxesNear(a, b *sphNode, r float64) bool {
	dx := gap(a.minX, a.maxX, b.minX, b.maxX)
	dy := gap(a.minY, a.maxY, b.minY, b.maxY)
	dz := gap(a.minZ, a.maxZ, b.minZ, b.maxZ)
	return dx*dx+dy*dy+dz*dz < r*r
}

func gap(alo, ahi, blo, bhi float64) float64 {
	switch {
	case bhi < alo:
		return alo - bhi
	case ahi < blo:
		return blo - ahi
	default:
		return 0
	}
}
