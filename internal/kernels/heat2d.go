package kernels

import "github.com/parlab/adws"

// HeatCutoff is the stencil block size (the paper's 64×64 cutoff).
const HeatCutoff = 64

// Grid is a square grid of float64 cells with row padding (the paper pads
// by 256 bytes against cache conflicts at power-of-two sizes).
type Grid struct {
	N      int
	Data   []float64
	stride int
}

// NewGrid allocates an n×n grid.
func NewGrid(n int) *Grid {
	stride := n + 32 // 32 float64s = 256 bytes
	return &Grid{N: n, Data: make([]float64, n*stride), stride: stride}
}

// At returns cell (i, j).
func (g *Grid) At(i, j int) float64 { return g.Data[i*g.stride+j] }

// Set stores cell (i, j).
func (g *Grid) Set(i, j int, v float64) { g.Data[i*g.stride+j] = v }

// Heat2D runs `iters` iterations of the five-point heat stencil with
// double buffering (§6.2), reading src and writing dst on even iterations
// and vice versa. It returns the grid holding the final state.
func Heat2D(pool *adws.Pool, src, dst *Grid, iters int) *Grid {
	pool.Run(func(c *adws.Ctx) {
		s, d := src, dst
		for it := 0; it < iters; it++ {
			heatSweep(c, s, d, 0, 0, s.N, s.N)
			s, d = d, s
		}
	})
	if iters%2 == 0 {
		return src
	}
	return dst
}

// heatSweep applies one stencil step over the ni×nj block at (i0, j0) by
// recursive four-way division into equally sized subgrids.
func heatSweep(c *adws.Ctx, src, dst *Grid, i0, j0, ni, nj int) {
	if ni <= HeatCutoff && nj <= HeatCutoff {
		heatKernel(src, dst, i0, j0, ni, nj)
		return
	}
	ai, bi := ni/2, ni-ni/2
	aj, bj := nj/2, nj-nj/2
	type quad struct{ i0, j0, ni, nj int }
	quads := []quad{
		{i0, j0, ai, aj}, {i0, j0 + aj, ai, bj},
		{i0 + ai, j0, bi, aj}, {i0 + ai, j0 + aj, bi, bj},
	}
	g := c.Group(adws.GroupHint{
		Work: float64(ni) * float64(nj),
		Size: 2 * int64(ni) * int64(nj) * 8,
	})
	for _, q := range quads {
		if q.ni == 0 || q.nj == 0 {
			continue
		}
		q := q
		g.Spawn(float64(q.ni)*float64(q.nj), func(c *adws.Ctx) {
			heatSweep(c, src, dst, q.i0, q.j0, q.ni, q.nj)
		})
	}
	g.Wait()
}

// heatKernel computes the five-point average on one block, with reflecting
// boundaries at the grid edges.
func heatKernel(src, dst *Grid, i0, j0, ni, nj int) {
	n := src.N
	for i := i0; i < i0+ni; i++ {
		up, down := i-1, i+1
		if up < 0 {
			up = 0
		}
		if down >= n {
			down = n - 1
		}
		for j := j0; j < j0+nj; j++ {
			left, right := j-1, j+1
			if left < 0 {
				left = 0
			}
			if right >= n {
				right = n - 1
			}
			v := src.At(i, j) + src.At(up, j) + src.At(down, j) +
				src.At(i, left) + src.At(i, right)
			dst.Set(i, j, v*0.2)
		}
	}
}
