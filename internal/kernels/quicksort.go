// Package kernels implements the paper's benchmark computations as real
// kernels on the adws task pool: Quicksort, kd-tree construction, RRM,
// cache-oblivious matrix multiplication, a Heat2D stencil, and an SPH
// force calculation. Each kernel annotates its task groups with the work
// and working-set-size hints of the paper's Fig. 2b.
package kernels

import (
	"sort"

	"github.com/parlab/adws"
)

// QuicksortCutoff is the recursion/partition cutoff in elements (the
// paper's 64 KB of float64s).
const QuicksortCutoff = 8192

// Quicksort sorts data in place (ascending) on the pool, parallelizing
// both the recursion and the partition through double buffering, as in the
// paper's Quicksort benchmark (§6.2). The total working set is twice the
// input array.
func Quicksort(pool *adws.Pool, data []float64) {
	buf := make([]float64, len(data))
	pool.Run(func(c *adws.Ctx) {
		qsort(c, data, buf)
	})
}

// qsort sorts a into itself using b as the double buffer.
func qsort(c *adws.Ctx, a, b []float64) {
	n := len(a)
	if n <= QuicksortCutoff {
		sort.Float64s(a)
		return
	}
	pivot := medianOf3(a[0], a[n/2], a[n-1])
	nl := parallelPartition(c, a, b, pivot)
	if nl == 0 || nl == n {
		// Degenerate pivot (many equal keys): fall back to serial sort of
		// this range to guarantee progress.
		sort.Float64s(a)
		return
	}
	// The partition lives in b; sort its halves back into a.
	copy(a, b)
	g := c.Group(adws.GroupHint{
		Work: float64(n),
		Size: int64(2*n) * 8,
	})
	g.Spawn(float64(nl), func(c *adws.Ctx) { qsort(c, a[:nl], b[:nl]) })
	g.Spawn(float64(n-nl), func(c *adws.Ctx) { qsort(c, a[nl:], b[nl:]) })
	g.Wait()
}

func medianOf3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// parallelPartition stably partitions a by (< pivot) into b using a
// parallel count pass, serial prefix sums, and a parallel scatter pass.
// It returns the size of the left part.
func parallelPartition(c *adws.Ctx, a, b []float64, pivot float64) int {
	n := len(a)
	bs := QuicksortCutoff
	nb := (n + bs - 1) / bs
	if nb == 1 {
		return serialPartition(a, b, pivot)
	}
	counts := make([]int, nb)
	g := c.Group(adws.GroupHint{Work: float64(n), Size: int64(2*n) * 8})
	for blk := 0; blk < nb; blk++ {
		blk := blk
		lo, hi := blk*bs, (blk+1)*bs
		if hi > n {
			hi = n
		}
		g.Spawn(float64(hi-lo), func(c *adws.Ctx) {
			cnt := 0
			for _, v := range a[lo:hi] {
				if v < pivot {
					cnt++
				}
			}
			counts[blk] = cnt
		})
	}
	g.Wait()

	lOff := make([]int, nb)
	rOff := make([]int, nb)
	nl := 0
	for blk := 0; blk < nb; blk++ {
		lOff[blk] = nl
		nl += counts[blk]
	}
	r := nl
	for blk := 0; blk < nb; blk++ {
		lo, hi := blk*bs, (blk+1)*bs
		if hi > n {
			hi = n
		}
		rOff[blk] = r
		r += (hi - lo) - counts[blk]
	}

	g2 := c.Group(adws.GroupHint{Work: float64(n), Size: int64(2*n) * 8})
	for blk := 0; blk < nb; blk++ {
		blk := blk
		lo, hi := blk*bs, (blk+1)*bs
		if hi > n {
			hi = n
		}
		g2.Spawn(float64(hi-lo), func(c *adws.Ctx) {
			li, ri := lOff[blk], rOff[blk]
			for _, v := range a[lo:hi] {
				if v < pivot {
					b[li] = v
					li++
				} else {
					b[ri] = v
					ri++
				}
			}
		})
	}
	g2.Wait()
	return nl
}

func serialPartition(a, b []float64, pivot float64) int {
	li := 0
	for _, v := range a {
		if v < pivot {
			b[li] = v
			li++
		}
	}
	ri := li
	for _, v := range a {
		if v >= pivot {
			b[ri] = v
			ri++
		}
	}
	return li
}
