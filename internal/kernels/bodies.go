package kernels

import "github.com/parlab/adws"

// Body-level entry points: each returns a root-task body equivalent to
// the corresponding Pool.Run wrapper, for injection through the
// job-serving layer (Pool.Submit) where the caller owns the root task.
// State (buffers, results) is captured by the closure, so one body is
// good for one execution.

// QuicksortBody returns a body sorting data in place (ascending).
func QuicksortBody(data []float64) func(*adws.Ctx) {
	buf := make([]float64, len(data))
	return func(c *adws.Ctx) { qsort(c, data, buf) }
}

// RRMBody returns a body applying the recursive repeated map to data.
func RRMBody(data []float64, alpha float64) func(*adws.Ctx) {
	if alpha <= 0 {
		alpha = 1
	}
	return func(c *adws.Ctx) { rrmRec(c, data, alpha) }
}

// KDTreeBody returns a body building a kd-tree over points, storing the
// root node in *out.
func KDTreeBody(points []KDPoint, out **KDNode) func(*adws.Ctx) {
	buf := make([]KDPoint, len(points))
	return func(c *adws.Ctx) { *out = kdBuild(c, points, buf, 0, 0) }
}

// MatMulBody returns a body computing C = A·B for n×n matrices.
func MatMulBody(C, A, B *Matrix) func(*adws.Ctx) {
	return func(c *adws.Ctx) { mmRec(c, C, A, B, 0, 0, 0, 0, 0, 0, C.N) }
}

// Heat2DBody returns a body running iters stencil iterations with double
// buffering, storing the grid holding the final state in *out.
func Heat2DBody(src, dst *Grid, iters int, out **Grid) func(*adws.Ctx) {
	return func(c *adws.Ctx) {
		s, d := src, dst
		for it := 0; it < iters; it++ {
			heatSweep(c, s, d, 0, 0, s.N, s.N)
			s, d = d, s
		}
		*out = s
	}
}
