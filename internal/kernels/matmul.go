package kernels

import "github.com/parlab/adws"

// MatMulCutoff is the kernel block size (the paper uses 64×64 with a
// hand-vectorized kernel; plain Go code uses the same logical cutoff).
const MatMulCutoff = 64

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	N    int
	Data []float32
	// stride includes the paper's anti-conflict row padding.
	stride int
}

// NewMatrix allocates an n×n matrix with row padding (the paper pads rows
// by 128 bytes to avoid cache conflicts at power-of-two sizes).
func NewMatrix(n int) *Matrix {
	stride := n + 32 // 32 float32s = 128 bytes
	return &Matrix{N: n, Data: make([]float32, n*stride), stride: stride}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.stride+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.stride+j] = v }

// MatMul computes C = A·B by the cache-oblivious recursion (§6.2): square
// matrices divided into four quadrants, eight recursive sub-products in
// two sequential groups of four parallel ones.
func MatMul(pool *adws.Pool, C, A, B *Matrix) {
	n := C.N
	pool.Run(func(c *adws.Ctx) {
		mmRec(c, C, A, B, 0, 0, 0, 0, 0, 0, n)
	})
}

// mmRec multiplies the n×n blocks A[ai:,aj:]·B[bi:,bj:] into C[ci:,cj:].
func mmRec(c *adws.Ctx, C, A, B *Matrix, ci, cj, ai, aj, bi, bj, n int) {
	if n <= MatMulCutoff {
		mmKernel(C, A, B, ci, cj, ai, aj, bi, bj, n)
		return
	}
	h := n / 2
	type call struct{ ci, cj, ai, aj, bi, bj, n1, n2, n3 int }
	// First half-products (k-lower), then second (k-upper); each group's
	// four products write disjoint C quadrants and run in parallel.
	size := func(nn int) int64 { return 3 * int64(nn) * int64(nn) * 4 }
	work := func(nn int) float64 { f := float64(nn); return f * f * f }
	run := func(calls [4]call) {
		g := c.Group(adws.GroupHint{Work: 4 * work(h), Size: size(n)})
		for _, cl := range calls {
			cl := cl
			g.Spawn(work(cl.n1), func(c *adws.Ctx) {
				mmRecRect(c, C, A, B, cl.ci, cl.cj, cl.ai, cl.aj, cl.bi, cl.bj, cl.n1, cl.n2, cl.n3)
			})
		}
		g.Wait()
	}
	run([4]call{
		{ci, cj, ai, aj, bi, bj, h, h, h},
		{ci, cj + h, ai, aj, bi, bj + h, h, h, n - h},
		{ci + h, cj, ai + h, aj, bi, bj, n - h, h, h},
		{ci + h, cj + h, ai + h, aj, bi, bj + h, n - h, h, n - h},
	})
	run([4]call{
		{ci, cj, ai, aj + h, bi + h, bj, h, n - h, h},
		{ci, cj + h, ai, aj + h, bi + h, bj + h, h, n - h, n - h},
		{ci + h, cj, ai + h, aj + h, bi + h, bj, n - h, n - h, h},
		{ci + h, cj + h, ai + h, aj + h, bi + h, bj + h, n - h, n - h, n - h},
	})
}

// mmRecRect handles the (m × k)·(k × p) rectangular case produced by odd
// splits, recursing on the largest dimension.
func mmRecRect(c *adws.Ctx, C, A, B *Matrix, ci, cj, ai, aj, bi, bj, m, k, p int) {
	if m <= MatMulCutoff && k <= MatMulCutoff && p <= MatMulCutoff {
		mmKernelRect(C, A, B, ci, cj, ai, aj, bi, bj, m, k, p)
		return
	}
	switch {
	case m >= k && m >= p:
		h := m / 2
		g := c.Group(adws.GroupHint{
			Work: float64(m) * float64(k) * float64(p),
			Size: int64(m*k+k*p+m*p) * 4,
		})
		g.Spawn(float64(h)*float64(k)*float64(p), func(c *adws.Ctx) {
			mmRecRect(c, C, A, B, ci, cj, ai, aj, bi, bj, h, k, p)
		})
		g.Spawn(float64(m-h)*float64(k)*float64(p), func(c *adws.Ctx) {
			mmRecRect(c, C, A, B, ci+h, cj, ai+h, aj, bi, bj, m-h, k, p)
		})
		g.Wait()
	case p >= k:
		h := p / 2
		g := c.Group(adws.GroupHint{
			Work: float64(m) * float64(k) * float64(p),
			Size: int64(m*k+k*p+m*p) * 4,
		})
		g.Spawn(float64(m)*float64(k)*float64(h), func(c *adws.Ctx) {
			mmRecRect(c, C, A, B, ci, cj, ai, aj, bi, bj, m, k, h)
		})
		g.Spawn(float64(m)*float64(k)*float64(p-h), func(c *adws.Ctx) {
			mmRecRect(c, C, A, B, ci, cj+h, ai, aj, bi, bj+h, m, k, p-h)
		})
		g.Wait()
	default:
		// Split k: the two halves accumulate into the same C block and
		// must run sequentially.
		h := k / 2
		mmRecRect(c, C, A, B, ci, cj, ai, aj, bi, bj, m, h, p)
		mmRecRect(c, C, A, B, ci, cj, ai, aj+h, bi+h, bj, m, k-h, p)
	}
}

// mmKernel is the square cutoff kernel (C += A·B).
func mmKernel(C, A, B *Matrix, ci, cj, ai, aj, bi, bj, n int) {
	mmKernelRect(C, A, B, ci, cj, ai, aj, bi, bj, n, n, n)
}

// mmKernelRect is the rectangular cutoff kernel, ikj-ordered for locality.
func mmKernelRect(C, A, B *Matrix, ci, cj, ai, aj, bi, bj, m, k, p int) {
	for i := 0; i < m; i++ {
		crow := C.Data[(ci+i)*C.stride+cj : (ci+i)*C.stride+cj+p]
		for kk := 0; kk < k; kk++ {
			a := A.Data[(ai+i)*A.stride+aj+kk]
			if a == 0 {
				continue
			}
			brow := B.Data[(bi+kk)*B.stride+bj : (bi+kk)*B.stride+bj+p]
			for j := 0; j < p; j++ {
				crow[j] += a * brow[j]
			}
		}
	}
}
