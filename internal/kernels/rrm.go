package kernels

import "github.com/parlab/adws"

// RRM constants mirror the paper's benchmark (§6.2): recursion stops below
// 32 KB of float64s and each map parallelizes down to 128 KB.
const (
	rrmRecCutoff = 32 << 10 / 8  // elements
	rrmMapCutoff = 128 << 10 / 8 // elements
	rrmRepeats   = 3
)

// RRM runs the Recursive Repeated Map benchmark over data: at each
// recursion level the map (x = x*c + x) is applied three times over the
// current array, then the array is divided in the ratio 1:alpha and both
// parts recurse in parallel.
func RRM(pool *adws.Pool, data []float64, alpha float64) {
	if alpha <= 0 {
		alpha = 1
	}
	pool.Run(func(c *adws.Ctx) {
		rrmRec(c, data, alpha)
	})
}

// rrmWork returns the exact subtree work hint for an array of n elements.
func rrmWork(n int, alpha float64) float64 {
	w := float64(rrmRepeats * n)
	if n > rrmRecCutoff {
		nl := int(float64(n) / (1 + alpha))
		if nl < 1 {
			nl = 1
		}
		w += rrmWork(nl, alpha) + rrmWork(n-nl, alpha)
	}
	return w
}

func rrmRec(c *adws.Ctx, a []float64, alpha float64) {
	for r := 0; r < rrmRepeats; r++ {
		rrmMap(c, a)
	}
	if len(a) <= rrmRecCutoff {
		return
	}
	nl := int(float64(len(a)) / (1 + alpha))
	if nl < 1 {
		nl = 1
	}
	l, r := a[:nl], a[nl:]
	wl, wr := rrmWork(len(l), alpha), rrmWork(len(r), alpha)
	g := c.Group(adws.GroupHint{Work: wl + wr, Size: int64(len(a)) * 8})
	g.Spawn(wl, func(c *adws.Ctx) { rrmRec(c, l, alpha) })
	g.Spawn(wr, func(c *adws.Ctx) { rrmRec(c, r, alpha) })
	g.Wait()
}

// rrmMap applies the map function over a as a recursively parallelized
// flat loop.
func rrmMap(c *adws.Ctx, a []float64) {
	if len(a) <= rrmMapCutoff {
		for i := range a {
			a[i] = a[i]*1.0000001 + a[i]
		}
		return
	}
	mid := len(a) / 2
	g := c.Group(adws.GroupHint{Work: float64(len(a)), Size: int64(len(a)) * 8})
	g.Spawn(float64(mid), func(c *adws.Ctx) { rrmMap(c, a[:mid]) })
	g.Spawn(float64(len(a)-mid), func(c *adws.Ctx) { rrmMap(c, a[mid:]) })
	g.Wait()
}

// KDPoint is one 3-D point.
type KDPoint struct{ X, Y, Z float64 }

// KDNode is a kd-tree node over a contiguous point range.
type KDNode struct {
	// Lo and Hi delimit the node's points in the (reordered) input.
	Lo, Hi int
	// Axis and Split describe the dividing plane (leaves have Axis -1).
	Axis        int
	Split       float64
	Left, Right *KDNode
}

// kdCutoff stops tree construction (the paper's 4 KB nodes; a point is
// 24 bytes, so ~170 points).
const kdCutoff = 170

// kdParCutoff is the task-parallel cutoff (the paper's 64 KB).
const kdParCutoff = 64 << 10 / 24

// KDTree builds a kd-tree over points (reordering them in place) with
// median-of-three pivots along round-robin axes (§6.2).
func KDTree(pool *adws.Pool, points []KDPoint) *KDNode {
	buf := make([]KDPoint, len(points))
	var root *KDNode
	pool.Run(func(c *adws.Ctx) {
		root = kdBuild(c, points, buf, 0, 0)
	})
	return root
}

func kdAxis(p KDPoint, axis int) float64 {
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	default:
		return p.Z
	}
}

func kdBuild(c *adws.Ctx, pts, buf []KDPoint, axis, lo int) *KDNode {
	n := len(pts)
	node := &KDNode{Lo: lo, Hi: lo + n, Axis: -1}
	if n <= kdCutoff {
		return node
	}
	pivot := medianOf3(kdAxis(pts[0], axis), kdAxis(pts[n/2], axis), kdAxis(pts[n-1], axis))
	// Partition by the pivot plane (serial below the parallel cutoff).
	var nl int
	if n <= kdParCutoff {
		nl = kdPartitionSerial(pts, buf, axis, pivot)
	} else {
		nl = kdPartitionParallel(c, pts, buf, axis, pivot)
	}
	if nl == 0 || nl == n {
		return node // degenerate plane: stop here
	}
	copy(pts, buf[:n])
	node.Axis, node.Split = axis, pivot
	next := (axis + 1) % 3
	if n <= kdParCutoff {
		node.Left = kdBuild(c, pts[:nl], buf[:nl], next, lo)
		node.Right = kdBuild(c, pts[nl:], buf[nl:n], next, lo+nl)
		return node
	}
	g := c.Group(adws.GroupHint{Work: float64(n), Size: int64(2*n) * 24})
	g.Spawn(float64(nl), func(c *adws.Ctx) {
		node.Left = kdBuild(c, pts[:nl], buf[:nl], next, lo)
	})
	g.Spawn(float64(n-nl), func(c *adws.Ctx) {
		node.Right = kdBuild(c, pts[nl:], buf[nl:n], next, lo+nl)
	})
	g.Wait()
	return node
}

func kdPartitionSerial(pts, buf []KDPoint, axis int, pivot float64) int {
	li := 0
	for _, p := range pts {
		if kdAxis(p, axis) < pivot {
			buf[li] = p
			li++
		}
	}
	ri := li
	for _, p := range pts {
		if kdAxis(p, axis) >= pivot {
			buf[ri] = p
			ri++
		}
	}
	return li
}

// kdPartitionParallel mirrors Quicksort's count/prefix/scatter scheme.
func kdPartitionParallel(c *adws.Ctx, pts, buf []KDPoint, axis int, pivot float64) int {
	n := len(pts)
	bs := kdParCutoff
	nb := (n + bs - 1) / bs
	counts := make([]int, nb)
	g := c.Group(adws.GroupHint{Work: float64(n), Size: int64(2*n) * 24})
	for blk := 0; blk < nb; blk++ {
		blk := blk
		lo, hi := blk*bs, min((blk+1)*bs, n)
		g.Spawn(float64(hi-lo), func(c *adws.Ctx) {
			cnt := 0
			for _, p := range pts[lo:hi] {
				if kdAxis(p, axis) < pivot {
					cnt++
				}
			}
			counts[blk] = cnt
		})
	}
	g.Wait()
	lOff := make([]int, nb)
	rOff := make([]int, nb)
	nl := 0
	for blk := 0; blk < nb; blk++ {
		lOff[blk] = nl
		nl += counts[blk]
	}
	r := nl
	for blk := 0; blk < nb; blk++ {
		lo, hi := blk*bs, min((blk+1)*bs, n)
		rOff[blk] = r
		r += (hi - lo) - counts[blk]
	}
	g2 := c.Group(adws.GroupHint{Work: float64(n), Size: int64(2*n) * 24})
	for blk := 0; blk < nb; blk++ {
		blk := blk
		lo, hi := blk*bs, min((blk+1)*bs, n)
		g2.Spawn(float64(hi-lo), func(c *adws.Ctx) {
			li, ri := lOff[blk], rOff[blk]
			for _, p := range pts[lo:hi] {
				if kdAxis(p, axis) < pivot {
					buf[li] = p
					li++
				} else {
					buf[ri] = p
					ri++
				}
			}
		})
	}
	g2.Wait()
	return nl
}
