// Package dtree implements parallel CART decision-tree construction — the
// motivating application of the ADWS paper (§2.1) — on the adws task pool.
//
// Trees are built by recursive divide and conquer: at every node the best
// split is chosen per attribute by building class histograms over the
// node's rows (as LightGBM-style implementations do, rather than by
// sorting), the rows are partitioned with double buffering, and the two
// partitions are constructed in parallel. Task groups carry row-count work
// hints and byte-size working-set hints, exactly the annotations the paper
// adds in Fig. 2b.
package dtree

import (
	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/dataset"
)

// Config parameterizes training.
type Config struct {
	// MaxDepth bounds the tree depth (the paper uses 17 for HIGGS).
	MaxDepth int
	// CutoffRows is the serial-recursion cutoff (paper: 64 KB of rows).
	CutoffRows int
	// LoopCutoffRows is the parallel-loop/partition leaf size (paper:
	// 256 KB of rows).
	LoopCutoffRows int
	// Bins is the histogram resolution per attribute.
	Bins int
	// MinLeaf stops splitting below this many rows.
	MinLeaf int
}

// DefaultConfig mirrors the paper's settings scaled to row counts
// (a HIGGS row is 28×8 = 224 bytes; 64 KB ≈ 292 rows, 256 KB ≈ 1170).
func DefaultConfig() Config {
	return Config{
		MaxDepth:       17,
		CutoffRows:     292,
		LoopCutoffRows: 1170,
		Bins:           32,
		MinLeaf:        8,
	}
}

// Node is one decision tree node.
type Node struct {
	// Leaf prediction: probability of class 1.
	Prob float64
	// Split (internal nodes): attribute and threshold; nil children mark
	// leaves.
	Attr        int
	Threshold   float64
	Left, Right *Node
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is a trained decision tree.
type Tree struct {
	Root  *Node
	Nodes int
}

// Predict returns the predicted class of row r of ds.
func (t *Tree) Predict(ds *dataset.Dataset, r int32) uint8 {
	n := t.Root
	for !n.IsLeaf() {
		if ds.Values[n.Attr][r] < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	if n.Prob >= 0.5 {
		return 1
	}
	return 0
}

// Accuracy evaluates the tree over the given rows.
func (t *Tree) Accuracy(ds *dataset.Dataset, rows []int32) float64 {
	if len(rows) == 0 {
		return 0
	}
	correct := 0
	for _, r := range rows {
		if t.Predict(ds, r) == ds.Labels[r] {
			correct++
		}
	}
	return float64(correct) / float64(len(rows))
}

// trainer carries the shared training state.
type trainer struct {
	cfg  Config
	ds   *dataset.Dataset
	pool *adws.Pool
	// rowBytes is the per-row working-set contribution for size hints.
	rowBytes int64
	// attrBounds caches each attribute's global [min,max] for histogram
	// binning.
	attrBounds [][2]float64
}

// Train builds a tree over the given training rows using the pool.
func Train(pool *adws.Pool, ds *dataset.Dataset, rows []int32, cfg Config) *Tree {
	if cfg.MaxDepth <= 0 {
		cfg = DefaultConfig()
	}
	tr := &trainer{cfg: cfg, ds: ds, pool: pool, rowBytes: int64(ds.Attrs) * 8}
	tr.attrBounds = make([][2]float64, ds.Attrs)
	for a := 0; a < ds.Attrs; a++ {
		lo, hi := tr.attrRange(a)
		tr.attrBounds[a] = [2]float64{lo, hi}
	}
	t := &Tree{}
	// Copy the row list: training ping-pongs rows between two buffers, so
	// the working slices end up scrambled; the caller's slice stays intact.
	work := append([]int32(nil), rows...)
	buf := make([]int32, len(work))
	pool.Run(func(c *adws.Ctx) {
		t.Root = tr.build(c, work, buf, 0, &t.Nodes)
	})
	return t
}

// build constructs the subtree over rows; buf is the double buffer. Task
// recursion stops at CutoffRows; the tree itself keeps growing serially
// below the cutoff until MaxDepth, purity, or MinLeaf.
func (tr *trainer) build(c *adws.Ctx, rows, buf []int32, depth int, nodes *int) *Node {
	*nodes++
	n := &Node{Prob: tr.classProb(rows)}
	if tr.done(rows, depth, n.Prob) {
		return n
	}
	if len(rows) <= tr.cfg.CutoffRows {
		tr.split(n, rows, buf, depth, nodes, nil)
		return n
	}
	tr.split(n, rows, buf, depth, nodes, c)
	return n
}

// done reports whether the node must stay a leaf.
func (tr *trainer) done(rows []int32, depth int, prob float64) bool {
	return depth >= tr.cfg.MaxDepth || len(rows) < 2*tr.cfg.MinLeaf ||
		prob == 0 || prob == 1
}

// split grows node n over rows; with a nil Ctx everything runs serially.
func (tr *trainer) split(n *Node, rows, buf []int32, depth int, nodes *int, c *adws.Ctx) {
	var attr int
	var thr float64
	var ok bool
	if c != nil {
		attr, thr, ok = tr.bestSplit(c, rows)
	} else {
		attr, thr, ok = tr.bestSplitSerial(rows)
	}
	if !ok {
		return
	}
	var nl int
	if c != nil {
		nl = tr.partition(c, rows, buf, attr, thr)
	} else {
		nl = partitionSerial(tr.ds, rows, buf, attr, thr)
	}
	if nl < tr.cfg.MinLeaf || len(rows)-nl < tr.cfg.MinLeaf {
		return
	}
	n.Attr, n.Threshold = attr, thr
	// The partition lives in buf; recurse with swapped buffers.
	lRows, rRows := buf[:nl], buf[nl:len(rows)]
	lBuf, rBuf := rows[:nl], rows[nl:]

	if c == nil {
		n.Left = tr.build(nil, lRows, lBuf, depth+1, nodes)
		n.Right = tr.build(nil, rRows, rBuf, depth+1, nodes)
		return
	}
	var left, right *Node
	var lN, rN int
	g := c.Group(adws.GroupHint{
		Work: float64(len(rows)),
		Size: int64(len(rows)) * tr.rowBytes,
	})
	g.Spawn(float64(nl), func(c *adws.Ctx) {
		left = tr.build(c, lRows, lBuf, depth+1, &lN)
	})
	g.Spawn(float64(len(rows)-nl), func(c *adws.Ctx) {
		right = tr.build(c, rRows, rBuf, depth+1, &rN)
	})
	g.Wait()
	*nodes += lN + rN
	n.Left, n.Right = left, right
}

func (tr *trainer) classProb(rows []int32) float64 {
	if len(rows) == 0 {
		return 0
	}
	ones := 0
	for _, r := range rows {
		ones += int(tr.ds.Labels[r])
	}
	return float64(ones) / float64(len(rows))
}
