package dtree

import (
	"testing"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/dataset"
)

func testPool(t *testing.T, s adws.Scheduler) *adws.Pool {
	t.Helper()
	p, err := adws.NewPool(
		adws.WithScheduler(s),
		adws.WithHierarchy([]adws.CacheLevel{
			{Fanout: 2, CapacityBytes: 8 << 20},
			{Fanout: 4, CapacityBytes: 1 << 20},
		}, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func smallConfig() Config {
	return Config{MaxDepth: 10, CutoffRows: 200, LoopCutoffRows: 500, Bins: 24, MinLeaf: 4}
}

func TestTrainAccuracyBeatsChance(t *testing.T) {
	// The paper validates 72% accuracy on HIGGS vs 52% random (§6.2); the
	// synthetic dataset must reproduce "well above chance".
	ds := dataset.Synthetic(30000, dataset.DefaultAttrs, 7)
	train, test := ds.Split(5000)
	p := testPool(t, adws.ADWS)
	tree := Train(p, ds, train, smallConfig())
	acc := tree.Accuracy(ds, test)
	if acc < 0.62 {
		t.Errorf("accuracy = %.3f, want >= 0.62 (chance ~0.5)", acc)
	}
	if tree.Nodes < 10 {
		t.Errorf("tree has only %d nodes", tree.Nodes)
	}
	t.Logf("accuracy %.3f over %d nodes", acc, tree.Nodes)
}

func TestSchedulersAgreeOnTree(t *testing.T) {
	// Training is deterministic given the dataset, so every scheduler must
	// produce the same tree (same accuracy, same node count) — the
	// almost-deterministic scheduling must not leak into results.
	ds := dataset.Synthetic(8000, 12, 3)
	train, test := ds.Split(2000)
	var accs []float64
	var nodes []int
	for _, s := range []adws.Scheduler{adws.WorkStealing, adws.ADWS, adws.MultiLevelWS, adws.MultiLevelADWS} {
		p := testPool(t, s)
		tree := Train(p, ds, train, smallConfig())
		accs = append(accs, tree.Accuracy(ds, test))
		nodes = append(nodes, tree.Nodes)
	}
	for i := 1; i < len(accs); i++ {
		if accs[i] != accs[0] || nodes[i] != nodes[0] {
			t.Errorf("scheduler %d: acc/nodes = %.4f/%d, want %.4f/%d",
				i, accs[i], nodes[i], accs[0], nodes[0])
		}
	}
}

func TestPartitionParallelMatchesSerial(t *testing.T) {
	ds := dataset.Synthetic(5000, 4, 11)
	rows := make([]int32, ds.Rows)
	for i := range rows {
		rows[i] = int32(i)
	}
	bufS := make([]int32, len(rows))
	nlS := partitionSerial(ds, rows, bufS, 2, 0.1)

	p := testPool(t, adws.ADWS)
	tr := &trainer{cfg: smallConfig(), ds: ds, rowBytes: int64(ds.Attrs) * 8}
	bufP := make([]int32, len(rows))
	var nlP int
	p.Run(func(c *adws.Ctx) {
		nlP = tr.partition(c, rows, bufP, 2, 0.1)
	})
	if nlP != nlS {
		t.Fatalf("parallel nl = %d, serial nl = %d", nlP, nlS)
	}
	for i := range bufS {
		if bufS[i] != bufP[i] {
			t.Fatalf("partition differs at %d: %d vs %d (stability violated)", i, bufP[i], bufS[i])
		}
	}
	// Every left row is < threshold, every right row >= threshold.
	for i, r := range bufP[:nlP] {
		if ds.Values[2][r] >= 0.1 {
			t.Fatalf("left row %d (idx %d) has value %v >= thr", i, r, ds.Values[2][r])
		}
	}
	for i, r := range bufP[nlP:] {
		if ds.Values[2][r] < 0.1 {
			t.Fatalf("right row %d (idx %d) has value %v < thr", i, r, ds.Values[2][r])
		}
	}
}

func TestParallelHistMatchesSerial(t *testing.T) {
	ds := dataset.Synthetic(4000, 3, 5)
	rows := make([]int32, ds.Rows)
	for i := range rows {
		rows[i] = int32(i)
	}
	tr := &trainer{cfg: smallConfig(), ds: ds, rowBytes: int64(ds.Attrs) * 8}
	tr.attrBounds = make([][2]float64, ds.Attrs)
	for a := 0; a < ds.Attrs; a++ {
		lo, hi := tr.attrRange(a)
		tr.attrBounds[a] = [2]float64{lo, hi}
	}

	serial := newHist(tr.cfg.Bins, tr.attrBounds[1][0], tr.attrBounds[1][1])
	for _, r := range rows {
		serial.add(ds.Values[1][r], ds.Labels[r])
	}

	p := testPool(t, adws.MultiLevelADWS)
	var par *hist
	p.Run(func(c *adws.Ctx) { par = tr.parallelHist(c, rows, 1) })
	for cl := 0; cl < 2; cl++ {
		for b := range serial.counts[cl] {
			if serial.counts[cl][b] != par.counts[cl][b] {
				t.Fatalf("hist[%d][%d]: serial %d vs parallel %d",
					cl, b, serial.counts[cl][b], par.counts[cl][b])
			}
		}
	}
}

func TestHistBestThreshold(t *testing.T) {
	// A perfectly separable histogram: class 0 in low bins, class 1 high.
	h := newHist(8, 0, 8)
	for i := 0; i < 100; i++ {
		h.add(1.0, 0)
		h.add(6.0, 1)
	}
	thr, gini, ok := h.bestThreshold()
	if !ok {
		t.Fatal("no threshold found")
	}
	if thr <= 1.0 || thr > 6.0 {
		t.Errorf("threshold = %v, want in (1, 6]", thr)
	}
	if gini > 1e-9 {
		t.Errorf("gini = %v, want ~0 for separable data", gini)
	}

	// Degenerate: empty histogram.
	if _, _, ok := newHist(4, 0, 1).bestThreshold(); ok {
		t.Error("empty histogram produced a threshold")
	}
}

func TestPredictOnPureLeaf(t *testing.T) {
	tree := &Tree{Root: &Node{Prob: 0.9}}
	ds := dataset.Synthetic(10, 2, 1)
	if got := tree.Predict(ds, 0); got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
	tree.Root.Prob = 0.1
	if got := tree.Predict(ds, 0); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
	if acc := tree.Accuracy(ds, nil); acc != 0 {
		t.Errorf("Accuracy of no rows = %v", acc)
	}
}
