package dtree

import (
	"math"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/dataset"
)

// hist is a per-class histogram of one attribute over one node's rows.
type hist struct {
	counts [2][]int32
	lo, hi float64
}

func newHist(bins int, lo, hi float64) *hist {
	h := &hist{lo: lo, hi: hi}
	h.counts[0] = make([]int32, bins)
	h.counts[1] = make([]int32, bins)
	return h
}

func (h *hist) bin(v float64) int {
	bins := len(h.counts[0])
	if h.hi <= h.lo {
		return 0
	}
	b := int(float64(bins) * (v - h.lo) / (h.hi - h.lo))
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

func (h *hist) add(v float64, label uint8) {
	h.counts[label][h.bin(v)]++
}

func (h *hist) merge(o *hist) {
	for c := 0; c < 2; c++ {
		for i, v := range o.counts[c] {
			h.counts[c][i] += v
		}
	}
}

// bestThreshold scans the histogram for the split with the lowest weighted
// Gini impurity. ok is false when no bin boundary separates the rows.
func (h *hist) bestThreshold() (thr float64, gini float64, ok bool) {
	bins := len(h.counts[0])
	var tot0, tot1 int32
	for i := 0; i < bins; i++ {
		tot0 += h.counts[0][i]
		tot1 += h.counts[1][i]
	}
	total := float64(tot0 + tot1)
	if total == 0 {
		return 0, 0, false
	}
	best := math.Inf(1)
	var l0, l1 int32
	for i := 0; i < bins-1; i++ {
		l0 += h.counts[0][i]
		l1 += h.counts[1][i]
		nl := float64(l0 + l1)
		nr := total - nl
		if nl == 0 || nr == 0 {
			continue
		}
		gl := giniOf(float64(l1), nl)
		gr := giniOf(float64(tot1-l1), nr)
		g := (nl*gl + nr*gr) / total
		if g < best {
			best = g
			thr = h.lo + (h.hi-h.lo)*float64(i+1)/float64(bins)
			ok = true
		}
	}
	return thr, best, ok
}

// giniOf returns the Gini impurity of a set with `ones` positives out of n.
func giniOf(ones, n float64) float64 {
	p := ones / n
	return 2 * p * (1 - p)
}

// attrRange returns the attribute's global value range (histogram bounds
// are shared across nodes; synthetic data is unimodal enough for this).
func (tr *trainer) attrRange(attr int) (lo, hi float64) {
	col := tr.ds.Values[attr]
	lo, hi = col[0], col[0]
	for _, v := range col {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// bestSplit finds the best (attribute, threshold) for a node by building
// per-attribute histograms with parallel reductions — the paper's
// COMPUTEBESTSPLIT as consecutive flat parallel loops (Fig. 1 line 2–5).
func (tr *trainer) bestSplit(c *adws.Ctx, rows []int32) (attr int, thr float64, ok bool) {
	bestG := math.Inf(1)
	for a := 0; a < tr.ds.Attrs; a++ {
		h := tr.parallelHist(c, rows, a)
		if t, g, o := h.bestThreshold(); o && g < bestG {
			bestG, attr, thr, ok = g, a, t, true
		}
	}
	return attr, thr, ok
}

// parallelHist builds the histogram of attribute a over rows by recursive
// halving with merge-on-join, cutting off at LoopCutoffRows.
func (tr *trainer) parallelHist(c *adws.Ctx, rows []int32, a int) *hist {
	lo, hi := tr.attrBounds[a][0], tr.attrBounds[a][1]
	var rec func(c *adws.Ctx, rows []int32) *hist
	rec = func(c *adws.Ctx, rows []int32) *hist {
		if len(rows) <= tr.cfg.LoopCutoffRows {
			h := newHist(tr.cfg.Bins, lo, hi)
			col := tr.ds.Values[a]
			for _, r := range rows {
				h.add(col[r], tr.ds.Labels[r])
			}
			return h
		}
		mid := len(rows) / 2
		var hl, hr *hist
		g := c.Group(adws.GroupHint{
			Work: float64(len(rows)),
			Size: int64(len(rows)) * tr.rowBytes,
		})
		g.Spawn(float64(mid), func(c *adws.Ctx) { hl = rec(c, rows[:mid]) })
		g.Spawn(float64(len(rows)-mid), func(c *adws.Ctx) { hr = rec(c, rows[mid:]) })
		g.Wait()
		hl.merge(hr)
		return hl
	}
	return rec(c, rows)
}

// bestSplitSerial is the sub-cutoff serial variant.
func (tr *trainer) bestSplitSerial(rows []int32) (attr int, thr float64, ok bool) {
	bestG := math.Inf(1)
	for a := 0; a < tr.ds.Attrs; a++ {
		lo, hi := tr.attrBounds[a][0], tr.attrBounds[a][1]
		h := newHist(tr.cfg.Bins, lo, hi)
		col := tr.ds.Values[a]
		for _, r := range rows {
			h.add(col[r], tr.ds.Labels[r])
		}
		if t, g, o := h.bestThreshold(); o && g < bestG {
			bestG, attr, thr, ok = g, a, t, true
		}
	}
	return attr, thr, ok
}

// partition stably partitions rows by (attr < thr) into buf using double
// buffering: a parallel counting pass, a serial prefix sum over blocks,
// and a parallel scatter pass (the paper's PARTITION, Fig. 1 line 7).
// It returns the number of rows in the left partition.
func (tr *trainer) partition(c *adws.Ctx, rows, buf []int32, attr int, thr float64) int {
	n := len(rows)
	bs := tr.cfg.LoopCutoffRows
	nb := (n + bs - 1) / bs
	if nb == 1 {
		return partitionSerial(tr.ds, rows, buf, attr, thr)
	}
	left := make([]int32, nb)
	col := tr.ds.Values[attr]
	sz := int64(n) * tr.rowBytes

	g := c.Group(adws.GroupHint{Work: float64(n), Size: sz})
	for b := 0; b < nb; b++ {
		b := b
		lo, hi := b*bs, (b+1)*bs
		if hi > n {
			hi = n
		}
		g.Spawn(float64(hi-lo), func(c *adws.Ctx) {
			var cnt int32
			for _, r := range rows[lo:hi] {
				if col[r] < thr {
					cnt++
				}
			}
			left[b] = cnt
		})
	}
	g.Wait()

	// Prefix sums: left-side and right-side block offsets.
	lOff := make([]int32, nb)
	rOff := make([]int32, nb)
	var nl int32
	for b := 0; b < nb; b++ {
		lOff[b] = nl
		nl += left[b]
	}
	r := nl
	for b := 0; b < nb; b++ {
		rOff[b] = r
		blockLen := int32(bs)
		if (b+1)*bs > n {
			blockLen = int32(n - b*bs)
		}
		r += blockLen - left[b]
	}

	g2 := c.Group(adws.GroupHint{Work: float64(n), Size: sz})
	for b := 0; b < nb; b++ {
		b := b
		lo, hi := b*bs, (b+1)*bs
		if hi > n {
			hi = n
		}
		g2.Spawn(float64(hi-lo), func(c *adws.Ctx) {
			li, ri := lOff[b], rOff[b]
			for _, row := range rows[lo:hi] {
				if col[row] < thr {
					buf[li] = row
					li++
				} else {
					buf[ri] = row
					ri++
				}
			}
		})
	}
	g2.Wait()
	return int(nl)
}

// partitionSerial is the one-block variant.
func partitionSerial(ds *dataset.Dataset, rows, buf []int32, attr int, thr float64) int {
	col := ds.Values[attr]
	li := 0
	ri := len(rows)
	for _, r := range rows {
		if col[r] < thr {
			buf[li] = r
			li++
		}
	}
	ri = li
	for _, r := range rows {
		if col[r] >= thr {
			buf[ri] = r
			ri++
		}
	}
	return li
}
