package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/parlab/adws"
	"github.com/parlab/adws/internal/kernels"
	"github.com/parlab/adws/internal/sched"
)

// Job is one named real-runtime workload instance, ready for submission
// through the job-serving layer: a root-task body over the real kernels
// (internal/kernels) with a built-in self-check, plus default admission
// hints. Contrast with Instance, the simulator twin of the same
// benchmarks.
type Job struct {
	// Name identifies the workload (see JobNames).
	Name string
	// N is the problem size the instance was built with.
	N int
	// Work is the default relative-work hint (arbitrary units,
	// comparable across workloads: roughly element-operations).
	Work float64
	// Size is the default working-set-size hint in bytes.
	Size int64
	// Body runs the workload and returns a verification error if the
	// computed result is wrong. One Body value is good for one run.
	Body func(*adws.Ctx) error
}

// Hint returns the job's default admission hints.
func (j Job) Hint() adws.JobHint { return adws.JobHint{Work: j.Work, Size: j.Size} }

// JobNames lists the available real-runtime job workloads.
func JobNames() []string {
	return []string{"quicksort", "kdtree", "rrm", "matmul", "heat2d", "fib"}
}

// NewJob builds a named real-runtime workload instance of problem size n
// (elements, points, matrix side, or grid side; n <= 0 selects a default)
// with deterministic pseudo-random input drawn from seed.
func NewJob(name string, n int, seed uint64) (Job, error) {
	rng := sched.NewRNG(seed^0x5EED50B5, 0)
	switch name {
	case "quicksort":
		if n <= 0 {
			n = 500_000
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()
		}
		body := kernels.QuicksortBody(data)
		return Job{Name: name, N: n, Work: float64(n) * math.Log2(float64(n)+2), Size: int64(2 * n * 8),
			Body: func(c *adws.Ctx) error {
				body(c)
				if !sort.Float64sAreSorted(data) {
					return fmt.Errorf("quicksort: output not sorted")
				}
				return nil
			}}, nil
	case "kdtree":
		if n <= 0 {
			n = 200_000
		}
		pts := make([]kernels.KDPoint, n)
		for i := range pts {
			pts[i] = kernels.KDPoint{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
		var root *kernels.KDNode
		body := kernels.KDTreeBody(pts, &root)
		return Job{Name: name, N: n, Work: float64(n) * math.Log2(float64(n)+2), Size: int64(2 * n * 24),
			Body: func(c *adws.Ctx) error {
				body(c)
				if root == nil {
					return fmt.Errorf("kdtree: no root built")
				}
				return nil
			}}, nil
	case "rrm":
		if n <= 0 {
			n = 500_000
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = 1
		}
		body := kernels.RRMBody(data, 1)
		return Job{Name: name, N: n, Work: 3 * float64(n), Size: int64(n * 8),
			Body: func(c *adws.Ctx) error {
				body(c)
				for i, v := range data {
					if v <= 1 {
						return fmt.Errorf("rrm: element %d not mapped (%v)", i, v)
					}
				}
				return nil
			}}, nil
	case "matmul":
		if n <= 0 {
			n = 256
		}
		A, B, C := kernels.NewMatrix(n), kernels.NewMatrix(n), kernels.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				A.Set(i, j, float32(rng.Float64()-0.5))
				B.Set(i, j, float32(rng.Float64()-0.5))
			}
		}
		body := kernels.MatMulBody(C, A, B)
		nn := float64(n)
		return Job{Name: name, N: n, Work: 2 * nn * nn * nn, Size: int64(3 * n * n * 4),
			Body: func(c *adws.Ctx) error {
				body(c)
				// Spot-check one element against the naive product.
				var want float32
				for k := 0; k < n; k++ {
					want += A.At(n/2, k) * B.At(k, n/3)
				}
				if got := C.At(n/2, n/3); math.Abs(float64(got-want)) > 1e-2 {
					return fmt.Errorf("matmul: C[%d][%d] = %v, want %v", n/2, n/3, got, want)
				}
				return nil
			}}, nil
	case "heat2d":
		if n <= 0 {
			n = 512
		}
		const iters = 4
		src, dst := kernels.NewGrid(n), kernels.NewGrid(n)
		src.Set(n/2, n/2, 1000)
		var out *kernels.Grid
		body := kernels.Heat2DBody(src, dst, iters, &out)
		return Job{Name: name, N: n, Work: float64(iters) * float64(n) * float64(n), Size: int64(2 * n * n * 8),
			Body: func(c *adws.Ctx) error {
				body(c)
				var sum float64
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						sum += out.At(i, j)
					}
				}
				if sum <= 0 {
					return fmt.Errorf("heat2d: heat vanished")
				}
				return nil
			}}, nil
	case "fib":
		if n <= 0 {
			n = 27
		}
		if n > 40 {
			return Job{}, fmt.Errorf("workload: fib size %d too large (max 40)", n)
		}
		want := serialFib(n)
		return Job{Name: name, N: n, Work: float64(want + 1), Size: 0,
			Body: func(c *adws.Ctx) error {
				if got := parFib(c, n); got != want {
					return fmt.Errorf("fib(%d) = %d, want %d", n, got, want)
				}
				return nil
			}}, nil
	default:
		return Job{}, fmt.Errorf("workload: unknown job %q (have %v)", name, JobNames())
	}
}

func serialFib(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

func parFib(c *adws.Ctx, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	if n < 16 {
		return parFib(c, n-1) + parFib(c, n-2)
	}
	var a, b int64
	g := c.Group(adws.GroupHint{Work: 3})
	g.Spawn(2, func(c *adws.Ctx) { a = parFib(c, n-1) })
	g.Spawn(1, func(c *adws.Ctx) { b = parFib(c, n-2) })
	g.Wait()
	return a + b
}
