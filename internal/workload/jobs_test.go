package workload

import (
	"context"
	"testing"
	"time"

	"github.com/parlab/adws"
)

// TestNewJobAllNames runs every named workload at a small size on a real
// pool; each body carries its own result verification, so a nil Job.Err
// means the computation was correct.
func TestNewJobAllNames(t *testing.T) {
	sizes := map[string]int{
		"quicksort": 10_000,
		"kdtree":    5_000,
		"rrm":       10_000,
		"matmul":    48,
		"heat2d":    48,
		"fib":       20,
	}
	pool, err := adws.NewPool(adws.WithScheduler(adws.ADWS), adws.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, name := range JobNames() {
		wj, err := NewJob(name, sizes[name], 3)
		if err != nil {
			t.Fatalf("NewJob(%q): %v", name, err)
		}
		if wj.Name != name || wj.Work <= 0 {
			t.Errorf("NewJob(%q) = %+v", name, wj)
		}
		j, err := pool.Submit(context.Background(), wj.Body, wj.Hint())
		if err != nil {
			t.Fatalf("submit %q: %v", name, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := j.Wait(ctx); err != nil {
			t.Errorf("%q: %v", name, err)
		}
		cancel()
	}
}

func TestNewJobDefaultsAndErrors(t *testing.T) {
	for _, name := range JobNames() {
		wj, err := NewJob(name, 0, 1)
		if err != nil {
			t.Errorf("NewJob(%q, 0): %v", name, err)
		}
		if wj.N <= 0 {
			t.Errorf("NewJob(%q, 0): default N = %d", name, wj.N)
		}
	}
	if _, err := NewJob("no-such-workload", 100, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := NewJob("fib", 60, 1); err == nil {
		t.Error("oversized fib accepted")
	}
}
