package workload

import (
	"math"

	"github.com/parlab/adws/internal/sim"
)

// MatMul is the paper's cache-oblivious dense matrix multiplication
// (SGEMM): C = A·B over N×N single-precision matrices, recursively divided
// into four submatrices with a hand-tuned kernel at the cutoff. We model
// matrices in tile-major layout with mmTile×mmTile tiles (the paper's
// 64×64 kernel is below our chunk granularity; tiles of 256×256 = 256 KB
// keep the same recursive structure at chunk resolution).
//
// The recursion follows the standard 8-multiply scheme: each quadrant of C
// accumulates two products, executed as two sequential groups of four
// parallel sub-multiplications.
func MatMul(n int, seed uint64) Instance {
	if n < mmTile {
		n = mmTile
	}
	nt := n / mmTile
	// Round to a power-of-two tile count for clean recursion.
	p := 1
	for p*2 <= nt {
		p *= 2
	}
	nt = p
	n = nt * mmTile
	bytes := int64(3) * int64(n) * int64(n) * 4
	return Instance{
		Name:  "matmul",
		Bytes: bytes,
		FLOPs: 2 * float64(n) * float64(n) * float64(n),
		Prepare: func(mem *sim.Memory) (sim.Body, sim.Body) {
			mb := int64(n) * int64(n) * 4
			A := mem.Alloc("mm.A", mb)
			B := mem.Alloc("mm.B", mb)
			C := mem.Alloc("mm.C", mb)
			m := &mmState{A: A, B: B, C: C, nTiles: nt}
			root := m.mul(nt, 0, 0, 0, 0, 0, 0)
			init := func(b *sim.B) {
				parFor(A, mmTileBytes, 1, 200)(b)
				parFor(B, mmTileBytes, 1, 200)(b)
				parFor(C, mmTileBytes, 1, 200)(b)
			}
			return root, init
		},
	}
}

// MatMulBytes builds a MatMul instance whose total working set (three
// matrices) is close to the requested byte size.
func MatMulBytes(bytes int64, seed uint64) Instance {
	n := int(math.Sqrt(float64(bytes) / 12))
	return MatMul(n, seed)
}

const (
	mmTile      = 256
	mmTileBytes = int64(mmTile) * mmTile * 4 // 256 KB = 4 chunks
	// mmKernelCompute is the compute cost of one mmTile³ kernel call
	// (2·T³ flops at several flops per simulated nanosecond).
	mmKernelCompute = 16000
)

type mmState struct {
	A, B, C sim.Segment
	nTiles  int
}

func (m *mmState) tile(s sim.Segment, i, j int) sim.Segment {
	return s.Slice((int64(i)*int64(m.nTiles)+int64(j))*mmTileBytes, mmTileBytes)
}

// mul returns the body multiplying the n×n-tile blocks A[ai:ai+n,aj:aj+n] ·
// B[bi:bi+n,bj:bj+n] into C[ci:ci+n,cj:cj+n].
func (m *mmState) mul(n, ci, cj, ai, aj, bi, bj int) sim.Body {
	if n == 1 {
		return func(b *sim.B) {
			b.Compute(mmKernelCompute,
				sim.AccessSpec{Seg: m.tile(m.A, ai, aj), Passes: 1},
				sim.AccessSpec{Seg: m.tile(m.B, bi, bj), Passes: 1},
				sim.AccessSpec{Seg: m.tile(m.C, ci, cj), Passes: 2},
			)
		}
	}
	h := n / 2
	size := func(nn int) int64 { return 3 * int64(nn) * int64(mmTile) * int64(nn) * int64(mmTile) * 4 }
	work := func(nn int) float64 { f := float64(nn); return f * f * f }
	return func(b *sim.B) {
		// First half-products: Cqq += A·B with the k-lower halves.
		b.Fork(sim.GroupSpec{
			Work: 4 * work(h),
			Size: size(n),
			Children: []sim.ChildSpec{
				{Work: work(h), Size: size(h), Body: m.mul(h, ci, cj, ai, aj, bi, bj)},
				{Work: work(h), Size: size(h), Body: m.mul(h, ci, cj+h, ai, aj, bi, bj+h)},
				{Work: work(h), Size: size(h), Body: m.mul(h, ci+h, cj, ai+h, aj, bi, bj)},
				{Work: work(h), Size: size(h), Body: m.mul(h, ci+h, cj+h, ai+h, aj, bi, bj+h)},
			},
		})
		// Second half-products with the k-upper halves.
		b.Fork(sim.GroupSpec{
			Work: 4 * work(h),
			Size: size(n),
			Children: []sim.ChildSpec{
				{Work: work(h), Size: size(h), Body: m.mul(h, ci, cj, ai, aj+h, bi+h, bj)},
				{Work: work(h), Size: size(h), Body: m.mul(h, ci, cj+h, ai, aj+h, bi+h, bj+h)},
				{Work: work(h), Size: size(h), Body: m.mul(h, ci+h, cj, ai+h, aj+h, bi+h, bj)},
				{Work: work(h), Size: size(h), Body: m.mul(h, ci+h, cj+h, ai+h, aj+h, bi+h, bj+h)},
			},
		})
	}
}
