package workload

import "github.com/parlab/adws/internal/sim"

// SPH is the paper's smoothed-particle-hydrodynamics benchmark: the force
// calculation of a 3D dam-breaking simulation over an octree (ported from
// FDPS in the paper). The octree partitions space non-uniformly — a dam
// break concentrates particles — so the computation graph is irregular.
// Work hints are the octree nodes' particle counts, which the paper calls
// "roughly estimated": the actual interaction cost per leaf varies with
// local density, so the hints are systematically imprecise and dynamic
// load balancing must absorb the error.
//
// Each leaf task computes short-range interactions: it sweeps its own
// particles twice and reads one neighbouring leaf's particles (the
// effective-radius overlap), giving SPH modest hierarchical locality.
func SPH(bytes int64, seed uint64) Instance {
	return SPHIters(bytes, sphDefaultIters, seed)
}

// SPHIters builds an SPH instance with an explicit iteration count (the
// paper reports the time of five force-calculation iterations).
func SPHIters(bytes int64, iters int, seed uint64) Instance {
	return Instance{
		Name:  "sph",
		Bytes: bytes,
		Prepare: func(mem *sim.Memory) (sim.Body, sim.Body) {
			particles := mem.Alloc("sph.particles", bytes)
			shape := buildSPHShape(particles, seed, 1, 0)
			root := func(b *sim.B) {
				for it := 0; it < iters; it++ {
					sphForce(shape)(b)
				}
			}
			init := parFor(particles, sphCutoff, 1, 500)
			return root, init
		},
	}
}

const (
	sphDefaultIters = 5
	// sphCutoff is the leaf granularity in bytes: a leaf's particle data.
	// (The paper's 32-particles-per-leaf octree is far below chunk
	// granularity; a leaf task here stands for a subtree of such leaves.)
	sphCutoff = 64 << 10
	// sphComputePerChunk is the base interaction compute per chunk-pass.
	sphComputePerChunk = 4000
)

// sphShape is one octree node: its particle segment, its children (up to
// 8), the count-based work HINT, and the density-dependent ACTUAL work
// factor that makes the hints imprecise.
type sphShape struct {
	seg      sim.Segment
	hint     float64 // particle count (the programmer-visible hint)
	actual   float64 // true relative cost (hint × local density factor)
	density  float64
	children []*sphShape
	neighbor *sphShape // one adjacent leaf whose particles are also read
}

func buildSPHShape(seg sim.Segment, seed, path uint64, depth int) *sphShape {
	n := &sphShape{seg: seg, hint: float64(seg.Bytes())}
	r := nodeRNG(seed, path)
	n.density = 0.5 + 1.5*r.Float64() // dam-break density variation
	if seg.Bytes() <= sphCutoff || seg.NumChunks() <= 1 || depth > 40 {
		n.actual = n.hint * n.density
		return n
	}
	// Octree split: up to 8 children with non-uniform occupancy. Some
	// octants are empty in a dam break; draw 8 weights, drop near-empty
	// ones, normalize the rest over the chunk-aligned segment.
	weights := make([]float64, 8)
	total := 0.0
	for i := range weights {
		u := r.Float64()
		w := u * u // skewed occupancy
		if w < 0.02 {
			w = 0
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		weights[0], total = 1, 1
	}
	chunks := int64(seg.NumChunks())
	// Compute chunk shares for the occupied octants, then hand any
	// rounding remainder to the heaviest one so children exactly cover the
	// parent's particles.
	type octant struct {
		idx   int
		share int64
	}
	var occ []octant
	assigned := int64(0)
	heaviest := -1
	for i, w := range weights {
		if w == 0 {
			continue
		}
		share := int64(float64(chunks) * w / total)
		if share < 1 {
			share = 1
		}
		occ = append(occ, octant{idx: i, share: share})
		assigned += share
		if heaviest < 0 || share > occ[heaviest].share {
			heaviest = len(occ) - 1
		}
	}
	// Shrink if over-assigned (minimum-one-chunk inflation), grow the
	// heaviest if under-assigned.
	for k := len(occ) - 1; k >= 0 && assigned > chunks; k-- {
		cut := assigned - chunks
		avail := occ[k].share - 1
		if avail > cut {
			avail = cut
		}
		occ[k].share -= avail
		assigned -= avail
	}
	if assigned > chunks {
		occ = occ[:1]
		occ[0].share = chunks
		assigned = chunks
		heaviest = 0
	}
	occ[heaviest].share += chunks - assigned
	if len(occ) == 1 {
		// A single occupied octant would recurse on the identical segment;
		// treat this node as a leaf instead.
		n.actual = n.hint * n.density
		return n
	}

	used := int64(0)
	var prev *sphShape
	for _, o := range occ {
		if o.share <= 0 {
			continue
		}
		child := buildSPHShape(seg.Slice(used*sim.ChunkSize, o.share*sim.ChunkSize),
			seed, path*8+uint64(o.idx)+1, depth+1)
		child.neighbor = prev
		prev = child
		n.children = append(n.children, child)
		used += o.share
	}
	for _, c := range n.children {
		n.actual += c.actual
	}
	if len(n.children) == 0 {
		n.actual = n.hint * n.density
	}
	return n
}

// sphForce builds the force-calculation traversal for one iteration.
func sphForce(sh *sphShape) sim.Body {
	return func(b *sim.B) {
		if len(sh.children) == 0 {
			specs := []sim.AccessSpec{{Seg: sh.seg, Passes: 2}}
			if sh.neighbor != nil {
				// Short-range interactions with the adjacent leaf.
				specs = append(specs, sim.AccessSpec{Seg: sh.neighbor.seg, Passes: 1})
			}
			b.Compute(sphComputePerChunk*sh.density*float64(sh.seg.NumChunks()), specs...)
			return
		}
		var kids []sim.ChildSpec
		var hintSum float64
		for _, c := range sh.children {
			cc := c
			kids = append(kids, sim.ChildSpec{
				Work: cc.hint, // rough, count-based hint (not cc.actual)
				Size: cc.seg.Bytes(),
				Body: sphForce(cc),
			})
			hintSum += cc.hint
		}
		b.Fork(sim.GroupSpec{Work: hintSum, Size: sh.seg.Bytes(), Children: kids})
	}
}
