package workload

import "github.com/parlab/adws/internal/sim"

// RRM is the Recursive Repeated Map benchmark (§6.2, after the artificial
// benchmark of the space-bounded scheduler studies): an array of doubles is
// recursively divided in the ratio 1:alpha; before dividing, a map
// function is applied to the whole current array three times, each map
// being itself a recursively parallelized flat loop with a 128 KB leaf
// cutoff. Recursion stops at the chunk granularity (the paper's 32 KB
// cutoff is below our 64 KB chunk). alpha=1 yields a perfectly balanced
// computation graph; larger alpha skews it (the Fig. 19 imbalance knob).
func RRM(bytes int64, alpha float64, seed uint64) Instance {
	if alpha <= 0 {
		alpha = 1
	}
	return Instance{
		Name:  "rrm",
		Bytes: bytes,
		Prepare: func(mem *sim.Memory) (sim.Body, sim.Body) {
			seg := mem.Alloc("rrm.data", bytes)
			shape := buildRRMShape(seg.Bytes(), alpha)
			root := rrmBody(seg, shape)
			init := parFor(seg, 128<<10, 1, rrmMapCompute)
			return root, init
		},
	}
}

// rrmMapCompute is the per-chunk-pass compute cost of the map function
// (multiply-and-add per element: strongly memory-bound).
const rrmMapCompute = 800

const rrmMapRepeats = 3

// rrmShape is the recursion-tree shape with exact subtree work, computed
// eagerly so that work hints are available at fork time.
type rrmShape struct {
	bytes int64
	work  float64 // total descendant work, in bytes swept
	l, r  *rrmShape
}

func buildRRMShape(bytes int64, alpha float64) *rrmShape {
	n := &rrmShape{bytes: bytes}
	n.work = float64(rrmMapRepeats) * float64(bytes)
	if bytes > sim.ChunkSize {
		lb, rb := splitBytes(bytes, 1/(1+alpha))
		if lb > 0 && rb > 0 {
			n.l = buildRRMShape(lb, alpha)
			n.r = buildRRMShape(rb, alpha)
			n.work += n.l.work + n.r.work
		}
	}
	return n
}

func rrmBody(seg sim.Segment, sh *rrmShape) sim.Body {
	return func(b *sim.B) {
		// Three repeated maps over the current array: consecutive flat
		// parallel loops with iterative data locality (§2.2).
		for i := 0; i < rrmMapRepeats; i++ {
			mapBody := parFor(seg, 128<<10, 1, rrmMapCompute)
			mapBody(b)
		}
		if sh.l == nil {
			return
		}
		lseg := seg.Slice(0, sh.l.bytes)
		rseg := seg.Slice(sh.l.bytes, sh.r.bytes)
		b.Fork(sim.GroupSpec{
			Work: sh.l.work + sh.r.work,
			Size: seg.Bytes(),
			Children: []sim.ChildSpec{
				{Work: sh.l.work, Size: sh.l.bytes, Body: rrmBody(lseg, sh.l)},
				{Work: sh.r.work, Size: sh.r.bytes, Body: rrmBody(rseg, sh.r)},
			},
		})
	}
}
