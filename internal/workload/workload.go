// Package workload implements the seven benchmarks of the ADWS paper
// (§6.2) as deterministic task-graph builders for the simulator: RRM,
// Quicksort, KDTree, Decision Tree, MatMul, Heat2D, and SPH.
//
// Each builder produces the nested fork-join structure, the work and
// working-set-size hints, and the memory access pattern of the benchmark;
// the actual data values are replaced by deterministic pseudo-data (split
// fractions, pivot positions, tree shapes) drawn from a seeded PRNG, which
// preserves the scheduling-relevant structure — footprint sizes, balance,
// and reuse — without computing on real arrays.
package workload

import (
	"fmt"

	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/sim"
)

// Instance is one benchmark instance ready to run on the simulator.
type Instance struct {
	// Name identifies the benchmark (e.g. "rrm", "quicksort").
	Name string
	// Bytes is the nominal working set size (the x-axis of Fig. 16).
	Bytes int64
	// FLOPs is the number of floating-point operations of one repetition,
	// for benchmarks reported in FLOPS (MatMul); zero elsewhere.
	FLOPs float64
	// Prepare allocates the instance's segments in mem and returns the
	// root body of one repetition plus an optional parallel initialization
	// body that touches memory with a pattern resembling the computation
	// (used for NUMA first-touch placement, §6.5). init may be nil.
	Prepare func(mem *sim.Memory) (root, init sim.Body)
}

func (i Instance) String() string { return fmt.Sprintf("%s/%dMB", i.Name, i.Bytes>>20) }

// Builder is a named constructor for a benchmark at a given working-set
// size.
type Builder func(bytes int64, seed uint64) Instance

// Registry maps benchmark names to builders, in the paper's Fig. 16 order.
var Registry = []struct {
	Name  string
	Build Builder
}{
	{"rrm", func(b int64, s uint64) Instance { return RRM(b, 1.0, s) }},
	{"quicksort", Quicksort},
	{"kdtree", KDTree},
	{"dtree", DecisionTree},
	{"matmul", MatMulBytes},
	{"heat2d", Heat2D},
	{"sph", SPH},
}

// ByName returns the builder for a benchmark name.
func ByName(name string) (Builder, bool) {
	for _, r := range Registry {
		if r.Name == name {
			return r.Build, true
		}
	}
	return nil, false
}

// nodeRNG derives a deterministic per-node PRNG from an instance seed and
// a node path identifier, so the pseudo-data of a task tree is stable
// across runs and schedulers.
func nodeRNG(seed, path uint64) *sched.RNG {
	return sched.NewRNG(seed^0xA5A5A5A5A5A5A5A5, int(path%0x7FFFFFFF))
}

// leftPath and rightPath derive child path identifiers.
func leftPath(p uint64) uint64  { return p*2 + 1 }
func rightPath(p uint64) uint64 { return p*2 + 2 }

// parFor builds a flat parallel loop over seg as a recursive binary split
// (the way the paper's benchmarks express parallel loops): leaves of at
// most cutoff bytes run `passes` sweeps over their slice with
// computePerChunk extra work per chunk-pass. Work hints are exact
// (proportional to bytes); size hints are the slice sizes.
func parFor(seg sim.Segment, cutoff int64, passes int, computePerChunk float64) sim.Body {
	var build func(s sim.Segment) sim.Body
	build = func(s sim.Segment) sim.Body {
		if s.Bytes() <= cutoff || s.NumChunks() <= 1 {
			return func(b *sim.B) {
				b.Compute(computePerChunk*float64(s.NumChunks()*passes), sim.AccessSpec{Seg: s, Passes: passes})
			}
		}
		return func(b *sim.B) {
			half := (s.Bytes() / 2 / sim.ChunkSize) * sim.ChunkSize
			if half == 0 {
				half = sim.ChunkSize
			}
			l := s.Slice(0, half)
			r := s.Slice(half, s.Bytes()-half)
			b.Fork(sim.GroupSpec{
				Work: float64(s.Bytes()),
				Size: s.Bytes(),
				Children: []sim.ChildSpec{
					{Work: float64(l.Bytes()), Size: l.Bytes(), Body: build(l)},
					{Work: float64(r.Bytes()), Size: r.Bytes(), Body: build(r)},
				},
			})
		}
	}
	return build(seg)
}

// chunksOf returns the number of chunks covering `bytes`.
func chunksOf(bytes int64) float64 {
	return float64((bytes + sim.ChunkSize - 1) / sim.ChunkSize)
}

// splitBytes splits `bytes` into two chunk-aligned parts with fraction f
// for the first part, each at least one chunk when bytes allows.
func splitBytes(bytes int64, f float64) (int64, int64) {
	a := int64(float64(bytes)*f) / sim.ChunkSize * sim.ChunkSize
	if a < sim.ChunkSize {
		a = sim.ChunkSize
	}
	if a > bytes-sim.ChunkSize {
		a = bytes - sim.ChunkSize
	}
	if a < 0 {
		a = 0
	}
	return a, bytes - a
}
