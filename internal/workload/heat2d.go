package workload

import (
	"math"

	"github.com/parlab/adws/internal/sim"
)

// Heat2D is the paper's five-point stencil benchmark with double
// buffering: a square grid of doubles is recursively divided into four
// equal subgrids down to tile granularity, and the whole sweep repeats for
// a number of iterations. It has strong iterative data locality (the same
// tile is touched every iteration) and little hierarchical data locality
// (tiles share only halos), which is why ADWS shines on it below the
// aggregate cache size (Fig. 16) while multi-level scheduling cannot
// reduce misses above it.
//
// Grids are stored tile-major; tiles are 128×128 doubles (128 KB = 2
// chunks; the paper's 64×64 cutoff is below chunk granularity).
func Heat2D(bytes int64, seed uint64) Instance {
	return Heat2DIters(bytes, heat2DDefaultIters, seed)
}

// Heat2DIters builds a Heat2D instance with an explicit iteration count
// (the paper measures 50 iterations; benchmarks here default to fewer to
// keep simulated event counts manageable — the shape is unchanged).
func Heat2DIters(bytes int64, iters int, seed uint64) Instance {
	// Two buffers of N×N doubles: N = sqrt(bytes/16), rounded to tiles.
	n := int(math.Sqrt(float64(bytes) / 16))
	nt := n / heatTile
	if nt < 1 {
		nt = 1
	}
	n = nt * heatTile
	actual := int64(2) * int64(n) * int64(n) * 8
	return Instance{
		Name:  "heat2d",
		Bytes: actual,
		Prepare: func(mem *sim.Memory) (sim.Body, sim.Body) {
			gb := int64(n) * int64(n) * 8
			src := mem.Alloc("heat.src", gb)
			dst := mem.Alloc("heat.dst", gb)
			h := &heatState{src: src, dst: dst, nTiles: nt}
			root := func(b *sim.B) {
				for it := 0; it < iters; it++ {
					s, d := h.src, h.dst
					if it%2 == 1 {
						s, d = d, s
					}
					h.sweep(s, d, nt, nt, 0, 0)(b)
				}
			}
			init := func(b *sim.B) {
				// First-touch with the sweep's own decomposition so pages
				// land on the NUMA node that will compute them.
				h.sweep(src, dst, nt, nt, 0, 0)(b)
			}
			return root, init
		},
	}
}

const (
	heatTile           = 128
	heatTileBytes      = int64(heatTile) * heatTile * 8 // 128 KB = 2 chunks
	heatDefaultSeed    = 0
	heat2DDefaultIters = 10
	// heatTileCompute is the stencil compute per tile sweep.
	heatTileCompute = 3000
)

type heatState struct {
	src, dst sim.Segment
	nTiles   int
}

func (h *heatState) tile(s sim.Segment, i, j int) sim.Segment {
	return s.Slice((int64(i)*int64(h.nTiles)+int64(j))*heatTileBytes, heatTileBytes)
}

// sweep builds one stencil iteration over the ni×nj-tile subgrid at
// (i0,j0): recursive four-way division into (near-)equally sized subgrids.
func (h *heatState) sweep(src, dst sim.Segment, ni, nj, i0, j0 int) sim.Body {
	if ni == 1 && nj == 1 {
		return func(b *sim.B) {
			b.Compute(heatTileCompute,
				sim.AccessSpec{Seg: h.tile(src, i0, j0), Passes: 1},
				sim.AccessSpec{Seg: h.tile(dst, i0, j0), Passes: 1},
			)
		}
	}
	ai, bi := ni/2, ni-ni/2
	aj, bj := nj/2, nj-nj/2
	size := func(mi, mj int) int64 { return 2 * int64(mi) * int64(mj) * heatTileBytes }
	type quad struct{ mi, mj, qi, qj int }
	var quads []quad
	for _, q := range []quad{
		{ai, aj, i0, j0}, {ai, bj, i0, j0 + aj},
		{bi, aj, i0 + ai, j0}, {bi, bj, i0 + ai, j0 + aj},
	} {
		if q.mi > 0 && q.mj > 0 {
			quads = append(quads, q)
		}
	}
	return func(b *sim.B) {
		var kids []sim.ChildSpec
		var total float64
		for _, q := range quads {
			w := float64(q.mi) * float64(q.mj)
			total += w
			kids = append(kids, sim.ChildSpec{
				Work: w,
				Size: size(q.mi, q.mj),
				Body: h.sweep(src, dst, q.mi, q.mj, q.qi, q.qj),
			})
		}
		b.Fork(sim.GroupSpec{Work: total, Size: size(ni, nj), Children: kids})
	}
}
