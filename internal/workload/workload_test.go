package workload

import (
	"testing"

	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
)

// runInstance executes one repetition of an instance under the given mode.
func runInstance(t *testing.T, inst Instance, mode sim.Mode) sim.RunResult {
	t.Helper()
	eng := sim.NewEngine(sim.Config{Machine: topology.TwoLevel16(), Mode: mode, Seed: 42})
	root, _ := inst.Prepare(eng.Memory())
	return eng.Run(root)
}

func TestAllBenchmarksCompleteUnderAllSchedulers(t *testing.T) {
	const mb = 1 << 20
	for _, r := range Registry {
		inst := r.Build(8*mb, 7)
		for _, mode := range sim.Modes {
			res := runInstance(t, inst, mode)
			if res.Time <= 0 {
				t.Errorf("%s under %v: time %v", r.Name, mode, res.Time)
			}
			if res.Tasks < 2 {
				t.Errorf("%s under %v: only %d tasks (no parallelism expressed)", r.Name, mode, res.Tasks)
			}
		}
	}
}

func TestBenchmarksAreDeterministic(t *testing.T) {
	const mb = 1 << 20
	for _, r := range Registry {
		a := runInstance(t, r.Build(4*mb, 3), sim.SLADWS)
		b := runInstance(t, r.Build(4*mb, 3), sim.SLADWS)
		if a.Time != b.Time || a.Tasks != b.Tasks || a.PrivateMisses != b.PrivateMisses {
			t.Errorf("%s: two identical builds diverged: %v vs %v", r.Name, a, b)
		}
	}
}

func TestBenchmarksSpeedUp(t *testing.T) {
	// Every benchmark must show real parallel speedup under SL-ADWS on 16
	// workers at a size that fits aggregate caches.
	const mb = 1 << 20
	for _, r := range Registry {
		inst := r.Build(16*mb, 5)
		serial := sim.RunSerial(topology.TwoLevel16(), sim.CostModel{}, sim.Node0, 1,
			func(mem *sim.Memory) sim.Body { root, _ := inst.Prepare(mem); return root })
		par := runInstance(t, inst, sim.SLADWS)
		sp := par.Speedup(serial.Time)
		if sp < 2.5 {
			t.Errorf("%s: speedup %.2f on 16 workers (serial %.0f, parallel %.0f)",
				r.Name, sp, serial.Time, par.Time)
		}
	}
}

func TestInstanceBytesAreHonest(t *testing.T) {
	// The allocated working set should be within 2x of the advertised
	// nominal bytes (tile/chunk rounding allowed).
	const mb = 1 << 20
	for _, r := range Registry {
		inst := r.Build(32*mb, 1)
		mem := sim.NewMemory(1, sim.Node0)
		inst.Prepare(mem)
		got := int64(mem.NumChunks()) * sim.ChunkSize
		if got < inst.Bytes/2 || got > inst.Bytes*2 {
			t.Errorf("%s: advertised %d bytes but allocated %d", r.Name, inst.Bytes, got)
		}
	}
}

func TestInitBodiesExist(t *testing.T) {
	const mb = 1 << 20
	for _, r := range Registry {
		inst := r.Build(4*mb, 1)
		mem := sim.NewMemory(2, sim.FirstTouch)
		_, init := inst.Prepare(mem)
		if init == nil {
			t.Errorf("%s: no init body for first-touch placement", r.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, r := range Registry {
		if _, ok := ByName(r.Name); !ok {
			t.Errorf("ByName(%q) failed", r.Name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName(nonesuch) succeeded")
	}
}

func TestRRMAlphaSkew(t *testing.T) {
	// With larger alpha the recursion tree is more unbalanced: the shape's
	// left subtree gets a smaller share.
	sh1 := buildRRMShape(64<<20, 1)
	sh4 := buildRRMShape(64<<20, 4)
	if sh1.l.bytes != sh1.r.bytes {
		t.Errorf("alpha=1 split %d/%d not balanced", sh1.l.bytes, sh1.r.bytes)
	}
	if sh4.l.bytes*3 > sh4.r.bytes {
		t.Errorf("alpha=4 split %d/%d not skewed enough", sh4.l.bytes, sh4.r.bytes)
	}
}

func TestRRMWorkHintsAreExact(t *testing.T) {
	sh := buildRRMShape(16<<20, 2)
	var sum func(n *rrmShape) float64
	sum = func(n *rrmShape) float64 {
		w := float64(rrmMapRepeats) * float64(n.bytes)
		if n.l != nil {
			w += sum(n.l) + sum(n.r)
		}
		return w
	}
	if got := sum(sh); got != sh.work {
		t.Errorf("shape work %v != recomputed %v", sh.work, got)
	}
}

func TestQSShapeBounds(t *testing.T) {
	sh := buildQSShape(32<<20, 64<<10, 9, 0, 5)
	var walk func(n *qsShape) int64
	walk = func(n *qsShape) int64 {
		if n.l == nil {
			return n.bytes
		}
		if n.l.bytes+n.r.bytes != n.bytes {
			t.Fatalf("split loses bytes: %d+%d != %d", n.l.bytes, n.r.bytes, n.bytes)
		}
		return walk(n.l) + walk(n.r)
	}
	if total := walk(sh); total != 32<<20 {
		t.Errorf("leaves sum to %d, want %d", total, 32<<20)
	}
}

func TestSPHShapeIsIrregular(t *testing.T) {
	mem := sim.NewMemory(1, sim.Node0)
	seg := mem.Alloc("p", 16<<20)
	sh := buildSPHShape(seg, 3, 1, 0)
	if len(sh.children) < 2 {
		t.Fatalf("octree root has %d children", len(sh.children))
	}
	// Hints differ from actual work (the imprecision the paper discusses).
	var hintSum, actualSum float64
	var walk func(n *sphShape)
	walk = func(n *sphShape) {
		if len(n.children) == 0 {
			hintSum += n.hint
			actualSum += n.actual
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(sh)
	if hintSum == actualSum {
		t.Error("SPH hints are exact; they should be rough")
	}
	// Conservation: children cover the parent's segment.
	var bytes int64
	for _, c := range sh.children {
		bytes += c.seg.Bytes()
	}
	if bytes != seg.Bytes() {
		t.Errorf("children cover %d bytes of %d", bytes, seg.Bytes())
	}
}

func TestMatMulGeometry(t *testing.T) {
	inst := MatMul(1024, 1)
	if inst.FLOPs != 2*1024.*1024*1024*1024*1024*1024/1024/1024/1024*1024*1024*1024 && inst.FLOPs != 2*float64(1024)*1024*1024 {
		t.Errorf("FLOPs = %v", inst.FLOPs)
	}
	if inst.Bytes != 3*1024*1024*4 {
		t.Errorf("Bytes = %d, want %d", inst.Bytes, 3*1024*1024*4)
	}
	// Non-power-of-two sizes round down to a power-of-two tile count.
	inst2 := MatMul(1500, 1)
	if inst2.Bytes != 3*1024*1024*4 {
		t.Errorf("rounded Bytes = %d, want %d", inst2.Bytes, 3*1024*1024*4)
	}
}

func TestHeat2DIterationCount(t *testing.T) {
	// More iterations, proportionally more busy time.
	m := topology.TwoLevel16()
	run := func(iters int) sim.RunResult {
		eng := sim.NewEngine(sim.Config{Machine: m, Mode: sim.SLADWS, Seed: 1})
		inst := Heat2DIters(8<<20, iters, 0)
		root, _ := inst.Prepare(eng.Memory())
		return eng.Run(root)
	}
	// The first iteration is cold; after that the per-iteration cost is
	// steady, so the 2→4 and 4→6 increments must match.
	r2 := run(2)
	r4 := run(4)
	r6 := run(6)
	d1 := r4.BusyTime - r2.BusyTime
	d2 := r6.BusyTime - r4.BusyTime
	if d1 <= 0 || d2 <= 0 || d1/d2 < 0.9 || d1/d2 > 1.1 {
		t.Errorf("iteration increments differ: 2->4 adds %v, 4->6 adds %v", d1, d2)
	}
}
