package workload

import "github.com/parlab/adws/internal/sim"

// parFor2 builds a flat parallel loop sweeping two same-sized segments in
// lockstep (reading src, writing dst), as the paper's double-buffered
// partition operations do.
func parFor2(src, dst sim.Segment, cutoff int64, computePerChunk float64) sim.Body {
	var build func(a, b sim.Segment) sim.Body
	build = func(a, b sim.Segment) sim.Body {
		if a.Bytes() <= cutoff || a.NumChunks() <= 1 {
			return func(bb *sim.B) {
				bb.Compute(computePerChunk*float64(a.NumChunks()*2),
					sim.AccessSpec{Seg: a, Passes: 1}, sim.AccessSpec{Seg: b, Passes: 1})
			}
		}
		return func(bb *sim.B) {
			half := (a.Bytes() / 2 / sim.ChunkSize) * sim.ChunkSize
			al, ar := a.Slice(0, half), a.Slice(half, a.Bytes()-half)
			bl, br := b.Slice(0, half), b.Slice(half, b.Bytes()-half)
			bb.Fork(sim.GroupSpec{
				Work: float64(a.Bytes()),
				Size: a.Bytes() + b.Bytes(),
				Children: []sim.ChildSpec{
					{Work: float64(al.Bytes()), Size: al.Bytes() + bl.Bytes(), Body: build(al, bl)},
					{Work: float64(ar.Bytes()), Size: ar.Bytes() + br.Bytes(), Body: build(ar, br)},
				},
			})
		}
	}
	return build(src, dst)
}

// qsShape is the deterministic recursion shape of a divide-and-conquer
// sort: per-node split fractions drawn from a median-of-three pseudo-pivot
// distribution, with exact subtree work for the hints.
type qsShape struct {
	bytes int64
	work  float64
	l, r  *qsShape
}

// medianOfThree returns the median of three uniform draws: the split
// fraction distribution of a median-of-3 pivot on random data.
func medianOfThree(r interface{ Float64() float64 }) float64 {
	a, b, c := r.Float64(), r.Float64(), r.Float64()
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	if b < 0.05 {
		b = 0.05
	}
	if b > 0.95 {
		b = 0.95
	}
	return b
}

func buildQSShape(bytes, cutoff int64, seed, path uint64, leafWorkFactor float64) *qsShape {
	n := &qsShape{bytes: bytes}
	if bytes <= cutoff || bytes < 2*sim.ChunkSize {
		n.work = leafWorkFactor * float64(bytes)
		return n
	}
	f := medianOfThree(nodeRNG(seed, path))
	lb, rb := splitBytes(bytes, f)
	n.l = buildQSShape(lb, cutoff, seed, leftPath(path), leafWorkFactor)
	n.r = buildQSShape(rb, cutoff, seed, rightPath(path), leafWorkFactor)
	// Partition sweeps the whole range once (read + write).
	n.work = 2*float64(bytes) + n.l.work + n.r.work
	return n
}

// Quicksort is the paper's divide-and-conquer Quicksort benchmark: the
// partition is parallelized through double buffering (total working set is
// twice the input array), the pivot is the median of the first three
// elements, and the cutoff for both recursion and partitioning is 64 KB.
func Quicksort(bytes int64, seed uint64) Instance {
	// bytes is the total working set: input + buffer.
	arr := bytes / 2
	return Instance{
		Name:  "quicksort",
		Bytes: bytes,
		Prepare: func(mem *sim.Memory) (sim.Body, sim.Body) {
			a := mem.Alloc("qs.data", arr)
			buf := mem.Alloc("qs.buf", arr)
			shape := buildQSShape(a.Bytes(), 64<<10, seed, 0, qsLeafFactor)
			root := qsBody(a, buf, shape)
			init := parFor(a, 64<<10, 1, qsPartitionCompute)
			return root, init
		},
	}
}

const (
	// qsPartitionCompute is the per-chunk-pass compute of partitioning
	// (compare + move per element).
	qsPartitionCompute = 1500
	// qsLeafFactor scales the serial leaf sort work (n log n on a 64 KB
	// leaf, expressed per byte).
	qsLeafFactor = 5
)

func qsBody(a, buf sim.Segment, sh *qsShape) sim.Body {
	return func(b *sim.B) {
		if sh.l == nil {
			// Serial leaf sort: a couple of passes with n log n compute.
			b.Compute(qsLeafFactor*float64(a.NumChunks())*1000,
				sim.AccessSpec{Seg: a, Passes: 2})
			return
		}
		// Parallel partition: read a, write buf, then logically swap roles
		// for the recursive calls (double buffering).
		part := parFor2(a, buf, 64<<10, qsPartitionCompute)
		part(b)
		la, ra := a.Slice(0, sh.l.bytes), a.Slice(sh.l.bytes, sh.r.bytes)
		lb, rb := buf.Slice(0, sh.l.bytes), buf.Slice(sh.l.bytes, sh.r.bytes)
		b.Fork(sim.GroupSpec{
			Work: sh.l.work + sh.r.work,
			Size: 2 * a.Bytes(),
			Children: []sim.ChildSpec{
				{Work: sh.l.work, Size: 2 * sh.l.bytes, Body: qsBody(lb, la, sh.l)},
				{Work: sh.r.work, Size: 2 * sh.r.bytes, Body: qsBody(rb, ra, sh.r)},
			},
		})
	}
}

// KDTree is the paper's kd-tree construction benchmark: Quicksort-like
// partitioning around a median-of-three pivot along round-robin axes, but
// more memory-bound because recursion stops early (4 KB nodes inside
// 64 KB leaf tasks) so there is less computation per byte moved.
func KDTree(bytes int64, seed uint64) Instance {
	arr := bytes / 2
	return Instance{
		Name:  "kdtree",
		Bytes: bytes,
		Prepare: func(mem *sim.Memory) (sim.Body, sim.Body) {
			a := mem.Alloc("kd.points", arr)
			buf := mem.Alloc("kd.buf", arr)
			shape := buildQSShape(a.Bytes(), 64<<10, seed^0x9E37, 0, kdLeafFactor)
			root := kdBody(a, buf, shape)
			init := parFor(a, 64<<10, 1, kdPartitionCompute)
			return root, init
		},
	}
}

const (
	kdPartitionCompute = 700
	kdLeafFactor       = 2
)

func kdBody(a, buf sim.Segment, sh *qsShape) sim.Body {
	return func(b *sim.B) {
		if sh.l == nil {
			// Leaf: finish building sub-4KB tree nodes serially — mostly
			// data movement, little compute.
			b.Compute(kdLeafFactor*float64(a.NumChunks())*500,
				sim.AccessSpec{Seg: a, Passes: 2})
			return
		}
		part := parFor2(a, buf, 64<<10, kdPartitionCompute)
		part(b)
		la, ra := a.Slice(0, sh.l.bytes), a.Slice(sh.l.bytes, sh.r.bytes)
		lb, rb := buf.Slice(0, sh.l.bytes), buf.Slice(sh.l.bytes, sh.r.bytes)
		b.Fork(sim.GroupSpec{
			Work: sh.l.work + sh.r.work,
			Size: 2 * a.Bytes(),
			Children: []sim.ChildSpec{
				{Work: sh.l.work, Size: 2 * sh.l.bytes, Body: kdBody(lb, la, sh.l)},
				{Work: sh.r.work, Size: 2 * sh.r.bytes, Body: kdBody(rb, ra, sh.r)},
			},
		})
	}
}
