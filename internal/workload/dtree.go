package workload

import "github.com/parlab/adws/internal/sim"

// DecisionTree is the paper's motivating benchmark (§2.1): CART decision
// tree construction over a HIGGS-like dataset. Every tree node runs
// consecutive flat parallel loops over its rows to build per-attribute
// histograms (the iterative-data-locality hotspot of Fig. 4), then a
// parallel partition, then recurses on the two row partitions. The
// recursion cutoff is 64 KB, parallel loops and partitioning cut off at
// 256 KB, and the maximum depth is 17.
//
// The 28 attributes are modelled as dtAttrGroups consecutive sweeps, each
// standing for a batch of attributes (the histogram of a batch is built in
// one fused pass) — this keeps the event count tractable while preserving
// the repeated-sweep reuse pattern ADWS exploits.
func DecisionTree(bytes int64, seed uint64) Instance {
	return Instance{
		Name:  "dtree",
		Bytes: bytes,
		Prepare: func(mem *sim.Memory) (sim.Body, sim.Body) {
			rows := mem.Alloc("dt.rows", bytes)
			shape := buildDTShape(rows.Bytes(), seed, 0, 0)
			root := dtBody(rows, shape)
			init := parFor(rows, 256<<10, 1, dtHistCompute)
			return root, init
		},
	}
}

const (
	dtAttrGroups  = 4
	dtMaxDepth    = 17
	dtCutoff      = 64 << 10
	dtLoopCutoff  = 256 << 10
	dtHistCompute = 2000 // per chunk-pass: bin updates per element
	dtPartCompute = 1200
	dtLeafCompute = 1500
)

type dtShape struct {
	bytes int64
	work  float64
	l, r  *dtShape
}

func buildDTShape(bytes int64, seed, path uint64, depth int) *dtShape {
	n := &dtShape{bytes: bytes}
	if bytes <= dtCutoff || bytes < 2*sim.ChunkSize || depth >= dtMaxDepth {
		n.work = float64(bytes)
		return n
	}
	// Split balance depends on the best split found; real trees are
	// moderately unbalanced.
	r := nodeRNG(seed, path)
	f := 0.25 + 0.5*r.Float64()
	lb, rb := splitBytes(bytes, f)
	n.l = buildDTShape(lb, seed, leftPath(path), depth+1)
	n.r = buildDTShape(rb, seed, rightPath(path), depth+1)
	// Histogram sweeps + partition sweep over the whole node's rows.
	n.work = float64(dtAttrGroups+2)*float64(bytes) + n.l.work + n.r.work
	return n
}

func dtBody(rows sim.Segment, sh *dtShape) sim.Body {
	return func(b *sim.B) {
		if sh.l == nil {
			b.Compute(dtLeafCompute*float64(rows.NumChunks()),
				sim.AccessSpec{Seg: rows, Passes: 1})
			return
		}
		// COMPUTEBESTSPLIT: consecutive histogram sweeps over the same
		// rows (iterative data locality).
		for g := 0; g < dtAttrGroups; g++ {
			hist := parFor(rows, dtLoopCutoff, 1, dtHistCompute)
			hist(b)
		}
		// PARTITION: one more parallel sweep (read + write modelled as two
		// passes over the rows).
		part := parFor(rows, dtLoopCutoff, 2, dtPartCompute)
		part(b)
		// Recurse on the two partitions.
		lseg := rows.Slice(0, sh.l.bytes)
		rseg := rows.Slice(sh.l.bytes, sh.r.bytes)
		b.Fork(sim.GroupSpec{
			Work: sh.l.work + sh.r.work,
			Size: rows.Bytes(),
			Children: []sim.ChildSpec{
				{Work: sh.l.work, Size: sh.l.bytes, Body: dtBody(lseg, sh.l)},
				{Work: sh.r.work, Size: sh.r.bytes, Body: dtBody(rseg, sh.r)},
			},
		})
	}
}
