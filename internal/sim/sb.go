package sim

import (
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
)

// Space-bounded scheduler (Simhadri et al., ported conceptually; the paper
// evaluates the "SB-D" distributed-queue variant with σ=0.5, μ=0.2).
//
// Every task carries a working-set size. When a task first executes, it is
// anchored: starting from the cache its parent was anchored under, it
// descends to child caches as long as its size is at most σ times the
// child-cache capacity, reserving capacity at each cache it anchors under
// (unless smaller than μ times the capacity, in which case it is too small
// to matter). A cache accepts anchored tasks only while their total
// reserved size fits its capacity; tasks that do not fit anywhere wait
// until a reservation is released. A task anchored under cache C executes
// only on workers sharing C. Unlike multi-level scheduling, several tasks
// can be anchored to one cache simultaneously — which keeps cores busier
// but reduces per-task cache reuse (§6.3's observed tradeoff).

// sbReservation is one capacity reservation held by a task.
type sbReservation struct {
	level, index int
	bytes        int64
}

// sbCacheState is the per-cache state of the SB scheduler.
type sbCacheState struct {
	committed int64
	// runq holds anchored tasks waiting for a worker under this cache.
	runq sched.Deque[*Task]
	// waitq holds tasks that could not reserve capacity at this cache's
	// children; they are retried when a reservation is released.
	waitq []*Task
}

type sbState struct {
	caches [][]*sbCacheState
}

func (e *Engine) initSB() {
	st := &sbState{caches: make([][]*sbCacheState, e.machine.NumLevels())}
	for level := 0; level < e.machine.NumLevels(); level++ {
		row := e.machine.LevelCaches(level)
		st.caches[level] = make([]*sbCacheState, len(row))
		for i := range row {
			st.caches[level][i] = &sbCacheState{}
		}
	}
	e.sb = st
}

func (e *Engine) sbOf(c *topology.Cache) *sbCacheState {
	return e.sb.caches[c.Level][c.Index]
}

func (e *Engine) seedSBRoot(t *Task) {
	t.sbCache = e.machine.Root()
	t.sbAnchored = true
	e.workers[0].sbQueue.PushPrimary(0, t)
	e.wake(e.workers[0], e.now)
}

// forkSB spawns a task group under the space-bounded scheduler: children
// inherit the parent's anchor cache, sizes default to work-proportional
// shares of the group size, the first child runs inline (work-first) and
// the rest go to the worker's deque.
func (e *Engine) forkSB(w *worker, t *Task, spec *GroupSpec) {
	ag := &activeGroup{spec: spec, parent: t, remaining: len(spec.Children)}
	var oh float64
	var totalWork float64
	for _, cs := range spec.Children {
		totalWork += cs.Work
	}
	tasks := make([]*Task, len(spec.Children))
	for k, cs := range spec.Children {
		child := e.newTask(cs.Body, cs.Work)
		child.parentGroup = ag
		child.sbCache = t.sbCache
		child.sbSize = cs.Size
		if child.sbSize == 0 && spec.Size > 0 {
			if totalWork > 0 {
				child.sbSize = int64(float64(spec.Size) * cs.Work / totalWork)
			} else {
				child.sbSize = spec.Size / int64(len(spec.Children))
			}
		}
		tasks[k] = child
		oh += e.costs.SpawnOverhead
	}
	for k := len(tasks) - 1; k >= 1; k-- {
		w.sbQueue.PushPrimary(0, tasks[k])
	}
	t.state = taskWaiting
	t.waitingOn = ag
	w.overheadTime += oh

	// Work-first: try to run the first child now; it may anchor elsewhere
	// or have to wait for capacity.
	inline := tasks[0]
	if e.sbPlace(w, inline) {
		inline.state = taskRunning
		inline.execWorker = w.id
		w.current = inline
	} else {
		w.current = nil
	}
	e.sbWakeAll()
	e.schedule(w, e.now+oh)
}

// sbPlace runs the anchoring decision for task t on behalf of worker w.
// It returns true when w itself should execute t now. Otherwise t has been
// parked on a run queue of a cache not containing w, or on a wait queue
// until capacity frees, and w should look for other work.
func (e *Engine) sbPlace(w *worker, t *Task) bool {
	if !t.sbAnchored {
		if !e.sbAnchor(w, t) {
			return false // parked on a wait queue
		}
	}
	if t.sbCache.ContainsWorker(w.id) {
		return true
	}
	e.sbOf(t.sbCache).runq.PushTop(t)
	e.sbWakeUnder(t.sbCache)
	return false
}

// sbAnchor descends t from its inherited anchor toward the leaves while it
// fits under σ, reserving capacity. Returns false if t was parked waiting
// for capacity.
func (e *Engine) sbAnchor(w *worker, t *Task) bool {
	sigma, mu := e.cfg.SBSigma, e.cfg.SBMu
	for !t.sbCache.IsLeaf() && t.sbSize > 0 {
		children := t.sbCache.Children()
		capC := children[0].Capacity
		if float64(t.sbSize) > sigma*float64(capC) {
			break // does not fit one level deeper: anchored here
		}
		reserve := float64(t.sbSize) > mu*float64(capC)
		// Prefer the child on w's path, then the other children in order.
		var pick *topology.Cache
		start := 0
		if t.sbCache.ContainsWorker(w.id) {
			onPath := e.machine.CacheOfWorkerAtLevel(w.id, t.sbCache.Level+1)
			start = onPath.Index - children[0].Index
		}
		for k := 0; k < len(children); k++ {
			c := children[(start+k)%len(children)]
			if !reserve || e.sbOf(c).committed+t.sbSize <= c.Capacity {
				pick = c
				break
			}
		}
		if pick == nil {
			if children[0].IsLeaf() {
				// Private caches have a single worker each; descending is
				// a locality refinement, not a scheduling constraint.
				// Rather than delaying the task, leave it anchored at the
				// shared cache (the paper's SB-D port also relaxes the
				// strict variant to avoid contention, §6.1).
				break
			}
			// Every shared child is full: wait at the current cache until
			// a reservation under it is released.
			e.sbParks++
			e.sbOf(t.sbCache).waitq = append(e.sbOf(t.sbCache).waitq, t)
			return false
		}
		if reserve {
			e.sbOf(pick).committed += t.sbSize
			t.sbRes = append(t.sbRes, sbReservation{level: pick.Level, index: pick.Index, bytes: t.sbSize})
		}
		t.sbCache = pick
	}
	t.sbAnchored = true
	return true
}

// sbRelease frees t's reservations and retries tasks waiting for capacity.
func (e *Engine) sbRelease(t *Task) {
	for _, r := range t.sbRes {
		e.sb.caches[r.level][r.index].committed -= r.bytes
		// Waiters park at the parent of the cache whose children were full.
		c := e.machine.CacheAt(r.level, r.index)
		parent := c.Parent()
		if parent == nil {
			continue
		}
		ps := e.sbOf(parent)
		if len(ps.waitq) == 0 {
			continue
		}
		var still []*Task
		for _, wt := range ps.waitq {
			if e.sbRetryAnchor(wt) {
				e.sbOf(wt.sbCache).runq.PushTop(wt)
				e.sbWakeUnder(wt.sbCache)
			} else {
				still = append(still, wt)
			}
		}
		ps.waitq = still
	}
	t.sbRes = nil
}

// sbRetryAnchor re-runs the anchoring descent for a waiting task without a
// worker preference. Returns true if the task is now anchored and runnable.
func (e *Engine) sbRetryAnchor(t *Task) bool {
	sigma, mu := e.cfg.SBSigma, e.cfg.SBMu
	progressed := false
	for !t.sbCache.IsLeaf() && t.sbSize > 0 {
		children := t.sbCache.Children()
		capC := children[0].Capacity
		if float64(t.sbSize) > sigma*float64(capC) {
			break
		}
		reserve := float64(t.sbSize) > mu*float64(capC)
		// Pick the child with the most free capacity so retried waiters
		// spread out instead of funnelling through the lowest index.
		var pick *topology.Cache
		var best int64 = -1
		for _, c := range children {
			free := c.Capacity - e.sbOf(c).committed
			if (!reserve || free >= t.sbSize) && free > best {
				pick = c
				best = free
			}
		}
		if pick == nil {
			if children[0].IsLeaf() {
				break
			}
			return false
		}
		if reserve {
			e.sbOf(pick).committed += t.sbSize
			t.sbRes = append(t.sbRes, sbReservation{level: pick.Level, index: pick.Index, bytes: t.sbSize})
		}
		t.sbCache = pick
		progressed = true
	}
	t.sbAnchored = true
	return progressed || true
}

// findWorkSB is the idle path of the SB scheduler: local deque, then the
// run queues of anchored tasks on the worker's cache path (deepest first),
// then random stealing of tasks whose anchor contains this worker.
func (e *Engine) findWorkSB(w *worker) {
	// Local deque (may contain tasks that anchor elsewhere; keep popping).
	for {
		t, ok := w.sbQueue.PopLocal()
		if !ok {
			break
		}
		if e.sbPlace(w, t) {
			e.startTask(w, t, nil, 0, 0)
			return
		}
	}
	// Anchored run queues on the path, deepest first.
	for c := e.machine.LeafOf(w.id); c != nil; c = c.Parent() {
		if t, ok := e.sbOf(c).runq.PopBottom(); ok {
			if e.sbPlace(w, t) {
				e.startTask(w, t, nil, 0, 0)
				return
			}
		}
	}
	// Steal: random victims; only tasks whose anchor cache contains w are
	// eligible. The whole victim deque is scanned for an eligible task
	// (not just the steal end), since anchored and unanchored tasks mix.
	var searched float64
	n := len(e.workers)
	tries := 2 * e.cfg.MaxStealTries
	if tries > n-1 {
		tries = n - 1
	}
	eligible := func(t *Task) bool { return t.sbCache.ContainsWorker(w.id) }
	for a := 0; a < tries; a++ {
		searched += e.costs.StealAttempt
		w.stealAttempts++
		v := w.rng.Intn(n - 1)
		if v >= w.id {
			v++
		}
		vic := e.workers[v]
		if t, ok := vic.sbQueue.StealPrimaryWhere(0, eligible); ok {
			w.steals++
			if e.sbPlace(w, t) {
				e.startTask(w, t, nil, searched, e.costs.StealSuccess)
				return
			}
		}
	}
	e.goIdle(w, searched)
}

// sbWakeUnder wakes the idle workers under cache c.
func (e *Engine) sbWakeUnder(c *topology.Cache) {
	for wid := c.FirstWorker(); wid < c.FirstWorker()+c.WorkerCount(); wid++ {
		e.wake(e.workers[wid], e.now)
	}
}

// sbWakeAll wakes every idle worker (cheap conservative wake after spawns).
func (e *Engine) sbWakeAll() {
	for _, w := range e.workers {
		e.wake(w, e.now)
	}
}
