package sim

import (
	"container/heap"
	"fmt"

	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// Mode selects the scheduler under simulation.
type Mode int

const (
	// SLWS is conventional single-level random work stealing (the paper's
	// SL-WS baseline; Cilk Plus behaves the same, §6.3).
	SLWS Mode = iota
	// SLADWS is single-level almost deterministic work stealing (§3).
	SLADWS
	// MLWS is multi-level scheduling with random work stealing at every
	// cache level (§4).
	MLWS
	// MLADWS is multi-level ADWS with cache-hierarchy flattening (§5).
	MLADWS
	// SB is the space-bounded scheduler baseline (Simhadri et al.),
	// with σ=0.5 and μ=0.2 (§6.1).
	SB
)

func (m Mode) String() string {
	switch m {
	case SLWS:
		return "SL-WS"
	case SLADWS:
		return "SL-ADWS"
	case MLWS:
		return "ML-WS"
	case MLADWS:
		return "ML-ADWS"
	case SB:
		return "SB"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists all simulated schedulers in the paper's presentation order.
var Modes = []Mode{SLWS, SLADWS, MLWS, MLADWS, SB}

// IsADWS reports whether the mode uses ADWS deterministic task mapping.
func (m Mode) IsADWS() bool { return m == SLADWS || m == MLADWS }

// IsMultiLevel reports whether the mode uses multi-level scheduling.
func (m Mode) IsMultiLevel() bool { return m == MLWS || m == MLADWS }

// Config parameterizes one simulation run.
type Config struct {
	Machine *topology.Machine
	Mode    Mode
	Costs   CostModel
	// Seed drives victim selection (and nothing else).
	Seed uint64
	// NUMA selects the page placement policy (default Interleave).
	NUMA NUMAPolicy
	// MaxStealTries bounds the victims tried per wake-up (default 4).
	MaxStealTries int
	// IgnoreWorkHints makes ADWS assume equal work for every child (the
	// no-work-hints configuration of §6.4). Size hints are still honoured.
	IgnoreWorkHints bool
	// SBSigma and SBMu override the space-bounded scheduler parameters
	// (defaults 0.5 and 0.2).
	SBSigma, SBMu float64
	// TraceExec, if set, is called when a task starts executing, with the
	// task's per-run creation ordinal and the executing worker. Used to
	// verify scheduling determinism across repetitions.
	TraceExec func(taskOrdinal int64, worker int)
	// Tracer, if non-nil, receives the same scheduler event schema the
	// real runtime emits (internal/trace), with virtual timestamps scaled
	// by 1000, so simulated and real runs of one program are diffable.
	Tracer *trace.Tracer
}

type event struct {
	t float64
	// gseq is a global sequence number for deterministic tie-breaking.
	gseq int64
	// wseq is the owning worker's eventSeq at scheduling time; a mismatch
	// at pop time means the event was superseded.
	wseq int64
	w    int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].gseq < h[j].gseq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

type worker struct {
	id  int
	rng *sched.RNG

	current *Task
	resume  []*Task // LIFO resume stack (returned continuations)

	// Event bookkeeping: each worker has at most one live event; eventSeq
	// invalidates superseded ones.
	eventSeq  int64
	eventTime float64
	hasEvent  bool

	idle      bool
	idleStart float64
	backoff   float64

	// Profiling accumulators (virtual time).
	busyTime, idleTime, overheadTime float64
	steals, stealAttempts            int64
	migrationsOut                    int64
	tasksRun                         int64

	// Multi-level state.
	leads *mlCache
	// fdEnts are the worker's entities in flattened domains, newest last.
	fdEnts []*entity

	// Space-bounded state.
	sbQueue sched.QueueSet[*Task]
}

// Engine runs one simulation.
type Engine struct {
	cfg     Config
	machine *topology.Machine
	costs   CostModel
	mem     *Memory
	hier    *Hierarchy

	workers []*worker
	events  eventHeap
	evSeq   int64
	now     float64

	// mlCaches[level][index] mirrors the machine's cache tree.
	mlCaches [][]*mlCache
	rootDom  *domain
	domSeq   int
	taskSeq  int64

	sb *sbState
	// sbParks counts capacity waits (diagnostics).
	sbParks int64

	rootTask    *Task
	done        bool
	finalTime   float64
	runStartSeq int64

	// domainDormant counts, per domain id, how many acting workers are
	// idle, to skip wake scans.
	ties, flattens int64
}

// NewEngine prepares a simulation. The same engine can Run multiple root
// bodies in sequence (repetitions share cache state, as the paper's
// repeated measurements within one program execution do).
func NewEngine(cfg Config) *Engine {
	if cfg.Machine == nil {
		panic("sim: Config.Machine is required")
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.MaxStealTries <= 0 {
		cfg.MaxStealTries = 4
	}
	if cfg.SBSigma <= 0 {
		cfg.SBSigma = 0.5
	}
	if cfg.SBMu <= 0 {
		cfg.SBMu = 0.2
	}
	e := &Engine{
		cfg:     cfg,
		machine: cfg.Machine,
		costs:   cfg.Costs,
	}
	e.mem = NewMemory(cfg.Machine.NumNUMANodes(), cfg.NUMA)
	e.hier = NewHierarchy(cfg.Machine, e.mem, &e.costs)
	p := cfg.Machine.NumWorkers()
	if cfg.Tracer != nil && cfg.Tracer.NumWorkers() < p {
		panic(fmt.Sprintf("sim: tracer has %d worker rings, machine needs %d",
			cfg.Tracer.NumWorkers(), p))
	}
	e.workers = make([]*worker, p)
	for i := 0; i < p; i++ {
		e.workers[i] = &worker{id: i, rng: sched.NewRNG(cfg.Seed, i)}
	}
	e.buildMLCaches()
	if cfg.Mode == SB {
		e.initSB()
	}
	e.initDomains()
	return e
}

// Memory returns the engine's virtual heap, for workload allocation.
func (e *Engine) Memory() *Memory { return e.mem }

// Hierarchy exposes the simulated caches (tests and profiling).
func (e *Engine) Hierarchy() *Hierarchy { return e.hier }

func (e *Engine) buildMLCaches() {
	e.mlCaches = make([][]*mlCache, e.machine.NumLevels())
	for level := 1; level < e.machine.NumLevels(); level++ {
		row := e.machine.LevelCaches(level)
		e.mlCaches[level] = make([]*mlCache, len(row))
		for i, c := range row {
			e.mlCaches[level][i] = &mlCache{cache: c, leader: -1}
		}
	}
}

// initDomains sets up the root scheduling domain and, for multi-level
// modes, the initial bottom-up leader election (§4.2).
func (e *Engine) initDomains() {
	adws := e.cfg.Mode.IsADWS()
	switch {
	case e.cfg.Mode == SB:
		// SB uses per-worker deques and per-cache anchors, no domains.
	case e.cfg.Mode.IsMultiLevel():
		// Leaders: every worker leads its leaf, then first-child leaders
		// are promoted level by level.
		maxLevel := e.machine.MaxLevel()
		for w := 0; w < e.machine.NumWorkers(); w++ {
			leaf := e.mlCaches[maxLevel][w]
			leaf.leader = w
			e.workers[w].leads = leaf
		}
		for level := maxLevel - 1; level >= 1; level-- {
			for i, c := range e.machine.LevelCaches(level) {
				// Promote the leader of the first child.
				first := c.Children()[0]
				child := e.mlCaches[first.Level][first.Index]
				w := child.leader
				child.leader = -1
				e.mlCaches[level][i].leader = w
				e.workers[w].leads = e.mlCaches[level][i]
			}
		}
		// Root domain over the level-1 caches.
		d := e.newDomain(adws, 0)
		row := e.mlCaches[1]
		for i, mc := range row {
			ent := &entity{dom: d, idx: i, cache: mc, worker: -1}
			d.entities = append(d.entities, ent)
			mc.entity = ent
		}
		d.level = 1
		e.rootDom = d
	default:
		// Single-level: one worker-level domain over all workers.
		d := e.newDomain(adws, 0)
		for w := 0; w < e.machine.NumWorkers(); w++ {
			d.entities = append(d.entities, &entity{dom: d, idx: w, worker: w})
		}
		d.level = e.machine.MaxLevel()
		e.rootDom = d
	}
}

func (e *Engine) newDomain(adws bool, offset int) *domain {
	e.domSeq++
	return &domain{id: e.domSeq, adws: adws, offset: offset}
}

func (e *Engine) newTask(body Body, work float64) *Task {
	e.taskSeq++
	return &Task{id: e.taskSeq, body: body, workHint: work, execWorker: -1}
}

// schedule (re)schedules worker w's next event at time t, superseding any
// previously scheduled event.
func (e *Engine) schedule(w *worker, t float64) {
	w.eventSeq++
	w.eventTime = t
	w.hasEvent = true
	e.evSeq++
	heap.Push(&e.events, event{t: t, gseq: e.evSeq, wseq: w.eventSeq, w: w.id})
}

// wake brings an idle worker's pending poll forward to time t.
func (e *Engine) wake(w *worker, t float64) {
	if e.done || w.current != nil {
		return
	}
	if w.hasEvent && w.eventTime <= t {
		return
	}
	e.schedule(w, t)
}

// Run executes one root body to completion and returns the result. Cache
// contents persist across calls; counters are reset per call.
func (e *Engine) Run(root Body) RunResult {
	e.resetProfile()
	start := e.now
	e.done = false
	e.rootTask = e.newTask(root, 1)
	// Seed the root task on entity 0 of the root domain (SB: worker 0).
	if e.cfg.Mode == SB {
		e.seedSBRoot(e.rootTask)
	} else {
		ent := e.rootDom.entities[0]
		e.rootTask.dom = e.rootDom
		e.rootTask.rng = e.rootDom.fullRange()
		ent.queues.PushPrimary(0, e.rootTask)
		aw := ent.actingWorker()
		if aw < 0 {
			panic("sim: root entity has no acting worker")
		}
		e.wake(e.workers[aw], e.now)
	}

	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		w := e.workers[ev.w]
		if !w.hasEvent || ev.wseq != w.eventSeq {
			continue // superseded
		}
		w.hasEvent = false
		e.now = ev.t
		if e.done {
			continue
		}
		if w.current != nil {
			e.step(w)
		} else {
			e.findWork(w)
		}
	}
	if !e.done {
		panic("sim: event queue drained before root task completed (deadlock)")
	}
	return e.collect(start)
}

func (e *Engine) resetProfile() {
	e.runStartSeq = e.taskSeq
	for _, w := range e.workers {
		w.busyTime, w.idleTime, w.overheadTime = 0, 0, 0
		w.steals, w.stealAttempts, w.migrationsOut, w.tasksRun = 0, 0, 0, 0
		w.idle = false
		w.backoff = 0
	}
	e.hier.ResetCounters()
	e.ties, e.flattens = 0, 0
}

// vt converts the current virtual time to a trace timestamp (×1000 keeps
// the cost model's sub-unit resolution through the integer conversion).
func (e *Engine) vt() int64 { return int64(e.now * 1000) }

// ordinal returns t's per-run creation ordinal (the trace task identity).
func (e *Engine) ordinal(t *Task) int64 { return t.id - e.runStartSeq }

// step executes one step of w's current task.
func (e *Engine) step(w *worker) {
	t := w.current
	if !t.built {
		if e.cfg.TraceExec != nil {
			e.cfg.TraceExec(t.id-e.runStartSeq, w.id)
		}
		if tr := e.cfg.Tracer; tr != nil {
			tr.Record(w.id, trace.Event{Type: trace.EvTaskBegin, Time: e.vt(),
				Task: e.ordinal(t), Depth: int32(t.depth),
				RangeLo: t.rng.X, RangeHi: t.rng.Y})
		}
		b := &B{}
		if t.body != nil {
			t.body(b)
		}
		t.steps = b.steps
		t.built = true
	}
	if t.next >= len(t.steps) {
		e.complete(w, t)
		return
	}
	st := t.steps[t.next]
	t.next++
	switch {
	case st.compute != nil:
		cost := st.compute.work + e.hier.AccessRange(w.id, st.compute.accesses)
		w.busyTime += cost
		e.schedule(w, e.now+cost)
	case st.group != nil:
		e.fork(w, t, st.group)
	default:
		e.schedule(w, e.now)
	}
}

// complete finishes task t on worker w and propagates group completion.
func (e *Engine) complete(w *worker, t *Task) {
	t.state = taskDone
	w.current = nil
	w.tasksRun++
	if tr := e.cfg.Tracer; tr != nil {
		tr.Record(w.id, trace.Event{Type: trace.EvTaskEnd, Time: e.vt(),
			Task: e.ordinal(t), Depth: int32(t.depth)})
	}
	ag := t.parentGroup
	if ag == nil {
		// Root task of the run.
		e.done = true
		e.finalTime = e.now
		return
	}
	if t.crossWorker && ag.node != nil {
		ag.node.CrossTaskCompleted()
	}
	if len(t.sbRes) > 0 {
		e.sbRelease(t)
	}
	ag.remaining--
	if ag.remaining == 0 {
		e.groupComplete(ag)
	}
	e.schedule(w, e.now)
}

// groupComplete handles the completion of all children of a task group:
// multi-level unties, domain teardown, and resumption of the parent task's
// continuation on its owner.
func (e *Engine) groupComplete(ag *activeGroup) {
	if ag.node != nil {
		ag.node.Finish()
	}
	if ag.tiedTo != nil {
		e.untie(ag)
	}
	if ag.flattened != nil {
		e.unflatten(ag)
	}
	p := ag.parent
	p.state = taskReady
	p.waitingOn = nil
	ow := e.workers[p.execWorker]
	if tr := e.cfg.Tracer; tr != nil {
		tr.Record(ow.id, trace.Event{Type: trace.EvWaitExit, Time: e.vt(),
			Task: e.ordinal(p), Depth: int32(p.depth)})
	}
	ow.resume = append(ow.resume, p)
	e.wake(ow, e.now)
}
