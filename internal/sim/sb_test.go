package sim

import (
	"testing"

	"github.com/parlab/adws/internal/topology"
)

// sbTree builds a tree whose group/child sizes force SB anchoring.
func sbTree(seg Segment, depth int, leafWork float64) Body {
	var build func(s Segment, d int) Body
	build = func(s Segment, d int) Body {
		if d == 0 {
			return func(b *B) { b.Compute(leafWork, Pass(s, 2)) }
		}
		half := s.Bytes() / 2
		l, r := s.Slice(0, half), s.Slice(half, s.Bytes()-half)
		return func(b *B) {
			b.Fork(GroupSpec{
				Work: float64(s.Bytes()),
				Size: s.Bytes(),
				Children: []ChildSpec{
					{Work: float64(l.Bytes()), Size: l.Bytes(), Body: build(l, d-1)},
					{Work: float64(r.Bytes()), Size: r.Bytes(), Body: build(r, d-1)},
				},
			})
		}
	}
	return build(seg, depth)
}

func TestSBCommitNeverExceedsCapacity(t *testing.T) {
	m := topology.TwoLevel16()
	eng := NewEngine(Config{Machine: m, Mode: SB, Seed: 3})
	seg := eng.Memory().Alloc("d", 64<<20)
	res := eng.Run(sbTree(seg, 8, 3000))
	if res.Tasks != 511 {
		t.Fatalf("tasks = %d, want 511", res.Tasks)
	}
	// After completion every reservation must have been released.
	for level := 1; level < m.NumLevels(); level++ {
		for i, cs := range eng.sb.caches[level] {
			if cs.committed != 0 {
				t.Errorf("C[%d][%d] still has %d bytes committed", level, i, cs.committed)
			}
			if cs.runq.Len() != 0 || len(cs.waitq) != 0 {
				t.Errorf("C[%d][%d] has leftover queued tasks", level, i)
			}
		}
	}
}

func TestSBAnchoringRespectsSigma(t *testing.T) {
	// A task of 5 MB on 8 MB caches with sigma=0.5 (5 > 4) must NOT anchor
	// below the root; with sigma=0.8 (5 < 6.4) it must.
	m := topology.TwoLevel16()
	for _, tc := range []struct {
		sigma      float64
		wantAnchor bool
	}{
		{0.5, false},
		{0.8, true},
	} {
		eng := NewEngine(Config{Machine: m, Mode: SB, Seed: 1, SBSigma: tc.sigma, SBMu: 0.01})
		seg := eng.Memory().Alloc("d", 5<<20)
		anchored := false
		eng.Run(func(b *B) {
			b.Fork(GroupSpec{Work: 1, Size: seg.Bytes(), Children: []ChildSpec{
				{Work: 1, Size: seg.Bytes(), Body: func(b *B) {
					b.Compute(100, Pass(seg, 1))
				}},
			}})
		})
		// Inspect where reservations went: with anchoring, some shared
		// cache saw committed bytes at some point; we detect it via the
		// engine's task bookkeeping instead: re-run and check level-1
		// commit high-water by sampling after anchor (simpler: the anchor
		// descends iff sigma allows, which we can observe through
		// RemoteAccesses-free behaviour only... use the committed trace).
		_ = anchored
		// Direct check: replay anchoring logic.
		task := &Task{sbSize: seg.Bytes(), sbCache: m.Root()}
		eng2 := NewEngine(Config{Machine: m, Mode: SB, Seed: 1, SBSigma: tc.sigma, SBMu: 0.01})
		eng2.sbAnchor(eng2.workers[0], task)
		got := task.sbCache.Level > 0
		if got != tc.wantAnchor {
			t.Errorf("sigma=%v: anchored=%v, want %v", tc.sigma, got, tc.wantAnchor)
		}
	}
}

func TestSBWaitsWhenFull(t *testing.T) {
	// Two 6 MB tasks (sigma 0.9 -> both want the same 8 MB cache level)
	// cannot both reserve one 8 MB cache; the scheduler must still finish
	// by placing them on different caches or serializing.
	m := topology.TwoLevel16()
	eng := NewEngine(Config{Machine: m, Mode: SB, Seed: 5, SBSigma: 0.9, SBMu: 0.1})
	segA := eng.Memory().Alloc("a", 6<<20)
	segB := eng.Memory().Alloc("b", 6<<20)
	res := eng.Run(func(b *B) {
		b.Fork(GroupSpec{Work: 2, Size: 12 << 20, Children: []ChildSpec{
			{Work: 1, Size: segA.Bytes(), Body: func(b *B) { b.Compute(1000, Pass(segA, 2)) }},
			{Work: 1, Size: segB.Bytes(), Body: func(b *B) { b.Compute(1000, Pass(segB, 2)) }},
		}})
	})
	if res.Tasks != 3 {
		t.Errorf("tasks = %d, want 3", res.Tasks)
	}
}

func TestNUMAFirstTouchReducesRemote(t *testing.T) {
	// Under ADWS with a parallel first-touch init, the main computation's
	// remote accesses must be far below the interleave policy's.
	m := topology.OakbridgeCX()
	run := func(policy NUMAPolicy, init bool) RunResult {
		eng := NewEngine(Config{Machine: m, Mode: SLADWS, Seed: 2, NUMA: policy})
		seg := eng.Memory().Alloc("d", 512<<20)
		body := balancedTree(seg, 10, 2000)
		if init {
			eng.Run(body) // first touch with the same deterministic mapping
		}
		eng.Hierarchy().FlushAll()
		return eng.Run(body)
	}
	inter := run(Interleave, false)
	local := run(FirstTouch, true)
	if local.RemoteAccesses*4 > inter.RemoteAccesses {
		t.Errorf("first-touch remote accesses %d not well below interleave %d",
			local.RemoteAccesses, inter.RemoteAccesses)
	}
	if inter.RemoteAccesses == 0 {
		t.Error("interleave produced no remote accesses at all")
	}
}

func TestStealRangeLocalization(t *testing.T) {
	// Under ML-ADWS with a huge working set, level-1 scheduling separates
	// the sockets; flattened groups run inside one socket. ADWS steals are
	// then localized: the run completes with far fewer steals than SL-WS
	// needs, and with deterministic migrations doing the distribution.
	m := topology.OakbridgeCX()
	engA := NewEngine(Config{Machine: m, Mode: MLADWS, Seed: 9})
	segA := engA.Memory().Alloc("d", 512<<20)
	adws := engA.Run(balancedTree(segA, 10, 2000))

	engW := NewEngine(Config{Machine: m, Mode: SLWS, Seed: 9})
	segW := engW.Memory().Alloc("d", 512<<20)
	ws := engW.Run(balancedTree(segW, 10, 2000))

	if adws.Migrations == 0 {
		t.Error("ML-ADWS performed no migrations")
	}
	if adws.Steals*2 > ws.Steals {
		t.Errorf("ML-ADWS steals (%d) not well below SL-WS steals (%d)", adws.Steals, ws.Steals)
	}
}
