package sim

import (
	"math"
	"testing"

	"github.com/parlab/adws/internal/topology"
)

// leafOnly returns a body with a single compute step.
func leafOnly(work float64, specs ...AccessSpec) Body {
	return func(b *B) { b.Compute(work, specs...) }
}

// balancedTree builds a binary fork-join tree of the given depth; each
// leaf computes `leafWork` over its share of seg. Work and size hints are
// exact.
func balancedTree(seg Segment, depth int, leafWork float64) Body {
	var build func(s Segment, d int) Body
	build = func(s Segment, d int) Body {
		if d == 0 {
			return func(b *B) { b.Compute(leafWork, Pass(s, 1)) }
		}
		return func(b *B) {
			half := s.Bytes() / 2
			l := s.Slice(0, half)
			r := s.Slice(half, s.Bytes()-half)
			w := float64(int64(1) << uint(d))
			b.Fork(GroupSpec{
				Work: w,
				Size: s.Bytes(),
				Children: []ChildSpec{
					{Work: w / 2, Size: l.Bytes(), Body: build(l, d-1)},
					{Work: w / 2, Size: r.Bytes(), Body: build(r, d-1)},
				},
			})
		}
	}
	return build(seg, depth)
}

func runTree(t *testing.T, m *topology.Machine, mode Mode, depth int, leafWork float64) RunResult {
	t.Helper()
	eng := NewEngine(Config{Machine: m, Mode: mode, Seed: 1})
	seg := eng.Memory().Alloc("data", int64(1<<uint(depth))*ChunkSize)
	res := eng.Run(balancedTree(seg, depth, leafWork))
	return res
}

func TestSingleComputeAllModes(t *testing.T) {
	for _, mode := range Modes {
		m := topology.TwoLevel16()
		eng := NewEngine(Config{Machine: m, Mode: mode, Seed: 7})
		res := eng.Run(leafOnly(1000))
		if res.Time != 1000 {
			t.Errorf("%v: time = %v, want 1000", mode, res.Time)
		}
		if res.BusyTime != 1000 {
			t.Errorf("%v: busy = %v, want 1000", mode, res.BusyTime)
		}
		if res.Tasks != 1 {
			t.Errorf("%v: tasks = %d, want 1", mode, res.Tasks)
		}
	}
}

func TestEmptyBodyAndEmptyFork(t *testing.T) {
	m := topology.TwoLevel16()
	for _, mode := range Modes {
		eng := NewEngine(Config{Machine: m, Mode: mode, Seed: 1})
		res := eng.Run(func(b *B) {
			b.Fork(GroupSpec{}) // no children: must be a no-op
			b.Compute(10)
		})
		if res.Time != 10 {
			t.Errorf("%v: time = %v, want 10", mode, res.Time)
		}
	}
}

func TestForkJoinTreeAllModes(t *testing.T) {
	const depth = 6 // 64 leaves
	for _, mode := range Modes {
		res := runTree(t, topology.TwoLevel16(), mode, depth, 5000)
		wantTasks := int64(1<<depth)*2 - 1 // full binary tree
		if res.Tasks != wantTasks {
			t.Errorf("%v: tasks = %d, want %d", mode, res.Tasks, wantTasks)
		}
		wantBusy := float64(int64(1)<<depth) * 5000
		// Busy also includes memory access costs; it must be at least the
		// pure compute.
		if res.BusyTime < wantBusy {
			t.Errorf("%v: busy = %v < pure compute %v", mode, res.BusyTime, wantBusy)
		}
		if res.Time <= 0 || math.IsNaN(res.Time) {
			t.Errorf("%v: bad time %v", mode, res.Time)
		}
	}
}

func TestSequentialGroups(t *testing.T) {
	// A task with two sequential Fork steps: the second group must not
	// start before the first completes; total tasks = 1 + 2 + 2.
	for _, mode := range Modes {
		m := topology.TwoLevel16()
		eng := NewEngine(Config{Machine: m, Mode: mode, Seed: 3})
		res := eng.Run(func(b *B) {
			b.Fork(GroupSpec{Work: 2, Children: []ChildSpec{
				{Work: 1, Body: leafOnly(100)},
				{Work: 1, Body: leafOnly(100)},
			}})
			b.Fork(GroupSpec{Work: 2, Children: []ChildSpec{
				{Work: 1, Body: leafOnly(100)},
				{Work: 1, Body: leafOnly(100)},
			}})
			b.Compute(50)
		})
		if res.Tasks != 5 {
			t.Errorf("%v: tasks = %d, want 5", mode, res.Tasks)
		}
		if res.BusyTime != 450 {
			t.Errorf("%v: busy = %v, want 450", mode, res.BusyTime)
		}
	}
}

func TestParallelismSpeedsUp(t *testing.T) {
	// 64 independent equal leaves on 16 workers: every scheduler must
	// achieve substantial speedup over the serial sum.
	const depth, leafWork = 6, 50000.0
	serial := float64(int64(1)<<depth) * leafWork
	for _, mode := range Modes {
		res := runTree(t, topology.TwoLevel16(), mode, depth, leafWork)
		sp := serial / res.Time
		if sp < 3 {
			t.Errorf("%v: speedup = %.2f, want >= 3 (time %v)", mode, sp, res.Time)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, mode := range Modes {
		a := runTree(t, topology.TwoLevel16(), mode, 7, 3000)
		b := runTree(t, topology.TwoLevel16(), mode, 7, 3000)
		if a.Time != b.Time || a.PrivateMisses != b.PrivateMisses ||
			a.SharedMisses != b.SharedMisses || a.Steals != b.Steals {
			t.Errorf("%v: runs diverged: %v vs %v", mode, a, b)
		}
	}
}

func TestADWSMigrations(t *testing.T) {
	// Deterministic task mapping must distribute tasks by migration, and
	// with exact hints on a balanced tree, steals should be rare.
	res := runTree(t, topology.TwoLevel16(), SLADWS, 8, 10000)
	if res.Migrations == 0 {
		t.Error("SL-ADWS performed no migrations")
	}
	if res.Steals > res.Tasks/10 {
		t.Errorf("SL-ADWS stole %d of %d tasks despite exact hints", res.Steals, res.Tasks)
	}
}

func TestWSStealsForBalance(t *testing.T) {
	// Conventional WS can only distribute via steals.
	res := runTree(t, topology.TwoLevel16(), SLWS, 8, 10000)
	if res.Steals == 0 {
		t.Error("SL-WS performed no steals on a 256-leaf tree")
	}
	if res.Migrations != 0 {
		t.Errorf("SL-WS migrated %d tasks; migration is ADWS-only", res.Migrations)
	}
}

func TestMLTieAndFlatten(t *testing.T) {
	m := topology.TwoLevel16() // 4 shared caches of 8 MB over 4 workers each

	// Working set of 64 MB exceeds the aggregate shared capacity (32 MB):
	// the root stays at level 1, and subtrees that fit shared caches
	// flatten over single caches' workers (the tie-equivalent on a
	// two-level machine). The root itself must NOT flatten, so level-1
	// scheduling happens: expect migrations or steals at level 1 plus
	// plenty of flattens below.
	eng := NewEngine(Config{Machine: m, Mode: MLADWS, Seed: 5})
	seg := eng.Memory().Alloc("big", 64<<20)
	res := eng.Run(balancedTree(seg, 8, 2000))
	if res.Flattens == 0 {
		t.Errorf("ML-ADWS performed no flattens on a 64MB set over 8MB caches: %v", res)
	}

	// Working set of 16 MB fits the aggregate shared capacity (32 MB):
	// the root group must flatten immediately (exactly once per level-1
	// group it encounters at the root — the whole run is then single-level).
	eng2 := NewEngine(Config{Machine: m, Mode: MLADWS, Seed: 5})
	seg2 := eng2.Memory().Alloc("small", 16<<20)
	res2 := eng2.Run(balancedTree(seg2, 6, 2000))
	if res2.Flattens != 1 {
		t.Errorf("ML-ADWS flattened %d times on a 16MB set, want exactly 1 (at the root): %v", res2.Flattens, res2)
	}
}

func TestMLTieOnThreeLevelMachine(t *testing.T) {
	// On a 3-level machine (socket 64MB / cluster 8MB / leaf 1MB), a group
	// of 40 MB fits a socket but not the socket's aggregate cluster
	// capacity (32 MB): flattening stops at an intermediate level, so the
	// group must TIE to the socket (descend one level, ML continues below).
	m := topology.ThreeLevel64()
	eng := NewEngine(Config{Machine: m, Mode: MLADWS, Seed: 11})
	seg := eng.Memory().Alloc("d", 80<<20) // root 80MB > 2x64MB? no: fits sockets' 128MB aggregate...
	_ = seg
	// Build explicitly: root group of two 40MB halves over a 80MB segment.
	segHalfA := seg.Slice(0, 40<<20)
	segHalfB := seg.Slice(40<<20, 40<<20)
	half := func(s Segment) Body {
		return func(b *B) {
			// One group of 40MB: must tie to a socket.
			b.Fork(GroupSpec{Work: 2, Size: s.Bytes(), Children: []ChildSpec{
				{Work: 1, Size: s.Bytes() / 2, Body: balancedTree(s.Slice(0, s.Bytes()/2), 3, 1000)},
				{Work: 1, Size: s.Bytes() / 2, Body: balancedTree(s.Slice(s.Bytes()/2, s.Bytes()/2), 3, 1000)},
			}})
		}
	}
	res := eng.Run(func(b *B) {
		b.Fork(GroupSpec{Work: 2, Size: 160 << 20, Children: []ChildSpec{
			{Work: 1, Size: 40 << 20, Body: half(segHalfA)},
			{Work: 1, Size: 40 << 20, Body: half(segHalfB)},
		}})
	})
	if res.Ties == 0 {
		t.Errorf("no ties on 3-level machine with 40MB groups: %v", res)
	}
}

func TestMLWithoutSizeHintsDegenerates(t *testing.T) {
	// Without size hints nothing ties: only the root domain's leaders
	// work, but the run must still complete.
	m := topology.TwoLevel16()
	eng := NewEngine(Config{Machine: m, Mode: MLWS, Seed: 2})
	var build func(d int) Body
	build = func(d int) Body {
		if d == 0 {
			return leafOnly(1000)
		}
		return func(b *B) {
			b.Fork(GroupSpec{Children: []ChildSpec{
				{Body: build(d - 1)}, {Body: build(d - 1)},
			}})
		}
	}
	res := eng.Run(build(5))
	if res.Tasks != 63 {
		t.Errorf("tasks = %d, want 63", res.Tasks)
	}
	if res.Ties != 0 {
		t.Errorf("ties = %d without size hints, want 0", res.Ties)
	}
}

func TestIgnoreWorkHints(t *testing.T) {
	// With IgnoreWorkHints, ADWS assumes 1:1 and must fix the imbalance by
	// stealing; the run still completes with every task executed.
	m := topology.TwoLevel16()
	skewed := func(b *B) {
		// 9:1 skew with wrong (ignored) hints.
		heavy := func(b *B) { b.Compute(90000) }
		light := func(b *B) { b.Compute(10000) }
		var kids []ChildSpec
		for i := 0; i < 8; i++ {
			kids = append(kids, ChildSpec{Work: 1, Body: heavy}, ChildSpec{Work: 1, Body: light})
		}
		b.Fork(GroupSpec{Work: 16, Children: kids})
	}
	eng := NewEngine(Config{Machine: m, Mode: SLADWS, Seed: 4, IgnoreWorkHints: true})
	res := eng.Run(skewed)
	if res.Tasks != 17 {
		t.Errorf("tasks = %d, want 17", res.Tasks)
	}
	if res.BusyTime != 16*50000+0 {
		t.Errorf("busy = %v, want %v", res.BusyTime, 16*50000)
	}
}

func TestSBAnchorsAndCompletes(t *testing.T) {
	m := topology.TwoLevel16()
	eng := NewEngine(Config{Machine: m, Mode: SB, Seed: 9})
	seg := eng.Memory().Alloc("d", 16<<20)
	res := eng.Run(balancedTree(seg, 6, 4000))
	if res.Tasks != 127 {
		t.Errorf("tasks = %d, want 127", res.Tasks)
	}
	if res.Time <= 0 {
		t.Errorf("bad time %v", res.Time)
	}
}

func TestRepeatedRunsShareCaches(t *testing.T) {
	// Iterative data locality: under SL-ADWS the second identical run must
	// see far fewer private misses because the deterministic mapping sends
	// each worker back to the same data (the paper's core claim, §1).
	m := topology.TwoLevel16()
	eng := NewEngine(Config{Machine: m, Mode: SLADWS, Seed: 6})
	seg := eng.Memory().Alloc("iter", 8<<20) // 2 MB per shared cache group
	body := balancedTree(seg, 6, 3000)
	first := eng.Run(body)
	second := eng.Run(body)
	if second.PrivateMisses >= first.PrivateMisses {
		t.Errorf("warm run misses %d >= cold run misses %d", second.PrivateMisses, first.PrivateMisses)
	}
}

func TestRunSerial(t *testing.T) {
	m := topology.TwoLevel16()
	res := RunSerial(m, CostModel{}, Node0, 2, func(mem *Memory) Body {
		seg := mem.Alloc("s", 4*ChunkSize)
		return balancedTree(seg, 2, 1000)
	})
	if res.Time <= 0 {
		t.Fatalf("serial time = %v", res.Time)
	}
	// Warm repetition with a fitting working set: only compute remains.
	costs := DefaultCosts()
	want := 4*1000 + 4*costs.PrivateHitPerChunk
	if res.Time != want {
		t.Errorf("warm serial time = %v, want %v", res.Time, want)
	}
}

func TestSpeedupHelper(t *testing.T) {
	r := RunResult{Time: 50}
	if s := r.Speedup(500); s != 10 {
		t.Errorf("Speedup = %v, want 10", s)
	}
	r0 := RunResult{}
	if s := r0.Speedup(500); s != 0 {
		t.Errorf("zero-time Speedup = %v, want 0", s)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{SLWS: "SL-WS", SLADWS: "SL-ADWS", MLWS: "ML-WS", MLADWS: "ML-ADWS", SB: "SB"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if !SLADWS.IsADWS() || SLWS.IsADWS() {
		t.Error("IsADWS wrong")
	}
	if !MLWS.IsMultiLevel() || SLADWS.IsMultiLevel() {
		t.Error("IsMultiLevel wrong")
	}
}
