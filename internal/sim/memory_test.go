package sim

import (
	"testing"
	"testing/quick"

	"github.com/parlab/adws/internal/topology"
)

func TestSegmentAlloc(t *testing.T) {
	m := NewMemory(2, Interleave)
	a := m.Alloc("a", 3*ChunkSize)
	b := m.Alloc("b", 1) // rounds up to one chunk
	if a.NumChunks() != 3 || a.Bytes() != 3*ChunkSize {
		t.Errorf("a = %d chunks %d bytes", a.NumChunks(), a.Bytes())
	}
	if b.NumChunks() != 1 {
		t.Errorf("b = %d chunks, want 1", b.NumChunks())
	}
	if m.NumChunks() != 4 {
		t.Errorf("heap = %d chunks, want 4", m.NumChunks())
	}
	if a.first == b.first {
		t.Error("segments overlap")
	}
}

func TestSegmentSlice(t *testing.T) {
	m := NewMemory(1, Node0)
	s := m.Alloc("s", 8*ChunkSize)
	half := s.Slice(0, 4*ChunkSize)
	if half.NumChunks() != 4 || half.first != s.first {
		t.Errorf("first half = %d chunks at %d", half.NumChunks(), half.first)
	}
	rest := s.Slice(4*ChunkSize, 4*ChunkSize)
	if rest.NumChunks() != 4 || rest.first != s.first+4 {
		t.Errorf("second half = %d chunks at %d", rest.NumChunks(), rest.first)
	}
	// Sub-chunk slices round outward.
	tiny := s.Slice(ChunkSize/2, 10)
	if tiny.NumChunks() != 1 || tiny.first != s.first {
		t.Errorf("tiny = %d chunks at %d", tiny.NumChunks(), tiny.first)
	}
	// Clamping.
	over := s.Slice(6*ChunkSize, 100*ChunkSize)
	if over.NumChunks() != 2 {
		t.Errorf("over = %d chunks, want 2", over.NumChunks())
	}
	if neg := s.Slice(-5, ChunkSize); neg.first != s.first {
		t.Errorf("negative offset start = %d", neg.first)
	}
}

func TestNUMAPolicies(t *testing.T) {
	inter := NewMemory(2, Interleave)
	s := inter.Alloc("s", 4*ChunkSize)
	homes := map[int]int{}
	for i := 0; i < 4; i++ {
		homes[inter.Home(s.first+Chunk(i), 0)]++
	}
	if homes[0] != 2 || homes[1] != 2 {
		t.Errorf("interleave homes = %v, want 2/2", homes)
	}

	ft := NewMemory(2, FirstTouch)
	s2 := ft.Alloc("s2", 2*ChunkSize)
	if h := ft.Home(s2.first, 1); h != 1 {
		t.Errorf("first touch from node 1 = %d, want 1", h)
	}
	if h := ft.Home(s2.first, 0); h != 1 {
		t.Errorf("second touch from node 0 = %d, want 1 (sticky)", h)
	}

	n0 := NewMemory(2, Node0)
	s3 := n0.Alloc("s3", ChunkSize)
	if h := n0.Home(s3.first, 1); h != 0 {
		t.Errorf("node0 home = %d, want 0", h)
	}
}

func TestCacheSetLRU(t *testing.T) {
	cs := NewCacheSet(2 * ChunkSize) // 2 chunks
	if cs.Capacity() != 2 {
		t.Fatalf("capacity = %d", cs.Capacity())
	}
	if cs.Touch(1) {
		t.Error("first touch of 1 hit")
	}
	if cs.Touch(2) {
		t.Error("first touch of 2 hit")
	}
	if !cs.Touch(1) {
		t.Error("second touch of 1 missed")
	}
	// 2 is now LRU; inserting 3 evicts it.
	if cs.Touch(3) {
		t.Error("first touch of 3 hit")
	}
	if cs.Touch(2) {
		t.Error("touch of evicted 2 hit")
	}
	// Now 1 was evicted (LRU after touching 3, 2 inserted).
	if cs.Touch(1) {
		t.Error("touch of evicted 1 hit")
	}
	if cs.Len() != 2 {
		t.Errorf("len = %d, want 2", cs.Len())
	}
	cs.Flush()
	if cs.Len() != 0 || cs.Contains(1) {
		t.Error("flush did not empty the cache")
	}
}

// Property: a CacheSet never exceeds its capacity and a touch of a resident
// chunk always hits.
func TestCacheSetProperty(t *testing.T) {
	f := func(touches []uint8) bool {
		cs := NewCacheSet(4 * ChunkSize)
		for _, c := range touches {
			ch := Chunk(c % 16)
			resident := cs.Contains(ch)
			hit := cs.Touch(ch)
			if hit != resident {
				return false
			}
			if cs.Len() > 4 {
				return false
			}
			if !cs.Contains(ch) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyAccessCosts(t *testing.T) {
	m := topology.Flat(2, 4*ChunkSize, 1*ChunkSize)
	costs := DefaultCosts()
	mem := NewMemory(1, Node0)
	h := NewHierarchy(m, mem, &costs)
	s := mem.Alloc("s", 2*ChunkSize)

	// Cold: memory cost, misses at both levels.
	if c := h.Access(0, s.first); c != costs.MemPerChunk {
		t.Errorf("cold access cost = %v, want %v", c, costs.MemPerChunk)
	}
	if h.MissesAtPrivate() != 1 || h.MissesAtShared() != 1 {
		t.Errorf("misses = %d/%d, want 1/1", h.MissesAtPrivate(), h.MissesAtShared())
	}
	// Hot in private.
	if c := h.Access(0, s.first); c != costs.PrivateHitPerChunk {
		t.Errorf("hot access cost = %v, want %v", c, costs.PrivateHitPerChunk)
	}
	// Worker 1 misses private but hits shared.
	if c := h.Access(1, s.first); c != costs.SharedHitPerChunk {
		t.Errorf("shared hit cost = %v, want %v", c, costs.SharedHitPerChunk)
	}
	if h.MissesAtPrivate() != 2 {
		t.Errorf("private misses = %d, want 2", h.MissesAtPrivate())
	}
	if h.Accesses != 3 {
		t.Errorf("accesses = %d, want 3", h.Accesses)
	}
}

func TestHierarchyCapacityMisses(t *testing.T) {
	// Working set of 8 chunks over a 4-chunk shared cache: a second pass
	// misses everywhere (LRU with a cyclic sweep keeps evicting).
	m := topology.Flat(1, 4*ChunkSize, 2*ChunkSize)
	costs := DefaultCosts()
	mem := NewMemory(1, Node0)
	h := NewHierarchy(m, mem, &costs)
	s := mem.Alloc("s", 8*ChunkSize)

	h.AccessRange(0, []AccessSpec{Pass(s, 2)})
	if h.MissesAtShared() != 16 {
		t.Errorf("shared misses = %d, want 16 (capacity thrash)", h.MissesAtShared())
	}

	// A working set that fits is only cold once.
	mem2 := NewMemory(1, Node0)
	h2 := NewHierarchy(m, mem2, &costs)
	small := mem2.Alloc("small", 2*ChunkSize)
	h2.AccessRange(0, []AccessSpec{Pass(small, 3)})
	if h2.MissesAtShared() != 2 {
		t.Errorf("small-set shared misses = %d, want 2 (cold only)", h2.MissesAtShared())
	}
	if h2.MissesAtPrivate() != 2 {
		t.Errorf("small-set private misses = %d, want 2", h2.MissesAtPrivate())
	}
}

func TestHierarchyNUMACosts(t *testing.T) {
	m := topology.OakbridgeCX()
	costs := DefaultCosts()
	mem := NewMemory(m.NumNUMANodes(), Interleave)
	h := NewHierarchy(m, mem, &costs)
	s := mem.Alloc("s", 2*ChunkSize) // chunk 0 on node 0, chunk 1 on node 1

	if c := h.Access(0, s.first); c != costs.MemPerChunk {
		t.Errorf("local access cost = %v, want %v", c, costs.MemPerChunk)
	}
	if c := h.Access(0, s.first+1); c != costs.RemotePerChunk {
		t.Errorf("remote access cost = %v, want %v", c, costs.RemotePerChunk)
	}
	if h.RemoteAccesses != 1 {
		t.Errorf("remote accesses = %d, want 1", h.RemoteAccesses)
	}
}

func TestFlushAndReset(t *testing.T) {
	m := topology.Flat(1, 4*ChunkSize, 2*ChunkSize)
	costs := DefaultCosts()
	mem := NewMemory(1, Node0)
	h := NewHierarchy(m, mem, &costs)
	s := mem.Alloc("s", 2*ChunkSize)
	h.AccessRange(0, []AccessSpec{Pass(s, 1)})
	h.ResetCounters()
	if h.Accesses != 0 || h.MissesAtPrivate() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
	// Content kept: re-access hits.
	if c := h.Access(0, s.first); c != costs.PrivateHitPerChunk {
		t.Errorf("after reset, access cost = %v, want private hit", c)
	}
	h.FlushAll()
	if c := h.Access(0, s.first); c != costs.MemPerChunk {
		t.Errorf("after flush, access cost = %v, want memory", c)
	}
}
