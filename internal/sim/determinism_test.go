package sim

import (
	"testing"

	"github.com/parlab/adws/internal/topology"
)

// assignment records which worker executed each task (by per-run ordinal).
type assignment map[int64]int

func runWithTrace(t *testing.T, mode Mode, reps int) []assignment {
	t.Helper()
	var out []assignment
	var cur assignment
	eng := NewEngine(Config{
		Machine: topology.TwoLevel16(),
		Mode:    mode,
		Seed:    17,
		TraceExec: func(ord int64, w int) {
			cur[ord] = w
		},
	})
	seg := eng.Memory().Alloc("d", 8<<20)
	body := balancedTree(seg, 7, 2000)
	for r := 0; r < reps; r++ {
		cur = assignment{}
		eng.Run(body)
		out = append(out, cur)
	}
	return out
}

// TestIterativeDeterminism verifies the paper's central iterative-locality
// mechanism (§1, §3.1): under ADWS, repeated executions of the same
// computation map (almost) every task to the same worker, so the same data
// meets the same caches. Under conventional random work stealing the
// mapping churns.
func TestIterativeDeterminism(t *testing.T) {
	adws := runWithTrace(t, SLADWS, 3)
	// Warm repetitions (2nd vs 3rd) must agree almost everywhere; a few
	// tasks may move due to residual dynamic load balancing.
	agree, total := 0, 0
	for ord, w := range adws[1] {
		total++
		if adws[2][ord] == w {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no tasks traced")
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("ADWS: only %.1f%% of tasks kept their worker across reps", 100*frac)
	}

	ws := runWithTrace(t, SLWS, 3)
	agree, total = 0, 0
	for ord, w := range ws[1] {
		total++
		if ws[2][ord] == w {
			agree++
		}
	}
	if frac := float64(agree) / float64(total); frac > 0.9 {
		t.Errorf("WS: %.1f%% of tasks kept their worker — random stealing should churn more", 100*frac)
	}
}

// TestDeterministicMappingMatchesHints verifies that with exact hints, the
// set of workers used by a subtree matches its share of the distribution
// range: on a balanced tree over P workers, the two top-level subtrees use
// disjoint worker halves.
func TestDeterministicMappingMatchesHints(t *testing.T) {
	var cur assignment
	eng := NewEngine(Config{
		Machine:   topology.TwoLevel16(),
		Mode:      SLADWS,
		Seed:      5,
		TraceExec: func(ord int64, w int) { cur[ord] = w },
	})
	seg := eng.Memory().Alloc("d", 8<<20)
	body := balancedTree(seg, 6, 50000) // heavy leaves: steals negligible
	cur = assignment{}
	eng.Run(body)

	// Tasks are created in deterministic order: ordinal 1 is the root's
	// first (top-range) child, covering workers [8,16); ordinal 2 the
	// second child covering [0,8). With exact hints and heavy leaves, the
	// leaf executions under each child stay inside its half.
	// We check the weaker, robust property: both halves of the worker
	// range were used, and the root ran on worker 0.
	if cur[0] != 0 {
		t.Errorf("root task ran on worker %d, want 0", cur[0])
	}
	lowHalf, highHalf := false, false
	for _, w := range cur {
		if w < 8 {
			lowHalf = true
		} else {
			highHalf = true
		}
	}
	if !lowHalf || !highHalf {
		t.Errorf("deterministic mapping did not spread across halves (low=%v high=%v)", lowHalf, highHalf)
	}
}
