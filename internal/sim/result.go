package sim

import (
	"fmt"
	"strings"

	"github.com/parlab/adws/internal/trace"
)

// RunResult is the outcome of one simulated run, matching the paper's
// profiling (§6.1): total time plus per-worker busy/idle/overhead
// accounting and cache miss counts.
type RunResult struct {
	// Mode is the scheduler that produced the result.
	Mode Mode
	// Time is the virtual makespan of the run.
	Time float64
	// Workers is the number of workers.
	Workers int

	// BusyTime, IdleTime, OverheadTime are summed over workers. The busy
	// time is time spent executing tasks, idle time is time searching for
	// ready tasks, overhead is scheduler bookkeeping (§6.1).
	BusyTime, IdleTime, OverheadTime float64

	// PrivateMisses and SharedMisses are the paper's L2/L3 miss analogues
	// (Fig. 18), summed over all caches of the level.
	PrivateMisses, SharedMisses int64
	// Accesses is the total number of chunk accesses.
	Accesses int64
	// RemoteAccesses counts fetches served from a remote NUMA node.
	RemoteAccesses int64

	// Steals and StealAttempts count successful and total steal attempts.
	Steals, StealAttempts int64
	// Migrations counts ADWS deterministic task migrations.
	Migrations int64
	// Tasks counts executed tasks.
	Tasks int64
	// Ties and Flattens count multi-level scheduling decisions.
	Ties, Flattens int64
}

func (e *Engine) collect(start float64) RunResult {
	r := RunResult{
		Mode:    e.cfg.Mode,
		Time:    e.finalTime - start,
		Workers: len(e.workers),
	}
	for _, w := range e.workers {
		r.BusyTime += w.busyTime
		r.IdleTime += w.idleTime
		r.OverheadTime += w.overheadTime
		r.Steals += w.steals
		r.StealAttempts += w.stealAttempts
		r.Migrations += w.migrationsOut
		r.Tasks += w.tasksRun
	}
	// Workers that are still idle at the end of the run accrued idle time
	// up to the makespan.
	for _, w := range e.workers {
		if w.idle {
			r.IdleTime += e.finalTime - w.idleStart
			w.idle = false
		}
	}
	r.PrivateMisses = e.hier.MissesAtPrivate()
	r.SharedMisses = e.hier.MissesAtShared()
	r.Accesses = e.hier.Accesses
	r.RemoteAccesses = e.hier.RemoteAccesses
	r.Ties = e.ties
	r.Flattens = e.flattens
	return r
}

// Speedup returns serialTime / r.Time.
func (r RunResult) Speedup(serialTime float64) float64 {
	if r.Time <= 0 {
		return 0
	}
	return serialTime / r.Time
}

// String renders a one-line summary. The steal field uses the repo-wide
// "steals=<successes>/<attempts>" form (trace.StealRatio), matching the
// trace summary and cmd/adwsrun output.
func (r RunResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: time=%.0f busy=%.0f idle=%.0f oh=%.0f L2miss=%d L3miss=%d %s tasks=%d",
		r.Mode, r.Time, r.BusyTime, r.IdleTime, r.OverheadTime,
		r.PrivateMisses, r.SharedMisses, trace.StealRatio(r.Steals, r.StealAttempts), r.Tasks)
	if r.Ties+r.Flattens > 0 {
		fmt.Fprintf(&b, " ties=%d flattens=%d", r.Ties, r.Flattens)
	}
	return b.String()
}
