package sim

import (
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/trace"
)

// maxBackoffPolls bounds the exponential idle backoff to IdlePoll << 6.
const maxBackoffFactor = 8

// findWork is the scheduler loop body of an idle worker (paper Fig. 11,
// GETRUNNABLETASK): resume returned continuations first, then pop local
// queues, then steal within the current steal range.
func (e *Engine) findWork(w *worker) {
	if e.done {
		return
	}
	// 1. Returned continuations have the highest priority (§3.1).
	if n := len(w.resume); n > 0 {
		t := w.resume[n-1]
		w.resume = w.resume[:n-1]
		e.startTask(w, t, t.ent, 0, e.costs.ResumeOverhead)
		return
	}
	if e.cfg.Mode == SB {
		e.findWorkSB(w)
		return
	}

	cands := e.candidates(w)
	// 2. Local queues.
	for _, ent := range cands {
		if t, ok := ent.queues.PopLocal(); ok {
			e.startTask(w, t, ent, 0, 0)
			return
		}
	}
	// 3. Steal within each candidate domain.
	var searched float64
	for _, ent := range cands {
		if t, ok := e.trySteal(w, ent, &searched); ok {
			e.startTask(w, t, ent, searched, e.costs.StealSuccess)
			return
		}
	}
	e.goIdle(w, searched)
}

// candidates returns the entities worker w may act for, in priority order:
// flattened-domain entities (newest first), then the entity of the cache
// the worker currently leads.
func (e *Engine) candidates(w *worker) []*entity {
	if !e.cfg.Mode.IsMultiLevel() {
		return []*entity{e.rootDom.entities[w.id]}
	}
	var out []*entity
	// Prune closed flattened domains in place.
	live := w.fdEnts[:0]
	for _, ent := range w.fdEnts {
		if !ent.dom.closed {
			live = append(live, ent)
		}
	}
	w.fdEnts = live
	for i := len(live) - 1; i >= 0; i-- {
		out = append(out, live[i])
	}
	// A leader participating in a live flattened domain must not start
	// another task at its cache level: each cache executes one flattened
	// group ("level-l leaf") at a time (§4.2's one-tied-group invariant,
	// carried over to flattening).
	if len(live) == 0 && w.leads != nil && w.leads.entity != nil && !w.leads.entity.dom.closed &&
		w.leads.entity.actingWorker() == w.id {
		out = append(out, w.leads.entity)
	}
	return out
}

// trySteal attempts up to MaxStealTries random steals for entity ent,
// accumulating the time spent in *searched. ADWS domains use the dominant
// task group's steal range with depth and boundary-queue restrictions;
// WS domains steal uniformly at random.
func (e *Engine) trySteal(w *worker, ent *entity, searched *float64) (*Task, bool) {
	d := ent.dom
	n := len(d.entities)
	if n <= 1 {
		return nil, false
	}
	tr := e.cfg.Tracer
	if d.adws {
		anchor := ent.lastGroup
		if anchor == nil {
			// Not dominated by any task group: do not steal (Fig. 11 line
			// 40), so deterministically migrated tasks are not stolen too
			// soon.
			return nil, false
		}
		self := d.logicalOf(ent.idx)
		sr, ok := sched.CurrentStealRange(anchor, self)
		if !ok {
			return nil, false
		}
		nv := sr.NumVictims(self)
		if nv <= 0 {
			return nil, false
		}
		// Events carry the inclusive steal range [Low, High] half-open.
		srLo, srHi := float64(sr.Low), float64(sr.High)+1
		tries := e.cfg.MaxStealTries
		if tries > nv {
			tries = nv
		}
		for a := 0; a < tries; a++ {
			*searched += e.costs.StealAttempt
			w.stealAttempts++
			v := sr.Victim(self, w.rng.Intn(nv))
			if tr != nil {
				tr.Record(w.id, trace.Event{Type: trace.EvStealAttempt, Time: e.vt(),
					Self: int32(self), Victim: int32(v), Depth: int32(sr.MinDepth),
					RangeLo: srLo, RangeHi: srHi})
			}
			vp := d.physical(v)
			if vp == ent.idx {
				continue // cyclic wrap collided with ourselves
			}
			ve := d.entities[vp]
			if sr.MigrationStealable(v) {
				if t, ok := ve.queues.StealMigration(sr.MinDepth); ok {
					w.steals++
					if tr != nil {
						tr.Record(w.id, trace.Event{Type: trace.EvStealSuccess, Time: e.vt(),
							Self: int32(self), Victim: int32(v), Depth: int32(sr.MinDepth),
							Task: e.ordinal(t), RangeLo: srLo, RangeHi: srHi})
					}
					e.rebase(t, self, d)
					return t, true
				}
			}
			if sr.PrimaryStealable(v) {
				if t, ok := ve.queues.StealPrimary(sr.MinDepth); ok {
					w.steals++
					if tr != nil {
						tr.Record(w.id, trace.Event{Type: trace.EvStealSuccess, Time: e.vt(),
							Self: int32(self), Victim: int32(v), Depth: int32(sr.MinDepth),
							Task: e.ordinal(t), RangeLo: srLo, RangeHi: srHi})
					}
					e.rebase(t, self, d)
					return t, true
				}
			}
		}
		if tr != nil {
			tr.Record(w.id, trace.Event{Type: trace.EvStealFail, Time: e.vt(),
				Self: int32(self), Depth: int32(sr.MinDepth), RangeLo: srLo, RangeHi: srHi})
		}
		return nil, false
	}
	// Conventional random work stealing.
	tries := e.cfg.MaxStealTries
	if tries > n-1 {
		tries = n - 1
	}
	for a := 0; a < tries; a++ {
		*searched += e.costs.StealAttempt
		w.stealAttempts++
		v := w.rng.Intn(n - 1)
		if v >= ent.idx {
			v++
		}
		if tr != nil {
			tr.Record(w.id, trace.Event{Type: trace.EvStealAttempt, Time: e.vt(),
				Self: int32(ent.idx), Victim: int32(v)})
		}
		if t, ok := d.entities[v].queues.StealAny(); ok {
			w.steals++
			if tr != nil {
				tr.Record(w.id, trace.Event{Type: trace.EvStealSuccess, Time: e.vt(),
					Self: int32(ent.idx), Victim: int32(v), Task: e.ordinal(t)})
			}
			return t, true
		}
	}
	if tr != nil && tries > 0 {
		tr.Record(w.id, trace.Event{Type: trace.EvStealFail, Time: e.vt(),
			Self: int32(ent.idx)})
	}
	return nil, false
}

// rebase re-owns a stolen task's distribution range onto the thief: the
// range keeps its width but its owner becomes the thief (clamped to the
// domain), so the stolen subtree unfolds around the thief while staying
// deterministic below (see DESIGN.md on steal semantics).
func (e *Engine) rebase(t *Task, thiefLogical int, d *domain) {
	t.inMigrationQueue = false
	width := t.rng.Width()
	frac := t.rng.X - float64(t.rng.Owner())
	newX := float64(thiefLogical) + frac
	maxX := float64(d.offset+len(d.entities)) - width
	if newX > maxX {
		newX = maxX
	}
	if newX < float64(d.offset) {
		newX = float64(d.offset)
	}
	t.rng = sched.Range{X: newX, Y: newX + width}
}

// startTask begins executing task t on worker w, charging `searched` time
// as idle-search cost and `oh` as scheduling overhead.
func (e *Engine) startTask(w *worker, t *Task, ent *entity, searched, oh float64) {
	ts := e.now + searched + oh
	if w.idle {
		w.idleTime += (ts - w.idleStart) - oh
		w.idle = false
		w.backoff = 0
	} else {
		w.idleTime += searched
	}
	w.overheadTime += oh
	t.state = taskRunning
	t.execWorker = w.id
	if ent != nil {
		t.ent = ent
		if t.group != nil {
			ent.lastGroup = t.group
		}
	}
	w.current = t
	e.schedule(w, ts)
}

// goIdle records the transition to idleness and schedules a backoff poll.
func (e *Engine) goIdle(w *worker, searched float64) {
	if !w.idle {
		w.idle = true
		w.idleStart = e.now
	}
	if w.backoff == 0 {
		w.backoff = e.costs.IdlePoll
	} else if w.backoff < e.costs.IdlePoll*maxBackoffFactor {
		w.backoff *= 2
	}
	e.schedule(w, e.now+searched+w.backoff)
}
