package sim

import (
	"fmt"

	"github.com/parlab/adws/internal/topology"
)

// ChunkSize is the granularity of the memory and cache model: the virtual
// heap is divided into fixed-size chunks, caches hold whole chunks, and
// memory costs are charged per chunk. 64 KB is the coarsest granularity
// that still resolves the benchmarks' leaf cutoffs (32–256 KB).
const ChunkSize = 64 << 10

// Chunk identifies one chunk of the virtual heap.
type Chunk int32

// Segment is a contiguous allocation in the virtual heap, identified by
// its chunk range. Workloads allocate segments to describe their working
// sets; no real memory is allocated.
type Segment struct {
	Name  string
	first Chunk
	nchk  int32
}

// Bytes returns the segment size in bytes.
func (s Segment) Bytes() int64 { return int64(s.nchk) * ChunkSize }

// NumChunks returns the number of chunks in the segment.
func (s Segment) NumChunks() int { return int(s.nchk) }

// Slice returns the sub-segment covering bytes [off, off+length) of s,
// rounded outward to chunk boundaries. Offsets beyond the segment are
// clamped.
func (s Segment) Slice(off, length int64) Segment {
	if off < 0 {
		off = 0
	}
	lo := off / ChunkSize
	hi := (off + length + ChunkSize - 1) / ChunkSize
	if lo > int64(s.nchk) {
		lo = int64(s.nchk)
	}
	if hi > int64(s.nchk) {
		hi = int64(s.nchk)
	}
	if hi < lo {
		hi = lo
	}
	return Segment{Name: s.Name, first: s.first + Chunk(lo), nchk: int32(hi - lo)}
}

// NUMAPolicy selects how physical pages (chunks) are mapped to NUMA nodes.
type NUMAPolicy int

const (
	// Interleave distributes chunks round-robin over all NUMA nodes
	// (numactl --interleave=all, the paper's default, §6.1).
	Interleave NUMAPolicy = iota
	// FirstTouch maps each chunk to the NUMA node of the worker that first
	// accesses it (the local allocation policy of §6.5).
	FirstTouch
	// Node0 maps every chunk to node 0 (serial runs with --localalloc).
	Node0
)

func (p NUMAPolicy) String() string {
	switch p {
	case Interleave:
		return "interleave"
	case FirstTouch:
		return "firsttouch"
	case Node0:
		return "node0"
	default:
		return fmt.Sprintf("NUMAPolicy(%d)", int(p))
	}
}

// Memory is the virtual heap: an allocator of segments plus the NUMA home
// of every chunk.
type Memory struct {
	policy   NUMAPolicy
	numNodes int
	nextChk  Chunk
	// home[c] is the NUMA node chunk c lives on; -1 if not yet touched
	// under FirstTouch.
	home []int8
}

// NewMemory creates an empty heap for a machine with the given number of
// NUMA nodes under the given placement policy.
func NewMemory(numNodes int, policy NUMAPolicy) *Memory {
	if numNodes < 1 {
		numNodes = 1
	}
	return &Memory{policy: policy, numNodes: numNodes}
}

// Alloc reserves a segment of at least `bytes` bytes (rounded up to whole
// chunks, minimum one chunk).
func (m *Memory) Alloc(name string, bytes int64) Segment {
	n := (bytes + ChunkSize - 1) / ChunkSize
	if n < 1 {
		n = 1
	}
	s := Segment{Name: name, first: m.nextChk, nchk: int32(n)}
	m.nextChk += Chunk(n)
	for i := int64(0); i < n; i++ {
		switch m.policy {
		case Interleave:
			m.home = append(m.home, int8(int(s.first+Chunk(i))%m.numNodes))
		case FirstTouch:
			m.home = append(m.home, -1)
		case Node0:
			m.home = append(m.home, 0)
		}
	}
	return s
}

// NumChunks returns the total number of allocated chunks.
func (m *Memory) NumChunks() int { return int(m.nextChk) }

// Home returns the NUMA node of chunk c for an access from node `from`.
// Under FirstTouch an untouched chunk is claimed by the accessing node.
func (m *Memory) Home(c Chunk, from int) int {
	h := m.home[c]
	if h < 0 {
		m.home[c] = int8(from)
		return from
	}
	return int(h)
}

// Policy returns the placement policy.
func (m *Memory) Policy() NUMAPolicy { return m.policy }

// AccessSpec describes one sequential sweep over (part of) a segment by a
// compute step: Passes full traversals of the chunk range.
type AccessSpec struct {
	Seg    Segment
	Passes int
}

// Pass returns an AccessSpec for n sequential passes over the whole
// segment.
func Pass(s Segment, n int) AccessSpec { return AccessSpec{Seg: s, Passes: n} }

// CacheSet is the LRU content of one cache: an ordered set of chunks with
// a capacity in chunks.
type CacheSet struct {
	cap int
	// order implements LRU via a doubly-linked list over chunk nodes
	// stored in a map.
	pos  map[Chunk]*lruNode
	head *lruNode // most recently used
	tail *lruNode // least recently used
}

type lruNode struct {
	c          Chunk
	prev, next *lruNode
}

// NewCacheSet creates an LRU cache holding capacityBytes worth of chunks
// (minimum 1 chunk).
func NewCacheSet(capacityBytes int64) *CacheSet {
	n := int(capacityBytes / ChunkSize)
	if n < 1 {
		n = 1
	}
	return &CacheSet{cap: n, pos: make(map[Chunk]*lruNode, n+1)}
}

// Capacity returns the capacity in chunks.
func (cs *CacheSet) Capacity() int { return cs.cap }

// Len returns the number of resident chunks.
func (cs *CacheSet) Len() int { return len(cs.pos) }

// Contains reports whether chunk c is resident, without touching LRU order.
func (cs *CacheSet) Contains(c Chunk) bool {
	_, ok := cs.pos[c]
	return ok
}

func (cs *CacheSet) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		cs.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		cs.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (cs *CacheSet) pushFront(n *lruNode) {
	n.next = cs.head
	if cs.head != nil {
		cs.head.prev = n
	}
	cs.head = n
	if cs.tail == nil {
		cs.tail = n
	}
}

// Touch accesses chunk c: returns true on a hit (and refreshes LRU order),
// or false on a miss, in which case c is installed, possibly evicting the
// least recently used chunk.
func (cs *CacheSet) Touch(c Chunk) bool {
	if n, ok := cs.pos[c]; ok {
		if cs.head != n {
			cs.unlink(n)
			cs.pushFront(n)
		}
		return true
	}
	if len(cs.pos) >= cs.cap {
		lru := cs.tail
		cs.unlink(lru)
		delete(cs.pos, lru.c)
	}
	n := &lruNode{c: c}
	cs.pos[c] = n
	cs.pushFront(n)
	return false
}

// Flush empties the cache.
func (cs *CacheSet) Flush() {
	cs.pos = make(map[Chunk]*lruNode, cs.cap+1)
	cs.head, cs.tail = nil, nil
}

// Hierarchy is the full simulated cache hierarchy: one CacheSet per cache
// in the machine's tree (the root/memory level has none), plus per-level
// miss counters.
type Hierarchy struct {
	machine *topology.Machine
	mem     *Memory
	costs   *CostModel
	// sets[level][index] is the CacheSet of C[level][index]; level 0 is nil.
	sets [][]*CacheSet
	// Misses[level] counts misses at cache level `level` (1..maxLevel),
	// i.e. accesses that had to go above that level. Misses at the private
	// (leaf) level correspond to the paper's L2 misses; misses at level 1
	// to its L3 misses.
	Misses []int64
	// Accesses counts all chunk accesses.
	Accesses int64
	// RemoteAccesses counts chunk fetches served by a remote NUMA node.
	RemoteAccesses int64
}

// NewHierarchy builds empty caches for every non-root cache of m.
func NewHierarchy(m *topology.Machine, mem *Memory, costs *CostModel) *Hierarchy {
	h := &Hierarchy{machine: m, mem: mem, costs: costs}
	h.sets = make([][]*CacheSet, m.NumLevels())
	for level := 1; level < m.NumLevels(); level++ {
		row := m.LevelCaches(level)
		h.sets[level] = make([]*CacheSet, len(row))
		for i, c := range row {
			h.sets[level][i] = NewCacheSet(c.Capacity)
		}
	}
	h.Misses = make([]int64, m.NumLevels())
	return h
}

// Set returns the CacheSet of C[level][index].
func (h *Hierarchy) Set(level, index int) *CacheSet { return h.sets[level][index] }

// Access simulates worker w touching chunk c and returns the virtual-time
// cost. The chunk is installed along the whole path from where it was
// found down to w's private cache, with LRU replacement at each level.
func (h *Hierarchy) Access(w int, c Chunk) float64 {
	h.Accesses++
	// Walk w's cache path from the private leaf up to the root, touching
	// each level. The first level that hits determines the cost; all
	// levels below (and the hit level itself, via Touch) now hold c.
	leaf := h.machine.LeafOf(w)
	hitLevel := 0 // 0 = memory
	for cc := leaf; cc.Level >= 1; cc = cc.Parent() {
		if h.sets[cc.Level][cc.Index].Touch(c) {
			hitLevel = cc.Level
			break
		}
		h.Misses[cc.Level]++
	}
	maxLevel := h.machine.MaxLevel()
	switch {
	case hitLevel == maxLevel:
		return h.costs.PrivateHitPerChunk
	case hitLevel > 0:
		return h.costs.SharedHitPerChunk
	default:
		home := h.mem.Home(c, h.machine.NUMANodeOfWorker(w))
		if home != h.machine.NUMANodeOfWorker(w) && h.machine.NumNUMANodes() > 1 {
			h.RemoteAccesses++
			return h.costs.RemotePerChunk
		}
		return h.costs.MemPerChunk
	}
}

// AccessRange simulates worker w sweeping the given access specs
// sequentially and returns the total cost.
func (h *Hierarchy) AccessRange(w int, specs []AccessSpec) float64 {
	var cost float64
	for _, sp := range specs {
		for p := 0; p < sp.Passes; p++ {
			for i := int32(0); i < sp.Seg.nchk; i++ {
				cost += h.Access(w, sp.Seg.first+Chunk(i))
			}
		}
	}
	return cost
}

// MissesAtPrivate returns the total misses at the private (leaf) cache
// level — the analogue of the paper's L2 miss counts (Fig. 18).
func (h *Hierarchy) MissesAtPrivate() int64 { return h.Misses[h.machine.MaxLevel()] }

// MissesAtShared returns the total misses at cache level 1 — the analogue
// of the paper's L3 miss counts (Fig. 18).
func (h *Hierarchy) MissesAtShared() int64 {
	if len(h.Misses) > 1 {
		return h.Misses[1]
	}
	return 0
}

// FlushAll empties every cache (used between repetitions when measuring
// cold-cache behaviour).
func (h *Hierarchy) FlushAll() {
	for level := 1; level < len(h.sets); level++ {
		for _, s := range h.sets[level] {
			s.Flush()
		}
	}
}

// ResetCounters zeroes the miss/access counters without flushing content
// (used to exclude warm-up repetitions, as the paper does, §6.1).
func (h *Hierarchy) ResetCounters() {
	for i := range h.Misses {
		h.Misses[i] = 0
	}
	h.Accesses = 0
	h.RemoteAccesses = 0
}
