package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// tracedRun executes one balanced-tree run under mode with a tracer.
func tracedRun(t *testing.T, mode Mode) (*trace.Tracer, RunResult) {
	t.Helper()
	m := topology.TwoLevel16()
	tr := trace.New(m.NumWorkers(), 1<<16)
	eng := NewEngine(Config{Machine: m, Mode: mode, Seed: 11, Tracer: tr})
	seg := eng.Memory().Alloc("d", 8<<20)
	res := eng.Run(balancedTree(seg, 7, 2000))
	return tr, res
}

// TestSimTraceMatchesRunResult verifies the simulator emits the shared
// event schema with counts identical to its own RunResult accounting (the
// satellite unification: one set of names and meanings across RunResult,
// trace.Summary, and the runtime's Stats).
func TestSimTraceMatchesRunResult(t *testing.T) {
	for _, mode := range []Mode{SLWS, SLADWS, MLWS, MLADWS} {
		tr, res := tracedRun(t, mode)
		sum := tr.Summarize()
		if sum.Drops != 0 {
			t.Fatalf("%v: %d events dropped", mode, sum.Drops)
		}
		if sum.Tasks != res.Tasks {
			t.Errorf("%v: trace tasks=%d result tasks=%d", mode, sum.Tasks, res.Tasks)
		}
		if sum.Steals != res.Steals {
			t.Errorf("%v: trace steals=%d result steals=%d", mode, sum.Steals, res.Steals)
		}
		if sum.StealAttempts != res.StealAttempts {
			t.Errorf("%v: trace attempts=%d result attempts=%d", mode, sum.StealAttempts, res.StealAttempts)
		}
		if sum.Migrations != res.Migrations {
			t.Errorf("%v: trace migrations=%d result migrations=%d", mode, sum.Migrations, res.Migrations)
		}
		if mode.IsMultiLevel() {
			if sum.Ties != res.Ties || sum.Flattens != res.Flattens {
				t.Errorf("%v: trace ties/flattens=%d/%d result=%d/%d",
					mode, sum.Ties, sum.Flattens, res.Ties, res.Flattens)
			}
		}
		if mode.IsADWS() && sum.Steals > 0 && sum.DominantGroupHitRate() != 1 {
			t.Errorf("%v: dominant-group hit rate = %v, want 1", mode, sum.DominantGroupHitRate())
		}
	}
}

// TestSimChromeTrace renders a simulated run as Chrome trace JSON.
func TestSimChromeTrace(t *testing.T) {
	tr, _ := tracedRun(t, MLADWS)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
}

// TestSimTraceDeterministic runs the same simulation twice and requires
// byte-identical event streams — the simulator is fully deterministic, so
// its traces are too.
func TestSimTraceDeterministic(t *testing.T) {
	a, _ := tracedRun(t, SLADWS)
	b, _ := tracedRun(t, SLADWS)
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 || len(ea) != len(eb) {
		t.Fatalf("event counts differ or empty: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}
