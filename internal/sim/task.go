package sim

import (
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
)

// Body is the code of a simulated task. When the task starts, its Body is
// invoked once with a builder and declares, in order, the sequence of
// compute steps and task-group (fork-join) steps the task performs. The
// shape may depend on deterministic pseudo-data decided inside the Body,
// but not on the results of child tasks — which matches all the paper's
// benchmarks, whose control flow is fixed once the input is fixed.
type Body func(b *B)

// B builds the step list of one task.
type B struct {
	steps []step
}

// step is one unit of a task's execution: exactly one of compute or group
// is set.
type step struct {
	compute *computeStep
	group   *GroupSpec
}

type computeStep struct {
	work     float64 // pure compute cost, in virtual time units
	accesses []AccessSpec
}

// Compute declares a sequential compute step costing `work` virtual-time
// units of pure computation plus the memory cost of the given accesses.
func (b *B) Compute(work float64, accesses ...AccessSpec) {
	b.steps = append(b.steps, step{compute: &computeStep{work: work, accesses: accesses}})
}

// Fork declares a task group: all children are spawned, and the task
// resumes after every child (and its descendants) has completed. A task
// may declare several Fork steps; they execute one after another (§2.2:
// task groups within a task cannot overlap).
func (b *B) Fork(g GroupSpec) {
	gs := g
	b.steps = append(b.steps, step{group: &gs})
}

// GroupSpec describes one task group with the ADWS programming hints of
// the paper's Fig. 2b.
type GroupSpec struct {
	// Work is the total work hint for the group (w_all). Zero means
	// unknown: ADWS then assumes equal work per child (§6.4).
	Work float64
	// Size is the working-set-size hint in bytes, used by multi-level
	// scheduling. Zero means unknown; the group is then never tied below
	// the root.
	Size int64
	// Children are the tasks of the group, in declaration order.
	Children []ChildSpec
}

// ChildSpec is one child task of a group.
type ChildSpec struct {
	// Work is the work hint for this child (w1..wN in Fig. 2b).
	Work float64
	// Size is the child's own working-set size in bytes, used by the
	// space-bounded scheduler (which assigns sizes to tasks rather than
	// task groups, §6.1). Zero derives a share of the group's Size from
	// the work hints.
	Size int64
	// Body is the child's code.
	Body Body
}

// Child is a convenience constructor.
func Child(work float64, body Body) ChildSpec { return ChildSpec{Work: work, Body: body} }

// taskState tracks a task through its life cycle.
type taskState int

const (
	taskReady taskState = iota
	taskRunning
	taskWaiting
	taskDone
)

// Task is a simulated task instance.
type Task struct {
	id   int64
	body Body
	// built reports whether body has been expanded into steps.
	built bool
	steps []step
	// next is the index of the next step to execute.
	next  int
	state taskState

	// workHint is the work hint this task was declared with.
	workHint float64

	// Scheduling state.
	// dom is the scheduling domain the task currently belongs to.
	dom *domain
	// rng is the task's distribution range within dom (ADWS domains only).
	rng sched.Range
	// group is the enclosing cross-worker group node (ADWS domains only).
	group *sched.GroupNode
	// depth is the task depth (index into the depth-separated queues).
	depth int
	// inMigrationQueue records which queue family the task was delivered
	// through, so its non-stolen descendants stay in the same family
	// (§3.2: "descendants of tasks that are migrated to migration queues
	// are pushed into the migration queues unless stolen").
	inMigrationQueue bool
	// crossWorker records whether the task was cross-worker at spawn time,
	// for dominant-group accounting on completion.
	crossWorker bool

	// parent bookkeeping: the group instance this task is a child of.
	parentGroup *activeGroup
	// waitingOn is the group instance whose completion will resume this
	// task (set while state == taskWaiting).
	waitingOn *activeGroup
	// execWorker is the worker currently (or last) executing the task; a
	// suspended task resumes on this worker (its "stack" lives there).
	execWorker int

	// ent is the scheduling entity the task is currently associated with:
	// where it was enqueued, stolen to, or resumed on.
	ent *entity

	// Space-bounded scheduler state (SB mode only).
	// sbSize is the task's working-set size hint in bytes.
	sbSize int64
	// sbCache is the cache the task is anchored under; its descendants may
	// only execute on workers sharing this cache.
	sbCache *topology.Cache
	// sbAnchored reports whether the anchoring decision already ran.
	sbAnchored bool
	// sbRes lists the capacity reservations this task holds, released on
	// completion.
	sbRes []sbReservation
}

// activeGroup is a running task group: the dynamic instance of a Fork step.
type activeGroup struct {
	spec   *GroupSpec
	parent *Task
	// remaining counts unfinished children.
	remaining int
	// node is the cross-worker group tree node (ADWS only, nil otherwise).
	node *sched.GroupNode
	// dom is the domain the children were spawned into.
	dom *domain
	// tiedTo is the cache this group was tied to under multi-level
	// scheduling (nil if untied).
	tiedTo *mlCache
	// flattened is the flattened domain created for this group (nil if
	// no flattening happened).
	flattened *domain
}
