package sim

import (
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
)

// entity is one scheduling slot of a domain. In a worker-level domain an
// entity is permanently bound to one worker; in a cache-level domain it
// represents a cache and is acted on by the cache's current leader.
type entity struct {
	dom *domain
	// idx is the physical index of the entity within the domain.
	idx int
	// queues holds the tasks assigned to this entity.
	queues sched.QueueSet[*Task]
	// cache is the mlCache this entity represents (nil for worker-level
	// domains).
	cache *mlCache
	// worker is the fixed acting worker for worker-level domains (-1 for
	// cache-level domains, where the acting worker is the cache leader).
	worker int
	// lastGroup is the cross-worker group of the last ADWS task this
	// entity executed; it anchors the dominant-group walk for steals.
	lastGroup *sched.GroupNode
}

// actingWorker returns the worker currently acting for this entity, or -1.
func (e *entity) actingWorker() int {
	if e.cache != nil {
		return e.cache.leader
	}
	return e.worker
}

// domain is one single-level scheduling arena: a set of entities plus a
// policy (ADWS or conventional WS). The root domain exists for the whole
// run; multi-level scheduling creates and destroys domains as task groups
// are tied to caches or hierarchies are flattened.
type domain struct {
	id       int
	adws     bool
	entities []*entity
	// offset is the logical index of entity 0's first logical slot: the
	// domain's distribution ranges live on a logically unwrapped axis
	// [offset, offset+n) and physical entity = logical mod n. A tie by a
	// leader whose cache is not the first child starts its instance at its
	// own position; the cyclic mapping keeps the paper's floor arithmetic
	// intact.
	offset int
	// createdBy is the task group whose tie or flattening created this
	// domain (nil for the root domain).
	createdBy *activeGroup
	// level is the cache level of the entities (worker-level domains use
	// the machine's leaf level).
	level int
	// flattenBase, for flattened domains, records the caches at the level
	// where flattening was decided, to restore leadership afterwards.
	flattened bool
	// closed marks a domain whose work is finished; entities reject pushes.
	closed bool
}

// numEntities returns the number of entities.
func (d *domain) numEntities() int { return len(d.entities) }

// physical maps a logical entity index to a physical one.
func (d *domain) physical(logical int) int {
	n := len(d.entities)
	p := logical % n
	if p < 0 {
		p += n
	}
	return p
}

// logicalOf maps a physical entity index to its canonical logical index in
// [offset, offset+n).
func (d *domain) logicalOf(physical int) int {
	n := len(d.entities)
	l := physical
	for l < d.offset {
		l += n
	}
	for l >= d.offset+n {
		l -= n
	}
	return l
}

// fullRange returns the distribution range covering the whole domain.
func (d *domain) fullRange() sched.Range {
	return sched.FullRange(d.offset, len(d.entities))
}

// mlCache is the per-cache state of multi-level scheduling.
type mlCache struct {
	cache *topology.Cache
	// leader is the worker currently leading this cache (-1 if absent).
	leader int
	// tied is the task group currently tied to this cache (nil if none).
	tied *activeGroup
	// entity is this cache's entity in the currently active domain over
	// its parent's children (nil while no such domain exists).
	entity *entity
	// childDomain is the domain over this cache's children while a group
	// is tied here (nil otherwise).
	childDomain *domain
}
