package sim

import (
	"github.com/parlab/adws/internal/sched"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// traceBoundary mirrors the runtime's multi-level boundary events.
func (e *Engine) traceBoundary(worker int, kind int32, d *domain, level int) {
	tr := e.cfg.Tracer
	if tr == nil {
		return
	}
	var id int64
	if d != nil {
		id = int64(d.id)
	}
	tr.Record(worker, trace.Event{Type: trace.EvBoundary, Time: e.vt(),
		Victim: kind, Depth: int32(level), Task: id})
}

// fork executes a task group step of task t on worker w: it applies the
// multi-level tie/flatten decisions, spawns the children under the
// domain's policy, and either suspends t or starts an inline child.
func (e *Engine) fork(w *worker, t *Task, spec *GroupSpec) {
	if len(spec.Children) == 0 {
		e.schedule(w, e.now)
		return
	}
	if e.cfg.Mode == SB {
		e.forkSB(w, t, spec)
		return
	}

	ag := &activeGroup{spec: spec, parent: t, remaining: len(spec.Children)}
	dom := t.dom
	parentRange := t.rng
	parentEnt := t.ent
	fresh := false
	var oh float64

	if e.cfg.Mode.IsMultiLevel() && !dom.flattened {
		if nd, rng, ent, kind := e.mlDecide(w, t, spec, ag); nd != nil {
			dom, parentRange, parentEnt, fresh = nd, rng, ent, true
			oh += e.costs.TieOverhead
			if kind == mlTied {
				e.ties++
			} else {
				e.flattens++
			}
		}
	}

	var inline *Task
	if dom.adws {
		inline = e.spawnADWS(w, t, ag, dom, parentRange, parentEnt, fresh, &oh)
	} else {
		inline = e.spawnWS(w, t, ag, dom, parentEnt, &oh)
	}

	t.state = taskWaiting
	t.waitingOn = ag
	ag.dom = dom
	w.overheadTime += oh
	if tr := e.cfg.Tracer; tr != nil {
		tr.Record(w.id, trace.Event{Type: trace.EvWaitEnter, Time: e.vt(),
			Task: e.ordinal(t), Depth: int32(t.depth)})
	}
	if inline != nil {
		inline.state = taskRunning
		inline.execWorker = w.id
		w.current = inline
		if inline.group != nil && inline.ent != nil {
			inline.ent.lastGroup = inline.group
		}
	} else {
		w.current = nil
	}
	e.wakeDomain(dom)
	e.schedule(w, e.now+oh)
}

// spawnADWS implements deterministic task mapping (paper Fig. 7): split the
// parent range by work hints, migrate type-(1) children, keep type-(3)
// children locally, and return the type-(2) child for immediate execution.
func (e *Engine) spawnADWS(w *worker, t *Task, ag *activeGroup, dom *domain, parentRange sched.Range, parentEnt *entity, fresh bool, oh *float64) *Task {
	spec := ag.spec
	iExec := dom.logicalOf(parentEnt.idx)

	crossGroup := parentRange.IsCrossWorker()
	childGroup := t.group
	childDepth := t.depth
	if fresh {
		childGroup, childDepth = nil, 0
	}
	if crossGroup {
		var node *sched.GroupNode
		if fresh || childGroup == nil {
			node = sched.NewRootGroup(parentRange)
		} else {
			node = childGroup.NewChildGroup(parentRange)
		}
		ag.node = node
		childGroup = node
		childDepth = node.Depth()
	}

	var ranges []sched.Range
	if e.cfg.IgnoreWorkHints || spec.Work <= 0 {
		ranges = sched.SplitEqual(parentRange, len(spec.Children))
	} else {
		hints := make([]float64, len(spec.Children))
		for k, c := range spec.Children {
			hints[k] = c.Work
		}
		ranges = sched.SplitByHints(parentRange, spec.Work, hints)
	}

	var inline *Task
	for k, cs := range spec.Children {
		child := e.newTask(cs.Body, cs.Work)
		child.dom = dom
		child.rng = ranges[k]
		child.group = childGroup
		child.depth = childDepth
		child.parentGroup = ag
		child.crossWorker = crossGroup && ranges[k].IsCrossWorker()
		child.sbSize = cs.Size
		*oh += e.costs.SpawnOverhead
		switch sched.Classify(ranges[k], iExec) {
		case sched.KindMigrate:
			ent := dom.entities[dom.physical(ranges[k].Owner())]
			child.ent = ent
			child.inMigrationQueue = true
			if tr := e.cfg.Tracer; tr != nil {
				tr.Record(w.id, trace.Event{Type: trace.EvMigration, Time: e.vt(),
					Self: int32(iExec), Victim: int32(ranges[k].Owner()),
					Task: e.ordinal(child), Depth: int32(childDepth),
					RangeLo: ranges[k].X, RangeHi: ranges[k].Y})
			}
			ent.queues.PushMigration(childDepth, child)
			*oh += e.costs.MigrateOverhead
			w.migrationsOut++
			if aw := ent.actingWorker(); aw >= 0 {
				e.wake(e.workers[aw], e.now)
			}
		case sched.KindExecute:
			child.ent = parentEnt
			inline = child
		case sched.KindLocal:
			child.ent = parentEnt
			child.inMigrationQueue = t.inMigrationQueue && !fresh
			if child.inMigrationQueue {
				parentEnt.queues.PushMigration(childDepth, child)
			} else {
				parentEnt.queues.PushPrimary(childDepth, child)
			}
		}
	}
	return inline
}

// spawnWS implements conventional work-first random work stealing: the
// first child is executed immediately and the rest are pushed onto the
// spawning entity's deque so that the owner pops them in declaration order
// while thieves steal the oldest.
func (e *Engine) spawnWS(w *worker, t *Task, ag *activeGroup, dom *domain, parentEnt *entity, oh *float64) *Task {
	spec := ag.spec
	var inline *Task
	tasks := make([]*Task, len(spec.Children))
	for k, cs := range spec.Children {
		child := e.newTask(cs.Body, cs.Work)
		child.dom = dom
		child.parentGroup = ag
		child.ent = parentEnt
		child.sbSize = cs.Size
		tasks[k] = child
		*oh += e.costs.SpawnOverhead
	}
	inline = tasks[0]
	for k := len(tasks) - 1; k >= 1; k-- {
		parentEnt.queues.PushPrimary(0, tasks[k])
	}
	return inline
}

// mlKind distinguishes the two domain-creating multi-level decisions.
type mlKind int

const (
	mlTied mlKind = iota
	mlFlattened
)

// mlDecide applies the multi-level scheduling decisions for a task group
// (Fig. 13's EXECUTETASKGROUP composed with Fig. 15's flattening).
//
// Cache-hierarchy flattening is checked first (§5: a working set that fits
// the aggregate capacity of the caches in the group's distribution range
// is scheduled by a single-level scheduler over their descendants;
// "otherwise, we continue to schedule TG at the current cache level").
// When flattening bottoms out at the leaf level, a flattened worker-level
// domain runs the group. When it stops at an intermediate level (only
// possible on machines with three or more cache levels), we approximate it
// by tying the group to the worker's current cache when it fits — which
// descends exactly one level and lets multi-level scheduling continue
// below (documented deviation, DESIGN.md). On two-level machines like the
// paper's, leaf flattening subsumes tying: a group that fits one shared
// cache and whose range has narrowed to that cache flattens over exactly
// that cache's workers, which is the tie of Fig. 13.
//
// It returns the new domain (nil to stay), the parent's range in it, the
// parent's entity in it, and which decision was taken.
func (e *Engine) mlDecide(w *worker, t *Task, spec *GroupSpec, ag *activeGroup) (*domain, sched.Range, *entity, mlKind) {
	if spec.Size <= 0 {
		return nil, sched.Range{}, nil, 0
	}
	dom := t.dom
	// Cache-hierarchy flattening applies to multi-level ADWS only (§5:
	// flattening other strategies has limited benefit, and WS tasks carry
	// no distribution range to derive the candidate span from).
	if dom.adws && dom.level < e.machine.MaxLevel() && len(dom.entities) > 0 && dom.entities[0].cache != nil {
		lo := t.rng.Owner()
		hi := t.rng.Last() - 1
		if hi < lo {
			hi = lo
		}
		var cand []*topology.Cache
		for l := lo; l <= hi && l-lo < len(dom.entities); l++ {
			cand = append(cand, dom.entities[dom.physical(l)].cache.cache)
		}
		lnext, caches := sched.FlattenOverCaches(e.machine, spec.Size, dom.level, cand)
		if caches != nil && lnext == e.machine.MaxLevel() {
			d, rng, ent := e.flatten(w, caches, ag)
			return d, rng, ent, mlFlattened
		}
	}
	// Tie to the worker's current cache (Fig. 13) when flattening did not
	// bottom out at the leaves.
	c := w.leads
	if c != nil && c.cache.Level < e.machine.MaxLevel() && c.tied == nil &&
		spec.Size <= c.cache.Capacity {
		d, rng, ent := e.tie(w, c, ag)
		return d, rng, ent, mlTied
	}
	return nil, sched.Range{}, nil, 0
}

// tie ties ag to cache c (Fig. 13): the leading worker descends to lead
// the child cache on its path, and a fresh domain over c's children
// schedules ag's children.
func (e *Engine) tie(w *worker, c *mlCache, ag *activeGroup) (*domain, sched.Range, *entity) {
	c.tied = ag
	ag.tiedTo = c
	children := c.cache.Children()
	cw := e.machine.CacheOfWorkerAtLevel(w.id, c.cache.Level+1)
	pos := cw.Index - children[0].Index

	d := e.newDomain(e.cfg.Mode.IsADWS(), pos)
	d.createdBy = ag
	d.level = c.cache.Level + 1
	for i, ch := range children {
		mc := e.mlCaches[ch.Level][ch.Index]
		ent := &entity{dom: d, idx: i, cache: mc, worker: -1}
		d.entities = append(d.entities, ent)
		mc.entity = ent
	}
	c.childDomain = d

	// Leadership descends (Fig. 13 line 56).
	mcw := e.mlCaches[cw.Level][cw.Index]
	c.leader = -1
	mcw.leader = w.id
	w.leads = mcw

	e.traceBoundary(w.id, trace.BoundaryTie, d, c.cache.Level)
	rng := d.fullRange()
	return d, rng, d.entities[pos]
}

// untie restores cache c when its tied group completes (Fig. 13 line 58):
// the worker that will execute the continuation becomes c's leader again.
func (e *Engine) untie(ag *activeGroup) {
	c := ag.tiedTo
	ag.tiedTo = nil
	c.tied = nil
	tornDown := c.childDomain
	if c.childDomain != nil {
		c.childDomain.closed = true
		c.childDomain = nil
	}
	wid := ag.parent.execWorker
	w := e.workers[wid]
	if w.leads != nil && w.leads != c {
		w.leads.leader = -1
	}
	c.leader = wid
	w.leads = c
	e.traceBoundary(wid, trace.BoundaryUntie, tornDown, c.cache.Level)
}

// flatten creates a flattened leaf-level domain over the given leaf caches
// (paper Fig. 15). Every covered worker participates directly; leadership
// is untouched, so the spanned caches resume their roles when the
// flattened group completes.
func (e *Engine) flatten(w *worker, caches []*topology.Cache, ag *activeGroup) (*domain, sched.Range, *entity) {
	d := e.newDomain(e.cfg.Mode.IsADWS(), 0)
	d.createdBy = ag
	d.level = e.machine.MaxLevel()
	d.flattened = true
	pos := -1
	for i, ch := range caches {
		wid := ch.FirstWorker()
		ent := &entity{dom: d, idx: i, worker: wid}
		d.entities = append(d.entities, ent)
		e.workers[wid].fdEnts = append(e.workers[wid].fdEnts, ent)
		if wid == w.id {
			pos = i
		}
	}
	if pos < 0 {
		// The deciding worker is not under the flattened caches; anchor the
		// range at entity 0. (Cannot happen for ranges produced by ADWS,
		// but keep the invariant executor==owner best-effort.)
		pos = 0
	}
	d.offset = pos
	ag.flattened = d
	e.traceBoundary(w.id, trace.BoundaryFlatten, d, d.level)
	return d, d.fullRange(), d.entities[pos]
}

// unflatten tears down a flattened domain when its group completes.
func (e *Engine) unflatten(ag *activeGroup) {
	d := ag.flattened
	ag.flattened = nil
	d.closed = true
	e.traceBoundary(ag.parent.execWorker, trace.BoundaryUnflatten, d, d.level)
	for _, ent := range d.entities {
		w := e.workers[ent.worker]
		for i, fe := range w.fdEnts {
			if fe == ent {
				w.fdEnts = append(w.fdEnts[:i], w.fdEnts[i+1:]...)
				break
			}
		}
	}
}

// wakeDomain wakes the acting workers of every entity in d so newly pushed
// work is noticed promptly.
func (e *Engine) wakeDomain(d *domain) {
	for _, ent := range d.entities {
		if aw := ent.actingWorker(); aw >= 0 {
			e.wake(e.workers[aw], e.now)
		}
	}
}
