// Package sim is a deterministic discrete-event simulator for nested
// parallel computations on a machine with a tree of caches. It executes
// task graphs under the five schedulers the ADWS paper evaluates (SL-WS,
// SL-ADWS, ML-WS, ML-ADWS, and a space-bounded scheduler) in virtual time,
// with a chunk-granular LRU cache model that produces per-level miss
// counts, a NUMA memory model with interleave/first-touch policies, and
// per-worker busy/idle/overhead accounting matching the paper's profiling
// (§6.1).
//
// The simulator exists because the paper's evaluation requires a 56-core
// two-socket machine and hardware performance counters; it reproduces the
// shape of the paper's results (who wins where, and why) rather than
// absolute numbers.
package sim

// CostModel holds the virtual-time costs of the simulated machine, in
// abstract nanosecond-like units. Memory costs are charged per chunk (see
// Memory) moved or touched; scheduling costs per operation.
type CostModel struct {
	// PrivateHitPerChunk is the cost of reading one chunk that hits in the
	// worker's private cache.
	PrivateHitPerChunk float64
	// SharedHitPerChunk is the cost when the chunk misses private cache
	// but hits a shared cache on the path to memory.
	SharedHitPerChunk float64
	// MemPerChunk is the cost of fetching a chunk from local main memory.
	MemPerChunk float64
	// RemotePerChunk is the cost of fetching a chunk from a remote NUMA
	// node's memory.
	RemotePerChunk float64

	// SpawnOverhead is charged to a worker for creating one child task.
	SpawnOverhead float64
	// MigrateOverhead is charged for passing a task to another entity's
	// migration queue (ADWS deterministic task mapping).
	MigrateOverhead float64
	// StealAttempt is the cost of one failed steal attempt (including the
	// dominant-group tree walk); it is accounted as idle time.
	StealAttempt float64
	// StealSuccess is the extra cost of a successful steal, accounted as
	// overhead.
	StealSuccess float64
	// IdlePoll is how long an idle worker waits before re-polling when it
	// found no victim at all.
	IdlePoll float64
	// ResumeOverhead is charged when a suspended task is resumed.
	ResumeOverhead float64
	// TieOverhead is charged when a task group is tied to a cache or a
	// hierarchy is flattened (multi-level scheduling bookkeeping).
	TieOverhead float64
}

// DefaultCosts returns the calibrated default cost model. The ratios
// between the memory levels (1 : 2 : 6 : 9) approximate the Cascade Lake
// machine of the paper (L2 : L3 : local DRAM : remote DRAM bandwidth-bound
// chunk transfer costs).
func DefaultCosts() CostModel {
	return CostModel{
		PrivateHitPerChunk: 1000,
		SharedHitPerChunk:  2000,
		MemPerChunk:        6000,
		RemotePerChunk:     9000,
		SpawnOverhead:      80,
		MigrateOverhead:    150,
		StealAttempt:       250,
		StealSuccess:       600,
		IdlePoll:           500,
		ResumeOverhead:     120,
		TieOverhead:        100,
	}
}
