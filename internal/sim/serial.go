package sim

import "github.com/parlab/adws/internal/topology"

// SerialResult is the outcome of a serial reference execution.
type SerialResult struct {
	Time                        float64
	PrivateMisses, SharedMisses int64
	Accesses                    int64
}

// RunSerial executes the body depth-first on worker 0 with the machine's
// cache model, the way the paper measures serial reference times and the
// serial miss counts of Fig. 18 (run with --localalloc on a fixed core).
// The engine must be configured with the same machine and cost model as
// the parallel runs; its scheduler mode is irrelevant for serial
// execution. Cache contents persist across calls.
func RunSerial(m *topology.Machine, costs CostModel, numa NUMAPolicy, reps int, makeBody func(mem *Memory) Body) SerialResult {
	if reps < 1 {
		reps = 1
	}
	cm := costs
	if cm == (CostModel{}) {
		cm = DefaultCosts()
	}
	mem := NewMemory(m.NumNUMANodes(), numa)
	hier := NewHierarchy(m, mem, &cm)
	body := makeBody(mem)

	var res SerialResult
	var exec func(b Body)
	var total float64
	exec = func(b Body) {
		bb := &B{}
		if b != nil {
			b(bb)
		}
		for _, st := range bb.steps {
			switch {
			case st.compute != nil:
				total += st.compute.work + hier.AccessRange(0, st.compute.accesses)
			case st.group != nil:
				for _, c := range st.group.Children {
					exec(c.Body)
				}
			}
		}
	}
	for rep := 0; rep < reps; rep++ {
		if rep == reps-1 {
			// Measure only the final (warm) repetition, like the paper's
			// warm-up discard.
			hier.ResetCounters()
			total = 0
		}
		exec(body)
	}
	res.Time = total
	res.PrivateMisses = hier.MissesAtPrivate()
	res.SharedMisses = hier.MissesAtShared()
	res.Accesses = hier.Accesses
	return res
}
