package server

import (
	"errors"
	"time"
)

// SLO-aware admission. The FIFO queue treats every job the same, so a
// latency-critical job queued behind a batch backlog misses its deadline
// even when the pool has capacity. PriorityAdmitter keeps the server's
// bounded-queue backpressure but reorders dispatch by declared job
// properties — priority class, deadline, work hint — the same
// determinism-from-declared-hints principle ADWS applies to task
// placement, lifted to the admission queue.

// Built-in priority class names, highest priority first. Servers may
// configure any class list; these are the defaults (see DefaultClasses).
const (
	ClassInteractive = "interactive"
	ClassStandard    = "standard"
	ClassBatch       = "batch"
)

// DefaultClasses returns the default priority-class list, highest
// priority first.
func DefaultClasses() []string {
	return []string{ClassInteractive, ClassStandard, ClassBatch}
}

var (
	// ErrRateLimited fast-rejects a submission whose tenant has exhausted
	// its token bucket.
	ErrRateLimited = errors.New("server: rate limited: tenant token bucket empty")
	// ErrUnknownClass rejects a submission naming a priority class the
	// server was not configured with.
	ErrUnknownClass = errors.New("server: unknown priority class")
)

// DefaultAging is the default cross-class aging quantum: a queued job is
// promoted one priority level for every DefaultAging it has waited, so a
// steady interactive stream cannot starve batch work forever.
const DefaultAging = 2 * time.Second

// tokenBucket is one tenant's submit-rate bucket. Refill happens lazily
// on each Admit; state is guarded by the server's mutex like the rest of
// the admitter.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// PriorityAdmitter is the SLO-aware admission policy:
//
//   - strict priority across classes (Classes[0] highest), softened by
//     aging: a job's effective level drops one class per Aging waited,
//     clamped at the highest class, so lower classes cannot starve;
//   - earliest-deadline-first within a level (no deadline sorts last);
//   - shortest-job-first by work hint as the tie-break, then submission
//     order, keeping dispatch deterministic for identical hints.
//
// Per-tenant token buckets bound the submit rate before queueing: each
// tenant accrues TenantRate tokens/second up to TenantBurst, one token
// per admitted job; an empty bucket fast-rejects with ErrRateLimited.
//
// All methods run under the server's mutex (see Admitter), so the
// admitter keeps plain maps without internal locking.
type PriorityAdmitter struct {
	// MaxInFlight and MaxQueue bound running and queued jobs exactly like
	// BoundedFIFO.
	MaxInFlight, MaxQueue int
	// Aging is the promotion quantum (<= 0: DefaultAging). A queued job's
	// effective level is its class index minus waited/Aging.
	Aging time.Duration
	// TenantRate is the per-tenant token refill rate in jobs/second;
	// <= 0 disables rate limiting.
	TenantRate float64
	// TenantBurst caps a tenant's bucket (<= 0: max(1, TenantRate)).
	TenantBurst float64

	classIdx map[string]int
	buckets  map[string]*tokenBucket
}

// NewPriorityAdmitter builds a PriorityAdmitter over classes (highest
// priority first; must be non-empty and duplicate-free) with the given
// in-flight and queue bounds.
func NewPriorityAdmitter(classes []string, maxInFlight, maxQueue int) *PriorityAdmitter {
	idx := make(map[string]int, len(classes))
	for i, c := range classes {
		if c == "" {
			panic("server: empty priority class name")
		}
		if _, dup := idx[c]; dup {
			panic("server: duplicate priority class " + c)
		}
		idx[c] = i
	}
	if len(idx) == 0 {
		panic("server: PriorityAdmitter needs at least one class")
	}
	return &PriorityAdmitter{
		MaxInFlight: maxInFlight,
		MaxQueue:    maxQueue,
		classIdx:    idx,
		buckets:     make(map[string]*tokenBucket),
	}
}

// Admit bounds the queue depth (ErrOverloaded) and the submitting
// tenant's rate (ErrRateLimited). The class itself is validated by the
// server before Admit runs.
func (p *PriorityAdmitter) Admit(h Hint, now time.Time, queued, running int) error {
	if queued >= p.MaxQueue {
		return ErrOverloaded
	}
	if p.TenantRate <= 0 {
		return nil
	}
	burst := p.TenantBurst
	if burst <= 0 {
		burst = p.TenantRate
		if burst < 1 {
			burst = 1
		}
	}
	b := p.buckets[h.Tenant]
	if b == nil {
		b = &tokenBucket{tokens: burst, last: now}
		p.buckets[h.Tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * p.TenantRate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return ErrRateLimited
	}
	b.tokens--
	return nil
}

// CanDispatch caps concurrently running jobs at MaxInFlight.
func (p *PriorityAdmitter) CanDispatch(running int) bool { return running < p.MaxInFlight }

// Next picks the queued job with the best (lowest) effective level,
// breaking ties by earliest deadline, then smallest work hint, then
// submission order.
func (p *PriorityAdmitter) Next(now time.Time, queue []*Job) int {
	best := 0
	for i := 1; i < len(queue); i++ {
		if p.before(now, queue[i], queue[best]) {
			best = i
		}
	}
	return best
}

// before reports whether a should dispatch ahead of b.
func (p *PriorityAdmitter) before(now time.Time, a, b *Job) bool {
	if la, lb := p.level(now, a), p.level(now, b); la != lb {
		return la < lb
	}
	da, db := a.Hint().Deadline, b.Hint().Deadline
	switch {
	case da.IsZero() != db.IsZero():
		return !da.IsZero() // a deadline beats no deadline
	case !da.IsZero() && !da.Equal(db):
		return da.Before(db)
	}
	if wa, wb := effWork(a), effWork(b); wa != wb {
		return wa < wb
	}
	return false // stable: the earlier-submitted (lower index) job wins
}

// level is a job's aged priority level: its class index minus one per
// Aging waited, clamped at 0. Unknown classes (possible only with a
// hand-built Config whose class list disagrees with the admitter's) sort
// after every configured class.
func (p *PriorityAdmitter) level(now time.Time, j *Job) int {
	idx, ok := p.classIdx[j.Hint().Class]
	if !ok {
		idx = len(p.classIdx)
	}
	aging := p.Aging
	if aging <= 0 {
		aging = DefaultAging
	}
	if waited := now.Sub(j.Submitted()); waited > 0 {
		idx -= int(waited / aging)
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// effWork is the hint work with the server's non-positive-means-1 rule
// applied, so hinted and unhinted jobs compare consistently.
func effWork(j *Job) float64 {
	if w := j.Hint().Work; w > 0 {
		return w
	}
	return 1
}
