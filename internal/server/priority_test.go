package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/parlab/adws/internal/runtime"
)

// qjob builds a queued job literal for direct Next ordering tests (the
// admitter reads only hint and submitted).
func qjob(h Hint, submitted time.Time) *Job {
	return &Job{hint: h, submitted: submitted}
}

// TestPriorityOrder pins the dispatch comparator: class priority first,
// EDF within a class (no deadline last), SJF by work hint as tie-break,
// then submission order.
func TestPriorityOrder(t *testing.T) {
	p := NewPriorityAdmitter(DefaultClasses(), 1, 10)
	now := time.Now()
	cases := []struct {
		name  string
		queue []*Job
		want  int
	}{
		{"class beats order", []*Job{
			qjob(Hint{Class: ClassBatch}, now),
			qjob(Hint{Class: ClassInteractive}, now),
		}, 1},
		{"EDF within class", []*Job{
			qjob(Hint{Class: ClassStandard, Deadline: now.Add(3 * time.Second)}, now),
			qjob(Hint{Class: ClassStandard, Deadline: now.Add(1 * time.Second)}, now),
			qjob(Hint{Class: ClassStandard, Deadline: now.Add(2 * time.Second)}, now),
		}, 1},
		{"deadline beats no deadline", []*Job{
			qjob(Hint{Class: ClassStandard}, now),
			qjob(Hint{Class: ClassStandard, Deadline: now.Add(time.Hour)}, now),
		}, 1},
		{"SJF tie-break", []*Job{
			qjob(Hint{Class: ClassStandard, Work: 8}, now),
			qjob(Hint{Class: ClassStandard, Work: 2}, now),
			qjob(Hint{Class: ClassStandard, Work: 4}, now),
		}, 1},
		{"stable on full tie", []*Job{
			qjob(Hint{Class: ClassBatch, Work: 1}, now),
			qjob(Hint{Class: ClassBatch, Work: 1}, now),
		}, 0},
		{"higher class still wins over earlier deadline", []*Job{
			qjob(Hint{Class: ClassBatch, Deadline: now.Add(time.Millisecond)}, now),
			qjob(Hint{Class: ClassInteractive}, now),
		}, 1},
	}
	for _, tc := range cases {
		if got := p.Next(now, tc.queue); got != tc.want {
			t.Errorf("%s: Next = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestPriorityAging pins starvation avoidance: a batch job that has
// waited two aging quanta reaches interactive level and dispatches ahead
// of a fresh interactive job only on the stable-order tie-break — i.e.
// it ties, no longer loses.
func TestPriorityAging(t *testing.T) {
	p := NewPriorityAdmitter(DefaultClasses(), 1, 10)
	p.Aging = time.Second
	now := time.Now()
	aged := qjob(Hint{Class: ClassBatch}, now.Add(-2*time.Second))
	fresh := qjob(Hint{Class: ClassInteractive}, now)
	if got := p.Next(now, []*Job{aged, fresh}); got != 0 {
		t.Errorf("aged batch vs fresh interactive: Next = %d, want 0 (tie, stable order)", got)
	}
	// One quantum of waiting only reaches standard level: still loses.
	half := qjob(Hint{Class: ClassBatch}, now.Add(-time.Second))
	if got := p.Next(now, []*Job{half, fresh}); got != 1 {
		t.Errorf("half-aged batch vs interactive: Next = %d, want 1", got)
	}
}

// TestTenantRateLimit pins the token bucket: burst admits, then
// ErrRateLimited, then refill after enough virtual time.
func TestTenantRateLimit(t *testing.T) {
	p := NewPriorityAdmitter(DefaultClasses(), 1, 100)
	p.TenantRate = 1
	p.TenantBurst = 2
	now := time.Now()
	h := Hint{Class: ClassStandard, Tenant: "alice"}
	for i := 0; i < 2; i++ {
		if err := p.Admit(h, now, 0, 0); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	if err := p.Admit(h, now, 0, 0); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst admit: err = %v, want ErrRateLimited", err)
	}
	// Other tenants have their own bucket.
	if err := p.Admit(Hint{Class: ClassStandard, Tenant: "bob"}, now, 0, 0); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	// One second refills one token.
	if err := p.Admit(h, now.Add(time.Second), 0, 0); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	if err := p.Admit(h, now.Add(time.Second), 0, 0); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("drained again: err = %v, want ErrRateLimited", err)
	}
	// The queue bound still applies before the bucket.
	if err := p.Admit(h, now.Add(time.Hour), 100, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
}

// TestSubmitClassNormalization pins class handling at submit: empty
// class becomes the default, unknown classes are rejected with
// ErrUnknownClass, and per-class counters track the effective class.
func TestSubmitClassNormalization(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{})
	j, err := s.Submit(context.Background(), noop, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	if got := j.Hint().Class; got != ClassStandard {
		t.Errorf("defaulted class = %q, want %q", got, ClassStandard)
	}
	if _, err := s.Submit(context.Background(), noop, Hint{Class: "gold"}); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("unknown class: err = %v, want ErrUnknownClass", err)
	}
	b, err := s.Submit(context.Background(), noop, Hint{Class: ClassBatch})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, b)
	cc := s.ClassCounters()
	if cc[ClassStandard].Submitted != 1 || cc[ClassStandard].Completed != 1 {
		t.Errorf("standard counters = %+v", cc[ClassStandard])
	}
	if cc[ClassBatch].Submitted != 1 || cc[ClassBatch].Completed != 1 {
		t.Errorf("batch counters = %+v", cc[ClassBatch])
	}
	if c := s.Counters(); c.Rejected != 1 {
		t.Errorf("aggregate Rejected = %d, want 1 (the unknown class)", c.Rejected)
	}
}

// TestPastDeadlineRejectedSynchronously pins the bugfix for deadlines
// already in the past: Submit fails immediately with
// context.DeadlineExceeded and the job never occupies a queue slot.
func TestPastDeadlineRejectedSynchronously(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 1})
	_, err := s.Submit(context.Background(), noop, Hint{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("past-deadline Submit: err = %v, want context.DeadlineExceeded", err)
	}
	c := s.Counters()
	if c.Submitted != 0 || c.Rejected != 1 {
		t.Errorf("counters = %+v, want Submitted 0 / Rejected 1", c)
	}
	if queued, running := s.InFlight(); queued != 0 || running != 0 {
		t.Errorf("rejected job left in-flight state: %d queued, %d running", queued, running)
	}
	// An admissible job still goes through afterwards.
	j, err := s.Submit(context.Background(), noop, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
}

// TestExpiredQueueEntriesDoNotReject pins the bugfix for expired jobs
// pinning bounded-FIFO slots: even when the prompt AfterFunc watcher is
// out of the picture (simulated by detaching it), a dead queue entry
// must not cause ErrOverloaded for the next submission — Submit reaps
// expired entries before consulting the Admitter.
func TestExpiredQueueEntriesDoNotReject(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 1})
	release := make(chan struct{})
	defer close(release)
	blocker(t, s, release)

	dead, err := s.Submit(context.Background(), noop, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a watcher that has not fired yet: detach it, then cancel.
	// The entry is now queued with a done context and nothing to clean it
	// up except the reap-on-insert/dequeue paths under test.
	s.mu.Lock()
	if dead.stopWatch == nil {
		s.mu.Unlock()
		t.Fatal("queued job has no watcher to detach")
	}
	dead.stopWatch()
	dead.stopWatch = nil
	s.mu.Unlock()
	dead.cancel()

	j, err := s.Submit(context.Background(), noop, Hint{})
	if err != nil {
		t.Fatalf("Submit after expired entry: err = %v, want admit", err)
	}
	wait(t, dead)
	if dead.State() != Canceled {
		t.Errorf("dead entry state = %v, want Canceled", dead.State())
	}
	if j.State() == Canceled {
		t.Errorf("replacement job was canceled")
	}
}

// TestSLODispatchOrder pins end-to-end SLO dispatch: with one running
// slot pinned, queued jobs dispatch interactive before standard before
// batch regardless of submission order, and EDF orders within a class.
func TestSLODispatchOrder(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{
		MaxInFlight:     1,
		MaxQueue:        10,
		AdmissionPolicy: AdmitSLO,
		Aging:           time.Hour, // effectively off for this test
	})
	release := make(chan struct{})
	b := blocker(t, s, release)

	var mu sync.Mutex
	var order []string
	body := func(tag string) func(*runtime.Ctx) error {
		return func(*runtime.Ctx) error {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return nil
		}
	}
	far := time.Now().Add(time.Hour)
	near := time.Now().Add(30 * time.Minute)
	jobs := []*Job{}
	for _, sub := range []struct {
		tag string
		h   Hint
	}{
		{"batch", Hint{Class: ClassBatch}},
		{"standard-far", Hint{Class: ClassStandard, Deadline: far}},
		{"standard-near", Hint{Class: ClassStandard, Deadline: near}},
		{"interactive", Hint{Class: ClassInteractive}},
	} {
		j, err := s.Submit(context.Background(), body(sub.tag), sub.h)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	wait(t, b)
	for _, j := range jobs {
		wait(t, j)
	}
	want := []string{"interactive", "standard-near", "standard-far", "batch"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("ran %d jobs, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestJainByClass pins the fairness gauge: one tenant per class is
// perfectly fair (1); classes without completions are omitted.
func TestJainByClass(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{})
	for _, tenant := range []string{"a", "b"} {
		j, err := s.Submit(context.Background(), noop, Hint{Class: ClassStandard, Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
	}
	jain := s.JainByClass()
	got, ok := jain[ClassStandard]
	if !ok {
		t.Fatal("standard class missing from JainByClass")
	}
	if got <= 0.5 || got > 1 {
		t.Errorf("Jain index = %v, want in (0.5, 1] for two comparable tenants", got)
	}
	if _, ok := jain[ClassBatch]; ok {
		t.Error("batch class reported without completions")
	}
}

// TestDrainExpiredQueuedCanceled pins the Drain semantics satellite:
// jobs whose deadline expires while queued during a drain complete
// Canceled (not Failed), and Drain still returns.
func TestDrainExpiredQueuedCanceled(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 8})
	release := make(chan struct{})
	b := blocker(t, s, release)
	var expiring []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(context.Background(), noop,
			Hint{Deadline: time.Now().Add(30 * time.Millisecond)})
		if err != nil {
			t.Fatal(err)
		}
		expiring = append(expiring, j)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done <- s.Drain(ctx)
	}()
	time.Sleep(60 * time.Millisecond) // let the deadlines lapse mid-drain
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wait(t, b)
	for _, j := range expiring {
		wait(t, j)
		if j.State() != Canceled {
			t.Errorf("expired job %d: state %v err %v, want Canceled", j.ID(), j.State(), j.Err())
		}
		if !errors.Is(j.Err(), context.DeadlineExceeded) {
			t.Errorf("expired job %d: err = %v, want DeadlineExceeded", j.ID(), j.Err())
		}
	}
	if c := s.Counters(); c.Failed != 0 || c.Canceled != 4 {
		t.Errorf("counters = %+v, want Failed 0 / Canceled 4", c)
	}
}

// TestAdmissionRaces exercises Submit/Cancel/Drain/deadline-expiry
// concurrently under -race: no job may end up Failed, and the server
// must drain to empty.
func TestAdmissionRaces(t *testing.T) {
	s, _ := newTestServer(t, 4, Config{
		MaxInFlight:     2,
		MaxQueue:        16,
		AdmissionPolicy: AdmitSLO,
	})
	classes := DefaultClasses()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var submitted []*Job
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				h := Hint{Class: classes[i%len(classes)], Tenant: "t" + string(rune('0'+g))}
				if i%3 == 0 {
					h.Deadline = time.Now().Add(time.Duration(i%5) * time.Millisecond)
				}
				j, err := s.Submit(context.Background(), noop, h)
				if err != nil {
					continue // overload / past-deadline rejects are expected
				}
				if i%7 == 0 {
					j.Cancel()
				}
				mu.Lock()
				submitted = append(submitted, j)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, j := range submitted {
		wait(t, j)
		if st := j.State(); st == Failed {
			t.Errorf("job %d failed: %v", j.ID(), j.Err())
		}
	}
	if queued, running := s.InFlight(); queued != 0 || running != 0 {
		t.Errorf("after drain: %d queued, %d running", queued, running)
	}
}
