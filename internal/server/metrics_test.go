package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/runtime"
	"github.com/parlab/adws/internal/topology"
)

// newMetricsServer builds a server with job-latency metrics enabled on a
// fresh registry — the configuration the adws façade always uses.
func newMetricsServer(t *testing.T, workers int, cfg Config) (*Server, *Metrics) {
	t.Helper()
	m := NewMetrics(metrics.NewRegistry(), cfg.Classes)
	cfg.Metrics = m
	p := runtime.NewPool(runtime.Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  runtime.ADWS,
		Seed:    42,
	})
	t.Cleanup(p.Close)
	s := New(p, cfg)
	t.Cleanup(s.Close)
	return s, m
}

// TestMetricsRecordJobLifecycle pins the three job-latency histograms:
// every completed job records one queue-wait, one service, and one e2e
// sample, and the spans nest (e2e covers service covers nothing shorter
// than zero).
func TestMetricsRecordJobLifecycle(t *testing.T) {
	s, m := newMetricsServer(t, 4, Config{})
	const jobs = 5
	for i := 0; i < jobs; i++ {
		j, err := s.Submit(context.Background(), noop, Hint{Work: 1})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
	}

	qw, sv, e2e := m.QueueWait.Snapshot(), m.Service.Snapshot(), m.E2E.Snapshot()
	if qw.Count != jobs || sv.Count != jobs || e2e.Count != jobs {
		t.Errorf("histogram counts queue_wait=%d service=%d e2e=%d, want %d each",
			qw.Count, sv.Count, e2e.Count, jobs)
	}
	// Per job e2e = queue wait + service, so the sums must nest.
	if e2e.Sum < sv.Sum {
		t.Errorf("e2e sum %dns < service sum %dns", e2e.Sum, sv.Sum)
	}
	if qw.Sum < 0 || sv.Sum <= 0 {
		t.Errorf("non-positive spans: queue_wait sum %dns, service sum %dns", qw.Sum, sv.Sum)
	}
	if m.Rejected.Value() != 0 || m.Expired.Value() != 0 {
		t.Errorf("spurious failure counters: rejected=%d expired=%d",
			m.Rejected.Value(), m.Expired.Value())
	}
}

// TestMetricsRejectAndExpiry pins the admission-failure counters and the
// rule that a job which never dispatched records e2e but no service or
// queue-wait sample.
func TestMetricsRejectAndExpiry(t *testing.T) {
	s, m := newMetricsServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 1})
	release := make(chan struct{})
	b := blocker(t, s, release)

	// Queue slot taken by a job whose deadline expires while queued.
	expiring, err := s.Submit(context.Background(), noop,
		Hint{Deadline: time.Now().Add(20 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	// Queue now full: the next submit fast-rejects.
	if _, err := s.Submit(context.Background(), noop, Hint{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit over full queue: err = %v, want ErrOverloaded", err)
	}
	wait(t, expiring)
	close(release)
	wait(t, b)

	if got := m.Rejected.Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	if got := m.Expired.Value(); got != 1 {
		t.Errorf("expired counter = %d, want 1", got)
	}
	// The blocker dispatched and completed; the expired job only counts
	// end-to-end. The reject never became a job at all.
	if got := m.Service.Snapshot().Count; got != 1 {
		t.Errorf("service count = %d, want 1 (only the dispatched job)", got)
	}
	if got := m.QueueWait.Snapshot().Count; got != 1 {
		t.Errorf("queue-wait count = %d, want 1 (only the dispatched job)", got)
	}
	if got := m.E2E.Snapshot().Count; got != 2 {
		t.Errorf("e2e count = %d, want 2 (dispatched + expired)", got)
	}
}

// TestMetricsCheckRejectsPartial pins the New-time validation of a
// partially populated Metrics.
func TestMetricsCheckRejectsPartial(t *testing.T) {
	p := runtime.NewPool(runtime.Config{
		Machine: topology.Flat(2, 32<<20, 1<<20),
		Policy:  runtime.ADWS,
		Seed:    1,
	})
	t.Cleanup(p.Close)
	defer func() {
		if recover() == nil {
			t.Error("New accepted a Metrics with nil fields")
		}
	}()
	New(p, Config{Metrics: &Metrics{}})
}
