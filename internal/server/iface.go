package server

import (
	"time"

	"github.com/parlab/adws/internal/runtime"
)

// The server used to be one concrete struct hard-wired to *runtime.Pool
// with a fixed bounded-FIFO admission rule and a fixed rolling-cursor
// placement rule. Those three concerns are now interfaces — Runtime,
// Admitter, Placer — so higher layers (notably internal/cluster, which
// shards jobs across many servers) can compose them: a cluster member is
// just a Server over its own Runtime, and admission or placement policy
// can be swapped per shard without touching the job-lifecycle machinery.

// Runtime is the pool-ownership surface the server schedules onto: root
// injection over a worker sub-range and the pool size. *runtime.Pool
// implements it; tests may substitute fakes.
type Runtime interface {
	// SubmitRoot injects fn as a root task group on the worker-range
	// fraction [lo, hi) and returns its handle without waiting.
	SubmitRoot(fn func(*runtime.Ctx), lo, hi float64) (*runtime.RootJob, error)
	// NumWorkers returns the pool's worker count.
	NumWorkers() int
}

// Admitter is the admission policy. All methods are called under the
// server's mutex with the live admission state; implementations must not
// block or call back into the server, and may therefore keep
// unsynchronized internal state (e.g. token buckets). Expired queue
// entries are reaped before each call, so the queue depth an Admitter
// sees counts only still-admissible jobs.
type Admitter interface {
	// Admit classifies a new submission given its hints, the submission
	// time, and the current queue depth and running-job count: nil admits
	// it (the server then queues or dispatches it), an error fast-rejects
	// it (returned verbatim from Submit and counted as Rejected).
	Admit(h Hint, now time.Time, queued, running int) error
	// CanDispatch reports whether one more job may start running now,
	// given the current running-job count.
	CanDispatch(running int) bool
	// Next picks the index of the queued job to dispatch next. The queue
	// is in submission order and non-empty; entries expose Hint() and
	// Submitted() without locking. An out-of-range return falls back to
	// the head (index 0).
	Next(now time.Time, queue []*Job) int
}

// BoundedFIFO is the default admission policy: reject once the queue
// holds MaxQueue jobs, run at most MaxInFlight jobs concurrently,
// dispatch in submission order.
type BoundedFIFO struct {
	MaxInFlight, MaxQueue int
}

// Admit fast-rejects with ErrOverloaded when the queue is full.
func (b BoundedFIFO) Admit(h Hint, now time.Time, queued, running int) error {
	if queued >= b.MaxQueue {
		return ErrOverloaded
	}
	return nil
}

// CanDispatch caps concurrently running jobs at MaxInFlight.
func (b BoundedFIFO) CanDispatch(running int) bool { return running < b.MaxInFlight }

// Next dispatches strictly in submission order.
func (b BoundedFIFO) Next(now time.Time, queue []*Job) int { return 0 }

// Load is the placement snapshot a Placer decides from.
type Load struct {
	// WorkSum is the summed work hints of the currently running jobs,
	// not yet including the dispatching job.
	WorkSum float64
	// Workers is the pool size.
	Workers int
}

// Placer carves the worker sub-range a dispatching job is injected on.
// Place is called under the server's mutex, in dispatch order, so
// implementations may keep unsynchronized state (the default placer's
// rolling cursor).
type Placer interface {
	// Place returns the worker-range fraction [lo, hi) ⊆ [0, 1] for a
	// job with the given (positive) work hint.
	Place(work float64, ld Load) (lo, hi float64)
}

// CursorPlacer is the default placement policy — the paper's §3.1
// hint-proportional division applied at the job level: a job with work
// hint w receives the fraction w / (running work + w) of the workers,
// clamped to at least one worker, carved from a rolling cursor that
// wraps to 0 when the slice would cross the top. Deterministic in
// dispatch order.
type CursorPlacer struct {
	cursor float64 // rolling placement cursor in [0, 1)
}

// NewCursorPlacer returns a placer with its cursor at 0.
func NewCursorPlacer() *CursorPlacer { return &CursorPlacer{} }

// Place implements Placer.
func (p *CursorPlacer) Place(work float64, ld Load) (lo, hi float64) {
	width := work / (ld.WorkSum + work)
	if minW := 1 / float64(ld.Workers); width < minW {
		width = minW
	}
	if width > 1 {
		width = 1
	}
	if p.cursor+width > 1 {
		p.cursor = 0
	}
	lo = p.cursor
	hi = lo + width
	if hi >= 1 {
		hi = 1
		p.cursor = 0
	} else {
		p.cursor = hi
	}
	return lo, hi
}
