package server

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parlab/adws/internal/runtime"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

func newTestServer(t *testing.T, workers int, cfg Config) (*Server, *runtime.Pool) {
	t.Helper()
	p := runtime.NewPool(runtime.Config{
		Machine: topology.Flat(workers, 32<<20, 1<<20),
		Policy:  runtime.ADWS,
		Seed:    42,
	})
	t.Cleanup(p.Close)
	s := New(p, cfg)
	t.Cleanup(s.Close)
	return s, p
}

// wait fails the test if the job does not reach a terminal state in time.
func wait(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	select {
	case <-j.Done():
	case <-ctx.Done():
		t.Fatalf("job %d did not complete (state %v)", j.ID(), j.State())
	}
}

func noop(*runtime.Ctx) error { return nil }

// blocker submits a job whose body blocks until release is closed.
func blocker(t *testing.T, s *Server, release chan struct{}) *Job {
	t.Helper()
	j, err := s.Submit(context.Background(), func(*runtime.Ctx) error { <-release; return nil }, Hint{Work: 1})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestSubmitRunsJob(t *testing.T) {
	s, _ := newTestServer(t, 4, Config{})
	var ran atomic.Bool
	j, err := s.Submit(context.Background(), func(c *runtime.Ctx) error {
		ran.Store(true)
		return nil
	}, Hint{Work: 2, Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	if !ran.Load() {
		t.Error("job body did not run")
	}
	if st := j.State(); st != Done {
		t.Errorf("state = %v, want Done", st)
	}
	if err := j.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
	st := j.Stats()
	if st.Run <= 0 || st.Queued < 0 {
		t.Errorf("stats timing = %+v", st)
	}
	if !(st.RangeLo < st.RangeHi) || st.RangeLo < 0 || st.RangeHi > 1 {
		t.Errorf("stats range [%v, %v)", st.RangeLo, st.RangeHi)
	}
	if st.Tasks <= 0 {
		t.Errorf("stats tasks = %d, want positive", st.Tasks)
	}
}

func TestSubmitErrorAndPanic(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{})
	boom := errors.New("boom")
	j, err := s.Submit(context.Background(), func(*runtime.Ctx) error { return boom }, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	if j.State() != Failed || !errors.Is(j.Err(), boom) {
		t.Errorf("error job: state %v err %v", j.State(), j.Err())
	}

	j, err = s.Submit(context.Background(), func(*runtime.Ctx) error { panic("kaboom") }, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	if j.State() != Failed || j.Err() == nil || !strings.Contains(j.Err().Error(), "kaboom") {
		t.Errorf("panicking job: state %v err %v", j.State(), j.Err())
	}

	c := s.Counters()
	if c.Failed != 2 || c.Submitted != 2 {
		t.Errorf("counters = %+v", c)
	}
}

// TestOverloadFastReject pins the admission window: with both running
// slots pinned and the queue full, Submit fails immediately with
// ErrOverloaded and counts the rejection.
func TestOverloadFastReject(t *testing.T) {
	s, _ := newTestServer(t, 4, Config{MaxInFlight: 2, MaxQueue: 2})
	release := make(chan struct{})
	blocker(t, s, release)
	blocker(t, s, release)
	q1 := blocker(t, s, release)
	q2 := blocker(t, s, release)
	if queued, running := s.InFlight(); queued != 2 || running != 2 {
		t.Fatalf("in flight = %d queued, %d running; want 2, 2", queued, running)
	}
	start := time.Now()
	if _, err := s.Submit(context.Background(), noop, Hint{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit over full queue: err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("fast-reject took %v", d)
	}
	if c := s.Counters(); c.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", c.Rejected)
	}
	close(release)
	wait(t, q1)
	wait(t, q2)
}

// TestQueuedDeadlineCancels pins deadline handling: a job whose deadline
// expires while queued completes Canceled without ever dispatching.
func TestQueuedDeadlineCancels(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 4})
	release := make(chan struct{})
	b := blocker(t, s, release)
	var ran atomic.Bool
	j, err := s.Submit(context.Background(), func(*runtime.Ctx) error {
		ran.Store(true)
		return nil
	}, Hint{Deadline: time.Now().Add(30 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	if j.State() != Canceled || !errors.Is(j.Err(), context.DeadlineExceeded) {
		t.Errorf("expired job: state %v err %v", j.State(), j.Err())
	}
	if queued, _ := s.InFlight(); queued != 0 {
		t.Errorf("expired job still queued (depth %d)", queued)
	}
	close(release)
	wait(t, b)
	if ran.Load() {
		t.Error("expired job's body ran")
	}
	if c := s.Counters(); c.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", c.Canceled)
	}
}

// TestQueuedContextCancel is the caller-cancellation twin of the deadline
// test, including Job.Cancel as the cancellation source.
func TestQueuedContextCancel(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 4})
	release := make(chan struct{})
	defer close(release)
	blocker(t, s, release)

	ctx, cancel := context.WithCancel(context.Background())
	j, err := s.Submit(ctx, noop, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wait(t, j)
	if j.State() != Canceled || !errors.Is(j.Err(), context.Canceled) {
		t.Errorf("ctx-canceled job: state %v err %v", j.State(), j.Err())
	}

	j2, err := s.Submit(context.Background(), noop, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	j2.Cancel()
	wait(t, j2)
	if j2.State() != Canceled {
		t.Errorf("Job.Cancel: state %v, want Canceled", j2.State())
	}

	// A context already done at submission is rejected outright.
	if _, err := s.Submit(ctx, noop, Hint{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Submit with done ctx: err = %v, want context.Canceled", err)
	}
}

// TestDrain pins graceful shutdown: Drain waits for queued and running
// jobs, rejects concurrent submissions with ErrDraining, and is sticky.
func TestDrain(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 4})
	release := make(chan struct{})
	b := blocker(t, s, release)
	q := blocker(t, s, release)

	// Drain with in-flight jobs times out while they block...
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain of blocked server: err = %v, want DeadlineExceeded", err)
	}
	cancel()
	// ...and draining is sticky: new submissions already fail.
	if _, err := s.Submit(context.Background(), noop, Hint{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining: err = %v, want ErrDraining", err)
	}

	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	wait(t, b)
	wait(t, q)
	if b.State() != Done || q.State() != Done {
		t.Errorf("after drain: states %v, %v, want Done", b.State(), q.State())
	}
	if queued, running := s.InFlight(); queued != 0 || running != 0 {
		t.Errorf("after drain: %d queued, %d running", queued, running)
	}
}

// TestCloseCancelsQueued pins Close semantics: queued jobs complete
// Canceled with ErrClosed, later submissions fail with ErrClosed.
func TestCloseCancelsQueued(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, MaxQueue: 4})
	release := make(chan struct{})
	b := blocker(t, s, release)
	q := blocker(t, s, release)
	s.Close()
	wait(t, q)
	if q.State() != Canceled || !errors.Is(q.Err(), ErrClosed) {
		t.Errorf("queued job after Close: state %v err %v", q.State(), q.Err())
	}
	if _, err := s.Submit(context.Background(), noop, Hint{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: err = %v, want ErrClosed", err)
	}
	close(release)
	wait(t, b) // the running job still completes
}

// TestPoolCloseFailsDispatchedJob pins the propagation of the pool's
// Close drain through the job layer: a job whose root was submitted to
// the pool but never claimed by a worker must finish Failed with
// runtime.ErrClosed, not hang or report Done.
func TestPoolCloseFailsDispatchedJob(t *testing.T) {
	s, p := newTestServer(t, 1, Config{MaxInFlight: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	j1, err := s.Submit(context.Background(), func(*runtime.Ctx) error {
		close(started)
		<-release
		return nil
	}, Hint{Work: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// MaxInFlight 2 dispatches j2's root to the pool immediately, but the
	// only worker is pinned inside j1's body, so the root stays queued.
	j2, err := s.Submit(context.Background(), func(*runtime.Ctx) error {
		t.Error("orphaned job body ran")
		return nil
	}, Hint{Work: 1})
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	wait(t, j2)
	if j2.State() != Failed || !errors.Is(j2.Err(), runtime.ErrClosed) {
		t.Errorf("orphaned job after pool Close: state %v err %v, want Failed/ErrClosed",
			j2.State(), j2.Err())
	}

	close(release)
	wait(t, j1)
	if j1.State() != Done || j1.Err() != nil {
		t.Errorf("running job after pool Close: state %v err %v, want Done/nil",
			j1.State(), j1.Err())
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("pool Close did not return")
	}
}

// TestPlacementDividesWorkers pins hint-guided placement: two concurrent
// jobs with 3:1 work hints receive adjacent range fractions 0.75 and 0.25.
func TestPlacementDividesWorkers(t *testing.T) {
	s, _ := newTestServer(t, 4, Config{MaxInFlight: 4})
	release := make(chan struct{})
	a, err := s.Submit(context.Background(), func(*runtime.Ctx) error { <-release; return nil }, Hint{Work: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(context.Background(), func(*runtime.Ctx) error { <-release; return nil }, Hint{Work: 1})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	wait(t, a)
	wait(t, b)
	sa, sb := a.Stats(), b.Stats()
	if sa.RangeLo != 0 || sa.RangeHi != 1 {
		t.Errorf("first job range [%v, %v), want [0, 1) (alone at dispatch)", sa.RangeLo, sa.RangeHi)
	}
	if sb.RangeLo != 0 || sb.RangeHi != 0.25 {
		t.Errorf("second job range [%v, %v), want [0, 0.25) (1/(3+1) of the pool)", sb.RangeLo, sb.RangeHi)
	}
}

// TestPerJobTraceSlices pins the per-job trace attribution: on a traced
// pool, slicing the event stream by job and summarizing must reproduce
// the pool-level totals for every attributable counter.
func TestPerJobTraceSlices(t *testing.T) {
	tr := trace.New(4, 1<<16)
	p := runtime.NewPool(runtime.Config{
		Machine: topology.Flat(4, 32<<20, 1<<20),
		Policy:  runtime.ADWS,
		Seed:    42,
		Tracer:  tr,
	})
	defer p.Close()
	s := New(p, Config{MaxInFlight: 2})
	defer s.Close()

	spin := func(c *runtime.Ctx) error {
		g := c.Group(runtime.GroupHint{})
		for i := 0; i < 16; i++ {
			g.Spawn(1, func(c *runtime.Ctx) {
				g2 := c.Group(runtime.GroupHint{})
				for k := 0; k < 8; k++ {
					g2.Spawn(1, func(*runtime.Ctx) {})
				}
				g2.Wait()
			})
		}
		g.Wait()
		return nil
	}
	const jobs = 4
	ids := make([]int64, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := s.Submit(context.Background(), spin, Hint{Work: 1})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		if id := j.TraceID(); id != 0 {
			ids = append(ids, id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	events := tr.Events()
	got := trace.Jobs(events)
	if len(got) != jobs {
		t.Fatalf("trace.Jobs = %v, want %d distinct ids %v", got, jobs, ids)
	}
	total := trace.Summarize(events, 4)
	var tasks, steals, migrations int64
	for _, id := range got {
		js := trace.SummarizeJob(events, 4, id)
		if js.Tasks == 0 {
			t.Errorf("job %d: no task events in slice", id)
		}
		if js.StealAttempts != 0 || js.StealFails != 0 {
			t.Errorf("job %d: slice has %d attempts / %d fails; attempts are unattributable and must be 0",
				id, js.StealAttempts, js.StealFails)
		}
		tasks += js.Tasks
		steals += js.Steals
		migrations += js.Migrations
		for _, ev := range trace.FilterJob(events, id) {
			if ev.Job != id {
				t.Fatalf("FilterJob(%d) returned event of job %d", id, ev.Job)
			}
		}
	}
	if tasks != total.Tasks || steals != total.Steals || migrations != total.Migrations {
		t.Errorf("per-job sums tasks=%d steals=%d migr=%d != totals tasks=%d steals=%d migr=%d",
			tasks, steals, migrations, total.Tasks, total.Steals, total.Migrations)
	}
}

// TestRetention pins the bounded terminal-job history: with RetainDone=3,
// old completed jobs are evicted while newer ones stay addressable.
func TestRetention(t *testing.T) {
	s, _ := newTestServer(t, 2, Config{MaxInFlight: 1, RetainDone: 3})
	var last *Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(context.Background(), noop, Hint{})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		last = j
	}
	if _, ok := s.Job(1); ok {
		t.Error("job 1 still retained past the cap")
	}
	if _, ok := s.Job(last.ID()); !ok {
		t.Errorf("latest job %d not retained", last.ID())
	}
	if got := len(s.Jobs()); got != 3 {
		t.Errorf("Jobs() returned %d, want 3", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	s, _ := newTestServer(t, 8, Config{})
	cfg := s.Config()
	if cfg.MaxInFlight != 8 || cfg.MaxQueue != 32 || cfg.RetainDone != 1024 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Queued: "queued", Running: "running", Done: "done",
		Failed: "failed", Canceled: "canceled",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
	if Queued.Terminal() || Running.Terminal() || !Done.Terminal() || !Failed.Terminal() || !Canceled.Terminal() {
		t.Error("Terminal() classification wrong")
	}
}
