// Package server is the job-serving layer over the adws runtime: it turns
// one persistent, locality-aware worker pool into a multi-tenant service
// that many clients share concurrently.
//
// Jobs are admitted through a bounded FIFO queue with fast-reject
// backpressure (ErrOverloaded) and a cap on concurrently running jobs.
// When a job is dispatched, the server divides the pool's worker range
// among the in-flight jobs with the same hint-guided proportional
// division ADWS applies to sibling tasks (paper §3.1): a job with work
// hint w receives the fraction w / Σ(in-flight work) of the workers,
// assigned from a deterministic rolling cursor, and its root task group
// is injected at that sub-range (runtime.SubmitRoot). Under ADWS the
// job's dominant-group steal ranges then confine its tasks to its slice
// of the machine — the job-level analogue of bounding where sibling
// subtrees land, which is what preserves cache locality under mixed
// workloads.
//
// Determinism caveat: a single in-flight job over the full range behaves
// exactly like Pool.Run. With several concurrent jobs, placement is
// deterministic in admission order, but dynamic load balancing may move
// tasks of different jobs across each other's ranges, and admission order
// itself depends on client timing — concurrent serving trades the
// almost-determinism of a solo run for throughput (see docs/SERVER.md).
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/parlab/adws/internal/runtime"
)

var (
	// ErrOverloaded is the fast-reject: the admission queue is full.
	ErrOverloaded = errors.New("server: overloaded: admission queue is full")
	// ErrDraining rejects submissions while Drain is in progress.
	ErrDraining = errors.New("server: draining: not admitting new jobs")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("server: closed")
)

// Built-in admission policy names for Config.AdmissionPolicy.
const (
	// AdmitFIFO is bounded-FIFO admission (BoundedFIFO), the default.
	AdmitFIFO = "fifo"
	// AdmitSLO is SLO-aware admission (PriorityAdmitter): priority
	// classes with aging, EDF within a class, SJF tie-break, per-tenant
	// rate limiting.
	AdmitSLO = "slo"
)

// Config parameterizes admission control and placement.
type Config struct {
	// MaxInFlight caps concurrently running jobs (<= 0: the pool's worker
	// count). Consulted by the built-in Admitters only.
	MaxInFlight int
	// MaxQueue caps the admission queue depth; submissions beyond it are
	// fast-rejected with ErrOverloaded (<= 0: 4 × MaxInFlight).
	// Consulted by the built-in Admitters only.
	MaxQueue int
	// RetainDone caps how many terminal jobs the id lookup keeps, oldest
	// evicted first (<= 0: 1024). In-flight jobs are always retained.
	RetainDone int
	// AdmissionPolicy selects the built-in admission policy when Admitter
	// is nil: AdmitFIFO (default) or AdmitSLO. Any other value panics in
	// New.
	AdmissionPolicy string
	// Classes is the priority-class list, highest priority first (nil:
	// DefaultClasses). Per-class accounting uses it under every policy;
	// dispatch order consults it only under AdmitSLO.
	Classes []string
	// DefaultClass is the class assigned to submissions with an empty
	// Hint.Class ("": ClassStandard when present in Classes, else the
	// lowest-priority class).
	DefaultClass string
	// Aging is the AdmitSLO cross-class promotion quantum (<= 0:
	// DefaultAging).
	Aging time.Duration
	// TenantRate and TenantBurst configure AdmitSLO per-tenant token
	// buckets (rate <= 0 disables limiting; burst <= 0 defaults to
	// max(1, rate)).
	TenantRate, TenantBurst float64
	// Admitter is the admission policy (nil: built from AdmissionPolicy).
	Admitter Admitter
	// Placer is the worker-range placement policy (nil: a fresh
	// CursorPlacer).
	Placer Placer
	// Metrics, if non-nil, receives per-job queue-wait, service, and
	// end-to-end latencies plus admission reject / deadline-expiry counts
	// (see Metrics). Nil disables recording at one pointer check per site.
	Metrics *Metrics
}

func (c Config) withDefaults(workers int) Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 1024
	}
	if c.AdmissionPolicy == "" {
		c.AdmissionPolicy = AdmitFIFO
	}
	if len(c.Classes) == 0 {
		c.Classes = DefaultClasses()
	}
	if c.DefaultClass == "" {
		c.DefaultClass = c.Classes[len(c.Classes)-1]
		for _, cl := range c.Classes {
			if cl == ClassStandard {
				c.DefaultClass = ClassStandard
				break
			}
		}
	}
	if !containsClass(c.Classes, c.DefaultClass) {
		panic("server: DefaultClass " + c.DefaultClass + " is not in Classes")
	}
	if c.Admitter == nil {
		switch c.AdmissionPolicy {
		case AdmitFIFO:
			c.Admitter = BoundedFIFO{MaxInFlight: c.MaxInFlight, MaxQueue: c.MaxQueue}
		case AdmitSLO:
			p := NewPriorityAdmitter(c.Classes, c.MaxInFlight, c.MaxQueue)
			p.Aging = c.Aging
			p.TenantRate = c.TenantRate
			p.TenantBurst = c.TenantBurst
			c.Admitter = p
		default:
			panic("server: unknown admission policy " + c.AdmissionPolicy)
		}
	}
	if c.Placer == nil {
		c.Placer = NewCursorPlacer()
	}
	return c
}

// Counters are the server's monotonic admission counters.
type Counters struct {
	Submitted, Rejected, Completed, Failed, Canceled int64
}

// tenantAgg accumulates one tenant's completed-job latency within a
// class, the per-tenant throughput figure the Jain fairness index is
// computed over.
type tenantAgg struct {
	done  int64
	e2eNS int64
}

// classState is one priority class's accounting: its own counter set and
// the per-tenant completion aggregates.
type classState struct {
	ctrs    Counters
	tenants map[string]*tenantAgg
}

func containsClass(classes []string, c string) bool {
	for _, cl := range classes {
		if cl == c {
			return true
		}
	}
	return false
}

// Server serves concurrent jobs on one Runtime (usually a
// *runtime.Pool).
type Server struct {
	pool Runtime
	cfg  Config
	// metrics is nil unless latency recording was requested.
	metrics *Metrics

	mu       sync.Mutex //adws:lockrank(30) under cluster.mu, over the runtime's pool locks
	queue    []*Job
	running  int
	workSum  float64 // Σ work hints of running jobs
	idSeq    int64
	draining bool
	closed   bool
	// drained is closed when draining && no jobs in flight (lazily made).
	drained chan struct{}
	jobs    map[int64]*Job
	order   []int64 // job ids in submission order, for bounded retention
	ctrs    Counters
	classes map[string]*classState // per-class accounting, keyed by class
}

// New creates a job server over pool. The server starts no goroutines
// until jobs are submitted.
func New(pool Runtime, cfg Config) *Server {
	if cfg.Metrics != nil {
		cfg.Metrics.check()
	}
	cfg = cfg.withDefaults(pool.NumWorkers())
	classes := make(map[string]*classState, len(cfg.Classes))
	for _, c := range cfg.Classes {
		classes[c] = &classState{tenants: make(map[string]*tenantAgg)}
	}
	return &Server{
		pool:    pool,
		cfg:     cfg,
		metrics: cfg.Metrics,
		jobs:    make(map[int64]*Job),
		classes: classes,
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit admits fn as a new job. It never blocks: the job is dispatched
// immediately when a running slot is free, queued when the admission
// queue has room, and otherwise rejected with ErrOverloaded. ctx and the
// hint deadline bound the job's time in the queue (see Hint.Deadline); a
// deadline already past is rejected synchronously with
// context.DeadlineExceeded. An empty h.Class takes the server's default
// class; an unknown one is rejected with ErrUnknownClass. fn's returned
// error (or recovered panic) becomes Job.Err.
func (s *Server) Submit(ctx context.Context, fn func(*runtime.Ctx) error, h Hint) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return nil, ErrClosed
	case s.draining:
		return nil, ErrDraining
	}
	if h.Class == "" {
		h.Class = s.cfg.DefaultClass
	}
	cs := s.classes[h.Class]
	if cs == nil {
		s.ctrs.Rejected++
		s.noteReject(ErrUnknownClass)
		return nil, fmt.Errorf("%w %q", ErrUnknownClass, h.Class)
	}
	// A deadline that has already passed can never run: reject it now
	// instead of burning a queue slot on a job that only exists to be
	// cancelled at dispatch.
	if !h.Deadline.IsZero() && !h.Deadline.After(now) {
		s.ctrs.Rejected++
		cs.ctrs.Rejected++
		s.noteReject(context.DeadlineExceeded)
		return nil, context.DeadlineExceeded
	}
	// Reap entries whose deadline or context expired while queued before
	// consulting the Admitter, so a burst of short-deadline jobs cannot
	// pin queue slots and cause spurious ErrOverloaded rejects.
	s.reapExpiredLocked()
	if err := s.cfg.Admitter.Admit(h, now, len(s.queue), s.running); err != nil {
		s.ctrs.Rejected++
		cs.ctrs.Rejected++
		s.noteReject(err)
		return nil, err
	}

	var jctx context.Context
	var cancel context.CancelFunc
	if h.Deadline.IsZero() {
		jctx, cancel = context.WithCancel(ctx)
	} else {
		jctx, cancel = context.WithDeadline(ctx, h.Deadline)
	}
	s.idSeq++
	j := &Job{
		id:        s.idSeq,
		hint:      h,
		fn:        fn,
		ctx:       jctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		srv:       s,
		state:     Queued,
		submitted: now,
	}
	s.ctrs.Submitted++
	cs.ctrs.Submitted++
	s.retainLocked(j)

	if s.cfg.Admitter.CanDispatch(s.running) && len(s.queue) == 0 {
		s.dispatchLocked(j)
		return j, nil
	}
	s.queue = append(s.queue, j)
	// Complete a job promptly if it is cancelled or expires while queued.
	stop := context.AfterFunc(jctx, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if j.state != Queued {
			return
		}
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.noteQueueExpiry(j.ctx.Err())
		s.completeLocked(j, Canceled, j.ctx.Err())
	})
	j.stopWatch = stop
	return j, nil
}

// dispatchLocked places j on the pool. Caller holds s.mu.
func (s *Server) dispatchLocked(j *Job) {
	if j.stopWatch != nil {
		j.stopWatch()
		j.stopWatch = nil
	}
	if err := j.ctx.Err(); err != nil {
		s.completeLocked(j, Canceled, err)
		return
	}
	work := j.hint.Work
	if work <= 0 {
		work = 1
	}
	lo, hi := s.placeLocked(work)
	root, err := s.pool.SubmitRoot(s.body(j), lo, hi)
	if err != nil {
		s.completeLocked(j, Failed, err)
		return
	}
	s.running++
	s.workSum += work
	j.state = Running
	j.started = time.Now()
	j.root = root
	j.lo, j.hi = lo, hi
	s.noteDispatch(j)
	go s.reap(j, work)
}

// placeLocked delegates the worker-range division to the configured
// Placer (by default CursorPlacer, the §3.1 hint-proportional division —
// see iface.go). Caller holds s.mu.
func (s *Server) placeLocked(work float64) (lo, hi float64) {
	return s.cfg.Placer.Place(work, Load{WorkSum: s.workSum, Workers: s.pool.NumWorkers()})
}

// body wraps the job's fn for the runtime: a sized root task group when
// the job carries a size hint (so multi-level scheduling can tie the job
// to a fitting cache), error capture, and panic containment.
func (s *Server) body(j *Job) func(*runtime.Ctx) {
	return func(c *runtime.Ctx) {
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				j.err = fmt.Errorf("job %d panicked: %v", j.id, r)
				s.mu.Unlock()
			}
		}()
		var err error
		if j.hint.Size > 0 {
			w := j.hint.Work
			if w <= 0 {
				w = 1
			}
			g := c.Group(runtime.GroupHint{Work: w, Size: j.hint.Size})
			g.Spawn(w, func(c *runtime.Ctx) { err = j.fn(c) })
			g.Wait()
		} else {
			err = j.fn(c)
		}
		if err != nil {
			s.mu.Lock()
			if j.err == nil {
				j.err = err
			}
			s.mu.Unlock()
		}
	}
}

// reap waits for j's root to complete, finalizes it, and dispatches the
// next queued job(s) in Admitter order.
func (s *Server) reap(j *Job, work float64) {
	<-j.root.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.workSum -= work
	// A root can complete without running: Pool.Close fails unclaimed
	// roots with runtime.ErrClosed. That error outranks anything the job
	// body recorded (the body never ran).
	if rerr := j.root.Err(); rerr != nil {
		s.completeLocked(j, Failed, rerr)
	} else if j.err != nil {
		s.completeLocked(j, Failed, j.err)
	} else {
		s.completeLocked(j, Done, nil)
	}
	s.dispatchQueuedLocked()
	s.signalDrainedLocked()
}

// dispatchQueuedLocked reaps expired queue entries, then dispatches in
// Admitter-chosen order while running slots are free. Caller holds s.mu.
func (s *Server) dispatchQueuedLocked() {
	s.reapExpiredLocked()
	for s.cfg.Admitter.CanDispatch(s.running) && len(s.queue) > 0 {
		now := time.Now()
		i := s.cfg.Admitter.Next(now, s.queue)
		if i < 0 || i >= len(s.queue) {
			i = 0
		}
		next := s.queue[i]
		copy(s.queue[i:], s.queue[i+1:])
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		s.dispatchLocked(next)
	}
}

// reapExpiredLocked completes queued jobs whose context is already done
// (deadline expired or cancelled) as Canceled, without waiting for their
// AfterFunc watcher to fire, so queue depth never counts dead entries —
// neither toward ErrOverloaded nor toward the load figures routers read
// via InFlight. Caller holds s.mu.
func (s *Server) reapExpiredLocked() {
	live := 0
	for _, j := range s.queue {
		if err := j.ctx.Err(); err != nil {
			s.noteQueueExpiry(err)
			s.completeLocked(j, Canceled, err)
			continue
		}
		s.queue[live] = j
		live++
	}
	for i := live; i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:live]
}

// completeLocked moves j to a terminal state. Caller holds s.mu.
func (s *Server) completeLocked(j *Job, st State, err error) {
	if j.state.Terminal() {
		return
	}
	if j.stopWatch != nil {
		j.stopWatch()
		j.stopWatch = nil
	}
	j.state = st
	j.err = err
	j.finished = time.Now()
	s.noteComplete(j)
	j.cancel()
	cs := s.classes[j.hint.Class]
	switch st {
	case Done:
		s.ctrs.Completed++
		if cs != nil {
			cs.ctrs.Completed++
			agg := cs.tenants[j.hint.Tenant]
			if agg == nil {
				agg = &tenantAgg{}
				cs.tenants[j.hint.Tenant] = agg
			}
			agg.done++
			agg.e2eNS += int64(j.finished.Sub(j.submitted))
		}
	case Failed:
		s.ctrs.Failed++
		if cs != nil {
			cs.ctrs.Failed++
		}
	case Canceled:
		s.ctrs.Canceled++
		if cs != nil {
			cs.ctrs.Canceled++
		}
	}
	close(j.done)
	s.signalDrainedLocked()
}

func (s *Server) signalDrainedLocked() {
	if s.draining && s.running == 0 && len(s.queue) == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
}

// Drain stops admitting new jobs (submissions fail with ErrDraining) and
// waits until every queued and running job reached a terminal state, or
// ctx is done. Draining is sticky: it is not undone by a ctx expiry (call
// Drain again to keep waiting).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.running == 0 && len(s.queue) == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drained == nil {
		s.drained = make(chan struct{})
	}
	drained := s.drained
	s.mu.Unlock()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close rejects all future submissions (ErrClosed). It does not wait:
// call Drain first for a graceful shutdown. Queued jobs that were never
// dispatched are cancelled.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.draining = true
	for _, j := range s.queue {
		s.completeLocked(j, Canceled, ErrClosed)
	}
	s.queue = nil
	s.signalDrainedLocked()
}

// Job returns the job with the given id, if retained.
func (s *Server) Job(id int64) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the retained jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// InFlight returns the current queue depth and running-job count.
// Expired queue entries are reaped first, so the queued figure counts
// only jobs that can still run — load-based routers (least-loaded,
// affinity spill) would otherwise steer work away from pools that merely
// absorbed a burst of expired-deadline jobs.
func (s *Server) InFlight() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	return len(s.queue), s.running
}

// OldestQueueAge returns how long the oldest still-admissible queued job
// has been waiting (expired entries reaped first), zero when the queue
// is empty. It is a watchdog signal: a growing oldest-age with idle or
// stalled workers distinguishes a scheduler stall from a mere burst.
func (s *Server) OldestQueueAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	if len(s.queue) == 0 {
		return 0
	}
	oldest := s.queue[0].submitted
	for _, j := range s.queue[1:] {
		if j.submitted.Before(oldest) {
			oldest = j.submitted
		}
	}
	age := time.Since(oldest)
	if age < 0 {
		return 0
	}
	return age
}

// Classes returns the configured priority-class list, highest priority
// first.
func (s *Server) Classes() []string {
	out := make([]string, len(s.cfg.Classes))
	copy(out, s.cfg.Classes)
	return out
}

// QueuedByClass returns the live queue depth per class (expired entries
// reaped first). Classes with an empty queue are present with a zero.
func (s *Server) QueuedByClass() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapExpiredLocked()
	out := make(map[string]int, len(s.cfg.Classes))
	for _, c := range s.cfg.Classes {
		out[c] = 0
	}
	for _, j := range s.queue {
		out[j.hint.Class]++
	}
	return out
}

// ClassCounters returns the per-class admission counters. Rejections
// that happen before a class is resolved (closed/draining/unknown class)
// appear only in the aggregate Counters.
func (s *Server) ClassCounters() map[string]Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Counters, len(s.classes))
	for c, cs := range s.classes {
		out[c] = cs.ctrs
	}
	return out
}

// JainByClass returns the Jain fairness index over per-tenant mean
// end-to-end latency of completed jobs within each class:
// J = (Σx)² / (n·Σx²) for the n tenants with completions, so 1 means
// every tenant saw the same mean latency and 1/n means one tenant
// absorbed it all. Classes with no completions are omitted.
func (s *Server) JainByClass() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64)
	for c, cs := range s.classes {
		var sum, sumSq float64
		n := 0
		for _, agg := range cs.tenants {
			if agg.done == 0 {
				continue
			}
			mean := float64(agg.e2eNS) / float64(agg.done)
			sum += mean
			sumSq += mean * mean
			n++
		}
		if n == 0 || sumSq == 0 {
			continue
		}
		out[c] = (sum * sum) / (float64(n) * sumSq)
	}
	return out
}

// Workers returns the underlying Runtime's worker count.
func (s *Server) Workers() int { return s.pool.NumWorkers() }

// Counters returns the monotonic admission counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrs
}

// retainLocked registers j for id lookup and evicts the oldest terminal
// jobs beyond the retention cap. Caller holds s.mu.
func (s *Server) retainLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.cfg.RetainDone {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.RetainDone
	for _, id := range s.order {
		if excess > 0 {
			if old, ok := s.jobs[id]; ok && old.state.Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}
