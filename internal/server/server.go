// Package server is the job-serving layer over the adws runtime: it turns
// one persistent, locality-aware worker pool into a multi-tenant service
// that many clients share concurrently.
//
// Jobs are admitted through a bounded FIFO queue with fast-reject
// backpressure (ErrOverloaded) and a cap on concurrently running jobs.
// When a job is dispatched, the server divides the pool's worker range
// among the in-flight jobs with the same hint-guided proportional
// division ADWS applies to sibling tasks (paper §3.1): a job with work
// hint w receives the fraction w / Σ(in-flight work) of the workers,
// assigned from a deterministic rolling cursor, and its root task group
// is injected at that sub-range (runtime.SubmitRoot). Under ADWS the
// job's dominant-group steal ranges then confine its tasks to its slice
// of the machine — the job-level analogue of bounding where sibling
// subtrees land, which is what preserves cache locality under mixed
// workloads.
//
// Determinism caveat: a single in-flight job over the full range behaves
// exactly like Pool.Run. With several concurrent jobs, placement is
// deterministic in admission order, but dynamic load balancing may move
// tasks of different jobs across each other's ranges, and admission order
// itself depends on client timing — concurrent serving trades the
// almost-determinism of a solo run for throughput (see docs/SERVER.md).
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/parlab/adws/internal/runtime"
)

var (
	// ErrOverloaded is the fast-reject: the admission queue is full.
	ErrOverloaded = errors.New("server: overloaded: admission queue is full")
	// ErrDraining rejects submissions while Drain is in progress.
	ErrDraining = errors.New("server: draining: not admitting new jobs")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("server: closed")
)

// Config parameterizes admission control and placement.
type Config struct {
	// MaxInFlight caps concurrently running jobs (<= 0: the pool's worker
	// count). Consulted by the default Admitter only.
	MaxInFlight int
	// MaxQueue caps the admission queue depth; submissions beyond it are
	// fast-rejected with ErrOverloaded (<= 0: 4 × MaxInFlight).
	// Consulted by the default Admitter only.
	MaxQueue int
	// RetainDone caps how many terminal jobs the id lookup keeps, oldest
	// evicted first (<= 0: 1024). In-flight jobs are always retained.
	RetainDone int
	// Admitter is the admission policy (nil: BoundedFIFO over the
	// defaulted MaxInFlight/MaxQueue).
	Admitter Admitter
	// Placer is the worker-range placement policy (nil: a fresh
	// CursorPlacer).
	Placer Placer
	// Metrics, if non-nil, receives per-job queue-wait, service, and
	// end-to-end latencies plus admission reject / deadline-expiry counts
	// (see Metrics). Nil disables recording at one pointer check per site.
	Metrics *Metrics
}

func (c Config) withDefaults(workers int) Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 1024
	}
	if c.Admitter == nil {
		c.Admitter = BoundedFIFO{MaxInFlight: c.MaxInFlight, MaxQueue: c.MaxQueue}
	}
	if c.Placer == nil {
		c.Placer = NewCursorPlacer()
	}
	return c
}

// Counters are the server's monotonic admission counters.
type Counters struct {
	Submitted, Rejected, Completed, Failed, Canceled int64
}

// Server serves concurrent jobs on one Runtime (usually a
// *runtime.Pool).
type Server struct {
	pool Runtime
	cfg  Config
	// metrics is nil unless latency recording was requested.
	metrics *Metrics

	mu       sync.Mutex
	queue    []*Job
	running  int
	workSum  float64 // Σ work hints of running jobs
	idSeq    int64
	draining bool
	closed   bool
	// drained is closed when draining && no jobs in flight (lazily made).
	drained chan struct{}
	jobs    map[int64]*Job
	order   []int64 // job ids in submission order, for bounded retention
	ctrs    Counters
}

// New creates a job server over pool. The server starts no goroutines
// until jobs are submitted.
func New(pool Runtime, cfg Config) *Server {
	if cfg.Metrics != nil {
		cfg.Metrics.check()
	}
	return &Server{
		pool:    pool,
		cfg:     cfg.withDefaults(pool.NumWorkers()),
		metrics: cfg.Metrics,
		jobs:    make(map[int64]*Job),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit admits fn as a new job. It never blocks: the job is dispatched
// immediately when a running slot is free, queued when the admission
// queue has room, and otherwise rejected with ErrOverloaded. ctx and the
// hint deadline bound the job's time in the queue (see Hint.Deadline);
// fn's returned error (or recovered panic) becomes Job.Err.
func (s *Server) Submit(ctx context.Context, fn func(*runtime.Ctx) error, h Hint) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return nil, ErrClosed
	case s.draining:
		return nil, ErrDraining
	}
	if err := s.cfg.Admitter.Admit(len(s.queue), s.running); err != nil {
		s.ctrs.Rejected++
		s.noteReject()
		return nil, err
	}

	var jctx context.Context
	var cancel context.CancelFunc
	if h.Deadline.IsZero() {
		jctx, cancel = context.WithCancel(ctx)
	} else {
		jctx, cancel = context.WithDeadline(ctx, h.Deadline)
	}
	s.idSeq++
	j := &Job{
		id:        s.idSeq,
		hint:      h,
		fn:        fn,
		ctx:       jctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		srv:       s,
		state:     Queued,
		submitted: time.Now(),
	}
	s.ctrs.Submitted++
	s.retainLocked(j)

	if s.cfg.Admitter.CanDispatch(s.running) && len(s.queue) == 0 {
		s.dispatchLocked(j)
		return j, nil
	}
	s.queue = append(s.queue, j)
	// Complete a job promptly if it is cancelled or expires while queued.
	stop := context.AfterFunc(jctx, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if j.state != Queued {
			return
		}
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.noteQueueExpiry(j.ctx.Err())
		s.completeLocked(j, Canceled, j.ctx.Err())
	})
	j.stopWatch = stop
	return j, nil
}

// dispatchLocked places j on the pool. Caller holds s.mu.
func (s *Server) dispatchLocked(j *Job) {
	if j.stopWatch != nil {
		j.stopWatch()
		j.stopWatch = nil
	}
	if err := j.ctx.Err(); err != nil {
		s.completeLocked(j, Canceled, err)
		return
	}
	work := j.hint.Work
	if work <= 0 {
		work = 1
	}
	lo, hi := s.placeLocked(work)
	root, err := s.pool.SubmitRoot(s.body(j), lo, hi)
	if err != nil {
		s.completeLocked(j, Failed, err)
		return
	}
	s.running++
	s.workSum += work
	j.state = Running
	j.started = time.Now()
	j.root = root
	j.lo, j.hi = lo, hi
	s.noteDispatch(j)
	go s.reap(j, work)
}

// placeLocked delegates the worker-range division to the configured
// Placer (by default CursorPlacer, the §3.1 hint-proportional division —
// see iface.go). Caller holds s.mu.
func (s *Server) placeLocked(work float64) (lo, hi float64) {
	return s.cfg.Placer.Place(work, Load{WorkSum: s.workSum, Workers: s.pool.NumWorkers()})
}

// body wraps the job's fn for the runtime: a sized root task group when
// the job carries a size hint (so multi-level scheduling can tie the job
// to a fitting cache), error capture, and panic containment.
func (s *Server) body(j *Job) func(*runtime.Ctx) {
	return func(c *runtime.Ctx) {
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				j.err = fmt.Errorf("job %d panicked: %v", j.id, r)
				s.mu.Unlock()
			}
		}()
		var err error
		if j.hint.Size > 0 {
			w := j.hint.Work
			if w <= 0 {
				w = 1
			}
			g := c.Group(runtime.GroupHint{Work: w, Size: j.hint.Size})
			g.Spawn(w, func(c *runtime.Ctx) { err = j.fn(c) })
			g.Wait()
		} else {
			err = j.fn(c)
		}
		if err != nil {
			s.mu.Lock()
			if j.err == nil {
				j.err = err
			}
			s.mu.Unlock()
		}
	}
}

// reap waits for j's root to complete, finalizes it, and dispatches the
// next queued job.
func (s *Server) reap(j *Job, work float64) {
	<-j.root.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.workSum -= work
	// A root can complete without running: Pool.Close fails unclaimed
	// roots with runtime.ErrClosed. That error outranks anything the job
	// body recorded (the body never ran).
	if rerr := j.root.Err(); rerr != nil {
		s.completeLocked(j, Failed, rerr)
	} else if j.err != nil {
		s.completeLocked(j, Failed, j.err)
	} else {
		s.completeLocked(j, Done, nil)
	}
	for s.cfg.Admitter.CanDispatch(s.running) && len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.dispatchLocked(next)
	}
	s.signalDrainedLocked()
}

// completeLocked moves j to a terminal state. Caller holds s.mu.
func (s *Server) completeLocked(j *Job, st State, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.err = err
	j.finished = time.Now()
	s.noteComplete(j)
	j.cancel()
	switch st {
	case Done:
		s.ctrs.Completed++
	case Failed:
		s.ctrs.Failed++
	case Canceled:
		s.ctrs.Canceled++
	}
	close(j.done)
	s.signalDrainedLocked()
}

func (s *Server) signalDrainedLocked() {
	if s.draining && s.running == 0 && len(s.queue) == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
}

// Drain stops admitting new jobs (submissions fail with ErrDraining) and
// waits until every queued and running job reached a terminal state, or
// ctx is done. Draining is sticky: it is not undone by a ctx expiry (call
// Drain again to keep waiting).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.running == 0 && len(s.queue) == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drained == nil {
		s.drained = make(chan struct{})
	}
	drained := s.drained
	s.mu.Unlock()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close rejects all future submissions (ErrClosed). It does not wait:
// call Drain first for a graceful shutdown. Queued jobs that were never
// dispatched are cancelled.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.draining = true
	for _, j := range s.queue {
		s.completeLocked(j, Canceled, ErrClosed)
	}
	s.queue = nil
	s.signalDrainedLocked()
}

// Job returns the job with the given id, if retained.
func (s *Server) Job(id int64) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the retained jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// InFlight returns the current queue depth and running-job count.
func (s *Server) InFlight() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// Workers returns the underlying Runtime's worker count.
func (s *Server) Workers() int { return s.pool.NumWorkers() }

// Counters returns the monotonic admission counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrs
}

// retainLocked registers j for id lookup and evicts the oldest terminal
// jobs beyond the retention cap. Caller holds s.mu.
func (s *Server) retainLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.cfg.RetainDone {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.RetainDone
	for _, id := range s.order {
		if excess > 0 {
			if old, ok := s.jobs[id]; ok && old.state.Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}
