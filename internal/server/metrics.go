package server

import (
	"context"
	"errors"

	"github.com/parlab/adws/internal/metrics"
)

// Metrics is the server's latency and admission recording surface. A nil
// *Metrics in Config disables recording at one pointer check per site
// (the runtime's tracer/metrics contract); when non-nil every field must
// be non-nil. The server has no per-worker recorder identity — admission
// runs on client goroutines — so histograms are recorded via RecordAny
// and a handful of shards suffices.
type Metrics struct {
	// QueueWait records submit → dispatch for jobs that reached Running.
	QueueWait *metrics.Histogram
	// Service records dispatch → terminal state for jobs that ran.
	Service *metrics.Histogram
	// E2E records submit → terminal state for every job, including jobs
	// canceled or expired while still queued.
	E2E *metrics.Histogram
	// Rejected counts ErrOverloaded fast-rejects.
	Rejected *metrics.Counter
	// Expired counts jobs canceled while queued because their deadline
	// (or submission context) expired before dispatch.
	Expired *metrics.Counter
}

// check panics on a partially populated Metrics, at New time rather than
// at the first nil-field record site.
func (m *Metrics) check() {
	if m.QueueWait == nil || m.Service == nil || m.E2E == nil ||
		m.Rejected == nil || m.Expired == nil {
		panic("server: Metrics fields must all be non-nil")
	}
}

// noteReject records an admission fast-reject.
func (s *Server) noteReject() {
	if m := s.metrics; m != nil {
		m.Rejected.Inc()
	}
}

// noteQueueExpiry records a job canceled while queued; err is the
// context error that canceled it.
func (s *Server) noteQueueExpiry(err error) {
	if m := s.metrics; m != nil && errors.Is(err, context.DeadlineExceeded) {
		m.Expired.Inc()
	}
}

// noteDispatch records j's queue wait. Caller holds s.mu (the job
// timestamps are mu-guarded); recording itself is lock-free.
func (s *Server) noteDispatch(j *Job) {
	if m := s.metrics; m != nil {
		m.QueueWait.RecordAny(int64(j.started.Sub(j.submitted)))
	}
}

// noteComplete records j's service and end-to-end latency at terminal
// transition. Jobs that never ran (canceled or rejected from the queue)
// have no service span but still count end-to-end. Caller holds s.mu.
func (s *Server) noteComplete(j *Job) {
	m := s.metrics
	if m == nil {
		return
	}
	if !j.started.IsZero() {
		m.Service.RecordAny(int64(j.finished.Sub(j.started)))
	}
	m.E2E.RecordAny(int64(j.finished.Sub(j.submitted)))
}

// serverHistShards is the shard count job-latency histograms need:
// recording happens under or next to s.mu, so contention is already
// bounded and a few shards only serve to absorb RecordAny bursts.
const serverHistShards = 4

// NewMetrics builds a fully populated Metrics recording into histograms
// and counters registered on r under the standard adws_job_* names.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		QueueWait: r.Histogram("adws_job_queue_wait_seconds",
			"Job admission latency: submit to dispatch.", serverHistShards),
		Service: r.Histogram("adws_job_service_seconds",
			"Job service time: dispatch to terminal state.", serverHistShards),
		E2E: r.Histogram("adws_job_e2e_seconds",
			"Job end-to-end latency: submit to terminal state.", serverHistShards),
		Rejected: r.Counter("adws_jobs_rejected_total",
			"Jobs fast-rejected at admission (queue full)."),
		Expired: r.Counter("adws_jobs_deadline_expired_total",
			"Jobs whose deadline expired while still queued."),
	}
}
