package server

import (
	"context"
	"errors"

	"github.com/parlab/adws/internal/metrics"
)

// Metrics is the server's latency and admission recording surface. A nil
// *Metrics in Config disables recording at one pointer check per site
// (the runtime's tracer/metrics contract); when non-nil every scalar
// field must be non-nil. The server has no per-worker recorder identity —
// admission runs on client goroutines — so histograms are recorded via
// RecordAny and a handful of shards suffices.
//
// The Class* maps, when non-nil, add a per-priority-class breakdown of
// the same three latencies (the adws_jobs_*_seconds{class=...} families);
// jobs whose class has no map entry record only the aggregate.
type Metrics struct {
	// QueueWait records submit → dispatch for jobs that reached Running.
	QueueWait *metrics.Histogram
	// Service records dispatch → terminal state for jobs that ran.
	Service *metrics.Histogram
	// E2E records submit → terminal state for every job, including jobs
	// canceled or expired while still queued.
	E2E *metrics.Histogram
	// Rejected counts ErrOverloaded fast-rejects.
	Rejected *metrics.Counter
	// Expired counts deadline-expired jobs: canceled while queued because
	// the deadline (or submission context) expired before dispatch, or
	// rejected at submit because the deadline had already passed.
	Expired *metrics.Counter
	// RateLimited counts ErrRateLimited fast-rejects (AdmitSLO tenant
	// token buckets).
	RateLimited *metrics.Counter

	// ClassQueueWait, ClassService, ClassE2E are the per-class breakdown,
	// keyed by class name (see Metrics doc).
	ClassQueueWait, ClassService, ClassE2E map[string]*metrics.Histogram
}

// check panics on a partially populated Metrics, at New time rather than
// at the first nil-field record site.
func (m *Metrics) check() {
	if m.QueueWait == nil || m.Service == nil || m.E2E == nil ||
		m.Rejected == nil || m.Expired == nil || m.RateLimited == nil {
		panic("server: Metrics fields must all be non-nil")
	}
}

// noteReject records an admission fast-reject; err is the rejection
// cause.
func (s *Server) noteReject(err error) {
	m := s.metrics
	if m == nil {
		return
	}
	m.Rejected.Inc()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		m.Expired.Inc()
	case errors.Is(err, ErrRateLimited):
		m.RateLimited.Inc()
	}
}

// noteQueueExpiry records a job canceled while queued; err is the
// context error that canceled it.
func (s *Server) noteQueueExpiry(err error) {
	if m := s.metrics; m != nil && errors.Is(err, context.DeadlineExceeded) {
		m.Expired.Inc()
	}
}

// noteDispatch records j's queue wait. Caller holds s.mu (the job
// timestamps are mu-guarded); recording itself is lock-free.
func (s *Server) noteDispatch(j *Job) {
	m := s.metrics
	if m == nil {
		return
	}
	wait := int64(j.started.Sub(j.submitted))
	m.QueueWait.RecordAny(wait)
	if h := m.ClassQueueWait[j.hint.Class]; h != nil {
		h.RecordAny(wait)
	}
}

// noteComplete records j's service and end-to-end latency at terminal
// transition. Jobs that never ran (canceled or rejected from the queue)
// have no service span but still count end-to-end. Caller holds s.mu.
func (s *Server) noteComplete(j *Job) {
	m := s.metrics
	if m == nil {
		return
	}
	if !j.started.IsZero() {
		service := int64(j.finished.Sub(j.started))
		m.Service.RecordAny(service)
		if h := m.ClassService[j.hint.Class]; h != nil {
			h.RecordAny(service)
		}
	}
	e2e := int64(j.finished.Sub(j.submitted))
	m.E2E.RecordAny(e2e)
	if h := m.ClassE2E[j.hint.Class]; h != nil {
		h.RecordAny(e2e)
	}
}

// serverHistShards is the shard count job-latency histograms need:
// recording happens under or next to s.mu, so contention is already
// bounded and a few shards only serve to absorb RecordAny bursts.
const serverHistShards = 4

// NewMetrics builds a fully populated Metrics recording into histograms
// and counters registered on r under the standard adws_job_* names, plus
// the per-class adws_jobs_*_seconds{class=...} families over classes
// (nil: DefaultClasses).
func NewMetrics(r *metrics.Registry, classes []string) *Metrics {
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	return &Metrics{
		QueueWait: r.Histogram("adws_job_queue_wait_seconds",
			"Job admission latency: submit to dispatch.", serverHistShards),
		Service: r.Histogram("adws_job_service_seconds",
			"Job service time: dispatch to terminal state.", serverHistShards),
		E2E: r.Histogram("adws_job_e2e_seconds",
			"Job end-to-end latency: submit to terminal state.", serverHistShards),
		Rejected: r.Counter("adws_jobs_rejected_total",
			"Jobs fast-rejected at admission (queue full, rate limit, expired deadline)."),
		Expired: r.Counter("adws_jobs_deadline_expired_total",
			"Jobs whose deadline expired while queued or already at submit."),
		RateLimited: r.Counter("adws_jobs_rate_limited_total",
			"Jobs fast-rejected because their tenant's token bucket was empty."),
		ClassQueueWait: r.HistogramVec("adws_jobs_queue_wait_seconds",
			"Per-class job admission latency: submit to dispatch.",
			"class", classes, serverHistShards),
		ClassService: r.HistogramVec("adws_jobs_service_seconds",
			"Per-class job service time: dispatch to terminal state.",
			"class", classes, serverHistShards),
		ClassE2E: r.HistogramVec("adws_jobs_e2e_seconds",
			"Per-class job end-to-end latency: submit to terminal state.",
			"class", classes, serverHistShards),
	}
}
