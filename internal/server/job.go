package server

import (
	"context"
	"fmt"
	"time"

	"github.com/parlab/adws/internal/runtime"
)

// Hint carries per-job admission and placement hints, the job-level
// analogue of the paper's per-group hints: the job's relative work
// (against the other in-flight jobs, for hint-guided worker-range
// division), its working-set size in bytes (for multi-level tie/flatten
// of the job's root group), and an optional absolute deadline after which
// a still-queued job is cancelled instead of started.
type Hint struct {
	// Work is the job's relative work; non-positive means 1 (equal to an
	// unhinted job).
	Work float64
	// Size is the job's working-set size in bytes; zero means unknown (the
	// job body runs bare, without a sized root group).
	Size int64
	// Deadline, when nonzero, bounds the job's time in the admission
	// queue: a job still queued at the deadline is cancelled and never
	// runs. A deadline already past at submit is rejected synchronously
	// with context.DeadlineExceeded. Running jobs are not preempted (tasks
	// are not interruptible); bodies that want to stop early must watch
	// Job.Context themselves.
	Deadline time.Time
	// Class names the job's priority class. Empty means the server's
	// default class; a name outside the server's class list is rejected
	// with ErrUnknownClass. The server normalizes the field at submit, so
	// Job.Hint always reports the effective class.
	Class string
	// Tenant identifies the submitting tenant for per-tenant rate
	// limiting and fairness accounting. Empty is its own (shared) tenant.
	Tenant string
}

// State is a job's lifecycle state.
type State int32

const (
	// Queued: admitted, waiting in the FIFO admission queue.
	Queued State = iota
	// Running: placed on the pool as a root task group.
	Running
	// Done: completed; Err returns nil.
	Done
	// Failed: completed with an error (body error or panic); Err returns it.
	Failed
	// Canceled: cancelled or deadline-expired before it started running.
	Canceled
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Stats is a job's scheduling profile: admission timing plus the job's
// slice of the scheduler counters (maintained per job by the runtime; see
// trace.SummarizeJob for the richer post-hoc trace slice).
type Stats struct {
	// Queued is the time spent in the admission queue; Run the time
	// between placement and completion (zero while running).
	Queued, Run time.Duration
	// RangeLo and RangeHi are the worker-range fraction [lo, hi) of the
	// pool the job's root task group was placed on (both zero while
	// queued).
	RangeLo, RangeHi float64
	// Tasks, Steals, Migrations are the job's scheduling counters: tasks
	// executed, successful steals of the job's tasks, and deterministic
	// migrations. Live (monotonic) while the job runs.
	Tasks, Steals, Migrations int64
}

// Job is one submitted root computation.
type Job struct {
	id     int64
	hint   Hint
	fn     func(*runtime.Ctx) error
	ctx    context.Context
	cancel context.CancelFunc
	// stopWatch detaches the queued-cancellation watcher once dispatched.
	stopWatch func() bool

	done chan struct{}

	// srv.mu guards the mutable fields below.
	srv                          *Server
	state                        State
	err                          error
	root                         *runtime.RootJob
	lo, hi                       float64
	submitted, started, finished time.Time
}

// ID returns the job's pool-unique ordinal (1-based), assigned at
// submission.
func (j *Job) ID() int64 { return j.id }

// TraceID returns the runtime root-job ordinal the job's tasks carry in
// the pool's trace events (trace.Event.Job), or 0 while the job has not
// been placed yet. It can differ from ID: runtime ordinals are assigned at
// placement (and Pool.Run consumes them too).
func (j *Job) TraceID() int64 {
	j.srv.mu.Lock()
	defer j.srv.mu.Unlock()
	if j.root == nil {
		return 0
	}
	return j.root.ID()
}

// Hint returns the hints the job was submitted with, with Class
// normalized to the effective class. Immutable after Submit returns.
func (j *Job) Hint() Hint { return j.hint }

// Submitted returns the job's submission time. It is set once before the
// job is published and never changes, so Admitters may read it from
// inside Next without taking any lock.
func (j *Job) Submitted() time.Time { return j.submitted }

// Context returns the job's context: it carries the submission context
// and the hint deadline, and is cancelled by Cancel. Job bodies may watch
// it to stop cooperatively.
func (j *Job) Context() context.Context { return j.ctx }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel cancels the job's context. A queued job completes as Canceled
// without running; a running job is not preempted (its body may watch
// Context), and still completes as Done or Failed.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the job's error (Err) or ctx's.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.srv.mu.Lock()
	defer j.srv.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error: nil for Done, the body's error or
// panic for Failed, the context error for Canceled, and nil while the job
// is still queued or running.
func (j *Job) Err() error {
	j.srv.mu.Lock()
	defer j.srv.mu.Unlock()
	return j.err
}

// Stats returns the job's scheduling profile. Safe to call at any time;
// counters are live while the job runs.
func (j *Job) Stats() Stats {
	j.srv.mu.Lock()
	defer j.srv.mu.Unlock()
	return j.statsLocked()
}

func (j *Job) statsLocked() Stats {
	s := Stats{RangeLo: j.lo, RangeHi: j.hi}
	switch {
	case j.state == Queued:
		s.Queued = time.Since(j.submitted)
	case j.started.IsZero(): // cancelled while queued
		s.Queued = j.finished.Sub(j.submitted)
	case j.state == Running:
		s.Queued = j.started.Sub(j.submitted)
		s.Run = time.Since(j.started)
	default:
		s.Queued = j.started.Sub(j.submitted)
		s.Run = j.finished.Sub(j.started)
	}
	if j.root != nil {
		s.Tasks = j.root.Tasks()
		s.Steals = j.root.Steals()
		s.Migrations = j.root.Migrations()
	}
	return s
}
