package dataset

import "testing"

func TestDatasetShape(t *testing.T) {
	ds := Synthetic(1000, 0, 2) // attrs<=0 defaults to 28
	if ds.Attrs != DefaultAttrs {
		t.Errorf("Attrs = %d, want %d", ds.Attrs, DefaultAttrs)
	}
	if ds.Bytes() != 1000*28*8 {
		t.Errorf("Bytes = %d", ds.Bytes())
	}
	// Labels are roughly balanced.
	ones := 0
	for _, l := range ds.Labels {
		ones += int(l)
	}
	if ones < 400 || ones > 600 {
		t.Errorf("label balance %d/1000", ones)
	}
	// Split holds out the tail.
	train, test := ds.Split(100)
	if len(train) != 900 || len(test) != 100 || test[0] != 900 {
		t.Errorf("split wrong: %d/%d/%v", len(train), len(test), test[0])
	}
	// Oversized test request falls back to half.
	tr2, te2 := ds.Split(5000)
	if len(tr2) != 500 || len(te2) != 500 {
		t.Errorf("oversized split: %d/%d", len(tr2), len(te2))
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a := Synthetic(500, 6, 9)
	b := Synthetic(500, 6, 9)
	for i := 0; i < 500; i++ {
		if a.Labels[i] != b.Labels[i] || a.Values[3][i] != b.Values[3][i] {
			t.Fatal("datasets with equal seeds differ")
		}
	}
	c := Synthetic(500, 6, 10)
	same := 0
	for i := 0; i < 500; i++ {
		if a.Values[0][i] == c.Values[0][i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/500 equal values", same)
	}
}
