// Package dataset generates the synthetic HIGGS-like binary-classification
// dataset used by the decision-tree benchmark. The real paper uses the
// HIGGS dataset from the UCI repository (11M rows × 28 continuous
// attributes, ~2 GB); this generator reproduces its scheduling-relevant
// properties — row count, attribute count, continuous values, and a
// learnable but noisy class structure — without the download.
//
// Rows are drawn from two overlapping class distributions: a subset of
// informative attributes shifts its mean with the class (with per-row
// noise), the rest are pure noise, mirroring HIGGS's mix of low-level and
// derived features. A depth-limited decision tree reaches roughly 70–75%
// accuracy, well above the ~52% chance level, matching the paper's
// validation figures (§6.2).
package dataset

import (
	"math"

	"github.com/parlab/adws/internal/sched"
)

// Dataset is a column-major table of continuous attributes plus binary
// labels. Column-major layout matches the per-attribute scans of
// histogram-based decision tree construction.
type Dataset struct {
	Rows  int
	Attrs int
	// Values[a][r] is attribute a of row r.
	Values [][]float64
	// Labels[r] is the class of row r (0 or 1).
	Labels []uint8
}

// Bytes returns the in-memory size of the attribute data.
func (d *Dataset) Bytes() int64 {
	return int64(d.Rows) * int64(d.Attrs) * 8
}

// DefaultAttrs matches the HIGGS dataset's attribute count.
const DefaultAttrs = 28

// informative is the number of class-correlated attributes.
const informative = 8

// Synthetic generates a deterministic dataset of the given shape.
func Synthetic(rows, attrs int, seed uint64) *Dataset {
	if attrs <= 0 {
		attrs = DefaultAttrs
	}
	d := &Dataset{Rows: rows, Attrs: attrs}
	d.Values = make([][]float64, attrs)
	for a := range d.Values {
		d.Values[a] = make([]float64, rows)
	}
	d.Labels = make([]uint8, rows)

	rng := sched.NewRNG(seed, 0)
	for r := 0; r < rows; r++ {
		label := uint8(rng.Next() & 1)
		d.Labels[r] = label
		shift := 0.0
		if label == 1 {
			shift = 0.85
		}
		for a := 0; a < attrs; a++ {
			v := gaussian(rng)
			if a < informative {
				// Informative attributes: class-shifted mean with
				// per-attribute scaling, plus heavier noise on later ones.
				scale := 1.0 + 0.15*float64(a)
				v = v*scale + shift*(1.0-0.08*float64(a))
			}
			d.Values[a][r] = v
		}
	}
	return d
}

// gaussian draws a standard normal variate (Box–Muller).
func gaussian(r *sched.RNG) float64 {
	u1 := r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Split partitions the dataset's row indices into a training and testing
// set: the last testRows rows are held out (like the paper's 500k of 11M).
func (d *Dataset) Split(testRows int) (train, test []int32) {
	if testRows >= d.Rows {
		testRows = d.Rows / 2
	}
	n := d.Rows - testRows
	train = make([]int32, n)
	for i := range train {
		train[i] = int32(i)
	}
	test = make([]int32, testRows)
	for i := range test {
		test[i] = int32(n + i)
	}
	return train, test
}
