package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog trigger reasons, the label values of
// adws_watchdog_triggers_total{reason}.
const (
	// ReasonWorkerStall fires when a worker is not parked, has executed
	// no task for at least StallAfter, and jobs are waiting in the
	// admission queue — the "scheduler is wedged while work exists"
	// verdict that degrades /healthz.
	ReasonWorkerStall = "worker_stall"
	// ReasonDeadlineBurst fires when at least DeadlineBurst queue
	// deadlines expired within one BurstWindow.
	ReasonDeadlineBurst = "deadline_burst"
	// ReasonSLOBurn fires when the SLO burn-rate signal crosses
	// BurnThreshold.
	ReasonSLOBurn = "slo_burn"
)

// Reasons lists every trigger reason, in metric label order.
func Reasons() []string {
	return []string{ReasonWorkerStall, ReasonDeadlineBurst, ReasonSLOBurn}
}

const (
	reasonIdxStall = iota
	reasonIdxBurst
	reasonIdxBurn
	numReasons
)

// Signals are the cheap sampled inputs the watchdog polls. Each is a
// closure so obs stays independent of the runtime and server packages;
// nil members disable the corresponding check.
type Signals struct {
	// Sched returns the live per-worker scheduler state (progress
	// counters, parked bits). Required for stall detection.
	Sched func() SchedSnapshot
	// QueuedJobs returns the admission queue depth (jobs waiting).
	QueuedJobs func() int
	// OldestQueueAgeNS returns the age of the oldest queued job in
	// nanoseconds (0 when the queue is empty). Reported in Status for
	// operators; not itself a trigger.
	OldestQueueAgeNS func() int64
	// DeadlineExpired returns the cumulative count of jobs whose queue
	// deadline expired.
	DeadlineExpired func() int64
	// SLOBurn returns the current SLO burn rate in [0, 1] — the fraction
	// of recently finished jobs that missed their deadline.
	SLOBurn func() float64
}

// WatchdogConfig parameterizes a Watchdog. Zero values take defaults.
type WatchdogConfig struct {
	// Interval is the sampling period (default 25ms).
	Interval time.Duration
	// StallAfter is how long a non-parked worker must make no task
	// progress, with jobs queued, before the stall verdict (default
	// 250ms).
	StallAfter time.Duration
	// DeadlineBurst is the number of deadline expiries within one
	// BurstWindow that constitutes a burst (default 8).
	DeadlineBurst int
	// BurstWindow is the deadline-burst sliding window (default 1s).
	BurstWindow time.Duration
	// BurnThreshold is the SLO burn rate that triggers (default 0.5).
	BurnThreshold float64
	// DumpDir, when non-empty, receives one JSON file per trigger dump
	// (fr-<seq>-<reason>.json). Empty falls back to $ADWS_FR_DIR; both
	// empty keeps dumps in memory only (Recorder.LastDump).
	DumpDir string
	// OnTrigger, when non-nil, observes every trigger's dump (nil Dump
	// when the watchdog has no recorder).
	OnTrigger func(*Dump)
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 250 * time.Millisecond
	}
	if c.DeadlineBurst <= 0 {
		c.DeadlineBurst = 8
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = time.Second
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 0.5
	}
	if c.DumpDir == "" {
		c.DumpDir = os.Getenv("ADWS_FR_DIR")
	}
	return c
}

// Status is the watchdog's health summary, served by /healthz.
type Status struct {
	// OK is false while a stall verdict is active (the 503 condition).
	OK bool `json:"ok"`
	// StallActive mirrors the live stall verdict.
	StallActive bool `json:"stall_active"`
	// Triggered reports whether the watchdog ever fired.
	Triggered bool `json:"triggered"`
	// LastReason/LastWorker/LastAt describe the most recent trigger
	// (worker -1 for non-stall reasons; zero LastAt when never fired).
	LastReason string    `json:"last_reason,omitempty"`
	LastWorker int       `json:"last_worker"`
	LastAt     time.Time `json:"last_at"`
	// Triggers counts triggers by reason.
	Triggers map[string]int64 `json:"triggers"`
	// OldestQueueAgeNS snapshots the oldest queued job's age at the last
	// sample (0 with an empty queue or no signal).
	OldestQueueAgeNS int64 `json:"oldest_queue_age_ns"`
}

// expSample is one (time, cumulative expiries) observation of the
// deadline-burst window.
type expSample struct {
	at  time.Time
	exp int64
}

// Watchdog samples Signals on a fixed interval and, on a trigger,
// auto-dumps the flight recorder with a scheduler snapshot and counts
// the trigger by reason. Triggers are edge-triggered: a persisting
// condition fires once when it appears and re-arms when it clears.
type Watchdog struct {
	rec *Recorder
	sig Signals
	cfg WatchdogConfig

	triggers [numReasons]atomic.Int64
	// stallActive is the live stall verdict (the /healthz 503 signal).
	stallActive atomic.Bool

	mu sync.Mutex //adws:lockrank(15) sampling may dump under it (dumpMu rank 85)
	// lastTasks/lastProgress track per-worker progress between samples;
	// stalled marks workers with an active stall verdict.
	lastTasks    []int64
	lastProgress []time.Time
	stalled      []bool
	expWindow    []expSample
	burstActive  bool
	burnActive   bool
	lastReason   string
	lastWorker   int
	lastAt       time.Time
	lastQueueAge int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewWatchdog builds a watchdog over rec (nil: triggers are counted and
// reported but nothing is dumped) polling sig.
func NewWatchdog(rec *Recorder, sig Signals, cfg WatchdogConfig) *Watchdog {
	return &Watchdog{
		rec:        rec,
		sig:        sig,
		cfg:        cfg.withDefaults(),
		lastWorker: -1,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Start launches the sampling goroutine. Idempotent.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		go w.run()
	})
}

// Stop halts the sampling goroutine and waits for it. Idempotent; a
// never-started watchdog stops cleanly.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: unblock the wait
	<-w.done
}

func (w *Watchdog) run() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-tick.C:
			w.sample(now)
		}
	}
}

// Sample runs one sampling step immediately (tests and tooling; the
// normal path is the Start goroutine).
func (w *Watchdog) Sample() { w.sample(time.Now()) }

// sample is one watchdog evaluation at time now.
func (w *Watchdog) sample(now time.Time) {
	queued := 0
	if w.sig.QueuedJobs != nil {
		queued = w.sig.QueuedJobs()
	}
	if w.sig.OldestQueueAgeNS != nil {
		age := w.sig.OldestQueueAgeNS()
		w.mu.Lock()
		w.lastQueueAge = age
		w.mu.Unlock()
	}

	if w.sig.Sched != nil {
		snap := w.sig.Sched()
		w.sampleStall(now, snap, queued)
	}
	if w.sig.DeadlineExpired != nil {
		w.sampleBurst(now)
	}
	if w.sig.SLOBurn != nil {
		w.sampleBurn(now)
	}
}

// sampleStall updates per-worker progress tracking and the stall
// verdict. A worker is stalled when it is not parked, its task counter
// has not moved for StallAfter, and jobs are queued behind it (the task
// counter bumps at execution START, so a single long-running task counts
// as a stall — exactly the "one job wedged the pool" page).
func (w *Watchdog) sampleStall(now time.Time, snap SchedSnapshot, queued int) {
	w.mu.Lock()
	if len(w.lastTasks) != len(snap.Workers) {
		w.lastTasks = make([]int64, len(snap.Workers))
		w.lastProgress = make([]time.Time, len(snap.Workers))
		w.stalled = make([]bool, len(snap.Workers))
		for i, ws := range snap.Workers {
			w.lastTasks[i] = ws.Tasks
			w.lastProgress[i] = now
		}
		w.mu.Unlock()
		return
	}
	newStall := -1
	anyStalled := false
	for i, ws := range snap.Workers {
		if ws.Tasks != w.lastTasks[i] || ws.Parked {
			w.lastTasks[i] = ws.Tasks
			w.lastProgress[i] = now
			w.stalled[i] = false
			continue
		}
		if queued > 0 && now.Sub(w.lastProgress[i]) >= w.cfg.StallAfter {
			if !w.stalled[i] {
				w.stalled[i] = true
				newStall = i
			}
		} else if queued == 0 {
			// No work waiting: the verdict clears even if the worker is
			// still busy — nothing is being starved.
			w.stalled[i] = false
		}
		anyStalled = anyStalled || w.stalled[i]
	}
	w.mu.Unlock()
	w.stallActive.Store(anyStalled)
	if newStall >= 0 {
		w.trigger(ReasonWorkerStall, reasonIdxStall, newStall, now, &snap)
	}
}

// sampleBurst maintains the sliding deadline-expiry window and fires on
// its rising edge.
func (w *Watchdog) sampleBurst(now time.Time) {
	exp := w.sig.DeadlineExpired()
	w.mu.Lock()
	w.expWindow = append(w.expWindow, expSample{at: now, exp: exp})
	cut := 0
	for cut < len(w.expWindow)-1 && now.Sub(w.expWindow[cut].at) > w.cfg.BurstWindow {
		cut++
	}
	w.expWindow = w.expWindow[cut:]
	delta := exp - w.expWindow[0].exp
	burst := delta >= int64(w.cfg.DeadlineBurst)
	fire := burst && !w.burstActive
	w.burstActive = burst
	w.mu.Unlock()
	if fire {
		w.trigger(ReasonDeadlineBurst, reasonIdxBurst, -1, now, nil)
	}
}

// sampleBurn fires on the burn-rate threshold's rising edge.
func (w *Watchdog) sampleBurn(now time.Time) {
	burn := w.sig.SLOBurn()
	w.mu.Lock()
	hot := burn >= w.cfg.BurnThreshold
	fire := hot && !w.burnActive
	w.burnActive = hot
	w.mu.Unlock()
	if fire {
		w.trigger(ReasonSLOBurn, reasonIdxBurn, -1, now, nil)
	}
}

// trigger records one firing: bump the reason counter, remember the
// verdict, dump the flight recorder with the scheduler snapshot, write
// the dump file if configured, and notify OnTrigger.
func (w *Watchdog) trigger(reason string, idx, worker int, now time.Time, snap *SchedSnapshot) {
	w.triggers[idx].Add(1)
	w.mu.Lock()
	w.lastReason = reason
	w.lastWorker = worker
	w.lastAt = now
	w.mu.Unlock()

	var d *Dump
	if w.rec != nil {
		if snap == nil && w.sig.Sched != nil {
			s := w.sig.Sched()
			snap = &s
		}
		d = w.rec.Dump(reason, worker, snap)
		if dir := w.cfg.DumpDir; dir != "" {
			w.writeDumpFile(dir, d)
		}
	}
	if w.cfg.OnTrigger != nil {
		w.cfg.OnTrigger(d)
	}
}

// writeDumpFile persists one dump as JSON under dir (best-effort: dump
// files are diagnostics, a full disk must not wedge the watchdog).
func (w *Watchdog) writeDumpFile(dir string, d *Dump) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	name := filepath.Join(dir, fmt.Sprintf("fr-%d-%s.json", d.Seq, d.Reason))
	f, err := os.Create(name)
	if err != nil {
		return
	}
	_ = d.WriteJSON(f)
	_ = f.Close()
}

// Triggers returns the per-reason trigger counts.
func (w *Watchdog) Triggers() map[string]int64 {
	return map[string]int64{
		ReasonWorkerStall:   w.triggers[reasonIdxStall].Load(),
		ReasonDeadlineBurst: w.triggers[reasonIdxBurst].Load(),
		ReasonSLOBurn:       w.triggers[reasonIdxBurn].Load(),
	}
}

// TriggerTotal returns the total trigger count across reasons.
func (w *Watchdog) TriggerTotal() int64 {
	var t int64
	for i := range w.triggers {
		t += w.triggers[i].Load()
	}
	return t
}

// StallActive reports whether a stall verdict is currently active (the
// /healthz 503 condition).
func (w *Watchdog) StallActive() bool { return w.stallActive.Load() }

// Status returns the watchdog's health summary.
func (w *Watchdog) Status() Status {
	stall := w.stallActive.Load()
	w.mu.Lock()
	st := Status{
		OK:               !stall,
		StallActive:      stall,
		Triggered:        false,
		LastReason:       w.lastReason,
		LastWorker:       w.lastWorker,
		LastAt:           w.lastAt,
		Triggers:         nil,
		OldestQueueAgeNS: w.lastQueueAge,
	}
	w.mu.Unlock()
	st.Triggers = w.Triggers()
	st.Triggered = w.TriggerTotal() > 0
	return st
}
