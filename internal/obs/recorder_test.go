package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/parlab/adws/internal/trace"
)

// TestWantsFilter pins the hot-path filter: rare scheduler transitions
// pass at any depth, task spans and waits only at depth <= DepthLimit,
// and a nil recorder wants nothing.
func TestWantsFilter(t *testing.T) {
	r := NewRecorder(Config{Workers: 2, DepthLimit: 1})
	always := []trace.EventType{
		trace.EvStealAttempt, trace.EvStealSuccess, trace.EvStealFail,
		trace.EvMigration, trace.EvPark, trace.EvWake, trace.EvBoundary,
	}
	for _, et := range always {
		if !r.Wants(et, 99) {
			t.Errorf("Wants(%v, 99) = false, want true (always mask)", et)
		}
	}
	shallow := []trace.EventType{
		trace.EvTaskBegin, trace.EvTaskEnd, trace.EvWaitEnter, trace.EvWaitExit,
	}
	for _, et := range shallow {
		if !r.Wants(et, 0) || !r.Wants(et, 1) {
			t.Errorf("Wants(%v, <=1) = false, want true", et)
		}
		if r.Wants(et, 2) {
			t.Errorf("Wants(%v, 2) = true, want false (beyond depth limit)", et)
		}
	}
	var nilRec *Recorder
	if nilRec.Wants(trace.EvPark, 0) {
		t.Error("nil recorder Wants = true")
	}
}

// TestDumpMergesAndConsumes pins Dump: events from every worker merged
// time-sorted, sequence numbers advancing, and destructiveness (the
// second dump starts an empty window).
func TestDumpMergesAndConsumes(t *testing.T) {
	r := NewRecorder(Config{Workers: 2, Capacity: 8})
	r.Record(0, trace.Event{Type: trace.EvTaskBegin, Time: 30, Worker: 0})
	r.Record(1, trace.Event{Type: trace.EvStealSuccess, Time: 10, Worker: 1})
	r.Record(0, trace.Event{Type: trace.EvTaskEnd, Time: 50, Worker: 0})

	if got := r.LastNS(0); got != 50 {
		t.Errorf("LastNS(0) = %d, want 50", got)
	}
	if got := r.LastNS(1); got != 10 {
		t.Errorf("LastNS(1) = %d, want 10", got)
	}

	d := r.Dump("manual", -1, nil)
	if d.Seq != 1 || d.Reason != "manual" || d.Workers != 2 {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Events) != 3 {
		t.Fatalf("dump has %d events, want 3", len(d.Events))
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Time < d.Events[i-1].Time {
			t.Fatalf("events not time-sorted: %v", d.Events)
		}
	}
	if r.LastDump() != d {
		t.Error("LastDump does not return the dump")
	}

	d2 := r.Dump("manual", -1, nil)
	if d2.Seq != 2 || len(d2.Events) != 0 {
		t.Errorf("second dump seq=%d events=%d, want 2/0 (cut is destructive)", d2.Seq, len(d2.Events))
	}
}

// TestDumpJSONForms pins the dump's compact JSON and Chrome exports.
func TestDumpJSONForms(t *testing.T) {
	r := NewRecorder(Config{Workers: 1})
	r.Record(0, trace.Event{Type: trace.EvTaskBegin, Time: 5, Worker: 0, Task: 7, Depth: 1})
	snap := &SchedSnapshot{TakenNS: 99, Workers: []WorkerState{{Worker: 0, Tasks: 1}}}
	d := r.Dump(ReasonWorkerStall, 0, snap)

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Seq    int64  `json:"seq"`
		Reason string `json:"reason"`
		Worker int    `json:"worker"`
		Sched  *struct {
			TakenNS int64 `json:"taken_ns"`
		} `json:"sched"`
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("dump JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.Reason != ReasonWorkerStall || decoded.Worker != 0 {
		t.Errorf("decoded header = %+v", decoded)
	}
	if decoded.Sched == nil || decoded.Sched.TakenNS != 99 {
		t.Errorf("sched snapshot missing or wrong: %+v", decoded.Sched)
	}
	if len(decoded.Events) != 1 || decoded.Events[0]["t"] != "task-begin" {
		t.Errorf("compact events = %v", decoded.Events)
	}

	buf.Reset()
	if err := d.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Errorf("chrome export missing traceEvents: %s", buf.String())
	}
}
