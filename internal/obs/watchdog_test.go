package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/parlab/adws/internal/trace"
)

// fakeSignals is a controllable signal source for deterministic
// watchdog tests (samples are driven directly via sample(now), no
// goroutine, no real clock).
type fakeSignals struct {
	snap    SchedSnapshot
	queued  int
	age     int64
	expired int64
	burn    float64
}

func (f *fakeSignals) signals() Signals {
	return Signals{
		Sched:            func() SchedSnapshot { return f.snap },
		QueuedJobs:       func() int { return f.queued },
		OldestQueueAgeNS: func() int64 { return f.age },
		DeadlineExpired:  func() int64 { return f.expired },
		SLOBurn:          func() float64 { return f.burn },
	}
}

func workers(n int) []WorkerState {
	out := make([]WorkerState, n)
	for i := range out {
		out[i].Worker = i
	}
	return out
}

// TestWatchdogStall drives the injected-stall scenario end to end: one
// worker's task counter goes flat with jobs queued, the watchdog fires
// exactly once with that worker's id, the stall verdict degrades Status
// (the /healthz 503 signal), clears when the queue empties, and re-arms
// for a second stall.
func TestWatchdogStall(t *testing.T) {
	f := &fakeSignals{snap: SchedSnapshot{Workers: workers(3)}, queued: 1}
	var dumps []*Dump
	rec := NewRecorder(Config{Workers: 3})
	rec.Record(1, trace.Event{Type: trace.EvTaskBegin, Time: 123, Worker: 1})
	wd := NewWatchdog(rec, f.signals(), WatchdogConfig{
		StallAfter: 100 * time.Millisecond,
		OnTrigger:  func(d *Dump) { dumps = append(dumps, d) },
	})

	t0 := time.Unix(1000, 0)
	// Workers 0 and 2 make progress; worker 1 is wedged on one task.
	f.snap.Workers[0].Tasks, f.snap.Workers[2].Tasks = 1, 1
	wd.sample(t0) // baseline init, no verdicts possible
	if wd.TriggerTotal() != 0 {
		t.Fatal("trigger on baseline sample")
	}

	f.snap.Workers[0].Tasks, f.snap.Workers[2].Tasks = 2, 2
	wd.sample(t0.Add(50 * time.Millisecond)) // under threshold
	if wd.StallActive() {
		t.Fatal("stall verdict before StallAfter elapsed")
	}

	f.snap.Workers[0].Tasks, f.snap.Workers[2].Tasks = 3, 3
	wd.sample(t0.Add(150 * time.Millisecond)) // worker 1 flat for 150ms
	if !wd.StallActive() {
		t.Fatal("no stall verdict after StallAfter elapsed with jobs queued")
	}
	if got := wd.Triggers()[ReasonWorkerStall]; got != 1 {
		t.Fatalf("stall triggers = %d, want 1", got)
	}
	st := wd.Status()
	if st.OK || !st.StallActive || st.LastReason != ReasonWorkerStall || st.LastWorker != 1 {
		t.Fatalf("status = %+v, want !OK stall on worker 1", st)
	}
	if len(dumps) != 1 || dumps[0] == nil {
		t.Fatalf("OnTrigger saw %d dumps", len(dumps))
	}
	if dumps[0].Worker != 1 || dumps[0].Reason != ReasonWorkerStall {
		t.Fatalf("dump = worker %d reason %q", dumps[0].Worker, dumps[0].Reason)
	}
	if len(dumps[0].Events) != 1 || dumps[0].Events[0].Time != 123 {
		t.Fatalf("dump missing the stall window events: %v", dumps[0].Events)
	}
	if dumps[0].Sched == nil {
		t.Fatal("dump has no scheduler snapshot")
	}

	// Edge-triggered: the persisting stall does not fire again.
	f.snap.Workers[0].Tasks, f.snap.Workers[2].Tasks = 4, 4
	wd.sample(t0.Add(300 * time.Millisecond))
	if got := wd.Triggers()[ReasonWorkerStall]; got != 1 {
		t.Fatalf("persisting stall re-fired: triggers = %d", got)
	}

	// Queue empties: the verdict clears even though the worker is still
	// busy — nothing is starved.
	f.queued = 0
	f.snap.Workers[0].Tasks, f.snap.Workers[2].Tasks = 5, 5
	wd.sample(t0.Add(400 * time.Millisecond))
	if wd.StallActive() || !wd.Status().OK {
		t.Fatal("stall verdict did not clear with an empty queue")
	}

	// Re-arm: progress, then a second stall fires a second trigger.
	f.queued = 1
	f.snap.Workers[0].Tasks, f.snap.Workers[2].Tasks = 6, 6
	f.snap.Workers[1].Tasks = 9
	wd.sample(t0.Add(500 * time.Millisecond))
	f.snap.Workers[0].Tasks, f.snap.Workers[2].Tasks = 7, 7
	wd.sample(t0.Add(700 * time.Millisecond))
	if got := wd.Triggers()[ReasonWorkerStall]; got != 2 {
		t.Fatalf("second stall triggers = %d, want 2", got)
	}
}

// TestWatchdogParkedNeverStalls pins that a parked worker is progress by
// definition: idle workers must not page anyone.
func TestWatchdogParkedNeverStalls(t *testing.T) {
	f := &fakeSignals{snap: SchedSnapshot{Workers: workers(1)}, queued: 1}
	f.snap.Workers[0].Parked = true
	wd := NewWatchdog(nil, f.signals(), WatchdogConfig{StallAfter: 10 * time.Millisecond})
	t0 := time.Unix(1000, 0)
	wd.sample(t0)
	wd.sample(t0.Add(time.Hour))
	if wd.TriggerTotal() != 0 || wd.StallActive() {
		t.Fatal("parked worker produced a stall verdict")
	}
}

// TestWatchdogDeadlineBurst pins the sliding-window burst detector and
// its edge re-arm.
func TestWatchdogDeadlineBurst(t *testing.T) {
	f := &fakeSignals{}
	wd := NewWatchdog(nil, Signals{DeadlineExpired: func() int64 { return f.expired }},
		WatchdogConfig{DeadlineBurst: 4, BurstWindow: time.Second})
	t0 := time.Unix(1000, 0)
	wd.sample(t0)
	f.expired = 3
	wd.sample(t0.Add(200 * time.Millisecond)) // 3 in window: under threshold
	if wd.Triggers()[ReasonDeadlineBurst] != 0 {
		t.Fatal("burst fired under threshold")
	}
	f.expired = 5
	wd.sample(t0.Add(400 * time.Millisecond)) // 5 in window: burst
	if got := wd.Triggers()[ReasonDeadlineBurst]; got != 1 {
		t.Fatalf("burst triggers = %d, want 1", got)
	}
	f.expired = 6
	wd.sample(t0.Add(600 * time.Millisecond)) // still bursting: no re-fire
	if got := wd.Triggers()[ReasonDeadlineBurst]; got != 1 {
		t.Fatalf("burst re-fired while active: %d", got)
	}
	wd.sample(t0.Add(3 * time.Second)) // window slides past, re-arms
	f.expired = 12
	wd.sample(t0.Add(3*time.Second + 100*time.Millisecond))
	if got := wd.Triggers()[ReasonDeadlineBurst]; got != 2 {
		t.Fatalf("second burst triggers = %d, want 2", got)
	}
}

// TestWatchdogBurn pins the burn-rate threshold's edge triggering.
func TestWatchdogBurn(t *testing.T) {
	f := &fakeSignals{}
	wd := NewWatchdog(nil, Signals{SLOBurn: func() float64 { return f.burn }},
		WatchdogConfig{BurnThreshold: 0.5})
	t0 := time.Unix(1000, 0)
	f.burn = 0.4
	wd.sample(t0)
	if wd.Triggers()[ReasonSLOBurn] != 0 {
		t.Fatal("burn fired under threshold")
	}
	f.burn = 0.6
	wd.sample(t0.Add(time.Second))
	wd.sample(t0.Add(2 * time.Second)) // persisting: one trigger only
	if got := wd.Triggers()[ReasonSLOBurn]; got != 1 {
		t.Fatalf("burn triggers = %d, want 1", got)
	}
	f.burn = 0.1
	wd.sample(t0.Add(3 * time.Second))
	f.burn = 0.9
	wd.sample(t0.Add(4 * time.Second))
	if got := wd.Triggers()[ReasonSLOBurn]; got != 2 {
		t.Fatalf("burn re-arm triggers = %d, want 2", got)
	}
}

// TestWatchdogDumpFile pins the on-disk dump artifact: a trigger with
// DumpDir set writes fr-<seq>-<reason>.json.
func TestWatchdogDumpFile(t *testing.T) {
	dir := t.TempDir()
	f := &fakeSignals{burn: 1}
	rec := NewRecorder(Config{Workers: 1})
	rec.Record(0, trace.Event{Type: trace.EvPark, Time: 1})
	wd := NewWatchdog(rec, Signals{SLOBurn: func() float64 { return f.burn }},
		WatchdogConfig{DumpDir: dir})
	wd.sample(time.Unix(1000, 0))
	name := filepath.Join(dir, "fr-1-"+ReasonSLOBurn+".json")
	if _, err := os.Stat(name); err != nil {
		t.Fatalf("dump file not written: %v", err)
	}
}

// TestWatchdogStartStop pins lifecycle idempotence, including stopping a
// watchdog that never started.
func TestWatchdogStartStop(t *testing.T) {
	wd := NewWatchdog(nil, Signals{}, WatchdogConfig{Interval: time.Millisecond})
	wd.Start()
	wd.Start()
	wd.Stop()
	wd.Stop()

	never := NewWatchdog(nil, Signals{}, WatchdogConfig{})
	never.Stop() // must not hang
}
