package obs

import (
	"encoding/json"
	"io"
	"time"

	"github.com/parlab/adws/internal/trace"
)

// WorkerState is one worker's live scheduler state as reported by
// /debug/sched and embedded in watchdog dumps. The runtime fills it from
// lock-free reads (stats atomics, the idle bitmask, the current-job
// atomics) plus one short per-entity lock for the queue depth.
type WorkerState struct {
	Worker int  `json:"worker"`
	Parked bool `json:"parked"`
	// Tasks..Wakes are the worker's monotonic scheduling counters; Tasks
	// is the watchdog's progress signal.
	Tasks  int64 `json:"tasks"`
	Steals int64 `json:"steals"`
	Parks  int64 `json:"parks"`
	Wakes  int64 `json:"wakes"`
	// Job is the root-job ordinal of the task the worker is running (or
	// last ran; 0 before any job and while parked — see RunningNS).
	Job int64 `json:"job"`
	// RunningNS is how long the worker has been running the current job
	// continuously, 0 when idle.
	RunningNS int64 `json:"running_ns"`
	// QueueLen is the depth of the worker's primary entity queue.
	QueueLen int `json:"queue_len"`
	// StealLo/StealHi are the worker's current dominant-group steal
	// range [lo, hi) in logical entity units (zero-width when the worker
	// is not dominated or under WS).
	StealLo float64 `json:"steal_lo"`
	StealHi float64 `json:"steal_hi"`
	// LastEventAgeNS is the age of the worker's most recent
	// flight-recorder event, -1 if it has recorded nothing.
	LastEventAgeNS int64 `json:"last_event_age_ns"`
}

// SchedSnapshot is a point-in-time view of every worker's scheduler
// state. It is advisory: the fields are read lock-free while the pool
// runs, so the rows are individually accurate but not mutually atomic.
type SchedSnapshot struct {
	// TakenNS is the snapshot timestamp in Event.Time units (monotonic
	// nanoseconds).
	TakenNS int64         `json:"taken_ns"`
	Workers []WorkerState `json:"workers"`
}

// Dump is one flight-recorder dump: a consistent cross-worker event
// window plus the scheduler state at dump time.
type Dump struct {
	// Seq numbers dumps per recorder, starting at 1.
	Seq int64 `json:"seq"`
	// Reason is the trigger ("manual", or a watchdog reason).
	Reason string `json:"reason"`
	// Worker is the stalled worker for worker-stall dumps, -1 otherwise.
	Worker int `json:"worker"`
	// TakenAt is the dump's wall-clock time.
	TakenAt time.Time `json:"taken_at"`
	// Workers is the worker count (sizes the Chrome export's tracks).
	Workers int `json:"workers"`
	// Events is the recorded window, merged across workers and
	// time-sorted.
	Events []trace.Event `json:"-"`
	// Sched is the scheduler snapshot taken with the dump (nil when the
	// dumper had no snapshot hook).
	Sched *SchedSnapshot `json:"sched,omitempty"`
}

// eventJSON is the compact JSON form of one event: named type, short
// keys, zero fields omitted.
type eventJSON struct {
	T      string  `json:"t"`
	W      int32   `json:"w"`
	NS     int64   `json:"ns"`
	Task   int64   `json:"task,omitempty"`
	Job    int64   `json:"job,omitempty"`
	Self   int32   `json:"self,omitempty"`
	Victim int32   `json:"victim,omitempty"`
	Depth  int32   `json:"depth,omitempty"`
	Lo     float64 `json:"lo,omitempty"`
	Hi     float64 `json:"hi,omitempty"`
}

// dumpJSON is the on-disk/HTTP form of a Dump.
type dumpJSON struct {
	Seq     int64          `json:"seq"`
	Reason  string         `json:"reason"`
	Worker  int            `json:"worker"`
	TakenAt time.Time      `json:"taken_at"`
	Workers int            `json:"workers"`
	Sched   *SchedSnapshot `json:"sched,omitempty"`
	Events  []eventJSON    `json:"events"`
}

// MarshalJSON renders the dump in its compact JSON form (events with
// named types and short keys).
func (d *Dump) MarshalJSON() ([]byte, error) {
	out := dumpJSON{
		Seq: d.Seq, Reason: d.Reason, Worker: d.Worker,
		TakenAt: d.TakenAt, Workers: d.Workers, Sched: d.Sched,
		Events: make([]eventJSON, len(d.Events)),
	}
	for i, ev := range d.Events {
		out.Events[i] = eventJSON{
			T: ev.Type.String(), W: ev.Worker, NS: ev.Time,
			Task: ev.Task, Job: ev.Job, Self: ev.Self, Victim: ev.Victim,
			Depth: ev.Depth, Lo: ev.RangeLo, Hi: ev.RangeHi,
		}
	}
	return json.Marshal(out)
}

// WriteJSON writes the dump's compact JSON form.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// WriteChrome writes the dump's event window as Chrome trace-event JSON
// (Perfetto / chrome://tracing), one track per worker.
func (d *Dump) WriteChrome(w io.Writer) error {
	return trace.WriteChromeTrace(w, d.Events, d.Workers)
}
