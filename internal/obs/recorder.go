// Package obs is the always-on observability layer over the scheduler:
// a flight recorder (a small, always-on trace ring per worker with a
// live, consistent dump), a watchdog that samples cheap scheduler
// signals and auto-dumps on stalls, deadline-miss bursts, and SLO burn,
// and the scheduler state snapshot types the live introspection
// endpoints (/debug/sched, /debug/fr) serve.
//
// Layering: obs sits between the runtime and the trace layer. The
// runtime records into a Recorder exactly as it records into a Tracer
// (nil costs one pointer check per site); the watchdog reads scheduler
// state only through the Signals closures, so obs never imports the
// runtime or server packages.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/parlab/adws/internal/trace"
)

// DefaultCapacity is the per-worker flight-recorder ring capacity. It is
// deliberately small next to trace.DefaultCapacity: the recorder is a
// black box holding the recent past, not a full-run trace.
const DefaultCapacity = 4096

// DefaultDepthLimit is the default task-span depth cutoff (see Config).
const DefaultDepthLimit = 1

// alwaysMask selects the event types the recorder keeps at any depth:
// rare scheduler transitions (steals, migrations, parks, wakes,
// multi-level boundaries) whose cost is off the per-task hot path.
const alwaysMask = 1<<trace.EvStealAttempt | 1<<trace.EvStealSuccess |
	1<<trace.EvStealFail | 1<<trace.EvMigration | 1<<trace.EvPark |
	1<<trace.EvWake | 1<<trace.EvBoundary

// shallowMask selects the event types recorded only at shallow spawn
// depth: per-task spans and waits, which at depth ≤ DepthLimit mark
// root/job-level progress but deeper down would cost a timestamp per
// microtask and blow the recorder's near-nil overhead budget.
const shallowMask = 1<<trace.EvTaskBegin | 1<<trace.EvTaskEnd |
	1<<trace.EvWaitEnter | 1<<trace.EvWaitExit

// paddedNS is an atomic timestamp padded to its own cache line: one per
// worker, written on every recorded event by that worker only.
type paddedNS struct {
	atomic.Int64
	_ [56]byte
}

// Config parameterizes a Recorder.
type Config struct {
	// Workers is the worker count (required, positive).
	Workers int
	// Capacity is the per-worker ring capacity in events
	// (<= 0: DefaultCapacity).
	Capacity int
	// DepthLimit bounds task-span recording: task begin/end and wait
	// enter/exit events are kept only when their spawn depth (root task
	// = 0, each Spawn adds one) is at most this (<= 0:
	// DefaultDepthLimit). Steals, migrations, parks, wakes, and boundary
	// crossings are always kept. The filter keys on spawn depth rather
	// than the scheduler's group depth because the latter saturates for
	// worker-local work and would let every microtask through.
	DepthLimit int
}

// Recorder is the flight recorder: per-worker bounded rings over the
// trace.Event schema, always on, overwriting oldest. Recording follows
// the tracer's contract — only worker w's goroutine calls Record(w, ·) —
// and costs nothing on filtered events beyond the Wants check, which
// callers run BEFORE building the event (the timestamp is the expensive
// part). Dump cuts all rings into a consistent cross-worker snapshot
// without stopping the pool.
type Recorder struct {
	t          *trace.Tracer
	depthLimit int32
	// last[w] is the Event.Time of worker w's most recently recorded
	// event, 0 before the first (the /debug/sched last-event age).
	last []paddedNS

	// dumpMu serializes dumps (ring cuts are destructive).
	dumpMu   sync.Mutex //adws:lockrank(85) Dump cuts the tracer ring under it (trace.mu rank 90)
	seq      atomic.Int64
	lastDump atomic.Pointer[Dump]
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Workers <= 0 {
		panic("obs: recorder worker count must be positive")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.DepthLimit <= 0 {
		cfg.DepthLimit = DefaultDepthLimit
	}
	return &Recorder{
		t:          trace.New(cfg.Workers, cfg.Capacity),
		depthLimit: int32(cfg.DepthLimit),
		last:       make([]paddedNS, cfg.Workers),
	}
}

// Wants reports whether the recorder keeps events of type t at spawn
// depth depth. It is nil-receiver-safe and is THE hot-path gate: callers
// check it before constructing the event (and before reading the clock),
// so a filtered event costs a pointer check, a mask test, and a compare.
//
//adws:hotpath
func (r *Recorder) Wants(t trace.EventType, depth int32) bool {
	if r == nil {
		return false
	}
	b := uint32(1) << t
	return b&alwaysMask != 0 || (b&shallowMask != 0 && depth <= r.depthLimit)
}

// Record appends ev to worker w's ring, overwriting the oldest event
// when full, and refreshes the worker's last-event timestamp. Callers
// must have passed Wants for the event's type and depth; only worker w's
// own goroutine may call Record(w, ·).
//
//adws:hotpath
func (r *Recorder) Record(w int, ev trace.Event) {
	r.t.Record(w, ev)
	r.last[w].Store(ev.Time)
}

// NumWorkers returns the number of per-worker rings.
func (r *Recorder) NumWorkers() int { return r.t.NumWorkers() }

// Capacity returns the per-worker ring capacity in events.
func (r *Recorder) Capacity() int { return r.t.Capacity() }

// DepthLimit returns the task-span depth cutoff.
func (r *Recorder) DepthLimit() int { return int(r.depthLimit) }

// LastNS returns worker w's most recent recorded-event timestamp
// (Event.Time units, i.e. monotonic nanoseconds in the real runtime), or
// 0 if the worker has recorded nothing since the last reset.
func (r *Recorder) LastNS(w int) int64 { return r.last[w].Load() }

// Drops returns the total number of events lost to ring wraparound — the
// recorder's normal steady state once a window's worth of history has
// passed.
func (r *Recorder) Drops() int64 { return r.t.Drops() }

// Dump cuts every worker's ring into one consistent, time-sorted event
// window and returns it wrapped with the dump's metadata and the given
// scheduler snapshot (may be nil). Dumping is safe while the pool runs
// — each worker loses at most its one in-flight event — and is
// DESTRUCTIVE: the returned events are consumed from the rings, so the
// next dump starts an empty window. The last dump is retained
// (LastDump).
func (r *Recorder) Dump(reason string, worker int, sched *SchedSnapshot) *Dump {
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	d := &Dump{
		Seq:     r.seq.Add(1),
		Reason:  reason,
		Worker:  worker,
		TakenAt: time.Now(),
		Workers: r.t.NumWorkers(),
		Events:  r.t.Cut(),
		Sched:   sched,
	}
	r.lastDump.Store(d)
	return d
}

// LastDump returns the most recent dump, or nil.
func (r *Recorder) LastDump() *Dump { return r.lastDump.Load() }
