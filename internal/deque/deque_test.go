package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLIFOOwner(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := 3; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || *v != vals[i] {
			t.Fatalf("PopBottom = %v,%v, want %d", v, ok, vals[i])
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Error("PopBottom on empty succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Error("Steal on empty succeeded")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New[int]()
	vals := []int{10, 20, 30}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := 0; i < 3; i++ {
		v, ok := d.Steal()
		if !ok || *v != vals[i] {
			t.Fatalf("Steal #%d = %v,%v, want %d", i, v, ok, vals[i])
		}
	}
}

func TestGrowth(t *testing.T) {
	d := New[int]()
	n := MinCapacity * 4
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	// Alternate pops and steals, verifying the full content comes out.
	seen := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		var v *int
		var ok bool
		if i%2 == 0 {
			v, ok = d.PopBottom()
		} else {
			v, ok = d.Steal()
		}
		if !ok || seen[*v] {
			t.Fatalf("iteration %d: ok=%v dup=%v", i, ok, seen[*v])
		}
		seen[*v] = true
	}
}

// TestConcurrentStress: one owner pushes/pops while thieves steal; every
// element must be consumed exactly once.
func TestConcurrentStress(t *testing.T) {
	const n = 200_000
	const thieves = 4
	d := New[int64]()
	vals := make([]int64, n)
	var consumed atomic.Int64
	var sum atomic.Int64
	var want int64
	for i := range vals {
		vals[i] = int64(i + 1)
		want += int64(i + 1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for k := 0; k < thieves; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					sum.Add(*v)
					consumed.Add(1)
				}
				select {
				case <-stop:
					// Drain what remains visible, then exit.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						sum.Add(*v)
						consumed.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: pushes all elements, popping occasionally.
	for i := range vals {
		d.PushBottom(&vals[i])
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				sum.Add(*v)
				consumed.Add(1)
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		sum.Add(*v)
		consumed.Add(1)
	}
	close(stop)
	wg.Wait()
	// Residue after racing pops: drain.
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		sum.Add(*v)
		consumed.Add(1)
	}

	if consumed.Load() != n {
		t.Fatalf("consumed %d of %d", consumed.Load(), n)
	}
	if sum.Load() != want {
		t.Fatalf("sum %d, want %d (duplicate or lost element)", sum.Load(), want)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int]()
	v := 42
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.PopBottom()
	}
}

func BenchmarkStealHalf(b *testing.B) {
	d := New[int]()
	v := 42
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		if i%2 == 0 {
			d.Steal()
		} else {
			d.PopBottom()
		}
	}
}
