// Package deque implements the Chase–Lev lock-free work-stealing deque
// (Chase & Lev, SPAA 2005; Lê et al., PPoPP 2013 for the memory-model
// treatment). The owner pushes and pops at the bottom without contention;
// thieves steal from the top with a single CAS. The adws runtime uses it
// for conventional work-stealing domains, where each queue has exactly one
// owning worker; ADWS's depth-separated primary/migration queues need
// multi-queue operations and use a locked structure instead.
package deque

import "sync/atomic"

// ring is a circular buffer of a power-of-two size.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	// Ring doubling is amortized O(1) per push and off the steady state:
	// once the ring fits the peak task count it never allocates again.
	//adws:allow amortized growth (docs/LINT.md hotalloc policy)
	return &ring[T]{mask: capacity - 1, buf: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) get(i int64) *T    { return r.buf[i&r.mask].Load() }
func (r *ring[T]) put(i int64, v *T) { r.buf[i&r.mask].Store(v) }
func (r *ring[T]) grow(b, t int64) *ring[T] {
	nr := newRing[T]((r.mask + 1) * 2)
	for i := t; i < b; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// Deque is a lock-free work-stealing deque of *T. The zero value is not
// usable; call New.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[ring[T]]
}

// MinCapacity is the initial ring size.
const MinCapacity = 64

// New creates an empty deque.
func New[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.ring.Store(newRing[T](MinCapacity))
	return d
}

// Len returns a point-in-time size estimate.
//
//adws:hotpath
func (d *Deque[T]) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}

// PushBottom appends v at the owner's end. Only the owning worker may call
// it.
//
//adws:hotpath
func (d *Deque[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask { // full
		r = r.grow(b, t)
		d.ring.Store(r)
	}
	r.put(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the most recently pushed element. Only the
// owning worker may call it.
//
//adws:hotpath
func (d *Deque[T]) PopBottom() (*T, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	switch {
	case t > b:
		// Empty: restore.
		d.bottom.Store(b + 1)
		return nil, false
	case t == b:
		// Last element: race with thieves via CAS on top.
		v := r.get(b)
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil // lost to a thief
		}
		d.bottom.Store(b + 1)
		if v == nil {
			return nil, false
		}
		return v, true
	default:
		return r.get(b), true
	}
}

// Steal removes and returns the oldest element. Any goroutine may call it.
//
//adws:hotpath
func (d *Deque[T]) Steal() (*T, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return nil, false
		}
		r := d.ring.Load()
		v := r.get(t)
		if d.top.CompareAndSwap(t, t+1) {
			return v, true
		}
		// Lost the race; retry unless now empty.
	}
}
