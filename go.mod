module github.com/parlab/adws

go 1.22
