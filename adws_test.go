package adws

import (
	"sync/atomic"
	"testing"
)

func TestNewPoolDefaults(t *testing.T) {
	p, err := NewPool()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.NumWorkers() < 1 {
		t.Fatal("no workers")
	}
	if p.Scheduler() != WorkStealing {
		t.Errorf("default scheduler = %v, want WorkStealing", p.Scheduler())
	}
}

func TestNewPoolOptionErrors(t *testing.T) {
	if _, err := NewPool(WithWorkers(0)); err == nil {
		t.Error("WithWorkers(0) accepted")
	}
	if _, err := NewPool(WithHierarchy(nil, 0)); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewPool(WithHierarchy([]CacheLevel{{Fanout: -1, CapacityBytes: 1}}, 0)); err == nil {
		t.Error("negative fanout accepted")
	}
}

func schedulers() []Scheduler {
	return []Scheduler{WorkStealing, ADWS, MultiLevelWS, MultiLevelADWS}
}

func TestFibAllSchedulers(t *testing.T) {
	var fib func(c *Ctx, n int) int64
	fib = func(c *Ctx, n int) int64 {
		if n < 2 {
			return int64(n)
		}
		if n < 10 {
			return fib(c, n-1) + fib(c, n-2)
		}
		var a, b int64
		g := c.Group(GroupHint{Work: 3})
		g.Spawn(2, func(c *Ctx) { a = fib(c, n-1) })
		g.Spawn(1, func(c *Ctx) { b = fib(c, n-2) })
		g.Wait()
		return a + b
	}
	for _, s := range schedulers() {
		p, err := NewPool(
			WithScheduler(s),
			WithHierarchy([]CacheLevel{
				{Fanout: 2, CapacityBytes: 8 << 20},
				{Fanout: 4, CapacityBytes: 1 << 20},
			}, 0),
			WithSeed(7),
		)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		p.Run(func(c *Ctx) { got = fib(c, 20) })
		p.Close()
		if got != 6765 {
			t.Errorf("%v: fib(20) = %d, want 6765", s, got)
		}
	}
}

func TestSizedGroupsMultiLevel(t *testing.T) {
	p, err := NewPool(
		WithScheduler(MultiLevelADWS),
		WithHierarchy([]CacheLevel{
			{Fanout: 2, CapacityBytes: 4 << 20},
			{Fanout: 4, CapacityBytes: 512 << 10},
		}, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var count int64
	var rec func(c *Ctx, depth int, size int64)
	rec = func(c *Ctx, depth int, size int64) {
		if depth == 0 {
			atomic.AddInt64(&count, 1)
			return
		}
		g := c.Group(GroupHint{Work: 2, Size: size})
		g.Spawn(1, func(c *Ctx) { rec(c, depth-1, size/2) })
		g.Spawn(1, func(c *Ctx) { rec(c, depth-1, size/2) })
		g.Wait()
	}
	p.Run(func(c *Ctx) { rec(c, 8, 32<<20) })
	if count != 256 {
		t.Errorf("count = %d, want 256", count)
	}
}

func TestStatsAccumulate(t *testing.T) {
	p, err := NewPool(WithScheduler(ADWS), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var n int64
	p.Run(func(c *Ctx) {
		g := c.Group(GroupHint{Work: 16})
		for i := 0; i < 16; i++ {
			g.Spawn(1, func(c *Ctx) { atomic.AddInt64(&n, 1) })
		}
		g.Wait()
	})
	if s := p.Stats(); s.Tasks == 0 {
		t.Errorf("stats empty: %+v", s)
	}
}
