package adws

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, RouteRoundRobin); err == nil {
		t.Error("empty worker list accepted")
	}
	if _, err := NewCluster([]int{2, 2}, "random"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewCluster([]int{2, -1}, RouteRoundRobin); err == nil {
		t.Error("negative worker count accepted")
	}
	if got := RoutingPolicies(); len(got) != 3 {
		t.Errorf("RoutingPolicies() = %v, want 3 policies", got)
	}
}

func TestClusterRoundTrip(t *testing.T) {
	c, err := NewCluster([]int{2, 3}, RouteAffinity,
		WithScheduler(ADWS), WithAdmission(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumPools() != 2 {
		t.Fatalf("NumPools() = %d", c.NumPools())
	}
	if c.Workers() != 5 {
		t.Errorf("Workers() = %d, want 5 (per-pool counts override shared opts)", c.Workers())
	}
	if c.Pool(1).NumWorkers() != 3 {
		t.Errorf("pool 1 workers = %d, want 3", c.Pool(1).NumWorkers())
	}
	if c.Policy() != RouteAffinity {
		t.Errorf("Policy() = %q", c.Policy())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var jobs []*ClusterJob
	for round := 0; round < 3; round++ {
		for _, key := range []string{"qs", "kd", "mm"} {
			var n int64
			j, err := c.Submit(context.Background(), key, func(cx *Ctx) error {
				g := cx.Group(GroupHint{Work: 4})
				for i := 0; i < 4; i++ {
					g.Spawn(1, func(*Ctx) { n++ })
				}
				g.Wait()
				return nil
			}, JobHint{Work: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			if j.State() != JobDone {
				t.Fatalf("job %d state = %v", j.ClusterID(), j.State())
			}
			jobs = append(jobs, j)
		}
	}
	// Repeats stay on their warm pool under affinity.
	for i := 3; i < len(jobs); i++ {
		if jobs[i].Pool() != jobs[i%3].Pool() {
			t.Errorf("job %d (key %d) on pool %d, first run on pool %d",
				i, i%3, jobs[i].Pool(), jobs[i%3].Pool())
		}
	}
	tot := c.Totals()
	if tot.Jobs != 9 || tot.Cold != 3 || tot.Warm != 6 {
		t.Errorf("totals = %+v, want 9 jobs, 3 cold, 6 warm", tot)
	}
	if got, ok := c.Job(jobs[0].ClusterID()); !ok || got != jobs[0] {
		t.Error("Cluster.Job lookup failed")
	}
	if got := c.Jobs(); len(got) != 9 {
		t.Errorf("Jobs() returned %d jobs", len(got))
	}

	// The cluster registry renders the routing families.
	var b strings.Builder
	if err := c.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"adws_cluster_pools 2",
		`adws_cluster_routed_total{pool="0",policy="affinity",verdict="warm"}`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
