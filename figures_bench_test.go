package adws_test

import (
	"io"
	"testing"

	"github.com/parlab/adws/internal/figures"
	"github.com/parlab/adws/internal/sim"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/workload"
)

// Simulator benchmarks regenerating the paper's tables and figures, one
// per figure (deliverable (d)). They run on a scaled-down 16-worker
// machine so `go test -bench .` completes quickly; the full-scale paper
// configuration is produced by `go run ./cmd/adwsbench` (see
// EXPERIMENTS.md for the recorded full-scale output).

// figOpts is the reduced configuration shared by the figure benchmarks.
func figOpts() figures.Options {
	return figures.Options{
		Machine:     topology.TwoLevel16(),
		SizeFactors: []float64{0.25, 4},
		Reps:        2,
		Seed:        1,
	}
}

func render(b *testing.B, figs []figures.Figure) {
	b.Helper()
	for _, f := range figs {
		f.Render(io.Discard)
	}
}

func BenchmarkTable1Machine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Table1(topology.OakbridgeCX(), io.Discard)
	}
}

// BenchmarkFig16 sweeps speedup-vs-working-set per benchmark.
func BenchmarkFig16(b *testing.B) {
	for _, reg := range workload.Registry {
		b.Run(reg.Name, func(b *testing.B) {
			o := figOpts()
			o.Benches = []string{reg.Name}
			for i := 0; i < b.N; i++ {
				render(b, figures.Fig16(o))
			}
		})
	}
}

// BenchmarkFig17 produces the busy/idle/overhead breakdowns.
func BenchmarkFig17(b *testing.B) {
	o := figOpts()
	o.Benches = []string{"quicksort", "dtree"}
	for i := 0; i < b.N; i++ {
		render(b, figures.Fig17(o))
	}
}

// BenchmarkFig18 produces the cache miss counts.
func BenchmarkFig18(b *testing.B) {
	o := figOpts()
	o.Benches = []string{"dtree"}
	for i := 0; i < b.N; i++ {
		render(b, figures.Fig18(o))
	}
}

// BenchmarkFig19 runs the RRM hint-sensitivity sweep (trimmed alphas).
func BenchmarkFig19(b *testing.B) {
	old := figures.Fig19Alphas
	figures.Fig19Alphas = []float64{1, 4}
	defer func() { figures.Fig19Alphas = old }()
	o := figOpts()
	for i := 0; i < b.N; i++ {
		render(b, figures.Fig19(o))
	}
}

// BenchmarkFig20 runs the no-hint study (trimmed bench list).
func BenchmarkFig20(b *testing.B) {
	old := figures.Fig20Benches
	figures.Fig20Benches = []string{"quicksort", "dtree"}
	defer func() { figures.Fig20Benches = old }()
	o := figOpts()
	for i := 0; i < b.N; i++ {
		render(b, figures.Fig20(o))
	}
}

// BenchmarkFig21 runs the NUMA placement study on the 2-socket machine.
func BenchmarkFig21(b *testing.B) {
	o := figOpts()
	o.Machine = topology.OakbridgeCX()
	o.SizeFactors = []float64{2}
	o.Benches = []string{"heat2d"}
	for i := 0; i < b.N; i++ {
		render(b, figures.Fig21(o))
	}
}

// BenchmarkSimEngine measures raw simulator throughput (events/sec proxy:
// one mid-size decision tree run).
func BenchmarkSimEngine(b *testing.B) {
	for _, mode := range sim.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(sim.Config{
					Machine: topology.TwoLevel16(),
					Mode:    mode,
					Seed:    7,
				})
				inst := workload.DecisionTree(16<<20, 3)
				root, _ := inst.Prepare(eng.Memory())
				eng.Run(root)
			}
		})
	}
}
