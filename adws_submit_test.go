package adws

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/parlab/adws/internal/trace"
)

func TestWithAdmissionRejectsNegative(t *testing.T) {
	if _, err := NewPool(WithAdmission(-1, 0)); err == nil {
		t.Error("negative maxInFlight accepted")
	}
	if _, err := NewPool(WithAdmission(0, -1)); err == nil {
		t.Error("negative maxQueue accepted")
	}
}

func TestSubmitRoundTrip(t *testing.T) {
	p, err := NewPool(WithScheduler(ADWS), WithWorkers(4), WithAdmission(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var sum int64
	j, err := p.Submit(context.Background(), func(c *Ctx) error {
		g := c.Group(GroupHint{Work: 8})
		var parts [8]int64
		for i := 0; i < 8; i++ {
			i := i
			g.Spawn(1, func(*Ctx) { parts[i] = int64(i) })
		}
		g.Wait()
		for _, v := range parts {
			sum += v
		}
		return nil
	}, JobHint{Work: 2, Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if sum != 28 {
		t.Errorf("sum = %d, want 28", sum)
	}
	if j.State() != JobDone {
		t.Errorf("state = %v, want JobDone", j.State())
	}
	if got, ok := p.Job(j.ID()); !ok || got != j {
		t.Error("Pool.Job did not return the submitted job")
	}
	if jobs := p.Jobs(); len(jobs) != 1 || jobs[0] != j {
		t.Errorf("Pool.Jobs = %v", jobs)
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(context.Background(), func(*Ctx) error { return nil }, JobHint{}); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after Drain: err = %v, want ErrDraining", err)
	}
}

func TestSubmitAfterCloseErrors(t *testing.T) {
	p, err := NewPool(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Submit(context.Background(), func(*Ctx) error { return nil }, JobHint{}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Submit after Close: err = %v, want ErrPoolClosed", err)
	}
}

// schedulerEvents returns the pool's deterministic scheduling events —
// task spans, waits, and migrations — normalized for comparison (times
// zeroed, sorted by task then type then worker). Idle-probe events
// (steal attempts and failed rounds) depend on wall-clock timing and are
// excluded; on the workloads below no successful steals occur, so the
// remaining events fully describe the worker assignment.
func schedulerEvents(p *Pool) []TraceEvent {
	var out []TraceEvent
	for _, ev := range p.Tracer().Events() {
		switch ev.Type {
		case trace.EvStealAttempt, trace.EvStealSuccess, trace.EvStealFail:
			continue
		}
		ev.Time = 0
		out = append(out, ev)
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Worker < b.Worker
	})
	return out
}

// TestSubmitMatchesRunSingleWorker pins the acceptance criterion exactly:
// on a fresh 1-worker ADWS pool, a single Submit produces the identical
// scheduling trace (same tasks, same workers, same ranges, same job
// ordinal) as an equivalent Run on an identically configured pool.
func TestSubmitMatchesRunSingleWorker(t *testing.T) {
	body := func(c *Ctx) {
		var rec func(c *Ctx, d int)
		rec = func(c *Ctx, d int) {
			if d == 0 {
				return
			}
			g := c.Group(GroupHint{Work: 2})
			g.Spawn(1, func(c *Ctx) { rec(c, d-1) })
			g.Spawn(1, func(c *Ctx) { rec(c, d-1) })
			g.Wait()
		}
		rec(c, 4)
	}
	mk := func() *Pool {
		p, err := NewPool(WithScheduler(ADWS), WithWorkers(1), WithTracing(1<<14), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	p1 := mk()
	p1.Run(body)
	viaRun := schedulerEvents(p1)
	p1.Close()

	p2 := mk()
	j, err := p2.Submit(context.Background(), func(c *Ctx) error { body(c); return nil }, JobHint{Work: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	viaSubmit := schedulerEvents(p2)
	p2.Close()

	if len(viaRun) == 0 {
		t.Fatal("Run produced no scheduler events")
	}
	if len(viaRun) != len(viaSubmit) {
		t.Fatalf("event counts differ: Run %d, Submit %d", len(viaRun), len(viaSubmit))
	}
	for i := range viaRun {
		if viaRun[i] != viaSubmit[i] {
			t.Fatalf("event %d differs:\nRun:    %+v\nSubmit: %+v", i, viaRun[i], viaSubmit[i])
		}
	}
}

// TestSubmitMatchesRunFourWorkers extends the acceptance check to a
// 4-worker ADWS pool: four equal-hint children rendezvous on a barrier,
// forcing each onto its deterministically assigned worker with empty
// queues (so no steal can perturb the assignment). Run and Submit must
// place the same tasks on the same workers with the same ranges.
func TestSubmitMatchesRunFourWorkers(t *testing.T) {
	mkBody := func() func(*Ctx) {
		var mu sync.Mutex
		started := 0
		all := make(chan struct{})
		return func(c *Ctx) {
			g := c.Group(GroupHint{Work: 4})
			for i := 0; i < 4; i++ {
				g.Spawn(1, func(*Ctx) {
					mu.Lock()
					started++
					if started == 4 {
						close(all)
					}
					mu.Unlock()
					<-all
				})
			}
			g.Wait()
		}
	}
	mk := func() *Pool {
		p, err := NewPool(WithScheduler(ADWS), WithWorkers(4), WithTracing(1<<14), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	p1 := mk()
	p1.Run(mkBody())
	viaRun := schedulerEvents(p1)
	p1.Close()

	p2 := mk()
	body := mkBody()
	j, err := p2.Submit(context.Background(), func(c *Ctx) error { body(c); return nil }, JobHint{Work: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	viaSubmit := schedulerEvents(p2)
	p2.Close()

	if len(viaRun) != len(viaSubmit) {
		t.Fatalf("event counts differ: Run %d, Submit %d", len(viaRun), len(viaSubmit))
	}
	workers := make(map[int32]bool)
	for i := range viaRun {
		if viaRun[i] != viaSubmit[i] {
			t.Fatalf("event %d differs:\nRun:    %+v\nSubmit: %+v", i, viaRun[i], viaSubmit[i])
		}
		workers[viaRun[i].Worker] = true
	}
	if len(workers) != 4 {
		t.Errorf("tasks ran on %d workers, want all 4", len(workers))
	}
}
